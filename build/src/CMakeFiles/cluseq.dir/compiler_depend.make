# Empty compiler generated dependencies file for cluseq.
# This may be replaced when dependencies are built.
