file(REMOVE_RECURSE
  "libcluseq.a"
)
