
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline_clusterers.cc" "src/CMakeFiles/cluseq.dir/baselines/baseline_clusterers.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/baselines/baseline_clusterers.cc.o.d"
  "/root/repo/src/baselines/block_edit_distance.cc" "src/CMakeFiles/cluseq.dir/baselines/block_edit_distance.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/baselines/block_edit_distance.cc.o.d"
  "/root/repo/src/baselines/edit_distance.cc" "src/CMakeFiles/cluseq.dir/baselines/edit_distance.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/baselines/edit_distance.cc.o.d"
  "/root/repo/src/baselines/hmm.cc" "src/CMakeFiles/cluseq.dir/baselines/hmm.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/baselines/hmm.cc.o.d"
  "/root/repo/src/baselines/kmedoids.cc" "src/CMakeFiles/cluseq.dir/baselines/kmedoids.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/baselines/kmedoids.cc.o.d"
  "/root/repo/src/baselines/qgram.cc" "src/CMakeFiles/cluseq.dir/baselines/qgram.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/baselines/qgram.cc.o.d"
  "/root/repo/src/core/cluseq.cc" "src/CMakeFiles/cluseq.dir/core/cluseq.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/core/cluseq.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/CMakeFiles/cluseq.dir/core/cluster.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/core/cluster.cc.o.d"
  "/root/repo/src/core/online_scorer.cc" "src/CMakeFiles/cluseq.dir/core/online_scorer.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/core/online_scorer.cc.o.d"
  "/root/repo/src/core/seeding.cc" "src/CMakeFiles/cluseq.dir/core/seeding.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/core/seeding.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/CMakeFiles/cluseq.dir/core/similarity.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/core/similarity.cc.o.d"
  "/root/repo/src/core/threshold.cc" "src/CMakeFiles/cluseq.dir/core/threshold.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/core/threshold.cc.o.d"
  "/root/repo/src/eval/contingency.cc" "src/CMakeFiles/cluseq.dir/eval/contingency.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/eval/contingency.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/cluseq.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/cluseq.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/eval/report.cc.o.d"
  "/root/repo/src/pst/pst.cc" "src/CMakeFiles/cluseq.dir/pst/pst.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/pst/pst.cc.o.d"
  "/root/repo/src/pst/pst_dot.cc" "src/CMakeFiles/cluseq.dir/pst/pst_dot.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/pst/pst_dot.cc.o.d"
  "/root/repo/src/pst/pst_serialization.cc" "src/CMakeFiles/cluseq.dir/pst/pst_serialization.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/pst/pst_serialization.cc.o.d"
  "/root/repo/src/seq/alphabet.cc" "src/CMakeFiles/cluseq.dir/seq/alphabet.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/seq/alphabet.cc.o.d"
  "/root/repo/src/seq/background_model.cc" "src/CMakeFiles/cluseq.dir/seq/background_model.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/seq/background_model.cc.o.d"
  "/root/repo/src/seq/io.cc" "src/CMakeFiles/cluseq.dir/seq/io.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/seq/io.cc.o.d"
  "/root/repo/src/seq/sequence.cc" "src/CMakeFiles/cluseq.dir/seq/sequence.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/seq/sequence.cc.o.d"
  "/root/repo/src/seq/sequence_database.cc" "src/CMakeFiles/cluseq.dir/seq/sequence_database.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/seq/sequence_database.cc.o.d"
  "/root/repo/src/seq/suffix_array.cc" "src/CMakeFiles/cluseq.dir/seq/suffix_array.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/seq/suffix_array.cc.o.d"
  "/root/repo/src/synth/dataset.cc" "src/CMakeFiles/cluseq.dir/synth/dataset.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/synth/dataset.cc.o.d"
  "/root/repo/src/synth/generator_model.cc" "src/CMakeFiles/cluseq.dir/synth/generator_model.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/synth/generator_model.cc.o.d"
  "/root/repo/src/synth/language_like.cc" "src/CMakeFiles/cluseq.dir/synth/language_like.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/synth/language_like.cc.o.d"
  "/root/repo/src/synth/protein_like.cc" "src/CMakeFiles/cluseq.dir/synth/protein_like.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/synth/protein_like.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/cluseq.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/cluseq.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/cluseq.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/cluseq.dir/util/status.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/cluseq.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/cluseq.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/cluseq.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
