# Empty compiler generated dependencies file for cluseq_tests.
# This may be replaced when dependencies are built.
