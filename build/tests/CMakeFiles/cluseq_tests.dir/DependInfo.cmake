
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alphabet_test.cc" "tests/CMakeFiles/cluseq_tests.dir/alphabet_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/alphabet_test.cc.o.d"
  "/root/repo/tests/background_model_test.cc" "tests/CMakeFiles/cluseq_tests.dir/background_model_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/background_model_test.cc.o.d"
  "/root/repo/tests/baseline_clusterers_test.cc" "tests/CMakeFiles/cluseq_tests.dir/baseline_clusterers_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/baseline_clusterers_test.cc.o.d"
  "/root/repo/tests/block_edit_test.cc" "tests/CMakeFiles/cluseq_tests.dir/block_edit_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/block_edit_test.cc.o.d"
  "/root/repo/tests/cluseq_test.cc" "tests/CMakeFiles/cluseq_tests.dir/cluseq_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/cluseq_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/cluseq_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/edit_distance_test.cc" "tests/CMakeFiles/cluseq_tests.dir/edit_distance_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/edit_distance_test.cc.o.d"
  "/root/repo/tests/generator_test.cc" "tests/CMakeFiles/cluseq_tests.dir/generator_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/generator_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/cluseq_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/hmm_test.cc" "tests/CMakeFiles/cluseq_tests.dir/hmm_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/hmm_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/cluseq_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/cluseq_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/kmedoids_test.cc" "tests/CMakeFiles/cluseq_tests.dir/kmedoids_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/kmedoids_test.cc.o.d"
  "/root/repo/tests/logging_test.cc" "tests/CMakeFiles/cluseq_tests.dir/logging_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/logging_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/cluseq_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/online_scorer_test.cc" "tests/CMakeFiles/cluseq_tests.dir/online_scorer_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/online_scorer_test.cc.o.d"
  "/root/repo/tests/options_behavior_test.cc" "tests/CMakeFiles/cluseq_tests.dir/options_behavior_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/options_behavior_test.cc.o.d"
  "/root/repo/tests/pst_dot_test.cc" "tests/CMakeFiles/cluseq_tests.dir/pst_dot_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/pst_dot_test.cc.o.d"
  "/root/repo/tests/pst_merge_test.cc" "tests/CMakeFiles/cluseq_tests.dir/pst_merge_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/pst_merge_test.cc.o.d"
  "/root/repo/tests/pst_pruning_test.cc" "tests/CMakeFiles/cluseq_tests.dir/pst_pruning_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/pst_pruning_test.cc.o.d"
  "/root/repo/tests/pst_serialization_test.cc" "tests/CMakeFiles/cluseq_tests.dir/pst_serialization_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/pst_serialization_test.cc.o.d"
  "/root/repo/tests/pst_test.cc" "tests/CMakeFiles/cluseq_tests.dir/pst_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/pst_test.cc.o.d"
  "/root/repo/tests/qgram_test.cc" "tests/CMakeFiles/cluseq_tests.dir/qgram_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/qgram_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/cluseq_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/seeding_test.cc" "tests/CMakeFiles/cluseq_tests.dir/seeding_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/seeding_test.cc.o.d"
  "/root/repo/tests/sequence_test.cc" "tests/CMakeFiles/cluseq_tests.dir/sequence_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/sequence_test.cc.o.d"
  "/root/repo/tests/serialization_fuzz_test.cc" "tests/CMakeFiles/cluseq_tests.dir/serialization_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/serialization_fuzz_test.cc.o.d"
  "/root/repo/tests/similarity_test.cc" "tests/CMakeFiles/cluseq_tests.dir/similarity_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/similarity_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/cluseq_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/string_util_test.cc" "tests/CMakeFiles/cluseq_tests.dir/string_util_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/string_util_test.cc.o.d"
  "/root/repo/tests/suffix_array_test.cc" "tests/CMakeFiles/cluseq_tests.dir/suffix_array_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/suffix_array_test.cc.o.d"
  "/root/repo/tests/thread_pool_test.cc" "tests/CMakeFiles/cluseq_tests.dir/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/thread_pool_test.cc.o.d"
  "/root/repo/tests/threshold_test.cc" "tests/CMakeFiles/cluseq_tests.dir/threshold_test.cc.o" "gcc" "tests/CMakeFiles/cluseq_tests.dir/threshold_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cluseq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
