file(REMOVE_RECURSE
  "CMakeFiles/micro_cluseq.dir/micro_cluseq.cc.o"
  "CMakeFiles/micro_cluseq.dir/micro_cluseq.cc.o.d"
  "micro_cluseq"
  "micro_cluseq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cluseq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
