# Empty compiler generated dependencies file for micro_cluseq.
# This may be replaced when dependencies are built.
