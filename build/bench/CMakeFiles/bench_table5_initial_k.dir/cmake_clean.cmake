file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_initial_k.dir/bench_table5_initial_k.cc.o"
  "CMakeFiles/bench_table5_initial_k.dir/bench_table5_initial_k.cc.o.d"
  "bench_table5_initial_k"
  "bench_table5_initial_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_initial_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
