# Empty compiler generated dependencies file for bench_table5_initial_k.
# This may be replaced when dependencies are built.
