file(REMOVE_RECURSE
  "CMakeFiles/bench_order_sensitivity.dir/bench_order_sensitivity.cc.o"
  "CMakeFiles/bench_order_sensitivity.dir/bench_order_sensitivity.cc.o.d"
  "bench_order_sensitivity"
  "bench_order_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_order_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
