file(REMOVE_RECURSE
  "CMakeFiles/bench_outlier_robustness.dir/bench_outlier_robustness.cc.o"
  "CMakeFiles/bench_outlier_robustness.dir/bench_outlier_robustness.cc.o.d"
  "bench_outlier_robustness"
  "bench_outlier_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outlier_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
