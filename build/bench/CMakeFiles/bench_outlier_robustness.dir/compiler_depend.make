# Empty compiler generated dependencies file for bench_outlier_robustness.
# This may be replaced when dependencies are built.
