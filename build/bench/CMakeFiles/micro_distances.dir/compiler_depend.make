# Empty compiler generated dependencies file for micro_distances.
# This may be replaced when dependencies are built.
