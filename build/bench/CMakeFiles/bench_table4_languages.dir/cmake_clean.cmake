file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_languages.dir/bench_table4_languages.cc.o"
  "CMakeFiles/bench_table4_languages.dir/bench_table4_languages.cc.o.d"
  "bench_table4_languages"
  "bench_table4_languages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_languages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
