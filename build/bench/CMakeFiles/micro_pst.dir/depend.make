# Empty dependencies file for micro_pst.
# This may be replaced when dependencies are built.
