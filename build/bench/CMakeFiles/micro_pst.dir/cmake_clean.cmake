file(REMOVE_RECURSE
  "CMakeFiles/micro_pst.dir/micro_pst.cc.o"
  "CMakeFiles/micro_pst.dir/micro_pst.cc.o.d"
  "micro_pst"
  "micro_pst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
