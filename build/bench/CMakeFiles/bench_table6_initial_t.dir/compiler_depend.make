# Empty compiler generated dependencies file for bench_table6_initial_t.
# This may be replaced when dependencies are built.
