file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_initial_t.dir/bench_table6_initial_t.cc.o"
  "CMakeFiles/bench_table6_initial_t.dir/bench_table6_initial_t.cc.o.d"
  "bench_table6_initial_t"
  "bench_table6_initial_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_initial_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
