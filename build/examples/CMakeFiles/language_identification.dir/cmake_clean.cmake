file(REMOVE_RECURSE
  "CMakeFiles/language_identification.dir/language_identification.cpp.o"
  "CMakeFiles/language_identification.dir/language_identification.cpp.o.d"
  "language_identification"
  "language_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/language_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
