# Empty compiler generated dependencies file for protein_families.
# This may be replaced when dependencies are built.
