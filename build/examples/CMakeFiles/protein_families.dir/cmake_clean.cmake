file(REMOVE_RECURSE
  "CMakeFiles/protein_families.dir/protein_families.cpp.o"
  "CMakeFiles/protein_families.dir/protein_families.cpp.o.d"
  "protein_families"
  "protein_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
