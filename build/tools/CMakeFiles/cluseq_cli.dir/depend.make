# Empty dependencies file for cluseq_cli.
# This may be replaced when dependencies are built.
