file(REMOVE_RECURSE
  "CMakeFiles/cluseq_cli.dir/cluseq_cli.cc.o"
  "CMakeFiles/cluseq_cli.dir/cluseq_cli.cc.o.d"
  "cluseq_cli"
  "cluseq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluseq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
