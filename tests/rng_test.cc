#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace cluseq {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  size_t same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4u);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformZeroBoundReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(0), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  const int n = 20000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.015);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalDegenerateWeights) {
  Rng rng(29);
  std::vector<double> zeros = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.Categorical(zeros), 2u);  // Documented fallback.
}

TEST(RngTest, CategoricalSingleEntry) {
  Rng rng(29);
  std::vector<double> one = {5.0};
  EXPECT_EQ(rng.Categorical(one), 0u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(31);
  for (size_t universe : {10u, 100u, 1000u}) {
    for (size_t n : {1u, 5u, 9u}) {
      auto sample = rng.SampleWithoutReplacement(universe, n);
      ASSERT_EQ(sample.size(), n);
      std::set<size_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), n);
      for (size_t v : sample) EXPECT_LT(v, universe);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullUniverse) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(8, 8);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 8u);
  auto over = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(over.size(), 5u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, LengthStaysInBounds) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    size_t len = rng.Length(100, 50, 200);
    EXPECT_GE(len, 50u);
    EXPECT_LE(len, 200u);
  }
}

TEST(RngTest, LengthDegenerateRange) {
  Rng rng(47);
  EXPECT_EQ(rng.Length(100, 10, 10), 10u);
  EXPECT_EQ(rng.Length(100, 20, 5), 20u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(53);
  Rng child = a.Fork();
  // The fork and the parent should not generate the same stream.
  size_t same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 4u);
}

TEST(RngTest, SplitMix64Deterministic) {
  uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace cluseq
