#include "baselines/kmedoids.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace cluseq {
namespace {

// Points on a line with two obvious groups.
std::vector<double> TwoBlobs() {
  return {0.0, 0.1, 0.2, 0.3, 0.4, 10.0, 10.1, 10.2, 10.3, 10.4};
}

DistanceFn LineDistance(const std::vector<double>& points) {
  return [points](size_t a, size_t b) {
    return std::abs(points[a] - points[b]);
  };
}

TEST(KMedoidsTest, RejectsZeroClusters) {
  KMedoidsOptions o;
  o.num_clusters = 0;
  KMedoidsResult r;
  EXPECT_TRUE(KMedoids(5, LineDistance(TwoBlobs()), o, &r)
                  .IsInvalidArgument());
}

TEST(KMedoidsTest, EmptyInputOk) {
  KMedoidsOptions o;
  KMedoidsResult r;
  EXPECT_TRUE(KMedoids(0, LineDistance({}), o, &r).ok());
  EXPECT_TRUE(r.assignment.empty());
}

TEST(KMedoidsTest, SeparatesTwoBlobs) {
  std::vector<double> pts = TwoBlobs();
  KMedoidsOptions o;
  o.num_clusters = 2;
  o.seed = 1;
  KMedoidsResult r;
  ASSERT_TRUE(KMedoids(pts.size(), LineDistance(pts), o, &r).ok());
  // First five together, last five together.
  for (size_t i = 1; i < 5; ++i) EXPECT_EQ(r.assignment[i], r.assignment[0]);
  for (size_t i = 6; i < 10; ++i) EXPECT_EQ(r.assignment[i], r.assignment[5]);
  EXPECT_NE(r.assignment[0], r.assignment[5]);
  EXPECT_EQ(r.medoids.size(), 2u);
}

TEST(KMedoidsTest, CostIsSumOfAssignedDistances) {
  std::vector<double> pts = TwoBlobs();
  KMedoidsOptions o;
  o.num_clusters = 2;
  o.seed = 2;
  KMedoidsResult r;
  ASSERT_TRUE(KMedoids(pts.size(), LineDistance(pts), o, &r).ok());
  double manual = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    manual += std::abs(pts[i] -
                       pts[r.medoids[static_cast<size_t>(r.assignment[i])]]);
  }
  EXPECT_NEAR(r.total_cost, manual, 1e-9);
}

TEST(KMedoidsTest, KEqualsNMakesSingletons) {
  std::vector<double> pts = {0.0, 5.0, 10.0};
  KMedoidsOptions o;
  o.num_clusters = 3;
  o.seed = 3;
  KMedoidsResult r;
  ASSERT_TRUE(KMedoids(3, LineDistance(pts), o, &r).ok());
  EXPECT_NEAR(r.total_cost, 0.0, 1e-12);
}

TEST(KMedoidsTest, KGreaterThanNClamped) {
  std::vector<double> pts = {0.0, 1.0};
  KMedoidsOptions o;
  o.num_clusters = 10;
  KMedoidsResult r;
  ASSERT_TRUE(KMedoids(2, LineDistance(pts), o, &r).ok());
  EXPECT_LE(r.medoids.size(), 2u);
}

TEST(KMedoidsTest, DeterministicGivenSeed) {
  std::vector<double> pts = TwoBlobs();
  KMedoidsOptions o;
  o.num_clusters = 2;
  o.seed = 4;
  KMedoidsResult r1, r2;
  ASSERT_TRUE(KMedoids(pts.size(), LineDistance(pts), o, &r1).ok());
  ASSERT_TRUE(KMedoids(pts.size(), LineDistance(pts), o, &r2).ok());
  EXPECT_EQ(r1.assignment, r2.assignment);
  EXPECT_EQ(r1.medoids, r2.medoids);
}

TEST(KMedoidsTest, ThreeBlobs) {
  std::vector<double> pts;
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 6; ++i) {
      pts.push_back(b * 100.0 + i * 0.5);
    }
  }
  KMedoidsOptions o;
  o.num_clusters = 3;
  o.seed = 5;
  KMedoidsResult r;
  ASSERT_TRUE(KMedoids(pts.size(), LineDistance(pts), o, &r).ok());
  // Each blob pure.
  for (int b = 0; b < 3; ++b) {
    for (int i = 1; i < 6; ++i) {
      EXPECT_EQ(r.assignment[b * 6 + i], r.assignment[b * 6]);
    }
  }
  EXPECT_LT(r.total_cost, 30.0);
}

}  // namespace
}  // namespace cluseq
