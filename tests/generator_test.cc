#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "synth/dataset.h"
#include "synth/generator_model.h"
#include "synth/language_like.h"
#include "synth/protein_like.h"

namespace cluseq {
namespace {

TEST(GeneratorModelTest, GeneratesRequestedLength) {
  Rng rng(1);
  GeneratorModel::Params p;
  p.alphabet_size = 6;
  GeneratorModel m = GeneratorModel::Random(p, &rng);
  for (size_t len : {0u, 1u, 10u, 500u}) {
    Rng gen(2);
    EXPECT_EQ(m.Generate(len, &gen).size(), len);
  }
}

TEST(GeneratorModelTest, SymbolsInRange) {
  Rng rng(3);
  GeneratorModel::Params p;
  p.alphabet_size = 5;
  GeneratorModel m = GeneratorModel::Random(p, &rng);
  Rng gen(4);
  for (SymbolId s : m.Generate(1000, &gen)) {
    EXPECT_LT(s, 5u);
  }
}

TEST(GeneratorModelTest, DeterministicGivenRngState) {
  Rng rng1(5), rng2(5);
  GeneratorModel::Params p;
  GeneratorModel m1 = GeneratorModel::Random(p, &rng1);
  GeneratorModel m2 = GeneratorModel::Random(p, &rng2);
  Rng g1(6), g2(6);
  EXPECT_EQ(m1.Generate(200, &g1), m2.Generate(200, &g2));
}

TEST(GeneratorModelTest, NextDistributionNormalized) {
  Rng rng(7);
  GeneratorModel::Params p;
  p.alphabet_size = 8;
  GeneratorModel m = GeneratorModel::Random(p, &rng);
  Rng g(8);
  std::vector<SymbolId> history = m.Generate(20, &g);
  const auto& dist = m.NextDistribution(history);
  double sum = 0.0;
  for (double d : dist) sum += d;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GeneratorModelTest, DistinctSourcesAreStatisticallyDifferent) {
  Rng rng(9);
  GeneratorModel::Params p;
  p.alphabet_size = 8;
  p.spread = 0.2;
  GeneratorModel a = GeneratorModel::Random(p, &rng);
  GeneratorModel b = GeneratorModel::Random(p, &rng);
  Rng g(10);
  auto sa = a.Generate(5000, &g);
  auto sb = b.Generate(5000, &g);
  // Compare bigram distributions: total variation must be noticeable.
  auto bigrams = [](const std::vector<SymbolId>& s) {
    std::vector<double> counts(64, 0.0);
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      counts[s[i] * 8 + s[i + 1]] += 1.0;
    }
    double total = static_cast<double>(s.size() - 1);
    for (double& c : counts) c /= total;
    return counts;
  };
  auto ba = bigrams(sa), bb = bigrams(sb);
  double tv = 0.0;
  for (size_t i = 0; i < 64; ++i) tv += std::abs(ba[i] - bb[i]);
  EXPECT_GT(tv, 0.3);
}

TEST(GeneratorModelTest, UniformSourceIsFlat) {
  GeneratorModel u = GeneratorModel::Uniform(4);
  Rng g(11);
  auto s = u.Generate(8000, &g);
  std::vector<size_t> counts(4, 0);
  for (SymbolId v : s) ++counts[v];
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 8000.0, 0.25, 0.03);
  }
}

TEST(SyntheticDatasetTest, ShapeAndLabels) {
  SyntheticDatasetOptions o;
  o.num_clusters = 3;
  o.sequences_per_cluster = 10;
  o.alphabet_size = 6;
  o.avg_length = 50;
  o.outlier_fraction = 0.2;
  o.seed = 12;
  SequenceDatabase db = MakeSyntheticDataset(o);
  EXPECT_EQ(db.size(), 30u + 6u);
  EXPECT_EQ(db.alphabet().size(), 6u);
  std::set<Label> labels;
  size_t outliers = 0;
  for (const auto& s : db.sequences()) {
    if (s.label() == kNoLabel) {
      ++outliers;
    } else {
      labels.insert(s.label());
    }
    EXPECT_GE(s.length(), 25u);
    EXPECT_LE(s.length(), 100u);
  }
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(outliers, 6u);
  EXPECT_EQ(db.NumLabels(), 3u);
}

TEST(SyntheticDatasetTest, DeterministicGivenSeed) {
  SyntheticDatasetOptions o;
  o.num_clusters = 2;
  o.sequences_per_cluster = 5;
  o.seed = 13;
  SequenceDatabase a = MakeSyntheticDataset(o);
  SequenceDatabase b = MakeSyntheticDataset(o);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].symbols(), b[i].symbols());
  }
}

TEST(SyntheticDatasetTest, ZeroOutliers) {
  SyntheticDatasetOptions o;
  o.num_clusters = 2;
  o.sequences_per_cluster = 5;
  o.outlier_fraction = 0.0;
  SequenceDatabase db = MakeSyntheticDataset(o);
  EXPECT_EQ(db.size(), 10u);
}

TEST(ProteinLikeTest, FamilyStructure) {
  ProteinLikeOptions o;
  o.num_families = 30;
  o.scale = 0.05;
  o.avg_length = 100;
  o.seed = 14;
  ProteinLikeDataset d = MakeProteinLikeDataset(o);
  EXPECT_EQ(d.family_names.size(), 30u);
  EXPECT_EQ(d.family_names[0], "ig");
  EXPECT_EQ(d.family_names[1], "pkinase");
  EXPECT_EQ(d.family_names[29], "rrm");
  EXPECT_EQ(d.db.alphabet().size(), 20u);  // Amino acids.
  EXPECT_EQ(d.db.NumLabels(), 30u);
  // Sizes follow the skewed ladder: family 0 biggest.
  EXPECT_GT(d.family_sizes[0], d.family_sizes[29]);
  size_t total = 0;
  for (size_t s : d.family_sizes) total += s;
  EXPECT_EQ(d.db.size(), total);
}

TEST(ProteinLikeTest, MembersCarryFamilyLabel) {
  ProteinLikeOptions o;
  o.num_families = 5;
  o.scale = 0.02;
  o.seed = 15;
  ProteinLikeDataset d = MakeProteinLikeDataset(o);
  std::vector<size_t> counts(5, 0);
  for (const auto& s : d.db.sequences()) {
    ASSERT_NE(s.label(), kNoLabel);
    ASSERT_LT(static_cast<size_t>(s.label()), 5u);
    ++counts[static_cast<size_t>(s.label())];
  }
  for (size_t f = 0; f < 5; ++f) EXPECT_EQ(counts[f], d.family_sizes[f]);
}

TEST(LanguageLikeTest, DatasetShape) {
  LanguageLikeOptions o;
  o.sentences_per_language = 20;
  o.noise_sentences = 5;
  o.seed = 16;
  LanguageLikeDataset d = MakeLanguageLikeDataset(o);
  EXPECT_EQ(d.db.size(), 65u);
  EXPECT_EQ(d.language_names.size(), 3u);
  size_t noise = 0;
  for (const auto& s : d.db.sequences()) {
    if (s.label() == kNoLabel) ++noise;
    EXPECT_GE(s.length(), o.min_sentence_length);
    EXPECT_LE(s.length(), o.max_sentence_length);
  }
  EXPECT_EQ(noise, 5u);
}

TEST(LanguageLikeTest, EnglishHasThBigram) {
  std::string s = GenerateSentence(LanguageId::kEnglish, 4000, 17);
  size_t th = 0;
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    if (s[i] == 't' && s[i + 1] == 'h') ++th;
  }
  // "the/that/they/..." make th far more common than chance (~1/676 ≈ 6).
  EXPECT_GT(th, 40u);
}

TEST(LanguageLikeTest, JapaneseAlternatesVowelConsonant) {
  std::string s = GenerateSentence(LanguageId::kJapanese, 4000, 18);
  auto is_vowel = [](char c) {
    return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
  };
  size_t vowels = 0;
  size_t cc_runs = 0;  // Consonant pairs (rare in romaji except n/sh/ts..).
  for (size_t i = 0; i < s.size(); ++i) {
    if (is_vowel(s[i])) ++vowels;
    if (i > 0 && !is_vowel(s[i]) && !is_vowel(s[i - 1])) ++cc_runs;
  }
  double vowel_rate = static_cast<double>(vowels) / s.size();
  EXPECT_GT(vowel_rate, 0.40);
  EXPECT_LT(static_cast<double>(cc_runs) / s.size(), 0.12);
}

TEST(LanguageLikeTest, LanguagesHaveDistinctLetterStatistics) {
  std::string en = GenerateSentence(LanguageId::kEnglish, 6000, 19);
  std::string zh = GenerateSentence(LanguageId::kChinese, 6000, 19);
  std::string ja = GenerateSentence(LanguageId::kJapanese, 6000, 19);
  auto freq = [](const std::string& s) {
    std::vector<double> f(26, 0.0);
    for (char c : s) f[c - 'a'] += 1.0 / s.size();
    return f;
  };
  auto tv = [](const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0.0;
    for (size_t i = 0; i < 26; ++i) d += std::abs(a[i] - b[i]);
    return d;
  };
  auto fe = freq(en), fz = freq(zh), fj = freq(ja);
  EXPECT_GT(tv(fe, fz), 0.2);
  EXPECT_GT(tv(fe, fj), 0.2);
  EXPECT_GT(tv(fz, fj), 0.2);
}

}  // namespace
}  // namespace cluseq
