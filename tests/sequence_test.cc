#include "seq/sequence.h"

#include <gtest/gtest.h>

#include "seq/sequence_database.h"

namespace cluseq {
namespace {

TEST(SequenceTest, BasicAccessors) {
  Sequence s({1, 2, 3}, "id1", 7);
  EXPECT_EQ(s.length(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 2u);
  EXPECT_EQ(s.id(), "id1");
  EXPECT_EQ(s.label(), 7);
}

TEST(SequenceTest, DefaultIsEmptyUnlabeled) {
  Sequence s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.label(), kNoLabel);
}

TEST(SequenceTest, SegmentExtraction) {
  Sequence s({10, 11, 12, 13, 14});
  EXPECT_EQ(s.Segment(1, 4), (std::vector<SymbolId>{11, 12, 13}));
  EXPECT_EQ(s.Segment(0, 5), s.symbols());
  EXPECT_TRUE(s.Segment(3, 3).empty());
  EXPECT_TRUE(s.Segment(4, 2).empty());
}

TEST(SequenceTest, SegmentClampsOutOfRange) {
  Sequence s({1, 2, 3});
  EXPECT_EQ(s.Segment(1, 100), (std::vector<SymbolId>{2, 3}));
  EXPECT_TRUE(s.Segment(50, 100).empty());
}

TEST(SequenceTest, Reversed) {
  Sequence s({1, 2, 3});
  EXPECT_EQ(s.Reversed(), (std::vector<SymbolId>{3, 2, 1}));
  EXPECT_TRUE(Sequence().Reversed().empty());
}

TEST(SequenceTest, EqualityIsSymbolBased) {
  EXPECT_EQ(Sequence({1, 2}, "a", 1), Sequence({1, 2}, "b", 2));
  EXPECT_FALSE(Sequence({1, 2}) == Sequence({2, 1}));
}

TEST(SequenceDatabaseTest, AddAndIndex) {
  SequenceDatabase db(Alphabet::FromChars("ab"));
  size_t i0 = db.Add(Sequence({0, 1}));
  size_t i1 = db.Add(Sequence({1}));
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db[1].length(), 1u);
}

TEST(SequenceDatabaseTest, AddTextInterns) {
  SequenceDatabase db;
  ASSERT_TRUE(db.AddText("abcab", "s0", 3).ok());
  EXPECT_EQ(db.alphabet().size(), 3u);
  EXPECT_EQ(db[0].length(), 5u);
  EXPECT_EQ(db[0].label(), 3);
  EXPECT_EQ(db[0].id(), "s0");
}

TEST(SequenceDatabaseTest, TotalsAndAverages) {
  SequenceDatabase db(Alphabet::FromChars("ab"));
  db.Add(Sequence({0, 1, 0}));
  db.Add(Sequence({1}));
  EXPECT_EQ(db.TotalSymbols(), 4u);
  EXPECT_DOUBLE_EQ(db.AverageLength(), 2.0);
}

TEST(SequenceDatabaseTest, EmptyDatabaseStats) {
  SequenceDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.TotalSymbols(), 0u);
  EXPECT_DOUBLE_EQ(db.AverageLength(), 0.0);
  EXPECT_EQ(db.NumLabels(), 0u);
}

TEST(SequenceDatabaseTest, NumLabelsIgnoresOutliers) {
  SequenceDatabase db(Alphabet::FromChars("a"));
  db.Add(Sequence({0}, "x", 4));
  db.Add(Sequence({0}, "y", kNoLabel));
  db.Add(Sequence({0}, "z", 2));
  EXPECT_EQ(db.NumLabels(), 5u);  // max label 4 -> 5 classes.
}

TEST(SequenceDatabaseTest, Clear) {
  SequenceDatabase db(Alphabet::FromChars("a"));
  db.Add(Sequence({0}));
  db.Clear();
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.alphabet().size(), 1u);  // Alphabet survives.
}

TEST(SequenceDatabaseTest, ClearDropsSymbolsInternedAfterConstruction) {
  // Regression: Clear() used to drop the sequences but keep every symbol
  // AddText had interned, so the next corpus loaded into the same database
  // inherited a polluted alphabet (and different dense ids than a fresh
  // load would assign).
  SequenceDatabase db(Alphabet::FromChars("ab"));
  ASSERT_TRUE(db.AddText("abxyz", "s0").ok());
  EXPECT_EQ(db.alphabet().size(), 5u);  // a b + interned x y z.
  db.Clear();
  EXPECT_EQ(db.alphabet().size(), 2u);  // Only the constructed alphabet.
  EXPECT_EQ(db.alphabet().Find("x"), kInvalidSymbol);
  // Re-interning after Clear() reassigns the same dense ids a fresh
  // database would.
  ASSERT_TRUE(db.AddText("zab", "s1").ok());
  EXPECT_EQ(db.alphabet().Find("z"), SymbolId{2});
  EXPECT_EQ(db.alphabet().size(), 3u);
}

TEST(SequenceDatabaseTest, ClearOnDefaultConstructedDropsEverything) {
  SequenceDatabase db;
  ASSERT_TRUE(db.AddText("abc", "s0").ok());
  EXPECT_EQ(db.alphabet().size(), 3u);
  db.Clear();
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.alphabet().size(), 0u);
}

}  // namespace
}  // namespace cluseq
