#include "obs/json.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace cluseq {
namespace obs {
namespace {

std::string WriteSample() {
  std::ostringstream out;
  JsonWriter writer(out);
  writer.BeginObject();
  writer.KeyValue("name", std::string_view("clu\"seq\n"));
  writer.KeyValue("count", uint64_t{42});
  writer.KeyValue("delta", int64_t{-7});
  writer.KeyValue("ratio", 0.1);
  writer.KeyValue("flag", true);
  writer.Key("none");
  writer.Null();
  writer.Key("values");
  writer.BeginArray();
  writer.Double(1.5);
  writer.Double(-std::numeric_limits<double>::infinity());
  writer.UInt(3);
  writer.EndArray();
  writer.Key("nested");
  writer.BeginObject();
  writer.KeyValue("inner", std::string_view("x"));
  writer.EndObject();
  writer.EndObject();
  return out.str();
}

TEST(JsonWriterTest, EmitsParseableDocument) {
  const std::string text = WriteSample();
  JsonValue root;
  ASSERT_TRUE(ParseJson(text, &root).ok()) << text;
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("name")->string_value, "clu\"seq\n");
  EXPECT_EQ(root.Find("count")->number, 42.0);
  EXPECT_EQ(root.Find("delta")->number, -7.0);
  EXPECT_DOUBLE_EQ(root.Find("ratio")->number, 0.1);
  EXPECT_TRUE(root.Find("flag")->bool_value);
  EXPECT_TRUE(root.Find("none")->is_null());
  ASSERT_TRUE(root.Find("values")->is_array());
  const auto& values = root.Find("values")->array;
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0].number, 1.5);
  // Non-finite doubles must degrade to null (JSON has no Infinity).
  EXPECT_TRUE(values[1].is_null());
  EXPECT_EQ(values[2].number, 3.0);
  EXPECT_EQ(root.Find("nested")->Find("inner")->string_value, "x");
}

TEST(JsonWriterTest, DoubleRoundTripsExactly) {
  const double original = 0.1 + 0.2;  // Not representable prettily.
  std::ostringstream out;
  JsonWriter writer(out);
  writer.Double(original);
  JsonValue v;
  ASSERT_TRUE(ParseJson(out.str(), &v).ok());
  EXPECT_EQ(v.number, original);  // Bit-exact via %.17g.
}

TEST(JsonWriterTest, ObjectMemberOrderIsPreserved) {
  std::ostringstream out;
  JsonWriter writer(out);
  writer.BeginObject();
  writer.KeyValue("zebra", uint64_t{1});
  writer.KeyValue("apple", uint64_t{2});
  writer.EndObject();
  JsonValue root;
  ASSERT_TRUE(ParseJson(out.str(), &root).ok());
  ASSERT_EQ(root.object.size(), 2u);
  EXPECT_EQ(root.object[0].first, "zebra");
  EXPECT_EQ(root.object[1].first, "apple");
}

TEST(JsonWriterTest, ControlCharactersAreEscaped) {
  std::ostringstream out;
  JsonWriter writer(out);
  writer.String(std::string_view("a\x01" "b\tc"));
  const std::string text = out.str();
  EXPECT_NE(text.find("\\u0001"), std::string::npos) << text;
  EXPECT_NE(text.find("\\t"), std::string::npos) << text;
  JsonValue v;
  ASSERT_TRUE(ParseJson(text, &v).ok());
  EXPECT_EQ(v.string_value, "a\x01" "b\tc");
}

TEST(JsonWriterTest, DoneAfterSingleTopLevelValue) {
  std::ostringstream out;
  JsonWriter writer(out);
  EXPECT_FALSE(writer.done());
  writer.BeginObject();
  EXPECT_FALSE(writer.done());
  writer.EndObject();
  EXPECT_TRUE(writer.done());
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  JsonValue v;
  EXPECT_FALSE(ParseJson("", &v).ok());
  EXPECT_FALSE(ParseJson("{", &v).ok());
  EXPECT_FALSE(ParseJson("{\"a\": }", &v).ok());
  EXPECT_FALSE(ParseJson("[1, 2,]", &v).ok());
  EXPECT_FALSE(ParseJson("nul", &v).ok());
  EXPECT_FALSE(ParseJson("\"unterminated", &v).ok());
  EXPECT_FALSE(ParseJson("{} trailing", &v).ok());
  EXPECT_FALSE(ParseJson("1.2.3", &v).ok());
}

TEST(JsonParserTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  JsonValue v;
  EXPECT_FALSE(ParseJson(deep, &v).ok());
}

TEST(JsonParserTest, ParsesNumbersAndLiterals) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("  -12.5e2  ", &v).ok());
  EXPECT_EQ(v.number, -1250.0);
  ASSERT_TRUE(ParseJson("true", &v).ok());
  EXPECT_TRUE(v.bool_value);
  ASSERT_TRUE(ParseJson("null", &v).ok());
  EXPECT_TRUE(v.is_null());
}

TEST(JsonParserTest, FindOnNonObjectReturnsNull) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("[1]", &v).ok());
  EXPECT_EQ(v.Find("key"), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace cluseq
