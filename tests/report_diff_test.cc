#include "obs/report_diff.h"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace cluseq {
namespace obs {
namespace {

JsonValue Parse(const std::string& text) {
  JsonValue root;
  const Status status = ParseJson(text, &root);
  EXPECT_TRUE(status.ok()) << status.message() << "\n" << text;
  return root;
}

ReportMetrics Extract(const std::string& text) {
  ReportMetrics metrics;
  const Status status = ExtractReportMetrics(Parse(text), &metrics);
  EXPECT_TRUE(status.ok()) << status.message();
  return metrics;
}

const char kBenchA[] = R"({
  "schema": "cluseq.bench.v1",
  "name": "prefilter",
  "git": "abc123",
  "hardware_threads": 8,
  "degraded": false,
  "k256_skip_ratio": 0.995,
  "speedup_k256": 4.0,
  "identical": true
})";

std::string BenchWith(double skip_ratio, double speedup) {
  std::ostringstream out;
  out << R"({
  "schema": "cluseq.bench.v1",
  "name": "prefilter",
  "hardware_threads": 1,
  "degraded": true,
  "k256_skip_ratio": )" << skip_ratio << R"(,
  "speedup_k256": )" << speedup << R"(,
  "identical": true
})";
  return out.str();
}

TEST(ReportDiffTest, ExtractBenchFlattensNumbersAndBools) {
  const ReportMetrics metrics = Extract(kBenchA);
  EXPECT_EQ(metrics.schema, "cluseq.bench.v1");
  EXPECT_EQ(metrics.name, "prefilter");
  double value = 0.0;
  ASSERT_TRUE(metrics.Lookup("k256_skip_ratio", &value));
  EXPECT_DOUBLE_EQ(value, 0.995);
  ASSERT_TRUE(metrics.Lookup("identical", &value));
  EXPECT_EQ(value, 1.0);  // Bools diff as 0/1.
  ASSERT_TRUE(metrics.Lookup("hardware_threads", &value));
  EXPECT_EQ(value, 8.0);
  // Envelope strings are not metrics.
  EXPECT_FALSE(metrics.Lookup("git", &value));
  EXPECT_FALSE(metrics.Lookup("schema", &value));
}

TEST(ReportDiffTest, ExtractRejectsMissingOrUnknownSchema) {
  ReportMetrics metrics;
  EXPECT_FALSE(
      ExtractReportMetrics(Parse(R"({"bench": "old"})"), &metrics).ok());
  EXPECT_FALSE(
      ExtractReportMetrics(Parse(R"({"schema": "cluseq.bench.v9"})"),
                           &metrics)
          .ok());
  EXPECT_FALSE(ExtractReportMetrics(Parse(R"([1, 2])"), &metrics).ok());
}

TEST(ReportDiffTest, ExtractRunReportFlattensAndAliases) {
  const ReportMetrics metrics = Extract(R"({
    "schema": "cluseq.run_report.v1",
    "summary": {
      "num_clusters": 5,
      "total_seconds": 2.5,
      "prefilter": {"enabled": true, "skip_ratio": 0.99},
      "perf": {"available": true, "cycles": 1000, "maxrss_kb": 4096}
    },
    "input": {"num_sequences": 100, "corpus": {"records": 100}},
    "iterations": [
      {"stats": {"scan_seconds": 1.0, "refrozen_clusters": 3}},
      {"stats": {"scan_seconds": 0.5, "refrozen_clusters": 2}}
    ],
    "final_metrics": {
      "counters": {"cluseq.iterations": 2},
      "gauges": {"frozen_bank.scan_symbols_per_sec": 1000000.0}
    }
  })");
  double value = 0.0;
  ASSERT_TRUE(metrics.Lookup("summary.num_clusters", &value));
  EXPECT_EQ(value, 5.0);
  ASSERT_TRUE(metrics.Lookup("summary.prefilter.skip_ratio", &value));
  EXPECT_DOUBLE_EQ(value, 0.99);
  ASSERT_TRUE(metrics.Lookup("summary.perf.cycles", &value));
  EXPECT_EQ(value, 1000.0);
  ASSERT_TRUE(metrics.Lookup("input.corpus.records", &value));
  EXPECT_EQ(value, 100.0);
  ASSERT_TRUE(metrics.Lookup("metrics.cluseq.iterations", &value));
  EXPECT_EQ(value, 2.0);
  // Derived aliases.
  ASSERT_TRUE(metrics.Lookup("scan.seconds", &value));
  EXPECT_DOUBLE_EQ(value, 1.5);
  ASSERT_TRUE(metrics.Lookup("refrozen_clusters", &value));
  EXPECT_EQ(value, 5.0);
  ASSERT_TRUE(metrics.Lookup("scan.symbols_per_sec", &value));
  EXPECT_DOUBLE_EQ(value, 1000000.0);
  ASSERT_TRUE(metrics.Lookup("prefilter.skip_ratio", &value));
  EXPECT_DOUBLE_EQ(value, 0.99);
  ASSERT_TRUE(metrics.Lookup("peak_rss_kb", &value));
  EXPECT_EQ(value, 4096.0);
}

TEST(ReportDiffTest, FailRuleParsesDirectionsAndUnits) {
  FailRule rule;
  ASSERT_TRUE(FailRule::Parse("scan.symbols_per_sec:-10%", &rule).ok());
  EXPECT_EQ(rule.metric, "scan.symbols_per_sec");
  EXPECT_EQ(rule.direction, FailRule::Direction::kBelow);
  EXPECT_DOUBLE_EQ(rule.tolerance, 0.10);

  ASSERT_TRUE(FailRule::Parse("peak_rss_kb:+20%", &rule).ok());
  EXPECT_EQ(rule.direction, FailRule::Direction::kAbove);
  EXPECT_DOUBLE_EQ(rule.tolerance, 0.20);

  ASSERT_TRUE(FailRule::Parse("k256_skip_ratio:0%", &rule).ok());
  EXPECT_EQ(rule.direction, FailRule::Direction::kBoth);
  EXPECT_DOUBLE_EQ(rule.tolerance, 0.0);

  ASSERT_TRUE(FailRule::Parse("speedup_k256:0.05", &rule).ok());
  EXPECT_EQ(rule.direction, FailRule::Direction::kBoth);
  EXPECT_DOUBLE_EQ(rule.tolerance, 0.05);

  EXPECT_FALSE(FailRule::Parse("no_tolerance", &rule).ok());
  EXPECT_FALSE(FailRule::Parse(":5%", &rule).ok());
  EXPECT_FALSE(FailRule::Parse("metric:", &rule).ok());
  EXPECT_FALSE(FailRule::Parse("metric:abc", &rule).ok());
  EXPECT_FALSE(FailRule::Parse("metric:--5%", &rule).ok());
}

TEST(ReportDiffTest, SelfDiffIsCleanUnderExactRules) {
  const ReportMetrics a = Extract(kBenchA);
  std::vector<FailRule> rules(2);
  ASSERT_TRUE(FailRule::Parse("k256_skip_ratio:0%", &rules[0]).ok());
  ASSERT_TRUE(FailRule::Parse("identical:0%", &rules[1]).ok());
  ReportDiff diff;
  ASSERT_TRUE(ComputeReportDiff(a, a, rules, &diff).ok());
  EXPECT_TRUE(diff.ok());
  EXPECT_TRUE(diff.only_in_a.empty());
  EXPECT_TRUE(diff.only_in_b.empty());
  for (const MetricDelta& row : diff.rows) {
    EXPECT_EQ(row.abs_delta, 0.0) << row.name;
    EXPECT_EQ(row.rel_delta, 0.0) << row.name;
  }
}

TEST(ReportDiffTest, RegressionBreachesDirectionalRule) {
  const ReportMetrics a = Extract(BenchWith(0.995, 4.0));
  const ReportMetrics b = Extract(BenchWith(0.995, 3.0));  // -25% speedup.
  std::vector<FailRule> rules(1);
  ASSERT_TRUE(FailRule::Parse("speedup_k256:-10%", &rules[0]).ok());
  ReportDiff diff;
  ASSERT_TRUE(ComputeReportDiff(a, b, rules, &diff).ok());
  ASSERT_EQ(diff.breaches.size(), 1u);
  EXPECT_EQ(diff.breaches[0].metric, "speedup_k256");

  // An improvement must NOT trip the lower-bound rule.
  const ReportMetrics c = Extract(BenchWith(0.995, 8.0));
  ASSERT_TRUE(ComputeReportDiff(a, c, rules, &diff).ok());
  EXPECT_TRUE(diff.ok());

  // ...but trips a both-direction exact rule.
  ASSERT_TRUE(FailRule::Parse("speedup_k256:0%", &rules[0]).ok());
  ASSERT_TRUE(ComputeReportDiff(a, c, rules, &diff).ok());
  EXPECT_FALSE(diff.ok());
}

TEST(ReportDiffTest, ToleranceBoundaryIsInclusive) {
  const ReportMetrics a = Extract(BenchWith(0.995, 4.0));
  const ReportMetrics b = Extract(BenchWith(0.995, 3.6));  // Exactly -10%.
  std::vector<FailRule> rules(1);
  ASSERT_TRUE(FailRule::Parse("speedup_k256:-10%", &rules[0]).ok());
  ReportDiff diff;
  ASSERT_TRUE(ComputeReportDiff(a, b, rules, &diff).ok());
  // rel == -tolerance does not breach (strict inequality).
  EXPECT_TRUE(diff.ok()) << diff.breaches[0].reason;
}

TEST(ReportDiffTest, MissingMetricBreachesConservatively) {
  const ReportMetrics a = Extract(kBenchA);
  std::vector<FailRule> rules(1);
  ASSERT_TRUE(FailRule::Parse("no_such_metric:-10%", &rules[0]).ok());
  ReportDiff diff;
  ASSERT_TRUE(ComputeReportDiff(a, a, rules, &diff).ok());
  ASSERT_EQ(diff.breaches.size(), 1u);
  EXPECT_NE(diff.breaches[0].reason.find("missing"), std::string::npos);
}

TEST(ReportDiffTest, SchemaAndNameMismatchAreUsageErrors) {
  const ReportMetrics bench = Extract(kBenchA);
  const ReportMetrics report = Extract(
      R"({"schema": "cluseq.run_report.v1", "summary": {"num_clusters": 1},
          "iterations": []})");
  ReportDiff diff;
  EXPECT_FALSE(ComputeReportDiff(bench, report, {}, &diff).ok());

  ReportMetrics other_bench = bench;
  other_bench.name = "frozen_bank";
  EXPECT_FALSE(ComputeReportDiff(bench, other_bench, {}, &diff).ok());
}

TEST(ReportDiffTest, NullValuesSurfaceAsDiagnosticsAndBreachRules) {
  // The writer serializes NaN/Inf as null; a rule on such a key must fail.
  const ReportMetrics a = Extract(R"({
    "schema": "cluseq.bench.v1", "name": "x", "good": 1.0, "bad": null})");
  const ReportMetrics b = Extract(R"({
    "schema": "cluseq.bench.v1", "name": "x", "good": 1.0, "bad": 2.0})");
  ASSERT_EQ(a.non_finite.size(), 1u);
  EXPECT_EQ(a.non_finite[0], "bad");

  std::vector<FailRule> rules(1);
  ASSERT_TRUE(FailRule::Parse("bad:0%", &rules[0]).ok());
  ReportDiff diff;
  ASSERT_TRUE(ComputeReportDiff(a, b, rules, &diff).ok());
  ASSERT_EQ(diff.breaches.size(), 1u);
  EXPECT_NE(diff.breaches[0].reason.find("non-finite"), std::string::npos);
  ASSERT_FALSE(diff.diagnostics.empty());
}

TEST(ReportDiffTest, ZeroBaselineYieldsInfiniteRelativeDelta) {
  const ReportMetrics a = Extract(
      R"({"schema": "cluseq.bench.v1", "name": "x", "m": 0.0})");
  const ReportMetrics b = Extract(
      R"({"schema": "cluseq.bench.v1", "name": "x", "m": 5.0})");
  std::vector<FailRule> rules(1);
  ASSERT_TRUE(FailRule::Parse("m:50%", &rules[0]).ok());
  ReportDiff diff;
  ASSERT_TRUE(ComputeReportDiff(a, b, rules, &diff).ok());
  ASSERT_EQ(diff.rows.size(), 1u);
  EXPECT_TRUE(std::isinf(diff.rows[0].rel_delta));
  // |inf| > any tolerance: the rule fires.
  EXPECT_FALSE(diff.ok());
  // 0 -> 0 is a clean 0% delta.
  ASSERT_TRUE(ComputeReportDiff(a, a, rules, &diff).ok());
  EXPECT_TRUE(diff.ok());
}

TEST(ReportDiffTest, KeySetChangesAreReportedNotFatal) {
  const ReportMetrics a = Extract(
      R"({"schema": "cluseq.bench.v1", "name": "x", "common": 1, "old": 2})");
  const ReportMetrics b = Extract(
      R"({"schema": "cluseq.bench.v1", "name": "x", "common": 1, "new": 3})");
  ReportDiff diff;
  ASSERT_TRUE(ComputeReportDiff(a, b, {}, &diff).ok());
  EXPECT_TRUE(diff.ok());
  ASSERT_EQ(diff.only_in_a.size(), 1u);
  EXPECT_EQ(diff.only_in_a[0], "old");
  ASSERT_EQ(diff.only_in_b.size(), 1u);
  EXPECT_EQ(diff.only_in_b[0], "new");
  ASSERT_EQ(diff.rows.size(), 1u);
  EXPECT_EQ(diff.rows[0].name, "common");
}

TEST(ReportDiffTest, PrintRendersTableBreachesAndNotes) {
  const ReportMetrics a = Extract(BenchWith(0.995, 4.0));
  const ReportMetrics b = Extract(BenchWith(0.5, 4.0));
  std::vector<FailRule> rules(1);
  ASSERT_TRUE(FailRule::Parse("k256_skip_ratio:0%", &rules[0]).ok());
  ReportDiff diff;
  ASSERT_TRUE(ComputeReportDiff(a, b, rules, &diff).ok());
  std::ostringstream out;
  PrintReportDiff(diff, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("k256_skip_ratio"), std::string::npos);
  EXPECT_NE(text.find("BREACH"), std::string::npos);
  EXPECT_NE(text.find("schema: cluseq.bench.v1"), std::string::npos);

  ReportDiff clean;
  ASSERT_TRUE(ComputeReportDiff(a, a, {}, &clean).ok());
  std::ostringstream clean_out;
  PrintReportDiff(clean, clean_out);
  EXPECT_NE(clean_out.str().find("ok: no thresholds breached"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace cluseq
