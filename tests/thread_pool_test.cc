#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cluseq {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsCoercedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Should not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, InlineWhenSingleThread) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, 16, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, SumMatchesSequential) {
  const size_t n = 4096;
  std::vector<long> partial(n);
  ParallelFor(n, 3, [&](size_t i) { partial[i] = static_cast<long>(i * i); });
  long total = std::accumulate(partial.begin(), partial.end(), 0L);
  long expected = 0;
  for (size_t i = 0; i < n; ++i) expected += static_cast<long>(i * i);
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, SubmitExceptionRethrownByWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is consumed: the pool stays usable and a clean Wait follows.
  pool.Submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPoolTest, GlobalPoolIsPersistentAndHardwareSized) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_threads(), HardwareThreads());
}

TEST(ThreadPoolTest, WorkStealingDrainsUnevenQueues) {
  // Round-robin placement puts tasks on every queue; a single long-running
  // task on one worker forces siblings to steal the rest. All tasks must
  // complete either way.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelForTest, BodyExceptionRethrownOnCaller) {
  const size_t n = 1000;
  std::atomic<size_t> visited{0};
  try {
    ParallelFor(n, 4, [&](size_t i) {
      if (i == 17) throw std::runtime_error("body boom");
      visited.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "body boom");
  }
  // Remaining chunks may be abandoned, but nothing runs after the loop
  // returns and the pool is still usable.
  EXPECT_LE(visited.load(), n - 1);
  std::atomic<size_t> after{0};
  ParallelFor(100, 4, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100u);
}

TEST(ParallelForTest, NestedCallOnWorkerRunsInline) {
  // A ParallelFor issued from inside a pool task must not block the worker
  // on the pool (deadlock) — it degrades to inline, so the inner loop runs
  // single-threaded in index order on that worker.
  ThreadPool pool(2);
  std::atomic<int> tasks_done{0};
  std::atomic<bool> inner_ordered{true};
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&tasks_done, &inner_ordered] {
      EXPECT_TRUE(ThreadPool::OnWorkerThread());
      std::vector<int> order;
      ParallelFor(5, 4,
                  [&](size_t j) { order.push_back(static_cast<int>(j)); });
      if (order != std::vector<int>{0, 1, 2, 3, 4}) inner_ordered = false;
      tasks_done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(tasks_done.load(), 8);
  EXPECT_TRUE(inner_ordered.load());
}

TEST(ParallelForTest, NestedCallFromLoopBodyCompletes) {
  // Nesting through a ParallelFor body (caller thread or pool worker) must
  // not deadlock, and every inner index runs exactly once.
  const size_t outer = 6, inner = 40;
  std::vector<std::atomic<int>> hits(outer * inner);
  ParallelFor(outer, 4, [&](size_t i) {
    ParallelFor(inner, 4,
                [&](size_t j) { hits[i * inner + j].fetch_add(1); });
  });
  for (size_t i = 0; i < outer * inner; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelForWeightedTest, CoversEveryIndexOnce) {
  const size_t n = 501;
  std::vector<std::atomic<int>> hits(n);
  // Heavily skewed costs: index 0 dwarfs everything else.
  ParallelForWeighted(
      n, 4, [](size_t i) -> uint64_t { return i == 0 ? 1'000'000 : i; },
      [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForWeightedTest, ZeroCostsStillCovered) {
  const size_t n = 64;
  std::vector<std::atomic<int>> hits(n);
  ParallelForWeighted(
      n, 3, [](size_t) -> uint64_t { return 0; },
      [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForWeightedTest, InlineWhenSingleThread) {
  std::vector<int> order;
  ParallelForWeighted(
      5, 1, [](size_t) -> uint64_t { return 7; },
      [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForWeightedTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelForWeighted(
      0, 4, [](size_t) -> uint64_t { return 1; },
      [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForWeightedTest, ExceptionRethrownOnCaller) {
  EXPECT_THROW(ParallelForWeighted(
                   256, 4, [](size_t) -> uint64_t { return 1; },
                   [&](size_t i) {
                     if (i == 100) throw std::string("weighted boom");
                   }),
               std::string);
}

TEST(HardwareThreadsTest, AtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST(ResolveThreadsTest, ZeroAutoDetectsHardware) {
  EXPECT_EQ(ResolveThreads(0), HardwareThreads());
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(7), 7u);
}

}  // namespace
}  // namespace cluseq
