#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace cluseq {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsCoercedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Should not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, InlineWhenSingleThread) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, 16, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, SumMatchesSequential) {
  const size_t n = 4096;
  std::vector<long> partial(n);
  ParallelFor(n, 3, [&](size_t i) { partial[i] = static_cast<long>(i * i); });
  long total = std::accumulate(partial.begin(), partial.end(), 0L);
  long expected = 0;
  for (size_t i = 0; i < n; ++i) expected += static_cast<long>(i * i);
  EXPECT_EQ(total, expected);
}

TEST(HardwareThreadsTest, AtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

}  // namespace
}  // namespace cluseq
