#include "seq/alphabet.h"

#include <gtest/gtest.h>

namespace cluseq {
namespace {

TEST(AlphabetTest, FromCharsAssignsDenseIds) {
  Alphabet a = Alphabet::FromChars("abc");
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Find("a"), 0u);
  EXPECT_EQ(a.Find("b"), 1u);
  EXPECT_EQ(a.Find("c"), 2u);
  EXPECT_EQ(a.Name(0), "a");
}

TEST(AlphabetTest, FromCharsDeduplicates) {
  Alphabet a = Alphabet::FromChars("aab");
  EXPECT_EQ(a.size(), 2u);
}

TEST(AlphabetTest, SyntheticNames) {
  Alphabet a = Alphabet::Synthetic(4);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.Name(0), "s0");
  EXPECT_EQ(a.Name(3), "s3");
  EXPECT_EQ(a.Find("s2"), 2u);
}

TEST(AlphabetTest, InternIsIdempotent) {
  Alphabet a;
  SymbolId x = a.Intern("foo");
  EXPECT_EQ(a.Intern("foo"), x);
  EXPECT_EQ(a.size(), 1u);
}

TEST(AlphabetTest, FindMissingReturnsInvalid) {
  Alphabet a = Alphabet::FromChars("ab");
  EXPECT_EQ(a.Find("z"), kInvalidSymbol);
}

TEST(AlphabetTest, EncodeCharsStrict) {
  Alphabet a = Alphabet::FromChars("ab");
  std::vector<SymbolId> out;
  EXPECT_TRUE(a.EncodeChars("abba", false, &out).ok());
  EXPECT_EQ(out, (std::vector<SymbolId>{0, 1, 1, 0}));
  Status st = a.EncodeChars("abz", false, &out);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(AlphabetTest, EncodeCharsInternsMissing) {
  Alphabet a = Alphabet::FromChars("ab");
  std::vector<SymbolId> out;
  EXPECT_TRUE(a.EncodeChars("abz", true, &out).ok());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(out[2], 2u);
}

TEST(AlphabetTest, DecodeRoundTrips) {
  Alphabet a = Alphabet::FromChars("xyz");
  std::vector<SymbolId> ids;
  ASSERT_TRUE(a.EncodeChars("zyxzy", false, &ids).ok());
  EXPECT_EQ(a.Decode(ids), "zyxzy");
}

TEST(AlphabetTest, DecodeSkipsOutOfRange) {
  Alphabet a = Alphabet::FromChars("ab");
  EXPECT_EQ(a.Decode({0, 99, 1}), "ab");
}

TEST(AlphabetTest, EmptyAlphabet) {
  Alphabet a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
}

}  // namespace
}  // namespace cluseq
