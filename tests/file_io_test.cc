// Durable IO layer: WriteFileAtomic's crash-safety contract (a failed
// save never leaves a partial or temp file at/next to the final path, and
// never damages a pre-existing file), MappedFile's mmap/buffered parity,
// and the fault-injection harness that scripts torn writes, EINTR storms,
// failed fsyncs and failed renames at the syscall seam.

#include "util/file_io.h"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include <filesystem>

#include "util/fault_injection.h"

namespace cluseq {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl = ::testing::TempDir() + "cluseq_file_io_XXXXXX";
    char* made = ::mkdtemp(tmpl.data());
    ASSERT_NE(made, nullptr);
    dir_ = made;
  }
  void TearDown() override {
    FaultInjector::Get().Disarm();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  /// Files currently in the test directory (names only).
  std::vector<std::string> Listing() const {
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      names.push_back(entry.path().filename().string());
    }
    return names;
  }

  std::string dir_;
};

TEST_F(FileIoTest, AtomicWriteRoundTrips) {
  const std::string path = Path("blob");
  const std::string payload(100000, 'x');
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  EXPECT_TRUE(FileExists(path));
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, payload);
  EXPECT_EQ(Listing().size(), 1u) << "no temp files may survive a save";
}

TEST_F(FileIoTest, AtomicWriteReplacesExisting) {
  const std::string path = Path("blob");
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "new");
}

TEST_F(FileIoTest, MissingFileIsIOError) {
  std::string out;
  EXPECT_TRUE(ReadFileToString(Path("absent"), &out).IsIOError());
  EXPECT_FALSE(FileExists(Path("absent")));
}

TEST_F(FileIoTest, EnsureDirectoryCreatesNestedPath) {
  const std::string nested = Path("a/b/c");
  ASSERT_TRUE(EnsureDirectory(nested).ok());
  EXPECT_TRUE(DirectoryExists(nested));
  // Idempotent.
  EXPECT_TRUE(EnsureDirectory(nested).ok());
  // A regular file in the way is an error, not a silent success.
  ASSERT_TRUE(WriteFileAtomic(Path("a/b/c/f"), "x").ok());
  EXPECT_FALSE(EnsureDirectory(Path("a/b/c/f")).ok());
}

TEST_F(FileIoTest, MappedFileServesMmapAndBufferedIdentically) {
  const std::string path = Path("blob");
  std::string payload;
  for (int i = 0; i < 10000; ++i) payload += static_cast<char>(i * 37);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());

  MappedFile mapped;
  ASSERT_TRUE(MappedFile::Open(path, &mapped).ok());
  EXPECT_TRUE(mapped.is_mmap());
  EXPECT_EQ(mapped.view(), payload);

  MappedFile buffered;
  ASSERT_TRUE(
      MappedFile::Open(path, &buffered, /*prefer_mmap=*/false).ok());
  EXPECT_FALSE(buffered.is_mmap());
  EXPECT_EQ(buffered.view(), payload);

  // Buffered views survive a move (data() must track the moved buffer).
  MappedFile moved(std::move(buffered));
  EXPECT_EQ(moved.view(), payload);
}

TEST_F(FileIoTest, MappedFileEmptyAndMissing) {
  const std::string path = Path("empty");
  ASSERT_TRUE(WriteFileAtomic(path, "").ok());
  MappedFile file;
  ASSERT_TRUE(MappedFile::Open(path, &file).ok());
  EXPECT_EQ(file.size(), 0u);
  EXPECT_FALSE(file.is_mmap());
  EXPECT_TRUE(MappedFile::Open(Path("absent"), &file).IsIOError());
}

// --- fault injection -----------------------------------------------------

TEST_F(FileIoTest, TransientEintrWritesAreRetried) {
  FaultPlan plan;
  plan.transient_eintr_writes = 3;
  ScopedFaultPlan guard(plan);
  const std::string path = Path("blob");
  ASSERT_TRUE(WriteFileAtomic(path, "payload").ok());
  FaultInjector::Get().Disarm();
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "payload");
}

TEST_F(FileIoTest, TornWriteNeverLeavesAVisibleFile) {
  const std::string path = Path("blob");
  const std::string payload(4096, 'y');
  FaultPlan plan;
  plan.write_limit = 1000;  // Torn mid-payload, then EIO.
  {
    ScopedFaultPlan guard(plan);
    EXPECT_TRUE(WriteFileAtomic(path, payload).IsIOError());
  }
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(Listing().empty()) << "failed save must clean up its temp";
}

TEST_F(FileIoTest, FailedFsyncAbortsBeforeRename) {
  const std::string path = Path("blob");
  FaultPlan plan;
  plan.fail_fsync_file = true;
  {
    ScopedFaultPlan guard(plan);
    EXPECT_TRUE(WriteFileAtomic(path, "payload").IsIOError());
  }
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(Listing().empty());
}

TEST_F(FileIoTest, FailedRenameLeavesOldFileIntact) {
  const std::string path = Path("blob");
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  FaultPlan plan;
  plan.fail_rename = true;
  {
    ScopedFaultPlan guard(plan);
    EXPECT_TRUE(WriteFileAtomic(path, "new contents").IsIOError());
  }
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "old contents") << "failed replace must not damage "
                                     "the previous file";
  EXPECT_EQ(Listing().size(), 1u);
}

TEST_F(FileIoTest, FailedDirFsyncReportsButFileIsComplete) {
  // Past the rename the file is whole; only the rename's durability is in
  // doubt, which the caller must still hear about.
  const std::string path = Path("blob");
  FaultPlan plan;
  plan.fail_fsync_dir = true;
  {
    ScopedFaultPlan guard(plan);
    EXPECT_TRUE(WriteFileAtomic(path, "payload").IsIOError());
  }
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "payload");
}

TEST_F(FileIoTest, BitFlipInFlightCorruptsExactlyOneByte) {
  const std::string path = Path("blob");
  const std::string payload(300, 'z');
  FaultPlan plan;
  plan.flip_offset = 123;
  plan.flip_mask = 0x40;
  {
    ScopedFaultPlan guard(plan);
    ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  }
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  ASSERT_EQ(back.size(), payload.size());
  EXPECT_EQ(back[123], static_cast<char>('z' ^ 0x40));
  back[123] = 'z';
  EXPECT_EQ(back, payload);
}

TEST_F(FileIoTest, KillMidSaveAtEveryWriteOffset) {
  // Simulated kill -9 sweep: cut the write stream at every offset of a
  // small payload (then fail all further IO). However early or late the
  // "crash", the final path must hold either nothing or, once a first
  // save landed, the previous complete payload.
  const std::string path = Path("blob");
  const std::string first(257, 'a');
  ASSERT_TRUE(WriteFileAtomic(path, first).ok());
  const std::string second(257, 'b');
  for (size_t cut = 0; cut < second.size(); ++cut) {
    FaultPlan plan;
    plan.write_limit = cut;
    ScopedFaultPlan guard(plan);
    EXPECT_TRUE(WriteFileAtomic(path, second).IsIOError()) << "cut " << cut;
    FaultInjector::Get().Disarm();
    std::string back;
    ASSERT_TRUE(ReadFileToString(path, &back).ok());
    EXPECT_EQ(back, first) << "cut " << cut;
  }
  EXPECT_EQ(Listing().size(), 1u);
}

}  // namespace
}  // namespace cluseq
