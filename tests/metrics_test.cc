#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/report.h"
#include "seq/sequence_database.h"

#include <sstream>

namespace cluseq {
namespace {

TEST(ContingencyTest, BasicCounts) {
  // 2 found clusters, 2 true labels, one outlier, one unassigned.
  std::vector<int32_t> assign = {0, 0, 1, 1, -1, 0};
  std::vector<Label> labels = {0, 0, 1, 0, 1, kNoLabel};
  ContingencyTable t(assign, labels);
  EXPECT_EQ(t.num_found(), 2u);
  EXPECT_EQ(t.num_true(), 2u);
  EXPECT_EQ(t.count(0, 0), 2u);
  EXPECT_EQ(t.count(0, 1), 0u);
  EXPECT_EQ(t.count(1, 0), 1u);
  EXPECT_EQ(t.count(1, 1), 1u);
  EXPECT_EQ(t.found_total(0), 3u);  // Includes the outlier member.
  EXPECT_EQ(t.found_total(1), 2u);
  EXPECT_EQ(t.true_total(0), 3u);
  EXPECT_EQ(t.true_total(1), 2u);
  EXPECT_EQ(t.num_unassigned(), 1u);
  EXPECT_EQ(t.num_true_outliers(), 1u);
  EXPECT_EQ(t.outliers_unassigned(), 0u);
  EXPECT_EQ(t.total(), 6u);
}

TEST(ContingencyTest, EmptyInput) {
  ContingencyTable t({}, {});
  EXPECT_EQ(t.num_found(), 0u);
  EXPECT_EQ(t.num_true(), 0u);
  EXPECT_EQ(t.total(), 0u);
}

TEST(MetricsTest, PerfectClustering) {
  std::vector<int32_t> assign = {0, 0, 1, 1, 2, 2};
  std::vector<Label> labels = {0, 0, 1, 1, 2, 2};
  ContingencyTable t(assign, labels);
  EXPECT_DOUBLE_EQ(CorrectlyLabeledFraction(t), 1.0);
  EXPECT_DOUBLE_EQ(Purity(t), 1.0);
  EXPECT_NEAR(NormalizedMutualInformation(t), 1.0, 1e-9);
  auto fams = PerFamilyQuality(t);
  ASSERT_EQ(fams.size(), 3u);
  for (const auto& f : fams) {
    EXPECT_DOUBLE_EQ(f.precision, 1.0);
    EXPECT_DOUBLE_EQ(f.recall, 1.0);
  }
  MacroQuality m = MacroAverage(fams);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(MetricsTest, LabelPermutationInvariance) {
  // Swapping found-cluster ids must not change scores.
  std::vector<Label> labels = {0, 0, 1, 1};
  ContingencyTable t1({0, 0, 1, 1}, labels);
  ContingencyTable t2({1, 1, 0, 0}, labels);
  EXPECT_DOUBLE_EQ(CorrectlyLabeledFraction(t1),
                   CorrectlyLabeledFraction(t2));
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(t1),
                   NormalizedMutualInformation(t2));
}

TEST(MetricsTest, RandomClusteringScoresLow) {
  // One found cluster absorbing both labels: NMI 0.
  std::vector<int32_t> assign = {0, 0, 0, 0};
  std::vector<Label> labels = {0, 1, 0, 1};
  ContingencyTable t(assign, labels);
  EXPECT_NEAR(NormalizedMutualInformation(t), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(Purity(t), 0.5);
  EXPECT_DOUBLE_EQ(CorrectlyLabeledFraction(t), 0.5);
}

TEST(MetricsTest, OutlierRejectionCountsAsCorrect) {
  std::vector<int32_t> assign = {0, 0, -1, -1};
  std::vector<Label> labels = {0, 0, kNoLabel, kNoLabel};
  ContingencyTable t(assign, labels);
  EXPECT_DOUBLE_EQ(CorrectlyLabeledFraction(t), 1.0);
}

TEST(MetricsTest, UnassignedTrueMemberHurtsRecall) {
  std::vector<int32_t> assign = {0, 0, -1};
  std::vector<Label> labels = {0, 0, 0};
  ContingencyTable t(assign, labels);
  auto fams = PerFamilyQuality(t);
  ASSERT_EQ(fams.size(), 1u);
  EXPECT_DOUBLE_EQ(fams[0].precision, 1.0);
  EXPECT_NEAR(fams[0].recall, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, SplitFamilyMatchesBiggerPiece) {
  // Family 0 split across clusters 0 (3 members) and 1 (1 member).
  std::vector<int32_t> assign = {0, 0, 0, 1, 1, 1};
  std::vector<Label> labels = {0, 0, 0, 0, 1, 1};
  ContingencyTable t(assign, labels);
  auto fams = PerFamilyQuality(t);
  ASSERT_EQ(fams.size(), 2u);
  EXPECT_EQ(fams[0].matched_cluster, 0);
  EXPECT_DOUBLE_EQ(fams[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(fams[0].recall, 0.75);
  EXPECT_EQ(fams[1].matched_cluster, 1);
  EXPECT_NEAR(fams[1].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(fams[1].recall, 1.0);
}

TEST(MetricsTest, MacroAverageOfEmptyIsZero) {
  MacroQuality m = MacroAverage({});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MetricsTest, EvaluateEndToEnd) {
  SequenceDatabase db(Alphabet::Synthetic(2));
  db.Add(Sequence({0}, "a", 0));
  db.Add(Sequence({0}, "b", 0));
  db.Add(Sequence({1}, "c", 1));
  db.Add(Sequence({1}, "d", kNoLabel));
  EvaluationSummary s = Evaluate(db, {0, 0, 1, -1});
  EXPECT_DOUBLE_EQ(s.correct_fraction, 1.0);
  EXPECT_EQ(s.num_found_clusters, 2u);
  EXPECT_EQ(s.num_unassigned, 1u);
}

TEST(ReportTableTest, AlignedOutput) {
  ReportTable t({"Model", "Acc"});
  t.AddRow({"CLUSEQ", "82"});
  t.AddRow({"ED", "23"});
  std::ostringstream os;
  t.Print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("CLUSEQ"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(ReportTableTest, CsvOutput) {
  ReportTable t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ReportTableTest, ShortRowsPadded) {
  ReportTable t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(FormatHelpersTest, Formats) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.823, 1), "82.3");
  EXPECT_EQ(FormatPercent(1.0, 0), "100");
}

}  // namespace
}  // namespace cluseq
