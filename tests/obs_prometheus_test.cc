#include "obs/prometheus.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/prefilter.h"
#include "obs/perf_counters.h"
#include "pst/frozen_bank.h"
#include "pst/pst.h"
#include "seq/background_model.h"
#include "util/file_io.h"
#include "util/rng.h"

namespace cluseq {
namespace obs {
namespace {

TEST(PrometheusNameTest, SanitizesDottedPaths) {
  EXPECT_EQ(PrometheusMetricName("frozen_bank.scan_symbols"),
            "frozen_bank_scan_symbols");
  EXPECT_EQ(PrometheusMetricName("thread_pool.steals"), "thread_pool_steals");
  EXPECT_EQ(PrometheusMetricName("a-b c"), "a_b_c");
  EXPECT_EQ(PrometheusMetricName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusMetricName("ok_name:sub"), "ok_name:sub");
}

TEST(PrometheusRenderTest, CountersAndGauges) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"cluseq.joins", 42});
  snapshot.gauges.push_back({"cluseq.log_threshold", 1.5});
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE cluseq_joins_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("cluseq_joins_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cluseq_log_threshold gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("cluseq_log_threshold 1.5\n"), std::string::npos);
}

TEST(PrometheusRenderTest, NonFiniteGaugeValues) {
  MetricsSnapshot snapshot;
  snapshot.gauges.push_back({"g.pos", std::numeric_limits<double>::infinity()});
  snapshot.gauges.push_back(
      {"g.neg", -std::numeric_limits<double>::infinity()});
  snapshot.gauges.push_back({"g.nan", std::nan("")});
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(text.find("g_pos +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("g_neg -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("g_nan NaN\n"), std::string::npos);
}

TEST(PrometheusRenderTest, HistogramBucketsAreCumulative) {
  MetricsSnapshot snapshot;
  MetricsSnapshot::HistogramRow row;
  row.name = "scan.latency";
  row.bounds = {0.1, 1.0, 10.0};
  row.counts = {3, 2, 0, 5};  // Per-bucket; last is overflow (> 10.0).
  row.total_count = 10;
  row.sum = 55.5;
  snapshot.histograms.push_back(row);
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE scan_latency histogram\n"), std::string::npos);
  EXPECT_NE(text.find("scan_latency_bucket{le=\"0.1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("scan_latency_bucket{le=\"1\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("scan_latency_bucket{le=\"10\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("scan_latency_bucket{le=\"+Inf\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("scan_latency_sum 55.5\n"), std::string::npos);
  EXPECT_NE(text.find("scan_latency_count 10\n"), std::string::npos);
}

TEST(PrometheusRenderTest, LiveRegistrySnapshotRenders) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("prom_test.counter").Add(7);
  registry.GetGauge("prom_test.gauge").Set(2.25);
  const std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("prom_test_counter_total"), std::string::npos);
  EXPECT_NE(text.find("prom_test_gauge 2.25\n"), std::string::npos);
}

// Drives a real prefiltered scan so the production-registered
// `prefilter.bound_slack` histogram (bounds 0.5 .. 64) gets observations,
// then checks that the rendered buckets honor Prometheus' cumulative `le`
// contract: counts non-decreasing across ascending bounds and the +Inf
// bucket equal to the total count. A non-cumulative (per-bucket) rendering
// regression would show up as a decreasing row here.
TEST(PrometheusRenderTest, BoundSlackHistogramRendersCumulativeLe) {
  Rng rng(1234);
  constexpr size_t kAlphabet = 6;
  constexpr size_t kModels = 4;
  std::vector<uint64_t> counts(kAlphabet, 10);
  const BackgroundModel background = BackgroundModel::FromCounts(counts);
  std::vector<std::shared_ptr<const FrozenPst>> models;
  for (size_t m = 0; m < kModels; ++m) {
    PstOptions options;
    options.max_depth = 3;
    options.significance_threshold = 2;
    Pst pst(kAlphabet, options);
    std::vector<SymbolId> text(300);
    for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(kAlphabet));
    pst.InsertSequence(text);
    models.push_back(std::make_shared<const FrozenPst>(pst, background));
  }
  FrozenBank bank(models);
  const ScanPrefilter prefilter(&bank);
  std::vector<SimilarityResult> sims(kModels);
  for (int q = 0; q < 20; ++q) {
    std::vector<SymbolId> query(120);
    for (auto& s : query) s = static_cast<SymbolId>(rng.Uniform(kAlphabet));
    // A tiny positive threshold is permissive (best model stays exact, so
    // RecordSlack observes its bound-vs-score gap) but still engages the
    // bound machinery — nonpositive thresholds delegate to the exhaustive
    // scan, which never touches the slack histogram.
    prefilter.ScanAllWithThreshold(query, 1e-6, sims.data());
  }

  const std::string text =
      RenderPrometheusText(MetricsRegistry::Get().Snapshot());
  ASSERT_NE(text.find("# TYPE prefilter_bound_slack histogram"),
            std::string::npos)
      << text;
  const char* kLes[] = {"0.5", "1", "2", "4", "8", "16", "32", "64", "+Inf"};
  uint64_t prev = 0;
  uint64_t last = 0;
  for (const char* le : kLes) {
    const std::string needle =
        std::string("prefilter_bound_slack_bucket{le=\"") + le + "\"} ";
    const size_t pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos) << "missing bucket le=" << le;
    last = std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
    EXPECT_GE(last, prev) << "le=" << le << " not cumulative";
    prev = last;
  }
  EXPECT_GT(last, 0u);  // The scans above observed something.
  const std::string count_needle = "prefilter_bound_slack_count ";
  const size_t count_pos = text.find(count_needle);
  ASSERT_NE(count_pos, std::string::npos);
  EXPECT_EQ(std::strtoull(text.c_str() + count_pos + count_needle.size(),
                          nullptr, 10),
            last)
      << "+Inf bucket must equal the total count";
}

TEST(PrometheusRenderTest, PerfAndRusageGaugesRender) {
  // Force both registration paths: Process() publishes perf.available
  // (whatever its value on this machine), and closing any PerfScope sets
  // the rusage gauges.
  const bool available = PerfCounterSet::Process().available();
  { CLUSEQ_PERF_SCOPE("prom_render_test"); }
  const std::string text =
      RenderPrometheusText(MetricsRegistry::Get().Snapshot());
  EXPECT_NE(text.find(std::string("perf_available ") +
                      (available ? "1" : "0")),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rusage_maxrss_kb gauge"), std::string::npos);
  EXPECT_NE(text.find("rusage_utime_seconds"), std::string::npos);
  EXPECT_NE(text.find("rusage_major_faults"), std::string::npos);
}

TEST(PrometheusRenderTest, WritesFileAtomically) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"file.test", 1});
  const std::string path =
      ::testing::TempDir() + "/prom_render_test.prom";
  ASSERT_TRUE(WritePrometheusTextFile(snapshot, path).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, RenderPrometheusText(snapshot));
}

}  // namespace
}  // namespace obs
}  // namespace cluseq
