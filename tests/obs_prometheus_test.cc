#include "obs/prometheus.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "util/file_io.h"

namespace cluseq {
namespace obs {
namespace {

TEST(PrometheusNameTest, SanitizesDottedPaths) {
  EXPECT_EQ(PrometheusMetricName("frozen_bank.scan_symbols"),
            "frozen_bank_scan_symbols");
  EXPECT_EQ(PrometheusMetricName("thread_pool.steals"), "thread_pool_steals");
  EXPECT_EQ(PrometheusMetricName("a-b c"), "a_b_c");
  EXPECT_EQ(PrometheusMetricName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusMetricName("ok_name:sub"), "ok_name:sub");
}

TEST(PrometheusRenderTest, CountersAndGauges) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"cluseq.joins", 42});
  snapshot.gauges.push_back({"cluseq.log_threshold", 1.5});
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE cluseq_joins_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("cluseq_joins_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cluseq_log_threshold gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("cluseq_log_threshold 1.5\n"), std::string::npos);
}

TEST(PrometheusRenderTest, NonFiniteGaugeValues) {
  MetricsSnapshot snapshot;
  snapshot.gauges.push_back({"g.pos", std::numeric_limits<double>::infinity()});
  snapshot.gauges.push_back(
      {"g.neg", -std::numeric_limits<double>::infinity()});
  snapshot.gauges.push_back({"g.nan", std::nan("")});
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(text.find("g_pos +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("g_neg -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("g_nan NaN\n"), std::string::npos);
}

TEST(PrometheusRenderTest, HistogramBucketsAreCumulative) {
  MetricsSnapshot snapshot;
  MetricsSnapshot::HistogramRow row;
  row.name = "scan.latency";
  row.bounds = {0.1, 1.0, 10.0};
  row.counts = {3, 2, 0, 5};  // Per-bucket; last is overflow (> 10.0).
  row.total_count = 10;
  row.sum = 55.5;
  snapshot.histograms.push_back(row);
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE scan_latency histogram\n"), std::string::npos);
  EXPECT_NE(text.find("scan_latency_bucket{le=\"0.1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("scan_latency_bucket{le=\"1\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("scan_latency_bucket{le=\"10\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("scan_latency_bucket{le=\"+Inf\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("scan_latency_sum 55.5\n"), std::string::npos);
  EXPECT_NE(text.find("scan_latency_count 10\n"), std::string::npos);
}

TEST(PrometheusRenderTest, LiveRegistrySnapshotRenders) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("prom_test.counter").Add(7);
  registry.GetGauge("prom_test.gauge").Set(2.25);
  const std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("prom_test_counter_total"), std::string::npos);
  EXPECT_NE(text.find("prom_test_gauge 2.25\n"), std::string::npos);
}

TEST(PrometheusRenderTest, WritesFileAtomically) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"file.test", 1});
  const std::string path =
      ::testing::TempDir() + "/prom_render_test.prom";
  ASSERT_TRUE(WritePrometheusTextFile(snapshot, path).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, RenderPrometheusText(snapshot));
}

}  // namespace
}  // namespace obs
}  // namespace cluseq
