#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace cluseq {
namespace obs {
namespace {

// The recorder is process-global; each test Start()s it, which discards
// whatever earlier tests recorded.

TEST(TraceSamplingTest, ParseAcceptsEveryPolicyShape) {
  SamplingPolicy policy;
  ASSERT_TRUE(SamplingPolicy::Parse("always", &policy).ok());
  EXPECT_EQ(policy.mode, SamplingPolicy::Mode::kAlways);

  ASSERT_TRUE(SamplingPolicy::Parse("never", &policy).ok());
  EXPECT_EQ(policy.mode, SamplingPolicy::Mode::kNever);
  ASSERT_TRUE(SamplingPolicy::Parse("off", &policy).ok());
  EXPECT_EQ(policy.mode, SamplingPolicy::Mode::kNever);

  ASSERT_TRUE(SamplingPolicy::Parse("prob:0.25", &policy).ok());
  EXPECT_EQ(policy.mode, SamplingPolicy::Mode::kProbabilistic);
  EXPECT_DOUBLE_EQ(policy.probability, 0.25);
  EXPECT_EQ(policy.seed, 0u);

  ASSERT_TRUE(SamplingPolicy::Parse("prob:0.1,seed=42", &policy).ok());
  EXPECT_DOUBLE_EQ(policy.probability, 0.1);
  EXPECT_EQ(policy.seed, 42u);

  ASSERT_TRUE(SamplingPolicy::Parse("every:8", &policy).ok());
  EXPECT_EQ(policy.mode, SamplingPolicy::Mode::kEveryNth);
  EXPECT_EQ(policy.every_nth, 8u);

  ASSERT_TRUE(SamplingPolicy::Parse("rate:100", &policy).ok());
  EXPECT_EQ(policy.mode, SamplingPolicy::Mode::kRateLimited);
  EXPECT_DOUBLE_EQ(policy.max_per_sec, 100.0);
}

TEST(TraceSamplingTest, ParseRejectsMalformedSpecs) {
  SamplingPolicy policy;
  EXPECT_FALSE(SamplingPolicy::Parse("", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("sometimes", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("prob:", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("prob:1.5", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("prob:-0.1", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("prob:0.5,seed=", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("prob:0.5,sed=1", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("every:0", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("every:abc", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("rate:0", &policy).ok());
  EXPECT_FALSE(SamplingPolicy::Parse("rate:-5", &policy).ok());
}

TEST(TraceSamplingTest, ToStringRoundTripsThroughParse) {
  for (const char* spec :
       {"always", "never", "prob:0.1,seed=42", "every:8", "rate:100"}) {
    SamplingPolicy policy;
    ASSERT_TRUE(SamplingPolicy::Parse(spec, &policy).ok()) << spec;
    SamplingPolicy reparsed;
    ASSERT_TRUE(SamplingPolicy::Parse(policy.ToString(), &reparsed).ok())
        << policy.ToString();
    EXPECT_EQ(reparsed.mode, policy.mode);
    EXPECT_DOUBLE_EQ(reparsed.probability, policy.probability);
    EXPECT_EQ(reparsed.seed, policy.seed);
    EXPECT_EQ(reparsed.every_nth, policy.every_nth);
    EXPECT_DOUBLE_EQ(reparsed.max_per_sec, policy.max_per_sec);
  }
}

TEST(TraceSamplingTest, NeverPolicyKeepsRecorderGatedOff) {
  TraceRecorder& recorder = TraceRecorder::Get();
  SamplingPolicy policy;
  ASSERT_TRUE(SamplingPolicy::Parse("never", &policy).ok());
  recorder.Start(policy);
  // The fast gate itself stays closed: spans never even reach Sample(),
  // which is what keeps the off path at one relaxed atomic load.
  EXPECT_FALSE(recorder.enabled());
  { CLUSEQ_TRACE_SPAN("sampling_test.never"); }
  recorder.Stop();
  EXPECT_TRUE(recorder.Collect().empty());
}

TEST(TraceSamplingTest, EveryNthIsExactPerThread) {
  TraceRecorder& recorder = TraceRecorder::Get();
  SamplingPolicy policy;
  ASSERT_TRUE(SamplingPolicy::Parse("every:3", &policy).ok());
  recorder.Start(policy);
  for (int i = 0; i < 10; ++i) {
    CLUSEQ_TRACE_SPAN("sampling_test.every");
  }
  recorder.Stop();
  // Spans 0, 3, 6, 9 of this thread's sequence.
  EXPECT_EQ(recorder.Collect().size(), 4u);

  // Restarting resets the per-thread position counter.
  recorder.Start(policy);
  { CLUSEQ_TRACE_SPAN("sampling_test.every"); }
  recorder.Stop();
  EXPECT_EQ(recorder.Collect().size(), 1u);
}

TEST(TraceSamplingTest, SeededProbabilisticIsDeterministic) {
  TraceRecorder& recorder = TraceRecorder::Get();
  SamplingPolicy policy;
  ASSERT_TRUE(SamplingPolicy::Parse("prob:0.1,seed=42", &policy).ok());

  constexpr int kSpans = 2000;
  auto run_once = [&]() {
    recorder.Start(policy);
    std::vector<size_t> kept_positions;
    for (int i = 0; i < kSpans; ++i) {
      const size_t count_before = recorder.Collect().size();
      { CLUSEQ_TRACE_SPAN("sampling_test.prob"); }
      if (recorder.Collect().size() > count_before) {
        kept_positions.push_back(static_cast<size_t>(i));
      }
    }
    recorder.Stop();
    return kept_positions;
  };

  const std::vector<size_t> first = run_once();
  const std::vector<size_t> second = run_once();
  // Identical kept-span positions across two runs: the decision stream is
  // a pure function of (seed, thread index, span position).
  EXPECT_EQ(first, second);
  // p=0.1 over 2000 spans: expected 200 keeps; a deterministic stream
  // only needs a sanity corridor, not a statistical test.
  EXPECT_GT(first.size(), 100u);
  EXPECT_LT(first.size(), 400u);
}

TEST(TraceSamplingTest, ProbabilisticEdgeCasesKeepAllOrNone) {
  TraceRecorder& recorder = TraceRecorder::Get();
  SamplingPolicy policy;
  ASSERT_TRUE(SamplingPolicy::Parse("prob:1", &policy).ok());
  recorder.Start(policy);
  for (int i = 0; i < 50; ++i) {
    CLUSEQ_TRACE_SPAN("sampling_test.prob_one");
  }
  recorder.Stop();
  EXPECT_EQ(recorder.Collect().size(), 50u);

  ASSERT_TRUE(SamplingPolicy::Parse("prob:0", &policy).ok());
  recorder.Start(policy);
  for (int i = 0; i < 50; ++i) {
    CLUSEQ_TRACE_SPAN("sampling_test.prob_zero");
  }
  recorder.Stop();
  EXPECT_TRUE(recorder.Collect().empty());
}

TEST(TraceSamplingTest, ProbabilisticWorkersSampleIndependently) {
  // Determinism is a per-thread-stream property: each thread's decisions
  // are a pure function of (seed, its stable ThreadIndex, span position).
  // Fresh std::threads draw fresh indices, so this test only pins down
  // that concurrent samplers work and stay within the policy's corridor;
  // cross-run set equality is covered single-threaded above and end-to-end
  // by the CLI smoke (phase spans all live on the orchestrating thread).
  TraceRecorder& recorder = TraceRecorder::Get();
  SamplingPolicy policy;
  ASSERT_TRUE(SamplingPolicy::Parse("prob:0.5,seed=7", &policy).ok());
  recorder.Start(policy);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        CLUSEQ_TRACE_SPAN("sampling_test.worker");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  recorder.Stop();
  const size_t kept = recorder.Collect().size();
  // 400 spans at p=0.5: wide corridor, no flakes.
  EXPECT_GT(kept, 100u);
  EXPECT_LT(kept, 300u);
}

TEST(TraceSamplingTest, RateLimitCapsPerSpanName) {
  TraceRecorder& recorder = TraceRecorder::Get();
  SamplingPolicy policy;
  ASSERT_TRUE(SamplingPolicy::Parse("rate:5", &policy).ok());
  recorder.Start(policy);
  // A tight burst lands within one wall-clock second window (the loop is
  // microseconds long), so at most 5 of each name survive — and the two
  // names are limited independently.
  for (int i = 0; i < 100; ++i) {
    CLUSEQ_TRACE_SPAN("sampling_test.rate_a");
  }
  for (int i = 0; i < 100; ++i) {
    CLUSEQ_TRACE_SPAN("sampling_test.rate_b");
  }
  recorder.Stop();
  size_t a = 0;
  size_t b = 0;
  for (const TraceEvent& event : recorder.Collect()) {
    if (std::string(event.name) == "sampling_test.rate_a") ++a;
    if (std::string(event.name) == "sampling_test.rate_b") ++b;
  }
  // The burst can straddle a second boundary, doubling the budget once.
  EXPECT_GE(a, 1u);
  EXPECT_LE(a, 10u);
  EXPECT_GE(b, 1u);
  EXPECT_LE(b, 10u);
}

TEST(TraceSamplingTest, DefaultStartIsAlways) {
  TraceRecorder& recorder = TraceRecorder::Get();
  recorder.Start();
  for (int i = 0; i < 25; ++i) {
    CLUSEQ_TRACE_SPAN("sampling_test.default");
  }
  recorder.Stop();
  EXPECT_EQ(recorder.Collect().size(), 25u);
}

}  // namespace
}  // namespace obs
}  // namespace cluseq
