#include "util/logging.h"

#include <algorithm>
#include <regex>
#include <string>

#include <gtest/gtest.h>

namespace cluseq {
namespace {

// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultLevelIsWarning) {
  // The library must be quiet at default verbosity.
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kWarning));
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kDebug));
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kError));
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluateToOutput) {
  SetLogLevel(LogLevel::kError);
  // Streaming into a suppressed message must be safe and side-effect free
  // for the log itself; we mainly assert it does not crash.
  CLUSEQ_LOG(kDebug) << "invisible " << 42;
  CLUSEQ_LOG(kInfo) << "also invisible";
  SUCCEED();
}

TEST_F(LoggingTest, EnabledMessageStreamsArbitraryTypes) {
  SetLogLevel(LogLevel::kDebug);
  CLUSEQ_LOG(kInfo) << "value=" << 3.5 << " text=" << std::string("x");
  SUCCEED();
}

TEST_F(LoggingTest, PrefixHasIsoTimestampThreadIdAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();  // Captures fd 2: sees the write().
  CLUSEQ_LOG(kInfo) << "hello obs";
  const std::string out = testing::internal::GetCapturedStderr();
  // [2026-08-07T12:34:56.789Z INFO t3 logging_test.cc:NN] hello obs
  const std::regex re(
      R"(^\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z INFO t\d+ )"
      R"(logging_test\.cc:\d+\] hello obs\n$)");
  EXPECT_TRUE(std::regex_match(out, re)) << "unexpected log line: " << out;
}

TEST_F(LoggingTest, ThreadIdIsStableWithinAThread) {
  SetLogLevel(LogLevel::kWarning);
  const std::regex tid_re(R"( (t\d+) )");
  std::smatch m1, m2;
  testing::internal::CaptureStderr();
  CLUSEQ_LOG(kWarning) << "first";
  std::string first = testing::internal::GetCapturedStderr();
  testing::internal::CaptureStderr();
  CLUSEQ_LOG(kWarning) << "second";
  std::string second = testing::internal::GetCapturedStderr();
  ASSERT_TRUE(std::regex_search(first, m1, tid_re)) << first;
  ASSERT_TRUE(std::regex_search(second, m2, tid_re)) << second;
  EXPECT_EQ(m1[1].str(), m2[1].str());
}

TEST_F(LoggingTest, EachMessageIsOneLine) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  CLUSEQ_LOG(kInfo) << "a";
  CLUSEQ_LOG(kInfo) << "b";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

}  // namespace
}  // namespace cluseq
