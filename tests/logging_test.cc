#include "util/logging.h"

#include <gtest/gtest.h>

namespace cluseq {
namespace {

// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultLevelIsWarning) {
  // The library must be quiet at default verbosity.
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kWarning));
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kDebug));
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kError));
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluateToOutput) {
  SetLogLevel(LogLevel::kError);
  // Streaming into a suppressed message must be safe and side-effect free
  // for the log itself; we mainly assert it does not crash.
  CLUSEQ_LOG(kDebug) << "invisible " << 42;
  CLUSEQ_LOG(kInfo) << "also invisible";
  SUCCEED();
}

TEST_F(LoggingTest, EnabledMessageStreamsArbitraryTypes) {
  SetLogLevel(LogLevel::kDebug);
  CLUSEQ_LOG(kInfo) << "value=" << 3.5 << " text=" << std::string("x");
  SUCCEED();
}

}  // namespace
}  // namespace cluseq
