#include <vector>

#include <gtest/gtest.h>

#include "pst/pst.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

Symbols RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

PstOptions Budgeted(size_t budget, PruneStrategy strategy) {
  PstOptions o;
  o.max_depth = 8;
  o.significance_threshold = 5;
  o.max_memory_bytes = budget;
  o.prune_strategy = strategy;
  o.smoothing_p_min = 1e-4;
  return o;
}

TEST(PstPruningTest, NoBudgetMeansNoPruning) {
  PstOptions o = Budgeted(0, PruneStrategy::kSmallestCountFirst);
  Pst pst(6, o);
  pst.InsertSequence(RandomText(2000, 6, 1));
  // With depth 8 and 2000 random symbols the tree is large.
  EXPECT_GT(pst.ApproxMemoryBytes(), size_t{100} * 1024);
}

class PruneStrategySweep : public ::testing::TestWithParam<PruneStrategy> {};

TEST_P(PruneStrategySweep, StaysWithinBudget) {
  const size_t budget = 64 * 1024;
  Pst pst(6, Budgeted(budget, GetParam()));
  for (int i = 0; i < 5; ++i) {
    pst.InsertSequence(RandomText(1000, 6, 100 + i));
  }
  EXPECT_LE(pst.ApproxMemoryBytes(), budget);
  EXPECT_GE(pst.NumNodes(), 1u);
}

TEST_P(PruneStrategySweep, RootSurvivesExtremeBudget) {
  Pst pst(4, Budgeted(1, GetParam()));  // Absurdly small budget.
  pst.InsertSequence(RandomText(500, 4, 7));
  EXPECT_GE(pst.NumNodes(), 1u);
  EXPECT_EQ(pst.total_symbols(), 500u);  // Root counters intact.
}

TEST_P(PruneStrategySweep, QueriesStillWorkAfterPruning) {
  Pst pst(4, Budgeted(16 * 1024, GetParam()));
  pst.InsertSequence(RandomText(3000, 4, 11));
  Symbols ctx = {0, 1, 2};
  double sum = 0.0;
  PstNodeId node = pst.PredictionNode(ctx);
  for (SymbolId s = 0; s < 4; ++s) sum += pst.NodeProbability(node, s);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Strategies, PruneStrategySweep,
                         ::testing::Values(
                             PruneStrategy::kSmallestCountFirst,
                             PruneStrategy::kLongestLabelFirst,
                             PruneStrategy::kExpectedVectorFirst));

TEST(PstPruningTest, SmallestCountKeepsHighCountShallowNodes) {
  // Highly repetitive text: the frequent short contexts must survive.
  Symbols text;
  Rng rng(13);
  for (int i = 0; i < 800; ++i) {
    text.push_back(static_cast<SymbolId>(i % 2));  // ababab...
  }
  // Sprinkle rare symbols to create low-count deep nodes.
  for (int i = 0; i < 50; ++i) {
    text.push_back(static_cast<SymbolId>(2 + rng.Uniform(4)));
  }
  Pst pst(6, Budgeted(0, PruneStrategy::kSmallestCountFirst));
  pst.InsertSequence(text);
  size_t before = pst.NumNodes();
  pst.PruneToBudget(pst.ApproxMemoryBytes() / 2);
  EXPECT_LT(pst.NumNodes(), before);
  // The dominant context "a" (symbol 0) must still be present with its
  // original count.
  PstNodeId a = pst.Child(kPstRoot, 0);
  ASSERT_NE(a, kNoPstNode);
  EXPECT_GT(pst.NodeCount(a), 300u);
}

TEST(PstPruningTest, LongestLabelPrunesDeepNodesFirst) {
  Pst pst(4, Budgeted(0, PruneStrategy::kLongestLabelFirst));
  pst.InsertSequence(RandomText(1500, 4, 17));
  size_t max_depth_before = pst.Stats().max_depth;
  ASSERT_GT(max_depth_before, 3u);
  pst.PruneToBudget(pst.ApproxMemoryBytes() / 3);
  // The deepest layer should be the first to disappear.
  EXPECT_LT(pst.Stats().max_depth, max_depth_before);
}

TEST(PstPruningTest, ExplicitPruneToBudgetIsIdempotentWhenUnder) {
  Pst pst(4, Budgeted(0, PruneStrategy::kSmallestCountFirst));
  pst.InsertSequence(RandomText(400, 4, 19));
  size_t nodes = pst.NumNodes();
  pst.PruneToBudget(pst.ApproxMemoryBytes() * 2);  // Already under.
  EXPECT_EQ(pst.NumNodes(), nodes);
}

TEST(PstPruningTest, InsertAfterPruneStillCorrectRootCount) {
  Pst pst(4, Budgeted(8 * 1024, PruneStrategy::kSmallestCountFirst));
  pst.InsertSequence(RandomText(1000, 4, 23));
  pst.InsertSequence(RandomText(500, 4, 29));
  EXPECT_EQ(pst.total_symbols(), 1500u);
  EXPECT_LE(pst.ApproxMemoryBytes(), size_t{8} * 1024);
}

TEST(PstPruningTest, FreedSlotsAreReused) {
  Pst pst(4, Budgeted(0, PruneStrategy::kSmallestCountFirst));
  pst.InsertSequence(RandomText(600, 4, 31));
  pst.PruneToBudget(pst.ApproxMemoryBytes() / 2);
  size_t live_after_prune = pst.NumNodes();
  pst.InsertSequence(RandomText(600, 4, 37));
  // Live node count grows again; the arena reuses tombstoned slots so it
  // remains internally consistent (exercised via Stats traversal).
  EXPECT_GE(pst.NumNodes(), live_after_prune);
  EXPECT_EQ(pst.Stats().num_nodes, pst.NumNodes());
}

TEST(PstPruningTest, ExpectedVectorStrategyPrunesInsignificantFirst) {
  // Build a tree where significant and insignificant leaves coexist, then
  // shave a little: only insignificant leaves should disappear first.
  Symbols text;
  for (int i = 0; i < 200; ++i) text.insert(text.end(), {0, 1});
  text.insert(text.end(), {2, 3, 2, 3, 2});
  Pst pst(4, Budgeted(0, PruneStrategy::kExpectedVectorFirst));
  pst.InsertSequence(text);
  size_t sig_before = pst.Stats().num_significant_nodes;
  pst.PruneToBudget(pst.ApproxMemoryBytes() - 200);
  // Tiny shave: significant nodes retained.
  EXPECT_EQ(pst.Stats().num_significant_nodes, sig_before);
}

}  // namespace
}  // namespace cluseq
