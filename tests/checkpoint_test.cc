// Checkpoint format and resume correctness (core/checkpoint.h):
// round-trips, the full corruption sweeps (every single-bit flip, every
// truncation offset), torn writes mid-save, retention, the fall-back /
// --strict policy, read-path fault injection, and identity rejection
// (wrong corpus, wrong algorithmic options). The chaos kill sweep lives in
// chaos_resume_test.cc; cancellation in cancellation_test.cc.

#include "core/checkpoint.h"

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluseq.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pst/pst.h"
#include "pst/pst_serialization.h"
#include "seq/sequence_database.h"
#include "synth/dataset.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/rng.h"

namespace cluseq {
namespace {

SequenceDatabase PlantedDb(uint64_t seed = 11) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 3;
  opts.sequences_per_cluster = 10;
  opts.alphabet_size = 8;
  opts.avg_length = 60;
  opts.outlier_fraction = 0.1;
  opts.spread = 0.25;
  opts.seed = seed;
  return MakeSyntheticDataset(opts);
}

CluseqOptions FastOptions() {
  CluseqOptions o;
  o.initial_clusters = 2;
  o.similarity_threshold = 1.05;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 10;
  o.pst.max_depth = 4;
  o.pst.smoothing_p_min = 1e-4;
  o.rng_seed = 7;
  return o;
}

std::string MakeTempDir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + tag + "_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return made;
}

/// A small but fully-populated checkpoint with a real (loadable) PST blob.
ClustererCheckpoint SampleCheckpoint() {
  ClustererCheckpoint ckpt;
  ckpt.options_fingerprint = 0x1234;
  ckpt.corpus_fingerprint = 0x5678;
  ckpt.num_sequences = 6;
  ckpt.total_symbols = 300;
  ckpt.build = "test-build";
  ckpt.iteration = 3;
  ckpt.log_t = 1.75;
  ckpt.next_cluster_id = 5;
  ckpt.prev_new = 2;
  ckpt.prev_consolidated = 1;
  ckpt.adjuster_frozen = true;
  ckpt.have_prev_fingerprint = true;
  ckpt.prev_fingerprint = {9, 8, 7};
  Rng rng(99);
  (void)rng.Uniform(1000);
  ckpt.rng = rng.SaveState();
  ckpt.prev_best_cluster = {0, 1, -1, 0, 1, 1};
  ckpt.best_log_sim = {0.5,
                       1.5,
                       -std::numeric_limits<double>::infinity(),
                       0.25,
                       2.0,
                       1.0};
  ckpt.unclustered = {2};

  PstOptions pst_options;
  pst_options.max_depth = 2;
  pst_options.significance_threshold = 1;
  Pst pst(4, pst_options);
  pst.InsertSequence(std::vector<SymbolId>{0, 1, 2, 3, 0, 1, 2, 3, 1, 1});
  std::ostringstream pst_out;
  EXPECT_TRUE(SavePst(pst, pst_out).ok());

  CheckpointClusterState a;
  a.id = 1;
  a.seed_index = 0;
  a.members = {0, 3};
  a.contributions = {{0, 0, 10}, {3, 2, 9}};
  a.pst_blob = pst_out.str();
  CheckpointClusterState b;
  b.id = 4;
  b.seed_index = 4;
  b.members = {1, 4, 5};
  b.contributions = {{1, 0, 5}, {4, 0, 10}, {5, 1, 7}};
  b.pst_blob = pst_out.str();
  ckpt.clusters = {a, b};
  return ckpt;
}

void ExpectEqual(const ClustererCheckpoint& x, const ClustererCheckpoint& y) {
  EXPECT_EQ(x.options_fingerprint, y.options_fingerprint);
  EXPECT_EQ(x.corpus_fingerprint, y.corpus_fingerprint);
  EXPECT_EQ(x.num_sequences, y.num_sequences);
  EXPECT_EQ(x.total_symbols, y.total_symbols);
  EXPECT_EQ(x.build, y.build);
  EXPECT_EQ(x.iteration, y.iteration);
  EXPECT_EQ(x.log_t, y.log_t);
  EXPECT_EQ(x.next_cluster_id, y.next_cluster_id);
  EXPECT_EQ(x.prev_new, y.prev_new);
  EXPECT_EQ(x.prev_consolidated, y.prev_consolidated);
  EXPECT_EQ(x.adjuster_frozen, y.adjuster_frozen);
  EXPECT_EQ(x.have_prev_fingerprint, y.have_prev_fingerprint);
  EXPECT_EQ(x.prev_fingerprint, y.prev_fingerprint);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(x.rng.s[i], y.rng.s[i]);
  EXPECT_EQ(x.rng.has_cached_normal, y.rng.has_cached_normal);
  EXPECT_EQ(x.prev_best_cluster, y.prev_best_cluster);
  EXPECT_EQ(x.best_log_sim, y.best_log_sim);
  EXPECT_EQ(x.unclustered, y.unclustered);
  ASSERT_EQ(x.clusters.size(), y.clusters.size());
  for (size_t c = 0; c < x.clusters.size(); ++c) {
    EXPECT_EQ(x.clusters[c].id, y.clusters[c].id);
    EXPECT_EQ(x.clusters[c].seed_index, y.clusters[c].seed_index);
    EXPECT_EQ(x.clusters[c].members, y.clusters[c].members);
    ASSERT_EQ(x.clusters[c].contributions.size(),
              y.clusters[c].contributions.size());
    for (size_t i = 0; i < x.clusters[c].contributions.size(); ++i) {
      EXPECT_EQ(x.clusters[c].contributions[i].seq_index,
                y.clusters[c].contributions[i].seq_index);
      EXPECT_EQ(x.clusters[c].contributions[i].begin,
                y.clusters[c].contributions[i].begin);
      EXPECT_EQ(x.clusters[c].contributions[i].end,
                y.clusters[c].contributions[i].end);
    }
    EXPECT_EQ(x.clusters[c].pst_blob, y.clusters[c].pst_blob);
  }
}

/// Exact equality across every algorithm-visible result field: the
/// bit-for-bit contract the checkpoint/resume machinery promises.
void ExpectIdenticalResults(const ClusteringResult& a,
                            const ClusteringResult& b) {
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c], b.clusters[c]) << "cluster " << c;
  }
  EXPECT_EQ(a.best_cluster, b.best_cluster);
  ASSERT_EQ(a.best_log_sim.size(), b.best_log_sim.size());
  for (size_t i = 0; i < a.best_log_sim.size(); ++i) {
    EXPECT_EQ(a.best_log_sim[i], b.best_log_sim[i]) << "sequence " << i;
  }
  EXPECT_EQ(a.final_log_threshold, b.final_log_threshold);
  EXPECT_EQ(a.num_unclustered, b.num_unclustered);
}

// --- format round-trip and corruption sweeps ----------------------------

TEST(CheckpointFormatTest, EncodeDecodeRoundTrip) {
  const ClustererCheckpoint ckpt = SampleCheckpoint();
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(ckpt, &bytes).ok());
  ClustererCheckpoint back;
  ASSERT_TRUE(DecodeCheckpoint(bytes, &back).ok());
  ExpectEqual(ckpt, back);

  // Canonical bytes: encoding the decoded state reproduces the file.
  std::string again;
  ASSERT_TRUE(EncodeCheckpoint(back, &again).ok());
  EXPECT_EQ(bytes, again);
}

TEST(CheckpointFormatTest, EmptyStateRoundTrips) {
  // Boundary 0 of a run that has not clustered anything yet.
  ClustererCheckpoint ckpt;
  ckpt.num_sequences = 4;
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(ckpt, &bytes).ok());
  ClustererCheckpoint back;
  ASSERT_TRUE(DecodeCheckpoint(bytes, &back).ok());
  ExpectEqual(ckpt, back);
}

TEST(CheckpointFormatTest, TruncationAtEveryOffsetIsRejected) {
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(SampleCheckpoint(), &bytes).ok());
  for (size_t len = 0; len < bytes.size(); ++len) {
    ClustererCheckpoint out;
    Status st = DecodeCheckpoint(std::string_view(bytes).substr(0, len), &out);
    EXPECT_TRUE(st.IsCorruption())
        << "truncated to " << len << ": " << st.ToString();
  }
}

TEST(CheckpointFormatTest, AppendedGarbageIsRejected) {
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(SampleCheckpoint(), &bytes).ok());
  ClustererCheckpoint out;
  EXPECT_TRUE(DecodeCheckpoint(bytes + std::string(5, '\0'), &out)
                  .IsCorruption());
}

TEST(CheckpointFormatTest, EverySingleBitFlipIsRejected) {
  std::string clean;
  ASSERT_TRUE(EncodeCheckpoint(SampleCheckpoint(), &clean).ok());
  ASSERT_LT(clean.size(), 16384u) << "fixture too big, this sweep will crawl";
  std::string bytes = clean;
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
      ClustererCheckpoint out;
      Status st = DecodeCheckpoint(bytes, &out);
      EXPECT_TRUE(st.IsCorruption())
          << "byte " << byte << " bit " << bit << ": " << st.ToString();
      bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
    }
  }
  EXPECT_EQ(bytes, clean);
}

TEST(CheckpointFormatTest, CorruptionBumpsTheDetectionCounter) {
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(SampleCheckpoint(), &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x40;
  obs::Counter& counter = obs::MetricsRegistry::Get().GetCounter(
      "persistence.corruption_detected");
  const uint64_t before = counter.Value();
  ClustererCheckpoint out;
  EXPECT_TRUE(DecodeCheckpoint(bytes, &out).IsCorruption());
  EXPECT_GT(counter.Value(), before);
}

TEST(CheckpointFormatTest, FingerprintIgnoresPerfSwitchesOnly) {
  const CluseqOptions base = FastOptions();
  const uint64_t fp = FingerprintOptions(base);

  // Pure performance switches must not change the fingerprint: resuming at
  // a different thread count or prefilter setting is legal.
  CluseqOptions perf = base;
  perf.num_threads = 7;
  perf.batched_scan = !perf.batched_scan;
  perf.prefilter = !perf.prefilter;
  perf.verbose = !perf.verbose;
  perf.checkpoint_every = 5;
  perf.checkpoint_strict = true;
  EXPECT_EQ(FingerprintOptions(perf), fp);

  // Every algorithmic knob must.
  CluseqOptions o = base;
  o.rng_seed += 1;
  EXPECT_NE(FingerprintOptions(o), fp);
  o = base;
  o.similarity_threshold += 0.01;
  EXPECT_NE(FingerprintOptions(o), fp);
  o = base;
  o.initial_clusters += 1;
  EXPECT_NE(FingerprintOptions(o), fp);
  o = base;
  o.significance_threshold += 1;
  EXPECT_NE(FingerprintOptions(o), fp);
  o = base;
  o.visit_order = VisitOrder::kRandom;
  EXPECT_NE(FingerprintOptions(o), fp);
  o = base;
  o.pst.max_depth += 1;
  EXPECT_NE(FingerprintOptions(o), fp);
  o = base;
  o.max_iterations += 1;
  EXPECT_NE(FingerprintOptions(o), fp);
}

// --- directory-level behavior -------------------------------------------

TEST(CheckpointDirTest, RetentionKeepsOnlyTheNewestTwo) {
  const std::string dir = MakeTempDir("cluseq_ckpt_retain");
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(SampleCheckpoint(), &bytes).ok());
  for (uint64_t iter = 1; iter <= 5; ++iter) {
    ASSERT_TRUE(WriteCheckpointRetainTwo(dir, iter, bytes).ok());
  }
  std::vector<std::string> files;
  ASSERT_TRUE(ListCheckpointFiles(dir, &files).ok());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], CheckpointFilePath(dir, 5));
  EXPECT_EQ(files[1], CheckpointFilePath(dir, 4));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointDirTest, ListIgnoresForeignFilesAndReportsNotFound) {
  const std::string dir = MakeTempDir("cluseq_ckpt_list");
  ASSERT_TRUE(WriteFileAtomic(dir + "/notes.txt", "hi").ok());
  ASSERT_TRUE(WriteFileAtomic(dir + "/ckpt_junk.ckpt", "hi").ok());
  std::vector<std::string> files;
  EXPECT_TRUE(ListCheckpointFiles(dir, &files).IsNotFound());
  EXPECT_TRUE(ListCheckpointFiles(dir + "/missing", &files).IsNotFound());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointDirTest, SaveHookFiresAfterEachSuccessfulWrite) {
  static uint64_t last_iteration;
  static int fired;
  last_iteration = 0;
  fired = 0;
  SetCheckpointSaveHookForTest(+[](uint64_t iteration, const std::string&) {
    last_iteration = iteration;
    ++fired;
  });
  const std::string dir = MakeTempDir("cluseq_ckpt_hook");
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(SampleCheckpoint(), &bytes).ok());
  ASSERT_TRUE(WriteCheckpointRetainTwo(dir, 9, bytes).ok());
  SetCheckpointSaveHookForTest(nullptr);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(last_iteration, 9u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointDirTest, TornSaveAtEveryCutLeavesThePreviousLoadable) {
  const std::string dir = MakeTempDir("cluseq_ckpt_torn");
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(SampleCheckpoint(), &bytes).ok());
  ASSERT_TRUE(WriteCheckpointRetainTwo(dir, 1, bytes).ok());

  // A save killed at any point of its write must fail cleanly and leave
  // the iteration-1 file the newest loadable checkpoint (offset spread:
  // every offset would be minutes of fsync traffic).
  for (size_t cut = 0; cut < bytes.size(); cut += 37) {
    FaultPlan plan;
    plan.write_limit = cut;
    {
      ScopedFaultPlan guard(plan);
      EXPECT_TRUE(WriteCheckpointRetainTwo(dir, 2, bytes).IsIOError())
          << "cut " << cut;
    }
    ClustererCheckpoint out;
    std::string loaded_path;
    ASSERT_TRUE(LoadLatestCheckpoint(dir, /*strict=*/true, &out, &loaded_path)
                    .ok())
        << "cut " << cut;
    EXPECT_EQ(loaded_path, CheckpointFilePath(dir, 1));
  }
  {
    FaultPlan plan;
    plan.fail_rename = true;
    ScopedFaultPlan guard(plan);
    EXPECT_TRUE(WriteCheckpointRetainTwo(dir, 2, bytes).IsIOError());
  }
  ClustererCheckpoint out;
  EXPECT_TRUE(LoadLatestCheckpoint(dir, /*strict=*/true, &out).ok());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointDirTest, CorruptNewestFallsBackAndIsUnlinked) {
  const std::string dir = MakeTempDir("cluseq_ckpt_fallback");
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(SampleCheckpoint(), &bytes).ok());
  ASSERT_TRUE(WriteCheckpointRetainTwo(dir, 1, bytes).ok());
  std::string rotten = bytes;
  rotten[rotten.size() / 3] ^= 0x08;
  ASSERT_TRUE(WriteCheckpointRetainTwo(dir, 2, rotten).ok());

  // strict: the corruption surfaces; the file stays for forensics.
  ClustererCheckpoint out;
  EXPECT_TRUE(LoadLatestCheckpoint(dir, /*strict=*/true, &out).IsCorruption());
  EXPECT_TRUE(FileExists(CheckpointFilePath(dir, 2)));

  // default: fall back to the previous file and unlink the corrupt newest
  // so it cannot outrank later saves of a resumed run.
  std::string loaded_path;
  ASSERT_TRUE(
      LoadLatestCheckpoint(dir, /*strict=*/false, &out, &loaded_path).ok());
  EXPECT_EQ(loaded_path, CheckpointFilePath(dir, 1));
  EXPECT_FALSE(FileExists(CheckpointFilePath(dir, 2)));

  // Only one file and it is corrupt: nothing to fall back to.
  ASSERT_TRUE(WriteFileAtomic(CheckpointFilePath(dir, 3), rotten).ok());
  ::unlink(CheckpointFilePath(dir, 1).c_str());
  EXPECT_TRUE(
      LoadLatestCheckpoint(dir, /*strict=*/false, &out).IsCorruption());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointDirTest, ReadFaultsSurfaceAsErrorsNotGarbage) {
  const std::string dir = MakeTempDir("cluseq_ckpt_read");
  std::string bytes;
  ASSERT_TRUE(EncodeCheckpoint(SampleCheckpoint(), &bytes).ok());
  ASSERT_TRUE(WriteCheckpointRetainTwo(dir, 1, bytes).ok());
  const std::string path = CheckpointFilePath(dir, 1);

  {
    // An EINTR storm is absorbed by the bounded-retry read loop.
    FaultPlan plan;
    plan.transient_eintr_reads = 3;
    ScopedFaultPlan guard(plan);
    ClustererCheckpoint out;
    EXPECT_TRUE(LoadCheckpointFile(path, &out).ok());
  }
  {
    // A file that goes unreadable mid-load is an IO error, not corruption.
    FaultPlan plan;
    plan.read_limit = bytes.size() / 2;
    ScopedFaultPlan guard(plan);
    ClustererCheckpoint out;
    EXPECT_TRUE(LoadCheckpointFile(path, &out).IsIOError());
  }
  {
    // Bit rot between platter and read buffer is caught by the checksums.
    FaultPlan plan;
    plan.read_flip_offset = bytes.size() / 2;
    plan.read_flip_mask = 0x20;
    ScopedFaultPlan guard(plan);
    ClustererCheckpoint out;
    EXPECT_TRUE(LoadCheckpointFile(path, &out).IsCorruption());
  }
  std::filesystem::remove_all(dir);
}

// --- clusterer integration ----------------------------------------------

TEST(CheckpointResumeTest, CheckpointedRunMatchesPlainRunExactly) {
  SequenceDatabase db = PlantedDb();
  ClusteringResult plain;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &plain).ok());
  ASSERT_GT(plain.iterations, 1u);

  const std::string dir = MakeTempDir("cluseq_ckpt_run");
  CluseqOptions with_ckpt = FastOptions();
  with_ckpt.checkpoint_dir = dir;
  with_ckpt.checkpoint_every = 1;
  CluseqClusterer clusterer(db, with_ckpt);
  ClusteringResult checkpointed;
  ASSERT_TRUE(clusterer.Run(&checkpointed).ok());
  ExpectIdenticalResults(plain, checkpointed);
  EXPECT_FALSE(checkpointed.interrupted);
  EXPECT_FALSE(checkpointed.resumed_from_checkpoint);

  // The report records the saves. This fixture converges before
  // max_iterations, and the fixed-point iteration breaks out before its
  // boundary is captured, so with checkpoint_every=1 the saved boundaries
  // are 0 .. iterations-1: `iterations` saves, newest = iterations - 1.
  ASSERT_LT(checkpointed.iterations, with_ckpt.max_iterations);
  const obs::RunReport* report = clusterer.report();
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->checkpoint_enabled);
  EXPECT_EQ(report->checkpoint_saves, checkpointed.iterations);
  EXPECT_EQ(report->checkpoint_last_iteration, checkpointed.iterations - 1);

  std::vector<std::string> files;
  ASSERT_TRUE(ListCheckpointFiles(dir, &files).ok());
  EXPECT_EQ(files.size(), 2u);

  // Resuming from the completed run's final checkpoint re-detects the
  // fixed point and lands on the identical clustering.
  CluseqOptions resume = with_ckpt;
  resume.resume = true;
  ClusteringResult resumed;
  ASSERT_TRUE(RunCluseq(db, resume, &resumed).ok());
  EXPECT_TRUE(resumed.resumed_from_checkpoint);
  ExpectIdenticalResults(plain, resumed);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, EveryZeroCadenceWritesOnlyBoundaryAndFinal) {
  SequenceDatabase db = PlantedDb();
  const std::string dir = MakeTempDir("cluseq_ckpt_cadence");
  CluseqOptions o = FastOptions();
  o.checkpoint_dir = dir;
  o.checkpoint_every = 3;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  std::vector<std::string> files;
  ASSERT_TRUE(ListCheckpointFiles(dir, &files).ok());
  EXPECT_LE(files.size(), 2u);
  // Boundaries 1 .. iterations-1 are captured (the fixed-point iteration
  // breaks before its capture); flushes land on the cadence, so the newest
  // file is the largest multiple of 3 at or below iterations - 1.
  ASSERT_LT(result.iterations, o.max_iterations);
  ClustererCheckpoint newest;
  ASSERT_TRUE(LoadCheckpointFile(files[0], &newest).ok());
  EXPECT_EQ(newest.iteration,
            ((result.iterations - 1) / o.checkpoint_every) *
                o.checkpoint_every);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, ResumeRequiresDirAndEveryZeroDisables) {
  SequenceDatabase db = PlantedDb();
  CluseqOptions o = FastOptions();
  o.resume = true;  // Without checkpoint_dir: invalid.
  ClusteringResult result;
  EXPECT_TRUE(RunCluseq(db, o, &result).IsInvalidArgument());

  const std::string dir = MakeTempDir("cluseq_ckpt_disabled");
  o = FastOptions();
  o.checkpoint_dir = dir;
  o.checkpoint_every = 0;  // Directory set but cadence 0: fully disabled.
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  std::vector<std::string> files;
  EXPECT_TRUE(ListCheckpointFiles(dir, &files).IsNotFound());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, ResumeFromEmptyDirectoryStartsFresh) {
  SequenceDatabase db = PlantedDb();
  ClusteringResult plain;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &plain).ok());

  const std::string dir = MakeTempDir("cluseq_ckpt_fresh");
  CluseqOptions o = FastOptions();
  o.checkpoint_dir = dir + "/nonexistent";
  o.resume = true;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  EXPECT_FALSE(result.resumed_from_checkpoint);
  ExpectIdenticalResults(plain, result);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, WrongCorpusIsRejected) {
  SequenceDatabase db = PlantedDb(11);
  const std::string dir = MakeTempDir("cluseq_ckpt_corpus");
  CluseqOptions o = FastOptions();
  o.checkpoint_dir = dir;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());

  SequenceDatabase other = PlantedDb(12);
  o.resume = true;
  EXPECT_TRUE(RunCluseq(other, o, &result).IsFailedPrecondition());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, WrongAlgorithmicOptionsAreRejected) {
  SequenceDatabase db = PlantedDb();
  const std::string dir = MakeTempDir("cluseq_ckpt_opts");
  CluseqOptions o = FastOptions();
  o.checkpoint_dir = dir;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());

  CluseqOptions changed = o;
  changed.resume = true;
  changed.rng_seed += 1;
  EXPECT_TRUE(RunCluseq(db, changed, &result).IsFailedPrecondition());

  // Perf switches are not identity: resuming with them flipped is fine.
  CluseqOptions perf = o;
  perf.resume = true;
  perf.num_threads = 3;
  perf.prefilter = !perf.prefilter;
  ClusteringResult resumed;
  ASSERT_TRUE(RunCluseq(db, perf, &resumed).ok());
  EXPECT_TRUE(resumed.resumed_from_checkpoint);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, StrictResumeSurfacesACorruptNewest) {
  SequenceDatabase db = PlantedDb();
  const std::string dir = MakeTempDir("cluseq_ckpt_strict");
  CluseqOptions o = FastOptions();
  o.checkpoint_dir = dir;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());

  std::vector<std::string> files;
  ASSERT_TRUE(ListCheckpointFiles(dir, &files).ok());
  ASSERT_EQ(files.size(), 2u);
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(files[0], &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(files[0], bytes).ok());

  CluseqOptions strict = o;
  strict.resume = true;
  strict.checkpoint_strict = true;
  EXPECT_TRUE(RunCluseq(db, strict, &result).IsCorruption());

  // Non-strict: falls back to the previous checkpoint and completes with
  // the exact uninterrupted clustering.
  ClusteringResult plain;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &plain).ok());
  CluseqOptions lax = o;
  lax.resume = true;
  ClusteringResult resumed;
  ASSERT_TRUE(RunCluseq(db, lax, &resumed).ok());
  EXPECT_TRUE(resumed.resumed_from_checkpoint);
  ExpectIdenticalResults(plain, resumed);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, ResumeFromEveryIterationMatchesExactly) {
  // The in-process half of the chaos argument: resume from the checkpoint
  // of EVERY iteration boundary (as if killed right after that save) and
  // demand the bit-for-bit final clustering. chaos_resume_test.cc does the
  // same through real SIGKILLed processes.
  SequenceDatabase db = PlantedDb();
  ClusteringResult plain;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &plain).ok());
  ASSERT_GT(plain.iterations, 2u);

  // A converged run saves boundaries 0 .. iterations-1 (the fixed-point
  // iteration breaks before its capture), so that range is every file a
  // kill could leave as the newest.
  for (uint64_t boundary = 0; boundary < plain.iterations; ++boundary) {
    const std::string dir = MakeTempDir("cluseq_ckpt_every");
    // Recreate the exact file a run killed after `boundary` would leave:
    // run once with checkpointing and keep only that boundary's file.
    static uint64_t target;
    static std::string kept_bytes;
    target = boundary;
    kept_bytes.clear();
    SetCheckpointSaveHookForTest(
        +[](uint64_t iteration, const std::string& path) {
          if (iteration == target) {
            EXPECT_TRUE(ReadFileToString(path, &kept_bytes).ok());
          }
        });
    CluseqOptions o = FastOptions();
    o.checkpoint_dir = dir;
    ClusteringResult full;
    ASSERT_TRUE(RunCluseq(db, o, &full).ok());
    SetCheckpointSaveHookForTest(nullptr);
    ASSERT_FALSE(kept_bytes.empty()) << "boundary " << boundary;

    std::filesystem::remove_all(dir);
    ASSERT_TRUE(EnsureDirectory(dir).ok());
    ASSERT_TRUE(
        WriteFileAtomic(CheckpointFilePath(dir, boundary), kept_bytes).ok());
    CluseqOptions resume = o;
    resume.resume = true;
    ClusteringResult resumed;
    ASSERT_TRUE(RunCluseq(db, resume, &resumed).ok()) << "boundary "
                                                      << boundary;
    EXPECT_TRUE(resumed.resumed_from_checkpoint);
    ExpectIdenticalResults(plain, resumed);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace cluseq
