#include "seq/background_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "seq/sequence_database.h"

namespace cluseq {
namespace {

TEST(BackgroundModelTest, FromCountsNormalizes) {
  BackgroundModel m = BackgroundModel::FromCounts({9, 19, 29});
  // Add-one smoothing: (c + 1) / (total + n) = (c+1)/60.
  EXPECT_NEAR(m.Probability(0), 10.0 / 60.0, 1e-12);
  EXPECT_NEAR(m.Probability(1), 20.0 / 60.0, 1e-12);
  EXPECT_NEAR(m.Probability(2), 30.0 / 60.0, 1e-12);
  double sum = m.Probability(0) + m.Probability(1) + m.Probability(2);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BackgroundModelTest, UnseenSymbolHasNonzeroProbability) {
  BackgroundModel m = BackgroundModel::FromCounts({100, 0});
  EXPECT_GT(m.Probability(1), 0.0);
  EXPECT_TRUE(std::isfinite(m.LogProbability(1)));
}

TEST(BackgroundModelTest, LogMatchesProbability) {
  BackgroundModel m = BackgroundModel::FromCounts({3, 5, 7, 11});
  for (SymbolId s = 0; s < 4; ++s) {
    EXPECT_NEAR(m.LogProbability(s), std::log(m.Probability(s)), 1e-12);
  }
}

TEST(BackgroundModelTest, FromDatabaseCountsAllPositions) {
  SequenceDatabase db(Alphabet::FromChars("ab"));
  db.Add(Sequence({0, 0, 1}));  // 2 a's, 1 b.
  db.Add(Sequence({0}));        // 1 a.
  BackgroundModel m = BackgroundModel::FromDatabase(db);
  // a: (3+1)/(4+2) = 4/6; b: (1+1)/6.
  EXPECT_NEAR(m.Probability(0), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(m.Probability(1), 2.0 / 6.0, 1e-12);
}

TEST(BackgroundModelTest, LogSequenceProbabilitySums) {
  BackgroundModel m = BackgroundModel::FromCounts({1, 1});
  std::vector<SymbolId> seq = {0, 1, 0};
  double expected = 2 * m.LogProbability(0) + m.LogProbability(1);
  EXPECT_NEAR(m.LogSequenceProbability(seq), expected, 1e-12);
  EXPECT_DOUBLE_EQ(m.LogSequenceProbability({}), 0.0);
}

TEST(BackgroundModelTest, EmptyDatabaseIsUniform) {
  SequenceDatabase db(Alphabet::FromChars("abcd"));
  BackgroundModel m = BackgroundModel::FromDatabase(db);
  for (SymbolId s = 0; s < 4; ++s) {
    EXPECT_NEAR(m.Probability(s), 0.25, 1e-12);
  }
}

}  // namespace
}  // namespace cluseq
