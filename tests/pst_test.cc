#include "pst/pst.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

PstOptions NoSmoothing(size_t depth, uint64_t c) {
  PstOptions o;
  o.max_depth = depth;
  o.significance_threshold = c;
  o.smoothing_p_min = 0.0;
  return o;
}

// Brute-force count of occurrences of `segment` followed by at least one
// symbol across all texts; and occurrences followed specifically by `next`.
size_t CountFollowed(const std::vector<Symbols>& texts,
                     const Symbols& segment) {
  size_t count = 0;
  for (const auto& t : texts) {
    if (t.size() < segment.size() + 1) continue;
    for (size_t pos = 0; pos + segment.size() + 1 <= t.size(); ++pos) {
      bool match = true;
      for (size_t j = 0; j < segment.size(); ++j) {
        if (t[pos + j] != segment[j]) {
          match = false;
          break;
        }
      }
      if (match) ++count;
    }
  }
  return count;
}

size_t CountFollowedBy(const std::vector<Symbols>& texts,
                       const Symbols& segment, SymbolId next) {
  Symbols extended = segment;
  extended.push_back(next);
  size_t count = 0;
  for (const auto& t : texts) {
    if (t.size() < extended.size()) continue;
    for (size_t pos = 0; pos + extended.size() <= t.size(); ++pos) {
      bool match = true;
      for (size_t j = 0; j < extended.size(); ++j) {
        if (t[pos + j] != extended[j]) {
          match = false;
          break;
        }
      }
      if (match) ++count;
    }
  }
  return count;
}

// Collects every node with its natural-order label.
void CollectNodes(const Pst& pst, PstNodeId id,
                  std::map<Symbols, PstNodeId>* out) {
  (*out)[pst.NodeLabel(id)] = id;
  for (const auto& [sym, child] : pst.Children(id)) {
    CollectNodes(pst, child, out);
  }
}

TEST(PstTest, EmptyTreeHasOnlyRoot) {
  Pst pst(4, NoSmoothing(5, 2));
  EXPECT_EQ(pst.NumNodes(), 1u);
  EXPECT_EQ(pst.total_symbols(), 0u);
  EXPECT_EQ(pst.NodeCount(kPstRoot), 0u);
}

TEST(PstTest, RootCountEqualsTotalSymbols) {
  Pst pst(3, NoSmoothing(4, 1));
  pst.InsertSequence(Symbols{0, 1, 2, 0, 1});
  pst.InsertSequence(Symbols{2, 2});
  EXPECT_EQ(pst.total_symbols(), 7u);
}

TEST(PstTest, SingleSequenceCountsMatchBruteForce) {
  // ababb over {a=0, b=1}.
  std::vector<Symbols> texts = {{0, 1, 0, 1, 1}};
  Pst pst(2, NoSmoothing(4, 1));
  pst.InsertSequence(texts[0]);

  std::map<Symbols, PstNodeId> nodes;
  CollectNodes(pst, kPstRoot, &nodes);
  for (const auto& [label, id] : nodes) {
    EXPECT_EQ(pst.NodeCount(id), CountFollowed(texts, label))
        << "label length " << label.size();
    for (SymbolId s = 0; s < 2; ++s) {
      EXPECT_EQ(pst.NextCount(id, s), CountFollowedBy(texts, label, s));
    }
  }
}

TEST(PstTest, NodeCountEqualsSumOfNextCounts) {
  Rng rng(5);
  Pst pst(4, NoSmoothing(6, 1));
  std::vector<Symbols> texts;
  for (int t = 0; t < 3; ++t) {
    Symbols text(50);
    for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(4));
    pst.InsertSequence(text);
    texts.push_back(text);
  }
  std::map<Symbols, PstNodeId> nodes;
  CollectNodes(pst, kPstRoot, &nodes);
  for (const auto& [label, id] : nodes) {
    uint64_t sum = 0;
    for (SymbolId s = 0; s < 4; ++s) sum += pst.NextCount(id, s);
    EXPECT_EQ(pst.NodeCount(id), sum);
  }
}

// Property sweep: counts match brute force for random texts over several
// alphabet sizes and depths.
struct CountsParam {
  size_t alphabet;
  size_t depth;
  size_t length;
  uint64_t seed;
};

class PstCountsSweep : public ::testing::TestWithParam<CountsParam> {};

TEST_P(PstCountsSweep, MatchesBruteForce) {
  const CountsParam p = GetParam();
  Rng rng(p.seed);
  std::vector<Symbols> texts;
  Pst pst(p.alphabet, NoSmoothing(p.depth, 1));
  for (int t = 0; t < 2; ++t) {
    Symbols text(p.length);
    for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(p.alphabet));
    pst.InsertSequence(text);
    texts.push_back(text);
  }
  std::map<Symbols, PstNodeId> nodes;
  CollectNodes(pst, kPstRoot, &nodes);
  ASSERT_GT(nodes.size(), 1u);
  for (const auto& [label, id] : nodes) {
    ASSERT_LE(label.size(), p.depth);
    EXPECT_EQ(pst.NodeCount(id), CountFollowed(texts, label));
    for (SymbolId s = 0; s < p.alphabet; ++s) {
      EXPECT_EQ(pst.NextCount(id, s), CountFollowedBy(texts, label, s));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PstCountsSweep,
    ::testing::Values(CountsParam{2, 3, 40, 1}, CountsParam{2, 5, 60, 2},
                      CountsParam{3, 4, 50, 3}, CountsParam{5, 3, 80, 4},
                      CountsParam{8, 2, 100, 5}, CountsParam{4, 6, 70, 6}));

TEST(PstTest, DepthIsBounded) {
  Pst pst(2, NoSmoothing(3, 1));
  Symbols text(100, 0);
  pst.InsertSequence(text);
  EXPECT_LE(pst.Stats().max_depth, 3u);
}

TEST(PstTest, ProbabilityVectorSumsToOne) {
  Rng rng(9);
  PstOptions o;
  o.max_depth = 4;
  o.significance_threshold = 1;
  o.smoothing_p_min = 1e-3;
  Pst pst(5, o);
  Symbols text(200);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(5));
  pst.InsertSequence(text);

  std::map<Symbols, PstNodeId> nodes;
  CollectNodes(pst, kPstRoot, &nodes);
  for (const auto& [label, id] : nodes) {
    double sum = 0.0;
    for (SymbolId s = 0; s < 5; ++s) sum += pst.NodeProbability(id, s);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "node label size " << label.size();
  }
}

TEST(PstTest, EmpiricalProbabilityIsRatioOfCounts) {
  // Text abab: context "a" is followed by b twice; P(b|a) = 1.
  Pst pst(2, NoSmoothing(4, 1));
  pst.InsertSequence(Symbols{0, 1, 0, 1});
  Symbols ctx = {0};
  EXPECT_DOUBLE_EQ(pst.ConditionalProbability(ctx, 1), 1.0);
  EXPECT_DOUBLE_EQ(pst.ConditionalProbability(ctx, 0), 0.0);
}

TEST(PstTest, SmoothedProbabilityNeverZero) {
  PstOptions o = NoSmoothing(4, 1);
  o.smoothing_p_min = 1e-3;
  Pst pst(2, o);
  pst.InsertSequence(Symbols{0, 1, 0, 1});
  Symbols ctx = {0};
  double pb = pst.ConditionalProbability(ctx, 1);
  double pa = pst.ConditionalProbability(ctx, 0);
  EXPECT_GT(pa, 0.0);
  EXPECT_LT(pb, 1.0);
  EXPECT_NEAR(pa + pb, 1.0, 1e-12);
  // Matches the paper's formula: (1 - n*p_min)*P + p_min.
  EXPECT_NEAR(pa, 1e-3, 1e-12);
  EXPECT_NEAR(pb, (1.0 - 2e-3) * 1.0 + 1e-3, 1e-12);
}

TEST(PstTest, SmoothingPminClampedForLargeAlphabets) {
  PstOptions o;
  o.smoothing_p_min = 0.5;  // Would make n * p_min >= 1 for n >= 2.
  Pst pst(100, o);
  EXPECT_LE(pst.options().smoothing_p_min * 100.0, 0.5 + 1e-12);
}

TEST(PstTest, PredictionNodeIsLongestSignificantSuffix) {
  // Build counts such that "ba" is significant but "bba" is not (c = 3).
  // Text: repeat "ba" 5 times then one "bba".
  Symbols text;
  for (int i = 0; i < 5; ++i) {
    text.push_back(1);
    text.push_back(0);
  }
  text.insert(text.end(), {1, 1, 0});
  Pst pst(2, NoSmoothing(5, 3));
  pst.InsertSequence(text);

  // Context "bba": the walk a <- b goes to node "ba" (count >= 3); stepping
  // to "bba" (count < 3) is refused.
  Symbols ctx = {1, 1, 0};
  PstNodeId node = pst.PredictionNode(ctx);
  EXPECT_EQ(pst.NodeLabel(node), (Symbols{1, 0}));
}

TEST(PstTest, PredictionNodeFullSegmentWhenSignificant) {
  Symbols text;
  for (int i = 0; i < 10; ++i) text.insert(text.end(), {0, 1, 0});
  Pst pst(2, NoSmoothing(5, 3));
  pst.InsertSequence(text);
  Symbols ctx = {1, 0};
  PstNodeId node = pst.PredictionNode(ctx);
  EXPECT_EQ(pst.NodeLabel(node), ctx);
}

TEST(PstTest, PredictionFallsBackToRoot) {
  Pst pst(3, NoSmoothing(5, 100));  // Everything insignificant.
  pst.InsertSequence(Symbols{0, 1, 2, 0, 1, 2});
  Symbols ctx = {0, 1};
  EXPECT_EQ(pst.PredictionNode(ctx), kPstRoot);
}

TEST(PstTest, PredictionOnEmptyContextIsRoot) {
  Pst pst(2, NoSmoothing(5, 1));
  pst.InsertSequence(Symbols{0, 1});
  EXPECT_EQ(pst.PredictionNode(Symbols{}), kPstRoot);
}

// Brute-force longest significant suffix vs PredictionNode on random data.
TEST(PstTest, PredictionNodeMatchesBruteForce) {
  Rng rng(77);
  const size_t alpha = 3, depth = 5;
  const uint64_t c = 4;
  std::vector<Symbols> texts;
  Pst pst(alpha, NoSmoothing(depth, c));
  Symbols text(300);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alpha));
  pst.InsertSequence(text);
  texts.push_back(text);

  for (int trial = 0; trial < 200; ++trial) {
    size_t len = 1 + rng.Uniform(8);
    Symbols ctx(len);
    for (auto& s : ctx) s = static_cast<SymbolId>(rng.Uniform(alpha));
    // Brute force: longest suffix of ctx (up to depth) whose
    // followed-count >= c, and every longer suffix along the chain must
    // also exist as a node (trie path property holds by construction).
    Symbols best;  // Empty = root.
    for (size_t take = 1; take <= std::min(len, depth); ++take) {
      Symbols suffix(ctx.end() - static_cast<long>(take), ctx.end());
      if (CountFollowed(texts, suffix) >= c) {
        best = suffix;
      } else {
        break;  // The paper's walk stops at the first insignificant step.
      }
    }
    PstNodeId node = pst.PredictionNode(ctx);
    EXPECT_EQ(pst.NodeLabel(node), best) << "trial " << trial;
  }
}

TEST(PstTest, LogConditionalProbabilityMatchesLog) {
  Pst pst(2, NoSmoothing(4, 1));
  pst.InsertSequence(Symbols{0, 1, 1, 0, 1});
  Symbols ctx = {1};
  double p = pst.ConditionalProbability(ctx, 0);
  ASSERT_GT(p, 0.0);
  EXPECT_NEAR(pst.LogConditionalProbability(ctx, 0), std::log(p), 1e-12);
}

TEST(PstTest, LogConditionalProbabilityZeroIsNegInf) {
  Pst pst(3, NoSmoothing(4, 1));
  pst.InsertSequence(Symbols{0, 1, 0, 1});
  Symbols ctx = {1};
  EXPECT_TRUE(std::isinf(pst.LogConditionalProbability(ctx, 2)));
}

TEST(PstTest, LogSequenceProbabilityDecomposes) {
  PstOptions o = NoSmoothing(4, 1);
  o.smoothing_p_min = 1e-3;
  Pst pst(2, o);
  pst.InsertSequence(Symbols{0, 1, 0, 1, 0, 0, 1});
  Symbols query = {0, 1, 0};
  double manual = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    Symbols prefix(query.begin(), query.begin() + static_cast<long>(i));
    manual += pst.LogConditionalProbability(prefix, query[i]);
  }
  EXPECT_NEAR(pst.LogSequenceProbability(query), manual, 1e-12);
}

TEST(PstTest, NodeLabelNaturalOrder) {
  Pst pst(3, NoSmoothing(5, 1));
  // Text "abc": position of c (index 2) inserts contexts "b" (depth1) and
  // "ab" (depth2). Node reached by root->b->a has label "ab".
  pst.InsertSequence(Symbols{0, 1, 2});
  PstNodeId b = pst.Child(kPstRoot, 1);
  ASSERT_NE(b, kNoPstNode);
  PstNodeId ab = pst.Child(b, 0);
  ASSERT_NE(ab, kNoPstNode);
  EXPECT_EQ(pst.NodeLabel(ab), (Symbols{0, 1}));
  EXPECT_EQ(pst.NextCount(ab, 2), 1u);
}

TEST(PstTest, IsSignificantThreshold) {
  Pst pst(2, NoSmoothing(3, 2));
  pst.InsertSequence(Symbols{0, 0, 0, 1});
  PstNodeId a = pst.Child(kPstRoot, 0);
  ASSERT_NE(a, kNoPstNode);
  EXPECT_GE(pst.NodeCount(a), 2u);
  EXPECT_TRUE(pst.IsSignificant(a));
  PstNodeId b = pst.Child(kPstRoot, 1);
  // 'b' is never followed by a symbol -> no node for it.
  EXPECT_EQ(b, kNoPstNode);
}

TEST(PstTest, ClearResetsEverything) {
  Pst pst(2, NoSmoothing(4, 1));
  pst.InsertSequence(Symbols{0, 1, 0, 1, 0});
  ASSERT_GT(pst.NumNodes(), 1u);
  pst.Clear();
  EXPECT_EQ(pst.NumNodes(), 1u);
  EXPECT_EQ(pst.total_symbols(), 0u);
  EXPECT_EQ(pst.Stats().num_nodes, 1u);
}

TEST(PstTest, StatsAreConsistent) {
  Rng rng(123);
  Pst pst(4, NoSmoothing(5, 2));
  Symbols text(150);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(4));
  pst.InsertSequence(text);
  PstStats stats = pst.Stats();
  EXPECT_EQ(stats.num_nodes, pst.NumNodes());
  EXPECT_LE(stats.num_significant_nodes, stats.num_nodes);
  EXPECT_LE(stats.max_depth, 5u);
  EXPECT_EQ(stats.total_symbols, 150u);
  EXPECT_EQ(stats.approx_bytes, pst.ApproxMemoryBytes());
  EXPECT_GT(stats.approx_bytes, 0u);
}

TEST(PstTest, DeepestExistingNodeIgnoresSignificance) {
  // Text "bab": the final 'b' inserts contexts "a" and "ba" ({1,0}).
  Symbols text = {1, 0, 1};
  Pst pst(2, NoSmoothing(5, 100));
  pst.InsertSequence(text);
  // "ba" exists (count 1) though insignificant.
  Symbols ctx = {1, 0};
  PstNodeId deep = pst.DeepestExistingNode(ctx);
  EXPECT_EQ(pst.NodeLabel(deep), ctx);
  EXPECT_EQ(pst.PredictionNode(ctx), kPstRoot);
}

TEST(PstOptionsTest, Validate) {
  PstOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.max_depth = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = PstOptions();
  o.significance_threshold = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = PstOptions();
  o.smoothing_p_min = 1.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.smoothing_p_min = -0.1;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(PstTest, CopySemantics) {
  Pst pst(2, NoSmoothing(4, 1));
  pst.InsertSequence(Symbols{0, 1, 0, 1});
  Pst copy = pst;
  copy.InsertSequence(Symbols{1, 1, 1, 1});
  // Original unchanged.
  EXPECT_EQ(pst.total_symbols(), 4u);
  EXPECT_EQ(copy.total_symbols(), 8u);
}

}  // namespace
}  // namespace cluseq
