#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cluseq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Corruption("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Corruption("broken");
  EXPECT_EQ(os.str(), "Corruption: broken");
}

Status Helper(bool fail) {
  if (fail) return Status::Internal("inner");
  return Status::OK();
}

Status Outer(bool fail) {
  CLUSEQ_RETURN_NOT_OK(Helper(fail));
  return Status::NotFound("reached end");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Outer(true).IsInternal());
  EXPECT_TRUE(Outer(false).IsNotFound());
}

TEST(StatusTest, CopyAndMove) {
  Status a = Status::IOError("disk");
  Status b = a;
  EXPECT_EQ(a, b);
  Status c = std::move(a);
  EXPECT_TRUE(c.IsIOError());
  EXPECT_EQ(c.message(), "disk");
}

}  // namespace
}  // namespace cluseq
