#include "obs/trace.h"

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace cluseq {
namespace obs {
namespace {

// The recorder is process-global; each test Start()s it, which discards
// whatever earlier tests recorded.

TEST(TraceTest, DisabledSpansRecordNothing) {
  TraceRecorder& recorder = TraceRecorder::Get();
  recorder.Start();
  recorder.Stop();
  { CLUSEQ_TRACE_SPAN("trace_test.disabled"); }
  EXPECT_TRUE(recorder.Collect().empty());
}

TEST(TraceTest, SpanRecordsNameAndDuration) {
  TraceRecorder& recorder = TraceRecorder::Get();
  recorder.Start();
  {
    CLUSEQ_TRACE_SPAN("trace_test.outer");
    CLUSEQ_TRACE_SPAN("trace_test.inner");
  }
  recorder.Stop();
  const std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 2u);
  std::set<std::string> names;
  for (const TraceEvent& e : events) {
    names.insert(e.name);
    EXPECT_GE(e.dur_us, 0.0);
    EXPECT_GE(e.ts_us, 0.0);
  }
  EXPECT_TRUE(names.count("trace_test.outer"));
  EXPECT_TRUE(names.count("trace_test.inner"));
}

TEST(TraceTest, StartDiscardsPreviousEvents) {
  TraceRecorder& recorder = TraceRecorder::Get();
  recorder.Start();
  { CLUSEQ_TRACE_SPAN("trace_test.stale"); }
  recorder.Start();  // Restart: the stale span must be gone.
  { CLUSEQ_TRACE_SPAN("trace_test.fresh"); }
  recorder.Stop();
  const std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "trace_test.fresh");
}

TEST(TraceTest, WorkerThreadSpansSurviveThreadExit) {
  TraceRecorder& recorder = TraceRecorder::Get();
  recorder.Start();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] { CLUSEQ_TRACE_SPAN("trace_test.worker"); });
  }
  for (auto& thread : threads) thread.join();
  { CLUSEQ_TRACE_SPAN("trace_test.main"); }
  recorder.Stop();
  const std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads) + 1);
  std::set<uint32_t> tids;
  int workers = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "trace_test.worker") {
      ++workers;
      tids.insert(e.tid);
    }
  }
  EXPECT_EQ(workers, kThreads);
  // Each worker thread gets its own tid.
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST(TraceTest, WriteJsonEmitsWellFormedChromeTrace) {
  TraceRecorder& recorder = TraceRecorder::Get();
  recorder.Start();
  { CLUSEQ_TRACE_SPAN("trace_test.json_a"); }
  { CLUSEQ_TRACE_SPAN("trace_test.json_b"); }
  recorder.Stop();

  std::ostringstream out;
  recorder.WriteJson(out);
  JsonValue root;
  ASSERT_TRUE(ParseJson(out.str(), &root).ok()) << out.str();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("displayTimeUnit")->string_value, "ms");
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // One thread_name metadata event for the single recording thread, then
  // the two complete events.
  ASSERT_EQ(events->array.size(), 3u);
  const JsonValue& meta = events->array[0];
  EXPECT_EQ(meta.Find("ph")->string_value, "M");
  EXPECT_EQ(meta.Find("name")->string_value, "thread_name");
  ASSERT_NE(meta.Find("args"), nullptr);
  EXPECT_EQ(meta.Find("args")->Find("name")->string_value,
            "t" + std::to_string(
                      static_cast<uint64_t>(meta.Find("tid")->number)));
  for (size_t i = 1; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    ASSERT_TRUE(event.is_object());
    EXPECT_TRUE(event.Find("name")->is_string());
    EXPECT_EQ(event.Find("cat")->string_value, "cluseq");
    EXPECT_EQ(event.Find("ph")->string_value, "X");  // Complete events.
    EXPECT_TRUE(event.Find("ts")->is_number());
    EXPECT_TRUE(event.Find("dur")->is_number());
    EXPECT_EQ(event.Find("pid")->number, 1.0);
    EXPECT_TRUE(event.Find("tid")->is_number());
  }
  // Complete events are serialized in (ts, tid) order.
  EXPECT_LE(events->array[1].Find("ts")->number,
            events->array[2].Find("ts")->number);
}

TEST(TraceTest, WriteJsonFileRoundTrips) {
  TraceRecorder& recorder = TraceRecorder::Get();
  recorder.Start();
  { CLUSEQ_TRACE_SPAN("trace_test.file"); }
  recorder.Stop();
  const std::string path =
      testing::TempDir() + "/cluseq_obs_trace_test.json";
  ASSERT_TRUE(recorder.WriteJsonFile(path).ok());
  JsonValue root;
  ASSERT_TRUE(ParseJsonFile(path, &root).ok());
  ASSERT_TRUE(root.Find("traceEvents")->is_array());
  // thread_name metadata + the one complete event.
  EXPECT_EQ(root.Find("traceEvents")->array.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace cluseq
