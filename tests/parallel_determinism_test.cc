// Thread-count invariance of the full CLUSEQ iteration.
//
// Every parallel phase (scan, seeding, re-freeze, PST rebuild, the
// cluster-sharded join) is built so the scheduler only decides *who*
// executes an index, never how results are combined — so the clustering a
// run produces must be bit-for-bit identical at any thread count, in both
// batched and non-batched scan modes, with and without a PST memory budget
// (which makes tree pruning insertion-order dependent, the hardest case).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluseq.h"
#include "obs/run_report.h"
#include "synth/dataset.h"
#include "util/thread_pool.h"

namespace cluseq {
namespace {

SequenceDatabase SkewedDb(uint64_t seed) {
  // Length-skewed on purpose: the weighted scheduler must not change
  // results relative to the serial order.
  SyntheticDatasetOptions opts;
  opts.num_clusters = 3;
  opts.sequences_per_cluster = 14;
  opts.alphabet_size = 8;
  opts.avg_length = 90;
  opts.min_length = 20;
  opts.max_length = 400;
  opts.outlier_fraction = 0.1;
  opts.spread = 0.25;
  opts.seed = seed;
  return MakeSyntheticDataset(opts);
}

CluseqOptions BaseOptions() {
  CluseqOptions o;
  o.initial_clusters = 3;
  o.similarity_threshold = 1.05;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 8;
  o.pst.max_depth = 5;
  o.pst.smoothing_p_min = 1e-4;
  o.rng_seed = 11;
  return o;
}

// Runs the clusterer at each thread count and asserts the results are
// exactly equal: member sets, per-sequence best cluster, best_log_sim
// bit-for-bit, iteration trajectory, and final threshold.
void ExpectThreadCountInvariant(const SequenceDatabase& db,
                                CluseqOptions options) {
  options.num_threads = 1;
  ClusteringResult reference;
  ASSERT_TRUE(RunCluseq(db, options, &reference).ok());

  for (size_t threads : {2u, 7u}) {
    options.num_threads = threads;
    ClusteringResult result;
    ASSERT_TRUE(RunCluseq(db, options, &result).ok());
    EXPECT_EQ(reference.clusters, result.clusters) << threads << " threads";
    EXPECT_EQ(reference.best_cluster, result.best_cluster)
        << threads << " threads";
    ASSERT_EQ(reference.best_log_sim.size(), result.best_log_sim.size());
    for (size_t i = 0; i < reference.best_log_sim.size(); ++i) {
      // Bit-for-bit, including -inf for never-scored sequences.
      EXPECT_EQ(reference.best_log_sim[i], result.best_log_sim[i])
          << "sequence " << i << " at " << threads << " threads";
    }
    EXPECT_EQ(reference.iterations, result.iterations) << threads;
    EXPECT_EQ(reference.final_log_threshold, result.final_log_threshold)
        << threads;
    ASSERT_EQ(reference.iteration_stats.size(), result.iteration_stats.size());
    for (size_t it = 0; it < reference.iteration_stats.size(); ++it) {
      const IterationStats& a = reference.iteration_stats[it];
      const IterationStats& b = result.iteration_stats[it];
      EXPECT_EQ(a.new_clusters, b.new_clusters) << "iteration " << it;
      EXPECT_EQ(a.consolidated, b.consolidated) << "iteration " << it;
      EXPECT_EQ(a.clusters_after, b.clusters_after) << "iteration " << it;
      EXPECT_EQ(a.unclustered, b.unclustered) << "iteration " << it;
      EXPECT_EQ(a.log_threshold, b.log_threshold) << "iteration " << it;
      EXPECT_EQ(a.refrozen_clusters, b.refrozen_clusters)
          << "iteration " << it;
      EXPECT_EQ(a.pst_nodes_total, b.pst_nodes_total) << "iteration " << it;
    }
  }
}

TEST(ParallelDeterminismTest, BatchedScan) {
  CluseqOptions o = BaseOptions();
  o.batched_scan = true;
  ExpectThreadCountInvariant(SkewedDb(101), o);
}

TEST(ParallelDeterminismTest, UnbatchedScan) {
  CluseqOptions o = BaseOptions();
  o.batched_scan = false;
  ExpectThreadCountInvariant(SkewedDb(102), o);
}

TEST(ParallelDeterminismTest, BatchedScanWithMemoryBudget) {
  // A memory budget makes PST pruning depend on insertion order; the
  // cluster-sharded join and per-cluster rebuild preserve the serial
  // insertion order exactly, so results must still match.
  CluseqOptions o = BaseOptions();
  o.batched_scan = true;
  o.pst.max_memory_bytes = 64 * 1024;
  ExpectThreadCountInvariant(SkewedDb(103), o);
}

TEST(ParallelDeterminismTest, UnbatchedScanWithMemoryBudget) {
  CluseqOptions o = BaseOptions();
  o.batched_scan = false;
  o.pst.max_memory_bytes = 64 * 1024;
  ExpectThreadCountInvariant(SkewedDb(104), o);
}

TEST(ParallelDeterminismTest, WithinScanUpdatesMode) {
  // §4.2 mode parallelizes across clusters per sequence; still invariant.
  CluseqOptions o = BaseOptions();
  o.within_scan_updates = true;
  ExpectThreadCountInvariant(SkewedDb(105), o);
}

TEST(ParallelDeterminismTest, AutoThreadsRecordedInReport) {
  SequenceDatabase db = SkewedDb(106);
  CluseqOptions o = BaseOptions();
  o.num_threads = 0;  // Auto-detect.
  CluseqClusterer clusterer(db, o);
  ClusteringResult result;
  ASSERT_TRUE(clusterer.Run(&result).ok());
  ASSERT_NE(clusterer.report(), nullptr);
  EXPECT_EQ(clusterer.report()->effective_threads, HardwareThreads());
  EXPECT_EQ(clusterer.report()->options.num_threads, HardwareThreads());

  // Auto matches an explicit run at the same width.
  CluseqOptions explicit_o = BaseOptions();
  explicit_o.num_threads = HardwareThreads();
  ClusteringResult explicit_result;
  ASSERT_TRUE(RunCluseq(db, explicit_o, &explicit_result).ok());
  EXPECT_EQ(result.clusters, explicit_result.clusters);
  EXPECT_EQ(result.best_log_sim, explicit_result.best_log_sim);
}

}  // namespace
}  // namespace cluseq
