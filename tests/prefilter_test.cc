// Property tests for ScanPrefilter (core/prefilter.h): every skip must be
// justified by an admissible bound, so prefiltered scans are bit-for-bit
// equivalent to exhaustive ones. Covered here:
//
//   * recorded values are true upper bounds on the exact scores, and the
//     per-sequence maximum is restored exactly even when nothing joins;
//   * join decisions and joined-pair results match ScanAll at any
//     threshold, over diverse banks (pruned, merged, sub-alphabet and
//     smoothing-off models; k > 64 so multiple level-0 blocks run; wide
//     alphabets and every signature tier the byte budget can select),
//     with both the scalar and dispatched kernels;
//   * the sparse bank primitives (ScanCandidates / ScanCandidatesBounded)
//     match ScanAll on their candidate sets, and abandoned lanes hold
//     admissible bounds strictly below the target;
//   * BestModel equals the exhaustive first-strict-max argmax, including
//     the exclude-one form seeding uses;
//   * whole-clusterer runs with the prefilter on equal prefilter-off runs
//     bit-for-bit at 1, 2 and 7 threads, and Classify / BatchClassify
//     agree on/off.

#include "core/prefilter.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluseq.h"
#include "core/online_scorer.h"
#include "core/similarity.h"
#include "pst/frozen_bank.h"
#include "seq/background_model.h"
#include "synth/dataset.h"
#include "util/rng.h"

namespace cluseq {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

using Symbols = std::vector<SymbolId>;
using ModelPtr = std::shared_ptr<const FrozenPst>;

Symbols RandomText(size_t len, size_t alphabet, Rng* rng) {
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng->Uniform(alphabet));
  return text;
}

BackgroundModel SkewedBackground(size_t alphabet, Rng* rng) {
  std::vector<uint64_t> counts(alphabet);
  for (auto& c : counts) c = 1 + rng->Uniform(500);
  return BackgroundModel::FromCounts(counts);
}

// A deliberately heterogeneous bank: plain, pruned (closure states),
// merged, and sub-alphabet-trained models, optionally with smoothing off
// (unseen symbols score -inf).
std::vector<ModelPtr> DiverseModels(size_t k, size_t alphabet, size_t depth,
                                    const BackgroundModel& background,
                                    Rng* rng, bool smoothing_off = false) {
  std::vector<ModelPtr> models;
  models.reserve(k);
  for (size_t m = 0; m < k; ++m) {
    PstOptions options;
    options.max_depth = depth;
    options.significance_threshold = 1 + rng->Uniform(6);
    options.smoothing_p_min = smoothing_off ? 0.0 : 1e-4;
    switch (m % 4) {
      case 0: {
        Pst pst(alphabet, options);
        pst.InsertSequence(RandomText(200 + rng->Uniform(300), alphabet, rng));
        models.push_back(std::make_shared<const FrozenPst>(pst, background));
        break;
      }
      case 1: {  // Pruned: closure states in the automaton.
        Pst pst(alphabet, options);
        pst.InsertSequence(RandomText(500, alphabet, rng));
        pst.PruneToBudget(pst.ApproxMemoryBytes() / 3);
        models.push_back(std::make_shared<const FrozenPst>(pst, background));
        break;
      }
      case 2: {  // Merged counts from two trees.
        Pst a(alphabet, options), b(alphabet, options);
        a.InsertSequence(RandomText(250, alphabet, rng));
        b.InsertSequence(RandomText(250, alphabet, rng));
        EXPECT_TRUE(a.MergeFrom(b).ok());
        models.push_back(std::make_shared<const FrozenPst>(a, background));
        break;
      }
      default: {  // Sub-alphabet training: unseen symbols at query time.
        Pst pst(alphabet, options);
        pst.InsertSequence(
            RandomText(300, std::max<size_t>(2, alphabet / 2), rng));
        models.push_back(std::make_shared<const FrozenPst>(pst, background));
        break;
      }
    }
  }
  return models;
}

// The observable prefilter contract at one threshold: identical join set,
// bit-identical results on joined pairs, admissible bounds on the rest,
// and an exactly restored per-sequence maximum.
void ExpectThresholdScanMatches(
    const FrozenBank& bank, const Symbols& query, double log_t,
    size_t l15_prefix = ScanPrefilter::kDefaultL15Prefix) {
  const size_t k = bank.num_models();
  const std::vector<SimilarityResult> off = bank.ScanAll(query);
  const ScanPrefilter prefilter(&bank, l15_prefix);
  std::vector<SimilarityResult> on(k);
  PrefilterScanStats stats;
  prefilter.ScanAllWithThreshold(query, log_t, on.data(), &stats);
  EXPECT_EQ(stats.models_total, k);

  double off_best = kNegInf;
  double on_best = kNegInf;
  for (size_t m = 0; m < k; ++m) {
    const bool joins = off[m].log_sim >= log_t;
    EXPECT_EQ(joins, on[m].log_sim >= log_t) << "model " << m;
    if (joins) {
      // Joined pairs are exact, bit-for-bit.
      EXPECT_EQ(off[m].log_sim, on[m].log_sim) << "model " << m;
      EXPECT_EQ(off[m].best_begin, on[m].best_begin) << "model " << m;
      EXPECT_EQ(off[m].best_end, on[m].best_end) << "model " << m;
    } else {
      // Skipped/abandoned slots hold admissible upper bounds.
      EXPECT_GE(on[m].log_sim, off[m].log_sim) << "model " << m;
    }
    off_best = std::max(off_best, off[m].log_sim);
    on_best = std::max(on_best, on[m].log_sim);
  }
  // The reported per-sequence max is exact even when nothing joined.
  EXPECT_EQ(off_best, on_best);
}

void ExpectBestModelMatches(const FrozenBank& bank, const Symbols& query,
                            size_t exclude = ScanPrefilter::kNoExclude) {
  const size_t k = bank.num_models();
  const std::vector<SimilarityResult> off = bank.ScanAll(query);
  double expect_best = kNegInf;
  int32_t expect_pos = -1;
  for (size_t m = 0; m < k; ++m) {
    if (m == exclude) continue;
    if (off[m].log_sim > expect_best) {
      expect_best = off[m].log_sim;
      expect_pos = static_cast<int32_t>(m);
    }
  }
  const ScanPrefilter prefilter(&bank);
  double best = 0.0;
  EXPECT_EQ(prefilter.BestModel(query, &best, nullptr, exclude), expect_pos);
  EXPECT_EQ(best, expect_pos >= 0 ? expect_best : kNegInf);
}

TEST(PrefilterScanTest, MatchesOracleAcrossThresholdsAndBanks) {
  Rng rng(20260809);
  // k = 70 forces multiple level-0 blocks; alphabet 70 exercises wide
  // trigram code spaces (all these shapes fit the trigram tier under the
  // default budget — the budget-sweep test pins the other tiers).
  struct Shape {
    size_t k, alphabet, depth;
  };
  for (const Shape& shape : {Shape{6, 6, 3}, Shape{24, 16, 5},
                             Shape{70, 8, 4}, Shape{8, 70, 3}}) {
    const BackgroundModel background = SkewedBackground(shape.alphabet, &rng);
    FrozenBank bank(
        DiverseModels(shape.k, shape.alphabet, shape.depth, background, &rng));
    for (bool force_scalar : {false, true}) {
      bank.set_force_scalar(force_scalar);
      for (size_t len : {size_t{0}, size_t{1}, size_t{40}, size_t{500}}) {
        const Symbols query = RandomText(len, shape.alphabet, &rng);
        const std::vector<SimilarityResult> off = bank.ScanAll(query);
        double median = 0.0;
        {
          std::vector<double> scores;
          for (const SimilarityResult& r : off) scores.push_back(r.log_sim);
          std::sort(scores.begin(), scores.end());
          median = scores[scores.size() / 2];
        }
        for (double log_t : {kNegInf, 0.0, median, 1e300}) {
          ExpectThresholdScanMatches(bank, query, log_t);
        }
        ExpectBestModelMatches(bank, query);
        ExpectBestModelMatches(bank, query, /*exclude=*/0);
        ExpectBestModelMatches(bank, query, /*exclude=*/shape.k / 2);
      }
    }
  }
}

TEST(PrefilterScanTest, SmoothingOffNegInfScores) {
  Rng rng(77);
  const size_t alphabet = 10;
  const BackgroundModel background = SkewedBackground(alphabet, &rng);
  FrozenBank bank(DiverseModels(12, alphabet, 4, background, &rng,
                                /*smoothing_off=*/true));
  for (size_t len : {size_t{0}, size_t{60}, size_t{300}}) {
    const Symbols query = RandomText(len, alphabet, &rng);
    for (double log_t : {kNegInf, 0.5, 1e300}) {
      ExpectThresholdScanMatches(bank, query, log_t);
    }
    ExpectBestModelMatches(bank, query);
  }
}

TEST(PrefilterScanTest, EmptyAndTrivialBanks) {
  Rng rng(5);
  const size_t alphabet = 6;
  const BackgroundModel background = SkewedBackground(alphabet, &rng);
  const Symbols query = RandomText(50, alphabet, &rng);

  FrozenBank empty_bank;
  const ScanPrefilter empty_prefilter(&empty_bank);
  double best = 0.0;
  EXPECT_EQ(empty_prefilter.BestModel(query, &best), -1);
  EXPECT_EQ(best, kNegInf);

  FrozenBank one(DiverseModels(1, alphabet, 3, background, &rng));
  ExpectBestModelMatches(one, query);
  // Excluding the only model must report "no model", not scan it anyway.
  const ScanPrefilter one_prefilter(&one);
  EXPECT_EQ(one_prefilter.BestModel(query, &best, nullptr, /*exclude=*/0), -1);
  EXPECT_EQ(best, kNegInf);
}

// The byte budget must pick exactly the documented tier and every tier
// must uphold the full oracle contract — including alphabets past the old
// 64-symbol bigram cliff, which the budget heuristic replaced.
TEST(PrefilterSignatureTierTest, BudgetSelectsTierAndEveryTierMatchesOracle) {
  Rng rng(606);
  struct Shape {
    size_t k, alphabet, depth;
  };
  for (const Shape& shape : {Shape{12, 10, 4}, Shape{70, 8, 4},
                             Shape{8, 70, 3}}) {
    const BackgroundModel background = SkewedBackground(shape.alphabet, &rng);
    const std::vector<ModelPtr> models =
        DiverseModels(shape.k, shape.alphabet, shape.depth, background, &rng);
    // The selector's cost model is shared via SignatureTierCostBytes; a
    // budget halfway between the bigram and trigram costs must land on
    // bigram, and zero can afford nothing beyond the always-built unigram.
    const double cost2 =
        FrozenBank::SignatureTierCostBytes(shape.k, shape.alphabet, 2);
    const double cost3 =
        FrozenBank::SignatureTierCostBytes(shape.k, shape.alphabet, 3);
    const struct {
      size_t budget;
      FrozenBank::SignatureTier tier;
    } cases[] = {
        {0, FrozenBank::SignatureTier::kUnigram},
        {static_cast<size_t>((cost2 + cost3) / 2),
         FrozenBank::SignatureTier::kBigram},
        {size_t{1} << 30, FrozenBank::SignatureTier::kTrigram},
    };
    for (const auto& c : cases) {
      FrozenBank bank;
      bank.set_signature_budget_bytes(c.budget);
      bank.Assemble(models);
      ASSERT_EQ(bank.signature_tier(), c.tier)
          << "k=" << shape.k << " A=" << shape.alphabet
          << " budget=" << c.budget;
      for (bool force_scalar : {false, true}) {
        bank.set_force_scalar(force_scalar);
        const Symbols query = RandomText(250, shape.alphabet, &rng);
        const std::vector<SimilarityResult> off = bank.ScanAll(query);
        std::vector<double> scores;
        for (const SimilarityResult& r : off) scores.push_back(r.log_sim);
        std::sort(scores.begin(), scores.end());
        for (double log_t : {0.5, scores[scores.size() / 2], 1e300}) {
          ExpectThresholdScanMatches(bank, query, log_t);
        }
        ExpectBestModelMatches(bank, query);
      }
    }
  }
}

// Changing the budget across Assemble calls re-tiers the signatures in
// place (slot reuse must not leave a stale tier's tables behind).
TEST(PrefilterSignatureTierTest, ReassemblyAcrossBudgetsRebuildsSignatures) {
  Rng rng(607);
  const size_t alphabet = 12;
  const BackgroundModel background = SkewedBackground(alphabet, &rng);
  const std::vector<ModelPtr> models =
      DiverseModels(20, alphabet, 4, background, &rng);
  FrozenBank bank;
  const Symbols query = RandomText(300, alphabet, &rng);
  const size_t bigram_budget = static_cast<size_t>(
      (FrozenBank::SignatureTierCostBytes(20, alphabet, 2) +
       FrozenBank::SignatureTierCostBytes(20, alphabet, 3)) /
      2);
  for (size_t budget :
       {size_t{1} << 30, size_t{0}, bigram_budget, size_t{1} << 30}) {
    bank.set_signature_budget_bytes(budget);
    bank.Assemble(models);  // Unchanged models: exercises slot reuse.
    ExpectThresholdScanMatches(bank, query, 1.0);
    ExpectBestModelMatches(bank, query);
  }
}

// The level-1.5 truncated-prefix bound must stay admissible at any prefix
// length, including degenerate ones (0 disables the level, 1 covers a
// single symbol, 7 splits windows mid-sequence).
TEST(PrefilterScanTest, L15PrefixSweepMatchesOracle) {
  Rng rng(608);
  const size_t alphabet = 14;
  const BackgroundModel background = SkewedBackground(alphabet, &rng);
  FrozenBank bank(DiverseModels(70, alphabet, 4, background, &rng));
  for (size_t prefix : {size_t{0}, size_t{1}, size_t{7}, size_t{96}}) {
    for (size_t len : {size_t{1}, size_t{40}, size_t{400}}) {
      const Symbols query = RandomText(len, alphabet, &rng);
      const std::vector<SimilarityResult> off = bank.ScanAll(query);
      std::vector<double> scores;
      for (const SimilarityResult& r : off) scores.push_back(r.log_sim);
      std::sort(scores.begin(), scores.end());
      for (double log_t : {0.5, scores[scores.size() / 2], 1e300}) {
        ExpectThresholdScanMatches(bank, query, log_t, prefix);
      }
    }
  }
}

// Steady-state scans must reuse the per-thread workspace: repeated calls
// with same-shape input may not reallocate any of its buffers (a
// per-sequence allocation here once cost ~15% of scan time at high k).
TEST(PrefilterWorkspaceTest, ScratchNotReallocatedAcrossCalls) {
  Rng rng(609);
  const size_t alphabet = 10;
  const BackgroundModel background = SkewedBackground(alphabet, &rng);
  FrozenBank bank(DiverseModels(70, alphabet, 4, background, &rng));
  const ScanPrefilter prefilter(&bank);
  std::vector<SimilarityResult> sims(bank.num_models());
  const Symbols warm = RandomText(300, alphabet, &rng);
  prefilter.ScanAllWithThreshold(warm, 1.0, sims.data());
  double best = 0.0;
  prefilter.BestModel(warm, &best);
  const PrefilterWorkspaceProbe before =
      ScanPrefilter::ProbeThreadWorkspaceForTesting();
  for (int i = 0; i < 10; ++i) {
    const Symbols query = RandomText(300, alphabet, &rng);
    prefilter.ScanAllWithThreshold(query, 1.0, sims.data());
    prefilter.BestModel(query, &best);
  }
  const PrefilterWorkspaceProbe after =
      ScanPrefilter::ProbeThreadWorkspaceForTesting();
  EXPECT_EQ(before.stamp, after.stamp);
  EXPECT_EQ(before.count, after.count);
  EXPECT_EQ(before.cols, after.cols);
  EXPECT_EQ(before.acc, after.acc);
  EXPECT_EQ(before.tmp, after.tmp);
}

TEST(PrefilterBankPrimitivesTest, SparseCandidateScansMatchScanAll) {
  Rng rng(404);
  const size_t alphabet = 12;
  const size_t k = 70;
  const BackgroundModel background = SkewedBackground(alphabet, &rng);
  FrozenBank bank(DiverseModels(k, alphabet, 4, background, &rng));
  for (bool force_scalar : {false, true}) {
    bank.set_force_scalar(force_scalar);
    for (size_t trial = 0; trial < 4; ++trial) {
      const Symbols query = RandomText(30 + rng.Uniform(400), alphabet, &rng);
      const std::vector<SimilarityResult> off = bank.ScanAll(query);

      std::vector<uint32_t> candidates;
      for (size_t m = 0; m < k; ++m) {
        if (rng.Uniform(3) != 0) candidates.push_back(
            static_cast<uint32_t>(m));
      }
      std::vector<SimilarityResult> sparse(candidates.size());
      bank.ScanCandidates(query, candidates, sparse.data());
      for (size_t j = 0; j < candidates.size(); ++j) {
        EXPECT_EQ(off[candidates[j]].log_sim, sparse[j].log_sim);
        EXPECT_EQ(off[candidates[j]].best_begin, sparse[j].best_begin);
        EXPECT_EQ(off[candidates[j]].best_end, sparse[j].best_end);
      }

      // Bounded scan: exact lanes are bit-for-bit; abandoned lanes hold an
      // admissible bound strictly below the target.
      std::vector<double> scores;
      for (const uint32_t c : candidates) scores.push_back(off[c].log_sim);
      std::sort(scores.begin(), scores.end());
      const double target = scores.empty() ? 0.0 : scores[scores.size() / 2];
      std::vector<SimilarityResult> bounded(candidates.size());
      std::vector<uint8_t> exact(candidates.size());
      bank.ScanCandidatesBounded(query, candidates, target, bounded.data(),
                                 exact.data());
      for (size_t j = 0; j < candidates.size(); ++j) {
        const SimilarityResult& want = off[candidates[j]];
        if (exact[j]) {
          EXPECT_EQ(want.log_sim, bounded[j].log_sim);
          EXPECT_EQ(want.best_begin, bounded[j].best_begin);
          EXPECT_EQ(want.best_end, bounded[j].best_end);
        } else {
          EXPECT_GE(bounded[j].log_sim, want.log_sim);
          EXPECT_LT(bounded[j].log_sim, target);
        }
        // Every lane whose true score reaches the target must be exact.
        if (want.log_sim >= target) EXPECT_TRUE(exact[j] != 0);
      }
    }
  }
}

SequenceDatabase SkewedDb(uint64_t seed) {
  // Separable enough (wide alphabet, tight spread) that admissible bounds
  // actually prune cross-cluster pairs — the vacuousness guard below
  // depends on it — while outliers and the length skew keep the residual
  // restoration and early-abandon paths busy.
  SyntheticDatasetOptions opts;
  opts.num_clusters = 6;
  opts.sequences_per_cluster = 12;
  opts.alphabet_size = 16;
  opts.avg_length = 100;
  opts.min_length = 20;
  opts.max_length = 400;
  opts.outlier_fraction = 0.1;
  opts.spread = 0.15;
  opts.seed = seed;
  return MakeSyntheticDataset(opts);
}

CluseqOptions BaseOptions() {
  CluseqOptions o;
  o.initial_clusters = 6;
  o.similarity_threshold = 1.05;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 8;
  o.pst.max_depth = 5;
  o.pst.smoothing_p_min = 1e-4;
  o.rng_seed = 11;
  // Threshold adjustment off keeps the scan target at log t itself so
  // these runs exercise maximal pruning from iteration 1; the dedicated
  // adjustment test covers the live-adjuster censored-floor path. Pin a
  // high threshold (log t = 25) instead of the auto estimate: its ~log-4
  // start is below any bound a full-length sequence can fail, which would
  // leave the pruning paths untouched.
  o.adjust_threshold = false;
  o.auto_initial_threshold = false;
  o.similarity_threshold = std::exp(25.0);
  return o;
}

void ExpectRunsIdentical(const ClusteringResult& a, const ClusteringResult& b,
                         const char* what) {
  EXPECT_EQ(a.clusters, b.clusters) << what;
  EXPECT_EQ(a.best_cluster, b.best_cluster) << what;
  ASSERT_EQ(a.best_log_sim.size(), b.best_log_sim.size()) << what;
  for (size_t i = 0; i < a.best_log_sim.size(); ++i) {
    EXPECT_EQ(a.best_log_sim[i], b.best_log_sim[i])
        << what << ", sequence " << i;
  }
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.final_log_threshold, b.final_log_threshold) << what;
}

TEST(PrefilterClustererTest, OnOffBitForBitAcrossThreadCounts) {
  const SequenceDatabase db = SkewedDb(301);
  CluseqOptions off = BaseOptions();
  off.prefilter = false;
  off.num_threads = 1;
  ClusteringResult reference;
  ASSERT_TRUE(RunCluseq(db, off, &reference).ok());

  for (size_t threads : {1u, 2u, 7u}) {
    CluseqOptions on = BaseOptions();
    on.prefilter = true;
    on.num_threads = threads;
    ClusteringResult result;
    ASSERT_TRUE(RunCluseq(db, on, &result).ok());
    ExpectRunsIdentical(reference, result,
                        ("prefilter on, " + std::to_string(threads) +
                         " threads")
                            .c_str());
    // Guard against a vacuous pass: the prefilter must actually have
    // pruned or early-abandoned something in these runs, not just been
    // gated off (exactly that hid a lane-compaction bug in the bounded
    // scalar kernel once).
    double total_skip = 0.0;
    size_t total_early = 0;
    for (const IterationStats& it : result.iteration_stats) {
      total_skip += it.prefilter_skip_ratio;
      total_early += it.prefilter_dp_early_exits;
    }
    EXPECT_GT(total_skip + static_cast<double>(total_early), 0.0)
        << threads << " threads";
  }
}

TEST(PrefilterClustererTest, OnOffBitForBitWithThresholdAdjustment) {
  // With §4.6 threshold adjustment the prefilter no longer waits for the
  // adjuster to freeze: while the adjuster is live the scan targets the
  // censored floor log t − adjust_bound_window, every score at or above
  // the floor stays exact, and the adjuster censors at the same floor in
  // exhaustive runs — so prefiltered runs must stay bit-for-bit identical
  // through the adjusting iterations, at any thread count.
  const SequenceDatabase db = SkewedDb(302);
  CluseqOptions off = BaseOptions();
  off.adjust_threshold = true;
  off.prefilter = false;
  off.num_threads = 1;
  // A window narrower than the pinned log t = 25 keeps the censored floor
  // positive, so pruning is live in iteration 1 (the vacuousness guard
  // below depends on it). Algorithmic: both arms must share it.
  off.adjust_bound_window = 5.0;
  ClusteringResult reference;
  ASSERT_TRUE(RunCluseq(db, off, &reference).ok());

  for (size_t threads : {1u, 2u, 7u}) {
    CluseqOptions on = off;
    on.prefilter = true;
    on.num_threads = threads;
    ClusteringResult result;
    ASSERT_TRUE(RunCluseq(db, on, &result).ok());
    ExpectRunsIdentical(reference, result,
                        ("adjusted threshold, " + std::to_string(threads) +
                         " threads")
                            .c_str());
    // Non-vacuous: iteration 1 always runs with the adjuster live, and
    // with the floor at 25 − 5 = 20 it must actually prune there — the
    // whole point of the censored floor is pruning *during* adjustment.
    ASSERT_FALSE(result.iteration_stats.empty());
    const IterationStats& first = result.iteration_stats.front();
    EXPECT_GT(first.prefilter_skip_ratio +
                  static_cast<double>(first.prefilter_dp_early_exits),
              0.0)
        << threads << " threads";
  }
}

TEST(PrefilterClustererTest, ClassifyOnOffIdentical) {
  const SequenceDatabase db = SkewedDb(303);
  CluseqOptions off = BaseOptions();
  off.prefilter = false;
  CluseqClusterer off_clusterer(db, off);
  ClusteringResult off_result;
  ASSERT_TRUE(off_clusterer.Run(&off_result).ok());

  CluseqOptions on = BaseOptions();
  on.prefilter = true;
  CluseqClusterer on_clusterer(db, on);
  ClusteringResult on_result;
  ASSERT_TRUE(on_clusterer.Run(&on_result).ok());
  ExpectRunsIdentical(off_result, on_result, "classify precondition");

  const SequenceDatabase probes = SkewedDb(304);
  for (size_t i = 0; i < probes.size(); ++i) {
    double off_sim = 0.0, on_sim = 0.0;
    const int32_t off_c = off_clusterer.Classify(probes.Symbols(i), &off_sim);
    const int32_t on_c = on_clusterer.Classify(probes.Symbols(i), &on_sim);
    EXPECT_EQ(off_c, on_c) << "probe " << i;
    EXPECT_EQ(off_sim, on_sim) << "probe " << i;
  }
}

TEST(PrefilterOnlineScorerTest, BatchClassifyOnOffIdentical) {
  Rng rng(999);
  const SequenceDatabase db = SkewedDb(305);
  const BackgroundModel background = BackgroundModel::FromDatabase(db);
  OnlineScorer scorer(background);
  const std::vector<ModelPtr> models =
      DiverseModels(9, db.alphabet().size(), 4, background, &rng);
  for (const ModelPtr& m : models) scorer.AddModel(m);

  std::vector<OnlineScorer::Score> off, on;
  scorer.BatchClassify(db, 2, &off, /*prefilter=*/false);
  scorer.BatchClassify(db, 2, &on, /*prefilter=*/true);
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].model, on[i].model) << "record " << i;
    EXPECT_EQ(off[i].log_sim, on[i].log_sim) << "record " << i;
    EXPECT_EQ(off[i].current_log_sim, on[i].current_log_sim)
        << "record " << i;
  }
}

}  // namespace
}  // namespace cluseq
