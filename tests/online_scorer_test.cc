#include "core/online_scorer.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "seq/sequence_database.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

Symbols RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

PstOptions Opts(size_t depth) {
  PstOptions o;
  o.max_depth = depth;
  o.significance_threshold = 3;
  o.smoothing_p_min = 1e-4;
  return o;
}

BackgroundModel UniformBackground(size_t alphabet) {
  return BackgroundModel::FromCounts(std::vector<uint64_t>(alphabet, 1));
}

TEST(OnlineScorerTest, EmptyScorerBestScoreIsSentinel) {
  BackgroundModel bg = UniformBackground(4);
  OnlineScorer scorer(bg);
  EXPECT_EQ(scorer.BestScore().model, -1);
  EXPECT_EQ(scorer.num_models(), 0u);
}

// The defining property: streaming one symbol at a time must produce
// exactly the batch DP's log SIM at every prefix.
TEST(OnlineScorerTest, MatchesBatchSimilarityAtEveryPrefix) {
  BackgroundModel bg = UniformBackground(4);
  Pst pst(4, Opts(5));
  pst.InsertSequence(RandomText(300, 4, 1));

  OnlineScorer scorer(bg);
  scorer.AddModel(&pst);
  Symbols stream = RandomText(80, 4, 2);
  for (size_t i = 0; i < stream.size(); ++i) {
    scorer.Push(stream[i]);
    SimilarityResult batch = ComputeSimilarity(
        pst, bg, std::span<const SymbolId>(stream.data(), i + 1));
    EXPECT_NEAR(scorer.ScoreOf(0).log_sim, batch.log_sim, 1e-9)
        << "prefix length " << (i + 1);
  }
  EXPECT_EQ(scorer.position(), stream.size());
}

TEST(OnlineScorerTest, MultipleModelsMatchBatch) {
  BackgroundModel bg = UniformBackground(5);
  Pst a(5, Opts(4)), b(5, Opts(6));
  a.InsertSequence(RandomText(200, 5, 3));
  b.InsertSequence(RandomText(200, 5, 4));
  OnlineScorer scorer(bg);
  scorer.AddModel(&a);
  scorer.AddModel(&b);
  Symbols stream = RandomText(60, 5, 5);
  for (SymbolId s : stream) scorer.Push(s);
  EXPECT_NEAR(scorer.ScoreOf(0).log_sim,
              ComputeSimilarity(a, bg, stream).log_sim, 1e-9);
  EXPECT_NEAR(scorer.ScoreOf(1).log_sim,
              ComputeSimilarity(b, bg, stream).log_sim, 1e-9);
  // BestScore picks the larger of the two.
  double expect_best = std::max(scorer.ScoreOf(0).log_sim,
                                scorer.ScoreOf(1).log_sim);
  EXPECT_DOUBLE_EQ(scorer.BestScore().log_sim, expect_best);
}

TEST(OnlineScorerTest, CurrentScoreDecaysOnDistributionShift) {
  BackgroundModel bg = UniformBackground(4);
  // Model of "0123 0123 ..." pattern.
  Symbols pattern;
  for (int i = 0; i < 100; ++i) pattern.push_back(static_cast<SymbolId>(i % 4));
  Pst pst(4, Opts(5));
  pst.InsertSequence(pattern);

  OnlineScorer scorer(bg);
  scorer.AddModel(&pst);
  // Matching stream: current score climbs.
  for (int i = 0; i < 40; ++i) scorer.Push(static_cast<SymbolId>(i % 4));
  double matched = scorer.ScoreOf(0).current_log_sim;
  EXPECT_GT(matched, 5.0);
  // Shift to constant 0s: the current (decaying) score collapses while the
  // historical max stays.
  double peak = scorer.ScoreOf(0).log_sim;
  for (int i = 0; i < 40; ++i) scorer.Push(0);
  EXPECT_LT(scorer.ScoreOf(0).current_log_sim, matched - 3.0);
  EXPECT_GE(scorer.ScoreOf(0).log_sim, peak);
}

TEST(OnlineScorerTest, ResetClearsStreamButKeepsModels) {
  BackgroundModel bg = UniformBackground(4);
  Pst pst(4, Opts(5));
  pst.InsertSequence(RandomText(100, 4, 6));
  OnlineScorer scorer(bg);
  scorer.AddModel(&pst);
  Symbols stream = RandomText(30, 4, 7);
  for (SymbolId s : stream) scorer.Push(s);
  double first = scorer.ScoreOf(0).log_sim;
  scorer.Reset();
  EXPECT_EQ(scorer.position(), 0u);
  EXPECT_EQ(scorer.num_models(), 1u);
  for (SymbolId s : stream) scorer.Push(s);
  EXPECT_DOUBLE_EQ(scorer.ScoreOf(0).log_sim, first);  // Replays identically.
}

TEST(OnlineScorerTest, BatchClassifyMatchesStreamingAndIsThreadInvariant) {
  BackgroundModel bg = UniformBackground(4);
  Pst a(4, Opts(4)), b(4, Opts(4));
  a.InsertSequence(RandomText(300, 4, 10));
  b.InsertSequence(RandomText(300, 4, 11));
  OnlineScorer scorer(bg);
  scorer.AddModel(&a);
  scorer.AddModel(&b);

  SequenceDatabase db(Alphabet::Synthetic(4));
  Rng rng(12);
  for (size_t i = 0; i < 23; ++i) {
    db.Add(Sequence(RandomText(10 + rng.Uniform(60), 4, 13 + i)));
  }

  std::vector<OnlineScorer::Score> serial;
  scorer.BatchClassify(db, 1, &serial);
  ASSERT_EQ(serial.size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    // Each record scored as its own stream must agree with the batch.
    scorer.Reset();
    for (SymbolId s : db.Symbols(i)) scorer.Push(s);
    OnlineScorer::Score streamed = scorer.BestScore();
    EXPECT_EQ(serial[i].model, streamed.model) << i;
    EXPECT_NEAR(serial[i].log_sim, streamed.log_sim, 1e-9) << i;
  }
  for (size_t threads : {size_t{2}, size_t{7}}) {
    std::vector<OnlineScorer::Score> parallel;
    scorer.BatchClassify(db, threads, &parallel);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].model, serial[i].model) << i;
      EXPECT_EQ(parallel[i].log_sim, serial[i].log_sim) << i;
    }
  }
}

TEST(OnlineScorerTest, BatchClassifyOnEmptyInputsIsWellDefined) {
  BackgroundModel bg = UniformBackground(3);
  OnlineScorer scorer(bg);
  SequenceDatabase db(Alphabet::Synthetic(3));
  std::vector<OnlineScorer::Score> out;
  scorer.BatchClassify(db, 1, &out);  // No models, no records.
  EXPECT_TRUE(out.empty());
  Pst pst(3, Opts(3));
  pst.InsertSequence(RandomText(100, 3, 14));
  scorer.AddModel(&pst);
  db.Add(Sequence(Symbols{}));  // Zero-length record.
  scorer.BatchClassify(db, 2, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].model, 0);
}

TEST(OnlineScorerTest, WindowCoversDeepestModel) {
  // A depth-8 model registered after a depth-2 model must still see its
  // full context.
  BackgroundModel bg = UniformBackground(3);
  Pst shallow(3, Opts(2)), deep(3, Opts(8));
  Symbols text = RandomText(400, 3, 8);
  shallow.InsertSequence(text);
  deep.InsertSequence(text);
  OnlineScorer scorer(bg);
  scorer.AddModel(&shallow);
  scorer.AddModel(&deep);
  Symbols stream = RandomText(50, 3, 9);
  for (SymbolId s : stream) scorer.Push(s);
  EXPECT_NEAR(scorer.ScoreOf(1).log_sim,
              ComputeSimilarity(deep, bg, stream).log_sim, 1e-9);
}

}  // namespace
}  // namespace cluseq
