// .fbank round-trip property tests: a FrozenBank loaded back from its
// serialized form — via the blob API, a buffered file read, or a zero-copy
// mmap — must score bit-for-bit like the assembled original (ScanAll and
// StepAll), across pruned/merged/sub-alphabet models, smoothing-off -inf
// rows, and banks wider than one cache block (k > 64).

#include "pst/bank_serialization.h"

#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <filesystem>

#include "obs/metrics.h"
#include "pst/frozen_bank.h"
#include "pst/frozen_pst.h"
#include "pst/pst.h"
#include "seq/background_model.h"
#include "util/file_io.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;
using ModelPtr = std::shared_ptr<const FrozenPst>;

Symbols RandomText(size_t len, size_t alphabet, Rng* rng) {
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng->Uniform(alphabet));
  return text;
}

BackgroundModel SkewedBackground(size_t alphabet, Rng* rng) {
  std::vector<uint64_t> counts(alphabet);
  for (auto& c : counts) c = 1 + rng->Uniform(500);
  return BackgroundModel::FromCounts(counts);
}

// Varied significance thresholds, a pruned tree, a merged tree, a
// sub-alphabet tree, and (when `smoothing_off`) zero-probability rows that
// freeze to -inf log-ratios.
std::vector<ModelPtr> DiverseModels(size_t k, size_t alphabet, size_t depth,
                                    const BackgroundModel& background,
                                    Rng* rng, bool smoothing_off = false) {
  std::vector<ModelPtr> models;
  models.reserve(k);
  for (size_t m = 0; m < k; ++m) {
    PstOptions options;
    options.max_depth = depth;
    options.significance_threshold = 1 + rng->Uniform(6);
    options.smoothing_p_min = smoothing_off ? 0.0 : 1e-4;
    Pst pst(alphabet, options);
    switch (m % 3) {
      case 0:
        pst.InsertSequence(RandomText(200 + rng->Uniform(300), alphabet, rng));
        break;
      case 1:
        pst.InsertSequence(RandomText(500, alphabet, rng));
        pst.PruneToBudget(pst.ApproxMemoryBytes() / 3);
        break;
      default:
        pst.InsertSequence(
            RandomText(300, std::max<size_t>(2, alphabet / 2), rng));
        break;
    }
    models.push_back(std::make_shared<const FrozenPst>(pst, background));
  }
  return models;
}

void ExpectSameResults(const FrozenBank& want, const FrozenBank& got,
                       const Symbols& query, const char* what) {
  ASSERT_EQ(want.num_models(), got.num_models()) << what;
  EXPECT_EQ(want.alphabet_size(), got.alphabet_size()) << what;
  std::vector<SimilarityResult> expected = want.ScanAll(query);
  std::vector<SimilarityResult> actual = got.ScanAll(query);
  for (size_t m = 0; m < want.num_models(); ++m) {
    EXPECT_EQ(expected[m].log_sim, actual[m].log_sim) << what << " model " << m;
    EXPECT_EQ(expected[m].best_begin, actual[m].best_begin)
        << what << " model " << m;
    EXPECT_EQ(expected[m].best_end, actual[m].best_end)
        << what << " model " << m;
    EXPECT_EQ(want.model_states(m), got.model_states(m))
        << what << " model " << m;
  }
}

class BankSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl = ::testing::TempDir() + "cluseq_fbank_XXXXXX";
    char* made = ::mkdtemp(tmpl.data());
    ASSERT_NE(made, nullptr);
    dir_ = made;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(BankSerializationTest, BlobRoundTripMatchesAssembledBank) {
  Rng rng(20260807);
  // 70 > kMaxBlockModels: the loaded bank must reproduce multi-block scans.
  for (size_t k : {size_t{1}, size_t{3}, size_t{70}}) {
    const size_t alphabet = 4 + rng.Uniform(8);
    BackgroundModel background = SkewedBackground(alphabet, &rng);
    FrozenBank bank(DiverseModels(k, alphabet, 4, background, &rng));
    std::string blob;
    ASSERT_TRUE(SaveFrozenBank(bank, &blob).ok());

    FrozenBank loaded;
    ASSERT_TRUE(LoadFrozenBank(blob, &loaded).ok());
    EXPECT_FALSE(loaded.mapped()) << "blob loads copy into an owned arena";
    EXPECT_FALSE(loaded.has_snapshots());
    ExpectSameResults(bank, loaded, RandomText(300, alphabet, &rng), "blob");
  }
}

TEST_F(BankSerializationTest, SmoothingOffNegInfRowsSurvive) {
  Rng rng(7);
  const size_t alphabet = 6;
  BackgroundModel background = SkewedBackground(alphabet, &rng);
  FrozenBank bank(DiverseModels(5, alphabet, 3, background, &rng,
                                /*smoothing_off=*/true));
  std::string blob;
  ASSERT_TRUE(SaveFrozenBank(bank, &blob).ok());
  FrozenBank loaded;
  ASSERT_TRUE(LoadFrozenBank(blob, &loaded).ok())
      << "-inf rows are legal and must load";
  ExpectSameResults(bank, loaded, RandomText(250, alphabet, &rng), "-inf");
}

TEST_F(BankSerializationTest, FileRoundTripMmapAndBuffered) {
  Rng rng(11);
  const size_t alphabet = 8;
  BackgroundModel background = SkewedBackground(alphabet, &rng);
  FrozenBank bank(DiverseModels(9, alphabet, 4, background, &rng));
  const std::string path = dir_ + "/bank.fbank";
  ASSERT_TRUE(SaveFrozenBankToFile(bank, path).ok());
  const Symbols query = RandomText(400, alphabet, &rng);

  FrozenBank via_mmap;
  FbankLoadInfo info;
  ASSERT_TRUE(LoadFrozenBankFromFile(path, &via_mmap, {}, &info).ok());
  EXPECT_TRUE(info.mmap);
  EXPECT_TRUE(via_mmap.mapped());
  EXPECT_EQ(info.num_models, bank.num_models());
  ExpectSameResults(bank, via_mmap, query, "mmap");

  FrozenBank via_read;
  FbankLoadOptions no_mmap;
  no_mmap.prefer_mmap = false;
  ASSERT_TRUE(LoadFrozenBankFromFile(path, &via_read, no_mmap, &info).ok());
  EXPECT_FALSE(info.mmap);
  EXPECT_FALSE(via_read.mapped());
  ExpectSameResults(bank, via_read, query, "buffered");
}

TEST_F(BankSerializationTest, MappedBankStepAllAndReserialize) {
  Rng rng(13);
  const size_t alphabet = 5;
  BackgroundModel background = SkewedBackground(alphabet, &rng);
  FrozenBank bank(DiverseModels(4, alphabet, 4, background, &rng));
  const std::string path = dir_ + "/bank.fbank";
  ASSERT_TRUE(SaveFrozenBankToFile(bank, path).ok());
  FrozenBank mapped;
  ASSERT_TRUE(LoadFrozenBankFromFile(path, &mapped).ok());
  ASSERT_TRUE(mapped.mapped());

  // Streaming over the mapped arena must match the batch scan.
  const size_t k = mapped.num_models();
  const Symbols query = RandomText(200, alphabet, &rng);
  std::vector<uint32_t> rows(k, 0);
  std::vector<double> y(k), z(k, -std::numeric_limits<double>::infinity());
  std::vector<uint8_t> started(k, 0);
  for (SymbolId s : query) {
    mapped.StepAll(s, rows.data(), y.data(), z.data(), started.data());
  }
  std::vector<SimilarityResult> batch = bank.ScanAll(query);
  for (size_t m = 0; m < k; ++m) EXPECT_EQ(z[m], batch[m].log_sim);

  // A mapped bank is a first-class source: re-serializing it yields a
  // file that loads and scores identically again.
  std::string again;
  ASSERT_TRUE(SaveFrozenBank(mapped, &again).ok());
  FrozenBank reloaded;
  ASSERT_TRUE(LoadFrozenBank(again, &reloaded).ok());
  ExpectSameResults(bank, reloaded, query, "reserialized");
}

TEST_F(BankSerializationTest, EmptyBankIsRejected) {
  FrozenBank empty;
  std::string blob;
  EXPECT_TRUE(SaveFrozenBank(empty, &blob).IsInvalidArgument());
}

TEST_F(BankSerializationTest, CorruptLoadLeavesBankUntouchedAndCounts) {
  Rng rng(17);
  const size_t alphabet = 4;
  BackgroundModel background = SkewedBackground(alphabet, &rng);
  FrozenBank bank(DiverseModels(2, alphabet, 3, background, &rng));
  std::string blob;
  ASSERT_TRUE(SaveFrozenBank(bank, &blob).ok());

  FrozenBank loaded;
  ASSERT_TRUE(LoadFrozenBank(blob, &loaded).ok());
  const Symbols query = RandomText(120, alphabet, &rng);
  std::vector<SimilarityResult> before = loaded.ScanAll(query);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  const uint64_t detected_before =
      registry.Snapshot().CounterValue("persistence.corruption_detected");
  std::string corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x01;
  EXPECT_TRUE(LoadFrozenBank(corrupt, &loaded).IsCorruption());
  EXPECT_GT(registry.Snapshot().CounterValue("persistence.corruption_detected"),
            detected_before);

  // The failed load must not have disturbed the previously loaded bank.
  std::vector<SimilarityResult> after = loaded.ScanAll(query);
  for (size_t m = 0; m < loaded.num_models(); ++m) {
    EXPECT_EQ(before[m].log_sim, after[m].log_sim);
  }
}

TEST_F(BankSerializationTest, PersistenceMetricsRecorded) {
  Rng rng(19);
  const size_t alphabet = 4;
  BackgroundModel background = SkewedBackground(alphabet, &rng);
  FrozenBank bank(DiverseModels(2, alphabet, 3, background, &rng));
  const std::string path = dir_ + "/bank.fbank";

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::MetricsSnapshot before = registry.Snapshot();
  ASSERT_TRUE(SaveFrozenBankToFile(bank, path).ok());
  FrozenBank loaded;
  ASSERT_TRUE(LoadFrozenBankFromFile(path, &loaded).ok());
  obs::MetricsSnapshot mid = registry.Snapshot();
  EXPECT_GT(mid.CounterValue("persistence.bytes_written"),
            before.CounterValue("persistence.bytes_written"));
  EXPECT_GT(mid.CounterValue("persistence.bytes_read"),
            before.CounterValue("persistence.bytes_read"));
  EXPECT_GT(mid.CounterValue("persistence.loads_mmap"),
            before.CounterValue("persistence.loads_mmap"));
  EXPECT_EQ(mid.GaugeValue("persistence.last_load_mmap"), 1.0);

  FbankLoadOptions no_mmap;
  no_mmap.prefer_mmap = false;
  ASSERT_TRUE(LoadFrozenBankFromFile(path, &loaded, no_mmap).ok());
  obs::MetricsSnapshot after = registry.Snapshot();
  EXPECT_GT(after.CounterValue("persistence.loads_buffered"),
            mid.CounterValue("persistence.loads_buffered"));
  EXPECT_EQ(after.GaugeValue("persistence.last_load_mmap"), 0.0);
}

TEST_F(BankSerializationTest, AssembleAfterMappedLoadRebuildsOwnedArena) {
  Rng rng(23);
  const size_t alphabet = 4;
  BackgroundModel background = SkewedBackground(alphabet, &rng);
  std::vector<ModelPtr> models = DiverseModels(3, alphabet, 3, background,
                                               &rng);
  FrozenBank bank(models);
  const std::string path = dir_ + "/bank.fbank";
  ASSERT_TRUE(SaveFrozenBankToFile(bank, path).ok());
  FrozenBank mapped;
  ASSERT_TRUE(LoadFrozenBankFromFile(path, &mapped).ok());
  ASSERT_TRUE(mapped.mapped());

  // Re-targeting a mapped bank at live snapshots must drop the mapping
  // (nothing can be "reused in place" from a read-only file view).
  FrozenBank::AssembleStats stats = mapped.Assemble(models);
  EXPECT_FALSE(mapped.mapped());
  EXPECT_TRUE(mapped.has_snapshots());
  EXPECT_EQ(stats.models_reused, 0u);
  ExpectSameResults(bank, mapped, RandomText(150, alphabet, &rng),
                    "reassembled");
}

}  // namespace
}  // namespace cluseq
