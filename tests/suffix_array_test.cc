#include "seq/suffix_array.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pst/pst.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

Symbols Enc(const std::string& s) {
  Symbols out;
  for (char c : s) out.push_back(static_cast<SymbolId>(c - 'a'));
  return out;
}

size_t BruteCount(const Symbols& text, const Symbols& seg) {
  if (seg.empty()) return text.size() + 1;
  size_t count = 0;
  for (size_t i = 0; i + seg.size() <= text.size(); ++i) {
    if (std::equal(seg.begin(), seg.end(), text.begin() + i)) ++count;
  }
  return count;
}

TEST(SuffixArrayTest, EmptyText) {
  SuffixArray sa(Symbols{});
  EXPECT_EQ(sa.size(), 0u);
  EXPECT_EQ(sa.CountOccurrences(Enc("a")), 0u);
  EXPECT_EQ(sa.LongestRepeat().first, 0u);
}

TEST(SuffixArrayTest, SuffixesAreSorted) {
  Symbols text = Enc("banana");
  SuffixArray sa(text);
  ASSERT_EQ(sa.size(), 6u);
  for (size_t i = 1; i < sa.size(); ++i) {
    Symbols a(text.begin() + sa.suffix(i - 1), text.end());
    Symbols b(text.begin() + sa.suffix(i), text.end());
    EXPECT_TRUE(std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                             b.end()))
        << "position " << i;
  }
}

TEST(SuffixArrayTest, BananaCounts) {
  SuffixArray sa(Enc("banana"));
  EXPECT_EQ(sa.CountOccurrences(Enc("a")), 3u);
  EXPECT_EQ(sa.CountOccurrences(Enc("an")), 2u);
  EXPECT_EQ(sa.CountOccurrences(Enc("ana")), 2u);
  EXPECT_EQ(sa.CountOccurrences(Enc("banana")), 1u);
  EXPECT_EQ(sa.CountOccurrences(Enc("nab")), 0u);
  EXPECT_EQ(sa.CountOccurrences(Enc("x")), 0u);
}

TEST(SuffixArrayTest, LocateBanana) {
  SuffixArray sa(Enc("banana"));
  EXPECT_EQ(sa.Locate(Enc("ana")), (std::vector<size_t>{1, 3}));
  EXPECT_EQ(sa.Locate(Enc("b")), (std::vector<size_t>{0}));
  EXPECT_TRUE(sa.Locate(Enc("q")).empty());
}

TEST(SuffixArrayTest, LongestRepeatBanana) {
  SuffixArray sa(Enc("banana"));
  auto [len, pos] = sa.LongestRepeat();
  EXPECT_EQ(len, 3u);  // "ana".
  // The reported position must actually start an occurrence of a repeated
  // length-3 segment.
  Symbols text = Enc("banana");
  Symbols seg(text.begin() + pos, text.begin() + pos + len);
  EXPECT_GE(BruteCount(text, seg), 2u);
}

TEST(SuffixArrayTest, EmptySegmentConvention) {
  SuffixArray sa(Enc("abc"));
  EXPECT_EQ(sa.CountOccurrences(Symbols{}), 4u);
  EXPECT_EQ(sa.Locate(Symbols{}).size(), 4u);
}

// Property sweep: counts match brute force on random texts.
struct SaParam {
  size_t alphabet;
  size_t length;
  uint64_t seed;
};
class SuffixArraySweep : public ::testing::TestWithParam<SaParam> {};

TEST_P(SuffixArraySweep, CountsMatchBruteForce) {
  const SaParam p = GetParam();
  Rng rng(p.seed);
  Symbols text(p.length);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(p.alphabet));
  SuffixArray sa(text);
  for (int trial = 0; trial < 100; ++trial) {
    size_t len = 1 + rng.Uniform(6);
    Symbols seg(len);
    // Half the queries are substrings drawn from the text (guaranteed
    // hits), half random.
    if (trial % 2 == 0 && text.size() > len) {
      size_t pos = rng.Uniform(text.size() - len);
      std::copy(text.begin() + pos, text.begin() + pos + len, seg.begin());
    } else {
      for (auto& s : seg) s = static_cast<SymbolId>(rng.Uniform(p.alphabet));
    }
    EXPECT_EQ(sa.CountOccurrences(seg), BruteCount(text, seg));
    auto located = sa.Locate(seg);
    EXPECT_EQ(located.size(), BruteCount(text, seg));
    for (size_t pos : located) {
      ASSERT_LE(pos + seg.size(), text.size());
      EXPECT_TRUE(std::equal(seg.begin(), seg.end(), text.begin() + pos));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuffixArraySweep,
    ::testing::Values(SaParam{2, 50, 1}, SaParam{2, 300, 2},
                      SaParam{4, 200, 3}, SaParam{8, 500, 4},
                      SaParam{26, 400, 5}, SaParam{3, 1000, 6}));

// The cross-validation the header promises: every PST node's count equals
// the suffix-array count of occurrences-followed-by-a-symbol, i.e. the
// occurrences of the label that do not end the text.
TEST(SuffixArrayTest, CrossValidatesPstCounts) {
  Rng rng(9);
  Symbols text(400);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(4));
  SuffixArray sa(text);

  PstOptions options;
  options.max_depth = 5;
  options.significance_threshold = 1;
  options.smoothing_p_min = 0.0;
  Pst pst(4, options);
  pst.InsertSequence(text);

  // Walk every PST node and compare to exact counts.
  std::vector<PstNodeId> stack = {kPstRoot};
  size_t checked = 0;
  while (!stack.empty()) {
    PstNodeId id = stack.back();
    stack.pop_back();
    for (const auto& [sym, child] : pst.Children(id)) stack.push_back(child);
    if (id == kPstRoot) continue;
    Symbols label = pst.NodeLabel(id);
    size_t occurrences = sa.CountOccurrences(label);
    // The PST counts occurrences followed by a next symbol; an occurrence
    // ending exactly at the text end is not counted.
    bool label_at_end =
        label.size() <= text.size() &&
        std::equal(label.rbegin(), label.rend(), text.rbegin());
    EXPECT_EQ(pst.NodeCount(id), occurrences - (label_at_end ? 1 : 0));
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace cluseq
