// Property tests: FrozenBank::ScanAll must match per-cluster FrozenPst
// scoring bit-for-bit — identical log SIM doubles and identical maximizing
// segments for every model — across randomized alphabets, depths, model
// counts (including > kMaxBlockModels so multiple blocks and the SIMD
// remainder loop run), pruned and merged trees, and smoothing-off -inf
// rows; with both the scalar and (when available) AVX2 kernels. Plus the
// incremental-Assemble contract: untouched models' arena rows are reused
// byte-identical, and streaming StepAll state survives reassembly.

#include "pst/frozen_bank.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "seq/background_model.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;
using ModelPtr = std::shared_ptr<const FrozenPst>;

Symbols RandomText(size_t len, size_t alphabet, Rng* rng) {
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng->Uniform(alphabet));
  return text;
}

BackgroundModel SkewedBackground(size_t alphabet, Rng* rng) {
  std::vector<uint64_t> counts(alphabet);
  for (auto& c : counts) c = 1 + rng->Uniform(500);
  return BackgroundModel::FromCounts(counts);
}

ModelPtr TrainModel(size_t alphabet, const PstOptions& options,
                    const BackgroundModel& background, size_t train_len,
                    Rng* rng, bool prune = false) {
  Pst pst(alphabet, options);
  pst.InsertSequence(RandomText(train_len, alphabet, rng));
  if (prune) pst.PruneToBudget(pst.ApproxMemoryBytes() / 3);
  return std::make_shared<const FrozenPst>(pst, background);
}

// A diverse bank: varied significance thresholds, a pruned tree (closure
// states), a merged tree, and one trained on a sub-alphabet.
std::vector<ModelPtr> DiverseModels(size_t k, size_t alphabet, size_t depth,
                                    const BackgroundModel& background,
                                    Rng* rng) {
  std::vector<ModelPtr> models;
  models.reserve(k);
  for (size_t m = 0; m < k; ++m) {
    PstOptions options;
    options.max_depth = depth;
    options.significance_threshold = 1 + rng->Uniform(6);
    options.smoothing_p_min = 1e-4;
    switch (m % 4) {
      case 0:
        models.push_back(TrainModel(alphabet, options, background,
                                    200 + rng->Uniform(300), rng));
        break;
      case 1:  // Pruned: closure states in the automaton.
        models.push_back(TrainModel(alphabet, options, background, 500, rng,
                                    /*prune=*/true));
        break;
      case 2: {  // Merged counts from two trees.
        Pst a(alphabet, options), b(alphabet, options);
        a.InsertSequence(RandomText(250, alphabet, rng));
        b.InsertSequence(RandomText(250, alphabet, rng));
        EXPECT_TRUE(a.MergeFrom(b).ok());
        models.push_back(std::make_shared<const FrozenPst>(a, background));
        break;
      }
      default: {  // Sub-alphabet training: unseen symbols at query time.
        Pst pst(alphabet, options);
        pst.InsertSequence(
            RandomText(300, std::max<size_t>(2, alphabet / 2), rng));
        models.push_back(std::make_shared<const FrozenPst>(pst, background));
        break;
      }
    }
  }
  return models;
}

void ExpectScanMatchesSerial(const std::vector<ModelPtr>& models,
                             const Symbols& query) {
  FrozenBank bank(models);
  ASSERT_EQ(bank.num_models(), models.size());
  std::span<const SymbolId> span(query);

  bank.set_force_scalar(true);
  std::vector<SimilarityResult> scalar = bank.ScanAll(span);
  bank.set_force_scalar(false);
  std::vector<SimilarityResult> dispatched = bank.ScanAll(span);

  for (size_t m = 0; m < models.size(); ++m) {
    const SimilarityResult serial = ComputeSimilarity(*models[m], span);
    // Bit-for-bit: same double ops in the same order (== handles -inf).
    EXPECT_EQ(serial.log_sim, scalar[m].log_sim) << "model " << m;
    EXPECT_EQ(serial.best_begin, scalar[m].best_begin) << "model " << m;
    EXPECT_EQ(serial.best_end, scalar[m].best_end) << "model " << m;
    EXPECT_EQ(serial.log_sim, dispatched[m].log_sim) << "model " << m;
    EXPECT_EQ(serial.best_begin, dispatched[m].best_begin) << "model " << m;
    EXPECT_EQ(serial.best_end, dispatched[m].best_end) << "model " << m;
  }
}

TEST(FrozenBankEquivalenceTest, RandomizedModelsMatchSerialScoring) {
  Rng rng(20240807);
  const size_t alphabets[] = {4, 8, 20};
  const size_t depths[] = {3, 6};
  // 70 > kMaxBlockModels exercises multiple cache blocks; 70 % 4 != 0
  // exercises the AVX2 remainder loop.
  const size_t ks[] = {1, 3, 17, 70};
  for (size_t alphabet : alphabets) {
    for (size_t depth : depths) {
      BackgroundModel background = SkewedBackground(alphabet, &rng);
      for (size_t k : ks) {
        if (k > 17 && alphabet > 8) continue;  // Keep the suite quick.
        std::vector<ModelPtr> models =
            DiverseModels(k, alphabet, depth, background, &rng);
        ExpectScanMatchesSerial(models,
                                RandomText(150 + rng.Uniform(200),
                                           alphabet, &rng));
      }
    }
  }
}

TEST(FrozenBankEquivalenceTest, SmoothingOffNegInfRows) {
  Rng rng(77);
  const size_t alphabet = 6;
  BackgroundModel background = SkewedBackground(alphabet, &rng);
  std::vector<ModelPtr> models;
  for (size_t m = 0; m < 7; ++m) {
    PstOptions options;
    options.max_depth = 4;
    options.significance_threshold = 2;
    options.smoothing_p_min = 0.0;  // Unseen symbols have probability zero.
    Pst pst(alphabet, options);
    // Restricted sub-alphabet so queries hit genuinely unseen symbols and
    // the -inf arena entries flow through ScanAll end to end.
    pst.InsertSequence(RandomText(300, 2 + m % 3, &rng));
    models.push_back(std::make_shared<const FrozenPst>(pst, background));
  }
  ExpectScanMatchesSerial(models, RandomText(120, alphabet, &rng));
}

TEST(FrozenBankEquivalenceTest, EmptyQueryYieldsNegInfForEveryModel) {
  Rng rng(3);
  BackgroundModel background = SkewedBackground(5, &rng);
  PstOptions options;
  options.max_depth = 3;
  std::vector<ModelPtr> models = {
      TrainModel(5, options, background, 100, &rng),
      TrainModel(5, options, background, 100, &rng)};
  FrozenBank bank(models);
  std::vector<SimilarityResult> results = bank.ScanAll({});
  ASSERT_EQ(results.size(), 2u);
  for (const SimilarityResult& r : results) {
    EXPECT_EQ(r.log_sim, -std::numeric_limits<double>::infinity());
    EXPECT_EQ(r.best_begin, 0u);
    EXPECT_EQ(r.best_end, 0u);
  }
}

TEST(FrozenBankEquivalenceTest, IncrementalAssembleReusesUntouchedRows) {
  Rng rng(41);
  const size_t alphabet = 8;
  BackgroundModel background = SkewedBackground(alphabet, &rng);
  PstOptions options;
  options.max_depth = 4;
  std::vector<ModelPtr> models;
  for (size_t m = 0; m < 5; ++m) {
    models.push_back(TrainModel(alphabet, options, background, 200, &rng));
  }
  FrozenBank bank(models);

  // Snapshot model 1's packed rows, then swap only the *last* model: every
  // earlier slot keeps its base offset, so the bank must reuse them all.
  std::vector<FrozenBank::Entry> rows_before(bank.Rows(1).begin(),
                                             bank.Rows(1).end());
  models.back() = TrainModel(alphabet, options, background, 333, &rng);
  FrozenBank::AssembleStats stats = bank.Assemble(models);
  EXPECT_EQ(stats.models_written, 1u);
  EXPECT_EQ(stats.models_reused, 4u);
  ASSERT_EQ(bank.Rows(1).size(), rows_before.size());
  EXPECT_EQ(std::memcmp(bank.Rows(1).data(), rows_before.data(),
                        rows_before.size() * sizeof(FrozenBank::Entry)),
            0);

  // Appending a model also leaves every existing slot in place.
  models.push_back(TrainModel(alphabet, options, background, 150, &rng));
  stats = bank.Assemble(models);
  EXPECT_EQ(stats.models_written, 1u);
  EXPECT_EQ(stats.models_reused, 5u);

  // Replacing the *first* model with a differently-sized one shifts every
  // later base offset: nothing can be reused.
  PstOptions shallow = options;
  shallow.max_depth = 1;
  models.front() = TrainModel(alphabet, shallow, background, 450, &rng);
  ASSERT_NE(models.front()->num_states(), bank.model(0).num_states());
  stats = bank.Assemble(models);
  EXPECT_EQ(stats.models_written, models.size());
  EXPECT_EQ(stats.models_reused, 0u);
  // Regardless of offsets, the scan must still match serial scoring.
  ExpectScanMatchesSerial(models, RandomText(100, alphabet, &rng));
}

TEST(FrozenBankEquivalenceTest, StepAllMatchesScanAllAtEveryPrefix) {
  Rng rng(11);
  const size_t alphabet = 6;
  BackgroundModel background = SkewedBackground(alphabet, &rng);
  PstOptions options;
  options.max_depth = 5;
  std::vector<ModelPtr> models;
  for (size_t m = 0; m < 6; ++m) {
    models.push_back(TrainModel(alphabet, options, background, 250, &rng));
  }
  FrozenBank bank(models);
  const Symbols stream = RandomText(140, alphabet, &rng);

  std::vector<uint32_t> rows(models.size(), 0);
  std::vector<double> y(models.size(), 0.0);
  std::vector<double> z(models.size(),
                        -std::numeric_limits<double>::infinity());
  std::vector<uint8_t> started(models.size(), 0);
  for (size_t i = 0; i < stream.size(); ++i) {
    bank.StepAll(stream[i], rows.data(), y.data(), z.data(), started.data());
    std::vector<SimilarityResult> batch = bank.ScanAll(
        std::span<const SymbolId>(stream).subspan(0, i + 1));
    for (size_t m = 0; m < models.size(); ++m) {
      ASSERT_EQ(z[m], batch[m].log_sim) << "prefix " << i << " model " << m;
    }
    if (i == stream.size() / 2) {
      // Mid-stream reassembly with an appended model: the live rows are
      // model-local, so the original models' streaming state survives.
      models.push_back(
          TrainModel(alphabet, options, background, 200, &rng));
      FrozenBank::AssembleStats stats = bank.Assemble(models);
      EXPECT_EQ(stats.models_written, 1u);
      rows.push_back(0);
      y.push_back(0.0);
      z.push_back(-std::numeric_limits<double>::infinity());
      started.push_back(0);
      // The appended model has missed the first half of the stream, so its
      // lane is only compared from here on against a fresh serial DP.
      FrozenPst::State st = FrozenPst::kRootState;
      double my = 0.0, mz = -std::numeric_limits<double>::infinity();
      bool mstarted = false;
      for (size_t j = i + 1; j < stream.size(); ++j) {
        const double x = models.back()->LogRatio(st, stream[j]);
        st = models.back()->Step(st, stream[j]);
        if (!mstarted || my + x < x) {
          my = x;
        } else {
          my += x;
        }
        mstarted = true;
        mz = std::max(mz, my);
      }
      // Checked after the loop below has pushed the rest of the stream.
      const size_t lane = models.size() - 1;
      for (size_t j = i + 1; j < stream.size(); ++j) {
        bank.StepAll(stream[j], rows.data(), y.data(), z.data(),
                     started.data());
      }
      EXPECT_EQ(z[lane], mz);
      // And the original lanes agree with a full-stream banked scan.
      std::vector<SimilarityResult> full =
          bank.ScanAll(std::span<const SymbolId>(stream));
      for (size_t m = 0; m < lane; ++m) {
        EXPECT_EQ(z[m], full[m].log_sim) << "model " << m;
      }
      return;
    }
  }
}

TEST(FrozenBankEquivalenceDeathTest, MixedAlphabetsAreFatal) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Rng rng(13);
  BackgroundModel bg4 = SkewedBackground(4, &rng);
  BackgroundModel bg6 = SkewedBackground(6, &rng);
  PstOptions options;
  options.max_depth = 3;
  std::vector<ModelPtr> models = {TrainModel(4, options, bg4, 80, &rng),
                                  TrainModel(6, options, bg6, 80, &rng)};
  EXPECT_DEATH(FrozenBank bank(models), "share one alphabet_size");
}

TEST(FrozenBankEquivalenceTest, ApproxMemoryBytesCoversArenas) {
  Rng rng(29);
  BackgroundModel background = SkewedBackground(8, &rng);
  PstOptions options;
  options.max_depth = 4;
  std::vector<ModelPtr> models = {
      TrainModel(8, options, background, 300, &rng),
      TrainModel(8, options, background, 300, &rng)};
  FrozenBank bank(models);
  size_t entries = 0;
  for (const ModelPtr& m : models) {
    entries += m->num_states() * m->alphabet_size();
  }
  EXPECT_GE(bank.ApproxMemoryBytes(),
            entries * (sizeof(double) + sizeof(uint32_t)));
}

}  // namespace
}  // namespace cluseq
