#include "core/cluseq.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "synth/dataset.h"

namespace cluseq {
namespace {

SequenceDatabase PlantedDb(size_t clusters, size_t per_cluster,
                           double outliers, uint64_t seed) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = clusters;
  opts.sequences_per_cluster = per_cluster;
  opts.alphabet_size = 8;
  opts.avg_length = 80;
  opts.outlier_fraction = outliers;
  opts.spread = 0.25;
  opts.seed = seed;
  return MakeSyntheticDataset(opts);
}

CluseqOptions FastOptions() {
  CluseqOptions o;
  o.initial_clusters = 2;
  o.similarity_threshold = 1.05;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 12;
  o.pst.max_depth = 5;
  o.pst.smoothing_p_min = 1e-4;
  o.rng_seed = 7;
  return o;
}

TEST(CluseqOptionsTest, ValidateCatchesBadValues) {
  CluseqOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.initial_clusters = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CluseqOptions();
  o.similarity_threshold = 0.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CluseqOptions();
  o.significance_threshold = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CluseqOptions();
  o.sample_multiplier = 0.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CluseqOptions();
  o.max_iterations = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CluseqOptions();
  o.histogram_buckets = 2;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CluseqOptions();
  o.pst.max_depth = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(CluseqTest, EmptyDatabase) {
  SequenceDatabase db;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &result).ok());
  EXPECT_EQ(result.num_clusters(), 0u);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(CluseqTest, InvalidOptionsRejected) {
  SequenceDatabase db = PlantedDb(2, 5, 0.0, 1);
  CluseqOptions o = FastOptions();
  o.similarity_threshold = 0.0;
  ClusteringResult result;
  EXPECT_TRUE(RunCluseq(db, o, &result).IsInvalidArgument());
}

TEST(CluseqTest, RecoversTwoPlantedClusters) {
  SequenceDatabase db = PlantedDb(2, 20, 0.0, 11);
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &result).ok());
  ASSERT_GE(result.num_clusters(), 1u);
  EvaluationSummary eval = Evaluate(db, result.best_cluster);
  EXPECT_GT(eval.correct_fraction, 0.8)
      << "clusters=" << result.num_clusters()
      << " unclustered=" << result.num_unclustered;
}

TEST(CluseqTest, RecoversFourPlantedClusters) {
  SequenceDatabase db = PlantedDb(4, 20, 0.0, 13);
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &result).ok());
  EvaluationSummary eval = Evaluate(db, result.best_cluster);
  EXPECT_GT(eval.correct_fraction, 0.7);
  EXPECT_GE(result.num_clusters(), 2u);
}

TEST(CluseqTest, ResultShapesAreConsistent) {
  SequenceDatabase db = PlantedDb(3, 12, 0.1, 17);
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &result).ok());
  ASSERT_EQ(result.best_cluster.size(), db.size());
  ASSERT_EQ(result.best_log_sim.size(), db.size());
  size_t unclustered = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    int32_t c = result.best_cluster[i];
    if (c < 0) {
      ++unclustered;
    } else {
      ASSERT_LT(static_cast<size_t>(c), result.num_clusters());
      // A sequence's best cluster must actually contain it.
      const auto& members = result.clusters[static_cast<size_t>(c)];
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), i));
    }
  }
  EXPECT_EQ(unclustered, result.num_unclustered);
  // Members are sorted and in range.
  for (const auto& members : result.clusters) {
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (size_t m : members) EXPECT_LT(m, db.size());
  }
  EXPECT_GE(result.iterations, 1u);
  EXPECT_LE(result.iterations, FastOptions().max_iterations);
  EXPECT_EQ(result.iteration_stats.size(), result.iterations);
}

TEST(CluseqTest, OutliersMostlyUnclustered) {
  SequenceDatabase db = PlantedDb(2, 20, 0.2, 19);
  CluseqOptions o = FastOptions();
  o.similarity_threshold = 1.5;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  size_t outliers_total = 0, outliers_unclustered = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    if (db[i].label() == kNoLabel) {
      ++outliers_total;
      if (result.best_cluster[i] < 0) ++outliers_unclustered;
    }
  }
  ASSERT_GT(outliers_total, 0u);
  EXPECT_GT(static_cast<double>(outliers_unclustered) /
                static_cast<double>(outliers_total),
            0.5);
}

TEST(CluseqTest, ClusterCountAdaptsFromDifferentInitialK) {
  SequenceDatabase db = PlantedDb(4, 15, 0.0, 23);
  std::vector<size_t> finals;
  for (size_t k : {1u, 4u, 10u}) {
    CluseqOptions o = FastOptions();
    o.initial_clusters = k;
    o.rng_seed = 31;
    ClusteringResult result;
    ASSERT_TRUE(RunCluseq(db, o, &result).ok());
    finals.push_back(result.num_clusters());
  }
  // All settings land in a sane band around the planted 4 clusters.
  for (size_t f : finals) {
    EXPECT_GE(f, 2u);
    EXPECT_LE(f, 8u);
  }
}

TEST(CluseqTest, ThresholdAdjustmentMovesT) {
  SequenceDatabase db = PlantedDb(3, 15, 0.05, 29);
  CluseqOptions o = FastOptions();
  o.similarity_threshold = 1.0005;  // Paper's deliberately-wrong initial t.
  o.adjust_threshold = true;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  // Final t respects the floor t >= 1 (log t >= 0) and typically moved.
  EXPECT_GE(result.final_log_threshold, 0.0);
  EXPECT_GE(result.final_threshold(), 1.0);
}

TEST(CluseqTest, ThresholdFixedWhenAdjustmentDisabled) {
  SequenceDatabase db = PlantedDb(2, 12, 0.0, 31);
  CluseqOptions o = FastOptions();
  o.adjust_threshold = false;
  o.auto_initial_threshold = false;
  o.similarity_threshold = 1.3;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  EXPECT_NEAR(result.final_log_threshold, std::log(1.3), 1e-12);
}

TEST(CluseqTest, DeterministicGivenSeed) {
  SequenceDatabase db = PlantedDb(3, 12, 0.05, 37);
  CluseqOptions o = FastOptions();
  ClusteringResult r1, r2;
  ASSERT_TRUE(RunCluseq(db, o, &r1).ok());
  ASSERT_TRUE(RunCluseq(db, o, &r2).ok());
  EXPECT_EQ(r1.clusters, r2.clusters);
  EXPECT_EQ(r1.best_cluster, r2.best_cluster);
  EXPECT_EQ(r1.iterations, r2.iterations);
}

class VisitOrderSweep : public ::testing::TestWithParam<VisitOrder> {};

TEST_P(VisitOrderSweep, ProducesValidClustering) {
  SequenceDatabase db = PlantedDb(3, 15, 0.0, 41);
  CluseqOptions o = FastOptions();
  o.visit_order = GetParam();
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  EvaluationSummary eval = Evaluate(db, result.best_cluster);
  // All orders must work; the paper found cluster-based order weaker, which
  // the order-sensitivity bench quantifies — here we only require sanity.
  EXPECT_GT(eval.correct_fraction, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Orders, VisitOrderSweep,
                         ::testing::Values(VisitOrder::kFixed,
                                           VisitOrder::kRandom,
                                           VisitOrder::kClusterBased));

TEST(CluseqTest, MultithreadedMatchesSingleThreaded) {
  SequenceDatabase db = PlantedDb(3, 12, 0.0, 43);
  CluseqOptions o = FastOptions();
  o.num_threads = 1;
  ClusteringResult r1;
  ASSERT_TRUE(RunCluseq(db, o, &r1).ok());
  o.num_threads = 4;
  ClusteringResult r2;
  ASSERT_TRUE(RunCluseq(db, o, &r2).ok());
  EXPECT_EQ(r1.clusters, r2.clusters);
}

TEST(CluseqTest, ClassifyAgreesWithClustering) {
  SequenceDatabase db = PlantedDb(2, 15, 0.0, 47);
  CluseqClusterer clusterer(db, FastOptions());
  ClusteringResult result;
  ASSERT_TRUE(clusterer.Run(&result).ok());
  ASSERT_GE(result.num_clusters(), 1u);
  // Classifying a member sequence should find a cluster with at least the
  // similarity recorded for it.
  size_t checked = 0;
  for (size_t i = 0; i < db.size() && checked < 10; ++i) {
    if (result.best_cluster[i] < 0) continue;
    double log_sim = 0.0;
    int32_t c = clusterer.Classify(db[i], &log_sim);
    EXPECT_GE(c, 0);
    EXPECT_TRUE(std::isfinite(log_sim));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(CluseqTest, ClassifyRejectsGarbage) {
  SequenceDatabase db = PlantedDb(2, 20, 0.0, 53);
  CluseqOptions o = FastOptions();
  o.similarity_threshold = 2.0;
  o.adjust_threshold = false;
  o.auto_initial_threshold = false;
  CluseqClusterer clusterer(db, o);
  ClusteringResult result;
  ASSERT_TRUE(clusterer.Run(&result).ok());
  // A sequence over a symbol the training data barely uses.
  Sequence garbage(std::vector<SymbolId>(40, 7));
  double log_sim = 0.0;
  int32_t c = clusterer.Classify(garbage, &log_sim);
  // Either rejected outright or scored very low.
  if (c >= 0) {
    EXPECT_LT(log_sim, 5.0);
  } else {
    SUCCEED();
  }
}

TEST(CluseqTest, IterationStatsMonotoneTimestamps) {
  SequenceDatabase db = PlantedDb(2, 10, 0.0, 59);
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &result).ok());
  for (size_t i = 0; i < result.iteration_stats.size(); ++i) {
    const IterationStats& s = result.iteration_stats[i];
    EXPECT_EQ(s.iteration, i + 1);
    EXPECT_GE(s.seconds, 0.0);
    EXPECT_GE(s.log_threshold, 0.0);
  }
}

TEST(CluseqTest, OverlappingClustersAllowed) {
  // Nothing forbids a sequence from appearing in several clusters; verify
  // the membership lists simply contain it in each.
  SequenceDatabase db = PlantedDb(2, 15, 0.0, 61);
  CluseqOptions o = FastOptions();
  o.similarity_threshold = 1.0;  // Very permissive: overlap is likely.
  o.adjust_threshold = false;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  size_t total_memberships = 0;
  for (const auto& members : result.clusters) {
    total_memberships += members.size();
  }
  // With a permissive threshold memberships can exceed N (overlap) but the
  // structures stay consistent.
  EXPECT_GE(total_memberships, db.size() - result.num_unclustered);
}

TEST(CluseqTest, SingleSequenceDatabase) {
  SequenceDatabase db(Alphabet::Synthetic(4));
  Rng rng(3);
  std::vector<SymbolId> text(60);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(4));
  db.Add(Sequence(std::move(text), "only", 0));
  CluseqOptions o = FastOptions();
  o.min_unique_members = 1;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  // One sequence: either one singleton cluster or an outlier; both valid.
  EXPECT_LE(result.num_clusters(), 1u);
}

TEST(CluseqTest, AllIdenticalSequencesFormOneCluster) {
  SequenceDatabase db(Alphabet::Synthetic(4));
  std::vector<SymbolId> text;
  for (int i = 0; i < 30; ++i) text.push_back(static_cast<SymbolId>(i % 4));
  for (int i = 0; i < 12; ++i) {
    db.Add(Sequence(text, "dup" + std::to_string(i), 0));
  }
  CluseqOptions o = FastOptions();
  o.min_unique_members = 2;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  EXPECT_EQ(result.num_clusters(), 1u);
  EXPECT_EQ(result.num_unclustered, 0u);
}

}  // namespace
}  // namespace cluseq
