#include "obs/perf_counters.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#endif

namespace cluseq {
namespace obs {
namespace {

// Burns enough user CPU that a task-clock or cycle counter must advance.
uint64_t BurnCpu(uint64_t spins) {
  volatile uint64_t acc = 1;
  for (uint64_t i = 0; i < spins; ++i) acc = acc * 6364136223846793005ULL + 1;
  return acc;
}

TEST(PerfCountersTest, UnavailableSetIsSilentNoOp) {
  PerfCounterSet set{PerfCounterSet::UnavailableTag{}};
  EXPECT_FALSE(set.available());
  EXPECT_EQ(set.num_events(), 0u);
  PerfReading reading;
  EXPECT_FALSE(set.Read(&reading));
}

// The degraded path must still be *correct*: rusage deltas recorded, the
// phase present in the collector, and zero counter keys — absence, not
// zeros, is the unavailability signature consumers rely on.
TEST(PerfCountersTest, UnavailableCollectorKeepsRusageDropsCounters) {
  PerfCounterSet unavailable{PerfCounterSet::UnavailableTag{}};
  PhasePerfCollector collector(&unavailable);
  {
    PerfScope scope = collector.Sample("unavailable_phase");
    BurnCpu(1000000);
  }
  std::vector<PhasePerf> phases = collector.TakePhases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].phase, "unavailable_phase");
  EXPECT_TRUE(phases[0].counters.empty());
  EXPECT_GT(phases[0].maxrss_kb, 0u);
  EXPECT_GE(phases[0].utime_seconds, 0.0);
  EXPECT_GE(phases[0].stime_seconds, 0.0);

  // No perf.<phase>.* counter may have been registered for this phase.
  const MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  for (const auto& row : snapshot.counters) {
    EXPECT_EQ(row.name.find("perf.unavailable_phase."), std::string::npos)
        << row.name;
  }
  // The rusage gauges are always maintained.
  EXPECT_GT(snapshot.GaugeValue("rusage.maxrss_kb"), 0.0);
}

TEST(PerfCountersTest, TakePhasesDrainsCollector) {
  PerfCounterSet unavailable{PerfCounterSet::UnavailableTag{}};
  PhasePerfCollector collector(&unavailable);
  { PerfScope scope = collector.Sample("a"); }
  { PerfScope scope = collector.Sample("b"); }
  std::vector<PhasePerf> phases = collector.TakePhases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].phase, "a");
  EXPECT_EQ(phases[1].phase, "b");
  EXPECT_TRUE(collector.TakePhases().empty());
}

// The process-wide set records its availability in the perf.available
// gauge, whichever way the probe went on this machine.
TEST(PerfCountersTest, ProcessSetPublishesAvailabilityGauge) {
  PerfCounterSet& process = PerfCounterSet::Process();
  const MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(snapshot.GaugeValue("perf.available", -1.0),
            process.available() ? 1.0 : 0.0);
}

TEST(PerfCountersTest, DeltaScalesMultiplexedWindows) {
  PerfReading begin;
  begin.num = 1;
  begin.raw[0] = 100;
  begin.time_enabled_ns = 1000;
  begin.time_running_ns = 1000;
  PerfReading end = begin;
  end.raw[0] = 150;            // +50 observed...
  end.time_enabled_ns = 3000;  // ...over 2000ns enabled,
  end.time_running_ns = 2000;  // of which only 1000ns on-core.
  std::array<uint64_t, kMaxPerfEvents> delta;
  PerfCounterSet::Delta(begin, end, &delta);
  EXPECT_EQ(delta[0], 100u);  // 50 * 2000/1000.

  // No multiplexing: the delta is the raw difference.
  end.time_running_ns = 3000;
  PerfCounterSet::Delta(begin, end, &delta);
  EXPECT_EQ(delta[0], 50u);
}

#if defined(__linux__)

// Software events are schedulable without a PMU and without elevated
// perf_event_paranoid, so they exercise the real open/group-read/delta
// machinery on machines where the hardware set is denied. If even these
// cannot open (fully sealed sandbox), the live-path tests skip.
const PerfEventSpec kSoftwareEvents[] = {
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, "task_clock_ns"},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS, "page_faults"},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES, "context_switches"},
};

TEST(PerfCountersTest, GroupReadIsConsistent) {
  PerfCounterSet set{std::span<const PerfEventSpec>(kSoftwareEvents)};
  if (!set.available()) GTEST_SKIP() << "perf_event_open denied entirely";
  ASSERT_GE(set.num_events(), 1u);
  BurnCpu(2000000);
  PerfReading reading;
  ASSERT_TRUE(set.Read(&reading));
  // One read(2) returns every member of the group plus consistent
  // enabled/running times (running can never exceed enabled).
  EXPECT_EQ(reading.num, set.num_events());
  EXPECT_GT(reading.time_enabled_ns, 0u);
  EXPECT_GE(reading.time_enabled_ns, reading.time_running_ns);
  // The leader (task clock) must have advanced over the burn.
  EXPECT_GT(reading.raw[0], 0u);
}

TEST(PerfCountersTest, ScopedDeltasAreMonotone) {
  PerfCounterSet set{std::span<const PerfEventSpec>(kSoftwareEvents)};
  if (!set.available()) GTEST_SKIP() << "perf_event_open denied entirely";
  PerfReading first;
  ASSERT_TRUE(set.Read(&first));
  BurnCpu(2000000);
  PerfReading second;
  ASSERT_TRUE(set.Read(&second));
  for (size_t i = 0; i < set.num_events(); ++i) {
    EXPECT_GE(second.raw[i], first.raw[i]) << set.event_name(i);
  }
  EXPECT_GE(second.time_enabled_ns, first.time_enabled_ns);
  EXPECT_GE(second.time_running_ns, first.time_running_ns);
  std::array<uint64_t, kMaxPerfEvents> delta;
  PerfCounterSet::Delta(first, second, &delta);
  EXPECT_GT(delta[0], 0u);  // Task clock strictly advances while spinning.
}

TEST(PerfCountersTest, AvailableCollectorRecordsCountersAndRegistry) {
  PerfCounterSet set{std::span<const PerfEventSpec>(kSoftwareEvents)};
  if (!set.available()) GTEST_SKIP() << "perf_event_open denied entirely";
  PhasePerfCollector collector(&set);
  {
    PerfScope scope = collector.Sample("sw_phase");
    BurnCpu(2000000);
  }
  std::vector<PhasePerf> phases = collector.TakePhases();
  ASSERT_EQ(phases.size(), 1u);
  ASSERT_EQ(phases[0].counters.size(), set.num_events());
  EXPECT_EQ(phases[0].counters[0].first, "task_clock_ns");
  EXPECT_GT(phases[0].counters[0].second, 0u);

  const MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  EXPECT_GT(snapshot.CounterValue("perf.sw_phase.task_clock_ns"), 0u);
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace obs
}  // namespace cluseq
