#include "core/seeding.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "synth/dataset.h"

namespace cluseq {
namespace {

PstOptions TestPstOptions() {
  PstOptions o;
  o.max_depth = 5;
  o.significance_threshold = 3;
  o.smoothing_p_min = 1e-4;
  return o;
}

SequenceDatabase TwoSourceDb(size_t per_cluster) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 2;
  opts.sequences_per_cluster = per_cluster;
  opts.alphabet_size = 8;
  opts.avg_length = 80;
  opts.outlier_fraction = 0.0;
  opts.seed = 99;
  return MakeSyntheticDataset(opts);
}

TEST(SeedingTest, ReturnsRequestedNumberOfDistinctSeeds) {
  SequenceDatabase db = TwoSourceDb(20);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  std::vector<size_t> unclustered(db.size());
  for (size_t i = 0; i < db.size(); ++i) unclustered[i] = i;
  Rng rng(1);
  std::vector<size_t> seeds =
      SelectSeeds(db, unclustered, 4, 20, {}, bg, TestPstOptions(), 1, &rng);
  EXPECT_EQ(seeds.size(), 4u);
  std::set<size_t> distinct(seeds.begin(), seeds.end());
  EXPECT_EQ(distinct.size(), 4u);
  for (size_t s : seeds) EXPECT_LT(s, db.size());
}

TEST(SeedingTest, ZeroSeedsRequested) {
  SequenceDatabase db = TwoSourceDb(5);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  std::vector<size_t> unclustered = {0, 1, 2};
  Rng rng(2);
  EXPECT_TRUE(
      SelectSeeds(db, unclustered, 0, 5, {}, bg, TestPstOptions(), 1, &rng)
          .empty());
}

TEST(SeedingTest, EmptyUnclusteredPool) {
  SequenceDatabase db = TwoSourceDb(5);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  Rng rng(3);
  EXPECT_TRUE(
      SelectSeeds(db, {}, 3, 5, {}, bg, TestPstOptions(), 1, &rng).empty());
}

TEST(SeedingTest, ClampsToAvailableSequences) {
  SequenceDatabase db = TwoSourceDb(3);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  std::vector<size_t> unclustered = {0, 1, 2};
  Rng rng(4);
  std::vector<size_t> seeds =
      SelectSeeds(db, unclustered, 10, 50, {}, bg, TestPstOptions(), 1, &rng);
  EXPECT_EQ(seeds.size(), 3u);
}

TEST(SeedingTest, SeedsComeFromUnclusteredPoolOnly) {
  SequenceDatabase db = TwoSourceDb(20);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  std::vector<size_t> unclustered = {1, 3, 5, 7, 9, 11, 13};
  Rng rng(5);
  std::vector<size_t> seeds =
      SelectSeeds(db, unclustered, 3, 7, {}, bg, TestPstOptions(), 1, &rng);
  for (size_t s : seeds) {
    EXPECT_TRUE(std::find(unclustered.begin(), unclustered.end(), s) !=
                unclustered.end());
  }
}

TEST(SeedingTest, PrefersSequenceDissimilarToExistingCluster) {
  // Existing cluster trained on source 0; with the full database as the
  // sample, the first chosen seed should come from source 1.
  SequenceDatabase db = TwoSourceDb(15);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);

  Pst source0_pst(db.alphabet().size(), TestPstOptions());
  for (size_t i = 0; i < db.size(); ++i) {
    if (db[i].label() == 0) source0_pst.InsertSequence(db[i]);
  }
  std::vector<std::shared_ptr<const FrozenPst>> existing = {
      std::make_shared<const FrozenPst>(source0_pst, bg)};

  std::vector<size_t> unclustered(db.size());
  for (size_t i = 0; i < db.size(); ++i) unclustered[i] = i;
  Rng rng(6);
  std::vector<size_t> seeds =
      SelectSeeds(db, unclustered, 1, db.size(), existing, bg,
                  TestPstOptions(), 1, &rng);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(db[seeds[0]].label(), 1) << "seed should avoid the covered source";
}

TEST(SeedingTest, GreedySpreadCoversBothSources) {
  // With no existing clusters and two seeds over the full sample, the two
  // picks should land in different sources (farthest-first property).
  SequenceDatabase db = TwoSourceDb(15);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  std::vector<size_t> unclustered(db.size());
  for (size_t i = 0; i < db.size(); ++i) unclustered[i] = i;
  Rng rng(7);
  std::vector<size_t> seeds = SelectSeeds(db, unclustered, 2, db.size(), {},
                                          bg, TestPstOptions(), 1, &rng);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_NE(db[seeds[0]].label(), db[seeds[1]].label());
}

TEST(SeedingTest, DeterministicGivenSeed) {
  SequenceDatabase db = TwoSourceDb(10);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  std::vector<size_t> unclustered(db.size());
  for (size_t i = 0; i < db.size(); ++i) unclustered[i] = i;
  Rng rng1(8), rng2(8);
  auto s1 = SelectSeeds(db, unclustered, 3, 10, {}, bg, TestPstOptions(), 1,
                        &rng1);
  auto s2 = SelectSeeds(db, unclustered, 3, 10, {}, bg, TestPstOptions(), 1,
                        &rng2);
  EXPECT_EQ(s1, s2);
}

TEST(SeedingTest, MultiThreadedMatchesSingleThreaded) {
  SequenceDatabase db = TwoSourceDb(10);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  std::vector<size_t> unclustered(db.size());
  for (size_t i = 0; i < db.size(); ++i) unclustered[i] = i;
  Rng rng1(9), rng2(9);
  auto s1 = SelectSeeds(db, unclustered, 4, 12, {}, bg, TestPstOptions(), 1,
                        &rng1);
  auto s2 = SelectSeeds(db, unclustered, 4, 12, {}, bg, TestPstOptions(), 4,
                        &rng2);
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace cluseq
