// Corruption sweeps over every on-disk model format (.pst, .fpst, .fbank):
// every-offset truncation and every-single-bit flips must be rejected with
// Status::Corruption (or IOError at the file layer) — never a crash, which
// the CI sanitizer job turns into a hard check. On top of the checksums,
// CRC-fixed structural attacks (hostile fields with recomputed CRCs) must
// still die on the validation layer, and a simulated kill -9 at every
// point of a save must leave the previous complete file untouched.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <filesystem>

#include "pst/bank_serialization.h"
#include "pst/frozen_bank.h"
#include "pst/frozen_pst.h"
#include "pst/pst.h"
#include "pst/pst_serialization.h"
#include "seq/background_model.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

Symbols RandomText(size_t len, size_t alphabet, Rng* rng) {
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng->Uniform(alphabet));
  return text;
}

// Deliberately tiny fixtures: the sweeps are quadratic-ish in blob size
// (every offset × a full checksum pass) and run under ASan/UBSan.
struct Fixtures {
  Fixtures() {
    Rng rng(20260807);
    const size_t alphabet = 3;
    std::vector<uint64_t> counts = {5, 3, 9};
    background = BackgroundModel::FromCounts(counts);
    PstOptions options;
    options.max_depth = 2;
    options.significance_threshold = 1;
    Pst pst(alphabet, options);
    pst.InsertSequence(RandomText(40, alphabet, &rng));

    std::ostringstream pst_out;
    EXPECT_TRUE(SavePst(pst, pst_out).ok());
    pst_blob = pst_out.str();

    auto frozen = std::make_shared<const FrozenPst>(pst, background);
    std::ostringstream fpst_out;
    EXPECT_TRUE(SaveFrozenPst(*frozen, fpst_out).ok());
    fpst_blob = fpst_out.str();

    Pst second(alphabet, options);
    second.InsertSequence(RandomText(30, alphabet, &rng));
    bank.Assemble({frozen,
                   std::make_shared<const FrozenPst>(second, background)});
    EXPECT_TRUE(SaveFrozenBank(bank, &fbank_blob).ok());
  }

  BackgroundModel background;
  FrozenBank bank;
  std::string pst_blob, fpst_blob, fbank_blob;
};

const Fixtures& Fix() {
  static const Fixtures* fixtures = new Fixtures();
  return *fixtures;
}

Status TryLoadPst(const std::string& blob) {
  std::istringstream in(blob);
  Pst pst(1, PstOptions{});
  return LoadPst(in, &pst);
}

Status TryLoadFrozenPst(const std::string& blob) {
  std::istringstream in(blob);
  FrozenPst pst;
  return LoadFrozenPst(in, &pst);
}

Status TryLoadBank(const std::string& blob) {
  FrozenBank bank;
  return LoadFrozenBank(blob, &bank);
}

using Loader = Status (*)(const std::string&);

struct Format {
  const char* name;
  const std::string& blob;
  Loader load;
};

std::vector<Format> AllFormats() {
  return {{".pst", Fix().pst_blob, &TryLoadPst},
          {".fpst", Fix().fpst_blob, &TryLoadFrozenPst},
          {".fbank", Fix().fbank_blob, &TryLoadBank}};
}

TEST(PersistenceCorruptionTest, FixturesLoadClean) {
  for (const Format& f : AllFormats()) {
    EXPECT_TRUE(f.load(f.blob).ok()) << f.name;
    EXPECT_GT(f.blob.size(), 100u) << f.name;
    EXPECT_LT(f.blob.size(), 16384u)
        << f.name << ": fixture too big, the sweeps below will crawl";
  }
}

TEST(PersistenceCorruptionTest, TruncationAtEveryOffsetIsRejected) {
  for (const Format& f : AllFormats()) {
    for (size_t len = 0; len < f.blob.size(); ++len) {
      Status st = f.load(f.blob.substr(0, len));
      EXPECT_TRUE(st.IsCorruption() || st.IsIOError())
          << f.name << " truncated to " << len << ": " << st.ToString();
    }
  }
}

TEST(PersistenceCorruptionTest, AppendedGarbageIsRejected) {
  for (const Format& f : AllFormats()) {
    Status st = f.load(f.blob + std::string(7, '\0'));
    EXPECT_TRUE(st.IsCorruption()) << f.name << ": " << st.ToString();
  }
}

TEST(PersistenceCorruptionTest, EverySingleBitFlipIsRejected) {
  for (const Format& f : AllFormats()) {
    std::string blob = f.blob;
    for (size_t byte = 0; byte < blob.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        blob[byte] = static_cast<char>(blob[byte] ^ (1 << bit));
        Status st = f.load(blob);
        EXPECT_TRUE(st.IsCorruption())
            << f.name << " byte " << byte << " bit " << bit << ": "
            << st.ToString();
        blob[byte] = static_cast<char>(blob[byte] ^ (1 << bit));
      }
    }
    EXPECT_EQ(blob, f.blob);  // Sweep restored every flip.
  }
}

// --- CRC-fixed structural attacks ---------------------------------------
// An adversary (or a very unlucky disk) can fix up the checksums; the
// structural validation layer behind them must still hold.

uint64_t ReadU64(const std::string& b, size_t off) {
  uint64_t v;
  std::memcpy(&v, b.data() + off, sizeof(v));
  return v;
}

template <typename T>
void Poke(std::string* b, size_t off, T v) {
  std::memcpy(b->data() + off, &v, sizeof(v));
}

/// Recomputes the header, per-section and whole-file CRCs of an .fbank
/// blob whose fields were tampered with.
void FixupFbankCrcs(std::string* blob) {
  Poke<uint32_t>(blob, kFbankHeaderBytes - 4,
                 Crc32c(blob->data(), kFbankHeaderBytes - 4));
  for (size_t i = 0; i < kFbankSectionCount; ++i) {
    const size_t entry = kFbankHeaderBytes + i * kFbankSectionEntryBytes;
    const size_t offset = static_cast<size_t>(ReadU64(*blob, entry + 8));
    const size_t size = static_cast<size_t>(ReadU64(*blob, entry + 16));
    if (offset + size <= blob->size()) {
      Poke<uint32_t>(blob, entry + 24, Crc32c(blob->data() + offset, size));
    }
  }
  Poke<uint32_t>(blob, blob->size() - 8,
                 Crc32c(blob->data(), blob->size() - kFbankFooterBytes));
}

size_t FbankSectionOffset(const std::string& blob, size_t i) {
  return static_cast<size_t>(
      ReadU64(blob, kFbankHeaderBytes + i * kFbankSectionEntryBytes + 8));
}

TEST(PersistenceCorruptionTest, FbankTruncationAtEverySectionBoundary) {
  const std::string& blob = Fix().fbank_blob;
  std::vector<size_t> boundaries = {
      0, kFbankHeaderBytes,
      kFbankHeaderBytes + kFbankSectionCount * kFbankSectionEntryBytes};
  for (size_t i = 0; i < kFbankSectionCount; ++i) {
    boundaries.push_back(FbankSectionOffset(blob, i));
  }
  boundaries.push_back(blob.size() - kFbankFooterBytes);
  boundaries.push_back(blob.size() - 1);
  for (size_t at : boundaries) {
    ASSERT_LT(at, blob.size());
    EXPECT_TRUE(TryLoadBank(blob.substr(0, at)).IsCorruption())
        << "truncated at " << at;
  }
}

TEST(PersistenceCorruptionTest, FbankHostileMetaWithFixedCrcs) {
  const std::string& clean = Fix().fbank_blob;
  const size_t meta = FbankSectionOffset(clean, 0);
  struct Case {
    const char* what;
    size_t offset;
    uint64_t value;
  };
  const Case cases[] = {
      {"alphabet zero", meta, 0},
      {"alphabet huge", meta, 1ULL << 40},
      {"model count zero", meta + 8, 0},
      {"model count huge", meta + 8, 1ULL << 40},
      {"states zero", meta + 16, 0},
      {"states huge (allocation bomb)", meta + 16, 1ULL << 30},
      {"states off by one", meta + 16, ReadU64(clean, meta + 16) + 1},
      {"depth huge", meta + 24, 1ULL << 40},
  };
  for (const Case& c : cases) {
    std::string blob = clean;
    Poke<uint64_t>(&blob, c.offset, c.value);
    FixupFbankCrcs(&blob);
    EXPECT_TRUE(TryLoadBank(blob).IsCorruption()) << c.what;
  }
}

TEST(PersistenceCorruptionTest, FbankHostileEntriesWithFixedCrcs) {
  const std::string& clean = Fix().fbank_blob;
  const size_t entries = FbankSectionOffset(clean, 2);
  {
    std::string blob = clean;  // Transition escaping the model's rows.
    Poke<uint32_t>(&blob, entries + 8, 0x7FFFFFF0u);
    FixupFbankCrcs(&blob);
    EXPECT_TRUE(TryLoadBank(blob).IsCorruption()) << "next out of range";
  }
  {
    std::string blob = clean;  // Row-misaligned transition.
    Poke<uint32_t>(&blob, entries + 8, 1);
    FixupFbankCrcs(&blob);
    EXPECT_TRUE(TryLoadBank(blob).IsCorruption()) << "next misaligned";
  }
  {
    std::string blob = clean;  // NaN poisons every max() downstream.
    Poke<double>(&blob, entries, std::nan(""));
    FixupFbankCrcs(&blob);
    EXPECT_TRUE(TryLoadBank(blob).IsCorruption()) << "NaN ratio";
  }
  {
    std::string blob = clean;
    Poke<double>(&blob, entries, std::numeric_limits<double>::infinity());
    FixupFbankCrcs(&blob);
    EXPECT_TRUE(TryLoadBank(blob).IsCorruption()) << "+inf ratio";
  }
  {
    std::string blob = clean;
    Poke<uint32_t>(&blob, entries + 12, 1);
    FixupFbankCrcs(&blob);
    EXPECT_TRUE(TryLoadBank(blob).IsCorruption()) << "nonzero padding";
  }
  {
    std::string blob = clean;  // Sections swapped in the table.
    const size_t t0 = kFbankHeaderBytes;
    const size_t t1 = kFbankHeaderBytes + kFbankSectionEntryBytes;
    std::string a = blob.substr(t0, kFbankSectionEntryBytes);
    std::string b = blob.substr(t1, kFbankSectionEntryBytes);
    blob.replace(t0, kFbankSectionEntryBytes, b);
    blob.replace(t1, kFbankSectionEntryBytes, a);
    FixupFbankCrcs(&blob);
    EXPECT_TRUE(TryLoadBank(blob).IsCorruption()) << "shuffled sections";
  }
}

TEST(PersistenceCorruptionTest, FrozenPstHostileHeaderWithFixedCrc) {
  const std::string& clean = Fix().fpst_blob;
  // Layout: magic(4) | u64 alphabet | u64 max_depth | u64 num_states | ...
  struct Case {
    const char* what;
    size_t offset;
    uint64_t value;
  };
  const Case cases[] = {
      {"alphabet zero", 4, 0},
      {"alphabet huge", 4, 1ULL << 40},
      {"num_states huge (allocation bomb)", 20, 1ULL << 40},
      {"num_states off by one", 20, ReadU64(clean, 20) + 1},
  };
  for (const Case& c : cases) {
    std::string blob = clean;
    Poke<uint64_t>(&blob, c.offset, c.value);
    Poke<uint32_t>(&blob, blob.size() - 4,
                   Crc32c(blob.data(), blob.size() - 4));
    EXPECT_TRUE(TryLoadFrozenPst(blob).IsCorruption()) << c.what;
  }
}

TEST(PersistenceCorruptionTest, PstHostileHeaderWithFixedCrc) {
  const std::string& clean = Fix().pst_blob;
  // Layout: magic(4) | u64 alphabet | u64 max_depth | u64 significance |
  // u64 max_memory | u32 strategy | f64 p_min | u64 node_count | nodes...
  constexpr size_t kNodeCountOffset = 4 + 8 + 8 + 8 + 8 + 4 + 8;
  struct Case {
    const char* what;
    size_t offset;
    uint64_t value;
  };
  const Case cases[] = {
      {"alphabet huge", 4, 1ULL << 40},
      {"node count zero", kNodeCountOffset, 0},
      // Passes the absolute cap but not the bytes-per-node plausibility
      // bound: must be rejected before the arena resize, not OOM on it.
      {"node count allocation bomb", kNodeCountOffset, 1ULL << 27},
      {"node count off by one", kNodeCountOffset,
       ReadU64(clean, kNodeCountOffset) + 1},
  };
  for (const Case& c : cases) {
    std::string blob = clean;
    Poke<uint64_t>(&blob, c.offset, c.value);
    Poke<uint32_t>(&blob, blob.size() - 4,
                   Crc32c(blob.data(), blob.size() - 4));
    EXPECT_TRUE(TryLoadPst(blob).IsCorruption()) << c.what;
  }
}

// --- kill -9 mid-save ----------------------------------------------------

TEST(PersistenceCorruptionTest, KillMidBankSaveNeverExposesAPartialFile) {
  std::string tmpl = ::testing::TempDir() + "cluseq_kill_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  ASSERT_NE(made, nullptr);
  const std::string dir = made;
  const std::string path = dir + "/bank.fbank";
  const FrozenBank& bank = Fix().bank;
  ASSERT_TRUE(SaveFrozenBankToFile(bank, path).ok());

  Rng rng(31);
  const Symbols query = RandomText(100, bank.alphabet_size(), &rng);
  const std::vector<SimilarityResult> want = bank.ScanAll(query);
  const size_t file_size = std::filesystem::file_size(path);

  auto expect_intact = [&](const char* what) {
    FrozenBank loaded;
    ASSERT_TRUE(LoadFrozenBankFromFile(path, &loaded).ok()) << what;
    std::vector<SimilarityResult> got = loaded.ScanAll(query);
    for (size_t m = 0; m < want.size(); ++m) {
      EXPECT_EQ(want[m].log_sim, got[m].log_sim) << what;
    }
  };

  // Cut the write stream at a spread of offsets (every offset would be
  // minutes of fsync traffic; the atomicity argument is offset-oblivious).
  for (size_t cut = 0; cut < file_size; cut += 41) {
    FaultPlan plan;
    plan.write_limit = cut;
    {
      ScopedFaultPlan guard(plan);
      EXPECT_TRUE(SaveFrozenBankToFile(bank, path).IsIOError())
          << "cut " << cut;
    }
    expect_intact("after torn write");
  }
  {
    FaultPlan plan;
    plan.fail_fsync_file = true;
    ScopedFaultPlan guard(plan);
    EXPECT_TRUE(SaveFrozenBankToFile(bank, path).IsIOError());
  }
  expect_intact("after failed file fsync");
  {
    FaultPlan plan;
    plan.fail_rename = true;
    ScopedFaultPlan guard(plan);
    EXPECT_TRUE(SaveFrozenBankToFile(bank, path).IsIOError());
  }
  expect_intact("after failed rename");

  // No temp debris anywhere in the directory.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceCorruptionTest, BitRotOnTheWireIsCaughtAtLoad) {
  // A flip between write buffer and platter (injected at the write seam,
  // after the checksums were computed) must be caught by the next load.
  std::string tmpl = ::testing::TempDir() + "cluseq_rot_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  ASSERT_NE(made, nullptr);
  const std::string dir = made;
  const std::string path = dir + "/bank.fbank";
  FaultPlan plan;
  plan.flip_offset = Fix().fbank_blob.size() / 2;
  plan.flip_mask = 0x10;
  {
    ScopedFaultPlan guard(plan);
    ASSERT_TRUE(SaveFrozenBankToFile(Fix().bank, path).ok());
  }
  FrozenBank loaded;
  EXPECT_TRUE(LoadFrozenBankFromFile(path, &loaded).IsCorruption());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cluseq
