// Robustness of the PST deserializer against corrupted and truncated input:
// every mutation must produce a clean Status (never a crash, hang, or
// uninitialized tree being reported as OK with garbage invariants).

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pst/pst.h"
#include "pst/pst_serialization.h"
#include "util/rng.h"

namespace cluseq {
namespace {

std::string SerializedFixture(uint64_t seed) {
  PstOptions options;
  options.max_depth = 5;
  options.significance_threshold = 3;
  Pst pst(5, options);
  Rng rng(seed);
  std::vector<SymbolId> text(300);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(5));
  pst.InsertSequence(text);
  std::stringstream buffer;
  EXPECT_TRUE(SavePst(pst, buffer).ok());
  return buffer.str();
}

// If loading succeeds despite the mutation, the tree must still satisfy its
// basic invariants (probabilities normalized, stats self-consistent).
void CheckInvariantsIfLoaded(const std::string& bytes) {
  std::stringstream in(bytes);
  Pst loaded(1, PstOptions{});
  Status st = LoadPst(in, &loaded);
  if (!st.ok()) return;  // Clean rejection is always acceptable.
  PstStats stats = loaded.Stats();
  EXPECT_EQ(stats.num_nodes, loaded.NumNodes());
  std::vector<SymbolId> ctx = {0, 1};
  double sum = 0.0;
  PstNodeId node = loaded.PredictionNode(ctx);
  for (SymbolId s = 0; s < loaded.alphabet_size(); ++s) {
    double p = loaded.NodeProbability(node, s);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
    sum += p;
  }
  if (loaded.alphabet_size() > 0) {
    EXPECT_LE(sum, 1.0 + 1e-6);
  }
}

TEST(SerializationFuzzTest, EveryTruncationIsHandled) {
  std::string bytes = SerializedFixture(1);
  // Check all short prefixes and a sample of longer ones.
  for (size_t len = 0; len < bytes.size();
       len += (len < 64 ? 1 : bytes.size() / 64)) {
    std::string truncated = bytes.substr(0, len);
    std::stringstream in(truncated);
    Pst loaded(1, PstOptions{});
    Status st = LoadPst(in, &loaded);
    EXPECT_FALSE(st.ok()) << "truncation to " << len << " bytes loaded OK";
  }
}

TEST(SerializationFuzzTest, SingleByteFlipsNeverCrash) {
  std::string bytes = SerializedFixture(2);
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = bytes;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    CheckInvariantsIfLoaded(mutated);
  }
}

TEST(SerializationFuzzTest, RandomByteBlocksNeverCrash) {
  std::string bytes = SerializedFixture(4);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = bytes;
    size_t pos = rng.Uniform(mutated.size());
    size_t len = std::min<size_t>(1 + rng.Uniform(16), mutated.size() - pos);
    for (size_t i = 0; i < len; ++i) {
      mutated[pos + i] = static_cast<char>(rng.Uniform(256));
    }
    CheckInvariantsIfLoaded(mutated);
  }
}

TEST(SerializationFuzzTest, PureGarbageRejected) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::string garbage(32 + rng.Uniform(512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    std::stringstream in(garbage);
    Pst loaded(1, PstOptions{});
    Status st = LoadPst(in, &loaded);
    // Overwhelmingly rejected; on the astronomically unlikely parse the
    // invariant check still applies.
    if (st.ok()) CheckInvariantsIfLoaded(garbage);
  }
}

TEST(SerializationFuzzTest, HugeDeclaredNodeCountRejected) {
  std::string bytes = SerializedFixture(7);
  // The node-count field sits right after magic + 5 header fields:
  // 4 + 8*4 + 4 + 8 = 48 bytes in.
  const size_t count_offset = 4 + 8 + 8 + 8 + 8 + 4 + 8;
  ASSERT_LT(count_offset + 8, bytes.size());
  std::string mutated = bytes;
  for (int i = 0; i < 8; ++i) mutated[count_offset + i] = '\xff';
  std::stringstream in(mutated);
  Pst loaded(1, PstOptions{});
  EXPECT_FALSE(LoadPst(in, &loaded).ok());
}

}  // namespace
}  // namespace cluseq
