#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cluseq {
namespace obs {
namespace {

// The registry is process-global and other suites run in the same binary,
// so every test uses its own uniquely named instruments and asserts deltas
// rather than absolute registry contents.

TEST(MetricsCounterTest, MultiThreadAggregation) {
  Counter& counter =
      MetricsRegistry::Get().GetCounter("test.counter.multithread");
  const uint64_t before = counter.Value();
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value() - before,
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(MetricsCounterTest, AddAccumulates) {
  Counter& counter = MetricsRegistry::Get().GetCounter("test.counter.add");
  const uint64_t before = counter.Value();
  counter.Add(5);
  counter.Add(7);
  EXPECT_EQ(counter.Value() - before, 12u);
}

TEST(MetricsGaugeTest, LastWriteWins) {
  Gauge& gauge = MetricsRegistry::Get().GetGauge("test.gauge.basic");
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
  gauge.Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.0);
}

TEST(MetricsHistogramTest, BucketBoundaries) {
  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  Histogram& hist = MetricsRegistry::Get().GetHistogram(
      "test.histogram.bounds", std::span<const double>(bounds));
  const std::vector<uint64_t> before = hist.BucketCounts();
  // Bucket semantics: counts[i] tallies v <= bounds[i]; the last bucket is
  // the overflow. A value exactly on a bound lands in that bound's bucket.
  hist.Observe(0.5);    // <= 1       -> bucket 0
  hist.Observe(1.0);    // == bound 0 -> bucket 0
  hist.Observe(1.001);  //            -> bucket 1
  hist.Observe(10.0);   // == bound 1 -> bucket 1
  hist.Observe(99.9);   //            -> bucket 2
  hist.Observe(100.1);  // overflow   -> bucket 3
  hist.Observe(1e9);    // overflow   -> bucket 3
  const std::vector<uint64_t> after = hist.BucketCounts();
  ASSERT_EQ(after.size(), 4u);
  EXPECT_EQ(after[0] - before[0], 2u);
  EXPECT_EQ(after[1] - before[1], 2u);
  EXPECT_EQ(after[2] - before[2], 1u);
  EXPECT_EQ(after[3] - before[3], 2u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 0.5 + 1.0 + 1.001 + 10.0 + 99.9 + 100.1 + 1e9);
}

TEST(MetricsHistogramTest, MultiThreadObservations) {
  const std::vector<double> bounds = {0.5};
  Histogram& hist = MetricsRegistry::Get().GetHistogram(
      "test.histogram.multithread", std::span<const double>(bounds));
  const uint64_t before = hist.TotalCount();
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        hist.Observe(t % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.TotalCount() - before,
            static_cast<uint64_t>(kThreads) * kObsPerThread);
}

TEST(MetricsSnapshotTest, SnapshotIsIsolatedFromLaterWrites) {
  Counter& counter =
      MetricsRegistry::Get().GetCounter("test.counter.snapshot_isolation");
  counter.Add(3);
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  const uint64_t frozen = snap.CounterValue("test.counter.snapshot_isolation");
  counter.Add(100);
  // The snapshot must not see increments made after it was taken.
  EXPECT_EQ(snap.CounterValue("test.counter.snapshot_isolation"), frozen);
  const MetricsSnapshot later = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(later.CounterValue("test.counter.snapshot_isolation"),
            frozen + 100);
}

TEST(MetricsSnapshotTest, RowsAreSortedAndLookupsWork) {
  MetricsRegistry::Get().GetCounter("test.counter.sorted_a").Increment();
  MetricsRegistry::Get().GetCounter("test.counter.sorted_b").Increment();
  MetricsRegistry::Get().GetGauge("test.gauge.sorted").Set(2.0);
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  EXPECT_GE(snap.CounterValue("test.counter.sorted_a"), 1u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("test.gauge.sorted"), 2.0);
  // Absent instruments: counters read 0, gauges read the fallback.
  EXPECT_EQ(snap.CounterValue("test.counter.never_registered"), 0u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("test.gauge.never_registered", -5.0),
                   -5.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  Counter& a = MetricsRegistry::Get().GetCounter("test.counter.identity");
  Counter& b = MetricsRegistry::Get().GetCounter("test.counter.identity");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsEnabledTest, DisabledWritesAreSkipped) {
  Counter& counter =
      MetricsRegistry::Get().GetCounter("test.counter.disabled");
  Gauge& gauge = MetricsRegistry::Get().GetGauge("test.gauge.disabled");
  const std::vector<double> bounds = {1.0};
  Histogram& hist = MetricsRegistry::Get().GetHistogram(
      "test.histogram.disabled", std::span<const double>(bounds));
  gauge.Set(1.0);
  const uint64_t counter_before = counter.Value();
  const uint64_t hist_before = hist.TotalCount();
  SetMetricsEnabled(false);
  counter.Add(10);
  gauge.Set(99.0);
  hist.Observe(0.5);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), counter_before);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.0);
  EXPECT_EQ(hist.TotalCount(), hist_before);
  counter.Increment();  // Re-enabled writes land again.
  EXPECT_EQ(counter.Value(), counter_before + 1);
}

TEST(MetricsBoundsTest, ExponentialBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds = ExponentialBounds(0.001, 4.0, 10);
  ASSERT_EQ(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.001);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 4.0);
  }
}

}  // namespace
}  // namespace obs
}  // namespace cluseq
