#include "pst/pst_dot.h"

#include <sstream>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cluseq {
namespace {

Pst TrainedPst(size_t alphabet, uint64_t c) {
  PstOptions o;
  o.max_depth = 4;
  o.significance_threshold = c;
  Pst pst(alphabet, o);
  Rng rng(1);
  std::vector<SymbolId> text(200);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  pst.InsertSequence(text);
  return pst;
}

TEST(PstDotTest, ProducesWellFormedDigraph) {
  Pst pst = TrainedPst(3, 3);
  Alphabet alphabet = Alphabet::FromChars("abc");
  std::ostringstream out;
  ASSERT_TRUE(WritePstDot(pst, alphabet, {}, out).ok());
  std::string dot = out.str();
  EXPECT_NE(dot.find("digraph pst {"), std::string::npos);
  EXPECT_NE(dot.find("(root)"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(PstDotTest, MaxNodesLimitsOutput) {
  Pst pst = TrainedPst(4, 1);
  Alphabet alphabet = Alphabet::FromChars("abcd");
  PstDotOptions small;
  small.max_nodes = 5;
  std::ostringstream out_small, out_all;
  ASSERT_TRUE(WritePstDot(pst, alphabet, small, out_small).ok());
  PstDotOptions all;
  all.max_nodes = 0;
  ASSERT_TRUE(WritePstDot(pst, alphabet, all, out_all).ok());
  EXPECT_LT(out_small.str().size(), out_all.str().size());
}

TEST(PstDotTest, SignificantOnlyDropsDashedNodes) {
  Pst pst = TrainedPst(3, 5);
  Alphabet alphabet = Alphabet::FromChars("abc");
  PstDotOptions opts;
  opts.significant_only = true;
  opts.max_nodes = 0;
  std::ostringstream out;
  ASSERT_TRUE(WritePstDot(pst, alphabet, opts, out).ok());
  // Only the root may be dashed (when its count is below c, which it is not
  // here), so no dashed style should appear.
  EXPECT_EQ(out.str().find("dashed"), std::string::npos);
}

TEST(PstDotTest, AlphabetTooSmallRejected) {
  Pst pst = TrainedPst(4, 2);
  Alphabet alphabet = Alphabet::FromChars("ab");
  std::ostringstream out;
  EXPECT_TRUE(WritePstDot(pst, alphabet, {}, out).IsInvalidArgument());
}

TEST(PstDotTest, EmptyTreeIsJustRoot) {
  Pst pst(2, PstOptions{});
  Alphabet alphabet = Alphabet::FromChars("ab");
  std::ostringstream out;
  ASSERT_TRUE(WritePstDot(pst, alphabet, {}, out).ok());
  EXPECT_NE(out.str().find("(root)"), std::string::npos);
  EXPECT_EQ(out.str().find("->"), std::string::npos);
}

}  // namespace
}  // namespace cluseq
