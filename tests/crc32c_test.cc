// CRC32C against the RFC 3720 reference vectors, plus the streaming
// composition law Crc32cExtend(Crc32c(a), b) == Crc32c(a + b) that the
// serialization layers rely on.

#include "util/crc32c.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cluseq {
namespace {

TEST(Crc32cTest, Rfc3720Vectors) {
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposesWithOneShot) {
  Rng rng(20260807);
  std::string data(257, '\0');  // Odd length: exercises the tail loop.
  for (auto& c : data) c = static_cast<char>(rng.Uniform(256));
  const uint32_t whole = Crc32c(data);
  for (size_t split : {size_t{0}, size_t{1}, size_t{3}, size_t{64},
                       size_t{255}, data.size()}) {
    const uint32_t head = Crc32c(data.data(), split);
    EXPECT_EQ(Crc32cExtend(head, data.data() + split, data.size() - split),
              whole)
        << "split at " << split;
  }
}

TEST(Crc32cTest, ByteAtATimeMatchesOneShot) {
  const std::string data = "CLUSEQ frozen bank";
  uint32_t crc = 0;
  for (char c : data) crc = Crc32cExtend(crc, &c, 1);
  EXPECT_EQ(crc, Crc32c(data));
}

TEST(Crc32cTest, EveryBitFlipChangesTheSum) {
  const std::string data = "0123456789abcdef";
  const uint32_t clean = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped), clean)
          << "byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace cluseq
