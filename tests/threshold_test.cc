#include "core/threshold.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cluseq {
namespace {

// Similarity observations with the paper's Figure-3 shape: a large mass
// whose histogram declines steeply from 0 up to `knee` (linearly decreasing
// density), then a small, flat mass of matching pairs on [high_lo, high_hi].
// The valley (sharpest turn) sits near the knee.
std::vector<double> PaperShapeSims(double knee, double high_lo,
                                   double high_hi, size_t low_n,
                                   size_t high_n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sims;
  sims.reserve(low_n + high_n);
  for (size_t i = 0; i < low_n; ++i) {
    // Linearly decreasing density on [0, knee].
    sims.push_back(knee * (1.0 - std::sqrt(rng.UniformDouble())));
  }
  for (size_t i = 0; i < high_n; ++i) {
    sims.push_back(rng.UniformDouble(high_lo, high_hi));
  }
  return sims;
}

TEST(ThresholdAdjusterTest, NoAdjustmentOnTinySample) {
  ThresholdAdjuster adj(50);
  ThresholdUpdate u = adj.Adjust({1.0, 2.0, 3.0}, 0.5);
  EXPECT_FALSE(u.adjusted);
  EXPECT_DOUBLE_EQ(u.new_log_t, 0.5);
}

TEST(ThresholdAdjusterTest, IgnoresNonFiniteValues) {
  ThresholdAdjuster adj(50);
  std::vector<double> sims = {-INFINITY, INFINITY, NAN, 1.0, 2.0};
  ThresholdUpdate u = adj.Adjust(sims, 0.5);
  EXPECT_FALSE(u.adjusted);  // Only 2 finite values remain.
}

TEST(ThresholdAdjusterTest, MovesTowardValley) {
  std::vector<double> sims = PaperShapeSims(2.0, 4.0, 8.0, 5000, 600, 1);
  ThresholdAdjuster adj(100);
  double t0 = std::log(1.0005);
  ThresholdUpdate u = adj.Adjust(sims, t0);
  ASSERT_TRUE(u.adjusted);
  // The valley estimate lands near the knee, and t moves toward it.
  EXPECT_GT(u.valley_log_t, 0.7);
  EXPECT_LT(u.valley_log_t, 4.5);
  EXPECT_GT(u.new_log_t, t0);
  EXPECT_LE(u.new_log_t, u.valley_log_t + 1e-9);
}

TEST(ThresholdAdjusterTest, ConservativePaceIsHalfwayInLogSpace) {
  std::vector<double> sims = PaperShapeSims(2.0, 4.0, 8.0, 5000, 600, 2);
  ThresholdAdjuster adj(100);
  double t0 = std::log(2.0);
  ThresholdUpdate u = adj.Adjust(sims, t0);
  ASSERT_TRUE(u.adjusted);
  EXPECT_NEAR(u.new_log_t, (t0 + u.valley_log_t) / 2.0, 1e-9);
}

TEST(ThresholdAdjusterTest, ConvergesToValleyOverIterations) {
  std::vector<double> sims = PaperShapeSims(2.0, 4.0, 8.0, 5000, 600, 3);
  ThresholdAdjuster adj(100);
  double t = std::log(1.05);
  for (int iter = 0; iter < 30 && !adj.frozen(); ++iter) {
    ThresholdUpdate u = adj.Adjust(sims, t);
    if (!u.adjusted) break;
    t = u.new_log_t;
  }
  // t ends in the knee region.
  EXPECT_GT(t, 0.7);
  EXPECT_LT(t, 4.5);
}

TEST(ThresholdAdjusterTest, FreezesWhenCloseEnough) {
  std::vector<double> sims = PaperShapeSims(2.0, 4.0, 8.0, 5000, 600, 4);
  ThresholdAdjuster probe(100);
  ThresholdUpdate first = probe.Adjust(sims, std::log(1.05));
  ASSERT_TRUE(first.adjusted);

  ThresholdAdjuster adj(100);
  // Start exactly at the valley: freeze immediately.
  ThresholdUpdate u = adj.Adjust(sims, first.valley_log_t);
  EXPECT_FALSE(u.adjusted);
  EXPECT_TRUE(adj.frozen());
  // And stays frozen forever.
  ThresholdUpdate again = adj.Adjust(sims, std::log(1.05));
  EXPECT_FALSE(again.adjusted);
}

TEST(ThresholdAdjusterTest, FlooredAtMinLogT) {
  // All mass below log t = 0: any valley estimate is floored to min_log_t.
  std::vector<double> sims = PaperShapeSims(2.0, 4.0, 8.0, 5000, 600, 5);
  for (double& s : sims) s -= 20.0;
  ThresholdAdjuster adj(100, /*min_log_t=*/0.0);
  ThresholdUpdate u = adj.Adjust(sims, 0.3);
  if (u.adjusted) {
    EXPECT_GE(u.new_log_t, 0.0);
  }
  EXPECT_GE(u.valley_log_t, 0.0);
}

TEST(ThresholdAdjusterTest, DirectionDownward) {
  // Starting far above the valley: t must decrease toward it.
  std::vector<double> sims = PaperShapeSims(2.0, 4.0, 8.0, 5000, 600, 6);
  ThresholdAdjuster adj(100);
  double t0 = std::log(1000.0);
  ThresholdUpdate u = adj.Adjust(sims, t0);
  ASSERT_TRUE(u.adjusted);
  EXPECT_LT(u.new_log_t, t0);
}

// Sweep over starting thresholds: final t approaches the knee regardless of
// the start (the paper's Table 6 property).
struct InitTParam {
  double init_t;
};
class InitialThresholdSweep : public ::testing::TestWithParam<InitTParam> {};

TEST_P(InitialThresholdSweep, ConvergesRegardlessOfStart) {
  std::vector<double> sims = PaperShapeSims(2.0, 4.5, 8.0, 8000, 800, 7);
  ThresholdAdjuster adj(100);
  double t = std::log(GetParam().init_t);
  for (int iter = 0; iter < 40 && !adj.frozen(); ++iter) {
    ThresholdUpdate u = adj.Adjust(sims, t);
    if (!u.adjusted) break;
    t = u.new_log_t;
  }
  EXPECT_GT(t, 0.6);
  EXPECT_LT(t, 5.0);
}

INSTANTIATE_TEST_SUITE_P(Starts, InitialThresholdSweep,
                         ::testing::Values(InitTParam{1.05}, InitTParam{1.5},
                                           InitTParam{2.0}, InitTParam{3.0},
                                           InitTParam{20.0}));

}  // namespace
}  // namespace cluseq

namespace cluseq {
namespace {

TEST(ThresholdAdjusterTest, UpwardStepIsBounded) {
  // Valley far above the current t: the move must be capped by max_up_step.
  std::vector<double> sims = PaperShapeSims(2.0, 4.0, 8.0, 5000, 600, 8);
  for (double& s : sims) s += 30.0;  // Shift the whole histogram far up.
  ThresholdAdjuster adj(100, 0.0, /*max_up_step=*/1.5);
  ThresholdUpdate u = adj.Adjust(sims, 0.0);
  ASSERT_TRUE(u.adjusted);
  EXPECT_LE(u.new_log_t, 1.5 + 1e-9);
}

TEST(ThresholdAdjusterTest, DownwardStepIsNotBounded) {
  std::vector<double> sims = PaperShapeSims(2.0, 4.0, 8.0, 5000, 600, 9);
  ThresholdAdjuster adj(100, 0.0, /*max_up_step=*/0.5);
  double t0 = 50.0;  // Far above everything.
  ThresholdUpdate u = adj.Adjust(sims, t0);
  ASSERT_TRUE(u.adjusted);
  EXPECT_LT(u.new_log_t, t0 - 10.0);  // Halfway down, uncapped.
}

TEST(ThresholdAdjusterTest, ZeroStepDisablesBound) {
  std::vector<double> sims = PaperShapeSims(2.0, 4.0, 8.0, 5000, 600, 10);
  for (double& s : sims) s += 30.0;
  ThresholdAdjuster adj(100, 0.0, /*max_up_step=*/0.0);
  ThresholdUpdate u = adj.Adjust(sims, 0.0);
  ASSERT_TRUE(u.adjusted);
  EXPECT_GT(u.new_log_t, 10.0);  // Full halfway jump allowed.
}

}  // namespace
}  // namespace cluseq
