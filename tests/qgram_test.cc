#include "baselines/qgram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "synth/dataset.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

TEST(QGramProfileTest, CountsAllGrams) {
  Symbols s = {0, 1, 0, 1, 0};
  QGramProfile p = QGramProfile::Build(s, 2, 2);
  // Grams: 01, 10, 01, 10 -> 2 distinct, counts 2 and 2.
  EXPECT_EQ(p.num_distinct(), 2u);
  EXPECT_NEAR(p.norm(), std::sqrt(8.0), 1e-12);
}

TEST(QGramProfileTest, ShortSequenceIsEmpty) {
  Symbols s = {0, 1};
  QGramProfile p = QGramProfile::Build(s, 3, 2);
  EXPECT_EQ(p.num_distinct(), 0u);
  EXPECT_DOUBLE_EQ(p.norm(), 0.0);
}

TEST(QGramProfileTest, QOneIsUnigramCounts) {
  Symbols s = {0, 0, 1};
  QGramProfile p = QGramProfile::Build(s, 1, 2);
  EXPECT_EQ(p.num_distinct(), 2u);
  EXPECT_NEAR(p.norm(), std::sqrt(4.0 + 1.0), 1e-12);
}

TEST(QGramCosineTest, IdenticalIsOne) {
  Symbols s = {0, 1, 2, 0, 1, 2, 0};
  QGramProfile p = QGramProfile::Build(s, 3, 3);
  EXPECT_NEAR(QGramProfile::Cosine(p, p), 1.0, 1e-12);
}

TEST(QGramCosineTest, DisjointIsZero) {
  Symbols a = {0, 0, 0, 0};
  Symbols b = {1, 1, 1, 1};
  QGramProfile pa = QGramProfile::Build(a, 2, 2);
  QGramProfile pb = QGramProfile::Build(b, 2, 2);
  EXPECT_DOUBLE_EQ(QGramProfile::Cosine(pa, pb), 0.0);
}

TEST(QGramCosineTest, SymmetricAndBounded) {
  Symbols a = {0, 1, 2, 1, 0, 2, 1};
  Symbols b = {2, 1, 0, 0, 1, 2, 2};
  QGramProfile pa = QGramProfile::Build(a, 2, 3);
  QGramProfile pb = QGramProfile::Build(b, 2, 3);
  double ab = QGramProfile::Cosine(pa, pb);
  EXPECT_DOUBLE_EQ(ab, QGramProfile::Cosine(pb, pa));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

TEST(QGramCosineTest, MergeJoinMatchesHashProbeReference) {
  // Cosine now runs a merge-join over the key-sorted count vectors cached
  // at Build time; it must agree with the straightforward hash-probe dot
  // product over the same counts (tolerance-based: the two sum the shared
  // grams in different orders).
  Rng rng(314);
  for (size_t trial = 0; trial < 20; ++trial) {
    const size_t alphabet = 3 + rng.Uniform(8);
    Symbols a(20 + rng.Uniform(200)), b(20 + rng.Uniform(200));
    for (auto& s : a) s = static_cast<SymbolId>(rng.Uniform(alphabet));
    for (auto& s : b) s = static_cast<SymbolId>(rng.Uniform(alphabet));
    const size_t q = 1 + rng.Uniform(4);
    QGramProfile pa = QGramProfile::Build(a, q, alphabet);
    QGramProfile pb = QGramProfile::Build(b, q, alphabet);

    double dot = 0.0;
    for (const auto& [gram, count] : pa.counts()) {
      const auto it = pb.counts().find(gram);
      if (it != pb.counts().end()) dot += count * it->second;
    }
    const double reference =
        (pa.norm() == 0.0 || pb.norm() == 0.0)
            ? 0.0
            : dot / (pa.norm() * pb.norm());
    EXPECT_NEAR(QGramProfile::Cosine(pa, pb), reference, 1e-12)
        << "trial " << trial;
  }
}

TEST(QGramProfileTest, SortedCountsMirrorHashCounts) {
  Symbols s = {0, 1, 0, 1, 2, 0, 1, 0};
  QGramProfile p = QGramProfile::Build(s, 2, 3);
  ASSERT_EQ(p.sorted_counts().size(), p.counts().size());
  double sum_sq = 0.0;
  uint64_t prev_key = 0;
  bool first = true;
  for (const auto& [key, count] : p.sorted_counts()) {
    if (!first) EXPECT_GT(key, prev_key);  // Strictly sorted, no dupes.
    prev_key = key;
    first = false;
    const auto it = p.counts().find(key);
    ASSERT_NE(it, p.counts().end());
    EXPECT_DOUBLE_EQ(it->second, count);
    sum_sq += count * count;
  }
  // The cached norm is the L2 norm of those counts.
  EXPECT_NEAR(p.norm(), std::sqrt(sum_sq), 1e-12);
}

TEST(QGramCosineTest, EmptyProfileGivesZero) {
  QGramProfile empty;
  Symbols a = {0, 1, 2};
  QGramProfile pa = QGramProfile::Build(a, 2, 3);
  EXPECT_DOUBLE_EQ(QGramProfile::Cosine(empty, pa), 0.0);
}

TEST(QGramClusterTest, RejectsBadOptions) {
  SequenceDatabase db(Alphabet::Synthetic(2));
  std::vector<int32_t> assign;
  QGramClusterOptions o;
  o.q = 0;
  EXPECT_TRUE(QGramCluster(db, o, &assign).IsInvalidArgument());
  o = QGramClusterOptions();
  o.num_clusters = 0;
  EXPECT_TRUE(QGramCluster(db, o, &assign).IsInvalidArgument());
}

TEST(QGramClusterTest, EmptyDatabaseOk) {
  SequenceDatabase db(Alphabet::Synthetic(2));
  std::vector<int32_t> assign;
  QGramClusterOptions o;
  EXPECT_TRUE(QGramCluster(db, o, &assign).ok());
  EXPECT_TRUE(assign.empty());
}

TEST(QGramClusterTest, SeparatesTwoObviousSources) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 2;
  opts.sequences_per_cluster = 20;
  opts.alphabet_size = 6;
  opts.avg_length = 80;
  opts.outlier_fraction = 0.0;
  opts.spread = 0.2;
  opts.seed = 5;
  SequenceDatabase db = MakeSyntheticDataset(opts);

  QGramClusterOptions o;
  o.q = 3;
  o.num_clusters = 2;
  o.seed = 1;
  std::vector<int32_t> assign;
  ASSERT_TRUE(QGramCluster(db, o, &assign).ok());
  EvaluationSummary eval = Evaluate(db, assign);
  EXPECT_GT(eval.correct_fraction, 0.8);
}

TEST(QGramClusterTest, AssignsEverySequence) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 3;
  opts.sequences_per_cluster = 10;
  opts.alphabet_size = 5;
  opts.avg_length = 50;
  opts.outlier_fraction = 0.0;
  opts.seed = 6;
  SequenceDatabase db = MakeSyntheticDataset(opts);
  QGramClusterOptions o;
  o.num_clusters = 3;
  std::vector<int32_t> assign;
  ASSERT_TRUE(QGramCluster(db, o, &assign).ok());
  ASSERT_EQ(assign.size(), db.size());
  for (int32_t a : assign) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

TEST(QGramClusterTest, DeterministicGivenSeed) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 2;
  opts.sequences_per_cluster = 10;
  opts.alphabet_size = 4;
  opts.avg_length = 40;
  opts.seed = 7;
  SequenceDatabase db = MakeSyntheticDataset(opts);
  QGramClusterOptions o;
  o.num_clusters = 2;
  o.seed = 3;
  std::vector<int32_t> a1, a2;
  ASSERT_TRUE(QGramCluster(db, o, &a1).ok());
  ASSERT_TRUE(QGramCluster(db, o, &a2).ok());
  EXPECT_EQ(a1, a2);
}

}  // namespace
}  // namespace cluseq
