#include "obs/run_report.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/cluseq.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "synth/dataset.h"

namespace cluseq {
namespace {

SequenceDatabase SmallDb() {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 2;
  opts.sequences_per_cluster = 15;
  opts.alphabet_size = 8;
  opts.avg_length = 60;
  opts.outlier_fraction = 0.0;
  opts.spread = 0.25;
  opts.seed = 23;
  return MakeSyntheticDataset(opts);
}

CluseqOptions SmallOptions() {
  CluseqOptions o;
  o.initial_clusters = 2;
  o.similarity_threshold = 1.05;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 6;
  o.pst.max_depth = 4;
  o.pst.smoothing_p_min = 1e-4;
  o.rng_seed = 7;
  return o;
}

// The CLI's --metrics_json is exactly WriteRunReportJson over
// clusterer.report(); round-tripping the report through the JSON layer and
// matching it against ClusteringResult::iteration_stats covers the same
// contract without shelling out to the binary.
TEST(RunReportTest, RoundTripMatchesIterationStats) {
  SequenceDatabase db = SmallDb();
  CluseqClusterer clusterer(db, SmallOptions());
  ClusteringResult result;
  ASSERT_TRUE(clusterer.Run(&result).ok());

  const obs::RunReport* report = clusterer.report();
  ASSERT_NE(report, nullptr);
  ASSERT_EQ(report->iterations.size(), result.iteration_stats.size());
  ASSERT_GT(result.iteration_stats.size(), 0u);

  std::ostringstream out;
  obs::WriteRunReportJson(*report, out);
  obs::JsonValue root;
  ASSERT_TRUE(obs::ParseJson(out.str(), &root).ok()) << out.str();

  EXPECT_EQ(root.Find("schema")->string_value, "cluseq.run_report.v1");
  EXPECT_EQ(root.Find("input")->Find("num_sequences")->number,
            static_cast<double>(db.size()));

  const obs::JsonValue* summary = root.Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Find("num_clusters")->number,
            static_cast<double>(result.num_clusters()));
  EXPECT_EQ(summary->Find("num_unclustered")->number,
            static_cast<double>(result.num_unclustered));
  EXPECT_EQ(summary->Find("iterations")->number,
            static_cast<double>(result.iterations));

  // Prefilter block: round-trips the report fields exactly.
  const obs::JsonValue* prefilter = summary->Find("prefilter");
  ASSERT_NE(prefilter, nullptr);
  EXPECT_EQ(prefilter->Find("enabled")->bool_value,
            report->prefilter_enabled);
  EXPECT_DOUBLE_EQ(prefilter->Find("skip_ratio")->number,
                   report->prefilter_skip_ratio);
  EXPECT_EQ(prefilter->Find("early_exits")->number,
            static_cast<double>(report->prefilter_early_exits));
  EXPECT_TRUE(report->prefilter_enabled);  // SmallOptions leaves defaults.

  const obs::JsonValue* iterations = root.Find("iterations");
  ASSERT_NE(iterations, nullptr);
  ASSERT_TRUE(iterations->is_array());
  ASSERT_EQ(iterations->array.size(), result.iteration_stats.size());
  for (size_t i = 0; i < result.iteration_stats.size(); ++i) {
    const IterationStats& expect = result.iteration_stats[i];
    const obs::JsonValue* stats = iterations->array[i].Find("stats");
    ASSERT_NE(stats, nullptr) << "iteration " << i;
    EXPECT_EQ(stats->Find("iteration")->number,
              static_cast<double>(expect.iteration));
    EXPECT_EQ(stats->Find("new_clusters")->number,
              static_cast<double>(expect.new_clusters));
    EXPECT_EQ(stats->Find("consolidated")->number,
              static_cast<double>(expect.consolidated));
    EXPECT_EQ(stats->Find("clusters_after")->number,
              static_cast<double>(expect.clusters_after));
    EXPECT_EQ(stats->Find("unclustered")->number,
              static_cast<double>(expect.unclustered));
    EXPECT_DOUBLE_EQ(stats->Find("log_threshold")->number,
                     expect.log_threshold);
    EXPECT_DOUBLE_EQ(stats->Find("seconds")->number, expect.seconds);
    EXPECT_EQ(stats->Find("refrozen_clusters")->number,
              static_cast<double>(expect.refrozen_clusters));
    EXPECT_DOUBLE_EQ(stats->Find("scan_seconds")->number,
                     expect.scan_seconds);
    EXPECT_EQ(stats->Find("pst_nodes_total")->number,
              static_cast<double>(expect.pst_nodes_total));
    EXPECT_EQ(stats->Find("pst_pruned_total")->number,
              static_cast<double>(expect.pst_pruned_total));
    EXPECT_DOUBLE_EQ(stats->Find("seed_seconds")->number,
                     expect.seed_seconds);
    EXPECT_DOUBLE_EQ(stats->Find("join_seconds")->number,
                     expect.join_seconds);
    EXPECT_DOUBLE_EQ(stats->Find("consolidate_seconds")->number,
                     expect.consolidate_seconds);
    EXPECT_DOUBLE_EQ(stats->Find("prefilter_skip_ratio")->number,
                     expect.prefilter_skip_ratio);
    EXPECT_EQ(stats->Find("prefilter_dp_early_exits")->number,
              static_cast<double>(expect.prefilter_dp_early_exits));
    // Per-iteration metrics snapshot rides along with the stats.
    const obs::JsonValue* metrics = iterations->array[i].Find("metrics");
    ASSERT_NE(metrics, nullptr) << "iteration " << i;
    EXPECT_TRUE(metrics->Find("counters")->is_object());
    // So does the per-phase perf block: rusage sampling never fails, so
    // every iteration carries the seed/scan/join/consolidate/adjust_t
    // phases even when perf_event_open is denied.
    const obs::JsonValue* perf = iterations->array[i].Find("perf");
    ASSERT_NE(perf, nullptr) << "iteration " << i;
    ASSERT_TRUE(perf->is_array());
    ASSERT_EQ(perf->array.size(), expect.phase_perf.size());
    for (size_t p = 0; p < perf->array.size(); ++p) {
      const obs::JsonValue& phase = perf->array[p];
      EXPECT_EQ(phase.Find("phase")->string_value,
                expect.phase_perf[p].phase);
      EXPECT_TRUE(phase.Find("utime_seconds")->is_number());
      EXPECT_TRUE(phase.Find("maxrss_kb")->is_number());
      EXPECT_GT(phase.Find("maxrss_kb")->number, 0.0);
    }
  }

  // Phase order within an iteration is the loop's phase order.
  const std::vector<obs::PhasePerf>& first_perf =
      result.iteration_stats[0].phase_perf;
  ASSERT_EQ(first_perf.size(), 5u);
  EXPECT_EQ(first_perf[0].phase, "seed");
  EXPECT_EQ(first_perf[1].phase, "scan");
  EXPECT_EQ(first_perf[2].phase, "join");
  EXPECT_EQ(first_perf[3].phase, "consolidate");
  EXPECT_EQ(first_perf[4].phase, "adjust_t");

  // The summary.perf availability flag and the per-phase counter keys must
  // agree: counters present iff the process-wide set opened. Either way the
  // rusage aggregates are filled (rusage never fails).
  const obs::JsonValue* perf_summary = root.Find("summary")->Find("perf");
  ASSERT_NE(perf_summary, nullptr);
  ASSERT_NE(perf_summary->Find("available"), nullptr);
  const bool available = perf_summary->Find("available")->bool_value;
  EXPECT_EQ(available, report->perf_available);
  for (const obs::PhasePerf& phase : first_perf) {
    EXPECT_EQ(!phase.counters.empty(), available) << phase.phase;
  }
  EXPECT_TRUE(perf_summary->Find("utime_seconds")->is_number());
  EXPECT_GT(perf_summary->Find("maxrss_kb")->number, 0.0);
  if (available) {
    EXPECT_NE(perf_summary->Find("cycles"), nullptr);
  } else {
    EXPECT_EQ(perf_summary->Find("cycles"), nullptr);
  }
}

TEST(RunReportTest, PerfSummaryAggregatesHandBuiltPhases) {
  // Serialization-level coverage of the perf-available path, independent of
  // whether this machine grants perf_event_open: hand-build the phase
  // records the collector would have produced.
  obs::RunReport report;
  report.perf_available = true;
  IterationStats it1;
  it1.phase_perf.push_back(obs::PhasePerf{
      "scan", {{"cycles", 1000}, {"instructions", 2000}}, 0.5, 0.1, 2, 800});
  it1.phase_perf.push_back(
      obs::PhasePerf{"join", {{"cycles", 100}}, 0.1, 0.0, 0, 900});
  IterationStats it2;
  it2.phase_perf.push_back(obs::PhasePerf{
      "scan", {{"cycles", 3000}, {"instructions", 4000}}, 0.25, 0.0, 1, 850});
  report.iterations = {it1, it2};

  std::ostringstream out;
  obs::WriteRunReportJson(report, out);
  obs::JsonValue root;
  ASSERT_TRUE(obs::ParseJson(out.str(), &root).ok()) << out.str();

  const obs::JsonValue* perf = root.Find("summary")->Find("perf");
  ASSERT_NE(perf, nullptr);
  EXPECT_TRUE(perf->Find("available")->bool_value);
  EXPECT_EQ(perf->Find("cycles")->number, 4100.0);
  EXPECT_EQ(perf->Find("instructions")->number, 6000.0);
  EXPECT_DOUBLE_EQ(perf->Find("utime_seconds")->number, 0.85);
  EXPECT_DOUBLE_EQ(perf->Find("stime_seconds")->number, 0.1);
  EXPECT_EQ(perf->Find("major_faults")->number, 3.0);
  EXPECT_EQ(perf->Find("maxrss_kb")->number, 900.0);  // High-water mark.

  const obs::JsonValue* iterations = root.Find("iterations");
  ASSERT_EQ(iterations->array.size(), 2u);
  const obs::JsonValue* it1_perf = iterations->array[0].Find("perf");
  ASSERT_NE(it1_perf, nullptr);
  ASSERT_EQ(it1_perf->array.size(), 2u);
  EXPECT_EQ(it1_perf->array[0].Find("phase")->string_value, "scan");
  EXPECT_EQ(it1_perf->array[0].Find("cycles")->number, 1000.0);
  EXPECT_EQ(it1_perf->array[0].Find("instructions")->number, 2000.0);
  EXPECT_EQ(it1_perf->array[1].Find("phase")->string_value, "join");
  EXPECT_EQ(it1_perf->array[1].Find("instructions"), nullptr);
}

TEST(RunReportTest, UnavailablePerfOmitsCounterKeys) {
  // The degraded contract: available=false, rusage aggregates still there,
  // and NO counter keys — consumers must never see zeros masquerading as
  // measurements.
  obs::RunReport report;
  report.perf_available = false;
  IterationStats it1;
  it1.phase_perf.push_back(obs::PhasePerf{"scan", {}, 0.5, 0.1, 0, 700});
  report.iterations = {it1};

  std::ostringstream out;
  obs::WriteRunReportJson(report, out);
  obs::JsonValue root;
  ASSERT_TRUE(obs::ParseJson(out.str(), &root).ok()) << out.str();

  const obs::JsonValue* perf = root.Find("summary")->Find("perf");
  ASSERT_NE(perf, nullptr);
  EXPECT_FALSE(perf->Find("available")->bool_value);
  EXPECT_EQ(perf->Find("cycles"), nullptr);
  EXPECT_EQ(perf->Find("instructions"), nullptr);
  EXPECT_DOUBLE_EQ(perf->Find("utime_seconds")->number, 0.5);
  EXPECT_EQ(perf->Find("maxrss_kb")->number, 700.0);
  const obs::JsonValue* it_perf =
      root.Find("iterations")->array[0].Find("perf");
  ASSERT_NE(it_perf, nullptr);
  EXPECT_EQ(it_perf->array[0].Find("cycles"), nullptr);
  EXPECT_GT(it_perf->array[0].Find("maxrss_kb")->number, 0.0);
}

TEST(RunReportTest, ReportEchoesOptionsAndMetrics) {
  SequenceDatabase db = SmallDb();
  const CluseqOptions options = SmallOptions();
  CluseqClusterer clusterer(db, options);
  ClusteringResult result;
  ASSERT_TRUE(clusterer.Run(&result).ok());

  std::ostringstream out;
  obs::WriteRunReportJson(*clusterer.report(), out);
  obs::JsonValue root;
  ASSERT_TRUE(obs::ParseJson(out.str(), &root).ok());

  const obs::JsonValue* opts = root.Find("options");
  ASSERT_NE(opts, nullptr);
  EXPECT_EQ(opts->Find("initial_clusters")->number,
            static_cast<double>(options.initial_clusters));
  EXPECT_DOUBLE_EQ(opts->Find("similarity_threshold")->number,
                   options.similarity_threshold);
  EXPECT_EQ(opts->Find("pst")->Find("max_depth")->number,
            static_cast<double>(options.pst.max_depth));

  // The run must have advanced the global registry: the final snapshot's
  // cluster-iteration counter strictly exceeds the baseline's.
  const obs::JsonValue* baseline = root.Find("baseline_metrics");
  const obs::JsonValue* final_metrics = root.Find("final_metrics");
  ASSERT_NE(baseline, nullptr);
  ASSERT_NE(final_metrics, nullptr);
  const obs::JsonValue* before =
      baseline->Find("counters")->Find("cluseq.iterations");
  const obs::JsonValue* after =
      final_metrics->Find("counters")->Find("cluseq.iterations");
  ASSERT_NE(after, nullptr);
  const double before_value = before != nullptr ? before->number : 0.0;
  EXPECT_EQ(after->number - before_value,
            static_cast<double>(result.iterations));

  // No eval block: the clusterer itself never evaluates; the CLI fills it.
  EXPECT_EQ(root.Find("eval"), nullptr);
}

TEST(RunReportTest, CheckpointBlockRoundTrips) {
  obs::RunReport report;
  report.checkpoint_enabled = true;
  report.checkpoint_saves = 7;
  report.checkpoint_last_iteration = 6;
  report.resumed_from_checkpoint = true;
  report.interrupted = true;
  report.options.checkpoint_dir = "/tmp/ck";
  report.options.checkpoint_every = 2;
  report.options.resume = true;
  std::ostringstream out;
  obs::WriteRunReportJson(report, out);
  obs::JsonValue root;
  ASSERT_TRUE(obs::ParseJson(out.str(), &root).ok()) << out.str();

  const obs::JsonValue* ckpt = root.Find("summary")->Find("checkpoint");
  ASSERT_NE(ckpt, nullptr);
  EXPECT_TRUE(ckpt->Find("enabled")->bool_value);
  EXPECT_EQ(ckpt->Find("saves")->number, 7.0);
  EXPECT_EQ(ckpt->Find("last_iteration")->number, 6.0);
  EXPECT_TRUE(ckpt->Find("resumed")->bool_value);
  EXPECT_TRUE(ckpt->Find("interrupted")->bool_value);

  // Options echo carries the checkpoint configuration.
  const obs::JsonValue* opts = root.Find("options");
  EXPECT_EQ(opts->Find("checkpoint_dir")->string_value, "/tmp/ck");
  EXPECT_EQ(opts->Find("checkpoint_every")->number, 2.0);
  EXPECT_TRUE(opts->Find("resume")->bool_value);
}

TEST(RunReportTest, CheckpointBlockDefaultsOffForPlainRuns) {
  SequenceDatabase db = SmallDb();
  CluseqClusterer clusterer(db, SmallOptions());
  ClusteringResult result;
  ASSERT_TRUE(clusterer.Run(&result).ok());
  std::ostringstream out;
  obs::WriteRunReportJson(*clusterer.report(), out);
  obs::JsonValue root;
  ASSERT_TRUE(obs::ParseJson(out.str(), &root).ok());
  const obs::JsonValue* ckpt = root.Find("summary")->Find("checkpoint");
  ASSERT_NE(ckpt, nullptr);
  EXPECT_FALSE(ckpt->Find("enabled")->bool_value);
  EXPECT_EQ(ckpt->Find("saves")->number, 0.0);
  EXPECT_FALSE(ckpt->Find("resumed")->bool_value);
  EXPECT_FALSE(ckpt->Find("interrupted")->bool_value);
  EXPECT_FALSE(result.interrupted);
  EXPECT_FALSE(result.resumed_from_checkpoint);
}

TEST(RunReportTest, EvalBlockSerializesWhenPresent) {
  obs::RunReport report;
  report.has_eval = true;
  report.eval_correct_fraction = 0.9;
  report.eval_macro_f1 = 0.8;
  report.eval_purity = 0.95;
  report.eval_nmi = 0.7;
  report.eval_found_clusters = 3;
  report.eval_unassigned = 2;
  std::ostringstream out;
  obs::WriteRunReportJson(report, out);
  obs::JsonValue root;
  ASSERT_TRUE(obs::ParseJson(out.str(), &root).ok());
  const obs::JsonValue* eval = root.Find("eval");
  ASSERT_NE(eval, nullptr);
  EXPECT_DOUBLE_EQ(eval->Find("correct_fraction")->number, 0.9);
  EXPECT_DOUBLE_EQ(eval->Find("macro_f1")->number, 0.8);
  EXPECT_DOUBLE_EQ(eval->Find("purity")->number, 0.95);
  EXPECT_DOUBLE_EQ(eval->Find("nmi")->number, 0.7);
  EXPECT_EQ(eval->Find("found_clusters")->number, 3.0);
  EXPECT_EQ(eval->Find("unassigned")->number, 2.0);
}

}  // namespace
}  // namespace cluseq
