// Cooperative cancellation (util/cancellation.h + the Run() poll points):
// token semantics, the --max_seconds-style soft deadline, interrupted
// results with and without checkpointing, and the guarantee that a run
// cancelled at any iteration resumes to the exact clustering an
// uninterrupted run produces. The SIGKILL chaos sweep is in
// chaos_resume_test.cc; format-level corruption in checkpoint_test.cc.

#include "util/cancellation.h"

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/cluseq.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "seq/sequence_database.h"
#include "synth/dataset.h"

namespace cluseq {
namespace {

SequenceDatabase PlantedDb(uint64_t seed = 11) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 3;
  opts.sequences_per_cluster = 10;
  opts.alphabet_size = 8;
  opts.avg_length = 60;
  opts.outlier_fraction = 0.1;
  opts.spread = 0.25;
  opts.seed = seed;
  return MakeSyntheticDataset(opts);
}

CluseqOptions FastOptions() {
  CluseqOptions o;
  o.initial_clusters = 2;
  o.similarity_threshold = 1.05;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 10;
  o.pst.max_depth = 4;
  o.pst.smoothing_p_min = 1e-4;
  o.rng_seed = 7;
  return o;
}

std::string MakeTempDir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + tag + "_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return made;
}

void ExpectIdenticalResults(const ClusteringResult& x,
                            const ClusteringResult& y) {
  EXPECT_EQ(x.clusters, y.clusters);
  EXPECT_EQ(x.best_cluster, y.best_cluster);
  EXPECT_EQ(x.best_log_sim, y.best_log_sim);
  EXPECT_EQ(x.final_log_threshold, y.final_log_threshold);
  EXPECT_EQ(x.num_unclustered, y.num_unclustered);
}

// Shared with the save hook (a C function pointer, so no captures).
CancellationToken* g_hook_token = nullptr;
uint64_t g_cancel_at_save = 0;
uint64_t g_hook_saves_seen = 0;

void CancelAtNthSave(uint64_t /*iteration*/, const std::string& /*path*/) {
  if (g_hook_saves_seen++ == g_cancel_at_save && g_hook_token != nullptr) {
    g_hook_token->RequestCancel();
  }
}

/// Installs CancelAtNthSave for one test body and always clears it.
class ScopedCancelHook {
 public:
  ScopedCancelHook(CancellationToken* token, uint64_t cancel_at) {
    g_hook_token = token;
    g_cancel_at_save = cancel_at;
    g_hook_saves_seen = 0;
    SetCheckpointSaveHookForTest(&CancelAtNthSave);
  }
  ~ScopedCancelHook() {
    SetCheckpointSaveHookForTest(nullptr);
    g_hook_token = nullptr;
  }
};

TEST(CancellationTokenTest, LatchesAndReports) {
  CancellationToken token;
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.Cancelled());
  token.RequestCancel();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_TRUE(token.Cancelled());
  token.RequestCancel();  // Idempotent.
  EXPECT_TRUE(token.Cancelled());
}

TEST(CancellationTokenTest, ZeroTimeoutExpiresImmediately) {
  CancellationToken token;
  token.SetTimeout(0.0);
  EXPECT_TRUE(token.Cancelled());
  // The deadline alone never reports as an explicit request.
  EXPECT_FALSE(token.cancel_requested());

  CancellationToken negative;
  negative.SetTimeout(-5.0);
  EXPECT_TRUE(negative.Cancelled());
}

TEST(CancellationTokenTest, DistantTimeoutDoesNotFire) {
  CancellationToken token;
  token.SetTimeout(3600.0);
  EXPECT_FALSE(token.Cancelled());
  token.RequestCancel();  // An explicit request still wins instantly.
  EXPECT_TRUE(token.Cancelled());
}

TEST(CancellationRunTest, InterruptWithoutCheckpointingReportsLastBoundary) {
  SequenceDatabase db = PlantedDb();
  CancellationToken token;
  token.RequestCancel();

  CluseqOptions o = FastOptions();
  o.cancellation = &token;
  CluseqClusterer clusterer(db, o);
  ClusteringResult result;
  ASSERT_TRUE(clusterer.Run(&result).ok());

  // Cancelled before iteration 0 ran: the only completed boundary is the
  // empty pre-loop state.
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_EQ(result.num_unclustered, db.size());
  ASSERT_EQ(result.best_cluster.size(), db.size());
  for (int32_t c : result.best_cluster) EXPECT_EQ(c, -1);

  const obs::RunReport* report = clusterer.report();
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->interrupted);
  EXPECT_FALSE(report->checkpoint_enabled);
  EXPECT_EQ(report->checkpoint_saves, 0u);
}

TEST(CancellationRunTest, PreCancelledCheckpointedRunResumesToFullResult) {
  SequenceDatabase db = PlantedDb();
  ClusteringResult plain;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &plain).ok());

  const std::string dir = MakeTempDir("cancel_pre");
  CancellationToken token;
  token.RequestCancel();

  CluseqOptions o = FastOptions();
  o.checkpoint_dir = dir;
  o.checkpoint_every = 1;
  o.cancellation = &token;
  ClusteringResult interrupted;
  ASSERT_TRUE(RunCluseq(db, o, &interrupted).ok());
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.iterations, 0u);

  // The boundary-0 checkpoint was flushed, so a resumed run replays the
  // whole clustering and lands exactly where the plain run did.
  CluseqOptions resume = FastOptions();
  resume.checkpoint_dir = dir;
  resume.checkpoint_every = 1;
  resume.resume = true;
  ClusteringResult resumed;
  ASSERT_TRUE(RunCluseq(db, resume, &resumed).ok());
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_TRUE(resumed.resumed_from_checkpoint);
  ExpectIdenticalResults(resumed, plain);
  std::filesystem::remove_all(dir);
}

TEST(CancellationRunTest, CancelAtEverySaveResumesIdentically) {
  SequenceDatabase db = PlantedDb();
  ClusteringResult plain;
  ASSERT_TRUE(RunCluseq(db, FastOptions(), &plain).ok());

  // With checkpoint_every=1 a converged run saves boundaries
  // 0 .. iterations-1 (the fixed-point iteration breaks before its
  // capture); request cancellation inside each save hook in turn and
  // demand the resumed run always reaches the plain result bit-for-bit.
  for (uint64_t cancel_at = 0; cancel_at < plain.iterations; ++cancel_at) {
    SCOPED_TRACE("cancel_at=" + std::to_string(cancel_at));
    const std::string dir = MakeTempDir("cancel_sweep");
    CancellationToken token;
    CluseqOptions o = FastOptions();
    o.checkpoint_dir = dir;
    o.checkpoint_every = 1;
    o.cancellation = &token;

    ClusteringResult interrupted;
    {
      ScopedCancelHook hook(&token, cancel_at);
      CluseqClusterer clusterer(db, o);
      ASSERT_TRUE(clusterer.Run(&interrupted).ok());
      ASSERT_TRUE(interrupted.interrupted);
      const obs::RunReport* report = clusterer.report();
      ASSERT_NE(report, nullptr);
      EXPECT_TRUE(report->interrupted);
      EXPECT_TRUE(report->checkpoint_enabled);
    }
    // The interrupted result is a prefix state: the boundary it reported
    // is the iteration the resumed run starts from.
    EXPECT_LE(interrupted.iterations, plain.iterations);

    CluseqOptions resume = FastOptions();
    resume.checkpoint_dir = dir;
    resume.checkpoint_every = 1;
    resume.resume = true;
    ClusteringResult resumed;
    ASSERT_TRUE(RunCluseq(db, resume, &resumed).ok());
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_TRUE(resumed.resumed_from_checkpoint);
    EXPECT_EQ(resumed.iterations, plain.iterations);
    ExpectIdenticalResults(resumed, plain);
    std::filesystem::remove_all(dir);
  }
}

TEST(CancellationRunTest, ResumeBumpsTheResumesCounter) {
  SequenceDatabase db = PlantedDb();
  const std::string dir = MakeTempDir("cancel_counter");
  obs::Counter& resumes =
      obs::MetricsRegistry::Get().GetCounter("checkpoint.resumes");
  const uint64_t before = resumes.Value();

  CluseqOptions o = FastOptions();
  o.checkpoint_dir = dir;
  o.checkpoint_every = 1;
  ClusteringResult first;
  ASSERT_TRUE(RunCluseq(db, o, &first).ok());
  EXPECT_EQ(resumes.Value(), before);  // A fresh run is not a resume.

  o.resume = true;
  ClusteringResult resumed;
  ASSERT_TRUE(RunCluseq(db, o, &resumed).ok());
  EXPECT_TRUE(resumed.resumed_from_checkpoint);
  EXPECT_EQ(resumes.Value(), before + 1);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cluseq
