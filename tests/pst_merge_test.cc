// Tests for PST merging, TopContexts inspection and per-depth stats.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "pst/pst.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

PstOptions Opts(size_t depth, uint64_t c) {
  PstOptions o;
  o.max_depth = depth;
  o.significance_threshold = c;
  o.smoothing_p_min = 0.0;
  return o;
}

Symbols RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

void CollectCounts(const Pst& pst, PstNodeId id,
                   std::map<Symbols, uint64_t>* out) {
  (*out)[pst.NodeLabel(id)] = pst.NodeCount(id);
  for (const auto& [sym, child] : pst.Children(id)) {
    CollectCounts(pst, child, out);
  }
}

TEST(PstMergeTest, MergeEqualsJointConstruction) {
  Symbols a = RandomText(200, 4, 1);
  Symbols b = RandomText(150, 4, 2);

  Pst joint(4, Opts(5, 2));
  joint.InsertSequence(a);
  joint.InsertSequence(b);

  Pst first(4, Opts(5, 2));
  first.InsertSequence(a);
  Pst second(4, Opts(5, 2));
  second.InsertSequence(b);
  ASSERT_TRUE(first.MergeFrom(second).ok());

  std::map<Symbols, uint64_t> expect, got;
  CollectCounts(joint, kPstRoot, &expect);
  CollectCounts(first, kPstRoot, &got);
  EXPECT_EQ(expect, got);
  EXPECT_EQ(first.total_symbols(), joint.total_symbols());
}

TEST(PstMergeTest, MergePreservesQueries) {
  Pst a(3, Opts(4, 2)), b(3, Opts(4, 2)), joint(3, Opts(4, 2));
  Symbols ta = RandomText(120, 3, 3), tb = RandomText(120, 3, 4);
  a.InsertSequence(ta);
  b.InsertSequence(tb);
  joint.InsertSequence(ta);
  joint.InsertSequence(tb);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    Symbols ctx(rng.Uniform(5));
    for (auto& s : ctx) s = static_cast<SymbolId>(rng.Uniform(3));
    SymbolId next = static_cast<SymbolId>(rng.Uniform(3));
    EXPECT_DOUBLE_EQ(a.ConditionalProbability(ctx, next),
                     joint.ConditionalProbability(ctx, next));
  }
}

TEST(PstMergeTest, AlphabetMismatchRejected) {
  Pst a(3, Opts(4, 2)), b(4, Opts(4, 2));
  EXPECT_TRUE(a.MergeFrom(b).IsInvalidArgument());
}

TEST(PstMergeTest, MergeIntoEmptyCopies) {
  Pst a(3, Opts(4, 2)), b(3, Opts(4, 2));
  b.InsertSequence(RandomText(80, 3, 6));
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.total_symbols(), b.total_symbols());
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
}

TEST(PstMergeTest, MergeEmptyIsNoop) {
  Pst a(3, Opts(4, 2)), empty(3, Opts(4, 2));
  a.InsertSequence(RandomText(80, 3, 7));
  size_t nodes = a.NumNodes();
  uint64_t total = a.total_symbols();
  ASSERT_TRUE(a.MergeFrom(empty).ok());
  EXPECT_EQ(a.NumNodes(), nodes);
  EXPECT_EQ(a.total_symbols(), total);
}

TEST(PstMergeTest, DeeperSourceClampedToOwnDepth) {
  Pst shallow(3, Opts(2, 1));
  Pst deep(3, Opts(6, 1));
  deep.InsertSequence(RandomText(100, 3, 8));
  ASSERT_TRUE(shallow.MergeFrom(deep).ok());
  EXPECT_LE(shallow.Stats().max_depth, 2u);
}

TEST(PstMergeTest, RespectsMemoryBudget) {
  PstOptions budgeted = Opts(8, 2);
  budgeted.max_memory_bytes = 16 * 1024;
  Pst a(4, budgeted);
  Pst b(4, Opts(8, 2));
  b.InsertSequence(RandomText(3000, 4, 9));
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_LE(a.ApproxMemoryBytes(), size_t{16} * 1024);
}

TEST(PstStatsTest, NodesPerDepthSumsToNodeCount) {
  Pst pst(4, Opts(5, 2));
  pst.InsertSequence(RandomText(200, 4, 10));
  PstStats stats = pst.Stats();
  size_t sum = 0;
  for (size_t n : stats.nodes_per_depth) sum += n;
  EXPECT_EQ(sum, stats.num_nodes);
  ASSERT_FALSE(stats.nodes_per_depth.empty());
  EXPECT_EQ(stats.nodes_per_depth[0], 1u);  // The root.
  EXPECT_EQ(stats.nodes_per_depth.size(), stats.max_depth + 1);
}

TEST(PstTopContextsTest, OrderedByCount) {
  // "ababab...": context "a" and "b" dominate.
  Symbols text;
  for (int i = 0; i < 100; ++i) text.push_back(static_cast<SymbolId>(i % 2));
  Pst pst(2, Opts(4, 1));
  pst.InsertSequence(text);
  auto top = pst.TopContexts(5);
  ASSERT_GE(top.size(), 2u);
  EXPECT_GE(top[0].count, top[1].count);
  EXPECT_EQ(top[0].context.size(), 1u);  // Shortest contexts rank first.
  // In abab..., 'a' is always followed by 'b'.
  for (const auto& info : top) {
    if (info.context == Symbols{0}) {
      EXPECT_EQ(info.most_likely_next, 1u);
      EXPECT_DOUBLE_EQ(info.most_likely_probability, 1.0);
    }
  }
}

TEST(PstTopContextsTest, LimitRespected) {
  Pst pst(4, Opts(5, 1));
  pst.InsertSequence(RandomText(300, 4, 11));
  EXPECT_LE(pst.TopContexts(3).size(), 3u);
  EXPECT_TRUE(Pst(4, Opts(5, 1)).TopContexts(3).empty());
}

}  // namespace
}  // namespace cluseq
