// The batched (FrozenBank) scan is a pure performance switch: a full
// clustering run with batched_scan on must produce identical results to the
// per-cluster serial scan — same clusters, same memberships, same scores,
// same threshold trajectory — and Classify() must agree on every sequence.
// Also covers the incremental re-freeze: a converged iteration that absorbs
// no new segments must recompile zero cluster snapshots.

#include "core/cluseq.h"

#include <gtest/gtest.h>

#include "synth/dataset.h"

namespace cluseq {
namespace {

SequenceDatabase PlantedDb(size_t clusters, size_t per_cluster,
                           double outliers, uint64_t seed,
                           double spread = 0.25) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = clusters;
  opts.sequences_per_cluster = per_cluster;
  opts.alphabet_size = 8;
  opts.avg_length = 80;
  opts.outlier_fraction = outliers;
  opts.spread = spread;
  opts.seed = seed;
  return MakeSyntheticDataset(opts);
}

CluseqOptions FastOptions() {
  CluseqOptions o;
  o.initial_clusters = 2;
  o.similarity_threshold = 1.05;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 12;
  o.pst.max_depth = 5;
  o.pst.smoothing_p_min = 1e-4;
  o.rng_seed = 7;
  return o;
}

void ExpectIdenticalResults(const ClusteringResult& a,
                            const ClusteringResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.final_log_threshold, b.final_log_threshold);
  EXPECT_EQ(a.num_unclustered, b.num_unclustered);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t ci = 0; ci < a.clusters.size(); ++ci) {
    EXPECT_EQ(a.clusters[ci], b.clusters[ci]) << "cluster " << ci;
  }
  EXPECT_EQ(a.best_cluster, b.best_cluster);
  EXPECT_EQ(a.best_log_sim, b.best_log_sim);
  ASSERT_EQ(a.iteration_stats.size(), b.iteration_stats.size());
  for (size_t i = 0; i < a.iteration_stats.size(); ++i) {
    EXPECT_EQ(a.iteration_stats[i].log_threshold,
              b.iteration_stats[i].log_threshold);
    EXPECT_EQ(a.iteration_stats[i].clusters_after,
              b.iteration_stats[i].clusters_after);
    EXPECT_EQ(a.iteration_stats[i].unclustered,
              b.iteration_stats[i].unclustered);
  }
}

TEST(BatchedScanTest, OnAndOffProduceIdenticalClusterings) {
  for (uint64_t seed : {1u, 5u}) {
    SequenceDatabase db = PlantedDb(3, 15, 0.05, seed);
    CluseqOptions on = FastOptions();
    on.batched_scan = true;
    CluseqOptions off = FastOptions();
    off.batched_scan = false;
    ClusteringResult result_on, result_off;
    ASSERT_TRUE(RunCluseq(db, on, &result_on).ok());
    ASSERT_TRUE(RunCluseq(db, off, &result_off).ok());
    ExpectIdenticalResults(result_on, result_off);
  }
}

TEST(BatchedScanTest, OnAndOffIdenticalWithPruningAndThreads) {
  SequenceDatabase db = PlantedDb(2, 12, 0.0, 9);
  CluseqOptions base = FastOptions();
  base.pst.max_memory_bytes = 64 * 1024;  // Order-dependent pruning path.
  base.num_threads = 4;
  CluseqOptions on = base, off = base;
  on.batched_scan = true;
  off.batched_scan = false;
  ClusteringResult result_on, result_off;
  ASSERT_TRUE(RunCluseq(db, on, &result_on).ok());
  ASSERT_TRUE(RunCluseq(db, off, &result_off).ok());
  ExpectIdenticalResults(result_on, result_off);
}

TEST(BatchedScanTest, ClassifyAgreesBetweenModes) {
  SequenceDatabase db = PlantedDb(3, 12, 0.0, 3);
  CluseqOptions on = FastOptions();
  on.batched_scan = true;
  CluseqOptions off = FastOptions();
  off.batched_scan = false;
  CluseqClusterer clusterer_on(db, on);
  CluseqClusterer clusterer_off(db, off);
  ClusteringResult r_on, r_off;
  ASSERT_TRUE(clusterer_on.Run(&r_on).ok());
  ASSERT_TRUE(clusterer_off.Run(&r_off).ok());
  for (size_t s = 0; s < db.size(); ++s) {
    double sim_on = 0.0, sim_off = 0.0;
    const int32_t c_on = clusterer_on.Classify(db[s], &sim_on);
    const int32_t c_off = clusterer_off.Classify(db[s], &sim_off);
    EXPECT_EQ(c_on, c_off) << "sequence " << s;
    EXPECT_EQ(sim_on, sim_off) << "sequence " << s;
  }
}

TEST(BatchedScanTest, StableIterationRefreezesZeroClusters) {
  // Once the clustering stops changing — no membership changes, no newly
  // absorbed segments, no new seed clusters — the rebuild skip keeps every
  // tree untouched and the dirty-bit re-freeze recompiles nothing. The
  // whole pipeline is seeded and single-threaded, so this trajectory is
  // deterministic: it ends in a run of stable iterations.
  SequenceDatabase db = PlantedDb(2, 20, 0.0, 11, /*spread=*/0.10);
  CluseqOptions o = FastOptions();
  o.max_iterations = 20;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  ASSERT_FALSE(result.iteration_stats.empty());
  const IterationStats& last = result.iteration_stats.back();
  EXPECT_EQ(last.new_clusters, 0u);
  EXPECT_EQ(last.refrozen_clusters, 0u)
      << "an iteration that absorbed nothing must reuse every snapshot";
  // Earlier iterations did real work: something was frozen at some point,
  // and the scan time is accounted inside the iteration time.
  size_t total_refrozen = 0;
  for (const IterationStats& s : result.iteration_stats) {
    total_refrozen += s.refrozen_clusters;
    EXPECT_GE(s.scan_seconds, 0.0);
    EXPECT_LE(s.scan_seconds, s.seconds);
  }
  EXPECT_GT(total_refrozen, 0u);
}

}  // namespace
}  // namespace cluseq
