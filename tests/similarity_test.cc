#include "core/similarity.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

Symbols RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

PstOptions SmoothedOptions(size_t depth, uint64_t c) {
  PstOptions o;
  o.max_depth = depth;
  o.significance_threshold = c;
  o.smoothing_p_min = 1e-4;
  return o;
}

BackgroundModel UniformBackground(size_t alphabet) {
  return BackgroundModel::FromCounts(std::vector<uint64_t>(alphabet, 1));
}

TEST(SimilarityTest, EmptySequenceIsNegInf) {
  Pst pst(2, SmoothedOptions(4, 1));
  pst.InsertSequence(Symbols{0, 1, 0, 1});
  BackgroundModel bg = UniformBackground(2);
  SimilarityResult r = ComputeSimilarity(pst, bg, Symbols{});
  EXPECT_TRUE(std::isinf(r.log_sim));
  EXPECT_LT(r.log_sim, 0.0);
}

TEST(SimilarityTest, PerfectlyPredictableSequenceScoresHigh) {
  // Train on a long deterministic pattern; querying the same pattern should
  // yield log-sim far above 0 (SIM >> 1).
  Symbols pattern;
  for (int i = 0; i < 100; ++i) pattern.insert(pattern.end(), {0, 1, 2});
  Pst pst(3, SmoothedOptions(4, 2));
  pst.InsertSequence(pattern);
  BackgroundModel bg = UniformBackground(3);
  Symbols query;
  for (int i = 0; i < 10; ++i) query.insert(query.end(), {0, 1, 2});
  SimilarityResult r = ComputeSimilarity(pst, bg, query);
  EXPECT_GT(r.log_sim, 5.0);
}

TEST(SimilarityTest, UnrelatedSequenceScoresLow) {
  Symbols pattern;
  for (int i = 0; i < 100; ++i) pattern.insert(pattern.end(), {0, 1, 2});
  Pst pst(4, SmoothedOptions(4, 2));
  pst.InsertSequence(pattern);
  BackgroundModel bg = UniformBackground(4);
  // Symbol 3 never appears in training.
  Symbols query(20, 3);
  SimilarityResult r = ComputeSimilarity(pst, bg, query);
  // Best segment of an unrelated sequence should not greatly exceed SIM=1
  // territory; certainly far below the matched case.
  EXPECT_LT(r.log_sim, 5.0);
}

TEST(SimilarityTest, BestSegmentBoundsAreValid) {
  Pst pst(3, SmoothedOptions(4, 1));
  pst.InsertSequence(RandomText(100, 3, 5));
  BackgroundModel bg = UniformBackground(3);
  Symbols query = RandomText(40, 3, 6);
  SimilarityResult r = ComputeSimilarity(pst, bg, query);
  EXPECT_LT(r.best_begin, r.best_end);
  EXPECT_LE(r.best_end, query.size());
}

TEST(SimilarityTest, SingleSymbolSequence) {
  Pst pst(2, SmoothedOptions(4, 1));
  pst.InsertSequence(Symbols{0, 0, 0, 1});
  BackgroundModel bg = UniformBackground(2);
  SimilarityResult r = ComputeSimilarity(pst, bg, Symbols{0});
  // X_1 = P(0)/p(0); P(0) = 3/4 (smoothed slightly), p(0) = 1/2.
  EXPECT_NEAR(r.log_sim,
              std::log(pst.ConditionalProbability({}, 0) / 0.5), 1e-9);
  EXPECT_EQ(r.best_begin, 0u);
  EXPECT_EQ(r.best_end, 1u);
}

// The paper's §4.3 recurrence against the explicit max over all segments.
struct DpParam {
  size_t alphabet;
  size_t train_len;
  size_t query_len;
  size_t depth;
  uint64_t c;
  uint64_t seed;
};

class SimilarityDpSweep : public ::testing::TestWithParam<DpParam> {};

TEST_P(SimilarityDpSweep, DpMatchesBruteForce) {
  const DpParam p = GetParam();
  Pst pst(p.alphabet, SmoothedOptions(p.depth, p.c));
  pst.InsertSequence(RandomText(p.train_len, p.alphabet, p.seed));
  BackgroundModel bg = UniformBackground(p.alphabet);
  for (uint64_t q = 0; q < 5; ++q) {
    Symbols query = RandomText(p.query_len, p.alphabet, p.seed * 31 + q);
    SimilarityResult fast = ComputeSimilarity(pst, bg, query);
    SimilarityResult slow = ComputeSimilarityBruteForce(pst, bg, query);
    EXPECT_NEAR(fast.log_sim, slow.log_sim, 1e-9);
    // The maximizing segment must achieve the same value (it may differ in
    // position on exact ties, so compare values, not indices).
    double fast_val = 0.0;
    for (size_t i = fast.best_begin; i < fast.best_end; ++i) {
      fast_val += pst.LogConditionalProbability(
                      std::span<const SymbolId>(query).subspan(0, i),
                      query[i]) -
                  bg.LogProbability(query[i]);
    }
    EXPECT_NEAR(fast_val, slow.log_sim, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimilarityDpSweep,
    ::testing::Values(DpParam{2, 100, 20, 4, 2, 1},
                      DpParam{3, 200, 30, 5, 3, 2},
                      DpParam{4, 150, 25, 3, 2, 3},
                      DpParam{5, 300, 40, 6, 5, 4},
                      DpParam{8, 400, 50, 4, 4, 5},
                      DpParam{2, 50, 60, 8, 1, 6},
                      DpParam{6, 250, 35, 5, 10, 7}));

// Worked example in the spirit of the paper's Table 1: train a PST with
// known counts and verify the DP combines X_i multiplicatively and takes
// the max over segments.
TEST(SimilarityTest, HandComputedExample) {
  // Alphabet {a=0, b=1}. Train on "aab aab aab ..." so that
  // P(a|<empty>)=2/3, P(b|a)=1/2, P(a|aa)=0... Using raw probabilities to
  // keep the arithmetic exact.
  PstOptions o;
  o.max_depth = 2;
  o.significance_threshold = 1;
  o.smoothing_p_min = 0.0;
  Pst pst(2, o);
  Symbols text;
  for (int i = 0; i < 10; ++i) text.insert(text.end(), {0, 0, 1});
  pst.InsertSequence(text);
  // Background: p(a) = p(b) = 1/2.
  BackgroundModel bg = UniformBackground(2);

  // Query "ab": X_1 = P(a)/0.5, with P(a) from the root vector.
  double p_a = pst.ConditionalProbability(Symbols{}, 0);
  double p_b_after_a = pst.ConditionalProbability(Symbols{0}, 1);
  Symbols query = {0, 1};
  SimilarityResult r = ComputeSimilarity(pst, bg, query);
  double x1 = std::log(p_a / 0.5);
  double x2 = std::log(p_b_after_a / 0.5);
  // Best segment is whichever of {s1}, {s2}, {s1 s2} maximizes the sum.
  double expected = std::max({x1, x2, x1 + x2});
  EXPECT_NEAR(r.log_sim, expected, 1e-12);
}

TEST(SimilarityTest, SegmentRestartBehavior) {
  // Construct a query whose middle is hostile so the best segment is a
  // suffix: train on all-a, query = b b a a a a.
  PstOptions o = SmoothedOptions(3, 1);
  Pst pst(2, o);
  pst.InsertSequence(Symbols(50, 0));
  BackgroundModel bg = UniformBackground(2);
  Symbols query = {1, 1, 0, 0, 0, 0};
  SimilarityResult r = ComputeSimilarity(pst, bg, query);
  EXPECT_GE(r.best_begin, 2u);  // Skips the hostile prefix.
  EXPECT_EQ(r.best_end, 6u);
  EXPECT_GT(r.log_sim, 0.0);
}

TEST(SimilarityTest, LongSequenceDoesNotOverflow) {
  // The paper's raw product would overflow IEEE doubles here; the log-domain
  // DP must stay finite.
  Pst pst(2, SmoothedOptions(4, 2));
  Symbols pattern;
  for (int i = 0; i < 500; ++i) pattern.insert(pattern.end(), {0, 1});
  pst.InsertSequence(pattern);
  BackgroundModel bg = UniformBackground(2);
  Symbols query;
  for (int i = 0; i < 5000; ++i) query.insert(query.end(), {0, 1});
  SimilarityResult r = ComputeSimilarity(pst, bg, query);
  EXPECT_TRUE(std::isfinite(r.log_sim));
  EXPECT_GT(r.log_sim, 100.0);  // exp would overflow — that's the point.
}

TEST(SimilarityTest, ExceedsThresholdHelper) {
  SimilarityResult r;
  r.log_sim = 1.0;
  EXPECT_TRUE(r.Exceeds(0.5));
  EXPECT_TRUE(r.Exceeds(1.0));
  EXPECT_FALSE(r.Exceeds(1.5));
}

TEST(SimilarityTest, TrainedOnClusterBeatsOtherCluster) {
  // Two distinct sources; similarity of a sequence to its own cluster's PST
  // should exceed its similarity to the other PST.
  Symbols a_text, b_text;
  for (int i = 0; i < 200; ++i) a_text.insert(a_text.end(), {0, 1, 2, 3});
  for (int i = 0; i < 200; ++i) b_text.insert(b_text.end(), {3, 1, 0, 2});
  PstOptions o = SmoothedOptions(4, 3);
  Pst pst_a(4, o), pst_b(4, o);
  pst_a.InsertSequence(a_text);
  pst_b.InsertSequence(b_text);
  BackgroundModel bg = UniformBackground(4);

  Symbols query;
  for (int i = 0; i < 20; ++i) query.insert(query.end(), {0, 1, 2, 3});
  double sim_a = ComputeSimilarity(pst_a, bg, query).log_sim;
  double sim_b = ComputeSimilarity(pst_b, bg, query).log_sim;
  EXPECT_GT(sim_a, sim_b);
}

}  // namespace
}  // namespace cluseq
