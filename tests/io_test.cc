#include "seq/io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cluseq {
namespace {

TEST(FastaTest, ReadsRecords) {
  std::istringstream in(">s1 label=2\nABCD\n>s2\nAA\nBB\n");
  SequenceDatabase db;
  ASSERT_TRUE(ReadFasta(in, &db).ok());
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].id(), "s1");
  EXPECT_EQ(db[0].label(), 2);
  EXPECT_EQ(db[0].length(), 4u);
  EXPECT_EQ(db[1].id(), "s2");
  EXPECT_EQ(db[1].label(), kNoLabel);
  EXPECT_EQ(db[1].length(), 4u);  // Wrapped body concatenated.
}

TEST(FastaTest, SkipsBlankLines) {
  std::istringstream in("\n>s1\n\nAB\n\n");
  SequenceDatabase db;
  ASSERT_TRUE(ReadFasta(in, &db).ok());
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db[0].length(), 2u);
}

TEST(FastaTest, DataBeforeHeaderIsCorruption) {
  std::istringstream in("ABCD\n>s1\nAB\n");
  SequenceDatabase db;
  EXPECT_TRUE(ReadFasta(in, &db).IsCorruption());
}

TEST(FastaTest, RoundTrip) {
  SequenceDatabase db;
  ASSERT_TRUE(db.AddText("ACGTACGT", "seq_a", 1).ok());
  ASSERT_TRUE(db.AddText("GGGG", "seq_b", kNoLabel).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteFasta(db, out).ok());

  std::istringstream in(out.str());
  SequenceDatabase db2;
  ASSERT_TRUE(ReadFasta(in, &db2).ok());
  ASSERT_EQ(db2.size(), 2u);
  EXPECT_EQ(db2[0].id(), "seq_a");
  EXPECT_EQ(db2[0].label(), 1);
  EXPECT_EQ(db2.alphabet().Decode(db2[0].symbols()), "ACGTACGT");
  EXPECT_EQ(db2[1].label(), kNoLabel);
  EXPECT_EQ(db2.alphabet().Decode(db2[1].symbols()), "GGGG");
}

TEST(FastaTest, LongSequenceWraps) {
  SequenceDatabase db;
  std::string body(200, 'A');
  ASSERT_TRUE(db.AddText(body, "long").ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteFasta(db, out).ok());
  // No emitted data line longer than 70 chars.
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] != '>') {
      EXPECT_LE(line.size(), 70u);
    }
  }
  // And it round-trips.
  std::istringstream in(out.str());
  SequenceDatabase db2;
  ASSERT_TRUE(ReadFasta(in, &db2).ok());
  EXPECT_EQ(db2[0].length(), 200u);
}

TEST(FastaTest, MissingFileIsIOError) {
  SequenceDatabase db;
  EXPECT_TRUE(ReadFastaFile("/nonexistent/path/file.fa", &db).IsIOError());
}

TEST(TsvTest, ReadsLines) {
  std::istringstream in("a\t0\tXYZ\nb\t-1\tXX\n");
  SequenceDatabase db;
  ASSERT_TRUE(ReadTsv(in, &db).ok());
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].label(), 0);
  EXPECT_EQ(db[1].label(), kNoLabel);
  EXPECT_EQ(db[1].id(), "b");
}

TEST(TsvTest, WrongFieldCountIsCorruption) {
  std::istringstream in("only_two\tfields\n");
  SequenceDatabase db;
  EXPECT_TRUE(ReadTsv(in, &db).IsCorruption());
}

TEST(TsvTest, RoundTrip) {
  SequenceDatabase db;
  ASSERT_TRUE(db.AddText("hello", "h", 5).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(db, out).ok());
  std::istringstream in(out.str());
  SequenceDatabase db2;
  ASSERT_TRUE(ReadTsv(in, &db2).ok());
  ASSERT_EQ(db2.size(), 1u);
  EXPECT_EQ(db2[0].label(), 5);
  EXPECT_EQ(db2.alphabet().Decode(db2[0].symbols()), "hello");
}

TEST(FastaTest, HandlesCrlfLineEndings) {
  std::istringstream in(">s1 label=2\r\nABCD\r\n>s2\r\nAA\r\nBB\r\n");
  SequenceDatabase db;
  ASSERT_TRUE(ReadFasta(in, &db).ok());
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].id(), "s1");
  EXPECT_EQ(db[0].label(), 2);
  EXPECT_EQ(db[0].length(), 4u);  // No stray '\r' interned.
  EXPECT_EQ(db[1].length(), 4u);
  EXPECT_EQ(db.alphabet().Find("\r"), kInvalidSymbol);
}

TEST(FastaTest, FinalRecordWithoutTrailingNewline) {
  std::istringstream in(">s1\nABCD\n>s2\nXY");
  SequenceDatabase db;
  ASSERT_TRUE(ReadFasta(in, &db).ok());
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[1].id(), "s2");
  EXPECT_EQ(db[1].length(), 2u);
}

TEST(FastaTest, OversizedRecordIsRejectedWithAClearError) {
  IoOptions options;
  options.max_record_bytes = 8;
  std::istringstream in(">tiny\nABCD\n>huge\nABCDEFGH\nIJ\n");
  SequenceDatabase db;
  Status st = ReadFasta(in, &db, options);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.ToString().find("huge"), std::string::npos) << st.ToString();
  // Under the default (generous) limit the same input is fine.
  std::istringstream again(">tiny\nABCD\n>huge\nABCDEFGH\nIJ\n");
  db.Clear();
  EXPECT_TRUE(ReadFasta(again, &db).ok());
}

TEST(TsvTest, HandlesCrlfAndMissingFinalNewline) {
  std::istringstream in("a\t0\tXYZ\r\nb\t-1\tXX");
  SequenceDatabase db;
  ASSERT_TRUE(ReadTsv(in, &db).ok());
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].length(), 3u);  // '\r' stripped, not interned.
  EXPECT_EQ(db.alphabet().Find("\r"), kInvalidSymbol);
  EXPECT_EQ(db[1].id(), "b");
  EXPECT_EQ(db[1].length(), 2u);
}

TEST(TsvTest, OversizedRecordIsRejectedWithAClearError) {
  IoOptions options;
  options.max_record_bytes = 4;
  std::istringstream in("ok\t0\tABCD\nbig\t1\tABCDE\n");
  SequenceDatabase db;
  Status st = ReadTsv(in, &db, options);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.ToString().find("big"), std::string::npos) << st.ToString();
}

TEST(TsvTest, FileRoundTrip) {
  SequenceDatabase db;
  ASSERT_TRUE(db.AddText("abc", "x", 1).ok());
  std::string path = ::testing::TempDir() + "/cluseq_io_test.tsv";
  ASSERT_TRUE(WriteTsvFile(db, path).ok());
  SequenceDatabase db2;
  ASSERT_TRUE(ReadTsvFile(path, &db2).ok());
  ASSERT_EQ(db2.size(), 1u);
  EXPECT_EQ(db2.alphabet().Decode(db2[0].symbols()), "abc");
}

}  // namespace
}  // namespace cluseq
