#include "baselines/baseline_clusterers.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "synth/dataset.h"

namespace cluseq {
namespace {

// Two sources with block-shuffled shared content: ED fails on it, EDBO
// doesn't — the motivating contrast of the paper's Table 2.
SequenceDatabase TwoSourceDb(uint64_t seed) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 2;
  opts.sequences_per_cluster = 12;
  opts.alphabet_size = 6;
  opts.avg_length = 60;
  opts.outlier_fraction = 0.0;
  opts.spread = 0.2;
  opts.seed = seed;
  return MakeSyntheticDataset(opts);
}

TEST(EditDistanceClusterTest, SeparatesTwoSources) {
  SequenceDatabase db = TwoSourceDb(1);
  DistanceClusterOptions o;
  o.num_clusters = 2;
  o.seed = 3;
  std::vector<int32_t> assign;
  ASSERT_TRUE(EditDistanceCluster(db, o, &assign).ok());
  ASSERT_EQ(assign.size(), db.size());
  for (int32_t a : assign) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 2);
  }
  // Markov sources of the same length are hard for ED; just require better
  // than the 50% chance floor minus slack.
  EXPECT_GT(Evaluate(db, assign).correct_fraction, 0.5);
}

TEST(BlockEditClusterTest, SeparatesTwoSources) {
  SequenceDatabase db = TwoSourceDb(2);
  DistanceClusterOptions o;
  o.num_clusters = 2;
  o.seed = 3;
  BlockEditOptions block;
  std::vector<int32_t> assign;
  ASSERT_TRUE(BlockEditCluster(db, o, block, &assign).ok());
  ASSERT_EQ(assign.size(), db.size());
  EXPECT_GT(Evaluate(db, assign).correct_fraction, 0.5);
}

TEST(BaselineClustererTest, EmptyDatabase) {
  SequenceDatabase db(Alphabet::Synthetic(2));
  DistanceClusterOptions o;
  std::vector<int32_t> assign;
  EXPECT_TRUE(EditDistanceCluster(db, o, &assign).ok());
  EXPECT_TRUE(assign.empty());
  EXPECT_TRUE(BlockEditCluster(db, o, {}, &assign).ok());
  EXPECT_TRUE(assign.empty());
}

TEST(BaselineClustererTest, ZeroClustersRejected) {
  SequenceDatabase db = TwoSourceDb(3);
  DistanceClusterOptions o;
  o.num_clusters = 0;
  std::vector<int32_t> assign;
  EXPECT_TRUE(EditDistanceCluster(db, o, &assign).IsInvalidArgument());
  EXPECT_TRUE(BlockEditCluster(db, o, {}, &assign).IsInvalidArgument());
}

TEST(BaselineClustererTest, DeterministicGivenSeed) {
  SequenceDatabase db = TwoSourceDb(4);
  DistanceClusterOptions o;
  o.num_clusters = 2;
  o.seed = 11;
  std::vector<int32_t> a1, a2;
  ASSERT_TRUE(EditDistanceCluster(db, o, &a1).ok());
  ASSERT_TRUE(EditDistanceCluster(db, o, &a2).ok());
  EXPECT_EQ(a1, a2);
}

}  // namespace
}  // namespace cluseq
