// Kill-at-every-phase chaos harness: fork a child that checkpoints every
// iteration and SIGKILLs itself at the Nth successful save, then fork a
// second child that resumes from the survivors and reports its final
// clustering as a fingerprint. The resumed result must be bit-for-bit
// identical to an uninterrupted run — for every kill point N, at thread
// counts {1, 2, 7}, with the prefilter on and off, and with the resuming
// process deliberately using a *different* thread count and prefilter
// setting than the killed one (both are excluded from the options
// fingerprint, so cross-setting resume is legal and must not change the
// answer).
//
// Children never touch gtest: they communicate one 64-bit FNV fingerprint
// through a file and _exit(). Format-level corruption (bit flips, torn
// writes) is swept in checkpoint_test.cc; cooperative cancellation in
// cancellation_test.cc.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/cluseq.h"
#include "seq/sequence_database.h"
#include "synth/dataset.h"
#include "util/file_io.h"

namespace cluseq {
namespace {

SequenceDatabase PlantedDb(uint64_t seed = 11) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 3;
  opts.sequences_per_cluster = 10;
  opts.alphabet_size = 8;
  opts.avg_length = 60;
  opts.outlier_fraction = 0.1;
  opts.spread = 0.25;
  opts.seed = seed;
  return MakeSyntheticDataset(opts);
}

CluseqOptions FastOptions() {
  CluseqOptions o;
  o.initial_clusters = 2;
  o.similarity_threshold = 1.05;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 10;
  o.pst.max_depth = 4;
  o.pst.smoothing_p_min = 1e-4;
  o.rng_seed = 7;
  return o;
}

std::string MakeTempDir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + tag + "_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return made;
}

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FnvMixDouble(uint64_t h, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return FnvMix(h, bits);
}

/// Order-sensitive fingerprint of everything "bit-for-bit identical" means
/// for a clustering: memberships, assignments, scores (as raw IEEE bits),
/// the final threshold, and the iteration count.
uint64_t ResultFingerprint(const ClusteringResult& r) {
  uint64_t h = 1469598103934665603ull;
  h = FnvMix(h, r.iterations);
  h = FnvMix(h, r.num_unclustered);
  h = FnvMixDouble(h, r.final_log_threshold);
  h = FnvMix(h, r.clusters.size());
  for (const std::vector<size_t>& members : r.clusters) {
    h = FnvMix(h, members.size());
    for (size_t m : members) h = FnvMix(h, m);
  }
  h = FnvMix(h, r.best_cluster.size());
  for (int32_t c : r.best_cluster) {
    h = FnvMix(h, static_cast<uint64_t>(static_cast<int64_t>(c)));
  }
  h = FnvMix(h, r.best_log_sim.size());
  for (double s : r.best_log_sim) h = FnvMixDouble(h, s);
  return h;
}

// Kill-switch shared with the save hook. Plain globals: the hook is a
// C function pointer and only the forked child ever arms it.
uint64_t g_kill_at = 0;
uint64_t g_saves_seen = 0;

void KillAtNthSave(uint64_t /*iteration*/, const std::string& /*path*/) {
  if (g_saves_seen++ == g_kill_at) ::kill(::getpid(), SIGKILL);
}

/// Writes `fp` to `path` as fixed-width hex + newline with plain stdio
/// (children must not rely on atexit flushing).
bool WriteFingerprintFile(const std::string& path, uint64_t fp) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fprintf(f, "%016llx\n",
                         static_cast<unsigned long long>(fp)) > 0;
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

bool ReadFingerprintFile(const std::string& path, uint64_t* fp) {
  std::string text;
  if (!ReadFileToString(path, &text).ok()) return false;
  char* end = nullptr;
  *fp = std::strtoull(text.c_str(), &end, 16);
  return end != text.c_str();
}

// Child exit codes (children use _exit; gtest assertions live in the parent).
constexpr int kChildOk = 0;
constexpr int kChildRunFailed = 7;
constexpr int kChildWriteFailed = 8;

/// Runs the clusterer with `options` in the current (forked) process and
/// reports the result fingerprint through `fp_path`. Never returns.
[[noreturn]] void ChildRunAndReport(const SequenceDatabase& db,
                                    const CluseqOptions& options,
                                    const std::string& fp_path) {
  ClusteringResult result;
  if (!RunCluseq(db, options, &result).ok()) ::_exit(kChildRunFailed);
  if (!WriteFingerprintFile(fp_path, ResultFingerprint(result))) {
    ::_exit(kChildWriteFailed);
  }
  ::_exit(kChildOk);
}

struct ChaosConfig {
  size_t threads;
  bool prefilter;
};

/// One full kill sweep for one configuration: kill the run at save 0, 1,
/// 2, ... (each in its own forked process, each from a fresh directory),
/// resume in another forked process with shuffled perf settings, and
/// demand the reference fingerprint every time. The sweep ends when the
/// child outlives the kill point, i.e. every save boundary was probed.
void RunKillSweep(const SequenceDatabase& db, const ChaosConfig& config,
                  uint64_t reference_fp) {
  const size_t kThreadChoices[] = {1, 2, 7};
  // Far above any plausible save count for a 10-iteration run; a sweep
  // that gets here means the kill hook never let the child finish.
  const uint64_t kMaxKillPoints = 64;
  uint64_t kill_at = 0;
  for (; kill_at < kMaxKillPoints; ++kill_at) {
    SCOPED_TRACE("threads=" + std::to_string(config.threads) +
                 " prefilter=" + std::to_string(config.prefilter) +
                 " kill_at=" + std::to_string(kill_at));
    const std::string dir = MakeTempDir("chaos");
    const std::string fp_path = dir + "/fingerprint";

    CluseqOptions victim = FastOptions();
    victim.num_threads = config.threads;
    victim.prefilter = config.prefilter;
    victim.checkpoint_dir = dir;
    victim.checkpoint_every = 1;

    pid_t victim_pid = ::fork();
    ASSERT_NE(victim_pid, -1);
    if (victim_pid == 0) {
      g_kill_at = kill_at;
      g_saves_seen = 0;
      SetCheckpointSaveHookForTest(&KillAtNthSave);
      ChildRunAndReport(db, victim, fp_path);
    }
    int victim_status = 0;
    ASSERT_EQ(::waitpid(victim_pid, &victim_status, 0), victim_pid);

    if (WIFEXITED(victim_status)) {
      // The kill point is past the last save: the run completed normally.
      // Its fingerprint must still match, and the sweep is done — every
      // earlier save boundary has been probed.
      ASSERT_EQ(WEXITSTATUS(victim_status), kChildOk);
      uint64_t completed_fp = 0;
      ASSERT_TRUE(ReadFingerprintFile(fp_path, &completed_fp));
      EXPECT_EQ(completed_fp, reference_fp);
      std::filesystem::remove_all(dir);
      break;
    }
    ASSERT_TRUE(WIFSIGNALED(victim_status));
    ASSERT_EQ(WTERMSIG(victim_status), SIGKILL);

    // Resume from whatever the kill left behind — with a different thread
    // count and (on odd kill points) the opposite prefilter setting, since
    // neither is part of the run's identity.
    CluseqOptions survivor = FastOptions();
    survivor.num_threads = kThreadChoices[kill_at % 3];
    survivor.prefilter =
        (kill_at % 2 == 0) ? config.prefilter : !config.prefilter;
    survivor.checkpoint_dir = dir;
    survivor.checkpoint_every = 1;
    survivor.resume = true;

    pid_t resume_pid = ::fork();
    ASSERT_NE(resume_pid, -1);
    if (resume_pid == 0) ChildRunAndReport(db, survivor, fp_path);
    int resume_status = 0;
    ASSERT_EQ(::waitpid(resume_pid, &resume_status, 0), resume_pid);
    ASSERT_TRUE(WIFEXITED(resume_status));
    ASSERT_EQ(WEXITSTATUS(resume_status), kChildOk);

    uint64_t resumed_fp = 0;
    ASSERT_TRUE(ReadFingerprintFile(fp_path, &resumed_fp));
    EXPECT_EQ(resumed_fp, reference_fp)
        << "resume after SIGKILL at save " << kill_at
        << " diverged from the uninterrupted run";
    std::filesystem::remove_all(dir);
  }
  EXPECT_LT(kill_at, kMaxKillPoints)
      << "kill sweep never reached a completed run";
}

TEST(ChaosResumeTest, KillAtEverySaveBoundaryResumesBitForBit) {
  SequenceDatabase db = PlantedDb();

  // Uninterrupted in-process reference, and the thread/prefilter
  // invariance check that makes one reference valid for all six sweeps.
  const ChaosConfig kConfigs[] = {
      {1, true}, {1, false}, {2, true}, {2, false}, {7, true}, {7, false},
  };
  uint64_t reference_fp = 0;
  for (size_t i = 0; i < std::size(kConfigs); ++i) {
    CluseqOptions plain = FastOptions();
    plain.num_threads = kConfigs[i].threads;
    plain.prefilter = kConfigs[i].prefilter;
    ClusteringResult result;
    ASSERT_TRUE(RunCluseq(db, plain, &result).ok());
    uint64_t fp = ResultFingerprint(result);
    if (i == 0) {
      reference_fp = fp;
      ASSERT_GT(result.iterations, 1u)
          << "fixture converged instantly; the kill sweep would only probe "
             "one boundary";
    } else {
      ASSERT_EQ(fp, reference_fp)
          << "threads=" << kConfigs[i].threads
          << " prefilter=" << kConfigs[i].prefilter
          << " changed the uninterrupted result; chaos sweep preconditions "
             "are broken";
    }
  }

  for (const ChaosConfig& config : kConfigs) {
    RunKillSweep(db, config, reference_fp);
  }
}

}  // namespace
}  // namespace cluseq
