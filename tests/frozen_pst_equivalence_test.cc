// Property tests: FrozenPst scoring must match live-Pst scoring bit-for-bit
// — identical log SIM, identical maximizing segment, and identical
// per-position conditional log ratios for *every* alphabet symbol at every
// prefix — across randomized alphabets, depths, significance thresholds,
// smoothing on/off (including the -inf paths), post-PruneToBudget trees
// (which exercise the closure states), and merged trees.

#include "pst/frozen_pst.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "seq/background_model.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

Symbols RandomText(size_t len, size_t alphabet, Rng* rng) {
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng->Uniform(alphabet));
  return text;
}

BackgroundModel SkewedBackground(size_t alphabet, Rng* rng) {
  std::vector<uint64_t> counts(alphabet);
  for (auto& c : counts) c = 1 + rng->Uniform(500);
  return BackgroundModel::FromCounts(counts);
}

// Exhaustive check: walking the automaton over `query` must reproduce the
// live prediction-node lookup for every (prefix, next symbol) pair, and the
// similarity DP must agree exactly on score and segment.
void ExpectEquivalent(const Pst& pst, const BackgroundModel& background,
                      const Symbols& query) {
  FrozenPst frozen(pst, background);
  ASSERT_EQ(frozen.alphabet_size(), pst.alphabet_size());
  ASSERT_GE(frozen.num_states(), 1u);

  std::span<const SymbolId> span(query);
  FrozenPst::State state = FrozenPst::kRootState;
  for (size_t i = 0; i < query.size(); ++i) {
    for (SymbolId a = 0; a < pst.alphabet_size(); ++a) {
      const double live =
          pst.LogConditionalProbability(span.subspan(0, i), a) -
          background.LogProbability(a);
      const double compiled = frozen.LogRatio(state, a);
      // Bit-for-bit: same double ops in the same order (== handles -inf).
      EXPECT_EQ(live, compiled)
          << "prefix " << i << " symbol " << a << " state " << state;
    }
    state = frozen.Step(state, query[i]);
    EXPECT_LE(frozen.StateDepth(state), pst.options().max_depth);
  }

  SimilarityResult live = ComputeSimilarity(pst, background, span);
  SimilarityResult fast = ComputeSimilarity(frozen, span);
  EXPECT_EQ(live.log_sim, fast.log_sim);
  EXPECT_EQ(live.best_begin, fast.best_begin);
  EXPECT_EQ(live.best_end, fast.best_end);
}

TEST(FrozenPstEquivalenceTest, RandomizedAlphabetsAndDepths) {
  Rng rng(1234);
  const size_t alphabets[] = {2, 4, 8, 20};
  const size_t depths[] = {1, 3, 6, 12};
  for (size_t alphabet : alphabets) {
    for (size_t depth : depths) {
      PstOptions options;
      options.max_depth = depth;
      options.significance_threshold = 1 + rng.Uniform(6);
      options.smoothing_p_min = 1e-4;
      Pst pst(alphabet, options);
      pst.InsertSequence(RandomText(400, alphabet, &rng));
      pst.InsertSequence(RandomText(200, alphabet, &rng));
      BackgroundModel background = SkewedBackground(alphabet, &rng);
      ExpectEquivalent(pst, background, RandomText(120, alphabet, &rng));
      // Queries longer than any training sequence still agree.
      ExpectEquivalent(pst, background, RandomText(700, alphabet, &rng));
    }
  }
}

TEST(FrozenPstEquivalenceTest, SmoothingOffPropagatesNegInf) {
  Rng rng(99);
  PstOptions options;
  options.max_depth = 4;
  options.significance_threshold = 2;
  options.smoothing_p_min = 0.0;  // Unseen symbols have probability zero.
  Pst pst(6, options);
  // Train on a restricted sub-alphabet so queries hit genuinely unseen
  // symbols and the -inf path is exercised end to end.
  pst.InsertSequence(RandomText(300, 3, &rng));
  BackgroundModel background = SkewedBackground(6, &rng);
  Symbols query = RandomText(90, 6, &rng);
  SimilarityResult live = ComputeSimilarity(pst, background, query);
  ASSERT_TRUE(std::isfinite(live.log_sim));  // Some segment avoids -inf.
  ExpectEquivalent(pst, background, query);
}

TEST(FrozenPstEquivalenceTest, EmptyAndTinyTrees) {
  Rng rng(7);
  PstOptions options;
  options.max_depth = 5;
  Pst empty(4, options);  // Root only; everything falls back to uniform.
  BackgroundModel background = SkewedBackground(4, &rng);
  ExpectEquivalent(empty, background, RandomText(40, 4, &rng));

  Pst tiny(4, options);
  tiny.InsertSequence(Symbols{0, 1, 2, 3});
  ExpectEquivalent(tiny, background, RandomText(40, 4, &rng));
  ExpectEquivalent(tiny, background, Symbols{});
}

TEST(FrozenPstEquivalenceTest, PrunedTreesNeedClosureStates) {
  // PruneToBudget removes leaves, which can leave context "xa" in the tree
  // with "x"'s own node gone — the case where the automaton must route
  // through count-less closure states to stay exact.
  Rng rng(4242);
  for (uint64_t trial = 0; trial < 6; ++trial) {
    PstOptions options;
    options.max_depth = 6;
    options.significance_threshold = 2 + rng.Uniform(4);
    options.smoothing_p_min = trial % 2 == 0 ? 1e-4 : 0.0;
    options.prune_strategy = static_cast<PruneStrategy>(trial % 3);
    Pst pst(8, options);
    pst.InsertSequence(RandomText(600, 8, &rng));
    const size_t full = pst.ApproxMemoryBytes();
    pst.PruneToBudget(full / 3);
    ASSERT_LT(pst.ApproxMemoryBytes(), full);
    BackgroundModel background = SkewedBackground(8, &rng);
    ExpectEquivalent(pst, background, RandomText(250, 8, &rng));
  }
}

TEST(FrozenPstEquivalenceTest, MergedTrees) {
  Rng rng(17);
  PstOptions options;
  options.max_depth = 5;
  options.significance_threshold = 3;
  Pst a(10, options), b(10, options);
  a.InsertSequence(RandomText(300, 10, &rng));
  b.InsertSequence(RandomText(300, 10, &rng));
  ASSERT_TRUE(a.MergeFrom(b).ok());
  BackgroundModel background = SkewedBackground(10, &rng);
  ExpectEquivalent(a, background, RandomText(150, 10, &rng));
}

TEST(FrozenPstEquivalenceTest, StatesAreDepthMajorAndBounded) {
  Rng rng(5);
  PstOptions options;
  options.max_depth = 4;
  Pst pst(5, options);
  pst.InsertSequence(RandomText(500, 5, &rng));
  BackgroundModel background = SkewedBackground(5, &rng);
  FrozenPst frozen(pst, background);
  EXPECT_EQ(frozen.StateDepth(FrozenPst::kRootState), 0u);
  for (FrozenPst::State s = 1; s < frozen.num_states(); ++s) {
    EXPECT_GE(frozen.StateDepth(s), frozen.StateDepth(s - 1));
    EXPECT_LE(frozen.StateDepth(s), options.max_depth);
    // Transitions can deepen the context by at most one symbol.
    for (SymbolId a = 0; a < frozen.alphabet_size(); ++a) {
      FrozenPst::State t = frozen.Step(s, a);
      ASSERT_LT(t, frozen.num_states());
      EXPECT_LE(frozen.StateDepth(t), frozen.StateDepth(s) + 1);
    }
  }
  EXPECT_GT(frozen.ApproxMemoryBytes(), 0u);
}

}  // namespace
}  // namespace cluseq
