#include "pst/pst_serialization.h"

#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "seq/background_model.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

Symbols RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  Symbols text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

void CollectLabels(const Pst& pst, PstNodeId id,
                   std::map<Symbols, uint64_t>* out) {
  (*out)[pst.NodeLabel(id)] = pst.NodeCount(id);
  for (const auto& [sym, child] : pst.Children(id)) {
    CollectLabels(pst, child, out);
  }
}

TEST(PstSerializationTest, RoundTripPreservesStructure) {
  PstOptions o;
  o.max_depth = 5;
  o.significance_threshold = 3;
  o.smoothing_p_min = 1e-4;
  Pst pst(5, o);
  pst.InsertSequence(RandomText(400, 5, 42));

  std::stringstream buffer;
  ASSERT_TRUE(SavePst(pst, buffer).ok());
  Pst loaded(1, PstOptions{});
  ASSERT_TRUE(LoadPst(buffer, &loaded).ok());

  EXPECT_EQ(loaded.alphabet_size(), pst.alphabet_size());
  EXPECT_EQ(loaded.NumNodes(), pst.NumNodes());
  EXPECT_EQ(loaded.total_symbols(), pst.total_symbols());
  EXPECT_EQ(loaded.options().max_depth, pst.options().max_depth);
  EXPECT_EQ(loaded.options().significance_threshold,
            pst.options().significance_threshold);

  std::map<Symbols, uint64_t> before, after;
  CollectLabels(pst, kPstRoot, &before);
  CollectLabels(loaded, kPstRoot, &after);
  EXPECT_EQ(before, after);
}

TEST(PstSerializationTest, RoundTripPreservesQueries) {
  PstOptions o;
  o.max_depth = 6;
  o.significance_threshold = 2;
  Pst pst(4, o);
  pst.InsertSequence(RandomText(600, 4, 7));

  std::stringstream buffer;
  ASSERT_TRUE(SavePst(pst, buffer).ok());
  Pst loaded(1, PstOptions{});
  ASSERT_TRUE(LoadPst(buffer, &loaded).ok());

  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    size_t len = rng.Uniform(6);
    Symbols ctx(len);
    for (auto& s : ctx) s = static_cast<SymbolId>(rng.Uniform(4));
    SymbolId next = static_cast<SymbolId>(rng.Uniform(4));
    EXPECT_DOUBLE_EQ(pst.ConditionalProbability(ctx, next),
                     loaded.ConditionalProbability(ctx, next));
  }
}

TEST(PstSerializationTest, RoundTripAfterPruning) {
  PstOptions o;
  o.max_depth = 7;
  o.significance_threshold = 3;
  o.max_memory_bytes = 32 * 1024;
  Pst pst(5, o);
  pst.InsertSequence(RandomText(2000, 5, 11));

  std::stringstream buffer;
  ASSERT_TRUE(SavePst(pst, buffer).ok());
  Pst loaded(1, PstOptions{});
  ASSERT_TRUE(LoadPst(buffer, &loaded).ok());
  // Tombstones are compacted away: node counts must match live nodes.
  EXPECT_EQ(loaded.NumNodes(), pst.NumNodes());
  std::map<Symbols, uint64_t> before, after;
  CollectLabels(pst, kPstRoot, &before);
  CollectLabels(loaded, kPstRoot, &after);
  EXPECT_EQ(before, after);
}

TEST(PstSerializationTest, EmptyTreeRoundTrips) {
  Pst pst(3, PstOptions{});
  std::stringstream buffer;
  ASSERT_TRUE(SavePst(pst, buffer).ok());
  Pst loaded(1, PstOptions{});
  ASSERT_TRUE(LoadPst(buffer, &loaded).ok());
  EXPECT_EQ(loaded.NumNodes(), 1u);
  EXPECT_EQ(loaded.total_symbols(), 0u);
}

TEST(PstSerializationTest, BadMagicIsCorruption) {
  std::stringstream buffer;
  buffer << "NOPE";
  Pst loaded(1, PstOptions{});
  EXPECT_TRUE(LoadPst(buffer, &loaded).IsCorruption());
}

TEST(PstSerializationTest, TruncatedStreamIsCorruption) {
  Pst pst(3, PstOptions{});
  pst.InsertSequence(Symbols{0, 1, 2, 0, 1});
  std::stringstream buffer;
  ASSERT_TRUE(SavePst(pst, buffer).ok());
  std::string data = buffer.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  Pst loaded(1, PstOptions{});
  EXPECT_FALSE(LoadPst(truncated, &loaded).ok());
}

TEST(PstSerializationTest, FileRoundTrip) {
  Pst pst(3, PstOptions{});
  pst.InsertSequence(RandomText(100, 3, 21));
  std::string path = ::testing::TempDir() + "/cluseq_pst_test.bin";
  ASSERT_TRUE(SavePstToFile(pst, path).ok());
  Pst loaded(1, PstOptions{});
  ASSERT_TRUE(LoadPstFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.total_symbols(), 100u);
}

TEST(PstSerializationTest, MissingFileIsIOError) {
  Pst loaded(1, PstOptions{});
  EXPECT_TRUE(LoadPstFromFile("/no/such/file.pst", &loaded).IsIOError());
}

FrozenPst TrainedFrozen(uint64_t seed) {
  PstOptions o;
  o.max_depth = 5;
  o.significance_threshold = 3;
  Pst pst(6, o);
  pst.InsertSequence(RandomText(500, 6, seed));
  BackgroundModel bg =
      BackgroundModel::FromCounts({10, 20, 30, 40, 50, 60});
  return FrozenPst(pst, bg);
}

TEST(PstSerializationTest, FrozenRoundTripIsExact) {
  FrozenPst frozen = TrainedFrozen(31);
  std::stringstream buffer;
  ASSERT_TRUE(SaveFrozenPst(frozen, buffer).ok());
  FrozenPst loaded;
  ASSERT_TRUE(LoadFrozenPst(buffer, &loaded).ok());

  ASSERT_EQ(loaded.num_states(), frozen.num_states());
  ASSERT_EQ(loaded.alphabet_size(), frozen.alphabet_size());
  EXPECT_EQ(loaded.max_depth(), frozen.max_depth());
  for (FrozenPst::State s = 0; s < frozen.num_states(); ++s) {
    EXPECT_EQ(loaded.StateDepth(s), frozen.StateDepth(s));
    for (SymbolId a = 0; a < frozen.alphabet_size(); ++a) {
      EXPECT_EQ(loaded.Step(s, a), frozen.Step(s, a));
      // Bit-for-bit, including any -inf entries.
      EXPECT_EQ(loaded.LogRatio(s, a), frozen.LogRatio(s, a));
    }
  }
}

TEST(PstSerializationTest, FrozenFileRoundTrip) {
  FrozenPst frozen = TrainedFrozen(33);
  std::string path = ::testing::TempDir() + "/cluseq_frozen_test.bin";
  ASSERT_TRUE(SaveFrozenPstToFile(frozen, path).ok());
  FrozenPst loaded;
  ASSERT_TRUE(LoadFrozenPstFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.num_states(), frozen.num_states());
}

TEST(PstSerializationTest, FrozenBadMagicIsCorruption) {
  std::stringstream buffer;
  buffer << "PST1";  // A live-tree stream is not a snapshot.
  FrozenPst loaded;
  EXPECT_TRUE(LoadFrozenPst(buffer, &loaded).IsCorruption());
}

TEST(PstSerializationTest, FrozenTruncatedStreamIsCorruption) {
  FrozenPst frozen = TrainedFrozen(35);
  std::stringstream buffer;
  ASSERT_TRUE(SaveFrozenPst(frozen, buffer).ok());
  std::string data = buffer.str();
  std::stringstream truncated(data.substr(0, data.size() / 3));
  FrozenPst loaded;
  EXPECT_FALSE(LoadFrozenPst(truncated, &loaded).ok());
}

TEST(PstSerializationTest, FrozenOutOfRangeTransitionIsCorruption) {
  FrozenPst frozen = TrainedFrozen(37);
  std::stringstream buffer;
  ASSERT_TRUE(SaveFrozenPst(frozen, buffer).ok());
  std::string data = buffer.str();
  // Transitions start right after the header and the u32 depth array.
  const size_t header = 4 + 3 * sizeof(uint64_t);
  const size_t next_offset = header + frozen.num_states() * sizeof(uint32_t);
  uint32_t bogus = static_cast<uint32_t>(frozen.num_states());
  data.replace(next_offset, sizeof(bogus),
               reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  std::stringstream corrupted(data);
  FrozenPst loaded;
  EXPECT_TRUE(LoadFrozenPst(corrupted, &loaded).IsCorruption());
}

TEST(PstSerializationTest, FrozenMissingFileIsIOError) {
  FrozenPst loaded;
  EXPECT_TRUE(
      LoadFrozenPstFromFile("/no/such/file.fpst", &loaded).IsIOError());
}

}  // namespace
}  // namespace cluseq
