#include "util/string_util.h"

#include <gtest/gtest.h>

namespace cluseq {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StripTest, StripsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  hi\t\r\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("hi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringPrintfTest, Formats) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(ParseFlagTest, MatchesAndExtracts) {
  std::string value;
  EXPECT_TRUE(ParseFlag("--scale=0.5", "scale", &value));
  EXPECT_EQ(value, "0.5");
  EXPECT_FALSE(ParseFlag("--scale", "scale", &value));
  EXPECT_FALSE(ParseFlag("--other=1", "scale", &value));
  EXPECT_TRUE(ParseFlag("--name=", "name", &value));
  EXPECT_EQ(value, "");
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(5 * 1024 * 1024), "5.0 MiB");
}

}  // namespace
}  // namespace cluseq
