#include "baselines/edit_distance.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

Symbols Enc(const std::string& s) {
  Symbols out;
  for (char c : s) out.push_back(static_cast<SymbolId>(c - 'a'));
  return out;
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance(Enc("kitten"), Enc("sitting")), 3u);
  EXPECT_EQ(EditDistance(Enc("flaw"), Enc("lawn")), 2u);
  EXPECT_EQ(EditDistance(Enc("abc"), Enc("abc")), 0u);
  EXPECT_EQ(EditDistance(Enc(""), Enc("abc")), 3u);
  EXPECT_EQ(EditDistance(Enc("abc"), Enc("")), 3u);
  EXPECT_EQ(EditDistance(Enc(""), Enc("")), 0u);
}

TEST(EditDistanceTest, PaperMotivatingExample) {
  // The paper's footnote: d(aaaabbb, bbbaaaa) = 6 = d(aaaabbb, abcdefg).
  EXPECT_EQ(EditDistance(Enc("aaaabbb"), Enc("bbbaaaa")), 6u);
  EXPECT_EQ(EditDistance(Enc("aaaabbb"), Enc("abcdefg")), 6u);
}

TEST(EditDistanceTest, Symmetry) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    Symbols a(rng.Uniform(20)), b(rng.Uniform(20));
    for (auto& s : a) s = static_cast<SymbolId>(rng.Uniform(4));
    for (auto& s : b) s = static_cast<SymbolId>(rng.Uniform(4));
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  }
}

TEST(EditDistanceTest, TriangleInequality) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    Symbols a(5 + rng.Uniform(10)), b(5 + rng.Uniform(10)),
        c(5 + rng.Uniform(10));
    for (auto& s : a) s = static_cast<SymbolId>(rng.Uniform(3));
    for (auto& s : b) s = static_cast<SymbolId>(rng.Uniform(3));
    for (auto& s : c) s = static_cast<SymbolId>(rng.Uniform(3));
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  }
}

TEST(EditDistanceTest, IdentityOfIndiscernibles) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Symbols a(rng.Uniform(15));
    for (auto& s : a) s = static_cast<SymbolId>(rng.Uniform(5));
    EXPECT_EQ(EditDistance(a, a), 0u);
  }
}

TEST(EditDistanceTest, BoundedByMaxLength) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Symbols a(rng.Uniform(25)), b(rng.Uniform(25));
    for (auto& s : a) s = static_cast<SymbolId>(rng.Uniform(4));
    for (auto& s : b) s = static_cast<SymbolId>(rng.Uniform(4));
    EXPECT_LE(EditDistance(a, b), std::max(a.size(), b.size()));
    EXPECT_GE(EditDistance(a, b),
              std::max(a.size(), b.size()) - std::min(a.size(), b.size()));
  }
}

TEST(BandedEditDistanceTest, MatchesExactWithinBand) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    Symbols a(10 + rng.Uniform(15)), b(10 + rng.Uniform(15));
    for (auto& s : a) s = static_cast<SymbolId>(rng.Uniform(3));
    for (auto& s : b) s = static_cast<SymbolId>(rng.Uniform(3));
    size_t exact = EditDistance(a, b);
    size_t banded = BandedEditDistance(a, b, 30);  // Band covers everything.
    EXPECT_EQ(banded, exact);
  }
}

TEST(BandedEditDistanceTest, ClampsWhenBandTooNarrow) {
  // Length difference exceeds the band: must report > band.
  Symbols a(20, 0), b(2, 0);
  EXPECT_GT(BandedEditDistance(a, b, 5), 5u);
}

TEST(BandedEditDistanceTest, ExactWhenDistanceInsideBand) {
  Symbols a = Enc("abcdefgh");
  Symbols b = Enc("abcxefgh");  // Distance 1.
  EXPECT_EQ(BandedEditDistance(a, b, 3), 1u);
}

TEST(BandedEditDistanceTest, EmptyInputs) {
  EXPECT_EQ(BandedEditDistance(Enc(""), Enc(""), 3), 0u);
  EXPECT_EQ(BandedEditDistance(Enc("ab"), Enc(""), 3), 2u);
}

TEST(NormalizedEditDistanceTest, Range) {
  EXPECT_DOUBLE_EQ(NormalizedEditDistance(Enc(""), Enc("")), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance(Enc("abc"), Enc("abc")), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance(Enc("aaa"), Enc("bbb")), 1.0);
  double d = NormalizedEditDistance(Enc("kitten"), Enc("sitting"));
  EXPECT_NEAR(d, 3.0 / 7.0, 1e-12);
}

TEST(EditDistanceTest, SequenceOverload) {
  Sequence a(Enc("abc")), b(Enc("abd"));
  EXPECT_EQ(EditDistance(a, b), 1u);
}

}  // namespace
}  // namespace cluseq
