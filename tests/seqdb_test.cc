// The .sqdb on-disk store, held to the same bar as the model formats:
// lossless round-trips (including empty databases, 1-symbol records,
// unicode ids/labels, and >64k-record tables), mmap and buffered loads
// byte-for-byte interchangeable, and a hostile-input wall — truncation at
// every offset and every single-bit flip of both files must come back as
// Status::Corruption (or IOError), never a crash. The CI sanitizer job
// runs this file under ASan/UBSan to turn "never a crash" into a check.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluseq.h"
#include "seq/seqdb_reader.h"
#include "seq/seqdb_writer.h"
#include "seq/sequence_database.h"
#include "synth/dataset.h"
#include "util/rng.h"

namespace cluseq {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// A scratch directory per fixture; removed on destruction.
struct TempDir {
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cluseq_sqdb_XXXXXX";
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = made;
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string File(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

void ExpectStoresEqual(const SequenceStore& want, const SequenceStore& got) {
  ASSERT_EQ(want.size(), got.size());
  ASSERT_EQ(want.alphabet().size(), got.alphabet().size());
  for (SymbolId s = 0; s < want.alphabet().size(); ++s) {
    EXPECT_EQ(want.alphabet().Name(s), got.alphabet().Name(s));
  }
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want.Id(i), got.Id(i)) << i;
    EXPECT_EQ(want.LabelOf(i), got.LabelOf(i)) << i;
    ASSERT_EQ(want.Length(i), got.Length(i)) << i;
    const auto a = want.Symbols(i);
    const auto b = got.Symbols(i);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << i;
  }
  EXPECT_EQ(want.TotalSymbols(), got.TotalSymbols());
  EXPECT_EQ(want.NumLabels(), got.NumLabels());
  EXPECT_EQ(want.LengthSortedOrder(), got.LengthSortedOrder());
}

SequenceDatabase SmallDb() {
  SequenceDatabase db;
  EXPECT_TRUE(db.AddText("abcabcabd", "first", 0).ok());
  EXPECT_TRUE(db.AddText("dddd", "", 1).ok());  // Empty id.
  EXPECT_TRUE(db.AddText("a", "one-symbol", kNoLabel).ok());
  EXPECT_TRUE(db.AddText("bcbcbc", "s\xC3\xA9q-\xE2\x9C\x93", 0).ok());
  return db;
}

// --- round trips ---------------------------------------------------------

TEST(SeqDbTest, RoundTripSmall) {
  TempDir dir;
  const std::string path = dir.File("small.sqdb");
  SequenceDatabase db = SmallDb();
  SeqDbWriteStats stats;
  ASSERT_TRUE(WriteSeqDb(db, path, &stats).ok());
  EXPECT_EQ(stats.records, db.size());
  EXPECT_EQ(stats.total_symbols, db.TotalSymbols());
  EXPECT_GT(stats.data_bytes, 0u);
  EXPECT_GT(stats.index_bytes, 0u);

  SeqDbReader reader;
  ASSERT_TRUE(SeqDbReader::Open(path, &reader).ok());
  ExpectStoresEqual(db, reader);
  EXPECT_EQ(reader.data_bytes(), stats.data_bytes);
  EXPECT_EQ(reader.index_bytes(), stats.index_bytes);
}

TEST(SeqDbTest, RoundTripEmptyDatabase) {
  TempDir dir;
  const std::string path = dir.File("empty.sqdb");
  SequenceDatabase db;
  ASSERT_TRUE(WriteSeqDb(db, path).ok());
  SeqDbReader reader;
  ASSERT_TRUE(SeqDbReader::Open(path, &reader).ok());
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.TotalSymbols(), 0u);
  EXPECT_EQ(reader.alphabet().size(), 0u);
}

TEST(SeqDbTest, RoundTripEmptyRecordsAndUnicodeNames) {
  TempDir dir;
  const std::string path = dir.File("edge.sqdb");
  // Multi-byte symbol names, zero-length records, ids that collide.
  Alphabet alphabet;
  alphabet.Intern("\xCE\xB1");  // α
  alphabet.Intern("\xCE\xB2");  // β
  SequenceDatabase db{alphabet};
  db.Add(Sequence(std::vector<SymbolId>{}, "empty-record", 3));
  db.Add(Sequence(std::vector<SymbolId>{0}, "\xF0\x9F\xA7\xAC", 2));  // 🧬
  db.Add(Sequence(std::vector<SymbolId>{1, 0, 1}, "\xF0\x9F\xA7\xAC", 2));
  db.Add(Sequence(std::vector<SymbolId>{}, "", kNoLabel));
  ASSERT_TRUE(WriteSeqDb(db, path).ok());
  SeqDbReader reader;
  ASSERT_TRUE(SeqDbReader::Open(path, &reader).ok());
  ExpectStoresEqual(db, reader);
}

TEST(SeqDbTest, RoundTripMoreThan64kRecords) {
  TempDir dir;
  const std::string path = dir.File("big.sqdb");
  Rng rng(20260809);
  SequenceDatabase db{Alphabet::Synthetic(5)};
  const size_t n = 70000;  // Past any u16 assumption in the record table.
  for (size_t i = 0; i < n; ++i) {
    std::vector<SymbolId> symbols(rng.Uniform(4));
    for (auto& s : symbols) s = static_cast<SymbolId>(rng.Uniform(5));
    db.Add(Sequence(std::move(symbols), i % 3 == 0 ? "r" + std::to_string(i)
                                                   : std::string(),
                    static_cast<Label>(i % 7)));
  }
  ASSERT_TRUE(WriteSeqDb(db, path).ok());
  SeqDbReader reader;
  ASSERT_TRUE(SeqDbReader::Open(path, &reader).ok());
  ASSERT_EQ(reader.size(), n);
  // Spot-check a spread plus full aggregate equality.
  for (size_t i = 0; i < n; i += 997) {
    EXPECT_EQ(db.Id(i), reader.Id(i));
    EXPECT_EQ(db.LabelOf(i), reader.LabelOf(i));
    const auto a = db.Symbols(i);
    const auto b = reader.Symbols(i);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << i;
  }
  EXPECT_EQ(db.TotalSymbols(), reader.TotalSymbols());
}

TEST(SeqDbTest, MmapAndBufferedLoadsAreInterchangeable) {
  TempDir dir;
  const std::string path = dir.File("both.sqdb");
  SequenceDatabase db = SmallDb();
  ASSERT_TRUE(WriteSeqDb(db, path).ok());

  SeqDbReaderOptions mmap_options;
  mmap_options.prefer_mmap = true;
  SeqDbReaderOptions buffered_options;
  buffered_options.prefer_mmap = false;
  SeqDbReader via_mmap, via_buffer;
  ASSERT_TRUE(SeqDbReader::Open(path, &via_mmap, mmap_options).ok());
  ASSERT_TRUE(SeqDbReader::Open(path, &via_buffer, buffered_options).ok());
  EXPECT_FALSE(via_buffer.is_mmap());
  ExpectStoresEqual(via_mmap, via_buffer);
  ExpectStoresEqual(db, via_buffer);
}

TEST(SeqDbTest, WriterIsAtomicOverExistingFiles) {
  TempDir dir;
  const std::string path = dir.File("replace.sqdb");
  SequenceDatabase first = SmallDb();
  ASSERT_TRUE(WriteSeqDb(first, path).ok());
  SequenceDatabase second;
  ASSERT_TRUE(second.AddText("zzzyyy", "other", 5).ok());
  ASSERT_TRUE(WriteSeqDb(second, path).ok());
  SeqDbReader reader;
  ASSERT_TRUE(SeqDbReader::Open(path, &reader).ok());
  ExpectStoresEqual(second, reader);
}

// --- consumer equivalence ------------------------------------------------

TEST(SeqDbTest, ClusteringFromSqdbMatchesInRamBitForBit) {
  TempDir dir;
  const std::string path = dir.File("corpus.sqdb");
  SyntheticDatasetOptions synth;
  synth.num_clusters = 3;
  synth.sequences_per_cluster = 8;
  synth.avg_length = 60;
  synth.seed = 99;
  SequenceDatabase db = MakeSyntheticDataset(synth);
  ASSERT_TRUE(WriteSeqDb(db, path).ok());
  SeqDbReader reader;
  ASSERT_TRUE(SeqDbReader::Open(path, &reader).ok());

  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    CluseqOptions options;
    options.initial_clusters = 3;
    options.max_iterations = 4;
    options.num_threads = threads;
    ClusteringResult from_ram, from_disk;
    ASSERT_TRUE(RunCluseq(db, options, &from_ram).ok());
    ASSERT_TRUE(RunCluseq(reader, options, &from_disk).ok());
    EXPECT_EQ(from_ram.best_cluster, from_disk.best_cluster)
        << "threads=" << threads;
    EXPECT_EQ(from_ram.iterations, from_disk.iterations);
    EXPECT_EQ(from_ram.final_log_threshold, from_disk.final_log_threshold);
  }
}

// --- hostile inputs ------------------------------------------------------

// A deliberately tiny database: the sweeps below are quadratic-ish in file
// size and run under the sanitizers.
struct CorruptionFixture : TempDir {
  CorruptionFixture() {
    SequenceDatabase db;
    EXPECT_TRUE(db.AddText("abcab", "x", 0).ok());
    EXPECT_TRUE(db.AddText("cba", "y", 1).ok());
    data_path = File("tiny.sqdb");
    index_path = SeqDbIndexPath(data_path);
    EXPECT_TRUE(WriteSeqDb(db, data_path).ok());
    data_blob = ReadAll(data_path);
    index_blob = ReadAll(index_path);
    EXPECT_LT(data_blob.size() + index_blob.size(), 16384u)
        << "fixture too big, the sweeps below will crawl";
  }

  Status TryOpen() const {
    SeqDbReader reader;
    return SeqDbReader::Open(data_path, &reader);
  }

  std::string data_path, index_path;
  std::string data_blob, index_blob;
};

TEST(SeqDbCorruptionTest, FixtureLoadsClean) {
  CorruptionFixture fix;
  EXPECT_TRUE(fix.TryOpen().ok());
}

TEST(SeqDbCorruptionTest, MissingFilesAreReported) {
  CorruptionFixture fix;
  std::filesystem::remove(fix.index_path);
  Status st = fix.TryOpen();
  EXPECT_FALSE(st.ok());
  std::filesystem::remove(fix.data_path);
  WriteAll(fix.index_path, fix.index_blob);
  st = fix.TryOpen();
  EXPECT_FALSE(st.ok());
}

TEST(SeqDbCorruptionTest, IndexTruncationAtEveryOffsetIsRejected) {
  CorruptionFixture fix;
  for (size_t len = 0; len < fix.index_blob.size(); ++len) {
    WriteAll(fix.index_path, fix.index_blob.substr(0, len));
    Status st = fix.TryOpen();
    EXPECT_TRUE(st.IsCorruption() || st.IsIOError())
        << "index truncated to " << len << ": " << st.ToString();
  }
}

TEST(SeqDbCorruptionTest, DataTruncationAtEveryOffsetIsRejected) {
  CorruptionFixture fix;
  for (size_t len = 0; len < fix.data_blob.size(); ++len) {
    WriteAll(fix.data_path, fix.data_blob.substr(0, len));
    Status st = fix.TryOpen();
    EXPECT_TRUE(st.IsCorruption() || st.IsIOError())
        << "data truncated to " << len << ": " << st.ToString();
  }
}

TEST(SeqDbCorruptionTest, AppendedGarbageIsRejected) {
  CorruptionFixture fix;
  WriteAll(fix.index_path, fix.index_blob + std::string(5, '\0'));
  EXPECT_TRUE(fix.TryOpen().IsCorruption());
  WriteAll(fix.index_path, fix.index_blob);
  WriteAll(fix.data_path, fix.data_blob + std::string(5, '\0'));
  EXPECT_TRUE(fix.TryOpen().IsCorruption());
}

TEST(SeqDbCorruptionTest, EverySingleBitFlipInTheIndexIsRejected) {
  CorruptionFixture fix;
  for (size_t byte = 0; byte < fix.index_blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = fix.index_blob;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      WriteAll(fix.index_path, mutated);
      Status st = fix.TryOpen();
      EXPECT_TRUE(st.IsCorruption())
          << "index bit " << bit << " of byte " << byte << " survived: "
          << st.ToString();
    }
  }
}

TEST(SeqDbCorruptionTest, EverySingleBitFlipInTheDataIsRejected) {
  CorruptionFixture fix;
  for (size_t byte = 0; byte < fix.data_blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = fix.data_blob;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      WriteAll(fix.data_path, mutated);
      Status st = fix.TryOpen();
      EXPECT_TRUE(st.IsCorruption())
          << "data bit " << bit << " of byte " << byte << " survived: "
          << st.ToString();
    }
  }
}

TEST(SeqDbCorruptionTest, MismatchedDataAndIndexPairIsRejected) {
  // The index carries the data file's CRC, so pairing it with another
  // complete, self-consistent data file (the stale-data crash window, or a
  // copy gone wrong) must be detected.
  CorruptionFixture fix;
  SequenceDatabase other;
  ASSERT_TRUE(other.AddText("ababa", "x", 0).ok());
  ASSERT_TRUE(other.AddText("bab", "y", 1).ok());  // Same shape, new bytes.
  const std::string other_path = fix.File("other.sqdb");
  ASSERT_TRUE(WriteSeqDb(other, other_path).ok());
  std::filesystem::copy_file(
      other_path, fix.data_path,
      std::filesystem::copy_options::overwrite_existing);
  EXPECT_TRUE(fix.TryOpen().IsCorruption());
}

TEST(SeqDbCorruptionTest, SkippingDataVerificationStillChecksTheShape) {
  // verify_data=false skips the streaming CRC pass (the documented opt-out
  // for huge read-mostly corpora) but structural checks on the data header
  // must still hold.
  CorruptionFixture fix;
  SeqDbReaderOptions options;
  options.verify_data = false;
  {
    SeqDbReader reader;
    ASSERT_TRUE(SeqDbReader::Open(fix.data_path, &reader, options).ok());
    EXPECT_EQ(reader.size(), 2u);
  }
  WriteAll(fix.data_path, fix.data_blob.substr(0, fix.data_blob.size() - 2));
  SeqDbReader reader;
  EXPECT_TRUE(
      SeqDbReader::Open(fix.data_path, &reader, options).IsCorruption());
}

}  // namespace
}  // namespace cluseq
