#include "core/cluster.h"

#include <gtest/gtest.h>

namespace cluseq {
namespace {

PstOptions Opts() {
  PstOptions o;
  o.max_depth = 4;
  o.significance_threshold = 2;
  return o;
}

TEST(ClusterTest, FreshClusterIsEmpty) {
  Cluster c(7, 4, Opts());
  EXPECT_EQ(c.id(), 7u);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.seed_index(), -1);
  EXPECT_EQ(c.pst().total_symbols(), 0u);
}

TEST(ClusterTest, SeedBuildsPstFromWholeSequence) {
  Cluster c(0, 3, Opts());
  Sequence seq({0, 1, 2, 0, 1});
  c.Seed(seq, 5);
  EXPECT_EQ(c.seed_index(), 5);
  EXPECT_EQ(c.pst().total_symbols(), 5u);
  EXPECT_TRUE(c.HasAbsorbed(5));
  EXPECT_FALSE(c.HasAbsorbed(6));
}

TEST(ClusterTest, AbsorbSegmentOnlyOncePerSequence) {
  Cluster c(0, 3, Opts());
  std::vector<SymbolId> segment = {0, 1, 0, 1};
  c.AbsorbSegment(3, segment);
  EXPECT_EQ(c.pst().total_symbols(), 4u);
  // A second absorb of the same sequence is a no-op.
  c.AbsorbSegment(3, segment);
  EXPECT_EQ(c.pst().total_symbols(), 4u);
  // A different sequence contributes.
  c.AbsorbSegment(4, segment);
  EXPECT_EQ(c.pst().total_symbols(), 8u);
}

TEST(ClusterTest, MembershipBookkeeping) {
  Cluster c(0, 3, Opts());
  c.AddMember(1);
  c.AddMember(9);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.members(), (std::vector<size_t>{1, 9}));
  c.ClearMembers();
  EXPECT_EQ(c.size(), 0u);
  c.SetMembers({4, 5, 6});
  EXPECT_EQ(c.size(), 3u);
}

TEST(ClusterTest, ResetPstClearsStatisticsAndAbsorptions) {
  Cluster c(0, 3, Opts());
  Sequence seq({0, 1, 2, 0, 1, 2});
  c.Seed(seq, 0);
  ASSERT_GT(c.pst().NumNodes(), 1u);
  c.ResetPst();
  EXPECT_EQ(c.pst().NumNodes(), 1u);
  EXPECT_EQ(c.pst().total_symbols(), 0u);
  EXPECT_FALSE(c.HasAbsorbed(0));
  // Absorption works again after reset.
  c.AbsorbSegment(0, std::vector<SymbolId>{0, 1});
  EXPECT_EQ(c.pst().total_symbols(), 2u);
}

}  // namespace
}  // namespace cluseq
