// End-to-end integration tests spanning generators, CLUSEQ, baselines and
// evaluation — scaled-down versions of the paper's experiments that must
// hold as invariants, not just benchmarks.

#include <gtest/gtest.h>

#include "baselines/baseline_clusterers.h"
#include "core/cluseq.h"
#include "core/similarity.h"
#include "eval/metrics.h"
#include "pst/pst_serialization.h"
#include "seq/io.h"
#include "synth/language_like.h"
#include "synth/protein_like.h"

#include <sstream>

namespace cluseq {
namespace {

CluseqOptions SmallOptions() {
  CluseqOptions o;
  o.initial_clusters = 2;
  o.similarity_threshold = 1.05;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 10;
  o.pst.max_depth = 5;
  o.rng_seed = 17;
  return o;
}

TEST(IntegrationTest, ProteinLikeFamiliesClusterWell) {
  ProteinLikeOptions po;
  po.num_families = 5;
  po.scale = 0.03;  // ~5 families of ~5-25 sequences.
  po.avg_length = 120;
  po.seed = 21;
  ProteinLikeDataset d = MakeProteinLikeDataset(po);

  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(d.db, SmallOptions(), &result).ok());
  EvaluationSummary eval = Evaluate(d.db, result.best_cluster);
  EXPECT_GT(eval.correct_fraction, 0.6)
      << "clusters=" << result.num_clusters();
}

TEST(IntegrationTest, LanguageIdentification) {
  LanguageLikeOptions lo;
  lo.sentences_per_language = 30;
  lo.noise_sentences = 5;
  lo.min_sentence_length = 60;
  lo.max_sentence_length = 120;
  lo.seed = 22;
  LanguageLikeDataset d = MakeLanguageLikeDataset(lo);

  CluseqOptions o = SmallOptions();
  o.initial_clusters = 3;
  o.significance_threshold = 3;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(d.db, o, &result).ok());
  EvaluationSummary eval = Evaluate(d.db, result.best_cluster);
  EXPECT_GT(eval.macro.recall, 0.5);
  EXPECT_GT(eval.macro.precision, 0.5);
}

TEST(IntegrationTest, CluseqBeatsPlainEditDistanceOnBlockStructure) {
  // Two families that share content in different block orders: sequential
  // statistics (CLUSEQ) should beat global-alignment ED — the paper's core
  // claim behind Table 2.
  ProteinLikeOptions po;
  po.num_families = 3;
  po.scale = 0.03;
  po.avg_length = 100;
  po.seed = 23;
  ProteinLikeDataset d = MakeProteinLikeDataset(po);

  ClusteringResult cluseq_result;
  ASSERT_TRUE(RunCluseq(d.db, SmallOptions(), &cluseq_result).ok());
  double cluseq_acc =
      Evaluate(d.db, cluseq_result.best_cluster).correct_fraction;

  DistanceClusterOptions ed;
  ed.num_clusters = 3;
  ed.seed = 5;
  std::vector<int32_t> ed_assign;
  ASSERT_TRUE(EditDistanceCluster(d.db, ed, &ed_assign).ok());
  double ed_acc = Evaluate(d.db, ed_assign).correct_fraction;

  // ED on same-length Markov families is near chance; CLUSEQ is not.
  EXPECT_GT(cluseq_acc, ed_acc - 0.05)
      << "cluseq=" << cluseq_acc << " ed=" << ed_acc;
  EXPECT_GT(cluseq_acc, 0.5);
}

TEST(IntegrationTest, TrainedClusterPstRoundTripsThroughSerialization) {
  ProteinLikeOptions po;
  po.num_families = 2;
  po.scale = 0.02;
  po.avg_length = 80;
  po.seed = 24;
  ProteinLikeDataset d = MakeProteinLikeDataset(po);

  CluseqClusterer clusterer(d.db, SmallOptions());
  ClusteringResult result;
  ASSERT_TRUE(clusterer.Run(&result).ok());
  ASSERT_GE(clusterer.clusters().size(), 1u);

  const Pst& pst = clusterer.clusters()[0].pst();
  std::stringstream buffer;
  ASSERT_TRUE(SavePst(pst, buffer).ok());
  Pst loaded(1, PstOptions{});
  ASSERT_TRUE(LoadPst(buffer, &loaded).ok());

  // Classification via the loaded tree matches the live tree.
  BackgroundModel bg = BackgroundModel::FromDatabase(d.db);
  for (size_t i = 0; i < std::min<size_t>(d.db.size(), 10); ++i) {
    double live = ComputeSimilarity(pst, bg, d.db[i]).log_sim;
    double restored = ComputeSimilarity(loaded, bg, d.db[i]).log_sim;
    EXPECT_DOUBLE_EQ(live, restored);
  }
}

TEST(IntegrationTest, MemoryBoundedRunStaysAccurate) {
  // Fig 4 invariant: a reasonable PST budget barely hurts accuracy.
  ProteinLikeOptions po;
  po.num_families = 3;
  po.scale = 0.03;
  po.avg_length = 100;
  po.seed = 25;
  ProteinLikeDataset d = MakeProteinLikeDataset(po);

  CluseqOptions unbounded = SmallOptions();
  ClusteringResult r_unbounded;
  ASSERT_TRUE(RunCluseq(d.db, unbounded, &r_unbounded).ok());
  double acc_unbounded =
      Evaluate(d.db, r_unbounded.best_cluster).correct_fraction;

  CluseqOptions bounded = SmallOptions();
  bounded.pst.max_memory_bytes = 256 * 1024;
  ClusteringResult r_bounded;
  ASSERT_TRUE(RunCluseq(d.db, bounded, &r_bounded).ok());
  double acc_bounded = Evaluate(d.db, r_bounded.best_cluster).correct_fraction;

  EXPECT_GT(acc_bounded, acc_unbounded - 0.25);
}

TEST(IntegrationTest, FastaRoundTripThenCluster) {
  ProteinLikeOptions po;
  po.num_families = 2;
  po.scale = 0.02;
  po.avg_length = 60;
  po.seed = 26;
  ProteinLikeDataset d = MakeProteinLikeDataset(po);

  std::ostringstream fasta;
  ASSERT_TRUE(WriteFasta(d.db, fasta).ok());
  std::istringstream in(fasta.str());
  SequenceDatabase restored;
  ASSERT_TRUE(ReadFasta(in, &restored).ok());
  ASSERT_EQ(restored.size(), d.db.size());

  ClusteringResult r1, r2;
  ASSERT_TRUE(RunCluseq(d.db, SmallOptions(), &r1).ok());
  ASSERT_TRUE(RunCluseq(restored, SmallOptions(), &r2).ok());
  EXPECT_EQ(r1.clusters, r2.clusters);  // Byte-identical data and seed.
}

}  // namespace
}  // namespace cluseq
