#include "util/histogram.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace cluseq {
namespace {

TEST(HistogramTest, BucketsAndCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.num_buckets(), 10u);
  EXPECT_DOUBLE_EQ(h.bucket_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bucket_center(9), 9.5);
}

TEST(HistogramTest, AddPlacesValues) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.1);
  h.Add(5.5);
  h.Add(5.6);
  h.Add(9.99);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total_count(), 4u);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(50.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(HistogramTest, AddCountAndClear) {
  Histogram h(0.0, 1.0, 4);
  h.AddCount(0.3, 7);
  EXPECT_EQ(h.count(1), 7u);
  EXPECT_EQ(h.total_count(), 7u);
  h.Clear();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.count(1), 0u);
}

TEST(RegressionSlopeTest, ExactLine) {
  std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys = {1, 3, 5, 7, 9};  // slope 2
  EXPECT_NEAR(RegressionSlope(xs, ys), 2.0, 1e-9);
}

TEST(RegressionSlopeTest, FlatLine) {
  std::vector<double> xs = {0, 1, 2, 3};
  std::vector<double> ys = {4, 4, 4, 4};
  EXPECT_NEAR(RegressionSlope(xs, ys), 0.0, 1e-12);
}

TEST(RegressionSlopeTest, DegenerateInputs) {
  EXPECT_EQ(RegressionSlope({}, {}), 0.0);
  EXPECT_EQ(RegressionSlope({1.0}, {2.0}), 0.0);
  // All x equal: denominator 0.
  EXPECT_EQ(RegressionSlope({2.0, 2.0, 2.0}, {1.0, 5.0, 9.0}), 0.0);
}

TEST(FindValleyTest, TooFewPoints) {
  EXPECT_FALSE(FindValley({1, 2, 3}, {3, 2, 1}).found);
}

// A piecewise-linear curve dropping steeply then flattening: the valley is
// at the knee.
TEST(FindValleyTest, FindsKneeOfPiecewiseLinearCurve) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(i < 10 ? 1000.0 - 95.0 * i : 50.0 - 1.0 * (i - 10));
  }
  ValleyResult v = FindValley(xs, ys);
  ASSERT_TRUE(v.found);
  EXPECT_NEAR(v.x, 10.0, 2.0);
  EXPECT_GT(v.slope_diff, 50.0);
}

TEST(FindValleyTest, SymmetricVShape) {
  // For a V the sharpest turn is at the bottom.
  std::vector<double> xs, ys;
  for (int i = 0; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(std::abs(i - 10) * 100.0);
  }
  ValleyResult v = FindValley(xs, ys);
  ASSERT_TRUE(v.found);
  EXPECT_NEAR(v.x, 10.0, 1.5);
}

TEST(FindValleyTest, OnHistogram) {
  // The paper's assumed shape (Figure 3): counts decline steeply over low
  // similarities, then slowly over high ones; the valley is the knee.
  Histogram h(0.0, 10.0, 50);
  for (size_t b = 0; b < 50; ++b) {
    double x = h.bucket_center(b);
    double y = x < 4.0 ? 4000.0 - 950.0 * x : 300.0 - 20.0 * (x - 4.0);
    h.AddCount(x, static_cast<size_t>(std::max(y, 0.0)));
  }
  ValleyResult v = FindValley(h);
  ASSERT_TRUE(v.found);
  EXPECT_NEAR(v.x, 4.0, 1.2);
}

// Property sweep: the valley of steep-then-flat curves tracks the knee for
// many knee positions.
class ValleyKneeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ValleyKneeSweep, TracksKnee) {
  const int knee = GetParam();
  std::vector<double> xs, ys;
  for (int i = 0; i <= 30; ++i) {
    xs.push_back(i);
    ys.push_back(i < knee ? 3000.0 - (3000.0 / knee) * i
                          : 40.0 - 0.5 * (i - knee));
  }
  ValleyResult v = FindValley(xs, ys);
  ASSERT_TRUE(v.found);
  EXPECT_NEAR(v.x, knee, 3.0) << "knee=" << knee;
}

INSTANTIATE_TEST_SUITE_P(Knees, ValleyKneeSweep,
                         ::testing::Values(5, 8, 10, 15, 20, 25));

}  // namespace
}  // namespace cluseq
