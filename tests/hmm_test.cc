#include "baselines/hmm.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "synth/dataset.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

TEST(HmmTest, UniformModelRowsAreStochastic) {
  Hmm hmm(3, 4);
  double pi_sum = 0.0;
  for (size_t s = 0; s < 3; ++s) pi_sum += hmm.initial(s);
  EXPECT_NEAR(pi_sum, 1.0, 1e-12);
  for (size_t r = 0; r < 3; ++r) {
    double a_sum = 0.0, b_sum = 0.0;
    for (size_t s = 0; s < 3; ++s) a_sum += hmm.transition(r, s);
    for (SymbolId v = 0; v < 4; ++v) b_sum += hmm.emission(r, v);
    EXPECT_NEAR(a_sum, 1.0, 1e-12);
    EXPECT_NEAR(b_sum, 1.0, 1e-12);
  }
}

TEST(HmmTest, RandomInitKeepsStochasticity) {
  Hmm hmm(4, 5);
  Rng rng(1);
  hmm.RandomInit(&rng);
  for (size_t r = 0; r < 4; ++r) {
    double a_sum = 0.0, b_sum = 0.0;
    for (size_t s = 0; s < 4; ++s) a_sum += hmm.transition(r, s);
    for (SymbolId v = 0; v < 5; ++v) b_sum += hmm.emission(r, v);
    EXPECT_NEAR(a_sum, 1.0, 1e-9);
    EXPECT_NEAR(b_sum, 1.0, 1e-9);
    for (size_t s = 0; s < 4; ++s) EXPECT_GT(hmm.transition(r, s), 0.0);
  }
}

TEST(HmmTest, LikelihoodSumsToOneOverAllSequences) {
  // For a 2-symbol alphabet and length-3 sequences, the probabilities of all
  // 8 sequences must sum to 1.
  Hmm hmm(2, 2);
  Rng rng(2);
  hmm.RandomInit(&rng);
  double total = 0.0;
  for (int bits = 0; bits < 8; ++bits) {
    Symbols s = {static_cast<SymbolId>(bits & 1),
                 static_cast<SymbolId>((bits >> 1) & 1),
                 static_cast<SymbolId>((bits >> 2) & 1)};
    total += std::exp(hmm.LogLikelihood(s));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HmmTest, EmptySequenceIsNegInf) {
  Hmm hmm(2, 2);
  EXPECT_TRUE(std::isinf(hmm.LogLikelihood({})));
  EXPECT_TRUE(std::isinf(hmm.LogLikelihoodPerSymbol({})));
}

TEST(HmmTest, PerSymbolNormalization) {
  Hmm hmm(2, 3);
  Rng rng(3);
  hmm.RandomInit(&rng);
  Symbols s = {0, 1, 2, 1};
  EXPECT_NEAR(hmm.LogLikelihoodPerSymbol(s), hmm.LogLikelihood(s) / 4.0,
              1e-12);
}

TEST(HmmTest, BaumWelchImprovesLikelihood) {
  // Train on strongly patterned data; EM must not decrease the likelihood.
  std::vector<Symbols> storage;
  for (int i = 0; i < 10; ++i) {
    Symbols s;
    for (int j = 0; j < 30; ++j) s.push_back(static_cast<SymbolId>(j % 2));
    storage.push_back(std::move(s));
  }
  std::vector<std::span<const SymbolId>> data;
  for (const auto& s : storage) data.emplace_back(s);

  Hmm hmm(2, 2);
  Rng rng(4);
  hmm.RandomInit(&rng);
  double ll0 = hmm.BaumWelchStep(data);
  double prev = ll0;
  for (int it = 0; it < 10; ++it) {
    double ll = hmm.BaumWelchStep(data);
    EXPECT_GE(ll, prev - 1e-6) << "EM decreased likelihood at iter " << it;
    prev = ll;
  }
  EXPECT_GT(prev, ll0);
}

TEST(HmmTest, TrainedModelPrefersItsOwnPattern) {
  std::vector<Symbols> storage;
  for (int i = 0; i < 8; ++i) {
    Symbols s;
    for (int j = 0; j < 40; ++j) s.push_back(static_cast<SymbolId>(j % 3));
    storage.push_back(std::move(s));
  }
  std::vector<std::span<const SymbolId>> data;
  for (const auto& s : storage) data.emplace_back(s);
  Hmm hmm(3, 3);
  Rng rng(5);
  hmm.RandomInit(&rng);
  hmm.Train(data, 30);

  Symbols own;
  for (int j = 0; j < 30; ++j) own.push_back(static_cast<SymbolId>(j % 3));
  Symbols other(30, 0);
  EXPECT_GT(hmm.LogLikelihoodPerSymbol(own),
            hmm.LogLikelihoodPerSymbol(other));
}

TEST(HmmClusterTest, RejectsBadOptions) {
  SequenceDatabase db(Alphabet::Synthetic(2));
  std::vector<int32_t> assign;
  HmmClusterOptions o;
  o.num_clusters = 0;
  EXPECT_TRUE(HmmCluster(db, o, &assign).IsInvalidArgument());
  o = HmmClusterOptions();
  o.num_states = 0;
  EXPECT_TRUE(HmmCluster(db, o, &assign).IsInvalidArgument());
}

TEST(HmmClusterTest, EmptyDatabaseOk) {
  SequenceDatabase db(Alphabet::Synthetic(2));
  std::vector<int32_t> assign;
  HmmClusterOptions o;
  EXPECT_TRUE(HmmCluster(db, o, &assign).ok());
  EXPECT_TRUE(assign.empty());
}

TEST(HmmClusterTest, SeparatesTwoObviousSources) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 2;
  opts.sequences_per_cluster = 15;
  opts.alphabet_size = 5;
  opts.avg_length = 60;
  opts.outlier_fraction = 0.0;
  opts.spread = 0.15;
  opts.seed = 8;
  SequenceDatabase db = MakeSyntheticDataset(opts);

  HmmClusterOptions o;
  o.num_clusters = 2;
  o.num_states = 3;
  o.max_rounds = 6;
  o.seed = 2;
  std::vector<int32_t> assign;
  ASSERT_TRUE(HmmCluster(db, o, &assign).ok());
  EvaluationSummary eval = Evaluate(db, assign);
  EXPECT_GT(eval.correct_fraction, 0.7);
}

TEST(HmmClusterTest, AssignmentShapeValid) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 2;
  opts.sequences_per_cluster = 8;
  opts.alphabet_size = 4;
  opts.avg_length = 40;
  opts.seed = 9;
  SequenceDatabase db = MakeSyntheticDataset(opts);
  HmmClusterOptions o;
  o.num_clusters = 3;
  o.num_states = 2;
  o.max_rounds = 3;
  std::vector<int32_t> assign;
  ASSERT_TRUE(HmmCluster(db, o, &assign).ok());
  ASSERT_EQ(assign.size(), db.size());
  for (int32_t a : assign) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

}  // namespace
}  // namespace cluseq
