// Behavioral tests for the robustness options documented in DESIGN.md §6:
// the data-driven initial threshold, the PST rebuild toggle, and the
// assignment export.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/cluseq.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "synth/dataset.h"
#include "util/string_util.h"

namespace cluseq {
namespace {

SequenceDatabase StrongSignalDb(uint64_t seed) {
  SyntheticDatasetOptions opts;
  opts.num_clusters = 3;
  opts.sequences_per_cluster = 15;
  opts.alphabet_size = 8;
  opts.avg_length = 100;
  opts.outlier_fraction = 0.0;
  opts.spread = 0.25;
  opts.seed = seed;
  return MakeSyntheticDataset(opts);
}

CluseqOptions BaseOptions() {
  CluseqOptions o;
  o.initial_clusters = 3;
  o.significance_threshold = 4;
  o.min_unique_members = 3;
  o.max_iterations = 12;
  o.pst.max_depth = 5;
  o.rng_seed = 7;
  return o;
}

TEST(AutoThresholdTest, StartsAboveUserDefaultOnStrongData) {
  // On strong-signal data the estimated start must exceed the paper default
  // log(1.0005) ~ 0.0005 by a wide margin; the first iteration stats record
  // the threshold actually used.
  SequenceDatabase db = StrongSignalDb(1);
  CluseqOptions o = BaseOptions();
  o.auto_initial_threshold = true;
  o.adjust_threshold = false;  // Freeze so the final value is the start.
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  EXPECT_GT(result.final_log_threshold, 0.5);
}

TEST(AutoThresholdTest, DisabledUsesExplicitValue) {
  SequenceDatabase db = StrongSignalDb(1);
  CluseqOptions o = BaseOptions();
  o.auto_initial_threshold = false;
  o.adjust_threshold = false;
  o.similarity_threshold = 2.5;
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, o, &result).ok());
  EXPECT_NEAR(result.final_log_threshold, std::log(2.5), 1e-12);
}

TEST(AutoThresholdTest, QuantileValidated) {
  CluseqOptions o = BaseOptions();
  o.auto_threshold_quantile = 0.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.auto_threshold_quantile = 1.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.auto_threshold_quantile = 0.75;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(AutoThresholdTest, HigherQuantileGivesHigherStart) {
  SequenceDatabase db = StrongSignalDb(2);
  double starts[2];
  int i = 0;
  for (double q : {0.25, 0.9}) {
    CluseqOptions o = BaseOptions();
    o.auto_threshold_quantile = q;
    o.adjust_threshold = false;
    ClusteringResult result;
    ASSERT_TRUE(RunCluseq(db, o, &result).ok());
    starts[i++] = result.final_log_threshold;
  }
  EXPECT_LE(starts[0], starts[1]);
}

TEST(RebuildToggleTest, BothModesProduceValidClusterings) {
  SequenceDatabase db = StrongSignalDb(3);
  for (bool rebuild : {true, false}) {
    CluseqOptions o = BaseOptions();
    o.rebuild_each_iteration = rebuild;
    ClusteringResult result;
    ASSERT_TRUE(RunCluseq(db, o, &result).ok());
    EvaluationSummary eval = Evaluate(db, result.best_cluster);
    EXPECT_GT(eval.correct_fraction, 0.6) << "rebuild=" << rebuild;
  }
}

TEST(RebuildToggleTest, CumulativeModeIsDeterministicToo) {
  SequenceDatabase db = StrongSignalDb(4);
  CluseqOptions o = BaseOptions();
  o.rebuild_each_iteration = false;
  ClusteringResult r1, r2;
  ASSERT_TRUE(RunCluseq(db, o, &r1).ok());
  ASSERT_TRUE(RunCluseq(db, o, &r2).ok());
  EXPECT_EQ(r1.clusters, r2.clusters);
}

TEST(WriteAssignmentsTest, OneLinePerSequence) {
  SequenceDatabase db = StrongSignalDb(5);
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, BaseOptions(), &result).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteAssignments(result, db, out).ok());
  std::istringstream lines(out.str());
  std::string line;
  size_t count = 0;
  while (std::getline(lines, line)) {
    std::vector<std::string> fields = Split(line, '\t');
    ASSERT_EQ(fields.size(), 3u) << line;
    // Cluster field parses as an integer >= -1.
    long c = std::strtol(fields[1].c_str(), nullptr, 10);
    EXPECT_GE(c, -1);
    EXPECT_LT(c, static_cast<long>(result.num_clusters()));
    ++count;
  }
  EXPECT_EQ(count, db.size());
}

TEST(WriteAssignmentsTest, MissingDirectoryIsIOError) {
  SequenceDatabase db = StrongSignalDb(6);
  ClusteringResult result;
  ASSERT_TRUE(RunCluseq(db, BaseOptions(), &result).ok());
  EXPECT_TRUE(
      WriteAssignmentsFile(result, db, "/no/such/dir/x.tsv").IsIOError());
}

}  // namespace
}  // namespace cluseq
