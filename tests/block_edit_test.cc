#include "baselines/block_edit_distance.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/edit_distance.h"
#include "util/rng.h"

namespace cluseq {
namespace {

using Symbols = std::vector<SymbolId>;

Symbols Enc(const std::string& s) {
  Symbols out;
  for (char c : s) out.push_back(static_cast<SymbolId>(c - 'a'));
  return out;
}

TEST(BlockEditTest, IdenticalSequencesAreOneTile) {
  BlockEditResult r = BlockEditDistance(Enc("abcdefgh"), Enc("abcdefgh"));
  EXPECT_EQ(r.num_tiles, 1u);
  EXPECT_EQ(r.matched_symbols, 8u);
  EXPECT_DOUBLE_EQ(r.distance, 1.0);  // One block op, no unmatched symbols.
}

TEST(BlockEditTest, PaperMotivatingExample) {
  // aaaabbb vs bbbaaaa: plain ED is 6 (see edit_distance_test); with block
  // moves it collapses to two tiles ("aaaa" and "bbb") and zero unmatched
  // symbols — so bbbaaaa is much closer than abcdefg, matching intuition.
  BlockEditResult swapped = BlockEditDistance(Enc("aaaabbb"), Enc("bbbaaaa"));
  EXPECT_EQ(swapped.num_tiles, 2u);
  EXPECT_EQ(swapped.matched_symbols, 7u);
  EXPECT_DOUBLE_EQ(swapped.distance, 2.0);

  BlockEditResult unrelated =
      BlockEditDistance(Enc("aaaabbb"), Enc("abcdefg"));
  EXPECT_GT(unrelated.distance, swapped.distance);
}

TEST(BlockEditTest, DisjointSequencesAllUnmatched) {
  BlockEditResult r = BlockEditDistance(Enc("aaaa"), Enc("bbbb"));
  EXPECT_EQ(r.num_tiles, 0u);
  EXPECT_DOUBLE_EQ(r.distance, 8.0);
}

TEST(BlockEditTest, MinMatchLenFiltersShortTiles) {
  BlockEditOptions opts;
  opts.min_match_len = 5;
  // Common substrings of length 3 only -> no tiles.
  BlockEditResult r = BlockEditDistance(Enc("abcxxx"), Enc("yyyabc"), opts);
  EXPECT_EQ(r.num_tiles, 0u);
  EXPECT_DOUBLE_EQ(r.distance, 12.0);
  opts.min_match_len = 3;
  r = BlockEditDistance(Enc("abcxxx"), Enc("yyyabc"), opts);
  EXPECT_GE(r.num_tiles, 1u);
}

TEST(BlockEditTest, BlockCostScalesTileCharge) {
  BlockEditOptions opts;
  opts.block_cost = 2.5;
  BlockEditResult r = BlockEditDistance(Enc("abcdefgh"), Enc("abcdefgh"), opts);
  EXPECT_DOUBLE_EQ(r.distance, 2.5);
}

TEST(BlockEditTest, EmptyInputs) {
  BlockEditResult r = BlockEditDistance(Enc(""), Enc(""));
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  r = BlockEditDistance(Enc("abc"), Enc(""));
  EXPECT_DOUBLE_EQ(r.distance, 3.0);
  EXPECT_EQ(r.num_tiles, 0u);
}

TEST(BlockEditTest, Symmetry) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Symbols a(10 + rng.Uniform(20)), b(10 + rng.Uniform(20));
    for (auto& s : a) s = static_cast<SymbolId>(rng.Uniform(4));
    for (auto& s : b) s = static_cast<SymbolId>(rng.Uniform(4));
    EXPECT_DOUBLE_EQ(BlockEditDistance(a, b).distance,
                     BlockEditDistance(b, a).distance);
  }
}

TEST(BlockEditTest, TilesNeverOverlap) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Symbols a(30), b(30);
    for (auto& s : a) s = static_cast<SymbolId>(rng.Uniform(3));
    for (auto& s : b) s = static_cast<SymbolId>(rng.Uniform(3));
    BlockEditResult r = BlockEditDistance(a, b);
    EXPECT_LE(r.matched_symbols, std::min(a.size(), b.size()));
  }
}

TEST(BlockEditTest, NeverWorseThanNoMatching) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Symbols a(20), b(25);
    for (auto& s : a) s = static_cast<SymbolId>(rng.Uniform(3));
    for (auto& s : b) s = static_cast<SymbolId>(rng.Uniform(3));
    BlockEditResult r = BlockEditDistance(a, b);
    EXPECT_LE(r.distance, static_cast<double>(a.size() + b.size()));
  }
}

TEST(BlockEditTest, RearrangedBlocksBeatEditDistance) {
  // A long sequence split into blocks and shuffled: block distance stays
  // small while the plain edit distance explodes — the reason EDBO exists.
  Symbols original = Enc("aaaaabbbbbcccccdddddeeeee");
  Symbols shuffled = Enc("eeeeedddddcccccbbbbbaaaaa");
  BlockEditResult block = BlockEditDistance(original, shuffled);
  size_t plain = EditDistance(original, shuffled);
  EXPECT_LT(block.distance, static_cast<double>(plain));
  EXPECT_EQ(block.num_tiles, 5u);
}

}  // namespace
}  // namespace cluseq
