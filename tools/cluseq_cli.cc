// cluseq_cli — command-line front end for the CLUSEQ library.
//
// Subcommands:
//   generate  synthesize a labeled dataset and write it to a file
//   import    convert a FASTA/TSV corpus to the indexed .sqdb store
//   export    convert a .sqdb store back to FASTA/TSV
//   cluster   cluster a dataset and write per-sequence assignments
//   classify  score sequences against previously saved cluster PSTs
//
// Examples:
//   cluseq_cli generate --kind=protein --out=prot.fasta --scale=0.05
//   cluseq_cli import --input=prot.fasta --out=prot.sqdb
//   cluseq_cli cluster --input=prot.sqdb --assignments=out.tsv
//       --model-dir=models --c=5 --min-members=4
//   cluseq_cli classify --input=more.fasta --model-dir=models
//
// Input format is chosen by extension: .sqdb → the indexed binary store
// (mmap-backed, no parsing, corpus stays out of process RSS);
// .fa/.fasta → FASTA; else TSV ("id<TAB>label<TAB>text"; label -1 =
// unlabeled). generate/import/export pick the output format the same way,
// so `generate --out=corpus.sqdb` writes the binary store directly.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluseq/cluseq.h"

namespace {

using namespace cluseq;

// Cooperative cancellation for the cluster subcommand. The first
// SIGINT/SIGTERM requests a clean stop: the clusterer finishes its current
// phase, flushes a final checkpoint, the CLI writes whatever outputs were
// requested, and exits 3. A second signal restores the default disposition
// and re-raises, i.e. dies immediately. Everything in the handler is
// async-signal-safe: one relaxed atomic store, signal(), raise(), write().
CancellationToken g_cancel;
volatile sig_atomic_t g_signal_seen = 0;

void HandleStopSignal(int sig) {
  if (g_signal_seen) {
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    return;
  }
  g_signal_seen = 1;
  g_cancel.RequestCancel();
  static const char kMsg[] =
      "\ncluseq: stop requested; finishing current phase and saving state "
      "(signal again to abort now)\n";
  [[maybe_unused]] ssize_t n = write(2, kMsg, sizeof(kMsg) - 1);
}

void InstallStopHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = &HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: let blocking calls see EINTR.
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsFastaPath(const std::string& path) {
  return HasSuffix(path, ".fa") || HasSuffix(path, ".fasta");
}

uint64_t FileSizeBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return 0;
  const auto pos = in.tellg();
  return pos < 0 ? 0 : static_cast<uint64_t>(pos);
}

// One loaded input corpus behind the SequenceStore interface: either a
// parsed in-RAM SequenceDatabase (FASTA/TSV) or the mmap-backed SeqDbReader
// (.sqdb), chosen by extension. Also carries the provenance that the
// --verbose corpus line and the RunReport record.
struct LoadedCorpus {
  SequenceDatabase db;
  SeqDbReader reader;
  bool is_sqdb = false;
  std::string format;  // "fasta" / "tsv" / "sqdb"
  uint64_t bytes = 0;  // On-disk size (data + index for .sqdb).

  const SequenceStore& store() const {
    return is_sqdb ? static_cast<const SequenceStore&>(reader)
                   : static_cast<const SequenceStore&>(db);
  }
  bool mmap() const { return is_sqdb && reader.is_mmap(); }
};

Status LoadCorpus(const std::string& path, LoadedCorpus* corpus) {
  if (IsSeqDbPath(path)) {
    corpus->is_sqdb = true;
    corpus->format = "sqdb";
    CLUSEQ_RETURN_NOT_OK(SeqDbReader::Open(path, &corpus->reader));
    corpus->bytes =
        corpus->reader.data_bytes() + corpus->reader.index_bytes();
    return Status::OK();
  }
  corpus->is_sqdb = false;
  if (IsFastaPath(path)) {
    corpus->format = "fasta";
    CLUSEQ_RETURN_NOT_OK(ReadFastaFile(path, &corpus->db));
  } else {
    corpus->format = "tsv";
    CLUSEQ_RETURN_NOT_OK(ReadTsvFile(path, &corpus->db));
  }
  corpus->bytes = FileSizeBytes(path);
  return Status::OK();
}

void PrintCorpusLine(const std::string& path, const LoadedCorpus& corpus) {
  std::printf("corpus: %s format=%s records=%zu bytes=%llu %s\n",
              path.c_str(), corpus.format.c_str(), corpus.store().size(),
              static_cast<unsigned long long>(corpus.bytes),
              corpus.is_sqdb ? (corpus.mmap() ? "(mmap)" : "(buffered)")
                             : "(in-ram)");
}

Status WriteStore(const SequenceStore& store, const std::string& path,
                  SeqDbWriteStats* sqdb_stats = nullptr) {
  if (IsSeqDbPath(path)) return WriteSeqDb(store, path, sqdb_stats);
  if (IsFastaPath(path)) return WriteFastaFile(store, path);
  return WriteTsvFile(store, path);
}

int Fail(const Status& st, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  return 1;
}

// Dumps the current registry state in Prometheus text format when the flag
// was given. Returns 0, or Fail()'s exit code on a write error.
int MaybeWritePrometheus(const std::string& path) {
  if (path.empty()) return 0;
  Status st = obs::WritePrometheusTextFile(
      obs::MetricsRegistry::Get().Snapshot(), path);
  if (!st.ok()) return Fail(st, "metrics_prom");
  std::printf("prometheus metrics -> %s\n", path.c_str());
  return 0;
}

struct CommonFlags {
  std::string input;
  std::string output;
  std::string assignments;
  std::string model_dir;
  std::string metrics_json;
  std::string metrics_prom;
  std::string trace_json;
  obs::SamplingPolicy trace_sample;  // Default: keep every span.
  std::string kind = "synthetic";
  double scale = 0.05;
  uint64_t seed = 42;
  bool strict = false;
  double max_seconds = 0.0;  // 0 = no deadline.
  CluseqOptions options;

  // Returns false (after printing) on an unknown flag.
  bool Parse(int argc, char** argv) {
    std::string v;
    for (int i = 2; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (ParseFlag(arg, "input", &v)) {
        input = v;
      } else if (ParseFlag(arg, "out", &v) || ParseFlag(arg, "output", &v)) {
        output = v;
      } else if (ParseFlag(arg, "assignments", &v)) {
        assignments = v;
      } else if (ParseFlag(arg, "model-dir", &v)) {
        model_dir = v;
      } else if (ParseFlag(arg, "metrics_json", &v) ||
                 ParseFlag(arg, "metrics-json", &v)) {
        metrics_json = v;
      } else if (ParseFlag(arg, "metrics_prom", &v) ||
                 ParseFlag(arg, "metrics-prom", &v)) {
        metrics_prom = v;
      } else if (ParseFlag(arg, "trace_json", &v) ||
                 ParseFlag(arg, "trace-json", &v)) {
        trace_json = v;
      } else if (ParseFlag(arg, "trace_sample", &v) ||
                 ParseFlag(arg, "trace-sample", &v)) {
        Status st = obs::SamplingPolicy::Parse(v, &trace_sample);
        if (!st.ok()) {
          std::fprintf(stderr, "--trace_sample: %s\n",
                       st.ToString().c_str());
          return false;
        }
      } else if (ParseFlag(arg, "kind", &v)) {
        kind = v;
      } else if (ParseFlag(arg, "scale", &v)) {
        scale = std::strtod(v.c_str(), nullptr);
      } else if (ParseFlag(arg, "seed", &v)) {
        seed = std::strtoull(v.c_str(), nullptr, 10);
        options.rng_seed = seed;
      } else if (ParseFlag(arg, "k", &v)) {
        options.initial_clusters = std::strtoul(v.c_str(), nullptr, 10);
      } else if (ParseFlag(arg, "c", &v)) {
        options.significance_threshold =
            std::strtoull(v.c_str(), nullptr, 10);
      } else if (ParseFlag(arg, "t", &v)) {
        options.similarity_threshold = std::strtod(v.c_str(), nullptr);
        options.auto_initial_threshold = false;
      } else if (ParseFlag(arg, "depth", &v)) {
        options.pst.max_depth = std::strtoul(v.c_str(), nullptr, 10);
      } else if (ParseFlag(arg, "min-members", &v)) {
        options.min_unique_members = std::strtoul(v.c_str(), nullptr, 10);
      } else if (ParseFlag(arg, "max-iterations", &v)) {
        options.max_iterations = std::strtoul(v.c_str(), nullptr, 10);
      } else if (ParseFlag(arg, "threads", &v)) {
        options.num_threads = std::strtoul(v.c_str(), nullptr, 10);
      } else if (ParseFlag(arg, "pst-memory", &v)) {
        options.pst.max_memory_bytes = std::strtoul(v.c_str(), nullptr, 10);
      } else if (ParseFlag(arg, "batched_scan", &v) ||
                 ParseFlag(arg, "batched-scan", &v)) {
        if (v == "on") {
          options.batched_scan = true;
        } else if (v == "off") {
          options.batched_scan = false;
        } else {
          std::fprintf(stderr, "--batched_scan takes 'on' or 'off', got %s\n",
                       v.c_str());
          return false;
        }
      } else if (ParseFlag(arg, "prefilter", &v)) {
        if (v == "on") {
          options.prefilter = true;
        } else if (v == "off") {
          options.prefilter = false;
        } else {
          std::fprintf(stderr, "--prefilter takes 'on' or 'off', got %s\n",
                       v.c_str());
          return false;
        }
      } else if (ParseFlag(arg, "adjust_window", &v) ||
                 ParseFlag(arg, "adjust-window", &v)) {
        options.adjust_bound_window = std::strtod(v.c_str(), nullptr);
      } else if (ParseFlag(arg, "sig_budget_mb", &v) ||
                 ParseFlag(arg, "sig-budget-mb", &v)) {
        options.signature_budget_bytes =
            std::strtoull(v.c_str(), nullptr, 10) * 1024 * 1024;
      } else if (ParseFlag(arg, "prefilter_l15", &v) ||
                 ParseFlag(arg, "prefilter-l15", &v)) {
        options.prefilter_prefix = std::strtoul(v.c_str(), nullptr, 10);
      } else if (ParseFlag(arg, "checkpoint_dir", &v) ||
                 ParseFlag(arg, "checkpoint-dir", &v)) {
        options.checkpoint_dir = v;
      } else if (ParseFlag(arg, "checkpoint_every", &v) ||
                 ParseFlag(arg, "checkpoint-every", &v)) {
        options.checkpoint_every = std::strtoull(v.c_str(), nullptr, 10);
      } else if (arg == "--resume") {
        options.resume = true;
      } else if (ParseFlag(arg, "max_seconds", &v) ||
                 ParseFlag(arg, "max-seconds", &v)) {
        max_seconds = std::strtod(v.c_str(), nullptr);
      } else if (arg == "--strict") {
        strict = true;
      } else if (arg == "--verbose") {
        options.verbose = true;
        SetLogLevel(LogLevel::kInfo);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
        return false;
      }
    }
    return true;
  }
};

int RunGenerate(const CommonFlags& flags) {
  if (flags.output.empty()) {
    std::fprintf(stderr, "generate: --out=<path> is required\n");
    return 2;
  }
  SequenceDatabase db;
  if (flags.kind == "protein") {
    ProteinLikeOptions o;
    o.scale = flags.scale;
    o.seed = flags.seed;
    db = MakeProteinLikeDataset(o).db;
  } else if (flags.kind == "language") {
    LanguageLikeOptions o;
    o.sentences_per_language =
        static_cast<size_t>(600 * flags.scale) + 10;
    o.noise_sentences = static_cast<size_t>(100 * flags.scale) + 2;
    o.seed = flags.seed;
    db = MakeLanguageLikeDataset(o).db;
  } else if (flags.kind == "synthetic") {
    SyntheticDatasetOptions o;
    o.num_clusters = 10;
    o.sequences_per_cluster =
        static_cast<size_t>(100 * flags.scale) + 5;
    o.avg_length = 300;
    o.seed = flags.seed;
    db = MakeSyntheticDataset(o);
  } else {
    std::fprintf(stderr,
                 "generate: unknown --kind '%s' "
                 "(expected synthetic|protein|language)\n",
                 flags.kind.c_str());
    return 2;
  }
  Status st = WriteStore(db, flags.output);
  if (!st.ok()) return Fail(st, "write");
  std::printf("wrote %zu sequences (%zu labels) to %s\n", db.size(),
              db.NumLabels(), flags.output.c_str());
  return 0;
}

int RunImport(const CommonFlags& flags) {
  if (flags.input.empty() || flags.output.empty()) {
    std::fprintf(stderr, "import: --input=<path> and --out=<path.sqdb> are "
                         "required\n");
    return 2;
  }
  if (!IsSeqDbPath(flags.output)) {
    std::fprintf(stderr, "import: --out must end in .sqdb (got %s)\n",
                 flags.output.c_str());
    return 2;
  }
  LoadedCorpus corpus;
  Status st = LoadCorpus(flags.input, &corpus);
  if (!st.ok()) return Fail(st, "read");
  SeqDbWriteStats stats;
  st = WriteSeqDb(corpus.store(), flags.output, &stats);
  if (!st.ok()) return Fail(st, "write");
  std::printf("imported %llu records (%llu symbols) -> %s "
              "(%llu data + %llu index bytes)\n",
              static_cast<unsigned long long>(stats.records),
              static_cast<unsigned long long>(stats.total_symbols),
              flags.output.c_str(),
              static_cast<unsigned long long>(stats.data_bytes),
              static_cast<unsigned long long>(stats.index_bytes));
  return MaybeWritePrometheus(flags.metrics_prom);
}

int RunExport(const CommonFlags& flags) {
  if (flags.input.empty() || flags.output.empty()) {
    std::fprintf(stderr,
                 "export: --input=<path.sqdb> and --out=<path> are "
                 "required\n");
    return 2;
  }
  LoadedCorpus corpus;
  Status st = LoadCorpus(flags.input, &corpus);
  if (!st.ok()) return Fail(st, "read");
  st = WriteStore(corpus.store(), flags.output);
  if (!st.ok()) return Fail(st, "write");
  std::printf("exported %zu records -> %s\n", corpus.store().size(),
              flags.output.c_str());
  return 0;
}

int RunCluster(CommonFlags& flags) {
  if (flags.input.empty()) {
    std::fprintf(stderr, "cluster: --input=<path> is required\n");
    return 2;
  }
  LoadedCorpus corpus;
  Status st = LoadCorpus(flags.input, &corpus);
  if (!st.ok()) return Fail(st, "read");
  const SequenceStore& db = corpus.store();
  std::printf("read %zu sequences over %zu symbols\n", db.size(),
              db.alphabet().size());
  if (flags.options.verbose) PrintCorpusLine(flags.input, corpus);

  if (!flags.trace_json.empty()) {
    obs::TraceRecorder::Get().Start(flags.trace_sample);
  }
  flags.options.cancellation = &g_cancel;
  flags.options.checkpoint_strict = flags.strict;
  if (flags.max_seconds > 0.0) g_cancel.SetTimeout(flags.max_seconds);
  InstallStopHandlers();
  CluseqClusterer clusterer(db, flags.options);
  ClusteringResult result;
  st = clusterer.Run(&result);
  if (!flags.trace_json.empty()) obs::TraceRecorder::Get().Stop();
  if (!st.ok()) return Fail(st, "cluster");
  if (result.resumed_from_checkpoint) {
    std::printf("resumed from checkpoint in %s\n",
                flags.options.checkpoint_dir.c_str());
  }
  if (result.interrupted) {
    std::fprintf(stderr,
                 "cluseq: interrupted after %zu iterations; reporting the "
                 "last completed iteration boundary%s\n",
                 result.iterations,
                 flags.options.checkpoint_dir.empty()
                     ? ""
                     : " (checkpoint saved; rerun with --resume)");
  }
  std::printf("clusters: %zu   unclustered: %zu   iterations: %zu   "
              "final log t: %.3f\n",
              result.num_clusters(), result.num_unclustered,
              result.iterations, result.final_log_threshold);
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    std::printf("  cluster %zu: %zu members\n", c,
                result.clusters[c].size());
  }
  bool have_eval = false;
  EvaluationSummary eval;
  if (db.NumLabels() > 0) {
    eval = Evaluate(db, result.best_cluster);
    have_eval = true;
    std::printf("vs labels: %.1f%% correct, purity %.2f, NMI %.2f\n",
                eval.correct_fraction * 100.0, eval.purity, eval.nmi);
  }

  if (!flags.metrics_json.empty()) {
    obs::RunReport report = *clusterer.report();
    report.corpus_format = corpus.format;
    report.corpus_records = db.size();
    report.corpus_bytes = corpus.bytes;
    report.corpus_mmap = corpus.mmap();
    if (have_eval) {
      report.has_eval = true;
      report.eval_correct_fraction = eval.correct_fraction;
      report.eval_macro_f1 = eval.macro.f1;
      report.eval_purity = eval.purity;
      report.eval_nmi = eval.nmi;
      report.eval_found_clusters = eval.num_found_clusters;
      report.eval_unassigned = eval.num_unassigned;
    }
    st = obs::WriteRunReportJsonFile(report, flags.metrics_json);
    if (!st.ok()) return Fail(st, "metrics_json");
    std::printf("run report -> %s\n", flags.metrics_json.c_str());
  }
  if (int rc = MaybeWritePrometheus(flags.metrics_prom); rc != 0) return rc;
  if (!flags.trace_json.empty()) {
    st = obs::TraceRecorder::Get().WriteJsonFile(flags.trace_json);
    if (!st.ok()) return Fail(st, "trace_json");
    std::printf("trace -> %s\n", flags.trace_json.c_str());
  }

  if (!flags.assignments.empty()) {
    st = WriteAssignmentsFile(result, db, flags.assignments);
    if (!st.ok()) return Fail(st, "assignments");
    std::printf("assignments -> %s\n", flags.assignments.c_str());
  }
  if (!flags.model_dir.empty() && result.interrupted) {
    // The live trees may be mid-iteration after a cancellation; only
    // boundary-consistent state (the checkpoint) is safe to persist.
    std::fprintf(stderr,
                 "cluseq: skipping --model-dir export on interrupted run "
                 "(resume and finish to export models)\n");
  } else if (!flags.model_dir.empty()) {
    st = EnsureDirectory(flags.model_dir);
    if (!st.ok()) return Fail(st, "model-dir");
    std::vector<std::shared_ptr<const FrozenPst>> snapshots;
    for (size_t c = 0; c < clusterer.clusters().size(); ++c) {
      std::string base = flags.model_dir + "/cluster" + std::to_string(c);
      // The live tree (retrainable) and the compiled snapshot (scoring-only,
      // training background baked in) side by side; classify prefers the
      // snapshot.
      st = SavePstToFile(clusterer.clusters()[c].pst(), base + ".pst");
      if (!st.ok()) return Fail(st, "save model");
      auto frozen = std::make_shared<FrozenPst>(clusterer.clusters()[c].pst(),
                                                clusterer.background());
      st = SaveFrozenPstToFile(*frozen, base + ".fpst");
      if (!st.ok()) return Fail(st, "save snapshot");
      snapshots.push_back(std::move(frozen));
    }
    std::printf("models -> %s/cluster*.{pst,fpst}\n",
                flags.model_dir.c_str());
    bool bankable = !snapshots.empty();
    for (const auto& m : snapshots) {
      bankable = bankable && !m->empty() &&
                 m->alphabet_size() == snapshots.front()->alphabet_size();
    }
    if (bankable) {
      // One mmap-able .fbank bundling every snapshot; classify prefers it.
      FrozenBank bank(std::move(snapshots));
      st = SaveFrozenBankToFile(bank, flags.model_dir + "/bank.fbank");
      if (!st.ok()) return Fail(st, "save bank");
      std::printf("bank -> %s/bank.fbank\n", flags.model_dir.c_str());
    }
  }
  return result.interrupted ? 3 : 0;
}

int RunClassify(const CommonFlags& flags) {
  if (flags.input.empty() || flags.model_dir.empty()) {
    std::fprintf(stderr,
                 "classify: --input=<path> and --model-dir=<dir> are "
                 "required\n");
    return 2;
  }
  LoadedCorpus corpus;
  Status st = LoadCorpus(flags.input, &corpus);
  if (!st.ok()) return Fail(st, "read");
  const SequenceStore& db = corpus.store();
  if (flags.options.verbose) PrintCorpusLine(flags.input, corpus);

  if (!DirectoryExists(flags.model_dir)) {
    return Fail(Status::NotFound("model directory does not exist: " +
                                 flags.model_dir),
                "classify");
  }

  // Degradation chain: prefer the single .fbank snapshot set (mmap-shared,
  // one checksummed load), then compiled snapshots (.fpst — score directly,
  // training background baked in), then live trees (.pst, frozen here
  // against the input data's background). A corrupt file fails the whole
  // command under --strict; otherwise it is skipped with a warning (the
  // loaders bump persistence.corruption_detected) and the next source in
  // the chain covers for it.
  size_t skipped = 0;
  FrozenBank bank;
  bool use_bank = false;
  const std::string bank_path = flags.model_dir + "/bank.fbank";
  if (flags.options.batched_scan && FileExists(bank_path)) {
    FbankLoadInfo info;
    Status load = LoadFrozenBankFromFile(bank_path, &bank, {}, &info);
    if (load.ok()) {
      use_bank = true;
      std::printf("loaded %zu models from %s (%s)\n", bank.num_models(),
                  bank_path.c_str(), info.mmap ? "mmap" : "buffered");
    } else {
      if (flags.strict) return Fail(load, "load bank");
      std::fprintf(stderr,
                   "warning: skipping %s (%s); falling back to per-cluster "
                   "models\n",
                   bank_path.c_str(), load.ToString().c_str());
      ++skipped;
    }
  }

  std::vector<std::shared_ptr<const FrozenPst>> models;
  if (!use_bank) {
    for (size_t c = 0;; ++c) {
      std::string path =
          flags.model_dir + "/cluster" + std::to_string(c) + ".fpst";
      if (!FileExists(path)) break;
      auto frozen = std::make_shared<FrozenPst>();
      Status load = LoadFrozenPstFromFile(path, frozen.get());
      if (!load.ok()) {
        if (flags.strict) return Fail(load, "load snapshot");
        std::fprintf(stderr, "warning: skipping %s (%s)\n", path.c_str(),
                     load.ToString().c_str());
        ++skipped;
        continue;
      }
      models.push_back(std::move(frozen));
    }
    if (models.empty()) {
      BackgroundModel background = BackgroundModel::FromDatabase(db);
      for (size_t c = 0;; ++c) {
        std::string path =
            flags.model_dir + "/cluster" + std::to_string(c) + ".pst";
        if (!FileExists(path)) break;
        Pst pst(1, PstOptions{});
        Status load = LoadPstFromFile(path, &pst);
        if (!load.ok()) {
          if (flags.strict) return Fail(load, "load model");
          std::fprintf(stderr, "warning: skipping %s (%s)\n", path.c_str(),
                       load.ToString().c_str());
          ++skipped;
          continue;
        }
        models.push_back(std::make_shared<const FrozenPst>(pst, background));
      }
    }
    if (models.empty()) {
      return Fail(Status::NotFound(StringPrintf(
                      "no loadable cluster models in %s "
                      "(%zu skipped as corrupt or unreadable)",
                      flags.model_dir.c_str(), skipped)),
                  "classify");
    }
    std::printf("loaded %zu models\n", models.size());
  }

  // One-pass banked scoring when enabled and the models agree on an
  // alphabet (snapshots from one clustering run always do; the serial loop
  // stays as the fallback for mixed model directories). A bank mapped from
  // .fbank is scored as-is.
  bool bankable = use_bank;
  if (!use_bank && flags.options.batched_scan) {
    bankable = true;
    for (const auto& m : models) {
      bankable = bankable && !m->empty() &&
                 m->alphabet_size() == models.front()->alphabet_size();
    }
    if (bankable) bank.Assemble(models);
  }

  const size_t num_models = use_bank ? bank.num_models() : models.size();
  // Score in parallel (each sequence writes only its own slot, so output is
  // identical at any thread count), then print serially in input order.
  std::vector<double> best_sim(db.size(), -1e300);
  std::vector<size_t> best_model(db.size(), 0);
  ParallelForWeighted(
      db.size(), flags.options.num_threads,
      [&](size_t i) -> uint64_t { return db.Length(i); },
      [&](size_t i) {
        double best = -1e300;
        size_t best_c = 0;
        if (bankable && flags.options.prefilter) {
          // Pruned argmax scan; exact value and the same smallest-index
          // tie-break as the exhaustive loops below.
          const ScanPrefilter prefilter(&bank);
          double value = 0.0;
          const int32_t m = prefilter.BestModel(db.Symbols(i), &value);
          if (m >= 0 && value > best) {
            best = value;
            best_c = static_cast<size_t>(m);
          }
        } else if (bankable) {
          std::vector<SimilarityResult> sims(num_models);
          bank.ScanAll(db.Symbols(i), sims.data());
          for (size_t c = 0; c < num_models; ++c) {
            if (sims[c].log_sim > best) {
              best = sims[c].log_sim;
              best_c = c;
            }
          }
        } else {
          for (size_t c = 0; c < num_models; ++c) {
            double s = ComputeSimilarity(*models[c], db.Symbols(i)).log_sim;
            if (s > best) {
              best = s;
              best_c = c;
            }
          }
        }
        best_sim[i] = best;
        best_model[i] = best_c;
      });
  for (size_t i = 0; i < db.size(); ++i) {
    const std::string id = db.Id(i).empty() ? "seq" + std::to_string(i)
                                            : std::string(db.Id(i));
    std::printf("%s\t%zu\t%.4f\n", id.c_str(), best_model[i], best_sim[i]);
  }
  return MaybeWritePrometheus(flags.metrics_prom);
}

// `report-diff A.json B.json [--fail-on metric:tol,...]` — structural
// comparison of two cluseq.run_report.v1 / cluseq.bench.v1 files, or
// `report-diff --validate FILE` to parse-check a single report.
// Exit codes: 0 = ok, 1 = a --fail-on threshold breached, 2 = usage /
// unreadable file / schema mismatch.
int RunReportDiff(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<obs::FailRule> rules;
  std::string validate_path;
  auto add_rules = [&rules](const std::string& specs) -> bool {
    size_t begin = 0;
    while (begin <= specs.size()) {
      size_t end = specs.find(',', begin);
      if (end == std::string::npos) end = specs.size();
      const std::string spec = specs.substr(begin, end - begin);
      if (!spec.empty()) {
        obs::FailRule rule;
        Status st = obs::FailRule::Parse(spec, &rule);
        if (!st.ok()) {
          std::fprintf(stderr, "--fail-on: %s\n", st.ToString().c_str());
          return false;
        }
        rules.push_back(std::move(rule));
      }
      begin = end + 1;
    }
    return true;
  };
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "fail-on", &v) || ParseFlag(arg, "fail_on", &v)) {
      if (!add_rules(v)) return 2;
    } else if (arg == "--fail-on" || arg == "--fail_on") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--fail-on needs a metric:tolerance value\n");
        return 2;
      }
      if (!add_rules(argv[++i])) return 2;
    } else if (ParseFlag(arg, "validate", &v)) {
      validate_path = v;
    } else if (arg == "--validate") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--validate needs a file path\n");
        return 2;
      }
      validate_path = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "report-diff: unknown flag %s\n", argv[i]);
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  if (!validate_path.empty()) {
    if (!files.empty() || !rules.empty()) {
      std::fprintf(stderr,
                   "report-diff: --validate takes no other arguments\n");
      return 2;
    }
    obs::JsonValue root;
    Status st = obs::ParseJsonFile(validate_path, &root);
    obs::ReportMetrics metrics;
    if (st.ok()) st = obs::ExtractReportMetrics(root, &metrics);
    if (!st.ok()) {
      std::fprintf(stderr, "report-diff: %s: %s\n", validate_path.c_str(),
                   st.ToString().c_str());
      return 2;
    }
    std::printf("ok: %s (%s, %zu metrics)\n", validate_path.c_str(),
                metrics.schema.c_str(), metrics.values.size());
    return 0;
  }

  if (files.size() != 2) {
    std::fprintf(stderr,
                 "report-diff: expected exactly two report files "
                 "(got %zu); or --validate FILE\n",
                 files.size());
    return 2;
  }
  obs::ReportDiff diff;
  Status st = obs::DiffReportFiles(files[0], files[1], rules, &diff);
  if (!st.ok()) {
    std::fprintf(stderr, "report-diff: %s\n", st.ToString().c_str());
    return 2;
  }
  obs::PrintReportDiff(diff, std::cout);
  return diff.ok() ? 0 : 1;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: cluseq_cli "
               "<generate|import|export|cluster|classify|report-diff|"
               "version> [flags]\n"
               "  generate --kind=synthetic|protein|language --out=PATH "
               "[--scale=F] [--seed=N]\n"
               "  import   --input=PATH --out=PATH.sqdb   (FASTA/TSV -> "
               "indexed binary store)\n"
               "  export   --input=PATH.sqdb --out=PATH   (back to "
               "FASTA/TSV)\n"
               "  cluster  --input=PATH [--assignments=PATH] "
               "[--model-dir=DIR]\n"
               "           [--k=N] [--c=N] [--t=F] [--depth=N] "
               "[--min-members=N]\n"
               "           [--max-iterations=N] [--threads=N] "
               "[--pst-memory=BYTES]\n"
               "           [--batched_scan=on|off] [--prefilter=on|off] "
               "[--verbose]\n"
               "           [--adjust_window=F] [--sig_budget_mb=N] "
               "[--prefilter_l15=N]\n"
               "           --adjust_window: censor window W of the "
               "threshold adjuster's\n"
               "           histogram (prefiltered scans stay exact down to "
               "log t - W while\n"
               "           the adjuster is live; algorithmic, default 64)\n"
               "           --sig_budget_mb: per-bank byte budget picking "
               "the prefilter\n"
               "           signature tier (trigram/bigram/unigram, default "
               "64; perf-only)\n"
               "           --prefilter_l15: symbols covered by the "
               "level-1.5 truncated-\n"
               "           prefix bound (default 96, 0 disables; "
               "perf-only)\n"
               "           [--metrics_json=PATH] [--metrics_prom=PATH] "
               "[--trace_json=PATH]\n"
               "           [--trace_sample=always|never|prob:P[,seed=N]|"
               "every:N|rate:R]\n"
               "           [--checkpoint_dir=DIR] [--checkpoint_every=N] "
               "[--resume]\n"
               "           [--max_seconds=F] [--strict]\n"
               "           --checkpoint_dir enables crash-safe saves at "
               "iteration boundaries\n"
               "           (every N iterations, default 1; 0 = only the "
               "initial + final state);\n"
               "           --resume continues from the newest loadable "
               "checkpoint, bit-for-bit;\n"
               "           SIGINT/SIGTERM or --max_seconds stop cleanly "
               "after the current phase\n"
               "           and save state: exit 0 = done, 3 = interrupted "
               "with state saved\n"
               "           (--strict: treat a corrupt newest checkpoint as "
               "an error instead of\n"
               "           falling back to the previous one)\n"
               "  version  print the build version (matches the bench "
               "envelope's build field)\n"
               "  report-diff A.json B.json [--fail-on=metric:[+|-]TOL%%,...]"
               "\n"
               "  report-diff --validate FILE     (parse-check one report)\n"
               "           exit 0 = ok, 1 = threshold breached, 2 = usage/"
               "schema error\n"
               "  classify --input=PATH --model-dir=DIR "
               "[--batched_scan=on|off] [--prefilter=on|off] [--strict]\n"
               "           [--threads=N] [--metrics_prom=PATH]\n"
               "  --prefilter=on skips clusters via admissible score bounds; "
               "outputs are\n"
               "  bit-for-bit identical to --prefilter=off (the exhaustive "
               "oracle), just faster\n"
               "           (--strict: fail on any corrupt model file "
               "instead of skipping it)\n"
               "  --input/--out ending in .sqdb selects the indexed binary "
               "store (mmap-backed)\n"
               "  --threads=0 auto-detects the hardware thread count\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  std::string command = argv[1];
  if (command == "version" || command == "--version") {
    std::printf("%s\n", BuildVersionString().c_str());
    return 0;
  }
  // report-diff has positional arguments; parse its own argv slice.
  if (command == "report-diff" || command == "report_diff") {
    return RunReportDiff(argc, argv);
  }
  CommonFlags flags;
  if (!flags.Parse(argc, argv)) {
    PrintUsage();
    return 2;
  }
  if (command == "generate") return RunGenerate(flags);
  if (command == "import") return RunImport(flags);
  if (command == "export") return RunExport(flags);
  if (command == "cluster") return RunCluster(flags);
  if (command == "classify") return RunClassify(flags);
  PrintUsage();
  return 2;
}
