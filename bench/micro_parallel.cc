// micro_parallel — thread-scaling sweep of the full CLUSEQ iteration on the
// persistent work-stealing pool (DESIGN.md §12).
//
// Reference workload: a length-skewed database (a bulk of short sequences
// plus a heavy tail ~12x longer, the shape that starves static chunking),
// k = 64 initial clusters, depth-6 PSTs. For each thread count in
// {1, 2, 4, 8} the harness runs the identical clustering and reports the
// end-to-end time with the per-phase breakdown (scan / seed+rebuild+
// refreeze / join / consolidate) summed over iterations, then asserts the
// clusterings are bit-for-bit identical across thread counts.
//
// Results land in BENCH_parallel_scan.json. `hardware_threads` is recorded
// so a sweep run on a small machine is read for what it is: thread counts
// past the core count measure scheduling overhead, not speedup.
//
// Usage: micro_parallel [--scale=F] [--seed=N] [--csv]

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "cluseq/cluseq.h"

namespace {

using namespace cluseq;

SequenceDatabase SkewedDatabase(double scale, uint64_t seed) {
  // Bulk: many short sequences.
  SyntheticDatasetOptions bulk;
  bulk.num_clusters = 16;
  bulk.sequences_per_cluster = cluseq_bench::Scaled(30, scale);
  bulk.alphabet_size = 12;
  bulk.avg_length = 120;
  bulk.min_length = 40;
  bulk.max_length = 300;
  bulk.outlier_fraction = 0.05;
  bulk.seed = seed;
  SequenceDatabase db = MakeSyntheticDataset(bulk);

  // Tail: a few sequences ~12x longer. Static contiguous chunking parks
  // every worker behind whichever chunk drew these; the weighted scheduler
  // isolates them.
  SyntheticDatasetOptions tail;
  tail.num_clusters = 4;
  tail.sequences_per_cluster = cluseq_bench::Scaled(8, scale);
  tail.alphabet_size = 12;
  tail.avg_length = 1500;
  tail.min_length = 900;
  tail.max_length = 2400;
  tail.outlier_fraction = 0.0;
  tail.seed = seed + 1;
  SequenceDatabase tail_db = MakeSyntheticDataset(tail);
  for (size_t i = 0; i < tail_db.size(); ++i) {
    db.Add(tail_db[i]);
  }
  return db;
}

struct SweepPoint {
  size_t threads = 0;
  double total_seconds = 0.0;
  double scan_seconds = 0.0;
  double seed_seconds = 0.0;  // Seeding + PST rebuild + re-freeze.
  double join_seconds = 0.0;
  double consolidate_seconds = 0.0;
  size_t iterations = 0;
};

}  // namespace

int main(int argc, char** argv) {
  cluseq_bench::BenchArgs args = cluseq_bench::ParseBenchArgs(argc, argv);
  cluseq_bench::PrintHeader(
      "micro_parallel — persistent-pool thread scaling",
      "scheduler perf target (not a paper table); length-skewed db, k=64, "
      "depth 6");

  SequenceDatabase db = SkewedDatabase(args.scale, args.seed);
  uint64_t total_symbols = 0;
  for (size_t i = 0; i < db.size(); ++i) total_symbols += db[i].length();
  std::printf("database: %zu sequences, %llu symbols, hardware threads %zu\n\n",
              db.size(), static_cast<unsigned long long>(total_symbols),
              HardwareThreads());

  CluseqOptions options;
  options.initial_clusters = 64;
  options.similarity_threshold = 1.05;
  options.significance_threshold = 5;
  options.min_unique_members = 4;
  options.pst.max_depth = 6;
  options.max_iterations = 4;
  options.rng_seed = args.seed;

  const std::vector<size_t> sweep = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  ClusteringResult reference;
  for (size_t threads : sweep) {
    options.num_threads = threads;
    ClusteringResult result;
    Stopwatch timer;
    Status st = RunCluseq(db, options, &result);
    SweepPoint point;
    point.threads = threads;
    point.total_seconds = timer.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "run failed at %zu threads: %s\n", threads,
                   st.ToString().c_str());
      return 1;
    }
    for (const IterationStats& it : result.iteration_stats) {
      point.scan_seconds += it.scan_seconds;
      point.seed_seconds += it.seed_seconds;
      point.join_seconds += it.join_seconds;
      point.consolidate_seconds += it.consolidate_seconds;
    }
    point.iterations = result.iterations;
    points.push_back(point);

    if (threads == sweep.front()) {
      reference = result;
    } else if (result.clusters != reference.clusters ||
               result.best_cluster != reference.best_cluster ||
               result.best_log_sim != reference.best_log_sim) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: clustering at %zu threads "
                   "differs from 1 thread\n",
                   threads);
      return 1;
    }
  }

  std::printf("%8s %10s %10s %10s %10s %12s %9s\n", "threads", "total_s",
              "scan_s", "seed_s", "join_s", "consol_s", "speedup");
  const double base = points.front().total_seconds;
  for (const SweepPoint& p : points) {
    std::printf("%8zu %10.3f %10.3f %10.3f %10.3f %12.3f %8.2fx\n", p.threads,
                p.total_seconds, p.scan_seconds, p.seed_seconds,
                p.join_seconds, p.consolidate_seconds,
                base / p.total_seconds);
  }
  std::printf("\nclusterings identical across all thread counts: yes\n");

  // A single-core machine cannot show real scaling: every point past one
  // thread measures scheduling overhead, and the ~1.0x "speedups" would
  // read as a regression (or worse, as success) if taken at face value.
  const bool degraded = HardwareThreads() == 1;
  if (degraded) {
    std::fprintf(stderr,
                 "WARNING: hardware_threads == 1 — speedup numbers are "
                 "degraded (scheduling overhead only, not scaling); "
                 "recording \"degraded\": true\n");
  }

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("scale", args.scale);
  metrics.emplace_back("num_sequences", static_cast<double>(db.size()));
  metrics.emplace_back("total_symbols", static_cast<double>(total_symbols));
  for (const SweepPoint& p : points) {
    const std::string prefix = "threads_" + std::to_string(p.threads) + "_";
    metrics.emplace_back(prefix + "total_seconds", p.total_seconds);
    metrics.emplace_back(prefix + "scan_seconds", p.scan_seconds);
    metrics.emplace_back(prefix + "seed_seconds", p.seed_seconds);
    metrics.emplace_back(prefix + "join_seconds", p.join_seconds);
    metrics.emplace_back(prefix + "consolidate_seconds",
                         p.consolidate_seconds);
    metrics.emplace_back(prefix + "speedup_vs_1", base / p.total_seconds);
  }
  metrics.emplace_back("speedup_8_over_1",
                       base / points.back().total_seconds);
  // hardware_threads and the degraded flag now ride in the bench envelope.
  if (!cluseq_bench::WriteBenchJson("parallel_scan", metrics)) {
    std::fprintf(stderr, "failed to write BENCH_parallel_scan.json\n");
    return 1;
  }
  std::printf("metrics -> BENCH_parallel_scan.json\n");
  return 0;
}
