// Micro-benchmarks for the similarity DP: the O(l) single-scan recurrence
// vs the O(l^2) reference, and the cost of probability smoothing (§5.2
// ablation).

#include <memory>

#include <benchmark/benchmark.h>

#include "core/similarity.h"
#include "util/rng.h"

namespace cluseq {
namespace {

std::vector<SymbolId> RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  std::vector<SymbolId> text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

struct Fixture {
  Fixture(size_t query_len, double p_min) {
    PstOptions options;
    options.max_depth = 6;
    options.significance_threshold = 4;
    options.smoothing_p_min = p_min;
    pst = std::make_unique<Pst>(20, options);
    pst->InsertSequence(RandomText(5000, 20, 11));
    background = BackgroundModel::FromCounts(std::vector<uint64_t>(20, 100));
    query = RandomText(query_len, 20, 13);
  }
  std::unique_ptr<Pst> pst;
  BackgroundModel background;
  std::vector<SymbolId> query;
};

void BM_SimilarityDp(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1e-4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeSimilarity(*f.pst, f.background, f.query).log_sim);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SimilarityDp)->Arg(50)->Arg(200)->Arg(1000)->Arg(4000);

void BM_SimilarityFrozen(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1e-4);
  FrozenPst frozen(*f.pst, f.background);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSimilarity(frozen, f.query).log_sim);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SimilarityFrozen)->Arg(50)->Arg(200)->Arg(1000)->Arg(4000);

void BM_FreezePst(benchmark::State& state) {
  Fixture f(50, 1e-4);
  for (auto _ : state) {
    FrozenPst frozen(*f.pst, f.background);
    benchmark::DoNotOptimize(frozen.num_states());
  }
}
BENCHMARK(BM_FreezePst);

void BM_SimilarityBruteForce(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1e-4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeSimilarityBruteForce(*f.pst, f.background, f.query).log_sim);
  }
}
BENCHMARK(BM_SimilarityBruteForce)->Arg(50)->Arg(200)->Arg(1000);

void BM_SimilaritySmoothingOff(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeSimilarity(*f.pst, f.background, f.query).log_sim);
  }
}
BENCHMARK(BM_SimilaritySmoothingOff)->Arg(200)->Arg(1000);

}  // namespace
}  // namespace cluseq

BENCHMARK_MAIN();
