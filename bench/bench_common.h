// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md §4 for the experiment index).
//
// Every harness accepts:
//   --scale=<f>   multiplies dataset sizes toward (or past) paper scale
//   --csv         additionally emit CSV rows
//   --seed=<n>    dataset + algorithm seed

#ifndef CLUSEQ_BENCH_BENCH_COMMON_H_
#define CLUSEQ_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cluseq/cluseq.h"

namespace cluseq_bench {

struct BenchArgs {
  double scale = 1.0;
  bool csv = false;
  uint64_t seed = 42;
  std::string axis;  // Used by the scalability bench.
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (cluseq::ParseFlag(arg, "scale", &value)) {
      args.scale = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (cluseq::ParseFlag(arg, "seed", &value)) {
      args.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (cluseq::ParseFlag(arg, "axis", &value)) {
      args.axis = value;
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' "
                   "(supported: --scale=F --csv --seed=N --axis=S)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return args;
}

inline size_t Scaled(size_t base, double scale) {
  double v = static_cast<double>(base) * scale;
  return v < 1.0 ? 1 : static_cast<size_t>(v);
}

/// CLUSEQ configuration tuned for the scaled synthetic workloads: c and the
/// consolidation minimum shrink with the data so significance stays
/// attainable (the paper's c = 30 presumes 1000-symbol sequences and
/// thousands of members).
inline cluseq::CluseqOptions ScaledCluseqOptions(double scale) {
  cluseq::CluseqOptions o;
  o.initial_clusters = 5;
  o.similarity_threshold = 1.05;
  o.significance_threshold = scale >= 2.0 ? 8 : 5;
  o.min_unique_members = 4;
  o.pst.max_depth = 6;
  o.max_iterations = 15;
  return o;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==== %s ====\n", title);
  std::printf("reproduces: %s\n\n", paper_ref);
}

inline void EmitTable(const cluseq::ReportTable& table, bool csv) {
  table.Print(std::cout);
  if (csv) {
    std::printf("\n-- csv --\n");
    table.PrintCsv(std::cout);
  }
}

/// Best-effort `git describe` of the working tree the bench ran in. Empty
/// (and the envelope key omitted) when git or the repo is unavailable —
/// CI artifact directories and tarball builds are normal, not errors.
/// Delegates to the library's util/build_info so the bench envelope,
/// `cluseq version`, and checkpoint metadata all report the same string.
inline std::string GitDescribe() { return cluseq::GitDescribe(); }

/// Writes a flat metrics object to BENCH_<name>.json in the working
/// directory, so successive runs leave a machine-readable trajectory next
/// to the human-readable tables. Uses the library's obs::JsonWriter — the
/// same serializer behind --metrics_json/--trace_json — so escaping and
/// number formatting (%.17g, enough to round-trip a double) cannot drift
/// between the bench harnesses and the run reports.
///
/// Every file carries the `cluseq.bench.v1` envelope consumed by
/// `cluseq_cli report-diff` and the CI perf gate: schema, bench name, a
/// best-effort git describe, the machine's hardware thread count, and a
/// `degraded` flag (single-core runner — timing-derived metrics measure
/// scheduling overhead, not scaling, and CI treats them as warn-only).
inline bool WriteBenchJson(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics,
    const std::vector<std::pair<std::string, bool>>& flags = {}) {
  std::ofstream out("BENCH_" + name + ".json");
  if (!out) return false;
  cluseq::obs::JsonWriter writer(out);
  writer.BeginObject();
  writer.KeyValue("schema", std::string_view("cluseq.bench.v1"));
  writer.KeyValue("name", std::string_view(name));
  const std::string git = GitDescribe();
  if (!git.empty()) writer.KeyValue("git", std::string_view(git));
  writer.KeyValue("hardware_threads",
                  uint64_t{cluseq::HardwareThreads()});
  writer.KeyValue("degraded", cluseq::HardwareThreads() == 1);
  for (const auto& [key, value] : flags) {
    writer.KeyValue(key, value);
  }
  for (const auto& [key, value] : metrics) {
    writer.KeyValue(key, value);
  }
  writer.EndObject();
  return static_cast<bool>(out);
}

}  // namespace cluseq_bench

#endif  // CLUSEQ_BENCH_BENCH_COMMON_H_
