// §6.1 (closing remark): robustness to outliers. Paper: accuracy is immune
// to raising the outlier share from 1% to 20%. Shape to reproduce: a flat
// accuracy curve across the outlier sweep.

#include "bench/bench_common.h"

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Outlier robustness", "paper §6.1 (outlier sweep)");

  ReportTable table({"Outlier %", "Correctly labeled %", "Outliers rejected %",
                     "Time (s)"});
  for (double frac : {0.01, 0.05, 0.10, 0.20}) {
    SyntheticDatasetOptions data_options;
    data_options.num_clusters = 10;
    data_options.sequences_per_cluster = Scaled(25, args.scale);
    data_options.alphabet_size = 20;
    data_options.avg_length = 400;
    data_options.outlier_fraction = frac;
    data_options.spread = 0.3;
    data_options.seed = args.seed;
    SequenceDatabase db = MakeSyntheticDataset(data_options);

    CluseqOptions options = ScaledCluseqOptions(args.scale);
    Stopwatch timer;
    ClusteringResult result;
    Status st = RunCluseq(db, options, &result);
    double secs = timer.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "CLUSEQ: %s\n", st.ToString().c_str());
      return 1;
    }
    EvaluationSummary eval = Evaluate(db, result.best_cluster);
    size_t outliers = 0, rejected = 0;
    for (size_t i = 0; i < db.size(); ++i) {
      if (db[i].label() == kNoLabel) {
        ++outliers;
        if (result.best_cluster[i] < 0) ++rejected;
      }
    }
    double reject_rate = outliers == 0
                             ? 0.0
                             : static_cast<double>(rejected) /
                                   static_cast<double>(outliers);
    table.AddRow({FormatPercent(frac, 0),
                  FormatPercent(eval.correct_fraction, 0),
                  FormatPercent(reject_rate, 0), FormatDouble(secs, 2)});
  }
  EmitTable(table, args.csv);
  std::printf("\npaper shape: accuracy flat from 1%% to 20%% outliers\n");
  return 0;
}
