// Frozen-vs-live scoring throughput: the compiled suffix-link automaton
// against the reference per-position trie walk, across query lengths and
// tree depths, plus the one-time freeze cost it has to amortize. Emits
// BENCH_frozen_pst.json so the speedup lands in the benchmark trajectory.

#include "bench/bench_common.h"

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

namespace {

std::vector<SymbolId> RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  std::vector<SymbolId> text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

// Repeats `fn` until ~0.2s has elapsed; returns seconds per call.
template <typename Fn>
double TimePerCall(Fn&& fn) {
  size_t reps = 1;
  for (;;) {
    Stopwatch timer;
    for (size_t r = 0; r < reps; ++r) fn();
    double secs = timer.ElapsedSeconds();
    if (secs > 0.2) return secs / static_cast<double>(reps);
    reps = secs <= 0.0 ? reps * 8 : reps * 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Frozen scoring engine",
              "compiled automaton vs live trie walk (this library)");

  const size_t alphabet = 20;
  PstOptions options;
  options.significance_threshold = 4;
  BackgroundModel background =
      BackgroundModel::FromCounts(std::vector<uint64_t>(alphabet, 100));

  ReportTable table({"Depth", "Query len", "Live Msym/s", "Frozen Msym/s",
                     "Speedup", "Freeze (ms)", "States"});
  std::vector<std::pair<std::string, double>> metrics;
  double speedup_at_reference = 0.0;

  for (size_t depth : {3, 6, 9}) {
    options.max_depth = depth;
    Pst pst(alphabet, options);
    pst.InsertSequence(RandomText(Scaled(5000, args.scale), alphabet, 11));

    double freeze_secs = TimePerCall(
        [&] { FrozenPst snapshot(pst, background); (void)snapshot; });
    FrozenPst frozen(pst, background);

    for (size_t query_len : {200, 4000}) {
      std::vector<SymbolId> query = RandomText(query_len, alphabet, 13);
      volatile double sink = 0.0;
      double live_secs = TimePerCall([&] {
        sink = ComputeSimilarity(pst, background, query).log_sim;
      });
      double frozen_secs = TimePerCall(
          [&] { sink = ComputeSimilarity(frozen, query).log_sim; });
      (void)sink;

      const double live_rate =
          static_cast<double>(query_len) / live_secs / 1e6;
      const double frozen_rate =
          static_cast<double>(query_len) / frozen_secs / 1e6;
      const double speedup = live_secs / frozen_secs;
      table.AddRow({std::to_string(depth), std::to_string(query_len),
                    FormatDouble(live_rate, 2), FormatDouble(frozen_rate, 2),
                    FormatDouble(speedup, 2) + "x",
                    FormatDouble(freeze_secs * 1e3, 2),
                    std::to_string(frozen.num_states())});

      const std::string tag =
          "d" + std::to_string(depth) + "_l" + std::to_string(query_len);
      metrics.emplace_back("live_msyms_" + tag, live_rate);
      metrics.emplace_back("frozen_msyms_" + tag, frozen_rate);
      metrics.emplace_back("speedup_" + tag, speedup);
      if (depth == 6 && query_len == 4000) speedup_at_reference = speedup;
    }
    metrics.emplace_back("freeze_ms_d" + std::to_string(depth),
                         freeze_secs * 1e3);
  }

  EmitTable(table, args.csv);
  metrics.emplace_back("speedup_reference", speedup_at_reference);
  if (!WriteBenchJson("frozen_pst", metrics)) {
    std::fprintf(stderr, "failed to write BENCH_frozen_pst.json\n");
    return 1;
  }
  std::printf("\nreference speedup (depth 6, 4000-symbol query): %.2fx\n",
              speedup_at_reference);
  std::printf("metrics -> BENCH_frozen_pst.json\n");
  return 0;
}
