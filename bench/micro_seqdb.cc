// The .sqdb store against re-parsing text: import throughput (FASTA ->
// .sqdb), cold-load cost (mmap open + full scan vs FASTA re-parse + full
// scan), and the resident-memory story (getrusage RSS delta for each path:
// the mmap load keeps the corpus out of the heap; the parse path holds it
// all). Emits BENCH_seqdb.json so the ratios land in the benchmark
// trajectory.

#include "bench/bench_common.h"

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

namespace {

long MaxRssKb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

// Touch every record through the SequenceStore interface the way a
// clustering pass would; the checksum keeps the loop honest.
uint64_t ScanStore(const SequenceStore& store) {
  uint64_t sum = 0;
  for (size_t i = 0; i < store.size(); ++i) {
    for (SymbolId s : store.Symbols(i)) sum += s;
  }
  return sum;
}

struct PhaseResult {
  double secs = 0.0;
  long rss_delta_kb = 0;
  uint64_t sum = 0;
  bool ok = false;
};

// Runs `fn` in a forked child so its ru_maxrss high-water mark is its own:
// measured in-process, any phase after the first heavy one reads a delta of
// ~0 because the mark only ever goes up.
PhaseResult MeasureInChild(const std::function<uint64_t()>& fn) {
  PhaseResult result;
  int fds[2];
  if (pipe(fds) != 0) return result;
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return result;
  }
  if (pid == 0) {
    close(fds[0]);
    PhaseResult r;
    const long before_kb = MaxRssKb();
    Stopwatch timer;
    r.sum = fn();
    r.secs = timer.ElapsedSeconds();
    r.rss_delta_kb = MaxRssKb() - before_kb;
    r.ok = true;
    ssize_t ignored = write(fds[1], &r, sizeof(r));
    (void)ignored;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  if (read(fds[0], &result, sizeof(result)) != sizeof(result)) {
    result.ok = false;
  }
  close(fds[0]);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) result.ok = false;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Indexed sequence store",
              ".sqdb import/cold-load vs FASTA re-parse (this library)");

  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/cluseq_micro_seqdb";
  std::filesystem::create_directories(dir);
  const std::string fasta_path = dir + "/corpus.fasta";
  const std::string sqdb_path = dir + "/corpus.sqdb";

  // Every heavy phase runs in its own forked child: the corpus must never
  // touch the parent's heap, or later children inherit the warmed (already
  // resident) pages and their RSS deltas read near zero.
  ProteinLikeOptions synth;
  synth.scale = 0.4 * args.scale;
  synth.seed = args.seed;
  PhaseResult setup = MeasureInChild([&]() -> uint64_t {
    SequenceDatabase db = MakeProteinLikeDataset(synth).db;
    if (!WriteFastaFile(db, fasta_path).ok()) _exit(1);
    return db.size();
  });
  if (!setup.ok) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // --- import throughput -------------------------------------------------
  PhaseResult import = MeasureInChild([&]() -> uint64_t {
    SequenceDatabase db;
    if (!ReadFastaFile(fasta_path, &db).ok()) _exit(1);
    if (!WriteSeqDb(db, sqdb_path).ok()) _exit(1);
    return db.TotalSymbols();
  });
  if (!import.ok) {
    std::fprintf(stderr, "import failed\n");
    return 1;
  }
  const double import_secs = import.secs;
  const uint64_t sqdb_bytes =
      std::filesystem::file_size(sqdb_path) +
      std::filesystem::file_size(SeqDbIndexPath(sqdb_path));
  const double import_mb = static_cast<double>(sqdb_bytes) / 1e6;
  std::printf("corpus: %llu records, %llu symbols, %llu FASTA bytes, "
              "%llu .sqdb bytes\n\n",
              static_cast<unsigned long long>(setup.sum),
              static_cast<unsigned long long>(import.sum),
              static_cast<unsigned long long>(
                  std::filesystem::file_size(fasta_path)),
              static_cast<unsigned long long>(sqdb_bytes));
  std::printf("import (parse + write):  %7.1f ms   %6.1f MB/s\n",
              import_secs * 1e3, import_mb / import_secs);

  // --- cold load: FASTA re-parse vs .sqdb open ---------------------------
  bool used_mmap = false;
  PhaseResult sqdb = MeasureInChild([&]() -> uint64_t {
    SeqDbReader reader;
    Status open = SeqDbReader::Open(sqdb_path, &reader);
    if (!open.ok()) _exit(1);
    return ScanStore(reader);
  });
  {
    // Record the mmap/buffered mode from the parent (the child only
    // returns the PhaseResult struct).
    SeqDbReader reader;
    if (SeqDbReader::Open(sqdb_path, &reader).ok()) {
      used_mmap = reader.is_mmap();
    }
  }
  PhaseResult parse = MeasureInChild([&]() -> uint64_t {
    SequenceDatabase db;
    Status read = ReadFastaFile(fasta_path, &db);
    if (!read.ok()) _exit(1);
    return ScanStore(db);
  });
  if (!sqdb.ok || !parse.ok) {
    std::fprintf(stderr, "cold-load measurement failed\n");
    return 1;
  }
  if (sqdb.sum != parse.sum) {
    std::fprintf(stderr, "stores disagree: %llu vs %llu\n",
                 static_cast<unsigned long long>(sqdb.sum),
                 static_cast<unsigned long long>(parse.sum));
    return 1;
  }
  const double sqdb_secs = sqdb.secs;
  const double parse_secs = parse.secs;
  const long sqdb_rss_kb = sqdb.rss_delta_kb;
  const long parse_rss_kb = parse.rss_delta_kb;

  std::printf("cold load + full scan (each in a fresh process):\n");
  std::printf("  .sqdb (%s):  %7.1f ms   rss-delta %6ld KB\n",
              used_mmap ? "mmap" : "buffered", sqdb_secs * 1e3, sqdb_rss_kb);
  std::printf("  FASTA re-parse:    %7.1f ms   rss-delta %6ld KB\n",
              parse_secs * 1e3, parse_rss_kb);
  std::printf("  load speedup: %.1fx   rss ratio: %.2fx\n\n",
              parse_secs / sqdb_secs,
              sqdb_rss_kb > 0 ? static_cast<double>(parse_rss_kb) /
                                    static_cast<double>(sqdb_rss_kb)
                              : 0.0);

  WriteBenchJson(
      "seqdb",
      {{"records", static_cast<double>(setup.sum)},
       {"total_symbols", static_cast<double>(import.sum)},
       {"sqdb_bytes", static_cast<double>(sqdb_bytes)},
       {"import_seconds", import_secs},
       {"import_mb_per_s", import_mb / import_secs},
       {"sqdb_load_scan_seconds", sqdb_secs},
       {"fasta_load_scan_seconds", parse_secs},
       {"load_speedup", parse_secs / sqdb_secs},
       {"sqdb_rss_delta_kb", static_cast<double>(sqdb_rss_kb)},
       {"fasta_rss_delta_kb", static_cast<double>(parse_rss_kb)},
       {"mmap", used_mmap ? 1.0 : 0.0}});
  std::printf("json -> BENCH_seqdb.json\n");
  std::filesystem::remove_all(dir);
  return 0;
}
