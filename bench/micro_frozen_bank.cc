// Banked multi-model scoring throughput: FrozenBank::ScanAll (one
// interleaved pass over the symbol stream for all k models, scalar and SIMD
// kernels) against k serial FrozenPst automaton scans of the same stream,
// across model counts and tree depths, plus the arena assembly cost it has
// to amortize. Emits BENCH_frozen_bank.json so the speedup lands in the
// benchmark trajectory.

#include "bench/bench_common.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

namespace {

std::vector<SymbolId> RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  std::vector<SymbolId> text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

// Repeats `fn` until ~0.2s has elapsed and returns seconds per call, taking
// the fastest of three such trials: the speedup table is a ratio of two
// measurements, and on a shared machine a single scheduler hiccup on either
// side would skew it.
template <typename Fn>
double TimePerCall(Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  size_t reps = 1;
  for (int trial = 0; trial < 3;) {
    Stopwatch timer;
    for (size_t r = 0; r < reps; ++r) fn();
    const double secs = timer.ElapsedSeconds();
    if (secs <= 0.2) {
      reps = secs <= 0.0 ? reps * 8 : reps * 4;
      continue;
    }
    best = std::min(best, secs / static_cast<double>(reps));
    ++trial;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Batched multi-cluster scan",
              "FrozenBank interleaved scan vs k serial automaton scans "
              "(this library)");

  const size_t alphabet = 20;
  const size_t train_len = Scaled(500, args.scale);
  const size_t query_len = Scaled(4000, args.scale);
  PstOptions options;
  options.significance_threshold = 4;
  BackgroundModel background =
      BackgroundModel::FromCounts(std::vector<uint64_t>(alphabet, 100));

  std::printf("SIMD kernels: %s\n\n",
              FrozenBank::SimdAvailable() ? "avx2" : "unavailable (scalar)");

  ReportTable table({"Depth", "k", "Serial Msym/s", "Bank-scalar Msym/s",
                     "Bank-simd Msym/s", "Speedup(scalar)", "Speedup(simd)",
                     "Assemble (ms)"});
  std::vector<std::pair<std::string, double>> metrics;
  double speedup_at_reference = 0.0;
  double obs_overhead_pct = 0.0;

  for (size_t depth : {3, 6}) {
    options.max_depth = depth;
    for (size_t k : {4, 16, 64, 256}) {
      // Short per-model training texts keep k=256 banks RAM-friendly while
      // still producing thousands of automaton states at depth 6.
      std::vector<std::shared_ptr<const FrozenPst>> models;
      models.reserve(k);
      for (size_t m = 0; m < k; ++m) {
        Pst pst(alphabet, options);
        pst.InsertSequence(
            RandomText(train_len, alphabet, args.seed + 100 + m));
        models.push_back(
            std::make_shared<const FrozenPst>(pst, background));
      }
      const std::vector<SymbolId> query =
          RandomText(query_len, alphabet, args.seed + 7);
      std::span<const SymbolId> span(query);

      double assemble_secs = TimePerCall([&] {
        FrozenBank fresh(models);
        (void)fresh;
      });
      FrozenBank bank(models);
      std::vector<SimilarityResult> results(k);

      volatile double sink = 0.0;
      double serial_secs = TimePerCall([&] {
        double acc = 0.0;
        for (const auto& model : models) {
          acc += ComputeSimilarity(*model, span).log_sim;
        }
        sink = acc;
      });
      bank.set_force_scalar(true);
      double scalar_secs = TimePerCall([&] {
        bank.ScanAll(span, results.data());
        sink = results[0].log_sim;
      });
      bank.set_force_scalar(false);
      double simd_secs = scalar_secs;
      if (FrozenBank::SimdAvailable()) {
        simd_secs = TimePerCall([&] {
          bank.ScanAll(span, results.data());
          sink = results[0].log_sim;
        });
      }
      (void)sink;

      const double work = static_cast<double>(k * query_len);
      const double serial_rate = work / serial_secs / 1e6;
      const double scalar_rate = work / scalar_secs / 1e6;
      const double simd_rate = work / simd_secs / 1e6;
      const double speedup_scalar = serial_secs / scalar_secs;
      const double speedup_simd = serial_secs / simd_secs;
      table.AddRow({std::to_string(depth), std::to_string(k),
                    FormatDouble(serial_rate, 2), FormatDouble(scalar_rate, 2),
                    FormatDouble(simd_rate, 2),
                    FormatDouble(speedup_scalar, 2) + "x",
                    FormatDouble(speedup_simd, 2) + "x",
                    FormatDouble(assemble_secs * 1e3, 2)});

      const std::string tag =
          "d" + std::to_string(depth) + "_k" + std::to_string(k);
      metrics.emplace_back("serial_msyms_" + tag, serial_rate);
      metrics.emplace_back("bank_scalar_msyms_" + tag, scalar_rate);
      metrics.emplace_back("bank_simd_msyms_" + tag, simd_rate);
      metrics.emplace_back("speedup_scalar_" + tag, speedup_scalar);
      metrics.emplace_back("speedup_simd_" + tag, speedup_simd);
      metrics.emplace_back("assemble_ms_" + tag, assemble_secs * 1e3);
      if (depth == 6 && k == 64) {
        speedup_at_reference = speedup_simd;
        // Instrumentation overhead at the reference point: the same scan
        // with the metrics registry live (the default) vs globally disabled
        // ("compiled in but unused"). The only difference is ScanAll's
        // amortized per-call counter updates, so this bounds the obs tax
        // on the hot path. The two arms are interleaved trial-by-trial so
        // clock-frequency and cache drift hit both equally instead of
        // biasing whichever arm runs second.
        const auto scan_once = [&] {
          bank.ScanAll(span, results.data());
          sink = results[0].log_sim;
        };
        size_t reps = 1;
        for (;;) {
          Stopwatch calibrate;
          for (size_t r = 0; r < reps; ++r) scan_once();
          if (calibrate.ElapsedSeconds() > 0.2) break;
          reps *= 4;
        }
        double off_secs = std::numeric_limits<double>::infinity();
        double on_secs = std::numeric_limits<double>::infinity();
        for (int trial = 0; trial < 5; ++trial) {
          obs::SetMetricsEnabled(false);
          Stopwatch off_timer;
          for (size_t r = 0; r < reps; ++r) scan_once();
          off_secs = std::min(
              off_secs, off_timer.ElapsedSeconds() / static_cast<double>(reps));
          obs::SetMetricsEnabled(true);
          Stopwatch on_timer;
          for (size_t r = 0; r < reps; ++r) scan_once();
          on_secs = std::min(
              on_secs, on_timer.ElapsedSeconds() / static_cast<double>(reps));
        }
        obs_overhead_pct = (on_secs - off_secs) / off_secs * 100.0;
        metrics.emplace_back("obs_scan_metrics_off_msyms",
                             work / off_secs / 1e6);
        metrics.emplace_back("obs_scan_metrics_on_msyms",
                             work / on_secs / 1e6);
      }
    }
  }

  EmitTable(table, args.csv);
  metrics.emplace_back("speedup_reference", speedup_at_reference);
  metrics.emplace_back("obs_overhead_pct", obs_overhead_pct);

  {
    // Cost of CLUSEQ_TRACE_SPAN with tracing off — the contract is one
    // relaxed atomic load at construction and nothing at destruction, so
    // instrumented hot paths stay free when no trace is being recorded.
    // Recorded per span so report-diff can flag a regression (warn-only:
    // single-digit nanoseconds are noisy on shared runners).
    obs::TraceRecorder::Get().Stop();
    constexpr size_t kSpans = size_t{1} << 22;
    Stopwatch span_timer;
    for (size_t i = 0; i < kSpans; ++i) {
      CLUSEQ_TRACE_SPAN("bench.disabled_span");
    }
    metrics.emplace_back(
        "trace_disabled_span_ns",
        span_timer.ElapsedSeconds() * 1e9 / static_cast<double>(kSpans));
  }
  if (!WriteBenchJson("frozen_bank", metrics)) {
    std::fprintf(stderr, "failed to write BENCH_frozen_bank.json\n");
    return 1;
  }
  std::printf("\nreference speedup (depth 6, k=64, %zu-symbol query, "
              "single thread): %.2fx\n",
              query_len, speedup_at_reference);
  std::printf("metrics-on vs metrics-off scan overhead at reference: "
              "%+.2f%%\n",
              obs_overhead_pct);
  std::printf("metrics -> BENCH_frozen_bank.json\n");
  return 0;
}
