// Table 3: per-family precision/recall of CLUSEQ on the protein-like
// database (the paper shows 10 of 30 families; CLUSEQ performs consistently
// across family sizes — that consistency is the shape to reproduce).

#include "bench/bench_common.h"

using namespace cluseq;
using namespace cluseq_bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Table 3: per-family precision/recall", "paper §6.1, Table 3");

  ProteinLikeOptions data_options;
  data_options.num_families = 30;
  data_options.scale = 0.08 * args.scale;
  data_options.avg_length = 150;
  data_options.seed = args.seed;
  ProteinLikeDataset dataset = MakeProteinLikeDataset(data_options);
  std::printf("dataset: %zu sequences, %zu families\n\n", dataset.db.size(),
              dataset.family_names.size());

  CluseqOptions options = ScaledCluseqOptions(args.scale);
  options.initial_clusters = 10;  // The paper's (deliberately wrong) k.
  ClusteringResult result;
  Status st = RunCluseq(dataset.db, options, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "CLUSEQ: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("found %zu clusters (paper: 30 families -> 30 clusters)\n\n",
              result.num_clusters());

  ContingencyTable table(result.best_cluster, TrueLabels(dataset.db));
  std::vector<FamilyQuality> families = PerFamilyQuality(table);

  ReportTable report({"Family", "Size", "Precision %", "Recall %"});
  // The paper prints the largest families and the smallest tail; we print
  // the same ten names it shows, in its order.
  const std::vector<size_t> shown = {0, 1, 2, 3, 4, 5, 6, 27, 28, 29};
  for (size_t f : shown) {
    if (f >= families.size()) continue;
    const FamilyQuality& q = families[f];
    report.AddRow({dataset.family_names[q.family], std::to_string(q.size),
                   FormatPercent(q.precision, 0),
                   FormatPercent(q.recall, 0)});
  }
  EmitTable(report, args.csv);

  MacroQuality macro = MacroAverage(families);
  std::printf("\nmacro average over all %zu families: precision %.0f%%, "
              "recall %.0f%%\n",
              families.size(), macro.precision * 100.0, macro.recall * 100.0);
  std::printf("paper reference: precision 75-88%%, recall 80-89%% across "
              "family sizes 141-884\n");
  return 0;
}
