// Figure 6: scalability of CLUSEQ along four axes — (a) number of clusters,
// (b) number of sequences, (c) average sequence length, (d) number of
// distinct symbols. Paper shapes: linear in #clusters and #sequences,
// moderately super-linear in length, flat in alphabet size.
//
//   ./bench_fig6_scalability                runs all four axes
//   ./bench_fig6_scalability --axis=length  runs one

#include "bench/bench_common.h"

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

namespace {

double TimeRun(const SequenceDatabase& db, size_t fixed_iterations,
               double scale) {
  CluseqOptions options = ScaledCluseqOptions(scale);
  options.max_iterations = fixed_iterations;
  options.adjust_threshold = true;
  Stopwatch timer;
  ClusteringResult result;
  Status st = RunCluseq(db, options, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "CLUSEQ: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  // Report per-iteration time: runs converge after different iteration
  // counts, and the §4.7 complexity claim — O(N * k' * l^2) — is about the
  // cost of one iteration, not about how many a dataset happens to need.
  return timer.ElapsedSeconds() /
         static_cast<double>(std::max<size_t>(result.iterations, 1));
}

SyntheticDatasetOptions BaseData(uint64_t seed) {
  SyntheticDatasetOptions d;
  d.num_clusters = 10;
  d.sequences_per_cluster = 20;
  d.alphabet_size = 20;
  d.avg_length = 300;
  d.outlier_fraction = 0.05;
  d.spread = 0.3;
  d.seed = seed;
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Figure 6: scalability", "paper §6.4, Figure 6(a-d)");
  const size_t iters = 8;

  bool all = args.axis.empty();
  if (all || args.axis == "clusters") {
    ReportTable table({"Clusters", "Sequences", "Time/iter (s)"});
    for (size_t k : {5u, 10u, 20u, 40u}) {
      SyntheticDatasetOptions d = BaseData(args.seed);
      d.num_clusters = Scaled(k, args.scale);
      // Fixed database size while the number of embedded clusters varies,
      // exactly as in the paper (100k sequences, 10..100 clusters).
      d.sequences_per_cluster =
          std::max<size_t>(Scaled(400, args.scale) / d.num_clusters, 2);
      SequenceDatabase db = MakeSyntheticDataset(d);
      table.AddRow({std::to_string(d.num_clusters),
                    std::to_string(db.size()),
                    FormatDouble(TimeRun(db, iters, args.scale), 2)});
    }
    std::printf("(a) time vs number of clusters (paper: linear)\n");
    EmitTable(table, args.csv);
    std::printf("\n");
  }

  if (all || args.axis == "sequences") {
    ReportTable table({"Sequences", "Time/iter (s)"});
    for (size_t per : {10u, 20u, 40u, 80u}) {
      SyntheticDatasetOptions d = BaseData(args.seed);
      d.sequences_per_cluster = Scaled(per, args.scale);
      SequenceDatabase db = MakeSyntheticDataset(d);
      table.AddRow({std::to_string(db.size()),
                    FormatDouble(TimeRun(db, iters, args.scale), 2)});
    }
    std::printf("(b) time vs number of sequences (paper: linear)\n");
    EmitTable(table, args.csv);
    std::printf("\n");
  }

  if (all || args.axis == "length") {
    ReportTable table({"Avg length", "Time/iter (s)"});
    for (size_t len : {50u, 100u, 200u, 400u}) {
      SyntheticDatasetOptions d = BaseData(args.seed);
      d.avg_length = Scaled(len, args.scale);
      SequenceDatabase db = MakeSyntheticDataset(d);
      table.AddRow({std::to_string(d.avg_length),
                    FormatDouble(TimeRun(db, iters, args.scale), 2)});
    }
    std::printf("(c) time vs average sequence length (paper: moderately "
                "super-linear)\n");
    EmitTable(table, args.csv);
    std::printf("\n");
  }

  if (all || args.axis == "alphabet") {
    ReportTable table({"Distinct symbols", "Time/iter (s)"});
    for (size_t alpha : {10u, 20u, 50u, 100u}) {
      SyntheticDatasetOptions d = BaseData(args.seed);
      d.alphabet_size = alpha;
      SequenceDatabase db = MakeSyntheticDataset(d);
      table.AddRow({std::to_string(alpha),
                    FormatDouble(TimeRun(db, iters, args.scale), 2)});
    }
    std::printf("(d) time vs number of distinct symbols (paper: flat)\n");
    EmitTable(table, args.csv);
    std::printf("\n");
  }
  return 0;
}
