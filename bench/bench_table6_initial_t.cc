// Table 6: effect of the initial similarity threshold t. Paper: with k
// fixed, initial t in {1.05, 1.5, 2, 3} all converge to the true t = 2 with
// ~82-84% precision/recall; a sub-optimal start costs up to ~30% extra time.
// Shape to reproduce: final t independent of the start; quality flat.
//
// Note on units: our synthetic sources are stronger than the paper's, so
// similarities (and therefore the converged t) live at a larger log scale;
// the invariance of the *final* threshold across starting points is the
// reproduced property.

#include <cmath>

#include "bench/bench_common.h"

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Table 6: effect of the initial similarity threshold",
              "paper §6.3, Table 6");

  SyntheticDatasetOptions data_options;
  data_options.num_clusters = Scaled(20, args.scale);
  data_options.sequences_per_cluster = 15;
  data_options.alphabet_size = 20;
  // Paper-faithful sequence length: at ~600+ symbols even a single seed's
  // PST has significant order-2 contexts, which is what lets new clusters
  // bootstrap (the paper used 1000-symbol sequences).
  data_options.avg_length = 600;
  data_options.outlier_fraction = 0.10;
  data_options.spread = 0.3;
  data_options.seed = args.seed;
  SequenceDatabase db = MakeSyntheticDataset(data_options);
  std::printf("dataset: %zu sequences, %zu planted clusters\n\n", db.size(),
              data_options.num_clusters);

  ReportTable table({"Initial t", "Final log t", "Time (s)", "Precision %",
                     "Recall %", "Clusters"});
  for (double t0 : {1.05, 1.5, 2.0, 3.0, std::exp(2.0)}) {
    CluseqOptions options = ScaledCluseqOptions(args.scale);
    options.initial_clusters = data_options.num_clusters;  // k fixed (paper).
    options.similarity_threshold = t0;
    options.auto_initial_threshold = false;  // The start IS the experiment.
    options.max_iterations = 25;
    Stopwatch timer;
    ClusteringResult result;
    Status st = RunCluseq(db, options, &result);
    double secs = timer.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "CLUSEQ: %s\n", st.ToString().c_str());
      return 1;
    }
    ContingencyTable ct(result.best_cluster, TrueLabels(db));
    MacroQuality macro = MacroAverage(PerFamilyQuality(ct));
    table.AddRow({FormatDouble(t0, 2),
                  FormatDouble(result.final_log_threshold, 2),
                  FormatDouble(secs, 2), FormatPercent(macro.precision, 0),
                  FormatPercent(macro.recall, 0),
                  std::to_string(result.num_clusters())});
  }
  EmitTable(table, args.csv);
  std::printf("\npaper reference: final t in 1.99-2.01 for every start; "
              "~82-84%% P/R\n");
  return 0;
}
