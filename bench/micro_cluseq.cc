// Micro-benchmarks for the CLUSEQ pipeline phases: seeding, one full run at
// small scale, the online scorer, and PST merging — the costs that compose
// the end-to-end response times of the experiment harnesses.

#include <benchmark/benchmark.h>

#include "core/cluseq.h"
#include "core/online_scorer.h"
#include "core/seeding.h"
#include "synth/dataset.h"

namespace cluseq {
namespace {

SequenceDatabase BenchDb(size_t clusters, size_t per, size_t len) {
  SyntheticDatasetOptions o;
  o.num_clusters = clusters;
  o.sequences_per_cluster = per;
  o.alphabet_size = 20;
  o.avg_length = len;
  o.outlier_fraction = 0.05;
  o.spread = 0.3;
  o.seed = 42;
  return MakeSyntheticDataset(o);
}

PstOptions BenchPstOptions() {
  PstOptions o;
  o.max_depth = 6;
  o.significance_threshold = 5;
  return o;
}

void BM_SelectSeeds(benchmark::State& state) {
  const size_t num_seeds = static_cast<size_t>(state.range(0));
  SequenceDatabase db = BenchDb(10, 20, 200);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  std::vector<size_t> unclustered(db.size());
  for (size_t i = 0; i < db.size(); ++i) unclustered[i] = i;
  for (auto _ : state) {
    Rng rng(7);
    auto seeds = SelectSeeds(db, unclustered, num_seeds, num_seeds * 5, {},
                             bg, BenchPstOptions(), 1, &rng);
    benchmark::DoNotOptimize(seeds.size());
  }
}
BENCHMARK(BM_SelectSeeds)->Arg(2)->Arg(5)->Arg(10);

void BM_FullClustering(benchmark::State& state) {
  SequenceDatabase db = BenchDb(static_cast<size_t>(state.range(0)), 15, 150);
  CluseqOptions options;
  options.initial_clusters = 5;
  options.significance_threshold = 5;
  options.min_unique_members = 4;
  options.pst.max_depth = 6;
  options.max_iterations = 8;
  for (auto _ : state) {
    ClusteringResult result;
    Status st = RunCluseq(db, options, &result);
    benchmark::DoNotOptimize(result.num_clusters());
    if (!st.ok()) state.SkipWithError("clustering failed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.size()));
}
BENCHMARK(BM_FullClustering)->Arg(4)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_OnlineScorerPush(benchmark::State& state) {
  const size_t num_models = static_cast<size_t>(state.range(0));
  SequenceDatabase db = BenchDb(num_models, 10, 400);
  BackgroundModel bg = BackgroundModel::FromDatabase(db);
  std::vector<Pst> models;
  for (size_t c = 0; c < num_models; ++c) {
    models.emplace_back(db.alphabet().size(), BenchPstOptions());
    for (size_t i = 0; i < db.size(); ++i) {
      if (db[i].label() == static_cast<Label>(c)) {
        models.back().InsertSequence(db[i]);
      }
    }
  }
  OnlineScorer scorer(bg);
  for (const Pst& m : models) scorer.AddModel(&m);
  Rng rng(9);
  for (auto _ : state) {
    scorer.Push(static_cast<SymbolId>(rng.Uniform(20)));
    benchmark::DoNotOptimize(scorer.BestScore().log_sim);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OnlineScorerPush)->Arg(1)->Arg(4)->Arg(16);

void BM_PstMerge(benchmark::State& state) {
  SequenceDatabase db = BenchDb(2, 10, 500);
  Pst a(db.alphabet().size(), BenchPstOptions());
  Pst b(db.alphabet().size(), BenchPstOptions());
  for (size_t i = 0; i < db.size(); ++i) {
    (db[i].label() == 0 ? a : b).InsertSequence(db[i]);
  }
  for (auto _ : state) {
    state.PauseTiming();
    Pst target = a;
    state.ResumeTiming();
    Status st = target.MergeFrom(b);
    benchmark::DoNotOptimize(target.NumNodes());
    if (!st.ok()) state.SkipWithError("merge failed");
  }
}
BENCHMARK(BM_PstMerge);

}  // namespace
}  // namespace cluseq

BENCHMARK_MAIN();
