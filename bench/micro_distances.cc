// Micro-benchmarks for the baseline distance kernels: edit distance (full
// and banded), block edit distance (greedy string tiling), q-gram profile
// construction/cosine, and HMM log-likelihood — the per-pair costs that
// explain the response-time column of Table 2.

#include <benchmark/benchmark.h>

#include "baselines/block_edit_distance.h"
#include "baselines/edit_distance.h"
#include "baselines/hmm.h"
#include "baselines/qgram.h"
#include "util/rng.h"

namespace cluseq {
namespace {

std::vector<SymbolId> RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  std::vector<SymbolId> text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

void BM_EditDistance(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  auto a = RandomText(len, 20, 1);
  auto b = RandomText(len, 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance)->Arg(100)->Arg(300)->Arg(1000);

void BM_BandedEditDistance(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  auto a = RandomText(len, 20, 3);
  auto b = a;
  // Perturb a few positions so the distance is small but nonzero.
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    b[rng.Uniform(len)] = static_cast<SymbolId>(rng.Uniform(20));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BandedEditDistance(a, b, 16));
  }
}
BENCHMARK(BM_BandedEditDistance)->Arg(100)->Arg(300)->Arg(1000);

void BM_BlockEditDistance(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  auto a = RandomText(len, 20, 5);
  auto b = RandomText(len, 20, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BlockEditDistance(a, b).distance);
  }
}
BENCHMARK(BM_BlockEditDistance)->Arg(100)->Arg(300);

void BM_QGramBuild(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  auto a = RandomText(len, 20, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QGramProfile::Build(a, 3, 20).num_distinct());
  }
}
BENCHMARK(BM_QGramBuild)->Arg(100)->Arg(1000)->Arg(10000);

void BM_QGramCosine(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  QGramProfile a = QGramProfile::Build(RandomText(len, 20, 8), 3, 20);
  QGramProfile b = QGramProfile::Build(RandomText(len, 20, 9), 3, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QGramProfile::Cosine(a, b));
  }
}
BENCHMARK(BM_QGramCosine)->Arg(100)->Arg(1000)->Arg(10000);

void BM_HmmLogLikelihood(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const size_t states = static_cast<size_t>(state.range(1));
  Hmm hmm(states, 20);
  Rng rng(10);
  hmm.RandomInit(&rng);
  auto seq = RandomText(len, 20, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm.LogLikelihood(seq));
  }
}
BENCHMARK(BM_HmmLogLikelihood)
    ->Args({200, 4})
    ->Args({200, 16})
    ->Args({1000, 4})
    ->Args({1000, 16});

}  // namespace
}  // namespace cluseq

BENCHMARK_MAIN();
