// Micro-benchmarks for the probabilistic suffix tree: insertion, prediction
// and the three pruning strategies.

#include <benchmark/benchmark.h>

#include "pst/pst.h"
#include "util/rng.h"

namespace cluseq {
namespace {

std::vector<SymbolId> RandomText(size_t len, size_t alphabet, uint64_t seed) {
  Rng rng(seed);
  std::vector<SymbolId> text(len);
  for (auto& s : text) s = static_cast<SymbolId>(rng.Uniform(alphabet));
  return text;
}

void BM_PstInsertSequence(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const size_t depth = static_cast<size_t>(state.range(1));
  auto text = RandomText(len, 20, 1);
  PstOptions options;
  options.max_depth = depth;
  for (auto _ : state) {
    Pst pst(20, options);
    pst.InsertSequence(text);
    benchmark::DoNotOptimize(pst.NumNodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_PstInsertSequence)
    ->Args({200, 4})
    ->Args({200, 8})
    ->Args({1000, 4})
    ->Args({1000, 8})
    ->Args({5000, 8});

void BM_PstPrediction(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  PstOptions options;
  options.max_depth = depth;
  options.significance_threshold = 3;
  Pst pst(20, options);
  pst.InsertSequence(RandomText(5000, 20, 2));
  auto queries = RandomText(256, 20, 3);
  size_t pos = 8;
  for (auto _ : state) {
    std::span<const SymbolId> ctx(queries.data() + pos - 8, 8);
    benchmark::DoNotOptimize(pst.ConditionalProbability(ctx, queries[pos]));
    pos = (pos + 1) % 248 + 8;
  }
}
BENCHMARK(BM_PstPrediction)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_PstLogSequenceProbability(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  PstOptions options;
  options.max_depth = 6;
  options.significance_threshold = 3;
  Pst pst(20, options);
  pst.InsertSequence(RandomText(5000, 20, 4));
  auto query = RandomText(len, 20, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pst.LogSequenceProbability(query));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_PstLogSequenceProbability)->Arg(100)->Arg(500)->Arg(2000);

void BM_PstPrune(benchmark::State& state) {
  const PruneStrategy strategy = static_cast<PruneStrategy>(state.range(0));
  PstOptions options;
  options.max_depth = 8;
  options.significance_threshold = 5;
  options.prune_strategy = strategy;
  Pst big(20, options);
  big.InsertSequence(RandomText(20000, 20, 6));
  const size_t target = big.ApproxMemoryBytes() / 4;
  for (auto _ : state) {
    state.PauseTiming();
    Pst pst = big;  // Copy; pruning is destructive.
    state.ResumeTiming();
    pst.PruneToBudget(target);
    benchmark::DoNotOptimize(pst.NumNodes());
  }
}
BENCHMARK(BM_PstPrune)
    ->Arg(static_cast<int>(PruneStrategy::kSmallestCountFirst))
    ->Arg(static_cast<int>(PruneStrategy::kLongestLabelFirst))
    ->Arg(static_cast<int>(PruneStrategy::kExpectedVectorFirst));

}  // namespace
}  // namespace cluseq

BENCHMARK_MAIN();
