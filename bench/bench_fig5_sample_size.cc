// Figure 5: effect of the seed-sample size m on quality (a) and response
// time (b). Paper: quality improves with m and saturates past m = 5k;
// response time is worst at very small m (poor initial clusters force a
// longer run) and grows again for large m.

#include "bench/bench_common.h"

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Figure 5: effect of the initial sample size m",
              "paper §6.3, Figure 5(a,b)");

  SyntheticDatasetOptions data_options;
  data_options.num_clusters = 10;
  data_options.sequences_per_cluster = Scaled(25, args.scale);
  data_options.alphabet_size = 20;
  data_options.avg_length = 250;
  data_options.outlier_fraction = 0.05;
  data_options.spread = 0.3;
  data_options.seed = args.seed;
  SequenceDatabase db = MakeSyntheticDataset(data_options);
  std::printf("dataset: %zu sequences, %zu clusters, 5%% outliers\n\n",
              db.size(), data_options.num_clusters);

  ReportTable table({"m / k", "Precision %", "Recall %", "Time (s)",
                     "Iterations"});
  for (double multiplier : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    CluseqOptions options = ScaledCluseqOptions(args.scale);
    options.sample_multiplier = multiplier;
    Stopwatch timer;
    ClusteringResult result;
    Status st = RunCluseq(db, options, &result);
    double secs = timer.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "CLUSEQ: %s\n", st.ToString().c_str());
      return 1;
    }
    ContingencyTable ct(result.best_cluster, TrueLabels(db));
    MacroQuality macro = MacroAverage(PerFamilyQuality(ct));
    table.AddRow({FormatDouble(multiplier, 0),
                  FormatPercent(macro.precision, 0),
                  FormatPercent(macro.recall, 0), FormatDouble(secs, 2),
                  std::to_string(result.iterations)});
  }
  EmitTable(table, args.csv);
  std::printf("\npaper shape: quality saturates past m = 5k; small m costs "
              "extra iterations\n");
  return 0;
}
