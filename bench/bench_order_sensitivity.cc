// §6.3 (unnumbered study): effect of the order in which sequences are
// examined during each iteration. Paper: fixed order 82%, random order 83%,
// cluster-based order 65% (grouping a cluster's members together traps the
// algorithm in local optima).

#include "bench/bench_common.h"

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Visit-order sensitivity", "paper §6.3 (order study)");

  SyntheticDatasetOptions data_options;
  data_options.num_clusters = 10;
  data_options.sequences_per_cluster = Scaled(25, args.scale);
  data_options.alphabet_size = 20;
  data_options.avg_length = 400;
  data_options.outlier_fraction = 0.05;
  data_options.spread = 0.3;
  data_options.seed = args.seed;
  SequenceDatabase db = MakeSyntheticDataset(data_options);
  std::printf("dataset: %zu sequences, %zu clusters\n\n", db.size(),
              data_options.num_clusters);

  // Two modes: with the per-iteration PST rebuild (this library's default)
  // and with the paper's purely cumulative PSTs. The paper's cluster-based
  // pathology (local-optimum trapping) only manifests in cumulative mode —
  // the rebuild step is precisely what breaks those local optima.
  ReportTable table({"Order", "PST updates", "Correctly labeled %",
                     "Time (s)", "Iterations"});
  const std::pair<VisitOrder, const char*> orders[] = {
      {VisitOrder::kFixed, "fixed"},
      {VisitOrder::kRandom, "random"},
      {VisitOrder::kClusterBased, "cluster-based"},
  };
  for (bool rebuild : {true, false}) {
    for (const auto& [order, name] : orders) {
      CluseqOptions options = ScaledCluseqOptions(args.scale);
      options.visit_order = order;
      options.rebuild_each_iteration = rebuild;
      // Order can only matter through the §4.2 within-scan PST updates; the
      // default frozen-batch scan is order-independent by construction.
      options.within_scan_updates = true;
      Stopwatch timer;
      ClusteringResult result;
      Status st = RunCluseq(db, options, &result);
      double secs = timer.ElapsedSeconds();
      if (!st.ok()) {
        std::fprintf(stderr, "CLUSEQ: %s\n", st.ToString().c_str());
        return 1;
      }
      EvaluationSummary eval = Evaluate(db, result.best_cluster);
      table.AddRow({name, rebuild ? "rebuild" : "cumulative (paper)",
                    FormatPercent(eval.correct_fraction, 0),
                    FormatDouble(secs, 2),
                    std::to_string(result.iterations)});
    }
  }
  EmitTable(table, args.csv);
  std::printf("\npaper reference: fixed 82%%, random 83%%, cluster-based "
              "65%%\n");
  return 0;
}
