// Table 2: model comparison — CLUSEQ vs edit distance (ED), edit distance
// with block operations (EDBO, greedy-string-tiling approximation), hidden
// Markov model mixture (HMM) and the q-gram approach, on a protein-like
// database. Reports the percentage of correctly labeled sequences and the
// response time, mirroring the paper's two rows.
//
// Paper (SWISS-PROT, 8000 proteins / 30 families, Sun Ultra 10):
//   CLUSEQ 82% / 144 s, ED 23% / 487 s, EDBO 80% / 13754 s,
//   HMM 81% / 3117 s, q-gram 75% / 132 s.
// Expected shape here: CLUSEQ best accuracy at near-best time; ED poor
// accuracy; EDBO/HMM decent accuracy at far higher cost; q-gram fast but
// less accurate.

#include "bench/bench_common.h"

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Table 2: model comparison", "paper §6.1, Table 2");

  ProteinLikeOptions data_options;
  data_options.num_families = 10;
  data_options.scale = 0.05 * args.scale;  // ~220 sequences at scale 1.
  data_options.avg_length = 150;
  data_options.seed = args.seed;
  ProteinLikeDataset dataset = MakeProteinLikeDataset(data_options);
  const size_t families = dataset.family_names.size();
  std::printf("dataset: %zu sequences, %zu families, avg length %.0f\n\n",
              dataset.db.size(), families, dataset.db.AverageLength());

  ReportTable table({"Model", "Correctly labeled %", "Response time (s)"});

  {  // CLUSEQ (does not receive the family count).
    CluseqOptions options = ScaledCluseqOptions(args.scale);
    Stopwatch timer;
    ClusteringResult result;
    Status st = RunCluseq(dataset.db, options, &result);
    double secs = timer.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "CLUSEQ: %s\n", st.ToString().c_str());
      return 1;
    }
    EvaluationSummary eval = Evaluate(dataset.db, result.best_cluster);
    table.AddRow({"CLUSEQ", FormatPercent(eval.correct_fraction, 0),
                  FormatDouble(secs, 2)});
  }

  {  // ED: k-medoids over plain edit distance.
    DistanceClusterOptions options;
    options.num_clusters = families;
    options.seed = args.seed;
    Stopwatch timer;
    std::vector<int32_t> assignment;
    Status st = EditDistanceCluster(dataset.db, options, &assignment);
    double secs = timer.ElapsedSeconds();
    if (!st.ok()) return 1;
    EvaluationSummary eval = Evaluate(dataset.db, assignment);
    table.AddRow({"ED", FormatPercent(eval.correct_fraction, 0),
                  FormatDouble(secs, 2)});
  }

  {  // EDBO: k-medoids over block edit distance.
    DistanceClusterOptions options;
    options.num_clusters = families;
    options.seed = args.seed;
    BlockEditOptions block;
    Stopwatch timer;
    std::vector<int32_t> assignment;
    Status st = BlockEditCluster(dataset.db, options, block, &assignment);
    double secs = timer.ElapsedSeconds();
    if (!st.ok()) return 1;
    EvaluationSummary eval = Evaluate(dataset.db, assignment);
    table.AddRow({"EDBO", FormatPercent(eval.correct_fraction, 0),
                  FormatDouble(secs, 2)});
  }

  {  // HMM mixture.
    HmmClusterOptions options;
    options.num_clusters = families;
    options.num_states = 12;
    options.max_rounds = 8;
    options.seed = args.seed;
    Stopwatch timer;
    std::vector<int32_t> assignment;
    Status st = HmmCluster(dataset.db, options, &assignment);
    double secs = timer.ElapsedSeconds();
    if (!st.ok()) return 1;
    EvaluationSummary eval = Evaluate(dataset.db, assignment);
    table.AddRow({"HMM", FormatPercent(eval.correct_fraction, 0),
                  FormatDouble(secs, 2)});
  }

  {  // q-gram (q = 3, as in the paper).
    QGramClusterOptions options;
    options.q = 3;
    options.num_clusters = families;
    options.seed = args.seed;
    Stopwatch timer;
    std::vector<int32_t> assignment;
    Status st = QGramCluster(dataset.db, options, &assignment);
    double secs = timer.ElapsedSeconds();
    if (!st.ok()) return 1;
    EvaluationSummary eval = Evaluate(dataset.db, assignment);
    table.AddRow({"q-gram", FormatPercent(eval.correct_fraction, 0),
                  FormatDouble(secs, 2)});
  }

  EmitTable(table, args.csv);
  std::printf(
      "\npaper reference: CLUSEQ 82%%/144s  ED 23%%/487s  EDBO 80%%/13754s"
      "  HMM 81%%/3117s  q-gram 75%%/132s\n");
  return 0;
}
