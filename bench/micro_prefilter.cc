// Prefilter A/B: the two-level pruned scan (ScanPrefilter over
// FrozenBank::ScanCandidatesBounded) against the exhaustive ScanAll oracle
// on the same bank, same threshold, same corpus, at k = {64, 256, 1024}
// cluster models.
//
// The workload mirrors a mid-run CLUSEQ iteration honestly: one depth-5 PST
// per ground-truth synthetic cluster (trained on that cluster's members),
// and a threshold set to the median per-sequence best score from the exact
// scan — so roughly half the corpus joins something, and the other half is
// what the prefilter should be skipping. Both arms run on all hardware
// threads. Before timing, every sequence's on/off results are checked for
// the prefilter contract: identical join sets, bit-identical results on
// joined pairs, identical per-sequence maxima, and an identical
// first-strict-max argmax; any mismatch fails the bench.
//
// skip_ratio is reported as measured — if the bounds are too loose to skip
// anything on this corpus, the JSON says so rather than hiding it.
//
// Emits BENCH_prefilter.json. Usage: micro_prefilter [--scale=F] [--seed=N]
// [--csv]

#include "bench/bench_common.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

namespace {

struct KPoint {
  size_t k = 0;
  size_t n = 0;
  double log_t = 0.0;
  double off_seconds = 0.0;
  double on_seconds = 0.0;
  double skip_ratio = 0.0;
  double early_exit_ratio = 0.0;
  uint64_t early_exits = 0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Prefilter A/B — pruned vs exhaustive cluster scan",
              "scan-phase perf target (not a paper table); admissible-bound "
              "pruning in front of FrozenBank::ScanAll");

  const size_t threads = HardwareThreads();
  std::printf("hardware threads: %zu, SIMD: %s\n\n", threads,
              FrozenBank::SimdAvailable() ? "avx2" : "scalar");

  ReportTable table({"k", "n", "log_t", "off (s)", "on (s)", "speedup",
                     "skip%", "early-exit%"});
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<KPoint> points;
  bool all_identical = true;

  for (size_t k : {size_t{64}, size_t{256}, size_t{1024}}) {
    SyntheticDatasetOptions synth;
    synth.num_clusters = k;
    synth.sequences_per_cluster = Scaled(3, args.scale);
    synth.alphabet_size = 20;
    synth.avg_length = 120;
    synth.outlier_fraction = 0.05;
    synth.seed = args.seed + k;
    const SequenceDatabase db = MakeSyntheticDataset(synth);
    const size_t n = db.size();

    // One model per ground-truth cluster, trained on its members — the
    // same shape the clusterer's bank has mid-run.
    PstOptions pst_options;
    pst_options.max_depth = 5;
    pst_options.significance_threshold = 4;
    const BackgroundModel background = BackgroundModel::FromDatabase(db);
    std::vector<Pst> psts(k, Pst(db.alphabet().size(), pst_options));
    for (size_t i = 0; i < n; ++i) {
      const Label label = db.LabelOf(i);
      if (label == kNoLabel) continue;
      psts[static_cast<size_t>(label) % k].InsertSequence(db.Symbols(i));
    }
    std::vector<std::shared_ptr<const FrozenPst>> models(k);
    ParallelFor(k, threads, [&](size_t m) {
      models[m] = std::make_shared<const FrozenPst>(psts[m], background);
    });
    const FrozenBank bank(models);

    const auto cost = [&db](size_t s) -> uint64_t { return db.Length(s); };

    // Exact reference scan; its per-sequence best scores set the threshold.
    std::vector<SimilarityResult> off_sims(n * k);
    ParallelForWeighted(n, threads, cost, [&](size_t s) {
      bank.ScanAll(db.Symbols(s), off_sims.data() + s * k);
    });
    std::vector<double> best(n);
    for (size_t s = 0; s < n; ++s) {
      double b = off_sims[s * k].log_sim;
      for (size_t m = 1; m < k; ++m) {
        b = std::max(b, off_sims[s * k + m].log_sim);
      }
      best[s] = b;
    }
    std::vector<double> sorted_best = best;
    std::sort(sorted_best.begin(), sorted_best.end());
    const double log_t = std::max(0.0, sorted_best[n / 2]);

    // Correctness gate (untimed): the prefilter contract versus the oracle.
    const ScanPrefilter prefilter(&bank);
    std::atomic<bool> identical{true};
    std::vector<SimilarityResult> on_sims(n * k);
    ParallelForWeighted(n, threads, cost, [&](size_t s) {
      prefilter.ScanAllWithThreshold(db.Symbols(s), log_t,
                                     on_sims.data() + s * k);
      double on_best = -1e300;
      double off_best = -1e300;
      for (size_t m = 0; m < k; ++m) {
        const SimilarityResult& off = off_sims[s * k + m];
        const SimilarityResult& on = on_sims[s * k + m];
        const bool off_joins = off.log_sim >= log_t;
        const bool on_joins = on.log_sim >= log_t;
        if (off_joins != on_joins ||
            (off_joins &&
             (on.log_sim != off.log_sim || on.best_begin != off.best_begin ||
              on.best_end != off.best_end))) {
          identical.store(false);
        }
        on_best = std::max(on_best, on.log_sim);
        off_best = std::max(off_best, off.log_sim);
      }
      if (on_best != off_best) identical.store(false);
      // Argmax path: pruned BestModel vs the exhaustive first-strict-max.
      double pf_best = 0.0;
      const int32_t pf_pos = prefilter.BestModel(db.Symbols(s), &pf_best);
      double ex_best = -std::numeric_limits<double>::infinity();
      int32_t ex_pos = -1;
      for (size_t m = 0; m < k; ++m) {
        if (off_sims[s * k + m].log_sim > ex_best) {
          ex_best = off_sims[s * k + m].log_sim;
          ex_pos = static_cast<int32_t>(m);
        }
      }
      if (pf_pos != ex_pos || (ex_pos >= 0 && pf_best != ex_best)) {
        identical.store(false);
      }
    });
    if (!identical.load()) {
      std::fprintf(stderr,
                   "EQUIVALENCE VIOLATION at k=%zu: prefiltered scan "
                   "disagrees with the exhaustive oracle\n",
                   k);
      all_identical = false;
    }

    // Timed A/B (one warm pass each already happened above).
    Stopwatch off_timer;
    ParallelForWeighted(n, threads, cost, [&](size_t s) {
      bank.ScanAll(db.Symbols(s), off_sims.data() + s * k);
    });
    const double off_seconds = off_timer.ElapsedSeconds();

    std::atomic<uint64_t> skipped{0};
    std::atomic<uint64_t> early{0};
    std::atomic<uint64_t> rescans{0};
    Stopwatch on_timer;
    ParallelForWeighted(n, threads, cost, [&](size_t s) {
      PrefilterScanStats stats;
      prefilter.ScanAllWithThreshold(db.Symbols(s), log_t,
                                     on_sims.data() + s * k, &stats);
      skipped.fetch_add(stats.candidates_skipped, std::memory_order_relaxed);
      early.fetch_add(stats.dp_early_exits, std::memory_order_relaxed);
      rescans.fetch_add(stats.residual_rescans, std::memory_order_relaxed);
    });
    const double on_seconds = on_timer.ElapsedSeconds();

    KPoint p;
    p.k = k;
    p.n = n;
    p.log_t = log_t;
    p.off_seconds = off_seconds;
    p.on_seconds = on_seconds;
    const double pairs = static_cast<double>(n) * static_cast<double>(k);
    p.skip_ratio = static_cast<double>(skipped.load()) / pairs;
    p.early_exits = early.load();
    p.early_exit_ratio = static_cast<double>(p.early_exits) / pairs;
    points.push_back(p);

    table.AddRow({std::to_string(k), std::to_string(n),
                  FormatDouble(log_t, 2), FormatDouble(off_seconds, 4),
                  FormatDouble(on_seconds, 4),
                  FormatDouble(off_seconds / on_seconds, 2) + "x",
                  FormatDouble(100.0 * p.skip_ratio, 1),
                  FormatDouble(100.0 * p.early_exit_ratio, 1)});

    const std::string tag = "k" + std::to_string(k);
    metrics.emplace_back(tag + "_num_sequences", static_cast<double>(n));
    metrics.emplace_back(tag + "_log_t", log_t);
    metrics.emplace_back(tag + "_scan_off_seconds", off_seconds);
    metrics.emplace_back(tag + "_scan_on_seconds", on_seconds);
    metrics.emplace_back(tag + "_speedup", off_seconds / on_seconds);
    metrics.emplace_back(tag + "_skip_ratio", p.skip_ratio);
    metrics.emplace_back(tag + "_early_exits",
                         static_cast<double>(p.early_exits));
    metrics.emplace_back(tag + "_residual_rescans",
                         static_cast<double>(rescans.load()));
  }

  EmitTable(table, args.csv);
  double speedup_k256 = 0.0;
  for (const KPoint& p : points) {
    if (p.k == 256) speedup_k256 = p.off_seconds / p.on_seconds;
  }
  metrics.emplace_back("speedup_k256", speedup_k256);
  if (!WriteBenchJson("prefilter", metrics,
                      {{"identical", all_identical}})) {
    std::fprintf(stderr, "failed to write BENCH_prefilter.json\n");
    return 1;
  }
  std::printf("\nprefilter-on vs -off outputs identical: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("scan-phase speedup at k=256: %.2fx\n", speedup_k256);
  std::printf("metrics -> BENCH_prefilter.json\n");
  return all_identical ? 0 : 1;
}
