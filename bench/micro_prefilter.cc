// Prefilter A/B: the multi-level pruned scan (ScanPrefilter over
// FrozenBank::ScanCandidatesBounded) against the exhaustive ScanAll oracle
// on the same bank, same threshold, same corpus, at
// k = {64, 256, 1024, 4096, 8192} cluster models.
//
// The workload mirrors a mid-run CLUSEQ iteration honestly: one depth-5 PST
// per ground-truth synthetic cluster (trained on that cluster's members),
// and a threshold set to the median per-sequence best score from the exact
// scan — so roughly half the corpus joins something, and the other half is
// what the prefilter should be skipping. Both arms run on all hardware
// threads.
//
// At k >= 4096 the exhaustive arm would dominate the bench's own runtime
// (n·k pairs), so those points train one sequence per cluster and run the
// oracle — threshold derivation, equivalence gate, and off-arm timing — on
// a deterministic ~512-sequence stride subset, while the prefiltered arm
// still covers every sequence. Per-sequence costs (what the near-constant
// claim is about) stay directly comparable across all k.
//
// Before timing, every covered sequence's on/off results are checked for
// the prefilter contract: identical join sets, bit-identical results on
// joined pairs, identical per-sequence maxima, and an identical
// first-strict-max argmax; any mismatch fails the bench.
//
// Emitted per k: scan times, speedup, the pruning funnel (level-0 block
// drops, level-1.5 truncated-DP drops, DP candidates, mid-DP early exits,
// adaptive bound checkpoints, residual rescans), and per-sequence on-arm
// cost. `near_constant_ratio_k4096` = per-seq cost at k=4096 over k=1024 —
// the headline "near-constant in k" number CI gates on — plus the
// `prefilter.bound_slack` histogram buckets from the run.
//
// skip_ratio is reported as measured — if the bounds are too loose to skip
// anything on this corpus, the JSON says so rather than hiding it.
//
// Emits BENCH_prefilter.json. Usage: micro_prefilter [--scale=F] [--seed=N]
// [--csv]

#include "bench/bench_common.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

namespace {

struct KPoint {
  size_t k = 0;
  size_t n = 0;
  double per_seq_on_us = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Prefilter A/B — pruned vs exhaustive cluster scan",
              "scan-phase perf target (not a paper table); admissible-bound "
              "pruning in front of FrozenBank::ScanAll");

  const size_t threads = HardwareThreads();
  std::printf("hardware threads: %zu, SIMD: %s\n\n", threads,
              FrozenBank::SimdAvailable() ? "avx2" : "scalar");

  ReportTable table({"k", "n", "oracle_n", "tier", "log_t", "off (s)",
                     "on (s)", "speedup", "skip%", "per-seq on (us)"});
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<KPoint> points;
  bool all_identical = true;

  for (size_t k : {size_t{64}, size_t{256}, size_t{1024}, size_t{4096},
                   size_t{8192}}) {
    const bool big = k >= 4096;
    SyntheticDatasetOptions synth;
    synth.num_clusters = k;
    synth.sequences_per_cluster = big ? 1 : Scaled(3, args.scale);
    synth.alphabet_size = 20;
    synth.avg_length = 120;
    synth.outlier_fraction = 0.05;
    synth.seed = args.seed + k;
    const SequenceDatabase db = MakeSyntheticDataset(synth);
    const size_t n = db.size();

    // One model per ground-truth cluster, trained on its members — the
    // same shape the clusterer's bank has mid-run.
    PstOptions pst_options;
    pst_options.max_depth = 5;
    pst_options.significance_threshold = 4;
    const BackgroundModel background = BackgroundModel::FromDatabase(db);
    std::vector<Pst> psts(k, Pst(db.alphabet().size(), pst_options));
    for (size_t i = 0; i < n; ++i) {
      const Label label = db.LabelOf(i);
      if (label == kNoLabel) continue;
      psts[static_cast<size_t>(label) % k].InsertSequence(db.Symbols(i));
    }
    std::vector<std::shared_ptr<const FrozenPst>> models(k);
    ParallelFor(k, threads, [&](size_t m) {
      models[m] = std::make_shared<const FrozenPst>(psts[m], background);
    });
    const FrozenBank bank(models);

    // Oracle coverage: every sequence at small k, a deterministic stride
    // subset at big k (the exhaustive arm is the bench bottleneck there).
    std::vector<size_t> oracle;
    const size_t oracle_target = big ? std::min<size_t>(n, 512) : n;
    const size_t stride = std::max<size_t>(1, n / oracle_target);
    for (size_t s = 0; s < n && oracle.size() < oracle_target; s += stride) {
      oracle.push_back(s);
    }
    const size_t on_count = oracle.size();
    const auto oracle_cost = [&](size_t j) -> uint64_t {
      return db.Length(oracle[j]);
    };

    // Exact reference scan; its per-sequence best scores set the threshold.
    std::vector<SimilarityResult> off_sims(on_count * k);
    ParallelForWeighted(on_count, threads, oracle_cost, [&](size_t j) {
      bank.ScanAll(db.Symbols(oracle[j]), off_sims.data() + j * k);
    });
    std::vector<double> best(on_count);
    for (size_t j = 0; j < on_count; ++j) {
      double b = off_sims[j * k].log_sim;
      for (size_t m = 1; m < k; ++m) {
        b = std::max(b, off_sims[j * k + m].log_sim);
      }
      best[j] = b;
    }
    std::vector<double> sorted_best = best;
    std::sort(sorted_best.begin(), sorted_best.end());
    const double log_t = std::max(0.0, sorted_best[on_count / 2]);

    // Correctness gate (untimed): the prefilter contract versus the oracle
    // on every covered sequence.
    const ScanPrefilter prefilter(&bank);
    std::atomic<bool> identical{true};
    ParallelForWeighted(on_count, threads, oracle_cost, [&](size_t j) {
      const size_t s = oracle[j];
      thread_local std::vector<SimilarityResult> row;
      if (row.size() < k) row.resize(k);
      prefilter.ScanAllWithThreshold(db.Symbols(s), log_t, row.data());
      double on_best = -1e300;
      double off_best = -1e300;
      for (size_t m = 0; m < k; ++m) {
        const SimilarityResult& off = off_sims[j * k + m];
        const SimilarityResult& on = row[m];
        const bool off_joins = off.log_sim >= log_t;
        const bool on_joins = on.log_sim >= log_t;
        if (off_joins != on_joins ||
            (off_joins &&
             (on.log_sim != off.log_sim || on.best_begin != off.best_begin ||
              on.best_end != off.best_end))) {
          identical.store(false);
        }
        on_best = std::max(on_best, on.log_sim);
        off_best = std::max(off_best, off.log_sim);
      }
      if (on_best != off_best) identical.store(false);
      // Argmax path: pruned BestModel vs the exhaustive first-strict-max.
      double pf_best = 0.0;
      const int32_t pf_pos = prefilter.BestModel(db.Symbols(s), &pf_best);
      double ex_best = -std::numeric_limits<double>::infinity();
      int32_t ex_pos = -1;
      for (size_t m = 0; m < k; ++m) {
        if (off_sims[j * k + m].log_sim > ex_best) {
          ex_best = off_sims[j * k + m].log_sim;
          ex_pos = static_cast<int32_t>(m);
        }
      }
      if (pf_pos != ex_pos || (ex_pos >= 0 && pf_best != ex_best)) {
        identical.store(false);
      }
    });
    if (!identical.load()) {
      std::fprintf(stderr,
                   "EQUIVALENCE VIOLATION at k=%zu: prefiltered scan "
                   "disagrees with the exhaustive oracle\n",
                   k);
      all_identical = false;
    }

    // Timed A/B (one warm pass each already happened above). The off arm
    // times the oracle subset; the on arm covers every sequence.
    Stopwatch off_timer;
    ParallelForWeighted(on_count, threads, oracle_cost, [&](size_t j) {
      bank.ScanAll(db.Symbols(oracle[j]), off_sims.data() + j * k);
    });
    const double off_seconds = off_timer.ElapsedSeconds();

    const auto cost = [&db](size_t s) -> uint64_t { return db.Length(s); };
    std::atomic<uint64_t> skipped{0};
    std::atomic<uint64_t> l15_pruned{0};
    std::atomic<uint64_t> early{0};
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> rescans{0};
    Stopwatch on_timer;
    ParallelForWeighted(n, threads, cost, [&](size_t s) {
      thread_local std::vector<SimilarityResult> row;
      if (row.size() < k) row.resize(k);
      PrefilterScanStats stats;
      prefilter.ScanAllWithThreshold(db.Symbols(s), log_t, row.data(),
                                     &stats);
      skipped.fetch_add(stats.candidates_skipped, std::memory_order_relaxed);
      l15_pruned.fetch_add(stats.l15_pruned, std::memory_order_relaxed);
      early.fetch_add(stats.dp_early_exits, std::memory_order_relaxed);
      checkpoints.fetch_add(stats.checkpoints, std::memory_order_relaxed);
      rescans.fetch_add(stats.residual_rescans, std::memory_order_relaxed);
    });
    const double on_seconds = on_timer.ElapsedSeconds();

    const double pairs = static_cast<double>(n) * static_cast<double>(k);
    const double per_seq_off =
        off_seconds / static_cast<double>(on_count);
    const double per_seq_on = on_seconds / static_cast<double>(n);
    const double speedup = per_seq_off / per_seq_on;
    const double skip_ratio = static_cast<double>(skipped.load()) / pairs;

    KPoint p;
    p.k = k;
    p.n = n;
    p.per_seq_on_us = per_seq_on * 1e6;
    points.push_back(p);

    table.AddRow({std::to_string(k), std::to_string(n),
                  std::to_string(on_count), bank.signature_tier_name(),
                  FormatDouble(log_t, 2), FormatDouble(off_seconds, 4),
                  FormatDouble(on_seconds, 4), FormatDouble(speedup, 2) + "x",
                  FormatDouble(100.0 * skip_ratio, 1),
                  FormatDouble(p.per_seq_on_us, 1)});

    const std::string tag = "k" + std::to_string(k);
    metrics.emplace_back(tag + "_num_sequences", static_cast<double>(n));
    metrics.emplace_back(tag + "_oracle_sequences",
                         static_cast<double>(on_count));
    metrics.emplace_back(tag + "_log_t", log_t);
    metrics.emplace_back(tag + "_scan_off_seconds", off_seconds);
    metrics.emplace_back(tag + "_scan_on_seconds", on_seconds);
    metrics.emplace_back(tag + "_per_seq_on_us", p.per_seq_on_us);
    metrics.emplace_back(tag + "_speedup", speedup);
    metrics.emplace_back(tag + "_skip_ratio", skip_ratio);
    // The pruning funnel, outermost level first. dp_candidates is what
    // actually reached the sparse DP (per covered pair).
    metrics.emplace_back(tag + "_l15_pruned",
                         static_cast<double>(l15_pruned.load()));
    metrics.emplace_back(
        tag + "_dp_candidates",
        pairs - static_cast<double>(skipped.load()));
    metrics.emplace_back(tag + "_early_exits",
                         static_cast<double>(early.load()));
    metrics.emplace_back(tag + "_bound_checkpoints",
                         static_cast<double>(checkpoints.load()));
    metrics.emplace_back(tag + "_residual_rescans",
                         static_cast<double>(rescans.load()));
  }

  EmitTable(table, args.csv);
  double speedup_k256 = 0.0;
  for (const auto& [key, value] : metrics) {
    if (key == "k256_speedup") speedup_k256 = value;
  }
  metrics.emplace_back("speedup_k256", speedup_k256);
  // The headline scaling claim: per-sequence prefiltered cost at k=4096
  // within a small factor of k=1024 (4x the models, ~flat cost).
  double per_seq_1024 = 0.0, per_seq_4096 = 0.0;
  for (const KPoint& p : points) {
    if (p.k == 1024) per_seq_1024 = p.per_seq_on_us;
    if (p.k == 4096) per_seq_4096 = p.per_seq_on_us;
  }
  const double near_constant =
      per_seq_1024 > 0.0 ? per_seq_4096 / per_seq_1024 : 0.0;
  metrics.emplace_back("near_constant_ratio_k4096", near_constant);
  // The run's bound-slack histogram (how far above the exact best score
  // the winning bound sat): the distribution that sized the default
  // level-1.5 prefix and the adjust window.
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Get().Snapshot();
  for (const auto& hist : snapshot.histograms) {
    if (hist.name != "prefilter.bound_slack") continue;
    for (size_t b = 0; b < hist.counts.size(); ++b) {
      const std::string le =
          b < hist.bounds.size() ? FormatDouble(hist.bounds[b], 1) : "inf";
      metrics.emplace_back("bound_slack_le_" + le,
                           static_cast<double>(hist.counts[b]));
    }
    metrics.emplace_back("bound_slack_count",
                         static_cast<double>(hist.total_count));
  }
  if (!WriteBenchJson("prefilter", metrics,
                      {{"identical", all_identical}})) {
    std::fprintf(stderr, "failed to write BENCH_prefilter.json\n");
    return 1;
  }
  std::printf("\nprefilter-on vs -off outputs identical: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("scan-phase speedup at k=256: %.2fx\n", speedup_k256);
  std::printf("per-seq cost ratio k4096/k1024: %.2f\n", near_constant);
  std::printf("metrics -> BENCH_prefilter.json\n");
  return all_identical ? 0 : 1;
}
