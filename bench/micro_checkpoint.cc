// Checkpoint overhead A/B: the same clustering run with checkpointing off,
// with a checkpoint written every iteration, and with a checkpoint
// directory configured but checkpoint_every=0 (which must disable
// checkpointing entirely and cost nothing). Repetitions are interleaved
// A B C A B C ... so thermal drift and page-cache warmup land evenly on
// all three arms instead of biasing whichever ran last.
//
// Before timing, all three arms' clusterings are checked bit-for-bit
// identical — checkpointing is bookkeeping on iteration boundaries and
// must never perturb the result. Any mismatch fails the bench.
//
// Emits BENCH_checkpoint.json: mean seconds per arm, the on/off overhead
// ratio, saves per run, bytes and seconds per save. Usage:
// micro_checkpoint [--scale=F] [--seed=N] [--csv]

#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

namespace {

bool Identical(const ClusteringResult& x, const ClusteringResult& y) {
  return x.clusters == y.clusters && x.best_cluster == y.best_cluster &&
         x.best_log_sim == y.best_log_sim &&
         x.final_log_threshold == y.final_log_threshold &&
         x.num_unclustered == y.num_unclustered;
}

double RunOnce(const SequenceDatabase& db, const CluseqOptions& options,
               ClusteringResult* result) {
  Stopwatch timer;
  Status st = RunCluseq(db, options, result);
  if (!st.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Checkpoint overhead A/B — off vs every-iteration vs cadence 0",
              "crash-safety perf target (not a paper table); checkpoint "
              "saves ride iteration boundaries and must stay cheap");

  SyntheticDatasetOptions synth;
  synth.num_clusters = 8;
  synth.sequences_per_cluster = Scaled(25, args.scale);
  synth.alphabet_size = 20;
  synth.avg_length = 120;
  synth.outlier_fraction = 0.05;
  synth.seed = args.seed;
  const SequenceDatabase db = MakeSyntheticDataset(synth);

  CluseqOptions base = ScaledCluseqOptions(args.scale);
  base.num_threads = HardwareThreads();
  base.rng_seed = args.seed;

  std::string dir_template =
      (std::filesystem::temp_directory_path() / "cluseq_bench_ckpt_XXXXXX")
          .string();
  char* dir_cstr = ::mkdtemp(dir_template.data());
  if (dir_cstr == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string dir = dir_cstr;

  CluseqOptions off = base;
  CluseqOptions on = base;
  on.checkpoint_dir = dir;
  on.checkpoint_every = 1;
  CluseqOptions zero = base;
  zero.checkpoint_dir = dir;
  zero.checkpoint_every = 0;  // Configured but disabled: must cost nothing.

  obs::Counter& bytes_counter =
      obs::MetricsRegistry::Get().GetCounter("checkpoint.bytes_written");

  // Untimed warmup + the correctness gate across all three arms.
  ClusteringResult off_result;
  ClusteringResult on_result;
  ClusteringResult zero_result;
  (void)RunOnce(db, off, &off_result);
  const uint64_t bytes_before = bytes_counter.Value();
  (void)RunOnce(db, on, &on_result);
  const uint64_t bytes_per_run = bytes_counter.Value() - bytes_before;
  (void)RunOnce(db, zero, &zero_result);
  const bool identical = Identical(off_result, on_result) &&
                         Identical(off_result, zero_result);
  if (!identical) {
    std::fprintf(stderr,
                 "EQUIVALENCE VIOLATION: checkpointing changed the "
                 "clustering result\n");
  }
  const size_t saves_per_run = on_result.iterations;  // Converged run:
  // boundaries 0 .. iterations-1 (the fixed-point iteration breaks before
  // its capture), so `iterations` saves at cadence 1.

  const int kReps = 5;
  double off_total = 0.0;
  double on_total = 0.0;
  double zero_total = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    // Fresh directory contents per checkpointed rep so every save pays the
    // same retention work (unlink third-newest) instead of a mix.
    std::filesystem::remove_all(dir);
    if (!EnsureDirectory(dir).ok()) {
      std::fprintf(stderr, "cannot recreate %s\n", dir.c_str());
      return 1;
    }
    ClusteringResult r;
    off_total += RunOnce(db, off, &r);
    on_total += RunOnce(db, on, &r);
    zero_total += RunOnce(db, zero, &r);
  }
  const double off_mean = off_total / kReps;
  const double on_mean = on_total / kReps;
  const double zero_mean = zero_total / kReps;
  const double save_seconds =
      obs::MetricsRegistry::Get().GetGauge("checkpoint.save_seconds").Value();
  std::filesystem::remove_all(dir);

  ReportTable table({"arm", "mean (s)", "vs off"});
  table.AddRow({"checkpoint off", FormatDouble(off_mean, 4), "1.00x"});
  table.AddRow({"every iteration", FormatDouble(on_mean, 4),
                FormatDouble(on_mean / off_mean, 2) + "x"});
  table.AddRow({"dir set, every=0", FormatDouble(zero_mean, 4),
                FormatDouble(zero_mean / off_mean, 2) + "x"});
  EmitTable(table, args.csv);

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("num_sequences", static_cast<double>(db.size()));
  metrics.emplace_back("iterations",
                       static_cast<double>(on_result.iterations));
  metrics.emplace_back("off_seconds", off_mean);
  metrics.emplace_back("on_seconds", on_mean);
  metrics.emplace_back("zero_cadence_seconds", zero_mean);
  metrics.emplace_back("overhead_ratio", on_mean / off_mean);
  metrics.emplace_back("zero_cadence_ratio", zero_mean / off_mean);
  metrics.emplace_back("saves_per_run", static_cast<double>(saves_per_run));
  metrics.emplace_back("bytes_per_run", static_cast<double>(bytes_per_run));
  metrics.emplace_back(
      "bytes_per_save",
      saves_per_run > 0
          ? static_cast<double>(bytes_per_run) / saves_per_run
          : 0.0);
  metrics.emplace_back("last_save_seconds", save_seconds);
  if (!WriteBenchJson("checkpoint", metrics, {{"identical", identical}})) {
    std::fprintf(stderr, "failed to write BENCH_checkpoint.json\n");
    return 1;
  }
  std::printf("\ncheckpointed vs plain results identical: %s\n",
              identical ? "yes" : "NO");
  std::printf("every-iteration overhead: %.2f%% (%zu saves, %.1f KB each)\n",
              100.0 * (on_mean / off_mean - 1.0), saves_per_run,
              saves_per_run > 0
                  ? static_cast<double>(bytes_per_run) / saves_per_run / 1024.0
                  : 0.0);
  std::printf("metrics -> BENCH_checkpoint.json\n");
  return identical ? 0 : 1;
}
