// Table 4: clustering romanized natural-language sentences (English /
// Chinese / Japanese), spaces removed, with noise sentences from other
// languages. Paper: precision 86/79/81, recall 84/78/80 — English best
// (distinctive th/e statistics), Japanese second (vowel-consonant
// alternation), Chinese lowest.

#include "bench/bench_common.h"

using namespace cluseq;
using namespace cluseq_bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Table 4: language clustering", "paper §6.1, Table 4");

  LanguageLikeOptions data_options;
  data_options.sentences_per_language = Scaled(150, args.scale);
  data_options.noise_sentences = Scaled(25, args.scale);
  data_options.min_sentence_length = 50;
  data_options.max_sentence_length = 120;
  data_options.seed = args.seed;
  LanguageLikeDataset dataset = MakeLanguageLikeDataset(data_options);
  std::printf("dataset: %zu sentences per language + %zu noise sentences\n\n",
              data_options.sentences_per_language,
              data_options.noise_sentences);

  CluseqOptions options = ScaledCluseqOptions(args.scale);
  options.initial_clusters = 3;
  // High c keeps rare trigrams out of the language signatures (see the
  // language_identification example for the sweep behind these values).
  options.significance_threshold = 15;
  // The tuned explicit start (the auto estimate over 50-120-letter
  // sentences is too coarse for this workload).
  options.auto_initial_threshold = false;
  options.similarity_threshold = 1.05;
  options.pst.max_depth = 4;
  options.min_unique_members =
      std::max<size_t>(5, data_options.sentences_per_language / 8);
  ClusteringResult result;
  Status st = RunCluseq(dataset.db, options, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "CLUSEQ: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("found %zu clusters in %zu iterations\n\n",
              result.num_clusters(), result.iterations);

  ContingencyTable table(result.best_cluster, TrueLabels(dataset.db));
  std::vector<FamilyQuality> langs = PerFamilyQuality(table);
  ReportTable report({"", "English", "Chinese", "Japanese"});
  std::vector<std::string> precision = {"Precision %"};
  std::vector<std::string> recall = {"Recall %"};
  for (const FamilyQuality& q : langs) {
    precision.push_back(FormatPercent(q.precision, 0));
    recall.push_back(FormatPercent(q.recall, 0));
  }
  report.AddRow(precision);
  report.AddRow(recall);
  EmitTable(report, args.csv);

  std::printf("\npaper reference: precision 86/79/81, recall 84/78/80\n");
  return 0;
}
