// Table 5: effect of the initial number of clusters k. Paper: 100 planted
// clusters; k in {1, 20, 100, 200} all converge to ~100 final clusters with
// ~82% precision/recall; badly wrong k costs up to ~60% extra time.
// Shape to reproduce: final cluster count independent of k; quality flat;
// time worst for the most wrong k.

#include "bench/bench_common.h"

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Table 5: effect of the initial number of clusters",
              "paper §6.3, Table 5");

  // Scaled stand-in for the paper's 100-cluster / 100k-sequence dataset.
  const size_t planted = Scaled(20, args.scale);
  SyntheticDatasetOptions data_options;
  data_options.num_clusters = planted;
  data_options.sequences_per_cluster = 15;
  data_options.alphabet_size = 20;
  // Paper-faithful sequence length: at ~600+ symbols even a single seed's
  // PST has significant order-2 contexts, which is what lets new clusters
  // bootstrap (the paper used 1000-symbol sequences).
  data_options.avg_length = 600;
  data_options.outlier_fraction = 0.10;  // Paper: 10% outliers.
  data_options.spread = 0.3;
  data_options.seed = args.seed;
  SequenceDatabase db = MakeSyntheticDataset(data_options);
  std::printf("dataset: %zu sequences, %zu planted clusters, 10%% outliers\n\n",
              db.size(), planted);

  ReportTable table({"Initial k", "Final clusters", "Time (s)",
                     "Precision %", "Recall %"});
  const size_t ks[] = {1, planted / 4, planted, planted * 2};
  for (size_t k : ks) {
    CluseqOptions options = ScaledCluseqOptions(args.scale);
    options.initial_clusters = std::max<size_t>(k, 1);
    options.max_iterations = 25;
    Stopwatch timer;
    ClusteringResult result;
    Status st = RunCluseq(db, options, &result);
    double secs = timer.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "CLUSEQ: %s\n", st.ToString().c_str());
      return 1;
    }
    ContingencyTable ct(result.best_cluster, TrueLabels(db));
    MacroQuality macro = MacroAverage(PerFamilyQuality(ct));
    table.AddRow({std::to_string(std::max<size_t>(k, 1)),
                  std::to_string(result.num_clusters()),
                  FormatDouble(secs, 2), FormatPercent(macro.precision, 0),
                  FormatPercent(macro.recall, 0)});
  }
  EmitTable(table, args.csv);
  std::printf("\npaper reference (100 planted): final 99-102 clusters, "
              "~82%% P/R for every initial k in {1,20,100,200}\n");
  return 0;
}
