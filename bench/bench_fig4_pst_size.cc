// Figure 4: effect of the per-tree PST memory budget on clustering quality
// (a) and response time (b). Paper: precision/recall saturate once each tree
// gets ~5 MB; response time keeps growing with tree size. Also reports the
// three pruning strategies of §5.1 at a fixed tight budget (the design
// choice DESIGN.md calls out for ablation).

#include <limits>

#include "bench/bench_common.h"

#include "util/stopwatch.h"

using namespace cluseq;
using namespace cluseq_bench;

namespace {

struct RunResult {
  double precision;
  double recall;
  double seconds;
  size_t clusters;
};

RunResult RunWithBudget(const SequenceDatabase& db, size_t budget,
                        PruneStrategy strategy, double scale) {
  CluseqOptions options = ScaledCluseqOptions(scale);
  // A deep memory bound L makes tree size (and hence the budget) matter,
  // mirroring the paper's multi-MB trees.
  options.pst.max_depth = 10;
  options.pst.max_memory_bytes = budget;
  options.pst.prune_strategy = strategy;
  Stopwatch timer;
  ClusteringResult result;
  Status st = RunCluseq(db, options, &result);
  RunResult out{};
  if (!st.ok()) return out;
  out.seconds = timer.ElapsedSeconds();
  ContingencyTable table(result.best_cluster, TrueLabels(db));
  MacroQuality macro = MacroAverage(PerFamilyQuality(table));
  out.precision = macro.precision;
  out.recall = macro.recall;
  out.clusters = result.num_clusters();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Figure 4: effect of PST size", "paper §6.2, Figure 4(a,b)");

  SyntheticDatasetOptions data_options;
  data_options.num_clusters = 10;
  data_options.sequences_per_cluster = Scaled(25, args.scale);
  data_options.alphabet_size = 20;
  data_options.avg_length = 400;
  data_options.outlier_fraction = 0.0;
  data_options.spread = 0.3;
  data_options.seed = args.seed;
  SequenceDatabase db = MakeSyntheticDataset(data_options);
  std::printf("dataset: %zu sequences, %zu clusters, avg length %.0f\n\n",
              db.size(), data_options.num_clusters, db.AverageLength());

  // (a) + (b): sweep the per-tree budget. The paper sweeps up to ~8 MB with
  // 100k x 1000-symbol data; our trees are smaller, so the sweep is scaled.
  ReportTable sweep({"Max PST bytes", "Precision %", "Recall %", "Time (s)",
                     "Clusters"});
  const size_t budgets[] = {2 << 10, 8 << 10, 32 << 10, 128 << 10,
                            512 << 10, 2 << 20, 0};
  for (size_t budget : budgets) {
    RunResult r = RunWithBudget(db, budget,
                                PruneStrategy::kSmallestCountFirst,
                                args.scale);
    sweep.AddRow({budget == 0 ? "unlimited" : HumanBytes(budget),
                  FormatPercent(r.precision, 0), FormatPercent(r.recall, 0),
                  FormatDouble(r.seconds, 2), std::to_string(r.clusters)});
  }
  EmitTable(sweep, args.csv);
  std::printf("\npaper shape: quality saturates beyond a moderate budget; "
              "time grows with tree size\n\n");

  // Ablation: pruning strategies 1-3 at one tight budget.
  ReportTable ablation({"Prune strategy", "Precision %", "Recall %",
                        "Time (s)"});
  const std::pair<PruneStrategy, const char*> strategies[] = {
      {PruneStrategy::kSmallestCountFirst, "smallest-count-first"},
      {PruneStrategy::kLongestLabelFirst, "longest-label-first"},
      {PruneStrategy::kExpectedVectorFirst, "expected-vector-first"},
  };
  for (const auto& [strategy, name] : strategies) {
    RunResult r = RunWithBudget(db, 32 << 10, strategy, args.scale);
    ablation.AddRow({name, FormatPercent(r.precision, 0),
                     FormatPercent(r.recall, 0), FormatDouble(r.seconds, 2)});
  }
  std::printf("pruning-strategy ablation at 32 KiB/tree (paper §5.1):\n");
  EmitTable(ablation, args.csv);
  return 0;
}
