// Protein-family clustering: the paper's flagship scenario (§6.1).
//
// Generates a protein-like database (families over the 20-letter amino-acid
// alphabet with conserved motifs), clusters it with CLUSEQ, reports
// per-family precision/recall like the paper's Table 3, and then uses the
// trained clusterer to classify a few held-out sequences.
//
//   $ ./protein_families [--families=8] [--scale=0.05] [--seed=42]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cluseq/cluseq.h"

int main(int argc, char** argv) {
  using namespace cluseq;

  ProteinLikeOptions data_options;
  data_options.num_families = 8;
  data_options.scale = 0.05;
  data_options.avg_length = 150;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "families", &value)) {
      data_options.num_families = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "scale", &value)) {
      data_options.scale = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "seed", &value)) {
      data_options.seed = std::strtoull(value.c_str(), nullptr, 10);
    }
  }

  ProteinLikeDataset dataset = MakeProteinLikeDataset(data_options);
  std::printf("database: %zu sequences, %zu families, avg length %.0f\n",
              dataset.db.size(), dataset.family_names.size(),
              dataset.db.AverageLength());

  CluseqOptions options;
  options.initial_clusters = 4;  // Deliberately below the family count.
  options.similarity_threshold = 1.05;
  options.significance_threshold = 5;
  options.min_unique_members = 4;
  options.pst.max_depth = 6;
  options.max_iterations = 20;

  CluseqClusterer clusterer(dataset.db, options);
  ClusteringResult result;
  Status st = clusterer.Run(&result);
  if (!st.ok()) {
    std::fprintf(stderr, "RunCluseq: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("found %zu clusters in %zu iterations (%zu unclustered)\n\n",
              result.num_clusters(), result.iterations,
              result.num_unclustered);

  // Per-family precision/recall, Table-3 style.
  ContingencyTable table(result.best_cluster, TrueLabels(dataset.db));
  ReportTable report({"Family", "Size", "Precision %", "Recall %"});
  for (const FamilyQuality& q : PerFamilyQuality(table)) {
    report.AddRow({dataset.family_names[q.family], std::to_string(q.size),
                   FormatPercent(q.precision, 0), FormatPercent(q.recall, 0)});
  }
  report.Print(std::cout);

  EvaluationSummary eval = Evaluate(dataset.db, result.best_cluster);
  std::printf("\noverall: %.0f%% correctly labeled, purity %.2f, NMI %.2f\n",
              eval.correct_fraction * 100.0, eval.purity, eval.nmi);

  // Classify fresh sequences against the discovered clusters.
  ProteinLikeOptions holdout = data_options;
  holdout.seed = data_options.seed + 1;
  holdout.scale = 0.005;
  ProteinLikeDataset fresh = MakeProteinLikeDataset(holdout);
  size_t shown = 0;
  std::printf("\nclassifying held-out sequences:\n");
  for (size_t i = 0; i < fresh.db.size() && shown < 5; i += 7, ++shown) {
    double log_sim = 0.0;
    int32_t cluster = clusterer.Classify(fresh.db[i], &log_sim);
    std::printf("  %-14s true=%-12s -> cluster %d (log sim %.1f)\n",
                fresh.db[i].id().c_str(),
                fresh.family_names[static_cast<size_t>(fresh.db[i].label())]
                    .c_str(),
                cluster, log_sim);
  }
  return 0;
}
