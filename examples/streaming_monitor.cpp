// Streaming monitor: score an unbounded event stream against learned
// behavior models in real time with OnlineScorer.
//
// Learns two behavioral modes from batch traces, then watches a live stream
// that starts in mode A, switches to mode B, and finally degenerates into
// random noise — printing which model currently explains the stream and
// raising an alert when none does.
//
//   $ ./streaming_monitor

#include <cstdio>
#include <vector>

#include "cluseq/cluseq.h"

int main() {
  using namespace cluseq;

  const size_t kAlphabet = 10;
  Rng rng(2024);
  GeneratorModel::Params params;
  params.alphabet_size = kAlphabet;
  params.order = 3;
  params.num_overrides = 25;
  params.spread = 0.25;
  GeneratorModel mode_a = GeneratorModel::Random(params, &rng);
  GeneratorModel mode_b = GeneratorModel::Random(params, &rng);
  GeneratorModel noise = GeneratorModel::Uniform(kAlphabet);

  // Train one PST per known behavioral mode.
  PstOptions pst_options;
  pst_options.max_depth = 5;
  pst_options.significance_threshold = 5;
  Pst model_a(kAlphabet, pst_options);
  Pst model_b(kAlphabet, pst_options);
  SequenceDatabase training(Alphabet::Synthetic(kAlphabet));
  for (int i = 0; i < 20; ++i) {
    std::vector<SymbolId> ta = mode_a.Generate(300, &rng);
    std::vector<SymbolId> tb = mode_b.Generate(300, &rng);
    model_a.InsertSequence(std::span<const SymbolId>(ta));
    model_b.InsertSequence(std::span<const SymbolId>(tb));
    training.Add(Sequence(std::move(ta)));
    training.Add(Sequence(std::move(tb)));
  }
  BackgroundModel background = BackgroundModel::FromDatabase(training);

  OnlineScorer scorer(background);
  scorer.AddModel(&model_a);
  scorer.AddModel(&model_b);

  // Live stream: 300 symbols of mode A, 300 of mode B, 200 of noise.
  std::vector<SymbolId> stream = mode_a.Generate(300, &rng);
  {
    auto part = mode_b.Generate(300, &rng);
    stream.insert(stream.end(), part.begin(), part.end());
    part = noise.Generate(200, &rng);
    stream.insert(stream.end(), part.begin(), part.end());
  }

  std::printf("monitoring %zu events (A: 0-299, B: 300-599, noise: 600+)\n\n",
              stream.size());
  std::printf("%8s  %8s  %14s  %s\n", "position", "best", "current log sim",
              "status");
  // The instantaneous best-segment score is spiky, so each 50-event block
  // is judged by its peak: a healthy stream produces at least one strong
  // matching burst per block, a drifted stream produces none.
  const double kAlert = 8.0;
  int last_model = -2;
  bool alerted = false;
  double block_peak = -1e300;
  OnlineScorer::Score peak_score;
  for (size_t i = 0; i < stream.size(); ++i) {
    scorer.Push(stream[i]);
    OnlineScorer::Score now = scorer.BestCurrentScore();
    if (now.current_log_sim > block_peak) {
      block_peak = now.current_log_sim;
      peak_score = now;
    }
    if ((i + 1) % 50 != 0) continue;
    const char* status = "ok";
    if (block_peak < kAlert) {
      status = "ALERT: no model explains recent events";
      alerted = true;
    } else if (peak_score.model != last_model) {
      status = "mode switch";
    }
    std::printf("%8zu  %8s  %14.2f  %s\n", i + 1,
                peak_score.model == 0   ? "A"
                : peak_score.model == 1 ? "B"
                                        : "-",
                block_peak, status);
    last_model = peak_score.model;
    block_peak = -1e300;
  }
  std::printf("\n%s\n", alerted ? "anomaly detected in the noise phase"
                                : "no anomaly detected (unexpected!)");
  return alerted ? 0 : 1;
}
