// Anomaly detection with CLUSEQ: sequences whose similarity to every
// discovered cluster stays below the threshold are outliers (paper §2:
// "if a sequence produces a small SIM for every cluster, it is deemed to be
// an outlier"). This example models normal system behavior from event
// traces, then flags anomalous traces — a classic intrusion-detection use
// of sequential statistics.
//
//   $ ./anomaly_detection [--normal=150] [--anomalies=12]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluseq/cluseq.h"

int main(int argc, char** argv) {
  using namespace cluseq;

  size_t num_normal = 150;
  size_t num_anomalies = 12;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "normal", &value)) {
      num_normal = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "anomalies", &value)) {
      num_anomalies = std::strtoul(value.c_str(), nullptr, 10);
    }
  }

  // "System call" alphabet: 12 event types. Normal traces come from two
  // behavioral modes (e.g., interactive vs batch); anomalies are uniform
  // random traces (e.g., fuzzing / compromised process).
  const size_t kAlphabet = 12;
  SequenceDatabase db(Alphabet::Synthetic(kAlphabet));
  Rng rng(99);
  GeneratorModel::Params params;
  params.alphabet_size = kAlphabet;
  params.order = 3;
  params.num_overrides = 25;
  params.spread = 0.25;
  GeneratorModel mode_a = GeneratorModel::Random(params, &rng);
  GeneratorModel mode_b = GeneratorModel::Random(params, &rng);
  GeneratorModel attacker = GeneratorModel::Uniform(kAlphabet);

  for (size_t i = 0; i < num_normal; ++i) {
    const GeneratorModel& mode = (i % 2 == 0) ? mode_a : mode_b;
    size_t len = rng.Length(120, 60, 240);
    db.Add(Sequence(mode.Generate(len, &rng), "trace" + std::to_string(i),
                    static_cast<Label>(i % 2)));
  }
  for (size_t i = 0; i < num_anomalies; ++i) {
    size_t len = rng.Length(120, 60, 240);
    db.Add(Sequence(attacker.Generate(len, &rng),
                    "anomaly" + std::to_string(i), kNoLabel));
  }

  CluseqOptions options;
  options.initial_clusters = 2;
  options.similarity_threshold = 1.5;
  options.significance_threshold = 5;
  options.min_unique_members = 5;
  options.pst.max_depth = 5;
  options.max_iterations = 15;

  ClusteringResult result;
  Status st = RunCluseq(db, options, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "RunCluseq: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("learned %zu behavioral clusters (final log t = %.2f)\n",
              result.num_clusters(), result.final_log_threshold);

  size_t true_pos = 0, false_pos = 0, false_neg = 0;
  std::printf("\nflagged traces:\n");
  for (size_t i = 0; i < db.size(); ++i) {
    bool flagged = result.best_cluster[i] < 0;
    bool is_anomaly = db[i].label() == kNoLabel;
    if (flagged && is_anomaly) ++true_pos;
    if (flagged && !is_anomaly) ++false_pos;
    if (!flagged && is_anomaly) ++false_neg;
    if (flagged) {
      std::printf("  %-10s best log sim %.2f %s\n", db[i].id().c_str(),
                  result.best_log_sim[i], is_anomaly ? "(true anomaly)" : "");
    }
  }
  std::printf(
      "\nanomalies caught: %zu / %zu   false alarms: %zu / %zu normal\n",
      true_pos, true_pos + false_neg, false_pos, num_normal);
  return 0;
}
