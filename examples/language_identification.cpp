// Language identification by sequential statistics (the paper's Table 4).
//
// Clusters romanized sentences of three synthetic "languages" (English-like,
// Chinese-pinyin-like, Japanese-romaji-like) with spaces removed, plus noise
// sentences from other random letter sources, then reports per-language
// precision/recall.
//
//   $ ./language_identification [--sentences=120] [--noise=20]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cluseq/cluseq.h"

int main(int argc, char** argv) {
  using namespace cluseq;

  LanguageLikeOptions data_options;
  data_options.sentences_per_language = 150;
  data_options.noise_sentences = 25;
  data_options.min_sentence_length = 50;
  data_options.max_sentence_length = 120;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "sentences", &value)) {
      data_options.sentences_per_language =
          std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "noise", &value)) {
      data_options.noise_sentences = std::strtoul(value.c_str(), nullptr, 10);
    }
  }

  LanguageLikeDataset dataset = MakeLanguageLikeDataset(data_options);
  std::printf("database: %zu sentences (%zu per language + %zu noise)\n",
              dataset.db.size(), data_options.sentences_per_language,
              data_options.noise_sentences);

  // A sample sentence per language, so the reader can see the signal.
  for (size_t lang = 0; lang < 3; ++lang) {
    std::string text = GenerateSentence(static_cast<LanguageId>(lang), 60,
                                        /*seed=*/7 + lang);
    std::printf("  %-9s e.g. \"%s\"\n", dataset.language_names[lang].c_str(),
                text.c_str());
  }

  CluseqOptions options;
  options.initial_clusters = 3;
  // Letter data wants a high significance threshold: with c too low every
  // rare trigram becomes a "feature" and languages fragment into dialects.
  options.significance_threshold = 15;
  // Tuned explicit start (the auto estimate over 50-120-letter sentences is
  // too coarse for this workload).
  options.auto_initial_threshold = false;
  options.similarity_threshold = 1.05;
  options.min_unique_members =
      std::max<size_t>(5, data_options.sentences_per_language / 8);
  options.pst.max_depth = 4;
  options.max_iterations = 15;

  ClusteringResult result;
  Status st = RunCluseq(dataset.db, options, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "RunCluseq: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nfound %zu clusters in %zu iterations\n\n",
              result.num_clusters(), result.iterations);

  // Table-4 style report.
  ContingencyTable table(result.best_cluster, TrueLabels(dataset.db));
  ReportTable report({"", "English", "Chinese", "Japanese"});
  std::vector<std::string> precision_row = {"Precision %"};
  std::vector<std::string> recall_row = {"Recall %"};
  for (const FamilyQuality& q : PerFamilyQuality(table)) {
    precision_row.push_back(FormatPercent(q.precision, 0));
    recall_row.push_back(FormatPercent(q.recall, 0));
  }
  report.AddRow(precision_row);
  report.AddRow(recall_row);
  report.Print(std::cout);

  size_t noise_total = 0, noise_rejected = 0;
  for (size_t i = 0; i < dataset.db.size(); ++i) {
    if (dataset.db[i].label() == kNoLabel) {
      ++noise_total;
      if (result.best_cluster[i] < 0) ++noise_rejected;
    }
  }
  if (noise_total > 0) {
    std::printf("\nnoise sentences rejected as outliers: %zu / %zu\n",
                noise_rejected, noise_total);
  }
  return 0;
}
