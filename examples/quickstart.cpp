// Quickstart: cluster a handful of character sequences with CLUSEQ.
//
// Builds a tiny database of sequences drawn from two obvious "styles",
// runs the clusterer, and prints which sequences landed together.
//
//   $ ./quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "cluseq/cluseq.h"

int main() {
  using namespace cluseq;

  // 1. Build a sequence database. Symbols are interned per character.
  SequenceDatabase db;
  const std::vector<std::string> style_a = {
      "abcabcabcabcabcabcabcabcabcabc", "bcabcabcabcabcabcabcabcabcabca",
      "cabcabcabcabcabcabcabcabcabcab", "abcabcabcabcabcabcabcabcabcabc",
      "abcabcabcabcbcabcabcabcabcabca",
  };
  const std::vector<std::string> style_b = {
      "azazazazazazazazazazazazazazaz", "zazazazazazazazazazazazazazaza",
      "azazazazazazazazazazazazazazaz", "zazazazazazazazazazazazazazazz",
      "azazazazazazazzazazazazazazaza",
  };
  for (size_t i = 0; i < style_a.size(); ++i) {
    Status st = db.AddText(style_a[i], "a" + std::to_string(i), /*label=*/0);
    if (!st.ok()) {
      std::fprintf(stderr, "AddText: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  for (size_t i = 0; i < style_b.size(); ++i) {
    Status st = db.AddText(style_b[i], "b" + std::to_string(i), /*label=*/1);
    if (!st.ok()) {
      std::fprintf(stderr, "AddText: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // 2. Configure CLUSEQ. These sequences are short, so a small significance
  //    threshold c and modest consolidation minimum are appropriate.
  CluseqOptions options;
  options.initial_clusters = 2;
  options.similarity_threshold = 1.05;
  options.significance_threshold = 3;  // c
  options.min_unique_members = 2;
  options.pst.max_depth = 4;           // Short-memory bound L.

  // 3. Run.
  ClusteringResult result;
  Status st = RunCluseq(db, options, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "RunCluseq: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Inspect the clustering.
  std::printf("clusters: %zu   unclustered: %zu   iterations: %zu\n",
              result.num_clusters(), result.num_unclustered,
              result.iterations);
  std::printf("final similarity threshold: log t = %.3f\n",
              result.final_log_threshold);
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    std::printf("cluster %zu:", c);
    for (size_t member : result.clusters[c]) {
      std::printf(" %s", db[member].id().c_str());
    }
    std::printf("\n");
  }

  // 5. Score the clustering against the known labels.
  EvaluationSummary eval = Evaluate(db, result.best_cluster);
  std::printf("correctly labeled: %.0f%%\n", eval.correct_fraction * 100.0);
  return 0;
}
