// Contingency table between found clusters and ground-truth labels.

#ifndef CLUSEQ_EVAL_CONTINGENCY_H_
#define CLUSEQ_EVAL_CONTINGENCY_H_

#include <cstdint>
#include <vector>

#include "seq/sequence.h"

namespace cluseq {

/// Counts of (found cluster, true label) co-occurrences. Row -1 (sequences
/// assigned to no cluster) and column kNoLabel (true outliers) are tracked
/// separately from the dense matrix.
class ContingencyTable {
 public:
  /// `assignment[i]` is the found-cluster id of sequence i (or -1);
  /// `labels[i]` its true label (or kNoLabel). Both must have equal size.
  ContingencyTable(const std::vector<int32_t>& assignment,
                   const std::vector<Label>& labels);

  size_t num_found() const { return num_found_; }
  size_t num_true() const { return num_true_; }

  /// Count of sequences in found cluster f with true label t.
  size_t count(size_t f, size_t t) const {
    return matrix_[f * num_true_ + t];
  }

  /// Total size of found cluster f (including true outliers in it).
  size_t found_total(size_t f) const { return found_totals_[f]; }
  /// Total number of sequences with true label t (including unassigned).
  size_t true_total(size_t t) const { return true_totals_[t]; }

  /// Sequences assigned to no cluster.
  size_t num_unassigned() const { return num_unassigned_; }
  /// True outliers assigned to no cluster (correct outlier rejections).
  size_t outliers_unassigned() const { return outliers_unassigned_; }
  /// True outliers in total.
  size_t num_true_outliers() const { return num_true_outliers_; }

  size_t total() const { return total_; }

 private:
  size_t num_found_ = 0;
  size_t num_true_ = 0;
  std::vector<size_t> matrix_;
  std::vector<size_t> found_totals_;
  std::vector<size_t> true_totals_;
  size_t num_unassigned_ = 0;
  size_t outliers_unassigned_ = 0;
  size_t num_true_outliers_ = 0;
  size_t total_ = 0;
};

}  // namespace cluseq

#endif  // CLUSEQ_EVAL_CONTINGENCY_H_
