// Clustering quality metrics matching the paper's reporting.
//
// * Percentage of correctly labeled sequences (Table 2): each found cluster
//   is labeled with its majority true family; a sequence is correct when its
//   assigned cluster's majority label equals its own true label. True
//   outliers count as correct when left unassigned.
// * Per-family precision/recall (Tables 3, 4): for each true family F, the
//   found cluster F' maximizing |F ∩ F'| is its match; precision is
//   |F ∩ F'| / |F'| and recall |F ∩ F'| / |F|.
// * Purity and NMI are also provided for completeness.

#ifndef CLUSEQ_EVAL_METRICS_H_
#define CLUSEQ_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "eval/contingency.h"
#include "seq/sequence_store.h"

namespace cluseq {

/// Extracts the true-label vector of a store.
std::vector<Label> TrueLabels(const SequenceStore& db);

/// Percentage (0..1) of correctly labeled sequences under majority-label
/// mapping; unassigned true outliers count as correct.
double CorrectlyLabeledFraction(const ContingencyTable& table);

struct FamilyQuality {
  size_t family = 0;
  size_t size = 0;          ///< |F|
  int32_t matched_cluster = -1;
  double precision = 0.0;   ///< |F ∩ F'| / |F'|
  double recall = 0.0;      ///< |F ∩ F'| / |F|
};

/// Best-match precision/recall for every true family.
std::vector<FamilyQuality> PerFamilyQuality(const ContingencyTable& table);

/// Macro-averages over PerFamilyQuality.
struct MacroQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
MacroQuality MacroAverage(const std::vector<FamilyQuality>& families);

/// Purity: Σ_f max_t count(f, t) / #assigned.
double Purity(const ContingencyTable& table);

/// Normalized mutual information between found clusters and true labels
/// (over sequences that are both assigned and labeled). In [0, 1].
double NormalizedMutualInformation(const ContingencyTable& table);

/// Convenience: evaluates a hard assignment against a database's labels.
struct EvaluationSummary {
  double correct_fraction = 0.0;
  MacroQuality macro;
  double purity = 0.0;
  double nmi = 0.0;
  size_t num_found_clusters = 0;
  size_t num_unassigned = 0;
};
EvaluationSummary Evaluate(const SequenceStore& db,
                           const std::vector<int32_t>& assignment);

}  // namespace cluseq

#endif  // CLUSEQ_EVAL_METRICS_H_
