#include "eval/report.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "core/cluseq.h"
#include "seq/sequence_store.h"
#include "util/string_util.h"

namespace cluseq {

ReportTable::ReportTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ReportTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void ReportTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void ReportTable::PrintCsv(std::ostream& out) const {
  out << Join(header_, ",") << '\n';
  for (const auto& row : rows_) {
    out << Join(row, ",") << '\n';
  }
}

std::string FormatDouble(double v, int digits) {
  return StringPrintf("%.*f", digits, v);
}

std::string FormatPercent(double fraction, int digits) {
  return StringPrintf("%.*f", digits, fraction * 100.0);
}

Status WriteAssignments(const ClusteringResult& result,
                        const SequenceStore& db, std::ostream& out) {
  const size_t n = std::min(db.size(), result.best_cluster.size());
  for (size_t i = 0; i < n; ++i) {
    const std::string_view id = db.Id(i);
    if (id.empty()) {
      out << "seq" << i;
    } else {
      out << id;
    }
    out << '\t' << result.best_cluster[i] << '\t';
    double s = i < result.best_log_sim.size() ? result.best_log_sim[i] : 0.0;
    out << StringPrintf("%.6g", s) << '\n';
  }
  if (!out) return Status::IOError("assignment write failed");
  return Status::OK();
}

Status WriteAssignmentsFile(const ClusteringResult& result,
                            const SequenceStore& db,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteAssignments(result, db, out);
}

}  // namespace cluseq
