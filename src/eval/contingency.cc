#include "eval/contingency.h"

#include <algorithm>

namespace cluseq {

ContingencyTable::ContingencyTable(const std::vector<int32_t>& assignment,
                                   const std::vector<Label>& labels) {
  total_ = std::min(assignment.size(), labels.size());
  int32_t max_found = -1;
  Label max_true = kNoLabel;
  for (size_t i = 0; i < total_; ++i) {
    max_found = std::max(max_found, assignment[i]);
    max_true = std::max(max_true, labels[i]);
  }
  num_found_ = max_found < 0 ? 0 : static_cast<size_t>(max_found) + 1;
  num_true_ = max_true == kNoLabel ? 0 : static_cast<size_t>(max_true) + 1;
  matrix_.assign(num_found_ * std::max<size_t>(num_true_, 1), 0);
  found_totals_.assign(num_found_, 0);
  true_totals_.assign(num_true_, 0);

  for (size_t i = 0; i < total_; ++i) {
    const int32_t f = assignment[i];
    const Label t = labels[i];
    if (t == kNoLabel) ++num_true_outliers_;
    if (t != kNoLabel) ++true_totals_[static_cast<size_t>(t)];
    if (f < 0) {
      ++num_unassigned_;
      if (t == kNoLabel) ++outliers_unassigned_;
      continue;
    }
    ++found_totals_[static_cast<size_t>(f)];
    if (t != kNoLabel && num_true_ > 0) {
      ++matrix_[static_cast<size_t>(f) * num_true_ +
                static_cast<size_t>(t)];
    }
  }
}

}  // namespace cluseq
