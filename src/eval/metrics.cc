#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace cluseq {

std::vector<Label> TrueLabels(const SequenceStore& db) {
  std::vector<Label> labels(db.size());
  for (size_t i = 0; i < db.size(); ++i) labels[i] = db.LabelOf(i);
  return labels;
}

double CorrectlyLabeledFraction(const ContingencyTable& table) {
  if (table.total() == 0) return 0.0;
  size_t correct = 0;
  // Majority label per found cluster; members matching it are correct.
  for (size_t f = 0; f < table.num_found(); ++f) {
    size_t best = 0;
    for (size_t t = 0; t < table.num_true(); ++t) {
      best = std::max(best, table.count(f, t));
    }
    correct += best;
  }
  // Unassigned true outliers are correct rejections.
  correct += table.outliers_unassigned();
  return static_cast<double>(correct) / static_cast<double>(table.total());
}

std::vector<FamilyQuality> PerFamilyQuality(const ContingencyTable& table) {
  std::vector<FamilyQuality> out;
  out.reserve(table.num_true());
  for (size_t t = 0; t < table.num_true(); ++t) {
    FamilyQuality q;
    q.family = t;
    q.size = table.true_total(t);
    size_t best_overlap = 0;
    for (size_t f = 0; f < table.num_found(); ++f) {
      if (table.count(f, t) > best_overlap) {
        best_overlap = table.count(f, t);
        q.matched_cluster = static_cast<int32_t>(f);
      }
    }
    if (q.matched_cluster >= 0) {
      size_t f = static_cast<size_t>(q.matched_cluster);
      if (table.found_total(f) > 0) {
        q.precision = static_cast<double>(best_overlap) /
                      static_cast<double>(table.found_total(f));
      }
      if (q.size > 0) {
        q.recall = static_cast<double>(best_overlap) /
                   static_cast<double>(q.size);
      }
    }
    out.push_back(q);
  }
  return out;
}

MacroQuality MacroAverage(const std::vector<FamilyQuality>& families) {
  MacroQuality m;
  if (families.empty()) return m;
  for (const FamilyQuality& q : families) {
    m.precision += q.precision;
    m.recall += q.recall;
  }
  m.precision /= static_cast<double>(families.size());
  m.recall /= static_cast<double>(families.size());
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

double Purity(const ContingencyTable& table) {
  size_t assigned = 0;
  size_t majority = 0;
  for (size_t f = 0; f < table.num_found(); ++f) {
    assigned += table.found_total(f);
    size_t best = 0;
    for (size_t t = 0; t < table.num_true(); ++t) {
      best = std::max(best, table.count(f, t));
    }
    majority += best;
  }
  if (assigned == 0) return 0.0;
  return static_cast<double>(majority) / static_cast<double>(assigned);
}

double NormalizedMutualInformation(const ContingencyTable& table) {
  // Restrict to sequences that are assigned AND labeled.
  double n = 0.0;
  for (size_t f = 0; f < table.num_found(); ++f) {
    for (size_t t = 0; t < table.num_true(); ++t) {
      n += static_cast<double>(table.count(f, t));
    }
  }
  if (n <= 0.0) return 0.0;

  std::vector<double> pf(table.num_found(), 0.0);
  std::vector<double> pt(table.num_true(), 0.0);
  for (size_t f = 0; f < table.num_found(); ++f) {
    for (size_t t = 0; t < table.num_true(); ++t) {
      double c = static_cast<double>(table.count(f, t));
      pf[f] += c;
      pt[t] += c;
    }
  }
  double mi = 0.0, hf = 0.0, ht = 0.0;
  for (size_t f = 0; f < table.num_found(); ++f) {
    if (pf[f] > 0.0) hf -= (pf[f] / n) * std::log(pf[f] / n);
    for (size_t t = 0; t < table.num_true(); ++t) {
      double c = static_cast<double>(table.count(f, t));
      if (c > 0.0) {
        mi += (c / n) * std::log(c * n / (pf[f] * pt[t]));
      }
    }
  }
  for (size_t t = 0; t < table.num_true(); ++t) {
    if (pt[t] > 0.0) ht -= (pt[t] / n) * std::log(pt[t] / n);
  }
  double denom = std::sqrt(hf * ht);
  if (denom <= 0.0) return 0.0;
  return std::max(0.0, std::min(1.0, mi / denom));
}

EvaluationSummary Evaluate(const SequenceStore& db,
                           const std::vector<int32_t>& assignment) {
  ContingencyTable table(assignment, TrueLabels(db));
  EvaluationSummary summary;
  summary.correct_fraction = CorrectlyLabeledFraction(table);
  summary.macro = MacroAverage(PerFamilyQuality(table));
  summary.purity = Purity(table);
  summary.nmi = NormalizedMutualInformation(table);
  summary.num_found_clusters = table.num_found();
  summary.num_unassigned = table.num_unassigned();
  return summary;
}

}  // namespace cluseq
