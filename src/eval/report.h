// Fixed-width table / CSV printers for the bench harnesses.

#ifndef CLUSEQ_EVAL_REPORT_H_
#define CLUSEQ_EVAL_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace cluseq {

/// Simple column-aligned text table with an optional CSV rendering.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns, a separator under the header.
  void Print(std::ostream& out) const;

  /// Renders as CSV (no escaping needed for the numeric content we emit).
  void PrintCsv(std::ostream& out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string FormatDouble(double v, int digits = 2);

/// Formats a fraction as a percentage string, e.g. 0.823 -> "82.3".
std::string FormatPercent(double fraction, int digits = 1);

class SequenceStore;
struct ClusteringResult;

/// Writes one line per sequence: "id <TAB> best_cluster <TAB> log_sim".
/// best_cluster is -1 for outliers. Round-trips with any TSV reader.
Status WriteAssignments(const ClusteringResult& result,
                        const SequenceStore& db, std::ostream& out);
Status WriteAssignmentsFile(const ClusteringResult& result,
                            const SequenceStore& db,
                            const std::string& path);

}  // namespace cluseq

#endif  // CLUSEQ_EVAL_REPORT_H_
