#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cluseq {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string line = stream_.str();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

void FatalCheckFailure(const char* file, int line, const char* condition,
                       const char* message) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s — %s\n",
               Basename(file), line, condition, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_logging

}  // namespace cluseq
