#include "util/logging.h"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace cluseq {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

/// Small sequential id for the calling thread ("t0" is whichever thread
/// logged first). Kept local to the logging layer so util stays the bottom
/// of the dependency stack.
uint32_t LogThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// ISO-8601 UTC wall time with millisecond resolution, e.g.
/// "2026-08-07T12:34:56.789Z".
void FormatTimestamp(char* buf, size_t buf_size) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &ts.tv_sec);
#else
  gmtime_r(&ts.tv_sec, &tm);
#endif
  std::snprintf(buf, buf_size, "%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, ts.tv_nsec / 1000000);
}

/// One write() per log line: interleaved writers can mingle *lines* but
/// never bytes within a line (POSIX pipe/terminal writes of this size are
/// atomic in practice), unlike stdio, whose buffer a concurrent fwrite can
/// split mid-line.
void WriteWholeLine(const char* data, size_t size) {
#if defined(_WIN32)
  std::fwrite(data, 1, size, stderr);
  std::fflush(stderr);
#else
  while (size > 0) {
    const ssize_t n = ::write(STDERR_FILENO, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // Nowhere left to report the failure.
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
#endif
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    char timestamp[40];
    FormatTimestamp(timestamp, sizeof(timestamp));
    stream_ << "[" << timestamp << " " << LevelName(level_) << " t"
            << LogThreadIndex() << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string line = stream_.str();
    line.push_back('\n');
    WriteWholeLine(line.data(), line.size());
  }
}

void FatalCheckFailure(const char* file, int line, const char* condition,
                       const char* message) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s — %s\n",
               Basename(file), line, condition, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_logging

}  // namespace cluseq
