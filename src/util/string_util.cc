#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace cluseq {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() &&
         (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseFlag(std::string_view arg, std::string_view name,
               std::string* value) {
  std::string prefix = "--";
  prefix.append(name);
  prefix.push_back('=');
  if (!StartsWith(arg, prefix)) return false;
  *value = std::string(arg.substr(prefix.size()));
  return true;
}

std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  size_t u = 0;
  while (v >= 1024.0 && u + 1 < 4) {
    v /= 1024.0;
    ++u;
  }
  return StringPrintf("%.1f %s", v, units[u]);
}

}  // namespace cluseq
