#include "util/histogram.h"

#include <algorithm>
#include <cmath>

namespace cluseq {

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(num_buckets == 0 ? 1 : num_buckets)),
      counts_(std::max<size_t>(num_buckets, 1), 0) {}

void Histogram::Add(double value) { AddCount(value, 1); }

void Histogram::AddCount(double value, size_t count) {
  double pos = (value - lo_) / width_;
  long idx = static_cast<long>(std::floor(pos));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long>(counts_.size())) {
    idx = static_cast<long>(counts_.size()) - 1;
  }
  counts_[static_cast<size_t>(idx)] += count;
  total_count_ += count;
}

double Histogram::bucket_center(size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
}

namespace {

// Incrementally maintained sums for a regression slope over a window.
struct SlopeSums {
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  size_t n = 0;

  void Add(double x, double y) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  void Remove(double x, double y) {
    sx -= x;
    sy -= y;
    sxx -= x * x;
    sxy -= x * y;
    --n;
  }
  // Least-squares slope; 0 when degenerate.
  double Slope() const {
    if (n < 2) return 0.0;
    double dn = static_cast<double>(n);
    double denom = sxx - sx * sx / dn;
    if (std::abs(denom) < 1e-300) return 0.0;
    return (sxy - sx * sy / dn) / denom;
  }
};

}  // namespace

double RegressionSlope(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  SlopeSums s;
  size_t n = std::min(xs.size(), ys.size());
  for (size_t i = 0; i < n; ++i) s.Add(xs[i], ys[i]);
  return s.Slope();
}

ValleyResult FindValley(const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  ValleyResult result;
  size_t n = std::min(xs.size(), ys.size());
  if (n < 4) return result;  // Need >= 2 points on each side.

  SlopeSums left;   // Points [0, i]
  SlopeSums right;  // Points [i, n-1]
  for (size_t j = 0; j < n; ++j) right.Add(xs[j], ys[j]);
  left.Add(xs[0], ys[0]);
  right.Remove(xs[0], ys[0]);

  // Regressions over fewer than `margin` points are dominated by per-bucket
  // noise (two noisy adjacent buckets can produce an arbitrarily steep
  // slope), so only split points with at least `margin` points on each side
  // are considered.
  const size_t margin = std::max<size_t>(3, n / 10);

  // Split points i = 1 .. n-2 (interior only); point i belongs to both sides
  // per the paper's formulas (left sums run j=1..i, right sums run j=i..n).
  for (size_t i = 1; i + 1 < n; ++i) {
    if (i + 1 < margin || n - i < margin) {
      // Keep the running sums in step even when the point is skipped.
      left.Add(xs[i], ys[i]);
      right.Remove(xs[i], ys[i]);
      continue;
    }
    left.Add(xs[i], ys[i]);
    double diff = std::abs(left.Slope() - right.Slope());
    if (!result.found || diff > result.slope_diff) {
      result.found = true;
      result.bucket = i;
      result.x = xs[i];
      result.slope_diff = diff;
    }
    right.Remove(xs[i], ys[i]);
  }
  return result;
}

ValleyResult FindValley(const Histogram& hist) {
  std::vector<double> xs(hist.num_buckets());
  std::vector<double> ys(hist.num_buckets());
  for (size_t i = 0; i < hist.num_buckets(); ++i) {
    xs[i] = hist.bucket_center(i);
    ys[i] = static_cast<double>(hist.count(i));
  }
  return FindValley(xs, ys);
}

}  // namespace cluseq
