#include "util/thread_pool.h"

#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace cluseq {

namespace {

// Set for the lifetime of every pool worker thread (any pool instance);
// nested ParallelFor calls check it to degrade to inline execution instead
// of blocking a worker on work that may be queued behind it.
thread_local bool t_on_pool_worker = false;

obs::Counter& TasksExecutedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Get().GetCounter("thread_pool.tasks_executed");
  return c;
}

obs::Counter& StealsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Get().GetCounter("thread_pool.steals");
  return c;
}

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Get().GetGauge("thread_pool.queue_depth");
  return g;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(num_threads, 1);
  queues_.resize(n);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queues_[next_queue_++ % queues_.size()].tasks.push_back(std::move(task));
    ++pending_;
    QueueDepthGauge().Set(static_cast<double>(pending_));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return pending_ == 0 && in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::PopTask(size_t worker_index, std::function<void()>* task) {
  WorkerQueue& own = queues_[worker_index];
  if (!own.tasks.empty()) {
    *task = std::move(own.tasks.front());
    own.tasks.pop_front();
    return true;
  }
  // Steal from the back of the first non-empty sibling: the task the victim
  // would reach last, so the steal disturbs its locality least.
  const size_t k = queues_.size();
  for (size_t d = 1; d < k; ++d) {
    WorkerQueue& victim = queues_[(worker_index + d) % k];
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      StealsCounter().Increment();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || pending_ > 0; });
      if (!PopTask(worker_index, &task)) {
        if (shutting_down_) return;
        continue;
      }
      --pending_;
      ++in_flight_;
      QueueDepthGauge().Set(static_cast<double>(pending_));
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    TasksExecutedCounter().Increment();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (pending_ == 0 && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

// The global pool, fork-aware. fork() clones only the calling thread, so a
// child inherits the parent's pool object with its worker threads gone: any
// ParallelFor wider than 1 would submit helper tasks nobody runs and block
// forever (the chaos/crash tests fork clustering children; so does any
// embedder that forks). pthread_atfork abandons the stale pool in the child
// — its threads cannot be joined and its mutex state is indeterminate, so
// the object is leaked, never destroyed — and the next Global() call
// constructs a fresh pool with live workers. The parent keeps its pool
// untouched. The pool is also deliberately leaked at process exit: workers
// park on a condition variable and die with the process.
std::atomic<ThreadPool*> g_global_pool{nullptr};
pthread_mutex_t g_global_pool_mu = PTHREAD_MUTEX_INITIALIZER;

void GlobalPoolAtForkChild() {
  g_global_pool.store(nullptr, std::memory_order_release);
  // The lock may have been held mid-fork by another thread; that holder no
  // longer exists in the child, so re-initialize rather than inherit an
  // unreleasable lock.
  g_global_pool_mu = PTHREAD_MUTEX_INITIALIZER;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  // Started on first use (per process — see the atfork note above), sized
  // to the hardware: per-call parallelism is capped by the caller's
  // num_threads, not by shrinking the pool.
  ThreadPool* pool = g_global_pool.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  pthread_mutex_lock(&g_global_pool_mu);
  pool = g_global_pool.load(std::memory_order_relaxed);
  if (pool == nullptr) {
    static const int atfork_registered =
        pthread_atfork(nullptr, nullptr, &GlobalPoolAtForkChild);
    (void)atfork_registered;
    pool = new ThreadPool(HardwareThreads());
    obs::MetricsRegistry::Get()
        .GetGauge("thread_pool.workers")
        .Set(static_cast<double>(pool->num_threads()));
    g_global_pool.store(pool, std::memory_order_release);
  }
  pthread_mutex_unlock(&g_global_pool_mu);
  return *pool;
}

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

namespace {

// Shared state of one pool-backed parallel loop. Lives on the caller's
// stack: the caller blocks until every helper finished, so references stay
// valid for the helpers' full lifetime.
struct LoopState {
  std::atomic<size_t> cursor{0};  // Next chunk (weighted) or index (plain).
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  std::atomic<uint64_t> busy_nanos{0};

  void Capture() {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!error) error = std::current_exception();
    failed.store(true, std::memory_order_relaxed);
  }
};

// Runs `runner` on `workers` threads: workers-1 pool tasks plus the calling
// thread, then blocks until all have finished and rethrows the loop's first
// exception. Records per-call busy-fraction into the utilization histogram.
void RunOnPool(size_t workers, LoopState& state,
               const std::function<void()>& runner) {
  static const std::vector<double> utilization_bounds = {
      0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  static obs::Histogram& utilization_hist =
      obs::MetricsRegistry::Get().GetHistogram(
          "thread_pool.parallel_utilization",
          std::span<const double>(utilization_bounds));

  const auto timed_runner = [&state, &runner] {
    const auto start = std::chrono::steady_clock::now();
    runner();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    state.busy_nanos.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
        std::memory_order_relaxed);
  };

  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  } sync;
  sync.remaining = workers - 1;

  const auto wall_start = std::chrono::steady_clock::now();
  ThreadPool& pool = ThreadPool::Global();
  for (size_t h = 0; h + 1 < workers; ++h) {
    pool.Submit([&sync, &timed_runner] {
      timed_runner();  // Never throws: `runner` captures into LoopState.
      std::lock_guard<std::mutex> lock(sync.mu);
      if (--sync.remaining == 0) sync.cv.notify_all();
    });
  }
  timed_runner();
  {
    std::unique_lock<std::mutex> lock(sync.mu);
    sync.cv.wait(lock, [&sync] { return sync.remaining == 0; });
  }

  const double wall_nanos = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  if (wall_nanos > 0.0) {
    utilization_hist.Observe(
        static_cast<double>(state.busy_nanos.load(std::memory_order_relaxed)) /
        (wall_nanos * static_cast<double>(workers)));
  }

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state.error_mu);
    error = std::exchange(state.error, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t workers = std::min(ResolveThreads(num_threads), n);
  if (workers <= 1 || ThreadPool::OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  static obs::Counter& calls =
      obs::MetricsRegistry::Get().GetCounter("thread_pool.parallel_for_calls");
  calls.Increment();

  // Dynamic chunking: ~8 chunks per worker bounds both the scheduling
  // overhead (8·workers fetch_adds) and the worst idle tail (one chunk).
  const size_t chunk = std::max<size_t>(1, n / (workers * 8));
  LoopState state;
  RunOnPool(workers, state, [&state, &body, n, chunk] {
    try {
      for (;;) {
        if (state.failed.load(std::memory_order_relaxed)) return;
        const size_t begin =
            state.cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        const size_t end = std::min(begin + chunk, n);
        for (size_t i = begin; i < end; ++i) body(i);
      }
    } catch (...) {
      state.Capture();
    }
  });
}

void ParallelForWeighted(size_t n, size_t num_threads,
                         const std::function<uint64_t(size_t)>& cost,
                         const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t workers = std::min(ResolveThreads(num_threads), n);
  if (workers <= 1 || ThreadPool::OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Pre-cut the range into contiguous chunks of roughly equal total cost.
  // Every index contributes at least 1 so zero-cost runs still split, and a
  // single index heavier than the target closes its chunk immediately —
  // stragglers get a chunk of their own instead of dragging neighbors.
  uint64_t total = 0;
  std::vector<uint64_t> costs(n);
  for (size_t i = 0; i < n; ++i) {
    costs[i] = cost(i) + 1;
    total += costs[i];
  }
  const uint64_t target = std::max<uint64_t>(1, total / (workers * 8));
  std::vector<size_t> chunk_end;
  chunk_end.reserve(std::min<size_t>(n, workers * 8 + 1));
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += costs[i];
    if (acc >= target) {
      chunk_end.push_back(i + 1);
      acc = 0;
    }
  }
  if (chunk_end.empty() || chunk_end.back() != n) chunk_end.push_back(n);

  if (chunk_end.size() <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  static obs::Counter& calls =
      obs::MetricsRegistry::Get().GetCounter("thread_pool.parallel_for_calls");
  static obs::Counter& weighted_calls =
      obs::MetricsRegistry::Get().GetCounter("thread_pool.weighted_calls");
  calls.Increment();
  weighted_calls.Increment();

  LoopState state;
  const size_t num_chunks = chunk_end.size();
  RunOnPool(workers, state, [&state, &body, &chunk_end, num_chunks] {
    try {
      for (;;) {
        if (state.failed.load(std::memory_order_relaxed)) return;
        const size_t c = state.cursor.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) return;
        const size_t begin = c == 0 ? 0 : chunk_end[c - 1];
        const size_t end = chunk_end[c];
        for (size_t i = begin; i < end; ++i) body(i);
      }
    } catch (...) {
      state.Capture();
    }
  });
}

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ResolveThreads(size_t requested) {
  return requested == 0 ? HardwareThreads() : requested;
}

}  // namespace cluseq
