#include "util/thread_pool.h"

#include <algorithm>

namespace cluseq {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(num_threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  size_t workers = std::min(std::max<size_t>(num_threads, 1), n);
  if (workers == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    threads.emplace_back([begin, end, &body] {
      for (size_t i = begin; i < end; ++i) body(i);
    });
  }
  for (auto& t : threads) t.join();
}

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace cluseq
