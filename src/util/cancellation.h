// Cooperative cancellation for long-running operations.
//
// A CancellationToken is a one-way latch plus an optional soft deadline.
// Producers (a CLI signal handler, a --max_seconds watchdog, a test) flip
// it; consumers (the clustering loop) poll it at phase boundaries and wind
// down cleanly — finish the running phase, flush a checkpoint, return a
// result marked interrupted. Nothing here ever interrupts a thread
// preemptively; cancellation is only as prompt as the consumer's polling.
//
// RequestCancel() and cancel_requested() are a single relaxed atomic
// operation each, making them safe to call from an async signal handler
// (POSIX requires lock-free atomics there; a bool always is). Cancelled()
// additionally evaluates the deadline against steady_clock and must only be
// called from normal (non-handler) context.

#ifndef CLUSEQ_UTIL_CANCELLATION_H_
#define CLUSEQ_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cluseq {

class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Latches the token. Async-signal-safe; idempotent.
  void RequestCancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// True once RequestCancel() was called. Async-signal-safe; does not
  /// consider the deadline.
  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms a soft deadline `seconds` from now (<= 0 expires immediately).
  /// Call before handing the token to the consumer.
  void SetTimeout(double seconds) {
    const auto now = std::chrono::steady_clock::now();
    const auto delta = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds < 0.0 ? 0.0 : seconds));
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            (now + delta).time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_relaxed);
  }

  /// True when cancellation was requested or the deadline has passed. The
  /// consumer-side poll; not for use inside signal handlers.
  bool Cancelled() const {
    if (cancel_requested()) return true;
    if (!has_deadline_.load(std::memory_order_relaxed)) return false;
    const int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    return now_ns >= deadline_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<int64_t> deadline_ns_{0};  // steady_clock epoch, nanoseconds.
};

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_CANCELLATION_H_
