#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <unordered_set>

namespace cluseq {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Length(size_t mean, size_t lo, size_t hi) {
  if (lo >= hi) return lo;
  // Gaussian around the mean with sigma = mean/5, clamped.
  double v = static_cast<double>(mean) +
             Normal() * (static_cast<double>(mean) / 5.0);
  if (v < static_cast<double>(lo)) v = static_cast<double>(lo);
  if (v > static_cast<double>(hi)) v = static_cast<double>(hi);
  return static_cast<size_t>(v);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t universe, size_t n) {
  std::vector<size_t> out;
  if (n >= universe) {
    out.resize(universe);
    for (size_t i = 0; i < universe; ++i) out[i] = i;
    Shuffle(out);
    return out;
  }
  out.reserve(n);
  if (n * 4 >= universe) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<size_t> idx(universe);
    for (size_t i = 0; i < universe; ++i) idx[i] = i;
    for (size_t i = 0; i < n; ++i) {
      size_t j = i + Uniform(universe - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection with a hash set.
  std::unordered_set<size_t> seen;
  while (out.size() < n) {
    size_t v = Uniform(universe);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

Rng::State Rng::SaveState() const {
  State state;
  for (size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  // An all-zero xoshiro state is absorbing; keep the constructor's guard.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace cluseq
