#include "util/crc32c.h"

#include <cstring>

namespace cluseq {

namespace {

// Slicing-by-4: four 256-entry tables let the hot loop retire 4 input
// bytes per iteration with no data-dependent branches. Tables are built at
// compile time from the reflected Castagnoli polynomial.
struct Crc32cTables {
  uint32_t t[4][256];
};

constexpr Crc32cTables BuildTables() {
  constexpr uint32_t kPolyReflected = 0x82F63B78u;
  Crc32cTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? kPolyReflected ^ (crc >> 1) : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tables.t[1][i] =
        (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFFu];
    tables.t[2][i] =
        (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFFu];
    tables.t[3][i] =
        (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFFu];
  }
  return tables;
}

constexpr Crc32cTables kTables = BuildTables();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  while (size >= 4) {
    uint32_t word;
    std::memcpy(&word, p, sizeof(word));  // Little-endian load.
    c ^= word;
    c = kTables.t[3][c & 0xFFu] ^ kTables.t[2][(c >> 8) & 0xFFu] ^
        kTables.t[1][(c >> 16) & 0xFFu] ^ kTables.t[0][c >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    c = (c >> 8) ^ kTables.t[0][(c ^ *p++) & 0xFFu];
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace cluseq
