// Test-only fault injection for the durable IO layer (util/file_io.h).
//
// The atomic-write protocol's whole job is to survive the failures that
// never happen on a healthy dev box: torn writes from a crash or full
// disk, fsyncs that fail, bytes that rot between buffer and platter,
// EINTR storms. This harness lets tests script exactly those failures at
// the write()/fsync()/rename() seam that WriteFileAtomic runs on, then
// assert the protocol's guarantee: a failed save never leaves a
// partially-visible file at the final path.
//
// Usage (tests only; production code never arms a plan):
//
//   FaultPlan plan;
//   plan.write_limit = 100;              // torn write after 100 bytes
//   ScopedFaultPlan guard(plan);
//   Status st = WriteFileAtomic(path, payload);   // must fail cleanly
//
// When no plan is armed the hooks cost one relaxed atomic load per IO
// call — negligible next to the syscall they wrap.

#ifndef CLUSEQ_UTIL_FAULT_INJECTION_H_
#define CLUSEQ_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>

namespace cluseq {

struct FaultPlan {
  /// Total payload bytes allowed to reach files: the write that crosses
  /// the limit is cut short (a torn write, as a crash or ENOSPC would
  /// leave it) and every later write fails with `write_errno`.
  size_t write_limit = std::numeric_limits<size_t>::max();
  /// errno for writes rejected past `write_limit`.
  int write_errno = 5;  // EIO
  /// The first N writes fail with EINTR before touching the file;
  /// exercises the bounded-retry loop.
  int transient_eintr_writes = 0;
  bool fail_fsync_file = false;  ///< fsync of a regular file fails (EIO).
  bool fail_fsync_dir = false;   ///< fsync of a directory fd fails (EIO).
  bool fail_rename = false;      ///< rename to the final path fails (EIO).
  /// Flip `flip_mask` into the byte at logical offset `flip_offset` of
  /// the written stream (counted across all writes of one armed plan):
  /// bit rot between the write buffer and the medium.
  size_t flip_offset = std::numeric_limits<size_t>::max();
  uint8_t flip_mask = 0;

  // --- Read path (checkpoint/model loads) -----------------------------
  /// Total bytes allowed to come back from read(): the read that crosses
  /// the limit is clamped short and every later read fails with
  /// `read_errno` — a file that goes unreadable mid-load.
  size_t read_limit = std::numeric_limits<size_t>::max();
  /// errno for reads rejected past `read_limit`.
  int read_errno = 5;  // EIO
  /// The first N reads fail with EINTR before returning any bytes;
  /// exercises the loader's bounded-retry loop.
  int transient_eintr_reads = 0;
  /// Flip `read_flip_mask` into the byte at logical offset
  /// `read_flip_offset` of the read-back stream (counted across all reads
  /// of one armed plan): bit rot between the platter and the read buffer.
  size_t read_flip_offset = std::numeric_limits<size_t>::max();
  uint8_t read_flip_mask = 0;
};

class FaultInjector {
 public:
  /// Process-wide injector consulted by util/file_io.cc.
  static FaultInjector& Get();

  /// Installs `plan` and zeroes the counters. Not thread-safe against
  /// concurrent IO — tests arm/disarm around single-threaded calls.
  void Arm(const FaultPlan& plan);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  struct Counters {
    size_t writes = 0;        ///< write() attempts observed (incl. failed).
    size_t bytes_written = 0; ///< Bytes actually allowed through.
    size_t fsyncs = 0;
    size_t renames = 0;
    size_t reads = 0;         ///< read() attempts observed (incl. failed).
    size_t bytes_read = 0;    ///< Bytes actually handed back to callers.
  };
  Counters counters() const;

  /// Hooks for file_io.cc. Each returns 0 to proceed or an errno to fail
  /// the call without touching the file. OnWrite may shorten `*count`
  /// (torn write) or redirect `*data` to `*scratch` with a flipped byte.
  int OnWrite(const char** data, size_t* count, std::string* scratch);
  int OnFsync(bool is_directory);
  int OnRename();

  /// Read-path pair. OnRead runs before the syscall: it may fail the call
  /// (EINTR storm, post-limit errno) or clamp `*count` to a short read.
  /// OnReadBytes runs after a successful read over the bytes about to be
  /// returned, applying in-flight bit rot and advancing the logical read
  /// offset the flip is addressed against.
  int OnRead(size_t* count);
  void OnReadBytes(char* data, size_t count);

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  FaultPlan plan_;
  size_t bytes_through_ = 0;  ///< Logical write offset under the armed plan.
  int eintr_left_ = 0;
  size_t bytes_read_through_ = 0;  ///< Logical read offset under the plan.
  int read_eintr_left_ = 0;
  Counters counters_;
};

/// RAII arm/disarm for tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultInjector::Get().Arm(plan);
  }
  ~ScopedFaultPlan() { FaultInjector::Get().Disarm(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_FAULT_INJECTION_H_
