// Fixed-bucket histogram and the "valley" detector used to auto-adjust the
// CLUSEQ similarity threshold t (paper §4.6).
//
// The valley of a histogram curve is the point where the curve makes the
// sharpest turn: counts decline steeply on the left and flatly on the right.
// Following the paper, sharpness at bucket i is measured by the difference
// between the slopes of the least-squares regression lines fitted to the
// left portion [1, i] and the right portion [i, n] of the curve; the valley
// is the bucket maximizing |b_l - b_r|. Both slopes for all split points are
// computed in O(n) total using running sums.

#ifndef CLUSEQ_UTIL_HISTOGRAM_H_
#define CLUSEQ_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <vector>

namespace cluseq {

/// Equal-width histogram over [lo, hi) with `num_buckets` buckets.
/// Values outside the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  /// Adds one observation.
  void Add(double value);

  /// Adds `count` observations of `value`.
  void AddCount(double value, size_t count);

  /// Number of observations recorded so far.
  size_t total_count() const { return total_count_; }

  size_t num_buckets() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Count in bucket i.
  size_t count(size_t i) const { return counts_[i]; }

  /// Median (center) x-value of bucket i.
  double bucket_center(size_t i) const;

  /// Resets all counts to zero.
  void Clear();

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_count_ = 0;
};

/// Result of a valley search on a histogram curve.
struct ValleyResult {
  bool found = false;      ///< False when the curve is too short/degenerate.
  size_t bucket = 0;       ///< Index of the valley bucket.
  double x = 0.0;          ///< Center x-value of the valley bucket.
  double slope_diff = 0.0; ///< |b_l - b_r| at the valley.
};

/// Finds the valley (sharpest turn) of the points (x_i, y_i), i = 0..n-1.
/// Interior split points only (paper: i in [2, n-1]). O(n).
ValleyResult FindValley(const std::vector<double>& xs,
                        const std::vector<double>& ys);

/// Convenience overload operating directly on a histogram's buckets.
ValleyResult FindValley(const Histogram& hist);

/// Slope of the least-squares regression line through the given points.
/// Returns 0 when fewer than two distinct x positions are present.
double RegressionSlope(const std::vector<double>& xs,
                       const std::vector<double>& ys);

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_HISTOGRAM_H_
