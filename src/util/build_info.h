// Build identification shared by the CLI (`cluseq version`), the bench
// envelope (`git` key in BENCH_*.json), and checkpoint metadata. One
// implementation means the three can never disagree about which tree
// produced an artifact.

#ifndef CLUSEQ_UTIL_BUILD_INFO_H_
#define CLUSEQ_UTIL_BUILD_INFO_H_

#include <string>

namespace cluseq {

/// Best-effort `git describe --always --dirty` of the working tree the
/// binary runs in. Empty when git or the repo is unavailable — CI artifact
/// directories and tarball builds are normal, not errors. The result is
/// computed once and cached for the process lifetime.
const std::string& GitDescribe();

/// GitDescribe() when non-empty, otherwise "unknown" — for contexts that
/// need to print or persist *something* (version output, checkpoint meta).
std::string BuildVersionString();

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_BUILD_INFO_H_
