// Status: lightweight error-reporting type in the RocksDB/Arrow idiom.
//
// Functions that can fail return a Status (or fill an output parameter and
// return Status). A default-constructed Status is OK. Statuses are cheap to
// copy and move; the message is only allocated on error paths.

#ifndef CLUSEQ_UTIL_STATUS_H_
#define CLUSEQ_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace cluseq {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kFailedPrecondition,
    kInternal,
  };

  /// Creates an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }

  /// Human-readable form, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-OK status to the caller.
#define CLUSEQ_RETURN_NOT_OK(expr)              \
  do {                                          \
    ::cluseq::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_STATUS_H_
