// Small string helpers shared by the I/O layer and the bench harnesses.

#ifndef CLUSEQ_UTIL_STRING_UTIL_H_
#define CLUSEQ_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cluseq {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins the items with `sep` between them.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a "--key=value" style flag; returns true and sets `value` if
/// `arg` matches "--<name>=".
bool ParseFlag(std::string_view arg, std::string_view name,
               std::string* value);

/// Human-readable byte count, e.g. "5.0 MiB".
std::string HumanBytes(size_t bytes);

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_STRING_UTIL_H_
