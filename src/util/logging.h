// Minimal leveled logging to stderr.
//
// The library itself logs nothing at default verbosity; the CLUSEQ driver
// emits per-iteration progress at kInfo when CluseqOptions::verbose is set,
// and the bench harnesses raise the level explicitly.

#ifndef CLUSEQ_UTIL_LOGGING_H_
#define CLUSEQ_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace cluseq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits on destruction if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define CLUSEQ_LOG(level)                                             \
  ::cluseq::internal_logging::LogMessage(::cluseq::LogLevel::level,   \
                                         __FILE__, __LINE__)

namespace internal_logging {
/// Prints the failed condition and message to stderr, then aborts.
[[noreturn]] void FatalCheckFailure(const char* file, int line,
                                    const char* condition,
                                    const char* message);
}  // namespace internal_logging

/// Fatal invariant check, active in every build type (unlike assert, which
/// RelWithDebInfo/Release compile out via NDEBUG). Use for constructor
/// preconditions whose violation would otherwise corrupt memory.
#define CLUSEQ_CHECK(cond, message)                                   \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::cluseq::internal_logging::FatalCheckFailure(__FILE__,         \
                                                    __LINE__, #cond,  \
                                                    message);         \
    }                                                                 \
  } while (0)

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_LOGGING_H_
