#include "util/file_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace cluseq {

namespace {

/// Bound on EINTR retries per syscall: a signal storm must degrade into a
/// clean IOError, never an unbounded spin.
constexpr int kMaxEintrRetries = 100;

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  return Status::IOError(
      StringPrintf("%s %s: %s", op, path.c_str(), std::strerror(err)));
}

/// Directory that contains `path` ("." when the path has no slash).
std::string ParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  for (int attempt = 0; attempt <= kMaxEintrRetries; ++attempt) {
    int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
  return -1;
}

/// write() with fault injection, short-write continuation, and bounded
/// EINTR retry. Returns 0 or an errno.
int WriteAll(int fd, const char* data, size_t count) {
  FaultInjector& injector = FaultInjector::Get();
  std::string scratch;
  int retries = 0;
  while (count > 0) {
    const char* chunk = data;
    size_t chunk_len = count;
    if (injector.armed()) {
      int err = injector.OnWrite(&chunk, &chunk_len, &scratch);
      if (err == EINTR && retries++ <= kMaxEintrRetries) continue;
      if (err != 0) return err;
      if (chunk_len == 0) continue;  // Next call reports the errno.
    }
    ssize_t n = ::write(fd, chunk, chunk_len);
    if (n < 0) {
      if (errno == EINTR && retries++ <= kMaxEintrRetries) continue;
      return errno;
    }
    // A short write (injected or ENOSPC-adjacent) just advances and
    // retries the tail.
    data += n;
    count -= static_cast<size_t>(n);
  }
  return 0;
}

int FsyncRetry(int fd, bool is_directory) {
  FaultInjector& injector = FaultInjector::Get();
  if (injector.armed()) {
    int err = injector.OnFsync(is_directory);
    if (err != 0) return err;
  }
  for (int attempt = 0; attempt <= kMaxEintrRetries; ++attempt) {
    if (::fsync(fd) == 0) return 0;
    if (errno != EINTR) return errno;
  }
  return EINTR;
}

int RenameWithInjection(const char* from, const char* to) {
  FaultInjector& injector = FaultInjector::Get();
  if (injector.armed()) {
    int err = injector.OnRename();
    if (err != 0) return err;
  }
  return ::rename(from, to) == 0 ? 0 : errno;
}

int CloseRetry(int fd) {
  // POSIX leaves the fd state unspecified after EINTR; Linux closes it, so
  // a retry would race other threads' fds. One shot.
  return ::close(fd) == 0 ? 0 : errno;
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  // Temp file lives next to the final path: rename across filesystems is
  // not atomic (EXDEV), same-directory rename always is.
  std::string temp = path + ".tmp.XXXXXX";
  int fd = ::mkstemp(temp.data());
  if (fd < 0) return ErrnoStatus("create temp for", path, errno);

  int err = WriteAll(fd, contents.data(), contents.size());
  if (err == 0) err = FsyncRetry(fd, /*is_directory=*/false);
  int close_err = CloseRetry(fd);
  if (err == 0) err = close_err;
  if (err != 0) {
    ::unlink(temp.c_str());
    return ErrnoStatus("write", temp, err);
  }

  err = RenameWithInjection(temp.c_str(), path.c_str());
  if (err != 0) {
    ::unlink(temp.c_str());
    return ErrnoStatus("rename to", path, err);
  }

  // Make the rename itself durable. Past this point the final file is
  // complete either way; a dir-fsync failure only leaves the *rename's*
  // durability in doubt, which the caller must still hear about.
  std::string dir = ParentDirectory(path);
  int dir_fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return ErrnoStatus("open directory", dir, errno);
  err = FsyncRetry(dir_fd, /*is_directory=*/true);
  CloseRetry(dir_fd);
  if (err != 0) return ErrnoStatus("fsync directory", dir, err);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  int fd = OpenRetry(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    CloseRetry(fd);
    return ErrnoStatus("stat", path, err);
  }
  out->clear();
  out->reserve(static_cast<size_t>(st.st_size));
  FaultInjector& injector = FaultInjector::Get();
  char buf[1 << 16];
  int retries = 0;
  for (;;) {
    size_t want = sizeof(buf);
    if (injector.armed()) {
      int err = injector.OnRead(&want);
      if (err == EINTR && retries++ <= kMaxEintrRetries) continue;
      if (err != 0) {
        CloseRetry(fd);
        return ErrnoStatus("read", path, err);
      }
      if (want == 0) continue;  // Next call reports the errno.
    }
    ssize_t n = ::read(fd, buf, want);
    if (n < 0) {
      if (errno == EINTR && retries++ <= kMaxEintrRetries) continue;
      int err = errno;
      CloseRetry(fd);
      return ErrnoStatus("read", path, err);
    }
    if (n == 0) break;
    if (injector.armed()) injector.OnReadBytes(buf, static_cast<size_t>(n));
    out->append(buf, static_cast<size_t>(n));
  }
  CloseRetry(fd);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool DirectoryExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  // Create each component in turn; EEXIST at any step is fine as long as
  // the final path ends up a directory.
  for (size_t pos = 0; pos != std::string::npos;) {
    pos = path.find('/', pos + 1);
    std::string prefix = path.substr(0, pos);
    if (prefix.empty() || prefix == "." || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", prefix, errno);
    }
  }
  if (!DirectoryExists(path)) {
    return Status::IOError(path + " exists and is not a directory");
  }
  return Status::OK();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    is_mmap_ = std::exchange(other.is_mmap_, false);
    buffer_ = std::move(other.buffer_);
    if (!is_mmap_ && data_ != nullptr) data_ = buffer_.data();
  }
  return *this;
}

void MappedFile::Reset() {
  if (is_mmap_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  is_mmap_ = false;
  buffer_.clear();
}

Status MappedFile::Open(const std::string& path, MappedFile* out,
                        bool prefer_mmap) {
  out->Reset();
  if (prefer_mmap) {
    int fd = OpenRetry(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      CloseRetry(fd);
      return ErrnoStatus("stat", path, err);
    }
    if (st.st_size > 0) {
      void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                         MAP_SHARED, fd, 0);
      CloseRetry(fd);  // The mapping outlives the fd.
      if (map != MAP_FAILED) {
        out->data_ = static_cast<const char*>(map);
        out->size_ = static_cast<size_t>(st.st_size);
        out->is_mmap_ = true;
        return Status::OK();
      }
      // mmap failed (e.g. filesystem without mmap support): fall through
      // to the buffered path below.
    } else {
      CloseRetry(fd);
      return Status::OK();  // Empty file: size() == 0, is_mmap() == false.
    }
  }
  CLUSEQ_RETURN_NOT_OK(ReadFileToString(path, &out->buffer_));
  out->data_ = out->buffer_.data();
  out->size_ = out->buffer_.size();
  out->is_mmap_ = false;
  return Status::OK();
}

}  // namespace cluseq
