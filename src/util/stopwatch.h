// Wall-clock stopwatch for benchmark harnesses and progress reporting.

#ifndef CLUSEQ_UTIL_STOPWATCH_H_
#define CLUSEQ_UTIL_STOPWATCH_H_

#include <chrono>

namespace cluseq {

/// Measures elapsed wall time since construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds as a double.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds as a double.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_STOPWATCH_H_
