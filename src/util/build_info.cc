#include "util/build_info.h"

#include <cstdio>

namespace cluseq {

namespace {

std::string RunGitDescribe() {
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return {};
  std::string out;
  char buf[128];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

}  // namespace

const std::string& GitDescribe() {
  static const std::string* describe = new std::string(RunGitDescribe());
  return *describe;
}

std::string BuildVersionString() {
  const std::string& git = GitDescribe();
  return git.empty() ? "unknown" : git;
}

}  // namespace cluseq
