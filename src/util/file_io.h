// Durable file IO: crash-safe atomic writes and mmap-able reads.
//
// WriteFileAtomic implements the classic durable-rename protocol:
//
//   1. create a unique temp file *in the target directory* (same
//      filesystem, so the rename below is atomic),
//   2. write the full payload, retrying short writes and EINTR a bounded
//      number of times,
//   3. fsync the temp file (contents durable before they are visible),
//   4. rename(temp, final) — the atomic commit point,
//   5. fsync the parent directory (the rename itself durable).
//
// Any failure before the rename unlinks the temp file and leaves the
// final path untouched, so a reader — or a crashed writer's successor —
// never observes a partially written file. A failure *after* the rename
// (directory fsync) is reported as an error, but the file at the final
// path is by then complete and self-consistent; only the durability of
// the rename is in doubt.
//
// MappedFile serves read-only bytes via mmap when possible (sharded
// workers loading one .fbank then share page-cache pages instead of each
// holding a private copy) and falls back to a buffered read when mmap is
// unavailable. All entry points are seams for util/fault_injection.h.

#ifndef CLUSEQ_UTIL_FILE_IO_H_
#define CLUSEQ_UTIL_FILE_IO_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cluseq {

/// Atomically replaces `path` with `contents` (see protocol above).
/// On error the previous file at `path`, if any, is intact.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Reads the whole file into `*out` (replacing its contents).
Status ReadFileToString(const std::string& path, std::string* out);

bool FileExists(const std::string& path);
bool DirectoryExists(const std::string& path);

/// Creates `path` and any missing parents (mkdir -p semantics); OK when
/// the directory already exists.
Status EnsureDirectory(const std::string& path);

/// Read-only view of a file, mmap-backed when possible.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens `path`. With `prefer_mmap` the bytes are served from a shared
  /// read-only mapping; on mmap failure (or prefer_mmap == false) they
  /// are read into an owned buffer instead. Empty files open with
  /// size() == 0 and is_mmap() == false.
  static Status Open(const std::string& path, MappedFile* out,
                     bool prefer_mmap = true);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return std::string_view(data_, size_); }
  /// True when data() points into a shared mmap (not the owned buffer).
  bool is_mmap() const { return is_mmap_; }

  void Reset();

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool is_mmap_ = false;
  std::string buffer_;  ///< Owns the bytes on the buffered-read path.
};

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_FILE_IO_H_
