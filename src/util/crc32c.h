// CRC32C (Castagnoli, polynomial 0x1EDC6F41): the checksum used by every
// on-disk model format (see pst/pst_serialization.h and
// pst/bank_serialization.h). Chosen over CRC32 for its widespread use in
// storage formats (iSCSI, ext4, RocksDB) and its hardware support story;
// this implementation is a portable slicing-by-4 table walk, fast enough
// that checksumming is never the bottleneck next to the disk.
//
// Convention matches the RFC 3720 test vectors: Crc32c("123456789") ==
// 0xE3069283, Crc32c("") == 0. Crc32cExtend composes incrementally:
// Crc32cExtend(Crc32c(a), b) == Crc32c(a + b).

#ifndef CLUSEQ_UTIL_CRC32C_H_
#define CLUSEQ_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cluseq {

/// CRC32C of `size` bytes at `data`.
uint32_t Crc32c(const void* data, size_t size);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

/// Extends a previously computed CRC with more bytes (streaming use).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_CRC32C_H_
