// Deterministic pseudo-random number generation.
//
// All randomized components of the library (seed sampling, synthetic data
// generation, k-medoids restarts, ...) draw from Rng so that every run is
// reproducible from a single 64-bit seed. The generator is xoshiro256**
// seeded through SplitMix64, which is both fast and statistically strong
// enough for simulation workloads.

#ifndef CLUSEQ_UTIL_RNG_H_
#define CLUSEQ_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cluseq {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
uint64_t SplitMix64(uint64_t& state);

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses unbiased
  /// rejection sampling (Lemire's method).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal variate (Box-Muller).
  double Normal();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Samples an index according to the (unnormalized, non-negative) weights.
  /// Returns weights.size() - 1 on degenerate input (all-zero weights).
  size_t Categorical(const std::vector<double>& weights);

  /// Geometric-ish length: lo + Poisson-like jitter truncated to [lo, hi].
  /// Used for sequence-length sampling.
  size_t Length(size_t mean, size_t lo, size_t hi);

  /// Fisher-Yates shuffle of [first, last) indices of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Samples `n` distinct indices from [0, universe) without replacement.
  /// Requires n <= universe.
  std::vector<size_t> SampleWithoutReplacement(size_t universe, size_t n);

  /// Derives an independent child generator (for per-worker streams).
  Rng Fork();

  /// Complete generator state: the xoshiro256** words plus the Box-Muller
  /// cache (Normal() produces two variates per round trip and hands out the
  /// second on the next call — dropping it would shift every later draw).
  /// Serializable: restoring a saved state resumes the exact stream.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_RNG_H_
