#include "util/fault_injection.h"

#include <cerrno>

namespace cluseq {

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = new FaultInjector();  // Leaked singleton.
  return *injector;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  bytes_through_ = 0;
  eintr_left_ = plan.transient_eintr_writes;
  bytes_read_through_ = 0;
  read_eintr_left_ = plan.transient_eintr_reads;
  counters_ = Counters{};
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_relaxed);
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

int FaultInjector::OnWrite(const char** data, size_t* count,
                           std::string* scratch) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.writes;
  if (eintr_left_ > 0) {
    --eintr_left_;
    return EINTR;
  }
  if (bytes_through_ >= plan_.write_limit) return plan_.write_errno;
  // Torn write: only the bytes below the limit reach the file; the caller
  // sees a short write, retries the tail, and then hits the error above.
  if (bytes_through_ + *count > plan_.write_limit) {
    *count = plan_.write_limit - bytes_through_;
  }
  // In-flight bit rot: corrupt one byte of this write's span.
  if (plan_.flip_offset >= bytes_through_ &&
      plan_.flip_offset < bytes_through_ + *count) {
    scratch->assign(*data, *count);
    (*scratch)[plan_.flip_offset - bytes_through_] ^=
        static_cast<char>(plan_.flip_mask);
    *data = scratch->data();
  }
  bytes_through_ += *count;
  counters_.bytes_written += *count;
  return 0;
}

int FaultInjector::OnFsync(bool is_directory) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.fsyncs;
  if (is_directory ? plan_.fail_fsync_dir : plan_.fail_fsync_file) {
    return EIO;
  }
  return 0;
}

int FaultInjector::OnRename() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.renames;
  return plan_.fail_rename ? EIO : 0;
}

int FaultInjector::OnRead(size_t* count) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.reads;
  if (read_eintr_left_ > 0) {
    --read_eintr_left_;
    return EINTR;
  }
  if (bytes_read_through_ >= plan_.read_limit) return plan_.read_errno;
  // Short read: only the bytes below the limit come back; the caller's
  // loop retries the tail and then hits the error above.
  if (bytes_read_through_ + *count > plan_.read_limit) {
    *count = plan_.read_limit - bytes_read_through_;
  }
  return 0;
}

void FaultInjector::OnReadBytes(char* data, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_.read_flip_offset >= bytes_read_through_ &&
      plan_.read_flip_offset < bytes_read_through_ + count) {
    data[plan_.read_flip_offset - bytes_read_through_] ^=
        static_cast<char>(plan_.read_flip_mask);
  }
  bytes_read_through_ += count;
  counters_.bytes_read += count;
}

}  // namespace cluseq
