// Minimal fixed-size thread pool and a blocking ParallelFor helper.
//
// CLUSEQ's re-clustering step evaluates every sequence against every cluster
// independently, which parallelizes trivially; ParallelFor partitions the
// index range into contiguous chunks, one per worker.

#ifndef CLUSEQ_UTIL_THREAD_POOL_H_
#define CLUSEQ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cluseq {

/// Fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1; 0 is coerced to 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [0, n), split into contiguous chunks across
/// `num_threads` threads. With num_threads <= 1 (or n small) runs inline.
/// Blocks until all iterations complete. `body` must be thread-safe across
/// distinct indices.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& body);

/// Number of hardware threads, at least 1.
size_t HardwareThreads();

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_THREAD_POOL_H_
