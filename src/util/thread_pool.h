// Persistent work-stealing worker pool and the dynamic ParallelFor family.
//
// CLUSEQ's iteration is many-short-tasks shaped: per-sequence scans, per-
// cluster re-freezes and rebuilds, per-cluster join shards. The first
// implementation spawned and joined fresh std::threads on every ParallelFor
// call with static contiguous chunking, which (a) pays thread start/join
// latency per call — the scan alone makes one call per iteration, seeding
// and threshold estimation several more — and (b) leaves workers idle
// behind a straggler chunk whenever per-index cost is skewed (sequence
// databases are length-skewed in practice). This module replaces both:
//
//   * One process-wide pool (ThreadPool::Global()) starts HardwareThreads()
//     workers once and keeps them parked on a condition variable between
//     calls. Each worker owns a deque; Submit() distributes round-robin,
//     a worker pops its own queue front-first and, when empty, *steals*
//     from the back of a sibling's queue (classic help-first stealing:
//     own-queue FIFO preserves submission locality, victim-back stealing
//     takes the work least likely to be cache-hot for the victim).
//   * ParallelFor runs on the pool with an atomic-cursor dynamic chunking
//     scheduler: the index range is consumed in chunks of ~n/(workers·8)
//     grabbed by whoever is free, so a slow chunk delays only its own
//     worker. The calling thread participates (it is one of the `workers`),
//     so a ParallelFor never waits on a fully-busy pool to make progress.
//   * ParallelForWeighted takes a per-index cost function and pre-cuts the
//     range into contiguous chunks of roughly equal *total cost* (a heavy
//     index gets a chunk of its own), served through the same dynamic
//     cursor. Scan-type loops pass sequence length so a length-skewed
//     database keeps every worker busy to the end.
//
// Exceptions: a ParallelFor/ParallelForWeighted body that throws no longer
// std::terminate()s inside a worker — the first exception is captured,
// remaining chunks are abandoned (iterations may be left unvisited), and
// the exception is rethrown on the calling thread. Tasks given to Submit()
// capture the same way; Wait() rethrows the first stored error.
//
// Nested calls are safe: a ParallelFor issued from inside a pool task runs
// inline on that worker (never blocks a worker on the pool, so the pool
// cannot deadlock on itself).
//
// Determinism: the scheduler decides only *who* executes an index, never
// how results are combined. Every CLUSEQ phase built on it writes to
// position-addressed slots or cluster-disjoint state, so clusterings are
// bit-for-bit identical across thread counts (tests/
// parallel_determinism_test.cc).
//
// Observability (metrics registry, DESIGN.md §10/§12):
//   thread_pool.workers              gauge     Global() pool size
//   thread_pool.tasks_executed       counter   pool tasks run to completion
//   thread_pool.steals               counter   tasks taken from a sibling
//   thread_pool.queue_depth          gauge     queued-not-started tasks
//   thread_pool.parallel_for_calls   counter   pool-backed ParallelFor calls
//   thread_pool.weighted_calls       counter   ...of which cost-weighted
//   thread_pool.parallel_utilization histogram busy-time fraction per call

#ifndef CLUSEQ_UTIL_THREAD_POOL_H_
#define CLUSEQ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cluseq {

/// Fixed-size pool of persistent workers with per-worker queues and work
/// stealing. Construct directly for an isolated pool (tests); production
/// call sites share ThreadPool::Global() through ParallelFor.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1; 0 is coerced to 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution. A task that throws has its
  /// first exception stored and rethrown by the next Wait().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised since the previous Wait() (if any).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// The process-wide persistent pool: HardwareThreads() workers, started
  /// on first use and kept alive for the process lifetime. ParallelFor
  /// callers cap their own parallelism via `num_threads`; the pool itself
  /// is always full-width so concurrent callers can overlap.
  static ThreadPool& Global();

  /// True when the calling thread is a worker of any ThreadPool. Nested
  /// ParallelFor calls use this to degrade to inline execution.
  static bool OnWorkerThread();

 private:
  struct WorkerQueue {
    std::deque<std::function<void()>> tasks;  // Guarded by ThreadPool::mu_.
  };

  void WorkerLoop(size_t worker_index);
  // Pops own-queue front, else steals a victim's back. Caller holds mu_.
  bool PopTask(size_t worker_index, std::function<void()>* task);

  std::vector<std::thread> workers_;
  std::vector<WorkerQueue> queues_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  uint64_t next_queue_ = 0;         // Round-robin Submit target; under mu_.
  size_t pending_ = 0;              // Queued, not yet started; under mu_.
  size_t in_flight_ = 0;            // Started, not yet finished; under mu_.
  std::exception_ptr first_error_;  // First Submit-task failure; under mu_.
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [0, n) on the global pool with dynamic chunking;
/// the calling thread participates. At most `num_threads` threads touch the
/// range (0 = auto-detect HardwareThreads()); with an effective width of 1,
/// or when called from inside a pool worker (nested), runs inline in index
/// order. Blocks until all iterations complete; if any body invocation
/// throws, the first exception is rethrown here (remaining indices may be
/// skipped). `body` must be thread-safe across distinct indices.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& body);

/// ParallelFor with cost-aware chunking: `cost(i)` estimates the relative
/// expense of index i (e.g. sequence length for a scan). The range is cut
/// into contiguous chunks of roughly equal total cost — expensive indices
/// get small chunks, so a length-skewed workload stays balanced — and the
/// chunks are served dynamically. Same execution, blocking, nesting, and
/// exception contract as ParallelFor; `cost` is called once per index on
/// the calling thread before any body runs.
void ParallelForWeighted(size_t n, size_t num_threads,
                         const std::function<uint64_t(size_t)>& cost,
                         const std::function<void(size_t)>& body);

/// Number of hardware threads, at least 1.
size_t HardwareThreads();

/// Effective thread count for a user-facing setting: 0 = auto-detect
/// (HardwareThreads()), anything else passes through.
size_t ResolveThreads(size_t requested);

}  // namespace cluseq

#endif  // CLUSEQ_UTIL_THREAD_POOL_H_
