// AVX2 ScanAll kernel: 4 models per vector register group, several groups
// advanced in lockstep per symbol.
//
// This TU is compiled with -mavx2 and only referenced behind the runtime
// __builtin_cpu_supports("avx2") dispatch in FrozenBank::ScanAll, so the
// rest of the library keeps the portable baseline ISA.
//
// The per-quad DP is a dependent chain — the gathered transition names the
// next row, so each symbol costs a full gather latency before the next one
// can issue. One quad alone is therefore latency-bound. Interleaving
// kQuads independent quads inside the same symbol loop overlaps their
// chains: while quad 0 waits on its transition gather, quads 1..3 issue
// theirs, turning the scan throughput-bound instead. The per-symbol
// broadcasts (symbol, i, i + 1) are hoisted and shared across quads.
//
// Bit-for-bit equivalence with the scalar DP is a hard contract here, so
// the vector code mirrors the scalar control flow rather than using maxpd:
//   * i = 0 is peeled, exactly like the scalar kernel, because the
//     reference recurrence never evaluates Y_{-1} + X_0 (which matters when
//     X_0 is ±inf and the sum would be NaN).
//   * Restart/extend and Z-update decisions use ordered-quiet compares
//     (_CMP_LT_OQ / _CMP_GT_OQ) + blends. An ordered compare is false on
//     NaN, which reproduces the scalar `if (extend < x)` / `if (y > z)`
//     branches' NaN behaviour; _mm256_max_pd would not (it returns the
//     second operand on NaN).
//   * The begin/end bookkeeping lives in int64 lanes blended through the
//     same double masks (castpd <-> castsi256 is a bitwise reinterpret).
// The per-symbol arithmetic is a single add — no FMA contraction is
// possible, so the vector sums are the same IEEE operations in the same
// order as the scalar ones. Model lanes never interact, so the group width
// cannot change results either.

#include "pst/frozen_bank.h"

#ifdef CLUSEQ_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace cluseq {
namespace internal {

namespace {

/// Gathers addressing the interleaved 16-byte Entry arena: entry g keeps
/// its ratio double at byte offset 16g (scaled index 2g · 8) and its next
/// word at 16g + 8 (scaled index (4g + 2) · 4); Assemble bounds g so the
/// scaled signed 32-bit indices cannot overflow. Both use a zeroed merge
/// source with an all-ones mask: identical lanes to the plain gather
/// intrinsics, but without GCC's uninitialized-__Y warning for the
/// undefined-source forms.
inline __m256d GatherRatio(const FrozenBank::Entry* entries, __m128i ventry) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), reinterpret_cast<const double*>(entries),
      _mm_slli_epi32(ventry, 1),
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

inline __m128i GatherNext(const FrozenBank::Entry* entries, __m128i ventry) {
  const __m128i vindex =
      _mm_add_epi32(_mm_slli_epi32(ventry, 2), _mm_set1_epi32(2));
  return _mm_mask_i32gather_epi32(_mm_setzero_si128(),
                                  reinterpret_cast<const int*>(entries),
                                  vindex, _mm_set1_epi32(-1), 4);
}

/// kQuads groups of 4 models advanced in lockstep over the whole stream.
template <int kQuads>
void ScanGroupAvx2(const FrozenBank::Entry* entries, const uint32_t* bases,
                   const SymbolId* symbols, size_t len,
                   SimilarityResult* out) {
  const __m256d vneg_inf =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());

  __m128i vbase[kQuads];
  __m128i vrow[kQuads];
  __m256d vy[kQuads];
  __m256d vz[kQuads];
  __m256i vybegin[kQuads];
  __m256i vbbegin[kQuads];
  __m256i vbend[kQuads];
  for (int q = 0; q < kQuads; ++q) {
    vbase[q] =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bases + 4 * q));
    vrow[q] = vbase[q];  // Root state: model-local row 0.
    vz[q] = vneg_inf;
    vybegin[q] = _mm256_setzero_si256();
    vbbegin[q] = _mm256_setzero_si256();
    vbend[q] = _mm256_setzero_si256();
  }

  // i = 0 peeled: Y_0 = X_0 unconditionally.
  {
    const __m128i vs = _mm_set1_epi32(symbols[0]);
    const __m256i vone = _mm256_set1_epi64x(1);
    for (int q = 0; q < kQuads; ++q) {
      const __m128i vg = _mm_add_epi32(vrow[q], vs);
      const __m256d vx = GatherRatio(entries, vg);
      const __m128i vnext = GatherNext(entries, vg);
      vrow[q] = _mm_add_epi32(vbase[q], vnext);
      vy[q] = vx;
      const __m256d gt = _mm256_cmp_pd(vy[q], vz[q], _CMP_GT_OQ);
      vz[q] = _mm256_blendv_pd(vz[q], vy[q], gt);
      vbend[q] = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vbend[q]), _mm256_castsi256_pd(vone), gt));
      // vbbegin stays 0: the segment starting the stream begins at 0.
    }
  }

  for (size_t i = 1; i < len; ++i) {
    const __m128i vs = _mm_set1_epi32(symbols[i]);
    const __m256i vi = _mm256_set1_epi64x(static_cast<long long>(i));
    const __m256i vend = _mm256_set1_epi64x(static_cast<long long>(i + 1));
    for (int q = 0; q < kQuads; ++q) {
      const __m128i vg = _mm_add_epi32(vrow[q], vs);
      const __m256d vx = GatherRatio(entries, vg);
      const __m128i vnext = GatherNext(entries, vg);
      vrow[q] = _mm_add_epi32(vbase[q], vnext);

      const __m256d vextend = _mm256_add_pd(vy[q], vx);
      const __m256d restart = _mm256_cmp_pd(vextend, vx, _CMP_LT_OQ);
      vy[q] = _mm256_blendv_pd(vextend, vx, restart);
      vybegin[q] = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vybegin[q]), _mm256_castsi256_pd(vi), restart));

      const __m256d gt = _mm256_cmp_pd(vy[q], vz[q], _CMP_GT_OQ);
      vz[q] = _mm256_blendv_pd(vz[q], vy[q], gt);
      vbbegin[q] = _mm256_castpd_si256(
          _mm256_blendv_pd(_mm256_castsi256_pd(vbbegin[q]),
                           _mm256_castsi256_pd(vybegin[q]), gt));
      vbend[q] = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vbend[q]), _mm256_castsi256_pd(vend), gt));
    }
  }

  alignas(32) double z_out[4];
  alignas(32) int64_t begin_out[4];
  alignas(32) int64_t end_out[4];
  for (int q = 0; q < kQuads; ++q) {
    _mm256_store_pd(z_out, vz[q]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(begin_out), vbbegin[q]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(end_out), vbend[q]);
    for (size_t m = 0; m < 4; ++m) {
      out[4 * q + m].log_sim = z_out[m];
      out[4 * q + m].best_begin = static_cast<size_t>(begin_out[m]);
      out[4 * q + m].best_end = static_cast<size_t>(end_out[m]);
    }
  }
}

/// Mirror of the scalar kernel's earliest-failable position: with a
/// nonnegative per-symbol cap `margin`, the bound max(Z, max(Y, 0) +
/// remaining · margin) cannot drop below a positive `target` while
/// remaining · margin >= target, so the first position worth checking is
/// len − target / margin (clamped to 1).
inline double EarliestFailPosition(double margin, double target, size_t len) {
  if (!(margin > 0.0)) return 1.0;
  const double j0 = static_cast<double>(len) - target / margin;
  return j0 > 1.0 ? j0 : 1.0;
}

/// Early-abandon variant: identical lane arithmetic (survivor lanes are
/// bit-for-bit ScanGroupAvx2) plus adaptively scheduled group checks. A
/// fixed-width register group cannot compact lanes away, so abandonment is
/// all-or-nothing: the group stops only when *every* lane's admissible
/// bound max(Z, max(Y, 0) + remaining · margin) falls below `target`, and
/// then writes those bounds with exact = 0. The schedule therefore starts
/// at the *latest* lane's earliest-failable position (no earlier check
/// could ever fire), backs off geometrically while nothing abandons, and
/// stops for good once any lane's Z reaches the target (that lane keeps
/// the whole group alive forever). Returns abandoned lane count (0 or
/// kQuads·4); `*checkpoints` accrues executed check passes.
template <int kQuads>
size_t ScanGroupAvx2Bounded(const FrozenBank::Entry* entries,
                            const uint32_t* bases, const SymbolId* symbols,
                            size_t len, const double* margins, double target,
                            SimilarityResult* out, uint8_t* exact,
                            size_t* checkpoints) {
  const __m256d vneg_inf =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vtarget = _mm256_set1_pd(target);

  __m128i vbase[kQuads];
  __m128i vrow[kQuads];
  __m256d vy[kQuads];
  __m256d vz[kQuads];
  __m256d vmargin[kQuads];
  __m256i vybegin[kQuads];
  __m256i vbbegin[kQuads];
  __m256i vbend[kQuads];
  for (int q = 0; q < kQuads; ++q) {
    vbase[q] =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bases + 4 * q));
    vrow[q] = vbase[q];
    vz[q] = vneg_inf;
    vmargin[q] = _mm256_loadu_pd(margins + 4 * q);
    vybegin[q] = _mm256_setzero_si256();
    vbbegin[q] = _mm256_setzero_si256();
    vbend[q] = _mm256_setzero_si256();
  }
  for (size_t m = 0; m < static_cast<size_t>(kQuads) * 4; ++m) exact[m] = 1;

  // Check schedule. A nonpositive target can never beat the nonnegative
  // bound, so the loop runs check-free (next_check = len) in that case.
  constexpr size_t kBoundCheckMin = 16;
  constexpr size_t kBoundCheckMax = 512;
  size_t interval = kBoundCheckMin;
  size_t next_check = len;
  if (target > 0.0) {
    double group_j0 = 1.0;
    for (size_t m = 0; m < static_cast<size_t>(kQuads) * 4; ++m) {
      const double j0 = EarliestFailPosition(margins[m], target, len);
      if (j0 > group_j0) group_j0 = j0;
    }
    next_check = group_j0 >= static_cast<double>(len)
                     ? len
                     : std::max(kBoundCheckMin,
                                static_cast<size_t>(group_j0));
  }

  // i = 0 peeled: Y_0 = X_0 unconditionally.
  {
    const __m128i vs = _mm_set1_epi32(symbols[0]);
    const __m256i vone = _mm256_set1_epi64x(1);
    for (int q = 0; q < kQuads; ++q) {
      const __m128i vg = _mm_add_epi32(vrow[q], vs);
      const __m256d vx = GatherRatio(entries, vg);
      const __m128i vnext = GatherNext(entries, vg);
      vrow[q] = _mm_add_epi32(vbase[q], vnext);
      vy[q] = vx;
      const __m256d gt = _mm256_cmp_pd(vy[q], vz[q], _CMP_GT_OQ);
      vz[q] = _mm256_blendv_pd(vz[q], vy[q], gt);
      vbend[q] = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vbend[q]), _mm256_castsi256_pd(vone), gt));
    }
  }

  for (size_t i = 1; i < len; ++i) {
    if (i >= next_check) {
      if (checkpoints != nullptr) ++*checkpoints;
      const __m256d vrem = _mm256_set1_pd(static_cast<double>(len - i));
      __m256d vub[kQuads];
      bool hopeless = true;
      bool any_safe = false;
      for (int q = 0; q < kQuads; ++q) {
        const __m256d peak_gt = _mm256_cmp_pd(vy[q], vzero, _CMP_GT_OQ);
        const __m256d vpeak = _mm256_blendv_pd(vzero, vy[q], peak_gt);
        __m256d ub =
            _mm256_add_pd(vpeak, _mm256_mul_pd(vrem, vmargin[q]));
        const __m256d zgt = _mm256_cmp_pd(vz[q], ub, _CMP_GT_OQ);
        ub = _mm256_blendv_pd(ub, vz[q], zgt);
        vub[q] = ub;
        const __m256d lt = _mm256_cmp_pd(ub, vtarget, _CMP_LT_OQ);
        if (_mm256_movemask_pd(lt) != 0xF) hopeless = false;
        const __m256d zge = _mm256_cmp_pd(vz[q], vtarget, _CMP_GE_OQ);
        if (_mm256_movemask_pd(zge) != 0) any_safe = true;
      }
      if (hopeless) {
        alignas(32) double ub_out[4];
        alignas(32) int64_t begin_out[4];
        alignas(32) int64_t end_out[4];
        for (int q = 0; q < kQuads; ++q) {
          _mm256_store_pd(ub_out, vub[q]);
          _mm256_store_si256(reinterpret_cast<__m256i*>(begin_out),
                             vbbegin[q]);
          _mm256_store_si256(reinterpret_cast<__m256i*>(end_out), vbend[q]);
          for (size_t m = 0; m < 4; ++m) {
            out[4 * q + m].log_sim = ub_out[m];
            out[4 * q + m].best_begin = static_cast<size_t>(begin_out[m]);
            out[4 * q + m].best_end = static_cast<size_t>(end_out[m]);
            exact[4 * q + m] = 0;
          }
        }
        return static_cast<size_t>(kQuads) * 4;
      }
      if (any_safe) {
        // Some lane's Z already reached the target; its bound can never
        // drop below it again, so the group can never go all-hopeless.
        next_check = len;
      } else {
        interval = std::min(interval * 2, kBoundCheckMax);
        next_check = i + interval;
      }
    }
    const __m128i vs = _mm_set1_epi32(symbols[i]);
    const __m256i vi = _mm256_set1_epi64x(static_cast<long long>(i));
    const __m256i vend = _mm256_set1_epi64x(static_cast<long long>(i + 1));
    for (int q = 0; q < kQuads; ++q) {
      const __m128i vg = _mm_add_epi32(vrow[q], vs);
      const __m256d vx = GatherRatio(entries, vg);
      const __m128i vnext = GatherNext(entries, vg);
      vrow[q] = _mm_add_epi32(vbase[q], vnext);

      const __m256d vextend = _mm256_add_pd(vy[q], vx);
      const __m256d restart = _mm256_cmp_pd(vextend, vx, _CMP_LT_OQ);
      vy[q] = _mm256_blendv_pd(vextend, vx, restart);
      vybegin[q] = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vybegin[q]), _mm256_castsi256_pd(vi), restart));

      const __m256d gt = _mm256_cmp_pd(vy[q], vz[q], _CMP_GT_OQ);
      vz[q] = _mm256_blendv_pd(vz[q], vy[q], gt);
      vbbegin[q] = _mm256_castpd_si256(
          _mm256_blendv_pd(_mm256_castsi256_pd(vbbegin[q]),
                           _mm256_castsi256_pd(vybegin[q]), gt));
      vbend[q] = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vbend[q]), _mm256_castsi256_pd(vend), gt));
    }
  }

  alignas(32) double z_out[4];
  alignas(32) int64_t begin_out[4];
  alignas(32) int64_t end_out[4];
  for (int q = 0; q < kQuads; ++q) {
    _mm256_store_pd(z_out, vz[q]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(begin_out), vbbegin[q]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(end_out), vbend[q]);
    for (size_t m = 0; m < 4; ++m) {
      out[4 * q + m].log_sim = z_out[m];
      out[4 * q + m].best_begin = static_cast<size_t>(begin_out[m]);
      out[4 * q + m].best_end = static_cast<size_t>(end_out[m]);
    }
  }
  return 0;
}

}  // namespace

void ScanBlockAvx2(const FrozenBank::Entry* entries, const uint32_t* bases,
                   size_t num_models, const SymbolId* symbols, size_t len,
                   SimilarityResult* out) {
  // 16 models per group is the measured sweet spot on big banks: fewer
  // leaves the gather chains latency-bound (8-model groups run ~40% slower
  // at k = 64), more lets the group's recurrent row set outgrow L2 so hot
  // rows get evicted between touches (64-model groups lose ~15%).
  size_t m = 0;
  for (; m + 16 <= num_models; m += 16) {
    ScanGroupAvx2<4>(entries, bases + m, symbols, len, out + m);
  }
  for (; m + 8 <= num_models; m += 8) {
    ScanGroupAvx2<2>(entries, bases + m, symbols, len, out + m);
  }
  for (; m + 4 <= num_models; m += 4) {
    ScanGroupAvx2<1>(entries, bases + m, symbols, len, out + m);
  }
  if (m < num_models) {
    ScanBlockScalar(entries, bases + m, num_models - m, symbols, len,
                    out + m);
  }
}

size_t ScanBlockAvx2Bounded(const FrozenBank::Entry* entries,
                            const uint32_t* bases, size_t num_models,
                            const SymbolId* symbols, size_t len,
                            const double* margins, double target,
                            SimilarityResult* out, uint8_t* exact,
                            size_t* checkpoints) {
  size_t abandoned = 0;
  size_t m = 0;
  for (; m + 16 <= num_models; m += 16) {
    abandoned += ScanGroupAvx2Bounded<4>(entries, bases + m, symbols, len,
                                         margins + m, target, out + m,
                                         exact + m, checkpoints);
  }
  for (; m + 8 <= num_models; m += 8) {
    abandoned += ScanGroupAvx2Bounded<2>(entries, bases + m, symbols, len,
                                         margins + m, target, out + m,
                                         exact + m, checkpoints);
  }
  for (; m + 4 <= num_models; m += 4) {
    abandoned += ScanGroupAvx2Bounded<1>(entries, bases + m, symbols, len,
                                         margins + m, target, out + m,
                                         exact + m, checkpoints);
  }
  if (m < num_models) {
    abandoned += ScanBlockScalarBounded(entries, bases + m, num_models - m,
                                        symbols, len, margins + m, target,
                                        out + m, exact + m, checkpoints);
  }
  return abandoned;
}

void KadaneColumnsAvx2(const uint8_t* const* cols, size_t len, size_t n,
                       int32_t* z) {
  // Loop order is position-outer: each position's k-wide column is the
  // only compulsory per-scan traffic, and walking it sequentially keeps
  // the hardware prefetcher fed, while the per-model Kadane state (y =
  // best suffix sum, b = best window sum) lives in small reused buffers
  // that stay L1-resident. The transposed order — each model stripe
  // walking all positions — touches ~len scattered cache lines per
  // stripe across the whole table and stalls on DRAM latency instead.
  //
  // int16 state lanes are exact while the largest possible running sum
  // len · kSignaturePosLevels stays under 2^15 (the negative side cannot
  // underflow: the recurrence keeps y ≥ x ≥ −64). Longer sequences run
  // the int32 variant — same recurrence, same results.
  constexpr size_t kI16MaxLen =
      32767 / static_cast<size_t>(FrozenBank::kSignaturePosLevels);  // 171
  static thread_local std::vector<int16_t> y16, b16;
  static thread_local std::vector<int32_t> y32;
  size_t m = 0;
  if (len <= kI16MaxLen) {
    if (y16.size() < n) {
      y16.resize(n);
      b16.resize(n);
    }
    int16_t* y = y16.data();
    int16_t* b = b16.data();
    const __m256i zp = _mm256_set1_epi16(FrozenBank::kSignatureZeroPoint);
    for (; m + 16 <= n; m += 16) {
      const __m256i x = _mm256_sub_epi16(
          _mm256_cvtepu8_epi16(_mm_loadu_si128(
              reinterpret_cast<const __m128i*>(cols[0] + m))),
          zp);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + m), x);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + m), x);
    }
    const size_t mv = m;
    for (size_t i = 1; i < len; ++i) {
      const uint8_t* col = cols[i];
      for (size_t j = 0; j < mv; j += 16) {
        const __m256i x = _mm256_sub_epi16(
            _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i*>(col + j))),
            zp);
        __m256i yj =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + j));
        yj = _mm256_max_epi16(_mm256_add_epi16(yj, x), x);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + j), yj);
        const __m256i bj = _mm256_max_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j)), yj);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + j), bj);
      }
    }
    for (size_t j = 0; j < mv; j += 16) {
      const __m256i bj =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(z + j),
          _mm256_cvtepi16_epi32(_mm256_castsi256_si128(bj)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(z + j + 8),
          _mm256_cvtepi16_epi32(_mm256_extracti128_si256(bj, 1)));
    }
  } else {
    if (y32.size() < n) y32.resize(n);
    int32_t* y = y32.data();  // b is the z output array itself here.
    const __m256i zp = _mm256_set1_epi32(FrozenBank::kSignatureZeroPoint);
    for (; m + 8 <= n; m += 8) {
      const __m256i x = _mm256_sub_epi32(
          _mm256_cvtepu8_epi32(_mm_loadl_epi64(
              reinterpret_cast<const __m128i*>(cols[0] + m))),
          zp);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + m), x);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(z + m), x);
    }
    const size_t mv = m;
    for (size_t i = 1; i < len; ++i) {
      const uint8_t* col = cols[i];
      for (size_t j = 0; j < mv; j += 8) {
        const __m256i x = _mm256_sub_epi32(
            _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                reinterpret_cast<const __m128i*>(col + j))),
            zp);
        __m256i yj =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + j));
        yj = _mm256_max_epi32(_mm256_add_epi32(yj, x), x);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + j), yj);
        const __m256i bj = _mm256_max_epi32(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z + j)), yj);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(z + j), bj);
      }
    }
  }
  for (; m < n; ++m) {
    int32_t x = static_cast<int32_t>(cols[0][m]) -
                FrozenBank::kSignatureZeroPoint;
    int32_t y = x;
    int32_t best = x;
    for (size_t i = 1; i < len; ++i) {
      x = static_cast<int32_t>(cols[i][m]) - FrozenBank::kSignatureZeroPoint;
      const int32_t extend = y + x;
      y = extend < x ? x : extend;
      if (y > best) best = y;
    }
    z[m] = best;
  }
}

void KadaneColumnsAvx2Striped(const uint8_t* const* cols, size_t len,
                              size_t n, int32_t* z) {
  // Stripe-outer: a pair of model stripes walks every position with y and
  // b pinned in registers — zero state traffic, so the cost per position
  // is the y-recurrence dependency chain (add + max), overlapped across
  // the two independent stripes. Only dispatched when the transposed
  // tables fit in cache (see SignatureKadaneDense): the strided column
  // reads then stay cache hits, and the position-outer kernel's
  // per-position state stores would be the bottleneck instead.
  constexpr size_t kI16MaxLen =
      32767 / static_cast<size_t>(FrozenBank::kSignaturePosLevels);  // 171
  size_t m = 0;
  if (len <= kI16MaxLen) {
    const __m256i zp = _mm256_set1_epi16(FrozenBank::kSignatureZeroPoint);
    for (; m + 32 <= n; m += 32) {
      __m256i y0 = _mm256_sub_epi16(
          _mm256_cvtepu8_epi16(_mm_loadu_si128(
              reinterpret_cast<const __m128i*>(cols[0] + m))),
          zp);
      __m256i y1 = _mm256_sub_epi16(
          _mm256_cvtepu8_epi16(_mm_loadu_si128(
              reinterpret_cast<const __m128i*>(cols[0] + m + 16))),
          zp);
      __m256i b0 = y0;
      __m256i b1 = y1;
      for (size_t i = 1; i < len; ++i) {
        const uint8_t* col = cols[i] + m;
        const __m256i x0 = _mm256_sub_epi16(
            _mm256_cvtepu8_epi16(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(col))),
            zp);
        const __m256i x1 = _mm256_sub_epi16(
            _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i*>(col + 16))),
            zp);
        y0 = _mm256_max_epi16(_mm256_add_epi16(y0, x0), x0);
        y1 = _mm256_max_epi16(_mm256_add_epi16(y1, x1), x1);
        b0 = _mm256_max_epi16(b0, y0);
        b1 = _mm256_max_epi16(b1, y1);
      }
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(z + m),
          _mm256_cvtepi16_epi32(_mm256_castsi256_si128(b0)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(z + m + 8),
          _mm256_cvtepi16_epi32(_mm256_extracti128_si256(b0, 1)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(z + m + 16),
          _mm256_cvtepi16_epi32(_mm256_castsi256_si128(b1)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(z + m + 24),
          _mm256_cvtepi16_epi32(_mm256_extracti128_si256(b1, 1)));
    }
  } else {
    const __m256i zp = _mm256_set1_epi32(FrozenBank::kSignatureZeroPoint);
    for (; m + 16 <= n; m += 16) {
      __m256i y0 = _mm256_sub_epi32(
          _mm256_cvtepu8_epi32(_mm_loadl_epi64(
              reinterpret_cast<const __m128i*>(cols[0] + m))),
          zp);
      __m256i y1 = _mm256_sub_epi32(
          _mm256_cvtepu8_epi32(_mm_loadl_epi64(
              reinterpret_cast<const __m128i*>(cols[0] + m + 8))),
          zp);
      __m256i b0 = y0;
      __m256i b1 = y1;
      for (size_t i = 1; i < len; ++i) {
        const uint8_t* col = cols[i] + m;
        const __m256i x0 = _mm256_sub_epi32(
            _mm256_cvtepu8_epi32(
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(col))),
            zp);
        const __m256i x1 = _mm256_sub_epi32(
            _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                reinterpret_cast<const __m128i*>(col + 8))),
            zp);
        y0 = _mm256_max_epi32(_mm256_add_epi32(y0, x0), x0);
        y1 = _mm256_max_epi32(_mm256_add_epi32(y1, x1), x1);
        b0 = _mm256_max_epi32(b0, y0);
        b1 = _mm256_max_epi32(b1, y1);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(z + m), b0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(z + m + 8), b1);
    }
  }
  for (; m < n; ++m) {
    int32_t x = static_cast<int32_t>(cols[0][m]) -
                FrozenBank::kSignatureZeroPoint;
    int32_t y = x;
    int32_t best = x;
    for (size_t i = 1; i < len; ++i) {
      x = static_cast<int32_t>(cols[i][m]) - FrozenBank::kSignatureZeroPoint;
      const int32_t extend = y + x;
      y = extend < x ? x : extend;
      if (y > best) best = y;
    }
    z[m] = best;
  }
}

}  // namespace internal
}  // namespace cluseq

#endif  // CLUSEQ_HAVE_AVX2
