// Probabilistic suffix tree (PST), the per-cluster statistical summary of
// CLUSEQ (paper §3).
//
// The PST is a trie over *reversed* contexts: the root's children are the
// possible last symbols of a context, their children the second-to-last, and
// so on. For a node whose label (read leaf-to-root) is the segment σ', the
// node stores
//   * C(σ'): the number of positions in the cluster's training text where σ'
//     occurs immediately before some next symbol, and
//   * N(σ', s): how often symbol s is that next symbol,
// so the empirical CPD is P(s | σ') = N(σ', s) / C(σ') and Σ_s P(s|σ') = 1.
// The root's count is the total number of symbols inserted (the paper's
// "overall size of the sequence cluster").
//
// Construction inserts every position of a sequence with all its contexts up
// to a bounded depth L (`max_depth`), which is exactly the short-memory
// premise of the paper: no query ever looks at more than the last L symbols.
// Insertion of a sequence of length l costs O(l · L).
//
// Querying P(s_i | s_1…s_{i-1}) walks from the root along s_{i-1}, s_{i-2},…
// while the next node exists and is *significant* (count ≥ c); the node
// reached is the prediction node — the longest significant suffix of the
// context (paper §3, two-step procedure).
//
// Memory management (paper §5.1): the tree tracks an approximate byte size;
// when it exceeds `max_memory_bytes` leaves are pruned by one of the three
// strategies from the paper (smallest count first, longest label first,
// most-expected probability vector first).
//
// Probability smoothing (paper §5.2): with `smoothing_p_min` > 0, queried
// probabilities are adjusted as P̂ = (1 − n·p_min)·P + p_min so no symbol is
// ever impossible. The adjustment is applied on the fly, never stored.

#ifndef CLUSEQ_PST_PST_H_
#define CLUSEQ_PST_PST_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "seq/alphabet.h"
#include "seq/sequence.h"
#include "util/status.h"

namespace cluseq {

/// Index of a node inside a Pst's arena.
using PstNodeId = uint32_t;
inline constexpr PstNodeId kNoPstNode =
    std::numeric_limits<PstNodeId>::max();
inline constexpr PstNodeId kPstRoot = 0;

/// Leaf-pruning strategies of paper §5.1.
enum class PruneStrategy {
  kSmallestCountFirst,   ///< Strategy 1: prune lowest-count leaves.
  kLongestLabelFirst,    ///< Strategy 2: prune deepest leaves.
  kExpectedVectorFirst,  ///< Strategy 3: prune insignificant leaves first,
                         ///< then significant leaves whose CPD is closest to
                         ///< their parent's (least information lost).
};

struct PstOptions {
  /// Maximum context length L retained in the tree (short-memory bound).
  size_t max_depth = 12;

  /// Significance threshold c: a node is significant iff count >= c.
  /// The paper's rule of thumb is c >= 30.
  uint64_t significance_threshold = 30;

  /// Per-tree memory budget in (approximate) bytes; 0 disables pruning.
  size_t max_memory_bytes = 0;

  /// Which leaves go first when over budget.
  PruneStrategy prune_strategy = PruneStrategy::kSmallestCountFirst;

  /// p_min of the adjusted probability estimation (§5.2); 0 disables
  /// smoothing (raw empirical probabilities, possibly zero).
  double smoothing_p_min = 1e-4;

  /// Validates parameter ranges.
  Status Validate() const;
};

/// Aggregate statistics for inspection and the bench harnesses.
struct PstStats {
  size_t num_nodes = 0;
  size_t num_significant_nodes = 0;
  size_t max_depth = 0;
  size_t approx_bytes = 0;
  uint64_t total_symbols = 0;  ///< Root count.
  /// nodes_per_depth[d] = live nodes whose context length is d.
  std::vector<size_t> nodes_per_depth;
};

/// One row of Pst::TopContexts: a context, its count, and its CPD mode.
struct PstContextInfo {
  std::vector<SymbolId> context;  ///< Natural-order label.
  uint64_t count = 0;
  SymbolId most_likely_next = kInvalidSymbol;
  double most_likely_probability = 0.0;
};

class Pst {
 public:
  /// Creates an empty tree (root only) over an alphabet of `alphabet_size`
  /// distinct symbols.
  Pst(size_t alphabet_size, PstOptions options);

  Pst(const Pst&) = default;
  Pst& operator=(const Pst&) = default;
  Pst(Pst&&) = default;
  Pst& operator=(Pst&&) = default;

  /// Inserts every position of `symbols` with all contexts up to max_depth.
  /// May trigger pruning afterwards if a memory budget is set.
  void InsertSequence(std::span<const SymbolId> symbols);
  void InsertSequence(const Sequence& seq) {
    InsertSequence(std::span<const SymbolId>(seq.symbols()));
  }

  /// Finds the prediction node of `context` (the node whose label is the
  /// longest significant suffix of the context). Always succeeds; the root
  /// is the ultimate fallback.
  PstNodeId PredictionNode(std::span<const SymbolId> context) const;

  /// Like PredictionNode but walks at most the deepest *existing* suffix
  /// regardless of significance (used by tests and pruning analysis).
  PstNodeId DeepestExistingNode(std::span<const SymbolId> context) const;

  /// Conditional probability P(next | context) via the prediction node,
  /// smoothed per options. Returns a value in (0, 1] when smoothing is on.
  double ConditionalProbability(std::span<const SymbolId> context,
                                SymbolId next) const;

  /// Natural log of ConditionalProbability. -inf only when smoothing is off
  /// and the empirical probability is zero.
  double LogConditionalProbability(std::span<const SymbolId> context,
                                   SymbolId next) const;

  /// Raw (optionally smoothed) probability of `next` at a specific node.
  double NodeProbability(PstNodeId id, SymbolId next) const;

  /// log P_S(σ): sum of log conditional probabilities over the whole string
  /// (each position conditioned on its preceding context).
  double LogSequenceProbability(std::span<const SymbolId> symbols) const;

  // --- Node accessors -------------------------------------------------

  uint64_t NodeCount(PstNodeId id) const { return nodes_[id].count; }
  size_t NodeDepth(PstNodeId id) const { return nodes_[id].depth; }
  bool IsSignificant(PstNodeId id) const {
    return nodes_[id].count >= options_.significance_threshold;
  }

  /// Child of `id` along `symbol` (one more symbol of *preceding* context),
  /// or kNoPstNode.
  PstNodeId Child(PstNodeId id, SymbolId symbol) const;

  /// All (symbol, child) pairs of a node, sorted by symbol.
  std::vector<std::pair<SymbolId, PstNodeId>> Children(PstNodeId id) const;

  /// The node's label in natural (un-reversed) order, i.e. the context
  /// segment the node represents. Root → empty.
  std::vector<SymbolId> NodeLabel(PstNodeId id) const;

  /// Next-symbol count N(label, s) at a node.
  uint64_t NextCount(PstNodeId id, SymbolId s) const;

  // --- Maintenance ----------------------------------------------------

  /// Prunes leaves until the approximate size is within `target_bytes`
  /// (pass 0 to use options().max_memory_bytes). No-op when under budget.
  void PruneToBudget(size_t target_bytes = 0);

  /// Adds every count of `other` into this tree (union of contexts, summed
  /// counts and CPD vectors). Both trees must share the alphabet size; the
  /// shallower max_depth wins for contexts deeper than this tree's bound.
  /// Useful for merging cluster summaries.
  Status MergeFrom(const Pst& other);

  /// The `limit` highest-count contexts of length >= 1 (ties broken by
  /// shorter context first), with their CPD mode — a human-readable view of
  /// what the tree considers the cluster's signature.
  std::vector<PstContextInfo> TopContexts(size_t limit) const;

  /// Removes all nodes except the root and resets counts.
  void Clear();

  PstStats Stats() const;
  size_t ApproxMemoryBytes() const { return approx_bytes_; }
  size_t alphabet_size() const { return alphabet_size_; }
  const PstOptions& options() const { return options_; }
  uint64_t total_symbols() const { return nodes_[kPstRoot].count; }

  /// Number of live (non-tombstoned) nodes, including the root.
  size_t NumNodes() const { return live_nodes_; }

 private:
  friend class PstSerializer;

  // Sparse sorted association lists keep per-node memory proportional to the
  // symbols actually observed (alphabets reach hundreds of symbols).
  struct Node {
    uint64_t count = 0;
    PstNodeId parent = kNoPstNode;
    SymbolId edge_symbol = kInvalidSymbol;
    uint32_t depth = 0;
    bool dead = false;
    std::vector<std::pair<SymbolId, PstNodeId>> children;  // sorted by first
    std::vector<std::pair<SymbolId, uint64_t>> next;       // sorted by first
  };

  PstNodeId GetOrCreateChild(PstNodeId id, SymbolId symbol);
  void BumpNext(PstNodeId id, SymbolId s);
  void RemoveLeaf(PstNodeId id);
  double PruneScore(const Node& node) const;
  // L1 distance between a node's CPD and its parent's (strategy 3).
  double CpdDistanceToParent(const Node& node) const;
  size_t NodeBytes(const Node& node) const;

  size_t alphabet_size_;
  PstOptions options_;
  std::vector<Node> nodes_;
  std::vector<PstNodeId> free_list_;
  size_t approx_bytes_ = 0;
  size_t live_nodes_ = 1;
};

}  // namespace cluseq

#endif  // CLUSEQ_PST_PST_H_
