#include "pst/pst_dot.h"

#include <algorithm>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "util/string_util.h"

namespace cluseq {

namespace {

std::string LabelOf(const Pst& pst, const Alphabet& alphabet, PstNodeId id) {
  std::vector<SymbolId> label = pst.NodeLabel(id);
  if (label.empty()) return "(root)";
  std::string out;
  for (SymbolId s : label) {
    out += s < alphabet.size() ? alphabet.Name(s) : "?";
  }
  return out;
}

}  // namespace

Status WritePstDot(const Pst& pst, const Alphabet& alphabet,
                   const PstDotOptions& options, std::ostream& out) {
  if (alphabet.size() < pst.alphabet_size()) {
    return Status::InvalidArgument(
        "alphabet smaller than the PST's symbol space");
  }

  // Select nodes: walk the tree, rank by count.
  std::vector<PstNodeId> nodes;
  std::vector<PstNodeId> stack = {kPstRoot};
  while (!stack.empty()) {
    PstNodeId id = stack.back();
    stack.pop_back();
    if (id != kPstRoot &&
        (!options.significant_only || pst.IsSignificant(id))) {
      nodes.push_back(id);
    }
    for (const auto& [sym, child] : pst.Children(id)) {
      stack.push_back(child);
    }
  }
  std::sort(nodes.begin(), nodes.end(), [&pst](PstNodeId a, PstNodeId b) {
    return pst.NodeCount(a) > pst.NodeCount(b);
  });
  if (options.max_nodes > 0 && nodes.size() > options.max_nodes) {
    nodes.resize(options.max_nodes);
  }
  std::unordered_set<PstNodeId> keep(nodes.begin(), nodes.end());
  keep.insert(kPstRoot);

  out << "digraph pst {\n"
      << "  rankdir=TB;\n"
      << "  node [fontname=\"monospace\"];\n";
  for (PstNodeId id : keep) {
    // CPD mode for the node caption.
    SymbolId mode = kInvalidSymbol;
    uint64_t mode_count = 0;
    for (SymbolId s = 0; s < pst.alphabet_size(); ++s) {
      uint64_t c = pst.NextCount(id, s);
      if (c > mode_count) {
        mode_count = c;
        mode = s;
      }
    }
    std::string caption = LabelOf(pst, alphabet, id);
    caption += StringPrintf("\\nC=%llu",
                            static_cast<unsigned long long>(
                                pst.NodeCount(id)));
    if (mode != kInvalidSymbol && pst.NodeCount(id) > 0) {
      caption += StringPrintf(
          "\\nP(%s)=%.2f", alphabet.Name(mode).c_str(),
          static_cast<double>(mode_count) /
              static_cast<double>(pst.NodeCount(id)));
    }
    out << "  n" << id << " [label=\"" << caption << "\", style=\""
        << (pst.IsSignificant(id) ? "solid" : "dashed") << "\"];\n";
  }
  for (PstNodeId id : keep) {
    for (const auto& [sym, child] : pst.Children(id)) {
      if (!keep.contains(child)) continue;
      out << "  n" << id << " -> n" << child << " [label=\""
          << (sym < alphabet.size() ? alphabet.Name(sym) : "?") << "\"];\n";
    }
  }
  out << "}\n";
  if (!out) return Status::IOError("DOT write failed");
  return Status::OK();
}

}  // namespace cluseq
