// Graphviz (DOT) export of a probabilistic suffix tree, for inspecting what
// a cluster's model actually learned. Significant nodes are drawn solid,
// insignificant ones dashed; each node shows its label (via the alphabet),
// count, and CPD mode.

#ifndef CLUSEQ_PST_PST_DOT_H_
#define CLUSEQ_PST_PST_DOT_H_

#include <iosfwd>

#include "pst/pst.h"
#include "seq/alphabet.h"
#include "util/status.h"

namespace cluseq {

struct PstDotOptions {
  /// Draw at most this many nodes (highest-count first, root always
  /// included); 0 = all.
  size_t max_nodes = 64;
  /// Skip insignificant nodes entirely.
  bool significant_only = false;
};

/// Writes `pst` as a DOT digraph. `alphabet` renders symbol names; pass an
/// alphabet of at least pst.alphabet_size() symbols.
Status WritePstDot(const Pst& pst, const Alphabet& alphabet,
                   const PstDotOptions& options, std::ostream& out);

}  // namespace cluseq

#endif  // CLUSEQ_PST_PST_DOT_H_
