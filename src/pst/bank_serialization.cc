#include "pst/bank_serialization.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/file_io.h"
#include "util/stopwatch.h"

namespace cluseq {

namespace {

constexpr char kHeaderMagic[8] = {'C', 'S', 'Q', 'F', 'B', 'N', 'K', '1'};
constexpr char kFooterMagic[8] = {'1', 'K', 'N', 'B', 'F', 'Q', 'S', 'C'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionBases = 2;
constexpr uint32_t kSectionEntries = 3;

// Caps on untrusted counts, applied before any allocation. The entry cap
// mirrors FrozenBank::Assemble's CHECK: the SIMD gathers address entry g
// at scaled signed 32-bit index 4·g + 2.
constexpr uint64_t kMaxModels = 1ULL << 20;
constexpr uint64_t kMaxAlphabet = 1ULL << 24;
constexpr uint64_t kMaxStates = 1ULL << 28;
constexpr uint64_t kMaxTotalEntries =
    static_cast<uint64_t>(std::numeric_limits<int32_t>::max() / 4);

constexpr size_t kSectionTableOffset = kFbankHeaderBytes;
constexpr size_t kSectionsOffset =
    kSectionTableOffset + kFbankSectionCount * kFbankSectionEntryBytes;

size_t AlignUp(size_t v, size_t a) { return (v + a - 1) / a * a; }

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void ReadPodAt(const char* data, size_t offset, T* value) {
  std::memcpy(value, data + offset, sizeof(T));  // Caller bounds-checks.
}

Status Corrupt(const char* detail) {
  return Status::Corruption(std::string(".fbank ") + detail);
}

/// The canonical section layout for a bank of `num_models` models and
/// `total_entries` packed rows; loads recompute this and require the
/// on-disk section table to match exactly, so overlapping or out-of-place
/// sections can never validate.
struct Layout {
  size_t meta_offset, meta_size;
  size_t bases_offset, bases_size;
  size_t entries_offset, entries_size;
  size_t footer_offset;
  size_t file_size;
};

Layout ComputeLayout(size_t num_models, size_t total_entries) {
  Layout l;
  l.meta_offset = kSectionsOffset;
  l.meta_size = 2 * sizeof(uint64_t) + num_models * 2 * sizeof(uint64_t);
  l.bases_offset = l.meta_offset + l.meta_size;
  l.bases_size = num_models * sizeof(uint64_t);
  l.entries_offset =
      AlignUp(l.bases_offset + l.bases_size, kFbankEntriesAlignment);
  l.entries_size = total_entries * sizeof(FrozenBank::Entry);
  l.footer_offset = l.entries_offset + l.entries_size;
  l.file_size = l.footer_offset + kFbankFooterBytes;
  return l;
}

void AppendSectionEntry(std::string* out, uint32_t id, size_t offset,
                        size_t size, uint32_t crc) {
  AppendPod(out, id);
  AppendPod(out, uint32_t{0});
  AppendPod(out, static_cast<uint64_t>(offset));
  AppendPod(out, static_cast<uint64_t>(size));
  AppendPod(out, crc);
  AppendPod(out, uint32_t{0});
}

struct SectionEntry {
  uint32_t id, reserved;
  uint64_t offset, size;
  uint32_t crc, reserved2;
};

SectionEntry ReadSectionEntry(const char* data, size_t table_index) {
  const size_t base =
      kSectionTableOffset + table_index * kFbankSectionEntryBytes;
  SectionEntry e;
  ReadPodAt(data, base, &e.id);
  ReadPodAt(data, base + 4, &e.reserved);
  ReadPodAt(data, base + 8, &e.offset);
  ReadPodAt(data, base + 16, &e.size);
  ReadPodAt(data, base + 24, &e.crc);
  ReadPodAt(data, base + 28, &e.reserved2);
  return e;
}

Status CheckSection(const char* data, size_t table_index, uint32_t want_id,
                    size_t want_offset, size_t want_size) {
  SectionEntry e = ReadSectionEntry(data, table_index);
  if (e.id != want_id || e.reserved != 0 || e.reserved2 != 0) {
    return Corrupt("section table entry malformed");
  }
  if (e.offset != want_offset || e.size != want_size) {
    return Corrupt("section offsets disagree with canonical layout");
  }
  if (Crc32c(data + want_offset, want_size) != e.crc) {
    return Corrupt("section checksum mismatch");
  }
  return Status::OK();
}

// --- persistence metrics (names shared with pst_serialization.cc) --------

void RecordBytesWritten(size_t n) {
  static obs::Counter& bytes =
      obs::MetricsRegistry::Get().GetCounter("persistence.bytes_written");
  bytes.Add(n);
}

void RecordLoad(double seconds, size_t bytes_read) {
  static obs::Histogram& load_seconds =
      obs::MetricsRegistry::Get().GetHistogram(
          "persistence.load_seconds", obs::ExponentialBounds(1e-5, 4.0, 12));
  static obs::Counter& bytes =
      obs::MetricsRegistry::Get().GetCounter("persistence.bytes_read");
  load_seconds.Observe(seconds);
  bytes.Add(bytes_read);
}

void RecordLoadMode(bool mmap) {
  static obs::Counter& mmap_loads =
      obs::MetricsRegistry::Get().GetCounter("persistence.loads_mmap");
  static obs::Counter& buffered_loads =
      obs::MetricsRegistry::Get().GetCounter("persistence.loads_buffered");
  static obs::Gauge& last_mmap =
      obs::MetricsRegistry::Get().GetGauge("persistence.last_load_mmap");
  (mmap ? mmap_loads : buffered_loads).Increment();
  last_mmap.Set(mmap ? 1.0 : 0.0);
}

Status TrackCorruption(Status st) {
  if (st.IsCorruption()) {
    static obs::Counter& corrupt = obs::MetricsRegistry::Get().GetCounter(
        "persistence.corruption_detected");
    corrupt.Increment();
  }
  return st;
}

}  // namespace

// Accesses FrozenBank internals on behalf of the .fbank save/load
// functions (mirrors PstSerializer for the single-model formats).
class BankSerializer {
 public:
  static Status Save(const FrozenBank& bank, std::string* blob) {
    if (bank.empty()) {
      return Status::InvalidArgument("cannot save an empty FrozenBank");
    }
    const size_t k = bank.num_models();
    const size_t alphabet = bank.alphabet_size_;
    size_t total_entries = 0;
    for (size_t m = 0; m < k; ++m) total_entries += bank.ModelEntries(m);
    const Layout layout = ComputeLayout(k, total_entries);

    std::string meta;
    meta.reserve(layout.meta_size);
    AppendPod(&meta, static_cast<uint64_t>(alphabet));
    AppendPod(&meta, static_cast<uint64_t>(k));
    for (size_t m = 0; m < k; ++m) {
      AppendPod(&meta, static_cast<uint64_t>(bank.states_[m]));
      // max_depth is informational (diagnostics, future tooling); a bank
      // loaded from a .fbank no longer knows it and echoes 0.
      AppendPod(&meta, static_cast<uint64_t>(
                           bank.has_snapshots() ? bank.model(m).max_depth()
                                                : 0));
    }
    std::string bases;
    bases.reserve(layout.bases_size);
    for (size_t m = 0; m < k; ++m) {
      AppendPod(&bases, static_cast<uint64_t>(bank.base_[m]));
    }
    const char* entry_bytes =
        reinterpret_cast<const char*>(bank.scan_data());

    std::string out;
    out.reserve(layout.file_size);
    // Header: CRC over everything before the crc field itself.
    out.append(kHeaderMagic, sizeof(kHeaderMagic));
    AppendPod(&out, kVersion);
    AppendPod(&out, uint32_t{0});  // flags
    AppendPod(&out, static_cast<uint64_t>(layout.file_size));
    AppendPod(&out, static_cast<uint32_t>(kFbankSectionCount));
    AppendPod(&out, Crc32c(out.data(), out.size()));

    AppendSectionEntry(&out, kSectionMeta, layout.meta_offset,
                       layout.meta_size, Crc32c(meta));
    AppendSectionEntry(&out, kSectionBases, layout.bases_offset,
                       layout.bases_size, Crc32c(bases));
    AppendSectionEntry(&out, kSectionEntries, layout.entries_offset,
                       layout.entries_size,
                       Crc32c(entry_bytes, layout.entries_size));
    out += meta;
    out += bases;
    out.append(layout.entries_offset - out.size(), '\0');  // Alignment pad.
    out.append(entry_bytes, layout.entries_size);

    const uint32_t file_crc = Crc32c(out.data(), out.size());
    out.append(kFooterMagic, sizeof(kFooterMagic));
    AppendPod(&out, file_crc);
    AppendPod(&out, uint32_t{0});
    *blob = std::move(out);
    return Status::OK();
  }

  /// Validates `data` and installs it into `*bank`. With a non-null
  /// `storage` the entries section is served zero-copy from `data` (which
  /// `storage` must keep alive); otherwise the rows are copied into the
  /// bank's own arena.
  static Status Load(const char* data, size_t size,
                     std::shared_ptr<const void> storage, FrozenBank* bank) {
    // Framing first: nothing else is touched before the whole-file CRC
    // verifies, so every later read is over checksummed bytes.
    constexpr size_t kMinSize =
        kSectionsOffset + 2 * sizeof(uint64_t) + kFbankFooterBytes;
    if (size < kMinSize) return Corrupt("file too small");
    if (std::memcmp(data, kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
      return Corrupt("bad header magic");
    }
    uint32_t version = 0, flags = 0, section_count = 0, header_crc = 0;
    uint64_t declared_size = 0;
    ReadPodAt(data, 8, &version);
    ReadPodAt(data, 12, &flags);
    ReadPodAt(data, 16, &declared_size);
    ReadPodAt(data, 24, &section_count);
    ReadPodAt(data, 28, &header_crc);
    if (version != kVersion) return Corrupt("unsupported version");
    if (flags != 0) return Corrupt("unsupported flags");
    if (Crc32c(data, kFbankHeaderBytes - sizeof(uint32_t)) != header_crc) {
      return Corrupt("header checksum mismatch");
    }
    if (declared_size != size) return Corrupt("declared size mismatch");
    if (section_count != kFbankSectionCount) {
      return Corrupt("unexpected section count");
    }
    const size_t footer_offset = size - kFbankFooterBytes;
    if (std::memcmp(data + footer_offset, kFooterMagic,
                    sizeof(kFooterMagic)) != 0) {
      return Corrupt("bad footer magic");
    }
    uint32_t file_crc = 0, footer_reserved = 0;
    ReadPodAt(data, footer_offset + 8, &file_crc);
    ReadPodAt(data, footer_offset + 12, &footer_reserved);
    if (footer_reserved != 0) return Corrupt("footer reserved nonzero");
    if (Crc32c(data, footer_offset) != file_crc) {
      return Corrupt("file checksum mismatch");
    }

    // Meta counts, capped before any allocation, then the exact canonical
    // layout (so even CRC-fixed hostile section tables cannot move or
    // overlap sections).
    const SectionEntry meta_entry = ReadSectionEntry(data, 0);
    if (meta_entry.offset != kSectionsOffset ||
        meta_entry.size < 2 * sizeof(uint64_t) ||
        meta_entry.offset + meta_entry.size > footer_offset) {
      return Corrupt("meta section out of bounds");
    }
    uint64_t alphabet64 = 0, num_models64 = 0;
    ReadPodAt(data, kSectionsOffset, &alphabet64);
    ReadPodAt(data, kSectionsOffset + 8, &num_models64);
    if (alphabet64 == 0 || alphabet64 > kMaxAlphabet || num_models64 == 0 ||
        num_models64 > kMaxModels) {
      return Corrupt("implausible alphabet or model count");
    }
    const size_t alphabet = static_cast<size_t>(alphabet64);
    const size_t k = static_cast<size_t>(num_models64);
    if (meta_entry.size != 2 * sizeof(uint64_t) + k * 2 * sizeof(uint64_t)) {
      return Corrupt("meta section size mismatch");
    }
    if (meta_entry.offset + meta_entry.size > footer_offset) {
      return Corrupt("meta section overruns file");
    }
    std::vector<uint32_t> states(k);
    std::vector<size_t> base(k);
    uint64_t total_entries = 0;
    for (size_t m = 0; m < k; ++m) {
      uint64_t num_states = 0, max_depth = 0;
      const size_t at = kSectionsOffset + 16 + m * 16;
      ReadPodAt(data, at, &num_states);
      ReadPodAt(data, at + 8, &max_depth);
      if (num_states == 0 || num_states > kMaxStates ||
          max_depth > (1ULL << 32)) {
        return Corrupt("implausible per-model metadata");
      }
      base[m] = static_cast<size_t>(total_entries);
      total_entries += num_states * alphabet64;
      if (total_entries > kMaxTotalEntries) {
        return Corrupt("arena exceeds the gather-index range");
      }
      states[m] = static_cast<uint32_t>(num_states);
    }
    const Layout layout = ComputeLayout(k, static_cast<size_t>(total_entries));
    if (layout.file_size != size) return Corrupt("layout size mismatch");
    CLUSEQ_RETURN_NOT_OK(CheckSection(data, 0, kSectionMeta,
                                      layout.meta_offset, layout.meta_size));
    CLUSEQ_RETURN_NOT_OK(CheckSection(data, 1, kSectionBases,
                                      layout.bases_offset,
                                      layout.bases_size));
    CLUSEQ_RETURN_NOT_OK(CheckSection(data, 2, kSectionEntries,
                                      layout.entries_offset,
                                      layout.entries_size));
    for (size_t m = 0; m < k; ++m) {
      uint64_t stored_base = 0;
      ReadPodAt(data, layout.bases_offset + m * 8, &stored_base);
      if (stored_base != base[m]) {
        return Corrupt("bases disagree with per-model state counts");
      }
    }

    // Structural validation of every packed entry: after this, ScanAll's
    // unchecked gathers cannot leave the arena and the DP sees no NaN/+inf
    // (-inf stays legal: smoothing-off zero-probability rows).
    const char* entry_bytes = data + layout.entries_offset;
    for (size_t m = 0; m < k; ++m) {
      const uint64_t extent = static_cast<uint64_t>(states[m]) * alphabet;
      const char* rows = entry_bytes + base[m] * sizeof(FrozenBank::Entry);
      for (uint64_t e = 0; e < extent; ++e) {
        double ratio;
        uint32_t next, pad;
        const char* at = rows + e * sizeof(FrozenBank::Entry);
        std::memcpy(&ratio, at, sizeof(ratio));
        std::memcpy(&next, at + 8, sizeof(next));
        std::memcpy(&pad, at + 12, sizeof(pad));
        if (pad != 0) return Corrupt("entry padding nonzero");
        if (next % alphabet != 0 || next >= extent) {
          return Corrupt("entry transition out of range");
        }
        if (std::isnan(ratio) ||
            ratio == std::numeric_limits<double>::infinity()) {
          return Corrupt("entry log-ratio is NaN or +inf");
        }
      }
    }

    FrozenBank fresh;
    fresh.alphabet_size_ = alphabet;
    fresh.states_ = std::move(states);
    fresh.base_ = std::move(base);
    fresh.base32_.resize(k);
    for (size_t m = 0; m < k; ++m) {
      fresh.base32_[m] = static_cast<uint32_t>(fresh.base_[m]);
    }
    const size_t entries_addr =
        reinterpret_cast<uintptr_t>(data) + layout.entries_offset;
    if (storage != nullptr &&
        entries_addr % alignof(FrozenBank::Entry) == 0) {
      fresh.external_entries_ =
          reinterpret_cast<const FrozenBank::Entry*>(entry_bytes);
      fresh.external_storage_ = std::move(storage);
    } else {
      fresh.entries_.resize(static_cast<size_t>(total_entries));
      std::memcpy(fresh.entries_.data(), entry_bytes, layout.entries_size);
    }
    // The file carries only the packed rows; the prefilter's bound
    // signatures are derived, so rebuild them from the (validated) arena.
    fresh.BuildAllSignatures();
    *bank = std::move(fresh);
    return Status::OK();
  }
};

Status SaveFrozenBank(const FrozenBank& bank, std::string* blob) {
  return BankSerializer::Save(bank, blob);
}

Status SaveFrozenBankToFile(const FrozenBank& bank, const std::string& path) {
  std::string blob;
  CLUSEQ_RETURN_NOT_OK(SaveFrozenBank(bank, &blob));
  CLUSEQ_RETURN_NOT_OK(WriteFileAtomic(path, blob));
  RecordBytesWritten(blob.size());
  return Status::OK();
}

Status LoadFrozenBank(std::string_view blob, FrozenBank* bank) {
  return TrackCorruption(
      BankSerializer::Load(blob.data(), blob.size(), nullptr, bank));
}

Status LoadFrozenBankFromFile(const std::string& path, FrozenBank* bank,
                              const FbankLoadOptions& options,
                              FbankLoadInfo* info) {
  Stopwatch timer;
  auto file = std::make_shared<MappedFile>();
  CLUSEQ_RETURN_NOT_OK(MappedFile::Open(path, file.get(),
                                        options.prefer_mmap));
  const bool zero_copy = file->is_mmap();
  const char* data = file->data();
  const size_t size = file->size();
  CLUSEQ_RETURN_NOT_OK(TrackCorruption(BankSerializer::Load(
      data, size, zero_copy ? std::shared_ptr<const void>(file) : nullptr,
      bank)));
  RecordLoad(timer.ElapsedSeconds(), size);
  RecordLoadMode(bank->mapped());
  if (info != nullptr) {
    info->mmap = bank->mapped();
    info->file_bytes = size;
    info->num_models = bank->num_models();
  }
  return Status::OK();
}

}  // namespace cluseq
