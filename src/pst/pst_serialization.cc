#include "pst/pst_serialization.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/file_io.h"
#include "util/stopwatch.h"

namespace cluseq {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'T', '2'};
constexpr char kFrozenMagic[4] = {'F', 'P', 'T', '2'};

// Every serialized blob ends in a CRC32C of all preceding bytes; nothing
// after the magic is parsed before the checksum verifies.
constexpr size_t kChecksumBytes = sizeof(uint32_t);

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

/// Appends the payload's CRC32C and hands the whole blob to `out`.
Status SealAndEmit(const std::string& payload, std::ostream& out,
                   const char* what) {
  uint32_t crc = Crc32c(payload);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!out) {
    return Status::IOError(std::string(what) + " write failed");
  }
  return Status::OK();
}

/// Splits `blob` into payload + trailing CRC and verifies the checksum.
Status VerifyChecksum(const std::string& blob, const char* what,
                      std::string_view* payload) {
  if (blob.size() < sizeof(kMagic) + kChecksumBytes) {
    return Status::Corruption(std::string(what) + " blob too short");
  }
  const size_t payload_size = blob.size() - kChecksumBytes;
  uint32_t stored = 0;
  std::memcpy(&stored, blob.data() + payload_size, kChecksumBytes);
  if (Crc32c(blob.data(), payload_size) != stored) {
    return Status::Corruption(std::string(what) + " checksum mismatch");
  }
  *payload = std::string_view(blob.data(), payload_size);
  return Status::OK();
}

std::string Slurp(std::istream& in) {
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// --- persistence metrics (names shared with bank_serialization.cc) -------

void RecordBytesWritten(size_t n) {
  static obs::Counter& bytes =
      obs::MetricsRegistry::Get().GetCounter("persistence.bytes_written");
  bytes.Add(n);
}

void RecordLoad(double seconds, size_t bytes_read) {
  static obs::Histogram& load_seconds =
      obs::MetricsRegistry::Get().GetHistogram(
          "persistence.load_seconds", obs::ExponentialBounds(1e-5, 4.0, 12));
  static obs::Counter& bytes =
      obs::MetricsRegistry::Get().GetCounter("persistence.bytes_read");
  load_seconds.Observe(seconds);
  bytes.Add(bytes_read);
}

/// Funnels every load result through the corruption counter, so all
/// callers (CLI, tests, future servers) observe rejected files uniformly.
Status TrackCorruption(Status st) {
  if (st.IsCorruption()) {
    static obs::Counter& corrupt = obs::MetricsRegistry::Get().GetCounter(
        "persistence.corruption_detected");
    corrupt.Increment();
  }
  return st;
}

}  // namespace

// Accesses Pst internals on behalf of the save/load free functions.
class PstSerializer {
 public:
  static Status Save(const Pst& pst, std::ostream& out) {
    std::ostringstream buffer;
    buffer.write(kMagic, sizeof(kMagic));
    WritePod(buffer, static_cast<uint64_t>(pst.alphabet_size_));
    WritePod(buffer, static_cast<uint64_t>(pst.options_.max_depth));
    WritePod(buffer, pst.options_.significance_threshold);
    WritePod(buffer, static_cast<uint64_t>(pst.options_.max_memory_bytes));
    WritePod(buffer, static_cast<uint32_t>(pst.options_.prune_strategy));
    WritePod(buffer, pst.options_.smoothing_p_min);

    // Dense pre-order numbering of live nodes.
    std::vector<PstNodeId> order;
    std::vector<uint32_t> dense(pst.nodes_.size(),
                                static_cast<uint32_t>(-1));
    std::vector<PstNodeId> stack = {kPstRoot};
    while (!stack.empty()) {
      PstNodeId id = stack.back();
      stack.pop_back();
      dense[id] = static_cast<uint32_t>(order.size());
      order.push_back(id);
      const auto& children = pst.nodes_[id].children;
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.push_back(it->second);
      }
    }
    WritePod(buffer, static_cast<uint64_t>(order.size()));
    for (PstNodeId id : order) {
      const auto& node = pst.nodes_[id];
      uint32_t parent =
          node.parent == kNoPstNode ? static_cast<uint32_t>(-1)
                                    : dense[node.parent];
      WritePod(buffer, parent);
      WritePod(buffer, node.edge_symbol);
      WritePod(buffer, node.count);
      WritePod(buffer, static_cast<uint32_t>(node.next.size()));
      for (const auto& [sym, cnt] : node.next) {
        WritePod(buffer, sym);
        WritePod(buffer, cnt);
      }
    }
    return SealAndEmit(buffer.str(), out, "PST");
  }

  static Status Load(std::string_view payload, Pst* pst) {
    std::istringstream in{std::string(payload)};
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      return Status::Corruption("bad PST magic");
    }
    uint64_t alphabet_size = 0, max_depth = 0, sig = 0, max_mem = 0;
    uint32_t strategy = 0;
    double p_min = 0.0;
    if (!ReadPod(in, &alphabet_size) || !ReadPod(in, &max_depth) ||
        !ReadPod(in, &sig) || !ReadPod(in, &max_mem) ||
        !ReadPod(in, &strategy) || !ReadPod(in, &p_min)) {
      return Status::Corruption("truncated PST header");
    }
    PstOptions options;
    options.max_depth = static_cast<size_t>(max_depth);
    options.significance_threshold = sig;
    options.max_memory_bytes = static_cast<size_t>(max_mem);
    options.prune_strategy = static_cast<PruneStrategy>(strategy);
    options.smoothing_p_min = p_min;
    Status options_status = options.Validate();
    if (!options_status.ok()) {
      return Status::Corruption("PST header options invalid: " +
                                options_status.message());
    }

    uint64_t node_count = 0;
    if (!ReadPod(in, &node_count) || node_count == 0) {
      return Status::Corruption("truncated or empty PST body");
    }
    // Sanity caps on untrusted sizes, checked before any allocation: a
    // hostile count must not drive a multi-gigabyte resize. Each node
    // occupies at least 20 bytes (parent, edge, count, #next), so the
    // remaining payload exactly bounds the plausible node count.
    constexpr uint64_t kMaxNodes = 1ULL << 28;
    constexpr uint64_t kMinNodeBytes = 4 + 4 + 8 + 4;
    const uint64_t body_bytes =
        payload.size() - std::min<size_t>(payload.size(),
                                          static_cast<size_t>(in.tellg()));
    if (node_count > kMaxNodes || alphabet_size > (1ULL << 24) ||
        node_count > body_bytes / kMinNodeBytes) {
      return Status::Corruption("implausible PST header sizes");
    }

    Pst loaded(static_cast<size_t>(alphabet_size), options);
    loaded.nodes_.resize(node_count);
    loaded.live_nodes_ = node_count;
    loaded.approx_bytes_ = 0;
    for (uint64_t i = 0; i < node_count; ++i) {
      uint32_t parent = 0;
      Pst::Node& node = loaded.nodes_[i];
      uint32_t next_size = 0;
      if (!ReadPod(in, &parent) || !ReadPod(in, &node.edge_symbol) ||
          !ReadPod(in, &node.count) || !ReadPod(in, &next_size)) {
        return Status::Corruption("truncated PST node");
      }
      node.parent = parent == static_cast<uint32_t>(-1) ? kNoPstNode : parent;
      if (node.parent != kNoPstNode) {
        if (node.parent >= i) {
          return Status::Corruption("PST node order violates pre-order");
        }
        Pst::Node& par = loaded.nodes_[node.parent];
        node.depth = par.depth + 1;
        par.children.emplace_back(node.edge_symbol, static_cast<PstNodeId>(i));
      } else if (i != 0) {
        return Status::Corruption("non-root node without parent");
      }
      if (next_size > alphabet_size) {
        return Status::Corruption("PST probability vector exceeds alphabet");
      }
      node.next.resize(next_size);
      for (uint32_t j = 0; j < next_size; ++j) {
        if (!ReadPod(in, &node.next[j].first) ||
            !ReadPod(in, &node.next[j].second)) {
          return Status::Corruption("truncated PST probability vector");
        }
      }
      loaded.approx_bytes_ += loaded.NodeBytes(node);
    }
    if (in.peek() != std::istringstream::traits_type::eof()) {
      return Status::Corruption("trailing bytes after PST body");
    }
    // Children arrive in pre-order, not symbol order; restore the invariant.
    for (auto& node : loaded.nodes_) {
      std::sort(node.children.begin(), node.children.end());
      loaded.approx_bytes_ +=
          node.children.size() * sizeof(std::pair<SymbolId, PstNodeId>);
    }
    *pst = std::move(loaded);
    return Status::OK();
  }

  static Status SaveFrozen(const FrozenPst& pst, std::ostream& out) {
    std::ostringstream buffer;
    buffer.write(kFrozenMagic, sizeof(kFrozenMagic));
    WritePod(buffer, static_cast<uint64_t>(pst.alphabet_size_));
    WritePod(buffer, static_cast<uint64_t>(pst.max_depth_));
    WritePod(buffer, static_cast<uint64_t>(pst.depth_.size()));
    WriteVec(buffer, pst.depth_);
    WriteVec(buffer, pst.next_);
    WriteVec(buffer, pst.log_ratio_);
    return SealAndEmit(buffer.str(), out, "frozen PST");
  }

  static Status LoadFrozen(std::string_view payload, FrozenPst* pst) {
    std::istringstream in{std::string(payload)};
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kFrozenMagic, sizeof(kFrozenMagic)) != 0) {
      return Status::Corruption("bad frozen PST magic");
    }
    uint64_t alphabet_size = 0, max_depth = 0, num_states = 0;
    if (!ReadPod(in, &alphabet_size) || !ReadPod(in, &max_depth) ||
        !ReadPod(in, &num_states)) {
      return Status::Corruption("truncated frozen PST header");
    }
    // Sanity caps before any allocation, then an exact size equation: the
    // payload length is fully determined by the header, so any mismatch —
    // truncation or padding — is corruption even with a fixed-up CRC.
    if (num_states == 0 || num_states > (1ULL << 28) || alphabet_size == 0 ||
        alphabet_size > (1ULL << 24) ||
        num_states * alphabet_size > (1ULL << 32) ||
        max_depth > (1ULL << 32)) {
      return Status::Corruption("implausible frozen PST header sizes");
    }
    const size_t n = static_cast<size_t>(num_states);
    const size_t cells = n * static_cast<size_t>(alphabet_size);
    const size_t expected = sizeof(kFrozenMagic) + 3 * sizeof(uint64_t) +
                            n * sizeof(uint32_t) +
                            cells * (sizeof(FrozenPst::State) + sizeof(double));
    if (payload.size() != expected) {
      return Status::Corruption("frozen PST size mismatch");
    }
    FrozenPst loaded;
    loaded.alphabet_size_ = static_cast<size_t>(alphabet_size);
    loaded.max_depth_ = static_cast<size_t>(max_depth);
    if (!ReadVec(in, n, &loaded.depth_) ||
        !ReadVec(in, cells, &loaded.next_) ||
        !ReadVec(in, cells, &loaded.log_ratio_)) {
      return Status::Corruption("truncated frozen PST body");
    }
    // Structural validation so a corrupted file cannot make Step() walk out
    // of the tables: every transition in range, depths within bound and
    // non-decreasing (the compiler emits states depth-major).
    if (loaded.depth_[0] != 0) {
      return Status::Corruption("frozen PST root has nonzero depth");
    }
    for (size_t s = 0; s < n; ++s) {
      if (loaded.depth_[s] > loaded.max_depth_ ||
          (s > 0 && loaded.depth_[s] < loaded.depth_[s - 1])) {
        return Status::Corruption("frozen PST depths out of order");
      }
    }
    for (FrozenPst::State t : loaded.next_) {
      if (t >= n) {
        return Status::Corruption("frozen PST transition out of range");
      }
    }
    // Log ratios feed the scan DP unchecked, so NaN and +inf must never
    // get in (-inf is legitimate: smoothing-off zero-probability rows).
    for (double r : loaded.log_ratio_) {
      if (std::isnan(r) || r == std::numeric_limits<double>::infinity()) {
        return Status::Corruption("frozen PST log-ratio is NaN or +inf");
      }
    }
    // The on-disk format stores only the tables; per-symbol max log-ratios
    // (prefilter bound metadata) are derived, so rebuild them here.
    loaded.ComputeDerived();
    *pst = std::move(loaded);
    return Status::OK();
  }

 private:
  template <typename T>
  static void WriteVec(std::ostream& out, const std::vector<T>& v) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }

  template <typename T>
  static bool ReadVec(std::istream& in, size_t count, std::vector<T>* v) {
    v->resize(count);
    in.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    return static_cast<bool>(in);
  }
};

Status SavePst(const Pst& pst, std::ostream& out) {
  return PstSerializer::Save(pst, out);
}

Status SavePstToFile(const Pst& pst, const std::string& path) {
  std::ostringstream buffer;
  CLUSEQ_RETURN_NOT_OK(SavePst(pst, buffer));
  std::string blob = buffer.str();
  CLUSEQ_RETURN_NOT_OK(WriteFileAtomic(path, blob));
  RecordBytesWritten(blob.size());
  return Status::OK();
}

Status LoadPst(std::istream& in, Pst* pst) {
  std::string blob = Slurp(in);
  std::string_view payload;
  CLUSEQ_RETURN_NOT_OK(TrackCorruption(VerifyChecksum(blob, "PST", &payload)));
  return TrackCorruption(PstSerializer::Load(payload, pst));
}

Status LoadPstFromFile(const std::string& path, Pst* pst) {
  Stopwatch timer;
  std::string blob;
  CLUSEQ_RETURN_NOT_OK(ReadFileToString(path, &blob));
  std::string_view payload;
  CLUSEQ_RETURN_NOT_OK(TrackCorruption(VerifyChecksum(blob, "PST", &payload)));
  CLUSEQ_RETURN_NOT_OK(TrackCorruption(PstSerializer::Load(payload, pst)));
  RecordLoad(timer.ElapsedSeconds(), blob.size());
  return Status::OK();
}

Status SaveFrozenPst(const FrozenPst& pst, std::ostream& out) {
  return PstSerializer::SaveFrozen(pst, out);
}

Status SaveFrozenPstToFile(const FrozenPst& pst, const std::string& path) {
  std::ostringstream buffer;
  CLUSEQ_RETURN_NOT_OK(SaveFrozenPst(pst, buffer));
  std::string blob = buffer.str();
  CLUSEQ_RETURN_NOT_OK(WriteFileAtomic(path, blob));
  RecordBytesWritten(blob.size());
  return Status::OK();
}

Status LoadFrozenPst(std::istream& in, FrozenPst* pst) {
  std::string blob = Slurp(in);
  std::string_view payload;
  CLUSEQ_RETURN_NOT_OK(
      TrackCorruption(VerifyChecksum(blob, "frozen PST", &payload)));
  return TrackCorruption(PstSerializer::LoadFrozen(payload, pst));
}

Status LoadFrozenPstFromFile(const std::string& path, FrozenPst* pst) {
  Stopwatch timer;
  std::string blob;
  CLUSEQ_RETURN_NOT_OK(ReadFileToString(path, &blob));
  std::string_view payload;
  CLUSEQ_RETURN_NOT_OK(
      TrackCorruption(VerifyChecksum(blob, "frozen PST", &payload)));
  CLUSEQ_RETURN_NOT_OK(TrackCorruption(PstSerializer::LoadFrozen(payload, pst)));
  RecordLoad(timer.ElapsedSeconds(), blob.size());
  return Status::OK();
}

}  // namespace cluseq
