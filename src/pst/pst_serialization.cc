#include "pst/pst_serialization.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace cluseq {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'T', '1'};
constexpr char kFrozenMagic[4] = {'F', 'P', 'T', '1'};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

// Accesses Pst internals on behalf of the save/load free functions.
class PstSerializer {
 public:
  static Status Save(const Pst& pst, std::ostream& out) {
    out.write(kMagic, sizeof(kMagic));
    WritePod(out, static_cast<uint64_t>(pst.alphabet_size_));
    WritePod(out, static_cast<uint64_t>(pst.options_.max_depth));
    WritePod(out, pst.options_.significance_threshold);
    WritePod(out, static_cast<uint64_t>(pst.options_.max_memory_bytes));
    WritePod(out, static_cast<uint32_t>(pst.options_.prune_strategy));
    WritePod(out, pst.options_.smoothing_p_min);

    // Dense pre-order numbering of live nodes.
    std::vector<PstNodeId> order;
    std::vector<uint32_t> dense(pst.nodes_.size(),
                                static_cast<uint32_t>(-1));
    std::vector<PstNodeId> stack = {kPstRoot};
    while (!stack.empty()) {
      PstNodeId id = stack.back();
      stack.pop_back();
      dense[id] = static_cast<uint32_t>(order.size());
      order.push_back(id);
      const auto& children = pst.nodes_[id].children;
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.push_back(it->second);
      }
    }
    WritePod(out, static_cast<uint64_t>(order.size()));
    for (PstNodeId id : order) {
      const auto& node = pst.nodes_[id];
      uint32_t parent =
          node.parent == kNoPstNode ? static_cast<uint32_t>(-1)
                                    : dense[node.parent];
      WritePod(out, parent);
      WritePod(out, node.edge_symbol);
      WritePod(out, node.count);
      WritePod(out, static_cast<uint32_t>(node.next.size()));
      for (const auto& [sym, cnt] : node.next) {
        WritePod(out, sym);
        WritePod(out, cnt);
      }
    }
    if (!out) return Status::IOError("PST write failed");
    return Status::OK();
  }

  static Status Load(std::istream& in, Pst* pst) {
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      return Status::Corruption("bad PST magic");
    }
    uint64_t alphabet_size = 0, max_depth = 0, sig = 0, max_mem = 0;
    uint32_t strategy = 0;
    double p_min = 0.0;
    if (!ReadPod(in, &alphabet_size) || !ReadPod(in, &max_depth) ||
        !ReadPod(in, &sig) || !ReadPod(in, &max_mem) ||
        !ReadPod(in, &strategy) || !ReadPod(in, &p_min)) {
      return Status::Corruption("truncated PST header");
    }
    PstOptions options;
    options.max_depth = static_cast<size_t>(max_depth);
    options.significance_threshold = sig;
    options.max_memory_bytes = static_cast<size_t>(max_mem);
    options.prune_strategy = static_cast<PruneStrategy>(strategy);
    options.smoothing_p_min = p_min;
    CLUSEQ_RETURN_NOT_OK(options.Validate());

    uint64_t node_count = 0;
    if (!ReadPod(in, &node_count) || node_count == 0) {
      return Status::Corruption("truncated or empty PST body");
    }
    // Sanity bounds on untrusted sizes: a corrupted count must not drive a
    // multi-gigabyte allocation before the stream runs dry.
    constexpr uint64_t kMaxNodes = 1ULL << 28;
    if (node_count > kMaxNodes || alphabet_size > (1ULL << 24)) {
      return Status::Corruption("implausible PST header sizes");
    }

    Pst loaded(static_cast<size_t>(alphabet_size), options);
    loaded.nodes_.resize(node_count);
    loaded.live_nodes_ = node_count;
    loaded.approx_bytes_ = 0;
    for (uint64_t i = 0; i < node_count; ++i) {
      uint32_t parent = 0;
      Pst::Node& node = loaded.nodes_[i];
      uint32_t next_size = 0;
      if (!ReadPod(in, &parent) || !ReadPod(in, &node.edge_symbol) ||
          !ReadPod(in, &node.count) || !ReadPod(in, &next_size)) {
        return Status::Corruption("truncated PST node");
      }
      node.parent = parent == static_cast<uint32_t>(-1) ? kNoPstNode : parent;
      if (node.parent != kNoPstNode) {
        if (node.parent >= i) {
          return Status::Corruption("PST node order violates pre-order");
        }
        Pst::Node& par = loaded.nodes_[node.parent];
        node.depth = par.depth + 1;
        par.children.emplace_back(node.edge_symbol, static_cast<PstNodeId>(i));
      } else if (i != 0) {
        return Status::Corruption("non-root node without parent");
      }
      if (next_size > alphabet_size) {
        return Status::Corruption("PST probability vector exceeds alphabet");
      }
      node.next.resize(next_size);
      for (uint32_t j = 0; j < next_size; ++j) {
        if (!ReadPod(in, &node.next[j].first) ||
            !ReadPod(in, &node.next[j].second)) {
          return Status::Corruption("truncated PST probability vector");
        }
      }
      loaded.approx_bytes_ += loaded.NodeBytes(node);
    }
    // Children arrive in pre-order, not symbol order; restore the invariant.
    for (auto& node : loaded.nodes_) {
      std::sort(node.children.begin(), node.children.end());
      loaded.approx_bytes_ +=
          node.children.size() * sizeof(std::pair<SymbolId, PstNodeId>);
    }
    *pst = std::move(loaded);
    return Status::OK();
  }

  static Status SaveFrozen(const FrozenPst& pst, std::ostream& out) {
    out.write(kFrozenMagic, sizeof(kFrozenMagic));
    WritePod(out, static_cast<uint64_t>(pst.alphabet_size_));
    WritePod(out, static_cast<uint64_t>(pst.max_depth_));
    WritePod(out, static_cast<uint64_t>(pst.depth_.size()));
    WriteVec(out, pst.depth_);
    WriteVec(out, pst.next_);
    WriteVec(out, pst.log_ratio_);
    if (!out) return Status::IOError("frozen PST write failed");
    return Status::OK();
  }

  static Status LoadFrozen(std::istream& in, FrozenPst* pst) {
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kFrozenMagic, sizeof(kFrozenMagic)) != 0) {
      return Status::Corruption("bad frozen PST magic");
    }
    uint64_t alphabet_size = 0, max_depth = 0, num_states = 0;
    if (!ReadPod(in, &alphabet_size) || !ReadPod(in, &max_depth) ||
        !ReadPod(in, &num_states)) {
      return Status::Corruption("truncated frozen PST header");
    }
    // Same sanity bounds as the live loader: untrusted sizes must not drive
    // huge allocations before the stream runs dry.
    if (num_states == 0 || num_states > (1ULL << 28) || alphabet_size == 0 ||
        alphabet_size > (1ULL << 24) ||
        num_states * alphabet_size > (1ULL << 32)) {
      return Status::Corruption("implausible frozen PST header sizes");
    }
    FrozenPst loaded;
    loaded.alphabet_size_ = static_cast<size_t>(alphabet_size);
    loaded.max_depth_ = static_cast<size_t>(max_depth);
    const size_t n = static_cast<size_t>(num_states);
    const size_t cells = n * loaded.alphabet_size_;
    if (!ReadVec(in, n, &loaded.depth_) ||
        !ReadVec(in, cells, &loaded.next_) ||
        !ReadVec(in, cells, &loaded.log_ratio_)) {
      return Status::Corruption("truncated frozen PST body");
    }
    // Structural validation so a corrupted file cannot make Step() walk out
    // of the tables: every transition in range, depths within bound and
    // non-decreasing (the compiler emits states depth-major).
    if (loaded.depth_[0] != 0) {
      return Status::Corruption("frozen PST root has nonzero depth");
    }
    for (size_t s = 0; s < n; ++s) {
      if (loaded.depth_[s] > loaded.max_depth_ ||
          (s > 0 && loaded.depth_[s] < loaded.depth_[s - 1])) {
        return Status::Corruption("frozen PST depths out of order");
      }
    }
    for (FrozenPst::State t : loaded.next_) {
      if (t >= n) {
        return Status::Corruption("frozen PST transition out of range");
      }
    }
    *pst = std::move(loaded);
    return Status::OK();
  }

 private:
  template <typename T>
  static void WriteVec(std::ostream& out, const std::vector<T>& v) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }

  template <typename T>
  static bool ReadVec(std::istream& in, size_t count, std::vector<T>* v) {
    v->resize(count);
    in.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    return static_cast<bool>(in);
  }
};

Status SavePst(const Pst& pst, std::ostream& out) {
  return PstSerializer::Save(pst, out);
}

Status SavePstToFile(const Pst& pst, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  return SavePst(pst, out);
}

Status LoadPst(std::istream& in, Pst* pst) {
  return PstSerializer::Load(in, pst);
}

Status LoadPstFromFile(const std::string& path, Pst* pst) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadPst(in, pst);
}

Status SaveFrozenPst(const FrozenPst& pst, std::ostream& out) {
  return PstSerializer::SaveFrozen(pst, out);
}

Status SaveFrozenPstToFile(const FrozenPst& pst, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  return SaveFrozenPst(pst, out);
}

Status LoadFrozenPst(std::istream& in, FrozenPst* pst) {
  return PstSerializer::LoadFrozen(in, pst);
}

Status LoadFrozenPstFromFile(const std::string& path, FrozenPst* pst) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadFrozenPst(in, pst);
}

}  // namespace cluseq
