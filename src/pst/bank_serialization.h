// .fbank: a single-file, mmap-able, checksummed snapshot *set* — all k
// cluster models of a FrozenBank in one blob (DESIGN.md §11).
//
// The bank's arena is already position-independent bytes (Entry::next
// holds model-local row offsets), so the file is the arena plus a layout
// description, and loading is validation plus a pointer fixup: sharded
// serving workers that mmap the same .fbank share page-cache pages
// instead of each rebuilding k .fpst models.
//
// Layout (little-endian; every multi-byte field at its natural offset):
//
//   FileHeader (32 B)   magic "CSQFBNK1" | u32 version=1 | u32 flags=0 |
//                       u64 file_size | u32 section_count=3 |
//                       u32 header_crc   (CRC32C of the preceding 28 B)
//   SectionEntry ×3     u32 id | u32 reserved | u64 offset | u64 size |
//       (32 B each)     u32 crc32c | u32 reserved    (ids: 1 meta,
//                       2 bases, 3 entries; offsets from file start)
//   meta section        u64 alphabet_size | u64 num_models |
//                       { u64 num_states, u64 max_depth } × num_models
//   bases section       u64 entry_offset × num_models (prefix sums of
//                       states·alphabet — redundant, checked exactly)
//   entries section     FrozenBank::Entry × Σ states·alphabet, offset
//                       64-byte aligned (zero-padded gap before it)
//   FileFooter (16 B)   magic "1KNBFQSC" | u32 file_crc (CRC32C of every
//                       byte before the footer) | u32 reserved
//
// Loads verify, in order: header magic/version/flags/CRC, declared vs
// actual file size, footer magic + whole-file CRC, the section table
// against the recomputed canonical layout, per-section CRCs, size caps on
// every count before any allocation, the bases prefix sums, and finally
// every arena entry (next offset in range and row-aligned, log-ratio not
// NaN/+inf, padding zero). No on-disk byte pattern reaches ScanAll
// unchecked; failures return Status::Corruption and bump the
// persistence.corruption_detected counter. Writes go through
// WriteFileAtomic (util/file_io.h), so a crashed saver never leaves a
// partial .fbank at the final path.

#ifndef CLUSEQ_PST_BANK_SERIALIZATION_H_
#define CLUSEQ_PST_BANK_SERIALIZATION_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "pst/frozen_bank.h"
#include "util/status.h"

namespace cluseq {

/// Fixed framing sizes, exported so tests can compute section boundaries.
inline constexpr size_t kFbankHeaderBytes = 32;
inline constexpr size_t kFbankSectionEntryBytes = 32;
inline constexpr size_t kFbankSectionCount = 3;
inline constexpr size_t kFbankFooterBytes = 16;
inline constexpr size_t kFbankEntriesAlignment = 64;

struct FbankLoadOptions {
  /// Serve the arena straight from a shared read-only mmap (zero-copy;
  /// pages shared across processes). When false — or when mmap fails —
  /// the file is read buffered and the rows copied into the bank's own
  /// (hugepage-advised) arena.
  bool prefer_mmap = true;
};

struct FbankLoadInfo {
  bool mmap = false;      ///< Rows are served from the file mapping.
  size_t file_bytes = 0;
  size_t num_models = 0;
};

/// Serializes `bank` (which must be non-empty) into `*blob`.
Status SaveFrozenBank(const FrozenBank& bank, std::string* blob);

/// Serializes and atomically writes `bank` to `path`.
Status SaveFrozenBankToFile(const FrozenBank& bank, const std::string& path);

/// Validates `blob` and installs it into `*bank` (rows copied into an
/// owned arena). On any validation failure `*bank` is left untouched.
Status LoadFrozenBank(std::string_view blob, FrozenBank* bank);

/// Validates the file and installs it into `*bank`, zero-copy when the
/// mmap path is taken (see FbankLoadOptions).
Status LoadFrozenBankFromFile(const std::string& path, FrozenBank* bank,
                              const FbankLoadOptions& options = {},
                              FbankLoadInfo* info = nullptr);

}  // namespace cluseq

#endif  // CLUSEQ_PST_BANK_SERIALIZATION_H_
