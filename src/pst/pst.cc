#include "pst/pst.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <limits>

#include "obs/metrics.h"

namespace cluseq {

namespace {

obs::Counter& PrunedByStrategyCounter(PruneStrategy strategy) {
  static obs::Counter& smallest = obs::MetricsRegistry::Get().GetCounter(
      "pst.pruned.smallest_count_first");
  static obs::Counter& longest = obs::MetricsRegistry::Get().GetCounter(
      "pst.pruned.longest_label_first");
  static obs::Counter& expected = obs::MetricsRegistry::Get().GetCounter(
      "pst.pruned.expected_vector_first");
  switch (strategy) {
    case PruneStrategy::kSmallestCountFirst:
      return smallest;
    case PruneStrategy::kLongestLabelFirst:
      return longest;
    case PruneStrategy::kExpectedVectorFirst:
      return expected;
  }
  return smallest;
}

// Binary search in a sorted association vector.
template <typename V>
const std::pair<SymbolId, V>* FindEntry(
    const std::vector<std::pair<SymbolId, V>>& vec, SymbolId key) {
  auto it = std::lower_bound(
      vec.begin(), vec.end(), key,
      [](const std::pair<SymbolId, V>& e, SymbolId k) { return e.first < k; });
  if (it == vec.end() || it->first != key) return nullptr;
  return &*it;
}

}  // namespace

Status PstOptions::Validate() const {
  if (max_depth == 0) {
    return Status::InvalidArgument("max_depth must be >= 1");
  }
  if (significance_threshold == 0) {
    return Status::InvalidArgument("significance_threshold must be >= 1");
  }
  if (smoothing_p_min < 0.0 || smoothing_p_min >= 1.0) {
    return Status::InvalidArgument("smoothing_p_min must be in [0, 1)");
  }
  return Status::OK();
}

Pst::Pst(size_t alphabet_size, PstOptions options)
    : alphabet_size_(alphabet_size), options_(options) {
  // The smoothed probabilities must satisfy n * p_min < 1; clamp so even a
  // uniform CPD keeps (1 - n*p_min) positive.
  if (alphabet_size_ > 0 && options_.smoothing_p_min > 0.0) {
    options_.smoothing_p_min = std::min(
        options_.smoothing_p_min, 0.5 / static_cast<double>(alphabet_size_));
  }
  nodes_.emplace_back();  // Root: empty label, depth 0.
  approx_bytes_ = sizeof(Node);
}

PstNodeId Pst::GetOrCreateChild(PstNodeId id, SymbolId symbol) {
  Node& node = nodes_[id];
  auto it = std::lower_bound(
      node.children.begin(), node.children.end(), symbol,
      [](const std::pair<SymbolId, PstNodeId>& e, SymbolId k) {
        return e.first < k;
      });
  if (it != node.children.end() && it->first == symbol) return it->second;

  PstNodeId child_id;
  if (!free_list_.empty()) {
    child_id = free_list_.back();
    free_list_.pop_back();
    nodes_[child_id] = Node();
  } else {
    child_id = static_cast<PstNodeId>(nodes_.size());
    nodes_.emplace_back();
    // nodes_ may have reallocated; `node` reference is refreshed below.
  }
  Node& parent = nodes_[id];
  Node& child = nodes_[child_id];
  child.parent = id;
  child.edge_symbol = symbol;
  child.depth = parent.depth + 1;
  auto insert_at = std::lower_bound(
      parent.children.begin(), parent.children.end(), symbol,
      [](const std::pair<SymbolId, PstNodeId>& e, SymbolId k) {
        return e.first < k;
      });
  parent.children.insert(insert_at, {symbol, child_id});
  approx_bytes_ += sizeof(Node) + sizeof(std::pair<SymbolId, PstNodeId>);
  ++live_nodes_;
  static obs::Counter& created =
      obs::MetricsRegistry::Get().GetCounter("pst.nodes_created");
  created.Increment();
  return child_id;
}

void Pst::BumpNext(PstNodeId id, SymbolId s) {
  Node& node = nodes_[id];
  auto it = std::lower_bound(
      node.next.begin(), node.next.end(), s,
      [](const std::pair<SymbolId, uint64_t>& e, SymbolId k) {
        return e.first < k;
      });
  if (it != node.next.end() && it->first == s) {
    ++it->second;
  } else {
    node.next.insert(it, {s, 1});
    approx_bytes_ += sizeof(std::pair<SymbolId, uint64_t>);
  }
}

void Pst::InsertSequence(std::span<const SymbolId> symbols) {
  const size_t l = symbols.size();
  static obs::Counter& insert_symbols =
      obs::MetricsRegistry::Get().GetCounter("pst.insert_symbols");
  insert_symbols.Add(l);
  for (size_t i = 0; i < l; ++i) {
    const SymbolId next = symbols[i];
    PstNodeId cur = kPstRoot;
    ++nodes_[kPstRoot].count;
    BumpNext(kPstRoot, next);
    const size_t max_d = std::min(i, options_.max_depth);
    for (size_t d = 1; d <= max_d; ++d) {
      cur = GetOrCreateChild(cur, symbols[i - d]);
      ++nodes_[cur].count;
      BumpNext(cur, next);
    }
  }
  if (options_.max_memory_bytes > 0 &&
      approx_bytes_ > options_.max_memory_bytes) {
    PruneToBudget();
  }
}

PstNodeId Pst::PredictionNode(std::span<const SymbolId> context) const {
  PstNodeId cur = kPstRoot;
  const size_t len = context.size();
  const size_t max_d = std::min(len, options_.max_depth);
  for (size_t d = 1; d <= max_d; ++d) {
    PstNodeId child = Child(cur, context[len - d]);
    if (child == kNoPstNode ||
        nodes_[child].count < options_.significance_threshold) {
      break;  // Any further advance reaches an insignificant node.
    }
    cur = child;
  }
  return cur;
}

PstNodeId Pst::DeepestExistingNode(std::span<const SymbolId> context) const {
  PstNodeId cur = kPstRoot;
  const size_t len = context.size();
  const size_t max_d = std::min(len, options_.max_depth);
  for (size_t d = 1; d <= max_d; ++d) {
    PstNodeId child = Child(cur, context[len - d]);
    if (child == kNoPstNode) break;
    cur = child;
  }
  return cur;
}

double Pst::NodeProbability(PstNodeId id, SymbolId next) const {
  const Node& node = nodes_[id];
  double raw;
  if (node.count == 0) {
    raw = alphabet_size_ > 0 ? 1.0 / static_cast<double>(alphabet_size_) : 0.0;
  } else {
    const auto* entry = FindEntry(node.next, next);
    raw = entry == nullptr
              ? 0.0
              : static_cast<double>(entry->second) /
                    static_cast<double>(node.count);
  }
  const double p_min = options_.smoothing_p_min;
  if (p_min <= 0.0) return raw;
  // Adjusted probability estimation (paper §5.2).
  return (1.0 - static_cast<double>(alphabet_size_) * p_min) * raw + p_min;
}

double Pst::ConditionalProbability(std::span<const SymbolId> context,
                                   SymbolId next) const {
  return NodeProbability(PredictionNode(context), next);
}

double Pst::LogConditionalProbability(std::span<const SymbolId> context,
                                      SymbolId next) const {
  double p = ConditionalProbability(context, next);
  return p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity();
}

double Pst::LogSequenceProbability(std::span<const SymbolId> symbols) const {
  double sum = 0.0;
  for (size_t i = 0; i < symbols.size(); ++i) {
    sum += LogConditionalProbability(symbols.subspan(0, i), symbols[i]);
  }
  return sum;
}

PstNodeId Pst::Child(PstNodeId id, SymbolId symbol) const {
  const auto* entry = FindEntry(nodes_[id].children, symbol);
  return entry == nullptr ? kNoPstNode : entry->second;
}

std::vector<std::pair<SymbolId, PstNodeId>> Pst::Children(
    PstNodeId id) const {
  return nodes_[id].children;
}

std::vector<SymbolId> Pst::NodeLabel(PstNodeId id) const {
  // Walking leaf-to-root yields the context in natural order: the deepest
  // edge is the symbol furthest before the prediction point.
  std::vector<SymbolId> label;
  PstNodeId cur = id;
  while (cur != kPstRoot && cur != kNoPstNode) {
    label.push_back(nodes_[cur].edge_symbol);
    cur = nodes_[cur].parent;
  }
  return label;
}

uint64_t Pst::NextCount(PstNodeId id, SymbolId s) const {
  const auto* entry = FindEntry(nodes_[id].next, s);
  return entry == nullptr ? 0 : entry->second;
}

size_t Pst::NodeBytes(const Node& node) const {
  return sizeof(Node) +
         node.children.size() * sizeof(std::pair<SymbolId, PstNodeId>) +
         node.next.size() * sizeof(std::pair<SymbolId, uint64_t>);
}

double Pst::CpdDistanceToParent(const Node& node) const {
  if (node.parent == kNoPstNode) return 0.0;
  const Node& parent = nodes_[node.parent];
  if (node.count == 0 || parent.count == 0) return 0.0;
  // L1 (variational) distance over the union of observed next symbols.
  double dist = 0.0;
  size_t i = 0, j = 0;
  const auto& a = node.next;
  const auto& b = parent.next;
  const double ca = static_cast<double>(node.count);
  const double cb = static_cast<double>(parent.count);
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].first < b[j].first)) {
      dist += static_cast<double>(a[i].second) / ca;
      ++i;
    } else if (i >= a.size() || b[j].first < a[i].first) {
      dist += static_cast<double>(b[j].second) / cb;
      ++j;
    } else {
      dist += std::abs(static_cast<double>(a[i].second) / ca -
                       static_cast<double>(b[j].second) / cb);
      ++i;
      ++j;
    }
  }
  return dist;
}

double Pst::PruneScore(const Node& node) const {
  // Lower score == pruned earlier.
  switch (options_.prune_strategy) {
    case PruneStrategy::kSmallestCountFirst:
      return static_cast<double>(node.count);
    case PruneStrategy::kLongestLabelFirst:
      // Deeper leaves first; ties broken by count so the shallow frequent
      // structure survives longest.
      return -(static_cast<double>(node.depth) * 1e12 -
               static_cast<double>(node.count));
    case PruneStrategy::kExpectedVectorFirst:
      // Insignificant leaves go first (ordered by count); significant leaves
      // follow, ordered by how little their CPD differs from the parent's.
      if (node.count < options_.significance_threshold) {
        return static_cast<double>(node.count);
      }
      return 1e15 + CpdDistanceToParent(node) * 1e12;
  }
  return 0.0;
}

void Pst::RemoveLeaf(PstNodeId id) {
  Node& node = nodes_[id];
  Node& parent = nodes_[node.parent];
  auto it = std::lower_bound(
      parent.children.begin(), parent.children.end(), node.edge_symbol,
      [](const std::pair<SymbolId, PstNodeId>& e, SymbolId k) {
        return e.first < k;
      });
  if (it != parent.children.end() && it->first == node.edge_symbol) {
    parent.children.erase(it);
    approx_bytes_ -= sizeof(std::pair<SymbolId, PstNodeId>);
  }
  approx_bytes_ -= NodeBytes(node) -
                   node.children.size() *
                       sizeof(std::pair<SymbolId, PstNodeId>);
  node = Node();
  node.dead = true;
  free_list_.push_back(id);
  --live_nodes_;
}

void Pst::PruneToBudget(size_t target_bytes) {
  size_t target =
      target_bytes > 0 ? target_bytes : options_.max_memory_bytes;
  if (target == 0 || approx_bytes_ <= target) return;
  // Prune slightly past the budget so insertion doesn't immediately
  // re-trigger; the slack is bounded so explicit small shaves stay small.
  const size_t slack = std::min<size_t>(target / 10, 16 * 1024);
  const size_t goal = target - std::min(slack, target);

  // Min-heap of prunable leaves; parents are pushed as they become leaves,
  // so the globally lowest-scoring leaf is always removed next. A node's
  // score is stable once it is a leaf (it depends only on its own count,
  // depth, and its parent's CPD).
  using Entry = std::pair<double, PstNodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (PstNodeId id = 1; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (!node.dead && node.children.empty()) {
      heap.emplace(PruneScore(node), id);
    }
  }
  size_t removed = 0;
  while (approx_bytes_ > goal && !heap.empty()) {
    auto [score, id] = heap.top();
    heap.pop();
    Node& node = nodes_[id];
    if (node.dead || !node.children.empty()) continue;  // Stale entry.
    PstNodeId parent = node.parent;
    RemoveLeaf(id);
    ++removed;
    if (parent != kPstRoot && parent != kNoPstNode &&
        nodes_[parent].children.empty()) {
      heap.emplace(PruneScore(nodes_[parent]), parent);
    }
  }
  if (removed > 0) {
    static obs::Counter& prune_events =
        obs::MetricsRegistry::Get().GetCounter("pst.prune_events");
    static obs::Counter& pruned =
        obs::MetricsRegistry::Get().GetCounter("pst.nodes_pruned");
    prune_events.Increment();
    pruned.Add(removed);
    PrunedByStrategyCounter(options_.prune_strategy).Add(removed);
  }
}

void Pst::Clear() {
  nodes_.clear();
  free_list_.clear();
  nodes_.emplace_back();
  approx_bytes_ = sizeof(Node);
  live_nodes_ = 1;
}

PstStats Pst::Stats() const {
  PstStats stats;
  for (PstNodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.dead) continue;
    ++stats.num_nodes;
    if (node.count >= options_.significance_threshold) {
      ++stats.num_significant_nodes;
    }
    stats.max_depth = std::max(stats.max_depth,
                               static_cast<size_t>(node.depth));
    if (stats.nodes_per_depth.size() <= node.depth) {
      stats.nodes_per_depth.resize(node.depth + 1, 0);
    }
    ++stats.nodes_per_depth[node.depth];
  }
  stats.approx_bytes = approx_bytes_;
  stats.total_symbols = nodes_[kPstRoot].count;
  return stats;
}

Status Pst::MergeFrom(const Pst& other) {
  if (other.alphabet_size_ != alphabet_size_) {
    return Status::InvalidArgument("alphabet size mismatch in PST merge");
  }
  // Walk `other` pre-order, mirroring each live node into this tree.
  struct Frame {
    PstNodeId theirs;
    PstNodeId ours;
  };
  std::vector<Frame> stack = {{kPstRoot, kPstRoot}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Node& theirs = other.nodes_[frame.theirs];
    Node& ours = nodes_[frame.ours];
    ours.count += theirs.count;
    for (const auto& [sym, cnt] : theirs.next) {
      auto it = std::lower_bound(
          ours.next.begin(), ours.next.end(), sym,
          [](const std::pair<SymbolId, uint64_t>& e, SymbolId k) {
            return e.first < k;
          });
      if (it != ours.next.end() && it->first == sym) {
        it->second += cnt;
      } else {
        ours.next.insert(it, {sym, cnt});
        approx_bytes_ += sizeof(std::pair<SymbolId, uint64_t>);
      }
    }
    if (theirs.depth >= options_.max_depth) continue;
    for (const auto& [sym, their_child] : theirs.children) {
      PstNodeId our_child = GetOrCreateChild(frame.ours, sym);
      stack.push_back({their_child, our_child});
    }
  }
  if (options_.max_memory_bytes > 0 &&
      approx_bytes_ > options_.max_memory_bytes) {
    PruneToBudget();
  }
  return Status::OK();
}

std::vector<PstContextInfo> Pst::TopContexts(size_t limit) const {
  std::vector<std::pair<uint64_t, PstNodeId>> ranked;
  for (PstNodeId id = 1; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.dead) continue;
    ranked.emplace_back(node.count, id);
  }
  std::sort(ranked.begin(), ranked.end(),
            [this](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return nodes_[a.second].depth < nodes_[b.second].depth;
            });
  if (ranked.size() > limit) ranked.resize(limit);
  std::vector<PstContextInfo> out;
  out.reserve(ranked.size());
  for (const auto& [count, id] : ranked) {
    PstContextInfo info;
    info.context = NodeLabel(id);
    info.count = count;
    const Node& node = nodes_[id];
    for (const auto& [sym, cnt] : node.next) {
      double p = node.count == 0 ? 0.0
                                 : static_cast<double>(cnt) /
                                       static_cast<double>(node.count);
      if (p > info.most_likely_probability) {
        info.most_likely_probability = p;
        info.most_likely_next = sym;
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace cluseq
