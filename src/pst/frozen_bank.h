// FrozenBank: k FrozenPst snapshots packed into one arena, scored in one
// pass.
//
// CLUSEQ's dominant cost is the re-cluster scan: every iteration scores
// every sequence against every cluster (paper §4.2–4.3). A FrozenPst makes
// one cluster's scan O(1)/symbol, but looping k snapshots serially still
// reads the symbol stream k times, restarts k cold dependency chains, and
// re-faults each model's transition rows from scratch. The finite-memory
// classification literature treats multi-model scoring as k state machines
// advanced in lockstep over a single stream — which is exactly what this
// engine compiles:
//
//   * The bank packs every model's transition and log-ratio tables into one
//     arena of 16-byte entries with one entry offset per model. Arena entry
//     g = base[m] + state·A + s holds both the log-ratio X term and the
//     *next row offset* (stored model-local as next_state·A so a model's
//     rows are position-independent bytes) side by side, so one symbol step
//     touches a single cache line per model instead of one line in each of
//     two split arrays — the scan is memory-bound once the bank outgrows
//     L2, and this halves its miss traffic.
//   * ScanAll runs the §4.3 X/Y/Z recurrences for all k models interleaved:
//     the symbol stream is read once per model block, and each block's
//     per-symbol inner loop is a flat gather (x = entries_[row+s].ratio) +
//     add + two maxes over independent per-model lanes — no cross-model
//     dependency, so the chains pipeline and the loop vectorizes. An AVX2
//     path (4 models per vector, compiled under CLUSEQ_HAVE_AVX2 and
//     dispatched at runtime) sits on top of an always-available scalar
//     loop; both are bit-for-bit equivalent to per-cluster FrozenPst
//     scoring (tests/frozen_bank_equivalence_test.cc).
//   * Models are processed in cache-sized blocks: a block of B models keeps
//     ~B active (ratio,next) row pairs live between symbol steps, so B is
//     chosen to fit the hot rows in L1/L2 (see BlockModels).
//
// Incremental re-freeze: Assemble() compares each slot's snapshot pointer
// and arena offset against the previous layout and rewrites only the
// models that actually changed — an untouched cluster's rows are reused
// byte-identical in place. Clusterer iterations where few clusters absorbed
// segments therefore rebuild only those clusters' tables.
//
// Banks come into existence two ways: *assembled* from live FrozenPst
// snapshots (above), or *mapped* from a `.fbank` file
// (pst/bank_serialization.h) — the arena's 16-byte entries are
// position-independent bytes, so a validated file section can back
// ScanAll/StepAll directly from a read-only mmap with zero copying and
// page-cache sharing across worker processes. A mapped bank has no
// snapshot objects: model(m) is unavailable, and a later Assemble() call
// simply rebuilds an owned arena from scratch.

#ifndef CLUSEQ_PST_FROZEN_BANK_H_
#define CLUSEQ_PST_FROZEN_BANK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/similarity.h"
#include "pst/frozen_pst.h"
#include "seq/alphabet.h"

namespace cluseq {

class FrozenBank {
 public:
  /// One packed arena cell: the log-ratio X term for (state, symbol) and
  /// the successor state's model-local row offset (next_state · A),
  /// interleaved so a symbol step reads exactly one cache line. 16 bytes
  /// keeps entries line-aligned (a 64-byte line holds 4, never straddled);
  /// `pad` is always zero so rows compare byte-for-byte with memcmp.
  struct Entry {
    double ratio;
    uint32_t next;
    uint32_t pad;
  };
  static_assert(sizeof(Entry) == 16);

  struct AssembleStats {
    size_t models_written = 0;  ///< Slots whose arena rows were (re)written.
    size_t models_reused = 0;   ///< Slots left byte-identical in place.
  };

  /// Empty bank; Assemble() later, or use as a container element.
  FrozenBank() = default;

  /// Builds the arena from `models`. All snapshots must be non-empty and
  /// share one alphabet size (checked fatally). Snapshots are shared, not
  /// copied; they may be reused across banks, scorers and threads.
  explicit FrozenBank(std::vector<std::shared_ptr<const FrozenPst>> models) {
    Assemble(std::move(models));
  }

  /// Re-targets the bank at `models`, rewriting only the slots whose
  /// snapshot changed: a slot is reused in place when it holds the same
  /// snapshot object at the same arena offset as before (appending models
  /// or swapping one dirty cluster leaves every other model's rows
  /// untouched). Returns how many models were written vs reused.
  AssembleStats Assemble(std::vector<std::shared_ptr<const FrozenPst>> models);

  size_t num_models() const { return base_.size(); }
  size_t alphabet_size() const { return alphabet_size_; }
  bool empty() const { return base_.empty(); }
  /// Source snapshot of model `m`. Assembled banks only — a bank mapped
  /// from a .fbank file carries packed rows but no snapshot objects
  /// (has_snapshots() is false there).
  const FrozenPst& model(size_t m) const { return *models_[m]; }
  bool has_snapshots() const { return !models_.empty(); }
  /// Automaton states of model `m` (valid for assembled and mapped banks).
  size_t model_states(size_t m) const { return states_[m]; }
  /// True when the packed rows are served from an external mapping
  /// (a loaded .fbank) rather than the bank's own arena.
  bool mapped() const { return external_entries_ != nullptr; }

  /// Bytes held by the packed arena plus per-model bookkeeping (the
  /// snapshots themselves are shared and counted by their owners; a
  /// mapped bank's rows live in the file mapping and count as zero here).
  size_t ApproxMemoryBytes() const {
    return entries_.size() * sizeof(Entry) +
           base_.size() * (sizeof(size_t) + 2 * sizeof(uint32_t)) +
           models_.size() * sizeof(models_[0]);
  }

  /// Scores `symbols` against every model in one interleaved pass.
  /// `results` must have room for num_models() entries; results[m] is
  /// bit-for-bit ComputeSimilarity(model(m), symbols) — same log_sim double,
  /// same maximizing segment, including the -inf smoothing-off paths.
  void ScanAll(std::span<const SymbolId> symbols,
               SimilarityResult* results) const;

  std::vector<SimilarityResult> ScanAll(
      std::span<const SymbolId> symbols) const {
    std::vector<SimilarityResult> results(num_models());
    ScanAll(symbols, results.data());
    return results;
  }

  /// Sparse-candidate scan: scores only the models named in `candidates`
  /// (indices into [0, num_models())). `results[j]` corresponds to
  /// `candidates[j]` and is bit-for-bit the ScanAll result for that model.
  /// The prefilter (core/prefilter.h) calls this over the models whose
  /// admissible upper bound survived the level-1 cut.
  void ScanCandidates(std::span<const SymbolId> symbols,
                      std::span<const uint32_t> candidates,
                      SimilarityResult* results) const;

  /// Bounded sparse scan: like ScanCandidates, but every 64 symbols each
  /// still-active model is tested against the admissible remaining-stream
  /// bound and abandoned once it provably cannot reach `target`:
  ///
  ///   final Z  ≤  max(Z_i, max(Y_i, 0) + remaining · margin_m)
  ///
  /// where margin_m = max(signature_max(candidates[j]), 0) caps any future
  /// per-symbol X term. For abandoned models `exact[j] = 0` and
  /// `results[j].log_sim` holds that (strictly < target) upper bound; for
  /// survivors `exact[j] = 1` and `results[j]` is bit-for-bit ScanAll.
  /// Returns the number of abandoned models (the dp_early_exits metric).
  size_t ScanCandidatesBounded(std::span<const SymbolId> symbols,
                               std::span<const uint32_t> candidates,
                               double target, SimilarityResult* results,
                               uint8_t* exact) const;

  /// --- Admissible-bound signatures -------------------------------------
  /// Per-model caps on the §4.3 DP's X terms, maintained by Assemble (only
  /// rewritten slots are recomputed) and by the .fbank loader, so they are
  /// valid whenever the bank is non-empty. core/prefilter.h combines them
  /// with a sequence's symbol/bigram counts into upper bounds on log SIM.

  /// Alphabet-size cap on the bigram signature: above this the k·A²·8-byte
  /// tables stop paying for themselves and the prefilter falls back to the
  /// unigram bound.
  static constexpr size_t kMaxBigramAlphabet = 64;

  /// max over (state, symbol) of model m's log-ratio — caps any single X.
  double signature_max(size_t m) const { return sig_rmax_[m]; }

  /// Per-symbol maxima: A entries, [a] = max over states of LogRatio(·, a).
  std::span<const double> signature_max_symbol(size_t m) const {
    return std::span<const double>(sig_maxsym_.data() + m * alphabet_size_,
                                   alphabet_size_);
  }

  /// Bigram caps (only when has_bigram_signature()): A² entries,
  /// [b·A + a] = max of LogRatio(v, a) over the image of Step(·, b) — an
  /// admissible cap on X_i at any position whose previous symbol is b,
  /// because the automaton state at position i always lies in that image.
  bool has_bigram_signature() const { return sig_cap2_enabled_; }
  std::span<const double> signature_bigram_cap(size_t m) const {
    const size_t sq = alphabet_size_ * alphabet_size_;
    return std::span<const double>(sig_cap2_.data() + m * sq, sq);
  }

  /// Transposed, positive-clamped mirrors of the signatures above, laid out
  /// code-major ([code][model]) so a per-sequence bound pass streams
  /// sequentially through all k models for each distinct code instead of
  /// gathering one cap per model. Entries are pre-clamped to max(cap, 0):
  /// the bound only ever adds the positive part, and clamping at build time
  /// turns the prefilter's inner loop into a branch-free fused
  /// multiply-add. pos_bigram_cap_t is only populated when
  /// has_bigram_signature().
  std::span<const double> signature_pos_max_symbol_t(size_t symbol) const {
    return std::span<const double>(
        sig_maxsymt_.data() + symbol * num_models(), num_models());
  }
  std::span<const double> signature_pos_bigram_cap_t(size_t code) const {
    return std::span<const double>(sig_cap2t_.data() + code * num_models(),
                                   num_models());
  }

  /// Streaming variant for online scoring: advances every model by one
  /// symbol. The arrays are parallel over models: `rows` holds each model's
  /// current row offset *local to the model* (state · alphabet_size; start
  /// streams at 0 — the root row — and keep the values across Assemble
  /// calls, they survive arena re-packs), `y`/`z` are the §4.3 running
  /// best-segment terms, `started` distinguishes "no symbol yet" from a
  /// restart. Bit-for-bit the per-model scalar DP step.
  void StepAll(SymbolId symbol, uint32_t* rows, double* y, double* z,
               uint8_t* started) const;

  /// Raw packed rows of model `m` (tests, diagnostics, .fbank
  /// serialization). `Entry::next` values are model-local row offsets
  /// (next_state · alphabet_size), not FrozenPst state ids.
  std::span<const Entry> Rows(size_t m) const {
    return std::span<const Entry>(scan_data() + base_[m], ModelEntries(m));
  }

  /// True when the AVX2 kernels are compiled in and this CPU supports them.
  static bool SimdAvailable();

  /// Forces the scalar kernels even when SIMD is available (equivalence
  /// tests, benchmark baselines).
  void set_force_scalar(bool force) { force_scalar_ = force; }
  bool force_scalar() const { return force_scalar_; }

 private:
  /// Contiguous Entry storage: a minimal vector<Entry> (resize preserves
  /// contents, which the incremental Assemble reuse depends on) whose large
  /// allocations are 2 MiB-aligned and advised as transparent-hugepage. A
  /// depth-6 bank of 64 models spans tens of MB and ScanAll's gathers touch
  /// it near-randomly, so 4 KiB pages thrash the dTLB and the scan pays a
  /// page walk per miss; 2 MiB pages cover the same arena with a few dozen
  /// TLB entries. Falls back to plain allocation when THP is unavailable.
  class EntryArena {
   public:
    EntryArena() = default;
    EntryArena(const EntryArena& other) { *this = other; }
    EntryArena& operator=(const EntryArena& other);
    EntryArena(EntryArena&& other) noexcept { *this = std::move(other); }
    EntryArena& operator=(EntryArena&& other) noexcept;
    ~EntryArena();

    Entry* data() { return data_; }
    const Entry* data() const { return data_; }
    size_t size() const { return size_; }
    const Entry& operator[](size_t i) const { return data_[i]; }
    /// Grows or shrinks to `n` entries, preserving the first
    /// min(n, size()) entries byte-for-byte. New entries are uninitialized:
    /// Assemble writes every slot it does not reuse.
    void resize(size_t n);

   private:
    Entry* data_ = nullptr;
    size_t size_ = 0;
    size_t capacity_ = 0;
  };

  friend class BankSerializer;  // .fbank save/load (pst/bank_serialization).

  size_t ModelEntries(size_t m) const {
    return static_cast<size_t>(states_[m]) * alphabet_size_;
  }
  /// Packed rows to scan: the owned arena, or the external (mmap) view
  /// installed by the .fbank loader.
  const Entry* scan_data() const {
    return external_entries_ != nullptr ? external_entries_ : entries_.data();
  }
  /// Models per block: the per-symbol inner loop keeps one active
  /// (ratio, next) row pair per model between reuses, so the block size is
  /// chosen to keep a block's hot rows L2-resident.
  size_t BlockModels() const;

  /// Recomputes model m's bound signature from its packed arena rows
  /// (works identically for assembled and mapped banks). The sig_ arrays
  /// must already be sized for the current layout.
  void BuildSignature(size_t m);
  /// Sizes the sig_ arrays for the current layout and rebuilds every model
  /// (the .fbank load path, where nothing is reusable).
  void BuildAllSignatures();
  /// Rebuilds sig_maxsymt_/sig_cap2t_ from the per-model signatures. Must
  /// run after any signature refresh — the code-major layout interleaves
  /// all models, so slot reuse cannot keep transposed columns in place.
  void BuildTransposedSignatures();

  size_t alphabet_size_ = 0;
  /// Source snapshots (assembled banks; empty for mapped banks).
  std::vector<std::shared_ptr<const FrozenPst>> models_;
  /// Per-model automaton state counts — the layout ground truth shared by
  /// assembled and mapped banks (mapped banks have no snapshots to ask).
  std::vector<uint32_t> states_;
  /// Per-model entry offset into the arena (prefix sums of states × A).
  std::vector<size_t> base_;
  /// base_ as u32 for the kernels (total entries are checked small enough
  /// that the SIMD gathers' signed 32-bit *scaled* indices — up to
  /// 4·entry + 2 for the transition word — cannot overflow).
  std::vector<uint32_t> base32_;
  /// Packed rows: entry base[m] + state·A + s scores symbol s in `state`
  /// and names the successor row (see Entry). Empty in mapped mode.
  EntryArena entries_;
  /// Mapped mode: validated rows served from `external_storage_` (the
  /// .fbank mapping or buffer the loader keeps alive).
  const Entry* external_entries_ = nullptr;
  std::shared_ptr<const void> external_storage_;
  bool force_scalar_ = false;
  /// Bound signatures, parallel to base_: per-model overall max log-ratio,
  /// flat k·A per-symbol maxima, and (when sig_cap2_enabled_) flat k·A²
  /// bigram caps. See the signature accessors above.
  std::vector<double> sig_rmax_;
  std::vector<double> sig_maxsym_;
  std::vector<double> sig_cap2_;
  /// Code-major, positive-clamped transposes of sig_maxsym_/sig_cap2_
  /// (see the signature_pos_* accessors). Rebuilt wholesale after every
  /// signature refresh — O(k·A²) writes, noise next to arena packing.
  std::vector<double> sig_maxsymt_;
  std::vector<double> sig_cap2t_;
  bool sig_cap2_enabled_ = false;
};

namespace internal {

/// Upper bound on models interleaved per block (bounds the kernels' stack
/// state arrays).
inline constexpr size_t kMaxBlockModels = 64;

/// Scalar reference kernel: scores `num_models` (≤ kMaxBlockModels) models
/// over `symbols` in lockstep. `bases` are the models' arena entry offsets.
void ScanBlockScalar(const FrozenBank::Entry* entries, const uint32_t* bases,
                     size_t num_models, const SymbolId* symbols, size_t len,
                     SimilarityResult* out);

/// Early-abandon variant of ScanBlockScalar: every 64 symbols each active
/// lane is compared against max(Z, max(Y, 0) + remaining · margins[m]) and
/// dropped once that bound falls below `target` (out[m].log_sim = bound,
/// exact[m] = 0, lane compacted away). Survivors produce bit-for-bit
/// ScanBlockScalar results with exact[m] = 1. margins[m] must be ≥ 0 — an
/// admissible cap on any future per-symbol X term. Returns the number of
/// abandoned lanes.
size_t ScanBlockScalarBounded(const FrozenBank::Entry* entries,
                              const uint32_t* bases, size_t num_models,
                              const SymbolId* symbols, size_t len,
                              const double* margins, double target,
                              SimilarityResult* out, uint8_t* exact);

#ifdef CLUSEQ_HAVE_AVX2
/// AVX2 kernel: same contract and bit-identical results, 4 models per
/// vector lane group, several groups interleaved per symbol (remainder
/// models fall through to the scalar loop).
void ScanBlockAvx2(const FrozenBank::Entry* entries, const uint32_t* bases,
                   size_t num_models, const SymbolId* symbols, size_t len,
                   SimilarityResult* out);

/// Early-abandon AVX2 kernel: same contract as ScanBlockScalarBounded but
/// abandonment is per *group* — a group of 16/8/4 interleaved models stops
/// only when every lane in it is hopeless (per-lane compaction would break
/// the fixed-width register layout). Lanes that run to the end are
/// bit-for-bit ScanBlockAvx2.
size_t ScanBlockAvx2Bounded(const FrozenBank::Entry* entries,
                            const uint32_t* bases, size_t num_models,
                            const SymbolId* symbols, size_t len,
                            const double* margins, double target,
                            SimilarityResult* out, uint8_t* exact);
#endif  // CLUSEQ_HAVE_AVX2

}  // namespace internal

}  // namespace cluseq

#endif  // CLUSEQ_PST_FROZEN_BANK_H_
