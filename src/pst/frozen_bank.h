// FrozenBank: k FrozenPst snapshots packed into one arena, scored in one
// pass.
//
// CLUSEQ's dominant cost is the re-cluster scan: every iteration scores
// every sequence against every cluster (paper §4.2–4.3). A FrozenPst makes
// one cluster's scan O(1)/symbol, but looping k snapshots serially still
// reads the symbol stream k times, restarts k cold dependency chains, and
// re-faults each model's transition rows from scratch. The finite-memory
// classification literature treats multi-model scoring as k state machines
// advanced in lockstep over a single stream — which is exactly what this
// engine compiles:
//
//   * The bank packs every model's transition and log-ratio tables into one
//     arena of 16-byte entries with one entry offset per model. Arena entry
//     g = base[m] + state·A + s holds both the log-ratio X term and the
//     *next row offset* (stored model-local as next_state·A so a model's
//     rows are position-independent bytes) side by side, so one symbol step
//     touches a single cache line per model instead of one line in each of
//     two split arrays — the scan is memory-bound once the bank outgrows
//     L2, and this halves its miss traffic.
//   * ScanAll runs the §4.3 X/Y/Z recurrences for all k models interleaved:
//     the symbol stream is read once per model block, and each block's
//     per-symbol inner loop is a flat gather (x = entries_[row+s].ratio) +
//     add + two maxes over independent per-model lanes — no cross-model
//     dependency, so the chains pipeline and the loop vectorizes. An AVX2
//     path (4 models per vector, compiled under CLUSEQ_HAVE_AVX2 and
//     dispatched at runtime) sits on top of an always-available scalar
//     loop; both are bit-for-bit equivalent to per-cluster FrozenPst
//     scoring (tests/frozen_bank_equivalence_test.cc).
//   * Models are processed in cache-sized blocks: a block of B models keeps
//     ~B active (ratio,next) row pairs live between symbol steps, so B is
//     chosen to fit the hot rows in L1/L2 (see BlockModels).
//
// Incremental re-freeze: Assemble() compares each slot's snapshot pointer
// and arena offset against the previous layout and rewrites only the
// models that actually changed — an untouched cluster's rows are reused
// byte-identical in place. Clusterer iterations where few clusters absorbed
// segments therefore rebuild only those clusters' tables.
//
// Banks come into existence two ways: *assembled* from live FrozenPst
// snapshots (above), or *mapped* from a `.fbank` file
// (pst/bank_serialization.h) — the arena's 16-byte entries are
// position-independent bytes, so a validated file section can back
// ScanAll/StepAll directly from a read-only mmap with zero copying and
// page-cache sharing across worker processes. A mapped bank has no
// snapshot objects: model(m) is unavailable, and a later Assemble() call
// simply rebuilds an owned arena from scratch.

#ifndef CLUSEQ_PST_FROZEN_BANK_H_
#define CLUSEQ_PST_FROZEN_BANK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/similarity.h"
#include "pst/frozen_pst.h"
#include "seq/alphabet.h"

namespace cluseq {

class FrozenBank {
 public:
  /// One packed arena cell: the log-ratio X term for (state, symbol) and
  /// the successor state's model-local row offset (next_state · A),
  /// interleaved so a symbol step reads exactly one cache line. 16 bytes
  /// keeps entries line-aligned (a 64-byte line holds 4, never straddled);
  /// `pad` is always zero so rows compare byte-for-byte with memcmp.
  struct Entry {
    double ratio;
    uint32_t next;
    uint32_t pad;
  };
  static_assert(sizeof(Entry) == 16);

  struct AssembleStats {
    size_t models_written = 0;  ///< Slots whose arena rows were (re)written.
    size_t models_reused = 0;   ///< Slots left byte-identical in place.
  };

  /// Empty bank; Assemble() later, or use as a container element.
  FrozenBank() = default;

  /// Builds the arena from `models`. All snapshots must be non-empty and
  /// share one alphabet size (checked fatally). Snapshots are shared, not
  /// copied; they may be reused across banks, scorers and threads.
  explicit FrozenBank(std::vector<std::shared_ptr<const FrozenPst>> models) {
    Assemble(std::move(models));
  }

  /// Re-targets the bank at `models`, rewriting only the slots whose
  /// snapshot changed: a slot is reused in place when it holds the same
  /// snapshot object at the same arena offset as before (appending models
  /// or swapping one dirty cluster leaves every other model's rows
  /// untouched). Returns how many models were written vs reused.
  AssembleStats Assemble(std::vector<std::shared_ptr<const FrozenPst>> models);

  size_t num_models() const { return base_.size(); }
  size_t alphabet_size() const { return alphabet_size_; }
  bool empty() const { return base_.empty(); }
  /// Source snapshot of model `m`. Assembled banks only — a bank mapped
  /// from a .fbank file carries packed rows but no snapshot objects
  /// (has_snapshots() is false there).
  const FrozenPst& model(size_t m) const { return *models_[m]; }
  bool has_snapshots() const { return !models_.empty(); }
  /// Automaton states of model `m` (valid for assembled and mapped banks).
  size_t model_states(size_t m) const { return states_[m]; }
  /// True when the packed rows are served from an external mapping
  /// (a loaded .fbank) rather than the bank's own arena.
  bool mapped() const { return external_entries_ != nullptr; }

  /// Bytes held by the packed arena plus per-model bookkeeping (the
  /// snapshots themselves are shared and counted by their owners; a
  /// mapped bank's rows live in the file mapping and count as zero here).
  size_t ApproxMemoryBytes() const {
    return entries_.size() * sizeof(Entry) +
           base_.size() * (sizeof(size_t) + 2 * sizeof(uint32_t)) +
           models_.size() * sizeof(models_[0]);
  }

  /// Scores `symbols` against every model in one interleaved pass.
  /// `results` must have room for num_models() entries; results[m] is
  /// bit-for-bit ComputeSimilarity(model(m), symbols) — same log_sim double,
  /// same maximizing segment, including the -inf smoothing-off paths.
  void ScanAll(std::span<const SymbolId> symbols,
               SimilarityResult* results) const;

  std::vector<SimilarityResult> ScanAll(
      std::span<const SymbolId> symbols) const {
    std::vector<SimilarityResult> results(num_models());
    ScanAll(symbols, results.data());
    return results;
  }

  /// Sparse-candidate scan: scores only the models named in `candidates`
  /// (indices into [0, num_models())). `results[j]` corresponds to
  /// `candidates[j]` and is bit-for-bit the ScanAll result for that model.
  /// The prefilter (core/prefilter.h) calls this over the models whose
  /// admissible upper bound survived the level-1 cut.
  void ScanCandidates(std::span<const SymbolId> symbols,
                      std::span<const uint32_t> candidates,
                      SimilarityResult* results) const;

  /// Bounded sparse scan: like ScanCandidates, but on an adaptive schedule
  /// of checkpoints each still-active model is tested against the
  /// admissible remaining-stream bound and abandoned once it provably
  /// cannot reach `target`:
  ///
  ///   final Z  ≤  max(Z_i, max(Y_i, 0) + remaining · margin_j)
  ///
  /// where margin_j caps any future per-symbol X term of candidate j —
  /// max(signature_max(candidates[j]), 0) by default, or the caller's
  /// tighter (still admissible, nonnegative) `margins[j]` when provided.
  /// The checkpoint schedule is dense while lanes sit near the target and
  /// backs off geometrically as survivors separate; every executed check
  /// applies the same sound bound, so the schedule affects cost only,
  /// never the result set. For abandoned models `exact[j] = 0` and
  /// `results[j].log_sim` holds that (strictly < target) upper bound; for
  /// survivors `exact[j] = 1` and `results[j]` is bit-for-bit ScanAll.
  /// Returns the number of abandoned models (the dp_early_exits metric);
  /// `*checkpoints` (when non-null) accrues the executed checkpoint passes.
  size_t ScanCandidatesBounded(std::span<const SymbolId> symbols,
                               std::span<const uint32_t> candidates,
                               double target, SimilarityResult* results,
                               uint8_t* exact,
                               std::span<const double> margins = {},
                               size_t* checkpoints = nullptr) const;

  /// --- Admissible-bound signatures -------------------------------------
  /// Per-model caps on the §4.3 DP's X terms, maintained by Assemble (only
  /// rewritten slots are recomputed) and by the .fbank loader, so they are
  /// valid whenever the bank is non-empty. core/prefilter.h combines them
  /// with a sequence's context-code counts into upper bounds on log SIM.
  ///
  /// The context order is tiered: caps conditioned on the previous two
  /// symbols (trigram, order 3), the previous one (bigram, order 2), or
  /// none (unigram, order 1). The per-bank signature memory budget picks
  /// the deepest tier whose k·A^order tables fit; deeper context means a
  /// smaller reachable automaton image, hence tighter caps.

  enum class SignatureTier : uint8_t { kUnigram = 1, kBigram = 2,
                                       kTrigram = 3 };

  /// Default per-bank cap on signature-table bytes (model-major +
  /// transposed mirrors); tune with set_signature_budget_bytes. Sized for
  /// cache residency, not RAM fit: the dense bound pass streams the
  /// transposed tables once per scanned sequence, so a tier that spills
  /// to DRAM pays memory bandwidth per scan and scales worse than a
  /// shallower cache-resident tier with slightly looser caps (the Kadane
  /// bound has slack to spare — measured pruning stays >99.9% a tier
  /// down). 32 MiB keeps order-3 tables through k ≈ 1.4k models on a
  /// 20-letter alphabet and drops larger banks to order 2, whose tables
  /// stay comfortably inside L2/L3 into the tens of thousands of models.
  static constexpr size_t kDefaultSignatureBudgetBytes = 32ull << 20;

  /// Model-major caps are stored as round-up fixed-point int16 with this
  /// step: value = q / 256. Admissible by construction (quantization only
  /// rounds toward +inf), and saturation is unreachable — add-one
  /// smoothing keeps -log p(s) ≤ 64·ln 2 < 45, so every positive log-ratio
  /// is < 45 ≪ 32767/256, and negatives clamp *upward* to -128, which only
  /// loosens the bound.
  static constexpr double kSignatureQuantStep = 1.0 / 256.0;

  /// Bytes of signature tables an order-`order` tier costs for a k-model
  /// bank: model-major int16 caps + uint8 transposed mirror
  /// (k·A^order·(2 + 1)), plus the A-wide per-symbol tables. Public so
  /// tests and capacity planning share the exact cost model the tier
  /// choice uses.
  static double SignatureTierCostBytes(size_t k, size_t alphabet,
                                       size_t order);

  /// Sets the signature budget. Takes effect at the next Assemble (or
  /// .fbank load) — callers that change it on a live bank re-Assemble.
  void set_signature_budget_bytes(size_t bytes) {
    signature_budget_bytes_ = bytes;
  }
  size_t signature_budget_bytes() const { return signature_budget_bytes_; }

  SignatureTier signature_tier() const { return sig_tier_; }
  const char* signature_tier_name() const {
    switch (sig_tier_) {
      case SignatureTier::kTrigram: return "trigram";
      case SignatureTier::kBigram: return "bigram";
      case SignatureTier::kUnigram: return "unigram";
    }
    return "unknown";
  }
  /// Context order of the active tier (1, 2 or 3).
  size_t signature_order() const { return static_cast<size_t>(sig_tier_); }
  /// Number of distinct context codes: A^order. A code at position i packs
  /// the (order-1) preceding symbols and s_i, most significant first.
  size_t signature_code_space() const {
    size_t cs = alphabet_size_;
    for (size_t o = 1; o < signature_order(); ++o) cs *= alphabet_size_;
    return cs;
  }
  /// Leading positions not covered by context codes (they lack enough
  /// history); the bound caps them with the per-symbol maxima instead.
  size_t signature_lead_positions() const {
    return signature_order() <= 2 ? 1 : signature_order() - 1;
  }
  /// max over (state, symbol) of model m's log-ratio — caps any single X.
  double signature_max(size_t m) const { return sig_rmax_[m]; }

  /// Per-symbol maxima: A entries, [a] = max over states of LogRatio(·, a).
  std::span<const double> signature_max_symbol(size_t m) const {
    return std::span<const double>(sig_maxsym_.data() + m * alphabet_size_,
                                   alphabet_size_);
  }

  /// Context caps of the active tier, model-major, unclamped, quantized to
  /// round-up kSignatureQuantStep fixed point (value = entry / 256):
  /// signature_code_space() entries per model. At order 2,
  /// [b·A + a] = max of LogRatio(v, a) over the image of Step(·, b); at
  /// order 3, [c·A² + b·A + a] maximizes over the two-step image of
  /// Step(Step(·, c), b). Admissible because the automaton state before
  /// consuming s_i always lies in the image of stepping on the preceding
  /// symbols, whatever the earlier state was, and rounding up only loosens
  /// the cap. At order 1 the entries are the quantized per-symbol maxima.
  std::span<const int16_t> signature_cap_q(size_t m) const {
    const size_t cs = signature_code_space();
    return std::span<const int16_t>(sig_cap_q_.data() + m * cs, cs);
  }

  /// Zero point of the signed offset-u8 transposed tables below: a stored
  /// byte e encodes the value (e − kSignatureZeroPoint) ·
  /// signature_quant_scale(). 191 levels cover the positive caps, 64 the
  /// negative side (anything below −64·scale clamps up to it — admissible,
  /// a window-breaker just breaks a little less hard).
  static constexpr int32_t kSignatureZeroPoint = 64;
  static constexpr int32_t kSignaturePosLevels = 255 - kSignatureZeroPoint;

  /// Bank-global scale of the offset-u8 transposed tables below:
  /// value = (entry − kSignatureZeroPoint) · signature_quant_scale().
  /// Recomputed per build from the largest positive cap, so the positive
  /// side of the 8-bit grid always covers the bank.
  double signature_quant_scale() const { return sig_scale8_; }

  /// Transposed, offset-u8-quantized mirrors of the signatures above, laid
  /// out code-major ([code][model]) so a per-sequence bound pass streams
  /// sequentially through all k models for each position instead of
  /// gathering one cap per model. Entries round the cap *up* onto the
  /// signed signature_quant_scale() grid — from the already-quantized
  /// model-major values, so (e − 64)·scale ≥ step·q16 ≥ cap holds
  /// entrywise. A NaN per-symbol maximum stores 255 (it must dominate any
  /// score the kernels can produce); −inf stores 0.
  std::span<const uint8_t> signature_pos_max_symbol_q(size_t symbol) const {
    return std::span<const uint8_t>(
        sig_maxsymt_q_.data() + symbol * num_models(), num_models());
  }
  std::span<const uint8_t> signature_pos_cap_q(size_t code) const {
    return std::span<const uint8_t>(sig_capt_q_.data() + code * num_models(),
                                    num_models());
  }

  /// Dense integer Kadane over the signed transposed columns — the
  /// prefilter's whole O(k) front. cols[i] is the k-wide column of
  /// position i (a signature_pos_* pointer); for every model,
  /// z[m] = max over nonempty windows [i..j] of Σ_p (cols[p][m] − 64),
  /// so z[m] · signature_quant_scale() dominates the §4.3 score on the
  /// quantized grid *including cap ordering*: caps that never chain into
  /// one window stop inflating the bound. Routed through the AVX2 kernel
  /// when available; exact either way — the recurrence is pure integer
  /// arithmetic (16-bit lanes while len·191 fits, 32-bit beyond), so
  /// kernel choice can never change a bound. len must be ≥ 1.
  void SignatureKadaneDense(const uint8_t* const* cols, size_t len,
                            int32_t* z) const;

  /// Streaming variant for online scoring: advances every model by one
  /// symbol. The arrays are parallel over models: `rows` holds each model's
  /// current row offset *local to the model* (state · alphabet_size; start
  /// streams at 0 — the root row — and keep the values across Assemble
  /// calls, they survive arena re-packs), `y`/`z` are the §4.3 running
  /// best-segment terms, `started` distinguishes "no symbol yet" from a
  /// restart. Bit-for-bit the per-model scalar DP step.
  void StepAll(SymbolId symbol, uint32_t* rows, double* y, double* z,
               uint8_t* started) const;

  /// Raw packed rows of model `m` (tests, diagnostics, .fbank
  /// serialization). `Entry::next` values are model-local row offsets
  /// (next_state · alphabet_size), not FrozenPst state ids.
  std::span<const Entry> Rows(size_t m) const {
    return std::span<const Entry>(scan_data() + base_[m], ModelEntries(m));
  }

  /// True when the AVX2 kernels are compiled in and this CPU supports them.
  static bool SimdAvailable();

  /// Forces the scalar kernels even when SIMD is available (equivalence
  /// tests, benchmark baselines).
  void set_force_scalar(bool force) { force_scalar_ = force; }
  bool force_scalar() const { return force_scalar_; }

 private:
  /// Contiguous Entry storage: a minimal vector<Entry> (resize preserves
  /// contents, which the incremental Assemble reuse depends on) whose large
  /// allocations are 2 MiB-aligned and advised as transparent-hugepage. A
  /// depth-6 bank of 64 models spans tens of MB and ScanAll's gathers touch
  /// it near-randomly, so 4 KiB pages thrash the dTLB and the scan pays a
  /// page walk per miss; 2 MiB pages cover the same arena with a few dozen
  /// TLB entries. Falls back to plain allocation when THP is unavailable.
  class EntryArena {
   public:
    EntryArena() = default;
    EntryArena(const EntryArena& other) { *this = other; }
    EntryArena& operator=(const EntryArena& other);
    EntryArena(EntryArena&& other) noexcept { *this = std::move(other); }
    EntryArena& operator=(EntryArena&& other) noexcept;
    ~EntryArena();

    Entry* data() { return data_; }
    const Entry* data() const { return data_; }
    size_t size() const { return size_; }
    const Entry& operator[](size_t i) const { return data_[i]; }
    /// Grows or shrinks to `n` entries, preserving the first
    /// min(n, size()) entries byte-for-byte. New entries are uninitialized:
    /// Assemble writes every slot it does not reuse.
    void resize(size_t n);

   private:
    Entry* data_ = nullptr;
    size_t size_ = 0;
    size_t capacity_ = 0;
  };

  friend class BankSerializer;  // .fbank save/load (pst/bank_serialization).

  size_t ModelEntries(size_t m) const {
    return static_cast<size_t>(states_[m]) * alphabet_size_;
  }
  /// Packed rows to scan: the owned arena, or the external (mmap) view
  /// installed by the .fbank loader.
  const Entry* scan_data() const {
    return external_entries_ != nullptr ? external_entries_ : entries_.data();
  }
  /// Models per block: the per-symbol inner loop keeps one active
  /// (ratio, next) row pair per model between reuses, so the block size is
  /// chosen to keep a block's hot rows L2-resident.
  size_t BlockModels() const;

  /// Bytes the signature tables of `order` would occupy for a k-model bank:
  /// Deepest tier whose tables fit signature_budget_bytes_ (per
  /// SignatureTierCostBytes); a pure function of (k, A, budget), so tier
  /// choice is deterministic and thread-count-invariant.
  SignatureTier SelectSignatureTier(size_t k, size_t alphabet) const;
  /// Recomputes model m's bound signature from its packed arena rows
  /// (works identically for assembled and mapped banks). The sig_ arrays
  /// must already be sized for the current layout and tier.
  void BuildSignature(size_t m);
  /// Sizes the sig_ arrays for the current layout and rebuilds every model
  /// (the .fbank load path, where nothing is reusable).
  void BuildAllSignatures();
  /// Rebuilds the u8 transposed tables from the per-model signatures.
  /// Must run after any signature refresh — the
  /// code-major layout interleaves all models, so slot reuse cannot keep
  /// transposed columns in place.
  void BuildTransposedSignatures();

  size_t alphabet_size_ = 0;
  /// Source snapshots (assembled banks; empty for mapped banks).
  std::vector<std::shared_ptr<const FrozenPst>> models_;
  /// Per-model automaton state counts — the layout ground truth shared by
  /// assembled and mapped banks (mapped banks have no snapshots to ask).
  std::vector<uint32_t> states_;
  /// Per-model entry offset into the arena (prefix sums of states × A).
  std::vector<size_t> base_;
  /// base_ as u32 for the kernels (total entries are checked small enough
  /// that the SIMD gathers' signed 32-bit *scaled* indices — up to
  /// 4·entry + 2 for the transition word — cannot overflow).
  std::vector<uint32_t> base32_;
  /// Packed rows: entry base[m] + state·A + s scores symbol s in `state`
  /// and names the successor row (see Entry). Empty in mapped mode.
  EntryArena entries_;
  /// Mapped mode: validated rows served from `external_storage_` (the
  /// .fbank mapping or buffer the loader keeps alive).
  const Entry* external_entries_ = nullptr;
  std::shared_ptr<const void> external_storage_;
  bool force_scalar_ = false;
  /// Bound signatures, parallel to base_: per-model overall max log-ratio,
  /// flat k·A per-symbol maxima (double — the level-1.5 DP wants the
  /// unquantized lead values), and flat k·A^order context caps in round-up
  /// kSignatureQuantStep fixed point. See the signature accessors above.
  std::vector<double> sig_rmax_;
  std::vector<double> sig_maxsym_;
  std::vector<int16_t> sig_cap_q_;
  /// Code-major, signed offset-u8 transposes of the signatures on the
  /// shared sig_scale8_ grid (see the signature_pos_* accessors).
  /// Rebuilt wholesale after every signature refresh — O(k·A^order)
  /// integer writes, noise next to arena packing.
  std::vector<uint8_t> sig_maxsymt_q_;
  std::vector<uint8_t> sig_capt_q_;
  double sig_scale8_ = 1.0;
  SignatureTier sig_tier_ = SignatureTier::kUnigram;
  size_t signature_budget_bytes_ = kDefaultSignatureBudgetBytes;
};

namespace internal {

/// Upper bound on models interleaved per block (bounds the kernels' stack
/// state arrays).
inline constexpr size_t kMaxBlockModels = 64;

/// Scalar reference kernel: scores `num_models` (≤ kMaxBlockModels) models
/// over `symbols` in lockstep. `bases` are the models' arena entry offsets.
void ScanBlockScalar(const FrozenBank::Entry* entries, const uint32_t* bases,
                     size_t num_models, const SymbolId* symbols, size_t len,
                     SimilarityResult* out);

/// Early-abandon variant of ScanBlockScalar: at adaptively scheduled
/// checkpoints each active lane is compared against
/// max(Z, max(Y, 0) + remaining · margins[m]) and dropped once that bound
/// falls below `target` (out[m].log_sim = bound, exact[m] = 0, lane
/// compacted away). Survivors produce bit-for-bit ScanBlockScalar results
/// with exact[m] = 1. margins[m] must be ≥ 0 — an admissible cap on any
/// future per-symbol X term. The schedule is a deterministic function of
/// (lanes, symbols, target): checks start dense (every 16 symbols, but
/// never before any lane's earliest provably-failable position
/// len − target/margin) and back off geometrically while nothing abandons;
/// lanes whose Z already reached the target stop being checked. Every
/// executed check applies the same admissible bound, so scheduling only
/// moves cost, never the survivor set. Returns the number of abandoned
/// lanes; `*checkpoints` accrues the executed check passes.
size_t ScanBlockScalarBounded(const FrozenBank::Entry* entries,
                              const uint32_t* bases, size_t num_models,
                              const SymbolId* symbols, size_t len,
                              const double* margins, double target,
                              SimilarityResult* out, uint8_t* exact,
                              size_t* checkpoints);

/// Dense signed Kadane over offset-u8 columns: for m < n,
/// z[m] = max over nonempty windows of Σ (cols[i][m] − 64) — the
/// prefilter's level-1 bound sweep. Pure integer arithmetic, so every
/// kernel variant is exactly equivalent.
void KadaneColumnsScalar(const uint8_t* const* cols, size_t len, size_t n,
                         int32_t* z);

#ifdef CLUSEQ_HAVE_AVX2
/// AVX2 kernel: same contract and bit-identical results, 4 models per
/// vector lane group, several groups interleaved per symbol (remainder
/// models fall through to the scalar loop).
void ScanBlockAvx2(const FrozenBank::Entry* entries, const uint32_t* bases,
                   size_t num_models, const SymbolId* symbols, size_t len,
                   SimilarityResult* out);

/// Early-abandon AVX2 kernel: same contract as ScanBlockScalarBounded but
/// abandonment is per *group* — a group of 16/8/4 interleaved models stops
/// only when every lane in it is hopeless (per-lane compaction would break
/// the fixed-width register layout), so its adaptive schedule starts at
/// the latest lane's earliest-failable position and stops checking for
/// good once any lane's Z reaches the target. Lanes that run to the end
/// are bit-for-bit ScanBlockAvx2.
size_t ScanBlockAvx2Bounded(const FrozenBank::Entry* entries,
                            const uint32_t* bases, size_t num_models,
                            const SymbolId* symbols, size_t len,
                            const double* margins, double target,
                            SimilarityResult* out, uint8_t* exact,
                            size_t* checkpoints);

/// AVX2 KadaneColumnsScalar: 16 int16 lanes per step while len·191 fits
/// int16 (len ≤ 171), 8 int32 lanes beyond; identical results (exact
/// integer arithmetic in both widths, remainder models fall through to
/// the scalar loop). Position-outer loop order — streams each column
/// sequentially and keeps per-model state in thread-local buffers; the
/// right shape when the transposed tables exceed cache and every scan
/// pays their memory bandwidth.
void KadaneColumnsAvx2(const uint8_t* const* cols, size_t len, size_t n,
                       int32_t* z);

/// Stripe-outer sibling of KadaneColumnsAvx2 (identical results): two
/// interleaved model stripes walk all positions with the Kadane state
/// held entirely in registers, eliminating the position-outer kernel's
/// per-position state stores. Wins when the transposed tables are
/// cache-resident (store throughput, not memory bandwidth, is then the
/// bottleneck); loses prefetch-friendliness on spilling tables, so
/// SignatureKadaneDense dispatches on table size.
void KadaneColumnsAvx2Striped(const uint8_t* const* cols, size_t len,
                              size_t n, int32_t* z);
#endif  // CLUSEQ_HAVE_AVX2

}  // namespace internal

}  // namespace cluseq

#endif  // CLUSEQ_PST_FROZEN_BANK_H_
