#include "pst/frozen_bank.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "obs/metrics.h"
#include "util/logging.h"

namespace cluseq {

namespace {

/// Arenas at least this large are backed by 2 MiB-aligned storage and
/// advised as hugepage (the rounding waste is bounded by one page).
constexpr size_t kHugePageBytes = 2 * 1024 * 1024;

FrozenBank::Entry* AllocateArena(size_t* capacity_entries) {
  static obs::Gauge& hugepage_gauge =
      obs::MetricsRegistry::Get().GetGauge("frozen_bank.hugepage_arena");
  const size_t bytes = *capacity_entries * sizeof(FrozenBank::Entry);
  if (bytes >= kHugePageBytes) {
    const size_t rounded =
        (bytes + kHugePageBytes - 1) / kHugePageBytes * kHugePageBytes;
    void* huge = std::aligned_alloc(kHugePageBytes, rounded);
    if (huge != nullptr) {
#if defined(__linux__)
      madvise(huge, rounded, MADV_HUGEPAGE);  // Best-effort; ENOSYS is fine.
#endif
      *capacity_entries = rounded / sizeof(FrozenBank::Entry);
      hugepage_gauge.Set(1.0);
      return static_cast<FrozenBank::Entry*>(huge);
    }
  }
  void* plain = std::malloc(bytes);
  CLUSEQ_CHECK(plain != nullptr || bytes == 0,
               "FrozenBank arena allocation failed");
  hugepage_gauge.Set(0.0);
  return static_cast<FrozenBank::Entry*>(plain);
}

}  // namespace

FrozenBank::EntryArena& FrozenBank::EntryArena::operator=(
    const EntryArena& other) {
  if (this != &other) {
    resize(other.size_);
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(Entry));
  }
  return *this;
}

FrozenBank::EntryArena& FrozenBank::EntryArena::operator=(
    EntryArena&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    capacity_ = std::exchange(other.capacity_, 0);
  }
  return *this;
}

FrozenBank::EntryArena::~EntryArena() { std::free(data_); }

void FrozenBank::EntryArena::resize(size_t n) {
  if (n > capacity_) {
    size_t capacity = n;
    Entry* fresh = AllocateArena(&capacity);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(Entry));
    std::free(data_);
    data_ = fresh;
    capacity_ = capacity;
  }
  size_ = n;
}

namespace internal {

void ScanBlockScalar(const FrozenBank::Entry* entries, const uint32_t* bases,
                     size_t num_models, const SymbolId* symbols, size_t len,
                     SimilarityResult* out) {
  // Per-model DP lanes; the inner loops carry no cross-model dependency, so
  // the m-iterations pipeline (independent gather chains) even without SIMD.
  double y[kMaxBlockModels];
  double z[kMaxBlockModels];
  uint32_t row[kMaxBlockModels];
  size_t ybegin[kMaxBlockModels];
  size_t bbegin[kMaxBlockModels];
  size_t bend[kMaxBlockModels];
  const double neg_inf = -std::numeric_limits<double>::infinity();
  for (size_t m = 0; m < num_models; ++m) {
    row[m] = bases[m];  // Root state: model-local row 0.
    z[m] = neg_inf;
    ybegin[m] = 0;
    bbegin[m] = 0;
    bend[m] = 0;
  }

  // i = 0 peeled: the reference recurrence starts Y at X_0 unconditionally
  // (and never evaluates Y_{-1} + X_0, which matters for ±inf ratios).
  {
    const uint32_t s = symbols[0];
    for (size_t m = 0; m < num_models; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      row[m] = bases[m] + e.next;
      y[m] = e.ratio;
      if (y[m] > z[m]) {
        z[m] = y[m];
        bend[m] = 1;  // bbegin stays 0.
      }
    }
  }
  for (size_t i = 1; i < len; ++i) {
    const uint32_t s = symbols[i];
    for (size_t m = 0; m < num_models; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      const double x = e.ratio;  // log X_i, background baked in.
      row[m] = bases[m] + e.next;
      const double extend = y[m] + x;
      if (extend < x) {
        y[m] = x;  // Restart: best segment ending at i is {s_i} alone.
        ybegin[m] = i;
      } else {
        y[m] = extend;
      }
      if (y[m] > z[m]) {
        z[m] = y[m];
        bbegin[m] = ybegin[m];
        bend[m] = i + 1;
      }
    }
  }
  for (size_t m = 0; m < num_models; ++m) {
    out[m].log_sim = z[m];
    out[m].best_begin = bbegin[m];
    out[m].best_end = bend[m];
  }
}

/// Earliest position at which a lane could first fail the abandon test.
/// The test needs max(Z, pos(Y) + rem·margin) < target with pos(Y) ≥ 0, so
/// rem·margin < target is necessary: for margin > 0 that means
/// i > len − target/margin; a zero-margin lane can fail anywhere.
/// Checking earlier is sound (the bound itself is always admissible) —
/// this only prunes provably useless checks.
inline double EarliestFailPosition(double margin, double target, size_t len) {
  if (!(margin > 0.0)) return 1.0;
  const double j0 = static_cast<double>(len) - target / margin;
  return j0 > 1.0 ? j0 : 1.0;
}

size_t ScanBlockScalarBounded(const FrozenBank::Entry* entries,
                              const uint32_t* bases, size_t num_models,
                              const SymbolId* symbols, size_t len,
                              const double* margins, double target,
                              SimilarityResult* out, uint8_t* exact,
                              size_t* checkpoints) {
  // Same DP lanes as ScanBlockScalar plus, per lane, its output slot (lanes
  // compact as models abandon, outputs do not) and its admissible
  // per-symbol margin. The abandon checks run on an adaptive schedule —
  // dense (every kBoundCheckMin symbols) while lanes keep abandoning,
  // geometric back-off once the survivors separate from the target — so
  // near-miss candidates die early and true survivors pay ~nothing.
  double y[kMaxBlockModels];
  double z[kMaxBlockModels];
  uint32_t row[kMaxBlockModels];
  uint32_t base[kMaxBlockModels];
  size_t ybegin[kMaxBlockModels];
  size_t bbegin[kMaxBlockModels];
  size_t bend[kMaxBlockModels];
  uint32_t slot[kMaxBlockModels];
  double margin[kMaxBlockModels];
  const double neg_inf = -std::numeric_limits<double>::infinity();
  for (size_t m = 0; m < num_models; ++m) {
    base[m] = bases[m];
    row[m] = bases[m];
    z[m] = neg_inf;
    ybegin[m] = 0;
    bbegin[m] = 0;
    bend[m] = 0;
    slot[m] = static_cast<uint32_t>(m);
    margin[m] = margins[m];
    exact[m] = 1;
  }
  size_t active = num_models;
  size_t abandoned = 0;

  // Schedule state. A target ≤ 0 can never be undercut (the bound is
  // ≥ pos(Y) ≥ 0), so the whole scan runs checkpoint-free.
  constexpr size_t kBoundCheckMin = 16;
  constexpr size_t kBoundCheckMax = 512;
  size_t interval = kBoundCheckMin;
  size_t next_check = len;
  if (target > 0.0) {
    double min_j0 = static_cast<double>(len);
    for (size_t m = 0; m < num_models; ++m) {
      const double j0 = EarliestFailPosition(margin[m], target, len);
      if (j0 < min_j0) min_j0 = j0;
    }
    next_check = min_j0 >= static_cast<double>(len)
                     ? len
                     : std::max(kBoundCheckMin, static_cast<size_t>(min_j0));
  }

  // i = 0 peeled, identical to ScanBlockScalar.
  {
    const uint32_t s = symbols[0];
    for (size_t m = 0; m < active; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      row[m] = base[m] + e.next;
      y[m] = e.ratio;
      if (y[m] > z[m]) {
        z[m] = y[m];
        bend[m] = 1;
      }
    }
  }
  for (size_t i = 1; i < len; ++i) {
    if (i >= next_check) {
      if (checkpoints != nullptr) ++*checkpoints;
      // Positions 0..i-1 are consumed; `len - i` symbols remain. Any future
      // Y either extends the current run (≤ Y_i + rem·margin) or restarts
      // inside the remainder (≤ rem·margin), so the final Z cannot exceed
      // max(Z_i, max(Y_i, 0) + rem·margin).
      const double rem = static_cast<double>(len - i);
      const size_t was_active = active;
      size_t w = 0;
      for (size_t m = 0; m < active; ++m) {
        const double peak = y[m] > 0.0 ? y[m] : 0.0;
        double ub = peak + rem * margin[m];
        if (z[m] > ub) ub = z[m];
        if (ub < target) {
          out[slot[m]].log_sim = ub;
          out[slot[m]].best_begin = bbegin[m];
          out[slot[m]].best_end = bend[m];
          exact[slot[m]] = 0;
          ++abandoned;
          continue;
        }
        if (w != m) {
          y[w] = y[m];
          z[w] = z[m];
          row[w] = row[m];
          // The base must travel with the lane: transitions rebase via it,
          // and after compaction lane index != original candidate index.
          base[w] = base[m];
          ybegin[w] = ybegin[m];
          bbegin[w] = bbegin[m];
          bend[w] = bend[m];
          slot[w] = slot[m];
          margin[w] = margin[m];
        }
        ++w;
      }
      active = w;
      if (active == 0) return abandoned;
      // Reschedule: lanes whose Z already reached the target can never be
      // abandoned (Z only grows and the bound is ≥ Z), so they drop out of
      // the earliest-fail scan; if none remain abandonable, checking is
      // over for good.
      double min_j0 = std::numeric_limits<double>::infinity();
      for (size_t m = 0; m < active; ++m) {
        if (z[m] >= target) continue;
        const double j0 = EarliestFailPosition(margin[m], target, len);
        if (j0 < min_j0) min_j0 = j0;
      }
      if (min_j0 >= static_cast<double>(len)) {
        next_check = len;
      } else {
        interval = active < was_active
                       ? kBoundCheckMin
                       : std::min(interval * 2, kBoundCheckMax);
        next_check = i + interval;
        if (static_cast<double>(next_check) < min_j0) {
          next_check = static_cast<size_t>(min_j0);
        }
      }
    }
    const uint32_t s = symbols[i];
    for (size_t m = 0; m < active; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      const double x = e.ratio;
      row[m] = base[m] + e.next;
      const double extend = y[m] + x;
      if (extend < x) {
        y[m] = x;
        ybegin[m] = i;
      } else {
        y[m] = extend;
      }
      if (y[m] > z[m]) {
        z[m] = y[m];
        bbegin[m] = ybegin[m];
        bend[m] = i + 1;
      }
    }
  }
  for (size_t m = 0; m < active; ++m) {
    out[slot[m]].log_sim = z[m];
    out[slot[m]].best_begin = bbegin[m];
    out[slot[m]].best_end = bend[m];
  }
  return abandoned;
}

void KadaneColumnsScalar(const uint8_t* const* cols, size_t len, size_t n,
                         int32_t* z) {
  for (size_t m = 0; m < n; ++m) {
    int32_t x = static_cast<int32_t>(cols[0][m]) -
                FrozenBank::kSignatureZeroPoint;
    int32_t y = x;
    int32_t best = x;
    for (size_t i = 1; i < len; ++i) {
      x = static_cast<int32_t>(cols[i][m]) - FrozenBank::kSignatureZeroPoint;
      const int32_t extend = y + x;
      y = extend < x ? x : extend;
      if (y > best) best = y;
    }
    z[m] = best;
  }
}

}  // namespace internal

void FrozenBank::SignatureKadaneDense(const uint8_t* const* cols, size_t len,
                                      int32_t* z) const {
  const size_t k = num_models();
  if (k == 0 || len == 0) return;
#ifdef CLUSEQ_HAVE_AVX2
  if (!force_scalar_ && SimdAvailable()) {
    // Cache-resident transposed tables make the dense pass store-bound,
    // where the register-resident striped kernel wins; tables past this
    // size pay memory bandwidth per scan and want the position-outer
    // kernel's sequential column streaming instead. Both compute the
    // same exact integer recurrence.
    constexpr size_t kStripedKadaneMaxTableBytes = size_t{4} << 20;
    const size_t table_bytes = sig_maxsymt_q_.size() + sig_capt_q_.size();
    if (table_bytes <= kStripedKadaneMaxTableBytes) {
      internal::KadaneColumnsAvx2Striped(cols, len, k, z);
    } else {
      internal::KadaneColumnsAvx2(cols, len, k, z);
    }
    return;
  }
#endif
  internal::KadaneColumnsScalar(cols, len, k, z);
}

bool FrozenBank::SimdAvailable() {
#ifdef CLUSEQ_HAVE_AVX2
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

FrozenBank::AssembleStats FrozenBank::Assemble(
    std::vector<std::shared_ptr<const FrozenPst>> models) {
  AssembleStats stats;
  size_t alphabet = alphabet_size_;
  for (const auto& model : models) {
    CLUSEQ_CHECK(model != nullptr && !model->empty(),
                 "FrozenBank models must be non-empty snapshots");
    if (alphabet == 0) alphabet = model->alphabet_size();
    CLUSEQ_CHECK(model->alphabet_size() == alphabet,
                 "FrozenBank models must share one alphabet_size");
  }

  // New layout: prefix sums of each model's (states × alphabet) extent.
  std::vector<size_t> base(models.size());
  size_t total = 0;
  for (size_t m = 0; m < models.size(); ++m) {
    base[m] = total;
    total += models[m]->num_states() * alphabet;
  }
  // The SIMD transition gather addresses entry g at scaled signed 32-bit
  // index 4·g + 2 (see frozen_bank_avx2.cc), so that — not 2^31 entries —
  // bounds the arena. Still ~8.6 GiB of packed rows, far beyond any real
  // bank.
  CLUSEQ_CHECK(
      total <= static_cast<size_t>(std::numeric_limits<int32_t>::max() / 4),
      "FrozenBank arena exceeds the gather-index range");

  // A slot is reusable in place when the same snapshot object sits at the
  // same offset as in the previous layout — its rows are already correct,
  // byte for byte. (vector::resize may still relocate the storage; contents
  // are preserved either way.) A mapped bank has no snapshots, so nothing
  // reuses and the assemble below rebuilds an owned arena.
  std::vector<char> reuse(models.size(), 0);
  for (size_t m = 0; m < models.size(); ++m) {
    reuse[m] = alphabet == alphabet_size_ && m < models_.size() &&
               models_[m] == models[m] && base[m] == base_[m];
  }
  external_entries_ = nullptr;
  external_storage_.reset();

  entries_.resize(total);
  for (size_t m = 0; m < models.size(); ++m) {
    if (reuse[m]) {
      ++stats.models_reused;
      continue;
    }
    ++stats.models_written;
    const FrozenPst& model = *models[m];
    const std::span<const double> src_ratio = model.log_ratio_table();
    const std::span<const FrozenPst::State> src_next =
        model.transition_table();
    // Transitions are rebased from state ids to model-local row offsets so
    // one entry both scores the symbol and names the next row.
    Entry* dst = entries_.data() + base[m];
    for (size_t e = 0; e < src_next.size(); ++e) {
      dst[e] = Entry{src_ratio[e],
                     src_next[e] * static_cast<uint32_t>(alphabet), 0};
    }
  }

  alphabet_size_ = alphabet;
  models_ = std::move(models);
  states_.resize(models_.size());
  for (size_t m = 0; m < models_.size(); ++m) {
    states_[m] = static_cast<uint32_t>(models_[m]->num_states());
  }
  base_ = std::move(base);
  base32_.resize(base_.size());
  for (size_t m = 0; m < base_.size(); ++m) {
    base32_[m] = static_cast<uint32_t>(base_[m]);
  }

  // Bound signatures ride the same reuse logic: a slot whose rows were kept
  // byte-identical keeps its signature (flat per-model indexing is stable
  // because reuse implies an unchanged alphabet and slot index). A tier
  // change reshapes the per-model tables, so it forces a full signature
  // rebuild even where arena rows were reused.
  const SignatureTier tier = SelectSignatureTier(models_.size(), alphabet);
  const bool tier_changed = tier != sig_tier_;
  sig_tier_ = tier;
  sig_rmax_.resize(models_.size());
  sig_maxsym_.resize(models_.size() * alphabet);
  sig_cap_q_.resize(models_.size() * signature_code_space());
  for (size_t m = 0; m < models_.size(); ++m) {
    if (!reuse[m] || tier_changed) BuildSignature(m);
  }
  BuildTransposedSignatures();

  static obs::Counter& assembles =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.assembles");
  static obs::Counter& written =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.models_written");
  static obs::Counter& reused =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.models_reused");
  static obs::Gauge& arena_bytes =
      obs::MetricsRegistry::Get().GetGauge("frozen_bank.arena_bytes");
  assembles.Increment();
  written.Add(stats.models_written);
  reused.Add(stats.models_reused);
  arena_bytes.Set(static_cast<double>(entries_.size() * sizeof(Entry)));
  return stats;
}

double FrozenBank::SignatureTierCostBytes(size_t k, size_t alphabet,
                                          size_t order) {
  // Computed in doubles so huge alphabets cannot overflow the size
  // arithmetic. Per (model, code) entry: 2 bytes model-major int16 +
  // 1 byte transposed uint8; plus the A-wide per-symbol tables (double
  // model-major + uint8 transpose).
  const double kd = static_cast<double>(k);
  const double a = static_cast<double>(alphabet);
  double cs = 1.0;
  for (size_t o = 0; o < order; ++o) cs *= a;
  return kd * cs * (sizeof(int16_t) + 1) + kd * a * (sizeof(double) + 1);
}

FrozenBank::SignatureTier FrozenBank::SelectSignatureTier(
    size_t k, size_t alphabet) const {
  if (k == 0 || alphabet == 0) return SignatureTier::kUnigram;
  const double budget = static_cast<double>(signature_budget_bytes_);
  if (SignatureTierCostBytes(k, alphabet, 3) <= budget) {
    return SignatureTier::kTrigram;
  }
  if (SignatureTierCostBytes(k, alphabet, 2) <= budget) {
    return SignatureTier::kBigram;
  }
  return SignatureTier::kUnigram;
}

namespace {

// Rounds a log-ratio up onto the kSignatureQuantStep fixed-point grid.
// Round-up keeps the cap admissible; the explicit product check repairs
// the rare case where the scaled ceil still lands a hair below v (the
// multiply itself rounds). NaN maps to the fold identity — a NaN ratio
// never wins the `>` max-folds below, matching the double code it
// replaces — and -inf clamps upward to the grid floor, which only loosens
// the cap. Positive saturation is unreachable (see kSignatureQuantStep).
int16_t QuantizeCap16(double v) {
  constexpr int16_t kMin = std::numeric_limits<int16_t>::min();
  if (std::isnan(v)) return kMin;
  const double q = std::ceil(v * 256.0);
  if (q <= -32768.0) return kMin;
  if (q >= 32767.0) return std::numeric_limits<int16_t>::max();
  int32_t qi = static_cast<int32_t>(q);
  if (static_cast<double>(qi) * FrozenBank::kSignatureQuantStep < v) ++qi;
  return static_cast<int16_t>(qi);
}

}  // namespace

void FrozenBank::BuildSignature(size_t m) {
  const size_t a_size = alphabet_size_;
  const size_t ns = states_[m];
  const Entry* rows = scan_data() + base_[m];
  const double neg_inf = -std::numeric_limits<double>::infinity();
  constexpr int16_t kQMin = std::numeric_limits<int16_t>::min();

  double* maxsym = sig_maxsym_.data() + m * a_size;
  if (m < models_.size() && models_[m] != nullptr &&
      !models_[m]->max_symbol_log_ratio().empty()) {
    // Assembled bank: the per-symbol maxima were precomputed at freeze time.
    const std::span<const double> src = models_[m]->max_symbol_log_ratio();
    std::copy(src.begin(), src.end(), maxsym);
    sig_rmax_[m] = models_[m]->max_log_ratio();
  } else {
    // Mapped bank: one pass over the packed rows.
    std::fill(maxsym, maxsym + a_size, neg_inf);
    for (size_t u = 0; u < ns; ++u) {
      const Entry* row = rows + u * a_size;
      for (size_t a = 0; a < a_size; ++a) {
        if (row[a].ratio > maxsym[a]) maxsym[a] = row[a].ratio;
      }
    }
    double rmax = neg_inf;
    for (size_t a = 0; a < a_size; ++a) {
      if (maxsym[a] > rmax) rmax = maxsym[a];
    }
    sig_rmax_[m] = rmax;
  }

  if (sig_tier_ == SignatureTier::kUnigram) {
    // Unigram tier: the cap table is just the per-symbol maxima quantized,
    // so every consumer reads sig_cap_q_ the same way regardless of tier.
    int16_t* cap1 = sig_cap_q_.data() + m * a_size;
    for (size_t a = 0; a < a_size; ++a) cap1[a] = QuantizeCap16(maxsym[a]);
    return;
  }
  if (sig_tier_ == SignatureTier::kBigram) {
    // cap2[b·A + a] = max of ratio(v, a) over v in the image of Step(·, b).
    // That image is small — every state reached by consuming b has a label
    // ending in b (or is the root), and those sets are disjoint across b,
    // so Σ_b |image_b| ≤ states + A. Folding each distinct successor row
    // once per b (epoch-stamp dedup) keeps construction at O(states · A),
    // the same order as packing the rows in the first place.
    int16_t* cap2 = sig_cap_q_.data() + m * a_size * a_size;
    std::fill(cap2, cap2 + a_size * a_size, kQMin);
    std::vector<uint32_t> stamp(ns, 0);
    for (size_t b = 0; b < a_size; ++b) {
      const uint32_t epoch = static_cast<uint32_t>(b) + 1;
      int16_t* caps = cap2 + b * a_size;
      for (size_t u = 0; u < ns; ++u) {
        const uint32_t v = rows[u * a_size + b].next / a_size;
        if (stamp[v] == epoch) continue;
        stamp[v] = epoch;
        const Entry* vrow = rows + static_cast<size_t>(v) * a_size;
        for (size_t a = 0; a < a_size; ++a) {
          // Quantization is monotone, so folding quantized values gives
          // exactly the quantized max — still an admissible cap.
          const int16_t qv = QuantizeCap16(vrow[a].ratio);
          if (qv > caps[a]) caps[a] = qv;
        }
      }
    }
    return;
  }
  // Trigram tier: cap3[(c·A + b)·A + a] = max of ratio(w, a) over w in the
  // two-step image Step(Step(·, c), b). Admissible for any position whose
  // two preceding symbols are (c, b), whatever the state before them. The
  // one-step image of c is collected once (epoch-stamp dedup, as in cap2),
  // then stepped on b with a second stamp per (c, b) — Σ|images| stays
  // near states·A for suffix-automaton-shaped transition structure, and
  // the tier is budget-gated to small k·A³ anyway.
  int16_t* cap3 = sig_cap_q_.data() + m * a_size * a_size * a_size;
  std::fill(cap3, cap3 + a_size * a_size * a_size, kQMin);
  std::vector<uint32_t> stamp1(ns, 0);
  std::vector<uint32_t> stamp2(ns, 0);
  std::vector<uint32_t> image;
  image.reserve(std::min<size_t>(ns, 256));
  for (size_t c = 0; c < a_size; ++c) {
    image.clear();
    const uint32_t epoch1 = static_cast<uint32_t>(c) + 1;
    for (size_t u = 0; u < ns; ++u) {
      const uint32_t v = rows[u * a_size + c].next / a_size;
      if (stamp1[v] == epoch1) continue;
      stamp1[v] = epoch1;
      image.push_back(v);
    }
    for (size_t b = 0; b < a_size; ++b) {
      const uint32_t epoch2 = static_cast<uint32_t>(c * a_size + b) + 1;
      int16_t* caps = cap3 + (c * a_size + b) * a_size;
      for (const uint32_t v : image) {
        const uint32_t w = rows[static_cast<size_t>(v) * a_size + b].next /
                           a_size;
        if (stamp2[w] == epoch2) continue;
        stamp2[w] = epoch2;
        const Entry* wrow = rows + static_cast<size_t>(w) * a_size;
        for (size_t a = 0; a < a_size; ++a) {
          const int16_t qv = QuantizeCap16(wrow[a].ratio);
          if (qv > caps[a]) caps[a] = qv;
        }
      }
    }
  }
}

void FrozenBank::BuildAllSignatures() {
  const size_t k = base_.size();
  sig_tier_ = SelectSignatureTier(k, alphabet_size_);
  sig_rmax_.resize(k);
  sig_maxsym_.resize(k * alphabet_size_);
  sig_cap_q_.resize(k * signature_code_space());
  for (size_t m = 0; m < k; ++m) BuildSignature(m);
  BuildTransposedSignatures();
}

void FrozenBank::BuildTransposedSignatures() {
  const size_t k = base_.size();
  const size_t a_size = alphabet_size_;
  const size_t cs = signature_code_space();

  // Pass 0: pick the bank-global signed 8-bit grid. The positive side
  // (191 levels above the zero point) must cover the largest positive
  // value the transposed tables will ever hold — both the raw per-symbol
  // maxima (doubles) and the already-quantized caps. The (1 + 2^-40)
  // headroom guarantees 191 * scale >= gmax even after the division
  // rounds, so the bump loop below always terminates at 191.
  double gmax = 0.0;
  for (const double v : sig_maxsym_) {
    if (std::isfinite(v) && v > gmax) gmax = v;
  }
  int16_t q16max = 0;
  for (const int16_t q : sig_cap_q_) {
    if (q > q16max) q16max = q;
  }
  if (q16max > 0) {
    gmax = std::max(gmax, static_cast<double>(q16max) * kSignatureQuantStep);
  }
  constexpr int32_t kZp = kSignatureZeroPoint;
  constexpr int32_t kPos = kSignaturePosLevels;
  sig_scale8_ = gmax > 0.0 ? gmax * (1.0 + 0x1p-40) / kPos : 1.0;
  const double scale = sig_scale8_;
  const double inv_scale = 1.0 / scale;
  // Round-up quantization onto the signed offset grid: stored byte =
  // clamp(ceil(v / scale), −64, 191) + 64, so (byte − 64) · scale ≥ v
  // always — the bump loop repairs any downward FP rounding, and the low
  // clamp only raises a value (admissible; a deep negative cap just
  // breaks windows a little less hard). NaN maps to 255: it must
  // dominate any score the scan kernels can produce, because a NaN X
  // freezes their Y lane and the best window then closed before the NaN
  // — a window our Kadane sweep also saw. −inf maps to 0.
  const auto quant_s8 = [scale, inv_scale](double v) -> uint8_t {
    if (std::isnan(v)) return 255;
    if (!(v > static_cast<double>(-kZp) * scale)) return 0;
    const double q = std::ceil(v * inv_scale);
    int32_t u = q >= static_cast<double>(kPos) ? kPos
                                               : static_cast<int32_t>(q);
    if (u < -kZp) u = -kZp;
    while (u < kPos && static_cast<double>(u) * scale < v) ++u;
    return static_cast<uint8_t>(u + kZp);
  };

  // Pass 1: per-symbol maxima, transposed to symbol-major offset-u8 so
  // the dense level-1 pass streams one contiguous k-wide column per lead
  // position.
  sig_maxsymt_q_.resize(k * a_size);
  for (size_t m = 0; m < k; ++m) {
    const double* src = sig_maxsym_.data() + m * a_size;
    for (size_t a = 0; a < a_size; ++a) {
      sig_maxsymt_q_[a * k + m] = quant_s8(src[a]);
    }
  }

  // Pass 2: cap tables, code-major offset-u8. Quantized FROM the int16
  // values — q16 * kSignatureQuantStep is exact in double (both are
  // powers of two away from an integer), so (e − 64) * scale >= q16 *
  // step >= true cap and the dominance chain the refine bounds rely on
  // holds entrywise. Unlike the positive-clamped mirror this replaces,
  // the signed grid keeps the *negative* caps too — that is what lets
  // the dense Kadane sweep see windows break.
  sig_capt_q_.resize(k * cs);
  for (size_t m = 0; m < k; ++m) {
    const int16_t* src = sig_cap_q_.data() + m * cs;
    for (size_t code = 0; code < cs; ++code) {
      sig_capt_q_[code * k + m] = quant_s8(
          static_cast<double>(src[code]) * kSignatureQuantStep);
    }
  }
}

size_t FrozenBank::BlockModels() const {
  // Every in-flight model holds one (ratio, next) row pair hot. Budget half
  // of a typical 512 KiB L2 for a handful of recently-touched rows per
  // model; depth-major state numbering keeps those rows adjacent.
  constexpr size_t kCacheBudgetBytes = 256 * 1024;
  constexpr size_t kAssumedHotRowsPerModel = 8;
  const size_t row_bytes = alphabet_size_ * sizeof(Entry);
  const size_t denom = std::max<size_t>(
      1, row_bytes * kAssumedHotRowsPerModel);
  return std::clamp<size_t>(kCacheBudgetBytes / denom, 8,
                            internal::kMaxBlockModels);
}

void FrozenBank::ScanAll(std::span<const SymbolId> symbols,
                         SimilarityResult* results) const {
  const size_t k = num_models();
  if (symbols.empty()) {
    for (size_t m = 0; m < k; ++m) {
      results[m] = SimilarityResult{};
      results[m].log_sim = -std::numeric_limits<double>::infinity();
    }
    return;
  }
#ifdef CLUSEQ_HAVE_AVX2
  const bool use_simd = !force_scalar_ && SimdAvailable();
#else
  const bool use_simd = false;
#endif
  // One shard-striped fetch_add per ScanAll call — amortized over len × k
  // scored symbols, so the hot inner loops stay untouched.
  static obs::Counter& scan_symbols =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scan_symbols");
  static obs::Counter& scans_simd =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scans_simd");
  static obs::Counter& scans_scalar =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scans_scalar");
  scan_symbols.Add(symbols.size() * k);
  (use_simd ? scans_simd : scans_scalar).Increment();
  const size_t block = BlockModels();
  for (size_t m0 = 0; m0 < k; m0 += block) {
    const size_t mb = std::min(block, k - m0);
#ifdef CLUSEQ_HAVE_AVX2
    if (use_simd) {
      internal::ScanBlockAvx2(scan_data(), base32_.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
      continue;
    }
#else
    (void)use_simd;
#endif
    internal::ScanBlockScalar(scan_data(), base32_.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
  }
}

namespace {

// Scratch for the sparse scans: the candidates' bases (and margins)
// compacted into the dense arrays the block kernels expect. thread_local
// because ScanCandidates* runs concurrently on pool workers.
struct SparseScanScratch {
  std::vector<uint32_t> bases;
  std::vector<double> margins;
};

SparseScanScratch& GetSparseScratch() {
  static thread_local SparseScanScratch scratch;
  return scratch;
}

}  // namespace

void FrozenBank::ScanCandidates(std::span<const SymbolId> symbols,
                                std::span<const uint32_t> candidates,
                                SimilarityResult* results) const {
  const size_t k = candidates.size();
  if (k == 0) return;
  if (symbols.empty()) {
    for (size_t j = 0; j < k; ++j) {
      results[j] = SimilarityResult{};
      results[j].log_sim = -std::numeric_limits<double>::infinity();
    }
    return;
  }
#ifdef CLUSEQ_HAVE_AVX2
  const bool use_simd = !force_scalar_ && SimdAvailable();
#else
  const bool use_simd = false;
#endif
  SparseScanScratch& scratch = GetSparseScratch();
  scratch.bases.resize(k);
  for (size_t j = 0; j < k; ++j) scratch.bases[j] = base32_[candidates[j]];

  static obs::Counter& scan_symbols =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scan_symbols");
  scan_symbols.Add(symbols.size() * k);
  const size_t block = BlockModels();
  for (size_t m0 = 0; m0 < k; m0 += block) {
    const size_t mb = std::min(block, k - m0);
#ifdef CLUSEQ_HAVE_AVX2
    if (use_simd) {
      internal::ScanBlockAvx2(scan_data(), scratch.bases.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
      continue;
    }
#else
    (void)use_simd;
#endif
    internal::ScanBlockScalar(scan_data(), scratch.bases.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
  }
}

size_t FrozenBank::ScanCandidatesBounded(std::span<const SymbolId> symbols,
                                         std::span<const uint32_t> candidates,
                                         double target,
                                         SimilarityResult* results,
                                         uint8_t* exact,
                                         std::span<const double> margins,
                                         size_t* checkpoints) const {
  const size_t k = candidates.size();
  if (k == 0) return 0;
  if (symbols.empty()) {
    for (size_t j = 0; j < k; ++j) {
      results[j] = SimilarityResult{};
      results[j].log_sim = -std::numeric_limits<double>::infinity();
      exact[j] = 1;
    }
    return 0;
  }
#ifdef CLUSEQ_HAVE_AVX2
  const bool use_simd = !force_scalar_ && SimdAvailable();
#else
  const bool use_simd = false;
#endif
  SparseScanScratch& scratch = GetSparseScratch();
  scratch.bases.resize(k);
  scratch.margins.resize(k);
  for (size_t j = 0; j < k; ++j) {
    const uint32_t c = candidates[j];
    scratch.bases[j] = base32_[c];
    // Admissible per-symbol increment for the remaining-stream bound; the
    // kernels require it nonnegative (a run can always restart empty).
    // Callers with a tighter per-candidate cap (the prefilter's
    // sequence-adaptive margins) pass it in; the model-wide max is the
    // fallback.
    scratch.margins[j] =
        margins.empty() ? (sig_rmax_[c] > 0.0 ? sig_rmax_[c] : 0.0)
                        : margins[j];
  }

  static obs::Counter& scan_symbols =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scan_symbols");
  scan_symbols.Add(symbols.size() * k);
  size_t abandoned = 0;
  size_t checks = 0;
  const size_t block = BlockModels();
  for (size_t m0 = 0; m0 < k; m0 += block) {
    const size_t mb = std::min(block, k - m0);
#ifdef CLUSEQ_HAVE_AVX2
    if (use_simd) {
      abandoned += internal::ScanBlockAvx2Bounded(
          scan_data(), scratch.bases.data() + m0, mb, symbols.data(),
          symbols.size(), scratch.margins.data() + m0, target, results + m0,
          exact + m0, &checks);
      continue;
    }
#else
    (void)use_simd;
#endif
    abandoned += internal::ScanBlockScalarBounded(
        scan_data(), scratch.bases.data() + m0, mb, symbols.data(),
        symbols.size(), scratch.margins.data() + m0, target, results + m0,
        exact + m0, &checks);
  }
  if (checkpoints != nullptr) *checkpoints += checks;
  return abandoned;
}

void FrozenBank::StepAll(SymbolId symbol, uint32_t* rows, double* y,
                         double* z, uint8_t* started) const {
  const size_t k = num_models();
  const Entry* entries = scan_data();
  for (size_t m = 0; m < k; ++m) {
    const Entry& e = entries[base_[m] + rows[m] + symbol];
    const double x = e.ratio;
    rows[m] = e.next;  // Stays model-local: survives arena re-packs.
    if (!started[m] || y[m] + x < x) {
      y[m] = x;
    } else {
      y[m] += x;
    }
    started[m] = 1;
    z[m] = std::max(z[m], y[m]);
  }
}

}  // namespace cluseq
