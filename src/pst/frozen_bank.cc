#include "pst/frozen_bank.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "obs/metrics.h"
#include "util/logging.h"

namespace cluseq {

namespace {

/// Arenas at least this large are backed by 2 MiB-aligned storage and
/// advised as hugepage (the rounding waste is bounded by one page).
constexpr size_t kHugePageBytes = 2 * 1024 * 1024;

FrozenBank::Entry* AllocateArena(size_t* capacity_entries) {
  static obs::Gauge& hugepage_gauge =
      obs::MetricsRegistry::Get().GetGauge("frozen_bank.hugepage_arena");
  const size_t bytes = *capacity_entries * sizeof(FrozenBank::Entry);
  if (bytes >= kHugePageBytes) {
    const size_t rounded =
        (bytes + kHugePageBytes - 1) / kHugePageBytes * kHugePageBytes;
    void* huge = std::aligned_alloc(kHugePageBytes, rounded);
    if (huge != nullptr) {
#if defined(__linux__)
      madvise(huge, rounded, MADV_HUGEPAGE);  // Best-effort; ENOSYS is fine.
#endif
      *capacity_entries = rounded / sizeof(FrozenBank::Entry);
      hugepage_gauge.Set(1.0);
      return static_cast<FrozenBank::Entry*>(huge);
    }
  }
  void* plain = std::malloc(bytes);
  CLUSEQ_CHECK(plain != nullptr || bytes == 0,
               "FrozenBank arena allocation failed");
  hugepage_gauge.Set(0.0);
  return static_cast<FrozenBank::Entry*>(plain);
}

}  // namespace

FrozenBank::EntryArena& FrozenBank::EntryArena::operator=(
    const EntryArena& other) {
  if (this != &other) {
    resize(other.size_);
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(Entry));
  }
  return *this;
}

FrozenBank::EntryArena& FrozenBank::EntryArena::operator=(
    EntryArena&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    capacity_ = std::exchange(other.capacity_, 0);
  }
  return *this;
}

FrozenBank::EntryArena::~EntryArena() { std::free(data_); }

void FrozenBank::EntryArena::resize(size_t n) {
  if (n > capacity_) {
    size_t capacity = n;
    Entry* fresh = AllocateArena(&capacity);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(Entry));
    std::free(data_);
    data_ = fresh;
    capacity_ = capacity;
  }
  size_ = n;
}

namespace internal {

void ScanBlockScalar(const FrozenBank::Entry* entries, const uint32_t* bases,
                     size_t num_models, const SymbolId* symbols, size_t len,
                     SimilarityResult* out) {
  // Per-model DP lanes; the inner loops carry no cross-model dependency, so
  // the m-iterations pipeline (independent gather chains) even without SIMD.
  double y[kMaxBlockModels];
  double z[kMaxBlockModels];
  uint32_t row[kMaxBlockModels];
  size_t ybegin[kMaxBlockModels];
  size_t bbegin[kMaxBlockModels];
  size_t bend[kMaxBlockModels];
  const double neg_inf = -std::numeric_limits<double>::infinity();
  for (size_t m = 0; m < num_models; ++m) {
    row[m] = bases[m];  // Root state: model-local row 0.
    z[m] = neg_inf;
    ybegin[m] = 0;
    bbegin[m] = 0;
    bend[m] = 0;
  }

  // i = 0 peeled: the reference recurrence starts Y at X_0 unconditionally
  // (and never evaluates Y_{-1} + X_0, which matters for ±inf ratios).
  {
    const uint32_t s = symbols[0];
    for (size_t m = 0; m < num_models; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      row[m] = bases[m] + e.next;
      y[m] = e.ratio;
      if (y[m] > z[m]) {
        z[m] = y[m];
        bend[m] = 1;  // bbegin stays 0.
      }
    }
  }
  for (size_t i = 1; i < len; ++i) {
    const uint32_t s = symbols[i];
    for (size_t m = 0; m < num_models; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      const double x = e.ratio;  // log X_i, background baked in.
      row[m] = bases[m] + e.next;
      const double extend = y[m] + x;
      if (extend < x) {
        y[m] = x;  // Restart: best segment ending at i is {s_i} alone.
        ybegin[m] = i;
      } else {
        y[m] = extend;
      }
      if (y[m] > z[m]) {
        z[m] = y[m];
        bbegin[m] = ybegin[m];
        bend[m] = i + 1;
      }
    }
  }
  for (size_t m = 0; m < num_models; ++m) {
    out[m].log_sim = z[m];
    out[m].best_begin = bbegin[m];
    out[m].best_end = bend[m];
  }
}

size_t ScanBlockScalarBounded(const FrozenBank::Entry* entries,
                              const uint32_t* bases, size_t num_models,
                              const SymbolId* symbols, size_t len,
                              const double* margins, double target,
                              SimilarityResult* out, uint8_t* exact) {
  // Same DP lanes as ScanBlockScalar plus, per lane, its output slot (lanes
  // compact as models abandon, outputs do not) and its admissible
  // per-symbol margin. The abandon check runs every 64 symbols: O(active)
  // work amortized over 64 · active DP steps, so survivors pay ~nothing.
  double y[kMaxBlockModels];
  double z[kMaxBlockModels];
  uint32_t row[kMaxBlockModels];
  uint32_t base[kMaxBlockModels];
  size_t ybegin[kMaxBlockModels];
  size_t bbegin[kMaxBlockModels];
  size_t bend[kMaxBlockModels];
  uint32_t slot[kMaxBlockModels];
  double margin[kMaxBlockModels];
  const double neg_inf = -std::numeric_limits<double>::infinity();
  for (size_t m = 0; m < num_models; ++m) {
    base[m] = bases[m];
    row[m] = bases[m];
    z[m] = neg_inf;
    ybegin[m] = 0;
    bbegin[m] = 0;
    bend[m] = 0;
    slot[m] = static_cast<uint32_t>(m);
    margin[m] = margins[m];
    exact[m] = 1;
  }
  size_t active = num_models;
  size_t abandoned = 0;

  // i = 0 peeled, identical to ScanBlockScalar.
  {
    const uint32_t s = symbols[0];
    for (size_t m = 0; m < active; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      row[m] = base[m] + e.next;
      y[m] = e.ratio;
      if (y[m] > z[m]) {
        z[m] = y[m];
        bend[m] = 1;
      }
    }
  }
  for (size_t i = 1; i < len; ++i) {
    if ((i & 63u) == 0) {
      // Positions 0..i-1 are consumed; `len - i` symbols remain. Any future
      // Y either extends the current run (≤ Y_i + rem·margin) or restarts
      // inside the remainder (≤ rem·margin), so the final Z cannot exceed
      // max(Z_i, max(Y_i, 0) + rem·margin).
      const double rem = static_cast<double>(len - i);
      size_t w = 0;
      for (size_t m = 0; m < active; ++m) {
        const double peak = y[m] > 0.0 ? y[m] : 0.0;
        double ub = peak + rem * margin[m];
        if (z[m] > ub) ub = z[m];
        if (ub < target) {
          out[slot[m]].log_sim = ub;
          out[slot[m]].best_begin = bbegin[m];
          out[slot[m]].best_end = bend[m];
          exact[slot[m]] = 0;
          ++abandoned;
          continue;
        }
        if (w != m) {
          y[w] = y[m];
          z[w] = z[m];
          row[w] = row[m];
          // The base must travel with the lane: transitions rebase via it,
          // and after compaction lane index != original candidate index.
          base[w] = base[m];
          ybegin[w] = ybegin[m];
          bbegin[w] = bbegin[m];
          bend[w] = bend[m];
          slot[w] = slot[m];
          margin[w] = margin[m];
        }
        ++w;
      }
      active = w;
      if (active == 0) return abandoned;
    }
    const uint32_t s = symbols[i];
    for (size_t m = 0; m < active; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      const double x = e.ratio;
      row[m] = base[m] + e.next;
      const double extend = y[m] + x;
      if (extend < x) {
        y[m] = x;
        ybegin[m] = i;
      } else {
        y[m] = extend;
      }
      if (y[m] > z[m]) {
        z[m] = y[m];
        bbegin[m] = ybegin[m];
        bend[m] = i + 1;
      }
    }
  }
  for (size_t m = 0; m < active; ++m) {
    out[slot[m]].log_sim = z[m];
    out[slot[m]].best_begin = bbegin[m];
    out[slot[m]].best_end = bend[m];
  }
  return abandoned;
}

}  // namespace internal

bool FrozenBank::SimdAvailable() {
#ifdef CLUSEQ_HAVE_AVX2
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

FrozenBank::AssembleStats FrozenBank::Assemble(
    std::vector<std::shared_ptr<const FrozenPst>> models) {
  AssembleStats stats;
  size_t alphabet = alphabet_size_;
  for (const auto& model : models) {
    CLUSEQ_CHECK(model != nullptr && !model->empty(),
                 "FrozenBank models must be non-empty snapshots");
    if (alphabet == 0) alphabet = model->alphabet_size();
    CLUSEQ_CHECK(model->alphabet_size() == alphabet,
                 "FrozenBank models must share one alphabet_size");
  }

  // New layout: prefix sums of each model's (states × alphabet) extent.
  std::vector<size_t> base(models.size());
  size_t total = 0;
  for (size_t m = 0; m < models.size(); ++m) {
    base[m] = total;
    total += models[m]->num_states() * alphabet;
  }
  // The SIMD transition gather addresses entry g at scaled signed 32-bit
  // index 4·g + 2 (see frozen_bank_avx2.cc), so that — not 2^31 entries —
  // bounds the arena. Still ~8.6 GiB of packed rows, far beyond any real
  // bank.
  CLUSEQ_CHECK(
      total <= static_cast<size_t>(std::numeric_limits<int32_t>::max() / 4),
      "FrozenBank arena exceeds the gather-index range");

  // A slot is reusable in place when the same snapshot object sits at the
  // same offset as in the previous layout — its rows are already correct,
  // byte for byte. (vector::resize may still relocate the storage; contents
  // are preserved either way.) A mapped bank has no snapshots, so nothing
  // reuses and the assemble below rebuilds an owned arena.
  std::vector<char> reuse(models.size(), 0);
  for (size_t m = 0; m < models.size(); ++m) {
    reuse[m] = alphabet == alphabet_size_ && m < models_.size() &&
               models_[m] == models[m] && base[m] == base_[m];
  }
  external_entries_ = nullptr;
  external_storage_.reset();

  entries_.resize(total);
  for (size_t m = 0; m < models.size(); ++m) {
    if (reuse[m]) {
      ++stats.models_reused;
      continue;
    }
    ++stats.models_written;
    const FrozenPst& model = *models[m];
    const std::span<const double> src_ratio = model.log_ratio_table();
    const std::span<const FrozenPst::State> src_next =
        model.transition_table();
    // Transitions are rebased from state ids to model-local row offsets so
    // one entry both scores the symbol and names the next row.
    Entry* dst = entries_.data() + base[m];
    for (size_t e = 0; e < src_next.size(); ++e) {
      dst[e] = Entry{src_ratio[e],
                     src_next[e] * static_cast<uint32_t>(alphabet), 0};
    }
  }

  alphabet_size_ = alphabet;
  models_ = std::move(models);
  states_.resize(models_.size());
  for (size_t m = 0; m < models_.size(); ++m) {
    states_[m] = static_cast<uint32_t>(models_[m]->num_states());
  }
  base_ = std::move(base);
  base32_.resize(base_.size());
  for (size_t m = 0; m < base_.size(); ++m) {
    base32_[m] = static_cast<uint32_t>(base_[m]);
  }

  // Bound signatures ride the same reuse logic: a slot whose rows were kept
  // byte-identical keeps its signature (flat per-model indexing is stable
  // because reuse implies an unchanged alphabet and slot index).
  sig_cap2_enabled_ = alphabet <= kMaxBigramAlphabet;
  sig_rmax_.resize(models_.size());
  sig_maxsym_.resize(models_.size() * alphabet);
  if (sig_cap2_enabled_) {
    sig_cap2_.resize(models_.size() * alphabet * alphabet);
  } else {
    sig_cap2_.clear();
  }
  for (size_t m = 0; m < models_.size(); ++m) {
    if (!reuse[m]) BuildSignature(m);
  }
  BuildTransposedSignatures();

  static obs::Counter& assembles =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.assembles");
  static obs::Counter& written =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.models_written");
  static obs::Counter& reused =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.models_reused");
  static obs::Gauge& arena_bytes =
      obs::MetricsRegistry::Get().GetGauge("frozen_bank.arena_bytes");
  assembles.Increment();
  written.Add(stats.models_written);
  reused.Add(stats.models_reused);
  arena_bytes.Set(static_cast<double>(entries_.size() * sizeof(Entry)));
  return stats;
}

void FrozenBank::BuildSignature(size_t m) {
  const size_t a_size = alphabet_size_;
  const size_t ns = states_[m];
  const Entry* rows = scan_data() + base_[m];
  const double neg_inf = -std::numeric_limits<double>::infinity();

  double* maxsym = sig_maxsym_.data() + m * a_size;
  if (m < models_.size() && models_[m] != nullptr &&
      !models_[m]->max_symbol_log_ratio().empty()) {
    // Assembled bank: the per-symbol maxima were precomputed at freeze time.
    const std::span<const double> src = models_[m]->max_symbol_log_ratio();
    std::copy(src.begin(), src.end(), maxsym);
    sig_rmax_[m] = models_[m]->max_log_ratio();
  } else {
    // Mapped bank: one pass over the packed rows.
    std::fill(maxsym, maxsym + a_size, neg_inf);
    for (size_t u = 0; u < ns; ++u) {
      const Entry* row = rows + u * a_size;
      for (size_t a = 0; a < a_size; ++a) {
        if (row[a].ratio > maxsym[a]) maxsym[a] = row[a].ratio;
      }
    }
    double rmax = neg_inf;
    for (size_t a = 0; a < a_size; ++a) {
      if (maxsym[a] > rmax) rmax = maxsym[a];
    }
    sig_rmax_[m] = rmax;
  }

  if (!sig_cap2_enabled_) return;
  // cap2[b·A + a] = max of ratio(v, a) over v in the image of Step(·, b).
  // That image is small — every state reached by consuming b has a label
  // ending in b (or is the root), and those sets are disjoint across b, so
  // Σ_b |image_b| ≤ states + A. Folding each distinct successor row once
  // per b (epoch-stamp dedup) keeps construction at O(states · A), the
  // same order as packing the rows in the first place.
  double* cap2 = sig_cap2_.data() + m * a_size * a_size;
  std::fill(cap2, cap2 + a_size * a_size, neg_inf);
  std::vector<uint32_t> stamp(ns, 0);
  for (size_t b = 0; b < a_size; ++b) {
    const uint32_t epoch = static_cast<uint32_t>(b) + 1;
    double* caps = cap2 + b * a_size;
    for (size_t u = 0; u < ns; ++u) {
      const uint32_t v = rows[u * a_size + b].next / a_size;
      if (stamp[v] == epoch) continue;
      stamp[v] = epoch;
      const Entry* vrow = rows + static_cast<size_t>(v) * a_size;
      for (size_t a = 0; a < a_size; ++a) {
        if (vrow[a].ratio > caps[a]) caps[a] = vrow[a].ratio;
      }
    }
  }
}

void FrozenBank::BuildAllSignatures() {
  const size_t k = base_.size();
  sig_cap2_enabled_ =
      alphabet_size_ > 0 && alphabet_size_ <= kMaxBigramAlphabet;
  sig_rmax_.resize(k);
  sig_maxsym_.resize(k * alphabet_size_);
  sig_cap2_.clear();
  if (sig_cap2_enabled_) {
    sig_cap2_.resize(k * alphabet_size_ * alphabet_size_);
  }
  for (size_t m = 0; m < k; ++m) BuildSignature(m);
  BuildTransposedSignatures();
}

void FrozenBank::BuildTransposedSignatures() {
  const size_t k = base_.size();
  const size_t a_size = alphabet_size_;
  sig_maxsymt_.resize(k * a_size);
  for (size_t m = 0; m < k; ++m) {
    const double* src = sig_maxsym_.data() + m * a_size;
    for (size_t a = 0; a < a_size; ++a) {
      // max(x, 0): -inf and NaN caps both clamp to 0, matching pos() in the
      // bound (a NaN cap contributes nothing rather than poisoning the sum).
      sig_maxsymt_[a * k + m] = src[a] > 0.0 ? src[a] : 0.0;
    }
  }
  if (!sig_cap2_enabled_) {
    sig_cap2t_.clear();
    return;
  }
  const size_t sq = a_size * a_size;
  sig_cap2t_.resize(k * sq);
  for (size_t m = 0; m < k; ++m) {
    const double* src = sig_cap2_.data() + m * sq;
    for (size_t code = 0; code < sq; ++code) {
      sig_cap2t_[code * k + m] = src[code] > 0.0 ? src[code] : 0.0;
    }
  }
}

size_t FrozenBank::BlockModels() const {
  // Every in-flight model holds one (ratio, next) row pair hot. Budget half
  // of a typical 512 KiB L2 for a handful of recently-touched rows per
  // model; depth-major state numbering keeps those rows adjacent.
  constexpr size_t kCacheBudgetBytes = 256 * 1024;
  constexpr size_t kAssumedHotRowsPerModel = 8;
  const size_t row_bytes = alphabet_size_ * sizeof(Entry);
  const size_t denom = std::max<size_t>(
      1, row_bytes * kAssumedHotRowsPerModel);
  return std::clamp<size_t>(kCacheBudgetBytes / denom, 8,
                            internal::kMaxBlockModels);
}

void FrozenBank::ScanAll(std::span<const SymbolId> symbols,
                         SimilarityResult* results) const {
  const size_t k = num_models();
  if (symbols.empty()) {
    for (size_t m = 0; m < k; ++m) {
      results[m] = SimilarityResult{};
      results[m].log_sim = -std::numeric_limits<double>::infinity();
    }
    return;
  }
#ifdef CLUSEQ_HAVE_AVX2
  const bool use_simd = !force_scalar_ && SimdAvailable();
#else
  const bool use_simd = false;
#endif
  // One shard-striped fetch_add per ScanAll call — amortized over len × k
  // scored symbols, so the hot inner loops stay untouched.
  static obs::Counter& scan_symbols =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scan_symbols");
  static obs::Counter& scans_simd =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scans_simd");
  static obs::Counter& scans_scalar =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scans_scalar");
  scan_symbols.Add(symbols.size() * k);
  (use_simd ? scans_simd : scans_scalar).Increment();
  const size_t block = BlockModels();
  for (size_t m0 = 0; m0 < k; m0 += block) {
    const size_t mb = std::min(block, k - m0);
#ifdef CLUSEQ_HAVE_AVX2
    if (use_simd) {
      internal::ScanBlockAvx2(scan_data(), base32_.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
      continue;
    }
#else
    (void)use_simd;
#endif
    internal::ScanBlockScalar(scan_data(), base32_.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
  }
}

namespace {

// Scratch for the sparse scans: the candidates' bases (and margins)
// compacted into the dense arrays the block kernels expect. thread_local
// because ScanCandidates* runs concurrently on pool workers.
struct SparseScanScratch {
  std::vector<uint32_t> bases;
  std::vector<double> margins;
};

SparseScanScratch& GetSparseScratch() {
  static thread_local SparseScanScratch scratch;
  return scratch;
}

}  // namespace

void FrozenBank::ScanCandidates(std::span<const SymbolId> symbols,
                                std::span<const uint32_t> candidates,
                                SimilarityResult* results) const {
  const size_t k = candidates.size();
  if (k == 0) return;
  if (symbols.empty()) {
    for (size_t j = 0; j < k; ++j) {
      results[j] = SimilarityResult{};
      results[j].log_sim = -std::numeric_limits<double>::infinity();
    }
    return;
  }
#ifdef CLUSEQ_HAVE_AVX2
  const bool use_simd = !force_scalar_ && SimdAvailable();
#else
  const bool use_simd = false;
#endif
  SparseScanScratch& scratch = GetSparseScratch();
  scratch.bases.resize(k);
  for (size_t j = 0; j < k; ++j) scratch.bases[j] = base32_[candidates[j]];

  static obs::Counter& scan_symbols =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scan_symbols");
  scan_symbols.Add(symbols.size() * k);
  const size_t block = BlockModels();
  for (size_t m0 = 0; m0 < k; m0 += block) {
    const size_t mb = std::min(block, k - m0);
#ifdef CLUSEQ_HAVE_AVX2
    if (use_simd) {
      internal::ScanBlockAvx2(scan_data(), scratch.bases.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
      continue;
    }
#else
    (void)use_simd;
#endif
    internal::ScanBlockScalar(scan_data(), scratch.bases.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
  }
}

size_t FrozenBank::ScanCandidatesBounded(std::span<const SymbolId> symbols,
                                         std::span<const uint32_t> candidates,
                                         double target,
                                         SimilarityResult* results,
                                         uint8_t* exact) const {
  const size_t k = candidates.size();
  if (k == 0) return 0;
  if (symbols.empty()) {
    for (size_t j = 0; j < k; ++j) {
      results[j] = SimilarityResult{};
      results[j].log_sim = -std::numeric_limits<double>::infinity();
      exact[j] = 1;
    }
    return 0;
  }
#ifdef CLUSEQ_HAVE_AVX2
  const bool use_simd = !force_scalar_ && SimdAvailable();
#else
  const bool use_simd = false;
#endif
  SparseScanScratch& scratch = GetSparseScratch();
  scratch.bases.resize(k);
  scratch.margins.resize(k);
  for (size_t j = 0; j < k; ++j) {
    const uint32_t c = candidates[j];
    scratch.bases[j] = base32_[c];
    // Admissible per-symbol increment for the remaining-stream bound; the
    // kernels require it nonnegative (a run can always restart empty).
    scratch.margins[j] = sig_rmax_[c] > 0.0 ? sig_rmax_[c] : 0.0;
  }

  static obs::Counter& scan_symbols =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scan_symbols");
  scan_symbols.Add(symbols.size() * k);
  size_t abandoned = 0;
  const size_t block = BlockModels();
  for (size_t m0 = 0; m0 < k; m0 += block) {
    const size_t mb = std::min(block, k - m0);
#ifdef CLUSEQ_HAVE_AVX2
    if (use_simd) {
      abandoned += internal::ScanBlockAvx2Bounded(
          scan_data(), scratch.bases.data() + m0, mb, symbols.data(),
          symbols.size(), scratch.margins.data() + m0, target, results + m0,
          exact + m0);
      continue;
    }
#else
    (void)use_simd;
#endif
    abandoned += internal::ScanBlockScalarBounded(
        scan_data(), scratch.bases.data() + m0, mb, symbols.data(),
        symbols.size(), scratch.margins.data() + m0, target, results + m0,
        exact + m0);
  }
  return abandoned;
}

void FrozenBank::StepAll(SymbolId symbol, uint32_t* rows, double* y,
                         double* z, uint8_t* started) const {
  const size_t k = num_models();
  const Entry* entries = scan_data();
  for (size_t m = 0; m < k; ++m) {
    const Entry& e = entries[base_[m] + rows[m] + symbol];
    const double x = e.ratio;
    rows[m] = e.next;  // Stays model-local: survives arena re-packs.
    if (!started[m] || y[m] + x < x) {
      y[m] = x;
    } else {
      y[m] += x;
    }
    started[m] = 1;
    z[m] = std::max(z[m], y[m]);
  }
}

}  // namespace cluseq
