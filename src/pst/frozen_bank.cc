#include "pst/frozen_bank.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "obs/metrics.h"
#include "util/logging.h"

namespace cluseq {

namespace {

/// Arenas at least this large are backed by 2 MiB-aligned storage and
/// advised as hugepage (the rounding waste is bounded by one page).
constexpr size_t kHugePageBytes = 2 * 1024 * 1024;

FrozenBank::Entry* AllocateArena(size_t* capacity_entries) {
  static obs::Gauge& hugepage_gauge =
      obs::MetricsRegistry::Get().GetGauge("frozen_bank.hugepage_arena");
  const size_t bytes = *capacity_entries * sizeof(FrozenBank::Entry);
  if (bytes >= kHugePageBytes) {
    const size_t rounded =
        (bytes + kHugePageBytes - 1) / kHugePageBytes * kHugePageBytes;
    void* huge = std::aligned_alloc(kHugePageBytes, rounded);
    if (huge != nullptr) {
#if defined(__linux__)
      madvise(huge, rounded, MADV_HUGEPAGE);  // Best-effort; ENOSYS is fine.
#endif
      *capacity_entries = rounded / sizeof(FrozenBank::Entry);
      hugepage_gauge.Set(1.0);
      return static_cast<FrozenBank::Entry*>(huge);
    }
  }
  void* plain = std::malloc(bytes);
  CLUSEQ_CHECK(plain != nullptr || bytes == 0,
               "FrozenBank arena allocation failed");
  hugepage_gauge.Set(0.0);
  return static_cast<FrozenBank::Entry*>(plain);
}

}  // namespace

FrozenBank::EntryArena& FrozenBank::EntryArena::operator=(
    const EntryArena& other) {
  if (this != &other) {
    resize(other.size_);
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(Entry));
  }
  return *this;
}

FrozenBank::EntryArena& FrozenBank::EntryArena::operator=(
    EntryArena&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    capacity_ = std::exchange(other.capacity_, 0);
  }
  return *this;
}

FrozenBank::EntryArena::~EntryArena() { std::free(data_); }

void FrozenBank::EntryArena::resize(size_t n) {
  if (n > capacity_) {
    size_t capacity = n;
    Entry* fresh = AllocateArena(&capacity);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(Entry));
    std::free(data_);
    data_ = fresh;
    capacity_ = capacity;
  }
  size_ = n;
}

namespace internal {

void ScanBlockScalar(const FrozenBank::Entry* entries, const uint32_t* bases,
                     size_t num_models, const SymbolId* symbols, size_t len,
                     SimilarityResult* out) {
  // Per-model DP lanes; the inner loops carry no cross-model dependency, so
  // the m-iterations pipeline (independent gather chains) even without SIMD.
  double y[kMaxBlockModels];
  double z[kMaxBlockModels];
  uint32_t row[kMaxBlockModels];
  size_t ybegin[kMaxBlockModels];
  size_t bbegin[kMaxBlockModels];
  size_t bend[kMaxBlockModels];
  const double neg_inf = -std::numeric_limits<double>::infinity();
  for (size_t m = 0; m < num_models; ++m) {
    row[m] = bases[m];  // Root state: model-local row 0.
    z[m] = neg_inf;
    ybegin[m] = 0;
    bbegin[m] = 0;
    bend[m] = 0;
  }

  // i = 0 peeled: the reference recurrence starts Y at X_0 unconditionally
  // (and never evaluates Y_{-1} + X_0, which matters for ±inf ratios).
  {
    const uint32_t s = symbols[0];
    for (size_t m = 0; m < num_models; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      row[m] = bases[m] + e.next;
      y[m] = e.ratio;
      if (y[m] > z[m]) {
        z[m] = y[m];
        bend[m] = 1;  // bbegin stays 0.
      }
    }
  }
  for (size_t i = 1; i < len; ++i) {
    const uint32_t s = symbols[i];
    for (size_t m = 0; m < num_models; ++m) {
      const FrozenBank::Entry& e = entries[static_cast<size_t>(row[m]) + s];
      const double x = e.ratio;  // log X_i, background baked in.
      row[m] = bases[m] + e.next;
      const double extend = y[m] + x;
      if (extend < x) {
        y[m] = x;  // Restart: best segment ending at i is {s_i} alone.
        ybegin[m] = i;
      } else {
        y[m] = extend;
      }
      if (y[m] > z[m]) {
        z[m] = y[m];
        bbegin[m] = ybegin[m];
        bend[m] = i + 1;
      }
    }
  }
  for (size_t m = 0; m < num_models; ++m) {
    out[m].log_sim = z[m];
    out[m].best_begin = bbegin[m];
    out[m].best_end = bend[m];
  }
}

}  // namespace internal

bool FrozenBank::SimdAvailable() {
#ifdef CLUSEQ_HAVE_AVX2
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

FrozenBank::AssembleStats FrozenBank::Assemble(
    std::vector<std::shared_ptr<const FrozenPst>> models) {
  AssembleStats stats;
  size_t alphabet = alphabet_size_;
  for (const auto& model : models) {
    CLUSEQ_CHECK(model != nullptr && !model->empty(),
                 "FrozenBank models must be non-empty snapshots");
    if (alphabet == 0) alphabet = model->alphabet_size();
    CLUSEQ_CHECK(model->alphabet_size() == alphabet,
                 "FrozenBank models must share one alphabet_size");
  }

  // New layout: prefix sums of each model's (states × alphabet) extent.
  std::vector<size_t> base(models.size());
  size_t total = 0;
  for (size_t m = 0; m < models.size(); ++m) {
    base[m] = total;
    total += models[m]->num_states() * alphabet;
  }
  // The SIMD transition gather addresses entry g at scaled signed 32-bit
  // index 4·g + 2 (see frozen_bank_avx2.cc), so that — not 2^31 entries —
  // bounds the arena. Still ~8.6 GiB of packed rows, far beyond any real
  // bank.
  CLUSEQ_CHECK(
      total <= static_cast<size_t>(std::numeric_limits<int32_t>::max() / 4),
      "FrozenBank arena exceeds the gather-index range");

  // A slot is reusable in place when the same snapshot object sits at the
  // same offset as in the previous layout — its rows are already correct,
  // byte for byte. (vector::resize may still relocate the storage; contents
  // are preserved either way.) A mapped bank has no snapshots, so nothing
  // reuses and the assemble below rebuilds an owned arena.
  std::vector<char> reuse(models.size(), 0);
  for (size_t m = 0; m < models.size(); ++m) {
    reuse[m] = alphabet == alphabet_size_ && m < models_.size() &&
               models_[m] == models[m] && base[m] == base_[m];
  }
  external_entries_ = nullptr;
  external_storage_.reset();

  entries_.resize(total);
  for (size_t m = 0; m < models.size(); ++m) {
    if (reuse[m]) {
      ++stats.models_reused;
      continue;
    }
    ++stats.models_written;
    const FrozenPst& model = *models[m];
    const std::span<const double> src_ratio = model.log_ratio_table();
    const std::span<const FrozenPst::State> src_next =
        model.transition_table();
    // Transitions are rebased from state ids to model-local row offsets so
    // one entry both scores the symbol and names the next row.
    Entry* dst = entries_.data() + base[m];
    for (size_t e = 0; e < src_next.size(); ++e) {
      dst[e] = Entry{src_ratio[e],
                     src_next[e] * static_cast<uint32_t>(alphabet), 0};
    }
  }

  alphabet_size_ = alphabet;
  models_ = std::move(models);
  states_.resize(models_.size());
  for (size_t m = 0; m < models_.size(); ++m) {
    states_[m] = static_cast<uint32_t>(models_[m]->num_states());
  }
  base_ = std::move(base);
  base32_.resize(base_.size());
  for (size_t m = 0; m < base_.size(); ++m) {
    base32_[m] = static_cast<uint32_t>(base_[m]);
  }

  static obs::Counter& assembles =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.assembles");
  static obs::Counter& written =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.models_written");
  static obs::Counter& reused =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.models_reused");
  static obs::Gauge& arena_bytes =
      obs::MetricsRegistry::Get().GetGauge("frozen_bank.arena_bytes");
  assembles.Increment();
  written.Add(stats.models_written);
  reused.Add(stats.models_reused);
  arena_bytes.Set(static_cast<double>(entries_.size() * sizeof(Entry)));
  return stats;
}

size_t FrozenBank::BlockModels() const {
  // Every in-flight model holds one (ratio, next) row pair hot. Budget half
  // of a typical 512 KiB L2 for a handful of recently-touched rows per
  // model; depth-major state numbering keeps those rows adjacent.
  constexpr size_t kCacheBudgetBytes = 256 * 1024;
  constexpr size_t kAssumedHotRowsPerModel = 8;
  const size_t row_bytes = alphabet_size_ * sizeof(Entry);
  const size_t denom = std::max<size_t>(
      1, row_bytes * kAssumedHotRowsPerModel);
  return std::clamp<size_t>(kCacheBudgetBytes / denom, 8,
                            internal::kMaxBlockModels);
}

void FrozenBank::ScanAll(std::span<const SymbolId> symbols,
                         SimilarityResult* results) const {
  const size_t k = num_models();
  if (symbols.empty()) {
    for (size_t m = 0; m < k; ++m) {
      results[m] = SimilarityResult{};
      results[m].log_sim = -std::numeric_limits<double>::infinity();
    }
    return;
  }
#ifdef CLUSEQ_HAVE_AVX2
  const bool use_simd = !force_scalar_ && SimdAvailable();
#else
  const bool use_simd = false;
#endif
  // One shard-striped fetch_add per ScanAll call — amortized over len × k
  // scored symbols, so the hot inner loops stay untouched.
  static obs::Counter& scan_symbols =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scan_symbols");
  static obs::Counter& scans_simd =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scans_simd");
  static obs::Counter& scans_scalar =
      obs::MetricsRegistry::Get().GetCounter("frozen_bank.scans_scalar");
  scan_symbols.Add(symbols.size() * k);
  (use_simd ? scans_simd : scans_scalar).Increment();
  const size_t block = BlockModels();
  for (size_t m0 = 0; m0 < k; m0 += block) {
    const size_t mb = std::min(block, k - m0);
#ifdef CLUSEQ_HAVE_AVX2
    if (use_simd) {
      internal::ScanBlockAvx2(scan_data(), base32_.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
      continue;
    }
#else
    (void)use_simd;
#endif
    internal::ScanBlockScalar(scan_data(), base32_.data() + m0, mb,
                              symbols.data(), symbols.size(), results + m0);
  }
}

void FrozenBank::StepAll(SymbolId symbol, uint32_t* rows, double* y,
                         double* z, uint8_t* started) const {
  const size_t k = num_models();
  const Entry* entries = scan_data();
  for (size_t m = 0; m < k; ++m) {
    const Entry& e = entries[base_[m] + rows[m] + symbol];
    const double x = e.ratio;
    rows[m] = e.next;  // Stays model-local: survives arena re-packs.
    if (!started[m] || y[m] + x < x) {
      y[m] = x;
    } else {
      y[m] += x;
    }
    started[m] = 1;
    z[m] = std::max(z[m], y[m]);
  }
}

}  // namespace cluseq
