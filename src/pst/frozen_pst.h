// FrozenPst: an immutable, cache-friendly compilation of a trained Pst.
//
// A live Pst is a mutable trie: querying P(s | context) walks from the root
// along the reversed context, chasing per-node heap vectors — O(L) pointer
// hops per position, repeated from scratch at every position of every
// scored sequence. Within one scoring pass, however, the tree is read-only,
// and the short-memory/context-tree literature treats such a model as a
// *finite-state automaton*: the prediction node for position i+1 is
// reachable from position i's state in amortized O(1).
//
// FrozenPst compiles exactly that automaton:
//
//   * States are the live trie's nodes plus, when leaf pruning has removed
//     intermediate history, a small set of *closure* states. The trie's
//     node labels are suffix-closed by construction (every trie ancestor of
//     a node is a suffix of its label), but pruning can break closure under
//     dropping the *most recent* symbol — e.g. the tree may know context
//     "ba" while "b" was pruned away. The automaton needs the label set
//     closed under both operations for its transition function to be
//     well-defined, so freezing completes the set (closure states carry no
//     counts of their own; they only route transitions).
//   * Layout is a flat structure of arrays: states are numbered in
//     depth-major (BFS) order, and each state owns one contiguous row of
//     the transition table and one of the log-ratio table, so a scoring
//     walk reads adjacent cache lines instead of chasing per-node vectors.
//   * The transition Step(u, a) moves to the state of the longest tracked
//     suffix of `label(u)·a` — the suffix-link (failure) recurrence of
//     Aho-Corasick, specialized to reversed-context tries where the suffix
//     link of a node is simply its parent.
//   * Each state's log-ratio row is precomputed from its *prediction node*
//     (the longest suffix whose whole chain is significant — the node the
//     live walk would land on): LogRatio(u, s) = log P̂(s | ctx(u)) − log
//     p(s), with smoothing applied exactly as in Pst::NodeProbability. The
//     similarity DP's X_i becomes a single table load.
//
// Scoring a sequence is then a linear automaton scan:
//
//   FrozenPst::State st = FrozenPst::kRootState;
//   for (SymbolId s : symbols) {
//     x = frozen.LogRatio(st, s);   // log [P̂(s|ctx) / p(s)]
//     st = frozen.Step(st, s);      // absorb s into the context
//   }
//
// Equivalence: for any Pst (including post-PruneToBudget and merged trees)
// the scan produces bit-for-bit the same per-position log ratios as the
// live root-walk path; tests/frozen_pst_equivalence_test.cc holds the
// property. The BackgroundModel's log p(s) is baked into the tables, so a
// frozen model is a self-contained scoring artifact (see PstSerializer for
// the on-disk form).

#ifndef CLUSEQ_PST_FROZEN_PST_H_
#define CLUSEQ_PST_FROZEN_PST_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "pst/pst.h"
#include "seq/background_model.h"

namespace cluseq {

class FrozenPst {
 public:
  /// Automaton state: an index into the flat state tables.
  using State = uint32_t;

  /// The root state (empty context). State numbering is depth-major, so the
  /// root is always state 0.
  static constexpr State kRootState = 0;

  /// Empty (unusable) instance; meaningful only as a move-assignment target
  /// or container element.
  FrozenPst() = default;

  /// Compiles `pst` + `background` into scoring shape. Both must share the
  /// alphabet; the inputs are only read during construction and may be
  /// destroyed or mutated afterwards.
  FrozenPst(const Pst& pst, const BackgroundModel& background);

  FrozenPst(const FrozenPst&) = default;
  FrozenPst& operator=(const FrozenPst&) = default;
  FrozenPst(FrozenPst&&) = default;
  FrozenPst& operator=(FrozenPst&&) = default;

  /// Consumes one symbol of context: the state of the longest tracked
  /// suffix of ctx(state)·symbol. O(1): one table load.
  State Step(State state, SymbolId symbol) const {
    return next_[static_cast<size_t>(state) * alphabet_size_ + symbol];
  }

  /// log [P̂(symbol | ctx(state)) / p(symbol)], the similarity DP's X term.
  /// -inf only when smoothing is off and the empirical probability is zero.
  double LogRatio(State state, SymbolId symbol) const {
    return log_ratio_[static_cast<size_t>(state) * alphabet_size_ + symbol];
  }

  /// Context length represented by a state.
  size_t StateDepth(State state) const { return depth_[state]; }

  size_t num_states() const { return depth_.size(); }
  size_t alphabet_size() const { return alphabet_size_; }
  /// Context length bound L inherited from the source tree.
  size_t max_depth() const { return max_depth_; }
  bool empty() const { return depth_.empty(); }

  /// Bytes held by the flat tables (the dominant cost). Reports size(), not
  /// capacity(): the tables are written once at freeze time and never grow,
  /// so capacity slack from construction is transient allocator detail, not
  /// model footprint (capacity() over-reported after vector growth).
  size_t ApproxMemoryBytes() const {
    return next_.size() * sizeof(State) +
           log_ratio_.size() * sizeof(double) +
           depth_.size() * sizeof(uint32_t);
  }

  /// Raw state-major tables — one row of alphabet_size() entries per state.
  /// Read-only views for engines that repack the model (FrozenBank) or
  /// serialize it; entry [state * alphabet_size + s] corresponds to
  /// Step(state, s) / LogRatio(state, s).
  std::span<const State> transition_table() const { return next_; }
  std::span<const double> log_ratio_table() const { return log_ratio_; }

  /// max over all states u of LogRatio(u, s) — the tightest per-symbol cap
  /// on the similarity DP's X term that holds regardless of context.
  /// Precomputed at freeze time; the prefilter's admissible upper bounds
  /// (see core/prefilter.h) are built from these. -inf entries mean the
  /// model can never emit the symbol (smoothing off, zero counts).
  std::span<const double> max_symbol_log_ratio() const {
    return max_symbol_log_ratio_;
  }

  /// max over (state, symbol) of LogRatio — the per-step margin used by the
  /// in-DP early-abandon bound. Equal to max over max_symbol_log_ratio().
  double max_log_ratio() const { return max_log_ratio_; }

 private:
  friend class PstSerializer;

  /// Rebuilds max_symbol_log_ratio_/max_log_ratio_ from log_ratio_. Called
  /// at the end of freezing and after deserialization (the .fpst format
  /// stores only the tables; derived bounds are recomputed on load).
  void ComputeDerived();

  size_t alphabet_size_ = 0;
  size_t max_depth_ = 0;
  // Flat state-major tables, one row of `alphabet_size_` entries per state.
  std::vector<State> next_;
  std::vector<double> log_ratio_;
  // Per-state context length (diagnostics, serialization validation).
  std::vector<uint32_t> depth_;
  // Derived bound metadata (see accessors above).
  std::vector<double> max_symbol_log_ratio_;
  double max_log_ratio_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cluseq

#endif  // CLUSEQ_PST_FROZEN_PST_H_
