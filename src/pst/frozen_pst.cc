#include "pst/frozen_pst.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace cluseq {

namespace {

constexpr uint32_t kUnset = std::numeric_limits<uint32_t>::max();

// Transient trie mirrored from the live Pst (plus closure states), indexed
// densely. Children extend the context one symbol further into the past,
// exactly like the live trie, so a node's parent is the one-symbol-shorter
// suffix of its label.
struct ScratchNode {
  PstNodeId live = kNoPstNode;  // Backing live node; kNoPstNode for closure.
  uint32_t parent = 0;          // Drop the oldest symbol of the label.
  SymbolId edge = 0;            // Oldest symbol of the label.
  uint32_t depth = 0;
  std::vector<std::pair<SymbolId, uint32_t>> children;  // Sorted by symbol.
};

uint32_t FindChild(const std::vector<ScratchNode>& nodes, uint32_t id,
                   SymbolId symbol) {
  const auto& children = nodes[id].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), symbol,
      [](const std::pair<SymbolId, uint32_t>& e, SymbolId k) {
        return e.first < k;
      });
  if (it == children.end() || it->first != symbol) return kUnset;
  return it->second;
}

uint32_t AddChild(std::vector<ScratchNode>* nodes, uint32_t parent,
                  SymbolId symbol, PstNodeId live) {
  uint32_t id = static_cast<uint32_t>(nodes->size());
  ScratchNode node;
  node.live = live;
  node.parent = parent;
  node.edge = symbol;
  node.depth = (*nodes)[parent].depth + 1;
  nodes->push_back(std::move(node));
  auto& children = (*nodes)[parent].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), symbol,
      [](const std::pair<SymbolId, uint32_t>& e, SymbolId k) {
        return e.first < k;
      });
  children.insert(it, {symbol, id});
  return id;
}

// Returns the scratch node whose label is label(u) minus its most recent
// symbol, creating count-less closure nodes as needed (memoized in
// `drop_last`). The trie's label set is always suffix-closed (ancestors),
// but leaf pruning can leave "ba" in the tree with "b" gone; transitions
// are only well-defined once the label set is also closed under dropping
// the newest symbol, i.e. under taking label prefixes.
uint32_t EnsureDropLast(uint32_t u, std::vector<ScratchNode>* nodes,
                        std::vector<uint32_t>* drop_last) {
  if (u < drop_last->size() && (*drop_last)[u] != kUnset) {
    return (*drop_last)[u];
  }
  if (drop_last->size() < nodes->size()) {
    drop_last->resize(nodes->size(), kUnset);
  }
  const uint32_t depth = (*nodes)[u].depth;
  uint32_t result;
  if (depth <= 1) {
    result = 0;  // label minus its only symbol is the empty context.
  } else {
    // label(u)[:-1] = edge(u) · label(parent(u))[:-1].
    const uint32_t parent = (*nodes)[u].parent;
    const SymbolId edge = (*nodes)[u].edge;
    const uint32_t mp = EnsureDropLast(parent, nodes, drop_last);
    uint32_t t = FindChild(*nodes, mp, edge);
    if (t == kUnset) t = AddChild(nodes, mp, edge, kNoPstNode);
    result = t;
  }
  if (drop_last->size() < nodes->size()) {
    drop_last->resize(nodes->size(), kUnset);
  }
  (*drop_last)[u] = result;
  return result;
}

}  // namespace

FrozenPst::FrozenPst(const Pst& pst, const BackgroundModel& background) {
  alphabet_size_ = pst.alphabet_size();
  max_depth_ = pst.options().max_depth;
  const uint64_t sig = pst.options().significance_threshold;

  // Phase 1: mirror every live node, breadth-first so depths are grouped.
  std::vector<ScratchNode> nodes;
  nodes.emplace_back();  // Root.
  nodes[0].live = kPstRoot;
  {
    // (live id, scratch id) queue; children come back sorted by symbol.
    std::vector<std::pair<PstNodeId, uint32_t>> queue = {{kPstRoot, 0}};
    for (size_t head = 0; head < queue.size(); ++head) {
      auto [live_id, scratch_id] = queue[head];
      for (const auto& [symbol, live_child] : pst.Children(live_id)) {
        uint32_t child = AddChild(&nodes, scratch_id, symbol, live_child);
        queue.emplace_back(live_child, child);
      }
    }
  }

  // Phase 2: close the label set under dropping the newest symbol. The loop
  // bound re-reads nodes.size() because closure nodes append, and those
  // need their own closure too (each created node is strictly shallower
  // than its creator, so this terminates).
  {
    std::vector<uint32_t> drop_last(nodes.size(), kUnset);
    for (uint32_t u = 0; u < nodes.size(); ++u) {
      EnsureDropLast(u, &nodes, &drop_last);
    }
  }

  // Phase 3: number states depth-major so a scoring walk, which can only
  // move between adjacent depths, touches adjacent table rows.
  const size_t n = nodes.size();
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&nodes](uint32_t a, uint32_t b) {
                     return nodes[a].depth < nodes[b].depth;
                   });
  std::vector<State> state_of(n);
  for (uint32_t pos = 0; pos < n; ++pos) state_of[order[pos]] = pos;

  depth_.resize(n);
  next_.resize(n * alphabet_size_);
  log_ratio_.resize(n * alphabet_size_);
  // All depths up front: the transition recurrence below inspects
  // depth_[q] for states q at the *same* depth as the one being processed,
  // which a fill-as-you-go scheme would leave unwritten.
  for (uint32_t pos = 0; pos < n; ++pos) depth_[pos] = nodes[order[pos]].depth;

  // Phase 4: transitions and prediction rows, processed shallow-to-deep so
  // every node's trie parent is already resolved.
  //
  //   step(u, a) = state of the longest tracked suffix of label(u)·a
  //              = node(label(u)·a) if tracked, else step(parent(u), a)
  //
  // where node(label(u)·a), when present, is the child along edge(u) of the
  // *full* extension step(parent(u), a) — the textbook failure-link
  // recurrence, with the parent playing the suffix-link role (in a
  // reversed-context trie the one-shorter suffix IS the parent).
  //
  // in_r marks nodes whose entire suffix chain exists and is significant —
  // precisely the nodes the live PredictionNode() walk can reach; pred is
  // the live node a walk with this state's context would land on.
  std::vector<char> in_r(n, 0);
  std::vector<PstNodeId> pred(n, kPstRoot);
  // States sharing a prediction node share a log-ratio row; copy instead of
  // recomputing (misses only on distinct prediction nodes).
  std::unordered_map<PstNodeId, State> row_cache;
  const double neg_inf = -std::numeric_limits<double>::infinity();

  for (uint32_t pos = 0; pos < n; ++pos) {
    const uint32_t u = order[pos];
    const ScratchNode& node = nodes[u];
    const size_t row = static_cast<size_t>(pos) * alphabet_size_;

    if (u == 0) {
      in_r[u] = 1;
      pred[u] = kPstRoot;
      for (SymbolId a = 0; a < alphabet_size_; ++a) {
        uint32_t child = FindChild(nodes, 0, a);
        next_[row + a] = child == kUnset ? kRootState : state_of[child];
      }
    } else {
      const uint32_t p = node.parent;
      in_r[u] = in_r[p] && node.live != kNoPstNode &&
                pst.NodeCount(node.live) >= sig;
      pred[u] = in_r[u] ? node.live : pred[p];
      const size_t parent_row =
          static_cast<size_t>(state_of[p]) * alphabet_size_;
      for (SymbolId a = 0; a < alphabet_size_; ++a) {
        const State q = next_[parent_row + a];
        State target = q;
        if (depth_[q] == nodes[p].depth + 1) {
          // label(parent)·a is tracked; try the full label(u)·a below it.
          uint32_t child = FindChild(nodes, order[q], node.edge);
          if (child != kUnset) target = state_of[child];
        }
        next_[row + a] = target;
      }
    }

    auto [it, inserted] = row_cache.try_emplace(pred[u], pos);
    if (!inserted) {
      const size_t src = static_cast<size_t>(it->second) * alphabet_size_;
      std::copy_n(log_ratio_.begin() + static_cast<ptrdiff_t>(src),
                  alphabet_size_,
                  log_ratio_.begin() + static_cast<ptrdiff_t>(row));
    } else {
      for (SymbolId a = 0; a < alphabet_size_; ++a) {
        // Same operations as the live path (NodeProbability → log → minus
        // background) so frozen scoring is bit-for-bit identical.
        const double p = pst.NodeProbability(pred[u], a);
        const double log_p = p > 0.0 ? std::log(p) : neg_inf;
        log_ratio_[row + a] = log_p - background.LogProbability(a);
      }
    }
  }

  ComputeDerived();

  static obs::Counter& freezes =
      obs::MetricsRegistry::Get().GetCounter("frozen_pst.freezes");
  static obs::Counter& states =
      obs::MetricsRegistry::Get().GetCounter("frozen_pst.states");
  freezes.Increment();
  states.Add(n);
}

void FrozenPst::ComputeDerived() {
  const double neg_inf = -std::numeric_limits<double>::infinity();
  max_symbol_log_ratio_.assign(alphabet_size_, neg_inf);
  max_log_ratio_ = neg_inf;
  const size_t n = depth_.size();
  for (size_t u = 0; u < n; ++u) {
    const size_t row = u * alphabet_size_;
    for (size_t a = 0; a < alphabet_size_; ++a) {
      const double r = log_ratio_[row + a];
      if (r > max_symbol_log_ratio_[a]) max_symbol_log_ratio_[a] = r;
    }
  }
  for (double r : max_symbol_log_ratio_) {
    if (r > max_log_ratio_) max_log_ratio_ = r;
  }
}

}  // namespace cluseq
