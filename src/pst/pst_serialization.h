// Binary serialization for trained PSTs.
//
// Format (little-endian):
//   magic "PST1" | u64 alphabet_size | PstOptions fields | u64 node_count |
//   per live node (pre-order): u32 parent_index, u32 edge_symbol, u64 count,
//   u32 #next, (u32 symbol, u64 count)*
// Node indices in the file are dense pre-order positions, so tombstones in
// the in-memory arena are compacted away on save.

#ifndef CLUSEQ_PST_PST_SERIALIZATION_H_
#define CLUSEQ_PST_PST_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "pst/pst.h"
#include "util/status.h"

namespace cluseq {

/// Writes `pst` to `out`.
Status SavePst(const Pst& pst, std::ostream& out);
Status SavePstToFile(const Pst& pst, const std::string& path);

/// Reads a PST from `in` into `*pst` (replacing its contents).
Status LoadPst(std::istream& in, Pst* pst);
Status LoadPstFromFile(const std::string& path, Pst* pst);

}  // namespace cluseq

#endif  // CLUSEQ_PST_PST_SERIALIZATION_H_
