// Binary serialization for trained PSTs and compiled scoring snapshots.
//
// Live-tree format (little-endian):
//   magic "PST2" | u64 alphabet_size | PstOptions fields | u64 node_count |
//   per live node (pre-order): u32 parent_index, u32 edge_symbol, u64 count,
//   u32 #next, (u32 symbol, u64 count)* | u32 crc32c of all prior bytes
// Node indices in the file are dense pre-order positions, so tombstones in
// the in-memory arena are compacted away on save.
//
// Frozen-snapshot format (little-endian):
//   magic "FPT2" | u64 alphabet_size | u64 max_depth | u64 num_states |
//   u32 depth[num_states] | u32 next[num_states × alphabet] |
//   f64 log_ratio[num_states × alphabet] | u32 crc32c of all prior bytes
// A snapshot deserializes straight into scoring shape — no recompilation,
// no background model needed at load time (the ratios are baked in).
//
// Durability and validation (DESIGN.md §11): both formats end in a CRC32C
// of every preceding byte, verified before any field is parsed, so bit rot
// and truncation are rejected up front; the structural checks behind the
// checksum (size caps, exact body length, transition ranges, finite log
// ratios) then hold even against an adversary who fixes up the CRC. The
// *ToFile writers go through util/file_io.h's WriteFileAtomic, so a crash
// mid-save never leaves a partial file at the final path. Loads that fail
// these checks return Status::Corruption and bump the
// persistence.corruption_detected counter.

#ifndef CLUSEQ_PST_PST_SERIALIZATION_H_
#define CLUSEQ_PST_PST_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "pst/frozen_pst.h"
#include "pst/pst.h"
#include "util/status.h"

namespace cluseq {

/// Writes `pst` to `out`.
Status SavePst(const Pst& pst, std::ostream& out);
Status SavePstToFile(const Pst& pst, const std::string& path);

/// Reads a PST from `in` into `*pst` (replacing its contents).
Status LoadPst(std::istream& in, Pst* pst);
Status LoadPstFromFile(const std::string& path, Pst* pst);

/// Writes a compiled scoring snapshot to `out`.
Status SaveFrozenPst(const FrozenPst& pst, std::ostream& out);
Status SaveFrozenPstToFile(const FrozenPst& pst, const std::string& path);

/// Reads a snapshot from `in` into `*pst` (replacing its contents).
Status LoadFrozenPst(std::istream& in, FrozenPst* pst);
Status LoadFrozenPstFromFile(const std::string& path, FrozenPst* pst);

}  // namespace cluseq

#endif  // CLUSEQ_PST_PST_SERIALIZATION_H_
