#include "seq/sequence.h"

#include <algorithm>

namespace cluseq {

std::vector<SymbolId> Sequence::Segment(size_t begin, size_t end) const {
  if (begin > symbols_.size()) begin = symbols_.size();
  if (end > symbols_.size()) end = symbols_.size();
  if (begin >= end) return {};
  return std::vector<SymbolId>(symbols_.begin() + static_cast<long>(begin),
                               symbols_.begin() + static_cast<long>(end));
}

std::vector<SymbolId> Sequence::Reversed() const {
  std::vector<SymbolId> out(symbols_.rbegin(), symbols_.rend());
  return out;
}

}  // namespace cluseq
