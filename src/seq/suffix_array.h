// Suffix array with LCP, the classic exact-index substrate (paper §3/§7.1:
// the PST is "a variation of the suffix tree"; this module provides the
// exact-counting member of that family).
//
// Built in O(n log n) (prefix-doubling) over a symbol sequence, it answers
// * CountOccurrences(segment): exact number of occurrences, O(|seg| log n);
// * the positions themselves (Locate);
// * longest repeated segment queries via the LCP array.
//
// Tests use it to cross-validate PST counts: for every PST node, the node
// count must equal the suffix-array count of "label followed by one more
// symbol" — tying the probabilistic structure back to an independently
// implemented exact index.

#ifndef CLUSEQ_SEQ_SUFFIX_ARRAY_H_
#define CLUSEQ_SEQ_SUFFIX_ARRAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "seq/alphabet.h"

namespace cluseq {

class SuffixArray {
 public:
  /// Builds the suffix array (and LCP) of `text`. O(n log n) time.
  explicit SuffixArray(std::span<const SymbolId> text);

  size_t size() const { return text_.size(); }

  /// i-th smallest suffix's starting position.
  size_t suffix(size_t i) const { return sa_[i]; }

  /// LCP between suffix(i) and suffix(i-1); lcp(0) == 0.
  size_t lcp(size_t i) const { return lcp_[i]; }

  /// Number of occurrences of `segment` in the text. The empty segment is
  /// defined to occur at every start position, i.e. size() + 1 times.
  size_t CountOccurrences(std::span<const SymbolId> segment) const;

  /// Sorted starting positions of `segment`.
  std::vector<size_t> Locate(std::span<const SymbolId> segment) const;

  /// Length and a starting position of the longest segment occurring at
  /// least twice; {0, 0} when none.
  std::pair<size_t, size_t> LongestRepeat() const;

 private:
  // Range [lo, hi) of suffixes with `segment` as a prefix.
  std::pair<size_t, size_t> EqualRange(
      std::span<const SymbolId> segment) const;

  std::vector<SymbolId> text_;
  std::vector<uint32_t> sa_;
  std::vector<uint32_t> lcp_;
};

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_SUFFIX_ARRAY_H_
