// SequenceDatabase: the in-RAM collection of sequences to be clustered,
// together with the alphabet they are encoded over.
//
// This is the mutable SequenceStore: the FASTA/TSV readers and the
// synthetic generators build corpora here, and small datasets cluster
// straight out of it. For corpora that should not be re-parsed (or do not
// fit in RAM), convert once with WriteSeqDb and cluster from the
// mmap-backed SeqDbReader instead — every consumer takes the
// SequenceStore interface, so the two are interchangeable.

#ifndef CLUSEQ_SEQ_SEQUENCE_DATABASE_H_
#define CLUSEQ_SEQ_SEQUENCE_DATABASE_H_

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "seq/alphabet.h"
#include "seq/sequence.h"
#include "seq/sequence_store.h"
#include "util/status.h"

namespace cluseq {

class SequenceDatabase : public SequenceStore {
 public:
  SequenceDatabase() = default;
  explicit SequenceDatabase(Alphabet alphabet)
      : alphabet_(std::move(alphabet)), base_alphabet_size_(alphabet_.size()) {}

  // Movable and copyable like the plain struct it used to be.
  SequenceDatabase(const SequenceDatabase&) = default;
  SequenceDatabase& operator=(const SequenceDatabase&) = default;
  SequenceDatabase(SequenceDatabase&&) = default;
  SequenceDatabase& operator=(SequenceDatabase&&) = default;

  const Alphabet& alphabet() const override { return alphabet_; }
  Alphabet& mutable_alphabet() { return alphabet_; }

  size_t size() const override { return sequences_.size(); }

  std::span<const SymbolId> Symbols(size_t i) const override {
    return std::span<const SymbolId>(sequences_[i].symbols());
  }
  std::string_view Id(size_t i) const override { return sequences_[i].id(); }
  Label LabelOf(size_t i) const override { return sequences_[i].label(); }
  size_t Length(size_t i) const override { return sequences_[i].length(); }

  const Sequence& operator[](size_t i) const { return sequences_[i]; }
  Sequence& operator[](size_t i) { return sequences_[i]; }

  const std::vector<Sequence>& sequences() const { return sequences_; }

  /// Appends a sequence; returns its index.
  size_t Add(Sequence seq);

  /// Encodes `text` character-per-symbol and appends it. Unknown characters
  /// are interned into the alphabet.
  Status AddText(std::string_view text, std::string id = "",
                 Label label = kNoLabel);

  /// Drops all sequences and every symbol interned *after* construction:
  /// the alphabet reverts to the one the database was constructed with (an
  /// explicitly supplied alphabet survives; symbols interned by AddText on
  /// the cleared corpus do not leak into the next one).
  void Clear();

 private:
  Alphabet alphabet_;
  /// How many symbols the construction-time alphabet carried; Clear()
  /// truncates back to this count. Interning is append-only with dense ids,
  /// so the first `base_alphabet_size_` entries are always exactly the
  /// construction-time alphabet.
  size_t base_alphabet_size_ = 0;
  std::vector<Sequence> sequences_;
};

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_SEQUENCE_DATABASE_H_
