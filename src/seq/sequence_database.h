// SequenceDatabase: the collection of sequences to be clustered, together
// with the alphabet they are encoded over.

#ifndef CLUSEQ_SEQ_SEQUENCE_DATABASE_H_
#define CLUSEQ_SEQ_SEQUENCE_DATABASE_H_

#include <string>
#include <utility>
#include <vector>

#include "seq/alphabet.h"
#include "seq/sequence.h"
#include "util/status.h"

namespace cluseq {

class SequenceDatabase {
 public:
  SequenceDatabase() = default;
  explicit SequenceDatabase(Alphabet alphabet)
      : alphabet_(std::move(alphabet)) {}

  const Alphabet& alphabet() const { return alphabet_; }
  Alphabet& mutable_alphabet() { return alphabet_; }

  size_t size() const { return sequences_.size(); }
  bool empty() const { return sequences_.empty(); }

  const Sequence& operator[](size_t i) const { return sequences_[i]; }
  Sequence& operator[](size_t i) { return sequences_[i]; }

  const std::vector<Sequence>& sequences() const { return sequences_; }

  /// Appends a sequence; returns its index.
  size_t Add(Sequence seq);

  /// Encodes `text` character-per-symbol and appends it. Unknown characters
  /// are interned into the alphabet.
  Status AddText(std::string_view text, std::string id = "",
                 Label label = kNoLabel);

  /// Total number of symbols across all sequences.
  size_t TotalSymbols() const;

  /// Average sequence length (0 for an empty database).
  double AverageLength() const;

  /// Largest label value + 1 (i.e. the number of ground-truth classes),
  /// ignoring kNoLabel. Returns 0 when nothing is labeled.
  size_t NumLabels() const;

  void Clear();

 private:
  Alphabet alphabet_;
  std::vector<Sequence> sequences_;
};

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_SEQUENCE_DATABASE_H_
