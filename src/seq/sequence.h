// Sequence: an ordered list of SymbolIds plus optional metadata.
//
// The optional `label` carries ground-truth cluster/family membership for
// evaluation; the algorithms never read it.

#ifndef CLUSEQ_SEQ_SEQUENCE_H_
#define CLUSEQ_SEQ_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "seq/alphabet.h"
#include "seq/sequence_store.h"  // Label / kNoLabel live with the store API.

namespace cluseq {

class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(std::vector<SymbolId> symbols, std::string id = "",
                    Label label = kNoLabel)
      : symbols_(std::move(symbols)), id_(std::move(id)), label_(label) {}

  const std::vector<SymbolId>& symbols() const { return symbols_; }
  std::vector<SymbolId>& mutable_symbols() { return symbols_; }

  size_t length() const { return symbols_.size(); }
  bool empty() const { return symbols_.empty(); }
  SymbolId operator[](size_t i) const { return symbols_[i]; }

  const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  Label label() const { return label_; }
  void set_label(Label label) { label_ = label; }

  /// Contiguous segment [begin, end) as a fresh symbol vector.
  std::vector<SymbolId> Segment(size_t begin, size_t end) const;

  /// The reversed symbol sequence (used for PST construction).
  std::vector<SymbolId> Reversed() const;

  friend bool operator==(const Sequence& a, const Sequence& b) {
    return a.symbols_ == b.symbols_;
  }

 private:
  std::vector<SymbolId> symbols_;
  std::string id_;
  Label label_ = kNoLabel;
};

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_SEQUENCE_H_
