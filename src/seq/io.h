// Sequence database readers and writers.
//
// Two formats are supported:
//
//  * FASTA-like: records of the form
//        >id [label=<int>]
//        ACDEFGH...
//    with sequence data possibly wrapped over multiple lines. Symbols are
//    one character each.
//
//  * TSV lines: one sequence per line, "id <TAB> label <TAB> text".
//    A label of -1 means unlabeled.

#ifndef CLUSEQ_SEQ_IO_H_
#define CLUSEQ_SEQ_IO_H_

#include <iosfwd>
#include <string>

#include "seq/sequence_database.h"
#include "util/status.h"

namespace cluseq {

/// Reads FASTA-like data from a stream into `db` (appending). Characters are
/// interned into the database alphabet.
Status ReadFasta(std::istream& in, SequenceDatabase* db);

/// Reads FASTA-like data from a file.
Status ReadFastaFile(const std::string& path, SequenceDatabase* db);

/// Writes the database in FASTA-like format (single-character symbol
/// alphabets round-trip exactly; multi-character names are concatenated).
Status WriteFasta(const SequenceDatabase& db, std::ostream& out);
Status WriteFastaFile(const SequenceDatabase& db, const std::string& path);

/// Reads TSV lines ("id\tlabel\ttext").
Status ReadTsv(std::istream& in, SequenceDatabase* db);
Status ReadTsvFile(const std::string& path, SequenceDatabase* db);

/// Writes TSV lines.
Status WriteTsv(const SequenceDatabase& db, std::ostream& out);
Status WriteTsvFile(const SequenceDatabase& db, const std::string& path);

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_IO_H_
