// Sequence database readers and writers.
//
// Two text formats are supported:
//
//  * FASTA-like: records of the form
//        >id [label=<int>]
//        ACDEFGH...
//    with sequence data possibly wrapped over multiple lines. Symbols are
//    one character each.
//
//  * TSV lines: one sequence per line, "id <TAB> label <TAB> text".
//    A label of -1 means unlabeled.
//
// Both readers are streaming-friendly: they hold one record in memory at a
// time, accept CRLF line endings, accept a final record without a trailing
// newline, and reject records larger than IoOptions::max_record_bytes with
// a clear error instead of ballooning memory on malformed or hostile input.
//
// The binary .sqdb format (seqdb_writer.h / seqdb_reader.h) is the
// preferred on-disk form for large corpora: these text readers materialize
// an in-RAM SequenceDatabase, while a .sqdb is served from an mmap.

#ifndef CLUSEQ_SEQ_IO_H_
#define CLUSEQ_SEQ_IO_H_

#include <cstddef>
#include <iosfwd>
#include <string>

#include "seq/sequence_database.h"
#include "seq/sequence_store.h"
#include "util/status.h"

namespace cluseq {

struct IoOptions {
  /// Hard cap on one record's sequence text (FASTA body across all its
  /// wrapped lines; TSV text field). A record over the cap fails the read
  /// with InvalidArgument naming the record — a guard against unbounded
  /// buffering on malformed input, generous enough for any real sequence.
  size_t max_record_bytes = 256ull << 20;
};

/// Reads FASTA-like data from a stream into `db` (appending). Characters are
/// interned into the database alphabet.
Status ReadFasta(std::istream& in, SequenceDatabase* db,
                 const IoOptions& options = {});

/// Reads FASTA-like data from a file.
Status ReadFastaFile(const std::string& path, SequenceDatabase* db,
                     const IoOptions& options = {});

/// Writes any sequence store in FASTA-like format (single-character symbol
/// alphabets round-trip exactly; multi-character names are concatenated).
Status WriteFasta(const SequenceStore& db, std::ostream& out);
Status WriteFastaFile(const SequenceStore& db, const std::string& path);

/// Reads TSV lines ("id\tlabel\ttext").
Status ReadTsv(std::istream& in, SequenceDatabase* db,
               const IoOptions& options = {});
Status ReadTsvFile(const std::string& path, SequenceDatabase* db,
                   const IoOptions& options = {});

/// Writes TSV lines.
Status WriteTsv(const SequenceStore& db, std::ostream& out);
Status WriteTsvFile(const SequenceStore& db, const std::string& path);

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_IO_H_
