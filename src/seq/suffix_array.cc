#include "seq/suffix_array.h"

#include <algorithm>
#include <numeric>

namespace cluseq {

SuffixArray::SuffixArray(std::span<const SymbolId> text)
    : text_(text.begin(), text.end()) {
  const size_t n = text_.size();
  sa_.resize(n);
  lcp_.assign(n, 0);
  if (n == 0) return;

  // Prefix-doubling: rank[i] is the order class of the suffix at i
  // considering its first `len` symbols.
  std::iota(sa_.begin(), sa_.end(), 0u);
  std::vector<uint64_t> rank(n), tmp(n);
  for (size_t i = 0; i < n; ++i) rank[i] = text_[i];
  for (size_t len = 1;; len *= 2) {
    auto key = [&](uint32_t i) {
      uint64_t second = (i + len < n) ? rank[i + len] + 1 : 0;
      return (rank[i] << 32) | second;
    };
    std::sort(sa_.begin(), sa_.end(),
              [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
    tmp[sa_[0]] = 0;
    for (size_t i = 1; i < n; ++i) {
      tmp[sa_[i]] = tmp[sa_[i - 1]] + (key(sa_[i - 1]) != key(sa_[i]));
    }
    rank = tmp;
    if (rank[sa_[n - 1]] == n - 1) break;
  }

  // Kasai's LCP construction, O(n).
  std::vector<uint32_t> pos(n);  // Inverse permutation of sa_.
  for (size_t i = 0; i < n; ++i) pos[sa_[i]] = static_cast<uint32_t>(i);
  size_t h = 0;
  for (size_t i = 0; i < n; ++i) {
    if (pos[i] == 0) {
      h = 0;
      continue;
    }
    size_t j = sa_[pos[i] - 1];
    while (i + h < n && j + h < n && text_[i + h] == text_[j + h]) ++h;
    lcp_[pos[i]] = static_cast<uint32_t>(h);
    if (h > 0) --h;
  }
}

std::pair<size_t, size_t> SuffixArray::EqualRange(
    std::span<const SymbolId> segment) const {
  auto less_than_segment = [this](uint32_t suffix_start,
                                  std::span<const SymbolId> seg) {
    size_t i = suffix_start;
    for (SymbolId s : seg) {
      if (i >= text_.size()) return true;   // Suffix is a proper prefix.
      if (text_[i] != s) return text_[i] < s;
      ++i;
    }
    return false;  // Segment is a prefix of the suffix: not less.
  };
  auto segment_less_than = [this](std::span<const SymbolId> seg,
                                  uint32_t suffix_start) {
    size_t i = suffix_start;
    for (SymbolId s : seg) {
      if (i >= text_.size()) return false;
      if (text_[i] != s) return s < text_[i];
      ++i;
    }
    return false;  // Segment is a prefix: equal range membership.
  };
  auto lo = std::lower_bound(sa_.begin(), sa_.end(), segment,
                             less_than_segment);
  auto hi = std::upper_bound(sa_.begin(), sa_.end(), segment,
                             segment_less_than);
  return {static_cast<size_t>(lo - sa_.begin()),
          static_cast<size_t>(hi - sa_.begin())};
}

size_t SuffixArray::CountOccurrences(
    std::span<const SymbolId> segment) const {
  if (segment.empty()) return text_.size() + 1;
  auto [lo, hi] = EqualRange(segment);
  return hi - lo;
}

std::vector<size_t> SuffixArray::Locate(
    std::span<const SymbolId> segment) const {
  std::vector<size_t> out;
  if (segment.empty()) {
    out.resize(text_.size() + 1);
    std::iota(out.begin(), out.end(), 0u);
    return out;
  }
  auto [lo, hi] = EqualRange(segment);
  out.reserve(hi - lo);
  for (size_t i = lo; i < hi; ++i) out.push_back(sa_[i]);
  std::sort(out.begin(), out.end());
  return out;
}

std::pair<size_t, size_t> SuffixArray::LongestRepeat() const {
  size_t best_len = 0, best_pos = 0;
  for (size_t i = 1; i < lcp_.size(); ++i) {
    if (lcp_[i] > best_len) {
      best_len = lcp_[i];
      best_pos = sa_[i];
    }
  }
  return {best_len, best_pos};
}

}  // namespace cluseq
