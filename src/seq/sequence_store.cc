#include "seq/sequence_store.h"

#include <algorithm>

namespace cluseq {

size_t SequenceStore::TotalSymbols() const {
  size_t total = 0;
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) total += Length(i);
  return total;
}

double SequenceStore::AverageLength() const {
  const size_t n = size();
  if (n == 0) return 0.0;
  return static_cast<double>(TotalSymbols()) / static_cast<double>(n);
}

size_t SequenceStore::NumLabels() const {
  Label max_label = kNoLabel;
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) max_label = std::max(max_label, LabelOf(i));
  return max_label == kNoLabel ? 0 : static_cast<size_t>(max_label) + 1;
}

std::vector<size_t> SequenceStore::LengthSortedOrder() const {
  std::vector<size_t> order(size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return Length(a) > Length(b);
  });
  return order;
}

uint64_t SequenceStore::ContentFingerprint() const {
  // FNV-1a over the corpus structure: record count, alphabet, lengths.
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  auto mix = [](uint64_t h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xFF)) * kPrime;
    }
    return h;
  };
  uint64_t h = kOffset;
  const size_t n = size();
  h = mix(h, n);
  const Alphabet& ab = alphabet();
  h = mix(h, ab.size());
  for (size_t s = 0; s < ab.size(); ++s) {
    for (char c : ab.Name(static_cast<SymbolId>(s))) {
      h = (h ^ static_cast<unsigned char>(c)) * kPrime;
    }
    h = (h ^ 0xFFu) * kPrime;  // Name terminator so "ab","c" != "a","bc".
  }
  for (size_t i = 0; i < n; ++i) h = mix(h, Length(i));
  return h;
}

}  // namespace cluseq
