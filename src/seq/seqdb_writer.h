// Writer for the .sqdb on-disk sequence store (the MMseqs2-style two-file
// data + offset-index layout; Steinegger & Söding 2017).
//
// A corpus `corpus.sqdb` is two files:
//
//   corpus.sqdb        the data file: a 24-byte header followed by every
//                      record's encoded symbols (little-endian uint32),
//                      concatenated in record order. The payload starts at
//                      a 4-byte-aligned offset, so a reader can serve
//                      Symbols(i) as a span straight into the file mapping.
//
//   corpus.sqdb.index  the index file: a header carrying the alphabet and
//                      the CRC32C of the whole data file, one 24-byte entry
//                      per record (data offset, symbol count, label, id
//                      offset/length), the concatenated id blob, and a
//                      trailing CRC32C over the whole index.
//
// Exact layout (all integers little-endian):
//
//   data file:
//     0   char[8]  magic "CSQDATA1"
//     8   u32      version (1)
//     12  u32      reserved (0)
//     16  u64      payload_bytes = 4 × total symbols
//     24  u32[]    payload: record symbols, concatenated in record order
//
//   index file:
//     0   char[8]  magic "CSQINDX1"
//     8   u32      version (1)
//     12  u32      alphabet_count
//     16  u64      num_records
//     24  u64      data_file_bytes (size of the whole data file)
//     32  u32      data_crc (CRC32C of the whole data file)
//     36  u32      reserved (0)
//     40  u64      alphabet_blob_bytes
//     48  u64      id_blob_bytes
//     56  ...      alphabet blob: per symbol in id order, u32 length + name
//         ...      record table: num_records × {u64 data_offset,
//                  u32 num_symbols, i32 label, u32 id_offset, u32 id_bytes}
//         ...      id blob: record ids, concatenated
//     end-4  u32   CRC32C of every preceding index byte
//
// Record entries are canonical: data offsets start at the payload and are
// contiguous (offset_{i+1} = offset_i + 4·len_i), id offsets likewise tile
// the id blob exactly. The reader recomputes and enforces this, so a file
// whose offsets overlap or point outside a section can never validate.
//
// Both files are written with WriteFileAtomic (temp file + fsync + atomic
// rename), so a crashed import never leaves a torn corpus visible: readers
// see either the previous complete .sqdb or the new one. The index is
// written first — a data file without its index is unreadable, while the
// brief window with a new index and an old data file is closed by the data
// CRC check on open.

#ifndef CLUSEQ_SEQ_SEQDB_WRITER_H_
#define CLUSEQ_SEQ_SEQDB_WRITER_H_

#include <cstdint>
#include <string>

#include "seq/sequence_store.h"
#include "util/status.h"

namespace cluseq {

/// Shared format constants (the reader validates against these).
inline constexpr char kSeqDbDataMagic[8] = {'C', 'S', 'Q', 'D',
                                            'A', 'T', 'A', '1'};
inline constexpr char kSeqDbIndexMagic[8] = {'C', 'S', 'Q', 'I',
                                             'N', 'D', 'X', '1'};
inline constexpr uint32_t kSeqDbVersion = 1;
inline constexpr size_t kSeqDbDataHeaderBytes = 24;
inline constexpr size_t kSeqDbIndexHeaderBytes = 56;
inline constexpr size_t kSeqDbRecordEntryBytes = 24;

/// The index path of a .sqdb data file: `path` + ".index".
std::string SeqDbIndexPath(const std::string& path);

/// True when `path` names a .sqdb store (extension match; the CLI's
/// --input auto-detection).
bool IsSeqDbPath(const std::string& path);

struct SeqDbWriteStats {
  uint64_t records = 0;
  uint64_t total_symbols = 0;
  uint64_t data_bytes = 0;   ///< Size of the written data file.
  uint64_t index_bytes = 0;  ///< Size of the written index file.
};

/// Serializes `store` to `path` + `path`.index atomically (see above).
/// Fails with InvalidArgument when a record's symbols fall outside the
/// store's alphabet (such a file could never validate on open).
Status WriteSeqDb(const SequenceStore& store, const std::string& path,
                  SeqDbWriteStats* stats = nullptr);

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_SEQDB_WRITER_H_
