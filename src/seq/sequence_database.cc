#include "seq/sequence_database.h"

namespace cluseq {

size_t SequenceDatabase::Add(Sequence seq) {
  sequences_.push_back(std::move(seq));
  return sequences_.size() - 1;
}

Status SequenceDatabase::AddText(std::string_view text, std::string id,
                                 Label label) {
  std::vector<SymbolId> symbols;
  CLUSEQ_RETURN_NOT_OK(
      alphabet_.EncodeChars(text, /*intern_missing=*/true, &symbols));
  sequences_.emplace_back(std::move(symbols), std::move(id), label);
  return Status::OK();
}

void SequenceDatabase::Clear() {
  sequences_.clear();
  alphabet_.Truncate(base_alphabet_size_);
}

}  // namespace cluseq
