#include "seq/sequence_database.h"

#include <algorithm>

namespace cluseq {

size_t SequenceDatabase::Add(Sequence seq) {
  sequences_.push_back(std::move(seq));
  return sequences_.size() - 1;
}

Status SequenceDatabase::AddText(std::string_view text, std::string id,
                                 Label label) {
  std::vector<SymbolId> symbols;
  CLUSEQ_RETURN_NOT_OK(
      alphabet_.EncodeChars(text, /*intern_missing=*/true, &symbols));
  sequences_.emplace_back(std::move(symbols), std::move(id), label);
  return Status::OK();
}

size_t SequenceDatabase::TotalSymbols() const {
  size_t total = 0;
  for (const auto& s : sequences_) total += s.length();
  return total;
}

double SequenceDatabase::AverageLength() const {
  if (sequences_.empty()) return 0.0;
  return static_cast<double>(TotalSymbols()) /
         static_cast<double>(sequences_.size());
}

size_t SequenceDatabase::NumLabels() const {
  Label max_label = kNoLabel;
  for (const auto& s : sequences_) max_label = std::max(max_label, s.label());
  return max_label == kNoLabel ? 0 : static_cast<size_t>(max_label) + 1;
}

void SequenceDatabase::Clear() { sequences_.clear(); }

}  // namespace cluseq
