#include "seq/alphabet.h"

#include "util/string_util.h"

namespace cluseq {

Alphabet Alphabet::FromChars(std::string_view chars) {
  Alphabet a;
  for (char c : chars) {
    a.Intern(std::string_view(&c, 1));
  }
  return a;
}

Alphabet Alphabet::Synthetic(size_t n) {
  Alphabet a;
  for (size_t i = 0; i < n; ++i) {
    a.Intern("s" + std::to_string(i));
  }
  return a;
}

SymbolId Alphabet::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

SymbolId Alphabet::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidSymbol : it->second;
}

Status Alphabet::EncodeChars(std::string_view text, bool intern_missing,
                             std::vector<SymbolId>* out) {
  out->clear();
  out->reserve(text.size());
  for (char c : text) {
    std::string_view name(&c, 1);
    SymbolId id = Find(name);
    if (id == kInvalidSymbol) {
      if (!intern_missing) {
        return Status::InvalidArgument(
            StringPrintf("symbol '%c' not in alphabet", c));
      }
      id = Intern(name);
    }
    out->push_back(id);
  }
  return Status::OK();
}

void Alphabet::Truncate(size_t n) {
  while (names_.size() > n) {
    index_.erase(names_.back());
    names_.pop_back();
  }
}

std::string Alphabet::Decode(std::span<const SymbolId> ids) const {
  std::string out;
  for (SymbolId id : ids) {
    if (id < names_.size()) out += names_[id];
  }
  return out;
}

}  // namespace cluseq
