#include "seq/seqdb_writer.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace cluseq {

namespace {

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

}  // namespace

std::string SeqDbIndexPath(const std::string& path) { return path + ".index"; }

bool IsSeqDbPath(const std::string& path) {
  constexpr std::string_view kExt = ".sqdb";
  return path.size() >= kExt.size() &&
         path.compare(path.size() - kExt.size(), kExt.size(), kExt) == 0;
}

Status WriteSeqDb(const SequenceStore& store, const std::string& path,
                  SeqDbWriteStats* stats) {
  const size_t n = store.size();
  const size_t alphabet_count = store.alphabet().size();

  // Data file: header + concatenated little-endian u32 symbols.
  uint64_t total_symbols = 0;
  for (size_t i = 0; i < n; ++i) total_symbols += store.Length(i);
  const uint64_t payload_bytes = total_symbols * sizeof(SymbolId);

  std::string data;
  data.reserve(kSeqDbDataHeaderBytes + payload_bytes);
  data.append(kSeqDbDataMagic, sizeof(kSeqDbDataMagic));
  AppendPod(&data, kSeqDbVersion);
  AppendPod(&data, uint32_t{0});
  AppendPod(&data, payload_bytes);
  for (size_t i = 0; i < n; ++i) {
    const std::span<const SymbolId> symbols = store.Symbols(i);
    for (SymbolId s : symbols) {
      if (s >= alphabet_count) {
        return Status::InvalidArgument(StringPrintf(
            "record %zu: symbol id %u outside the alphabet (%zu symbols)", i,
            s, alphabet_count));
      }
    }
    data.append(reinterpret_cast<const char*>(symbols.data()),
                symbols.size_bytes());
  }

  // Index file: header + alphabet blob + record table + id blob + CRC.
  std::string alphabet_blob;
  for (size_t s = 0; s < alphabet_count; ++s) {
    const std::string& name = store.alphabet().Name(static_cast<SymbolId>(s));
    AppendPod(&alphabet_blob, static_cast<uint32_t>(name.size()));
    alphabet_blob.append(name);
  }
  std::string id_blob;
  for (size_t i = 0; i < n; ++i) id_blob.append(store.Id(i));
  // id offsets and per-record symbol counts are u32 in the entry layout.
  if (id_blob.size() > UINT32_MAX) {
    return Status::InvalidArgument("total id bytes exceed the 4 GiB id blob");
  }
  for (size_t i = 0; i < n; ++i) {
    if (store.Length(i) > UINT32_MAX) {
      return Status::InvalidArgument(
          StringPrintf("record %zu has more than 2^32 symbols", i));
    }
  }

  std::string index;
  index.reserve(kSeqDbIndexHeaderBytes + alphabet_blob.size() +
                n * kSeqDbRecordEntryBytes + id_blob.size() + sizeof(uint32_t));
  index.append(kSeqDbIndexMagic, sizeof(kSeqDbIndexMagic));
  AppendPod(&index, kSeqDbVersion);
  AppendPod(&index, static_cast<uint32_t>(alphabet_count));
  AppendPod(&index, static_cast<uint64_t>(n));
  AppendPod(&index, static_cast<uint64_t>(data.size()));
  AppendPod(&index, Crc32c(data.data(), data.size()));
  AppendPod(&index, uint32_t{0});
  AppendPod(&index, static_cast<uint64_t>(alphabet_blob.size()));
  AppendPod(&index, static_cast<uint64_t>(id_blob.size()));
  index.append(alphabet_blob);
  uint64_t data_offset = kSeqDbDataHeaderBytes;
  uint64_t id_offset = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t num_symbols = store.Length(i);
    const uint64_t id_bytes = store.Id(i).size();
    AppendPod(&index, data_offset);
    AppendPod(&index, static_cast<uint32_t>(num_symbols));
    AppendPod(&index, store.LabelOf(i));
    AppendPod(&index, static_cast<uint32_t>(id_offset));
    AppendPod(&index, static_cast<uint32_t>(id_bytes));
    data_offset += num_symbols * sizeof(SymbolId);
    id_offset += id_bytes;
  }
  index.append(id_blob);
  AppendPod(&index, Crc32c(index.data(), index.size()));

  // Index first: a data file without its index is unreadable, and the data
  // CRC in the new index will not match the old data file, so no ordering
  // of a crash in between exposes a readable-but-wrong corpus.
  CLUSEQ_RETURN_NOT_OK(WriteFileAtomic(SeqDbIndexPath(path), index));
  CLUSEQ_RETURN_NOT_OK(WriteFileAtomic(path, data));

  static obs::Counter& bytes_written =
      obs::MetricsRegistry::Get().GetCounter("seqdb.bytes_written");
  static obs::Counter& records_written =
      obs::MetricsRegistry::Get().GetCounter("seqdb.records_written");
  bytes_written.Add(data.size() + index.size());
  records_written.Add(n);

  if (stats != nullptr) {
    stats->records = n;
    stats->total_symbols = total_symbols;
    stats->data_bytes = data.size();
    stats->index_bytes = index.size();
  }
  return Status::OK();
}

}  // namespace cluseq
