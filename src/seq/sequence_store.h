// SequenceStore: the read-only corpus abstraction every consumer of
// sequence data programs against.
//
// CLUSEQ's iteration, the baselines, evaluation and the CLI all need the
// same five things from a corpus: how many records there are, the alphabet
// they are encoded over, and each record's encoded symbols, id and label.
// This interface captures exactly that, so the corpus can live either
//
//   * in RAM (SequenceDatabase — mutable, built by the readers in seq/io.h
//     and the synthetic generators), or
//   * on disk (SeqDbReader — an mmap-backed view of a .sqdb file whose
//     Symbols() spans point straight into the file mapping, so a corpus
//     larger than memory streams through the clustering loop without a
//     per-sequence copy; see seq/seqdb_reader.h).
//
// Symbols(i) returns a span valid for the lifetime of the store. Length(i)
// is a separate virtual because the on-disk store answers it from the index
// length column without touching the data file — the cost callbacks of
// ParallelForWeighted call it once per record per phase, and faulting the
// whole corpus in just to plan chunk boundaries would defeat the point of
// the out-of-core layout.

#ifndef CLUSEQ_SEQ_SEQUENCE_STORE_H_
#define CLUSEQ_SEQ_SEQUENCE_STORE_H_

#include <span>
#include <string_view>
#include <vector>

#include "seq/alphabet.h"

namespace cluseq {

/// Ground-truth label; kNoLabel means unknown / outlier. (Lives here rather
/// than sequence.h so the interface does not depend on the in-RAM record
/// type; sequence.h re-uses this definition.)
using Label = int32_t;
inline constexpr Label kNoLabel = -1;

class SequenceStore {
 public:
  virtual ~SequenceStore() = default;

  /// The alphabet all records are encoded over.
  virtual const Alphabet& alphabet() const = 0;

  /// Number of records.
  virtual size_t size() const = 0;

  /// Encoded symbols of record `i`. Valid while the store lives; never
  /// copies (in-RAM: the record's own vector; on-disk: the file mapping).
  virtual std::span<const SymbolId> Symbols(size_t i) const = 0;

  /// Record id ("" when the record has none).
  virtual std::string_view Id(size_t i) const = 0;

  /// Ground-truth label (kNoLabel when unlabeled).
  virtual Label LabelOf(size_t i) const = 0;

  /// Symbol count of record `i`. Override when it is answerable more
  /// cheaply than materializing the symbols (SeqDbReader reads it from the
  /// index length column).
  virtual size_t Length(size_t i) const { return Symbols(i).size(); }

  bool empty() const { return size() == 0; }

  /// Total number of symbols across all records.
  size_t TotalSymbols() const;

  /// Average record length (0 for an empty store).
  double AverageLength() const;

  /// Largest label value + 1 (the number of ground-truth classes), ignoring
  /// kNoLabel. Returns 0 when nothing is labeled.
  size_t NumLabels() const;

  /// Record indices ordered by decreasing length, ties by index — the
  /// MMseqs2 SORT_BY_LENGTH iteration order. Scheduling long records first
  /// keeps a length-skewed corpus from parking a whole worker behind one
  /// straggler at the end of a pass. Answered from Length() only, so the
  /// on-disk store computes it from the index without touching data pages.
  std::vector<size_t> LengthSortedOrder() const;

  /// Cheap identity fingerprint of the corpus, used to reject resuming a
  /// checkpoint against the wrong data. The base implementation hashes
  /// record count, alphabet (size + symbol names) and per-record lengths —
  /// structure, not content, so it stays O(n) index reads even for an
  /// out-of-core store. SeqDbReader strengthens it with the .sqdb data
  /// CRC, which does cover content. Not a cryptographic commitment; it
  /// catches the realistic accident (resumed against a different or
  /// regenerated corpus), not an adversary.
  virtual uint64_t ContentFingerprint() const;
};

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_SEQUENCE_STORE_H_
