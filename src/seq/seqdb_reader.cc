#include "seq/seqdb_reader.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "seq/seqdb_writer.h"
#include "util/crc32c.h"
#include "util/string_util.h"

namespace cluseq {

namespace {

template <typename T>
T ReadPod(const char* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

Status Corrupt(const std::string& path, const std::string& detail) {
  return Status::Corruption(
      StringPrintf("%s: %s", path.c_str(), detail.c_str()));
}

// Streams the data file through a small reusable buffer, verifying the
// whole-file CRC32C and that every payload symbol is < alphabet_count.
// Reads via read(2) rather than the mapping so the verification pass does
// not fault the corpus into this process's RSS; the pages live in the
// kernel page cache only.
Status VerifyDataStreaming(const std::string& path, uint64_t expected_bytes,
                           uint32_t expected_crc, uint32_t alphabet_count) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(
        StringPrintf("open %s for verification failed", path.c_str()));
  }
  // Multiple of sizeof(SymbolId), and the 24-byte header is too, so every
  // refill starts and ends on a symbol boundary.
  constexpr size_t kChunk = 1u << 20;
  static_assert(kChunk % sizeof(SymbolId) == 0);
  static_assert(kSeqDbDataHeaderBytes % sizeof(SymbolId) == 0);
  std::string buffer(kChunk, '\0');
  uint32_t crc = 0;
  uint64_t offset = 0;
  while (offset < expected_bytes) {
    // Fill the chunk completely (short reads would desync the symbol
    // boundaries below).
    size_t filled = 0;
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(kChunk, expected_bytes - offset));
    while (filled < want) {
      const ssize_t n = ::read(fd, buffer.data() + filled, want - filled);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::IOError(
            StringPrintf("read %s during verification failed", path.c_str()));
      }
      if (n == 0) break;  // Premature EOF; caught by the length check below.
      filled += static_cast<size_t>(n);
    }
    if (filled < want) {
      ::close(fd);
      return Corrupt(path, StringPrintf(
                               "data file shorter than its index claims "
                               "(%llu of %llu bytes)",
                               static_cast<unsigned long long>(offset + filled),
                               static_cast<unsigned long long>(expected_bytes)));
    }
    crc = Crc32cExtend(crc, buffer.data(), filled);
    // Range-check the payload symbols in this chunk.
    const uint64_t chunk_end = offset + filled;
    uint64_t sym_begin = std::max<uint64_t>(offset, kSeqDbDataHeaderBytes);
    for (; sym_begin + sizeof(SymbolId) <= chunk_end;
         sym_begin += sizeof(SymbolId)) {
      const SymbolId s =
          ReadPod<SymbolId>(buffer.data() + (sym_begin - offset));
      if (s >= alphabet_count) {
        ::close(fd);
        return Corrupt(
            path, StringPrintf("symbol id %u at byte %llu outside the "
                               "alphabet (%u symbols)",
                               s, static_cast<unsigned long long>(sym_begin),
                               alphabet_count));
      }
    }
    offset = chunk_end;
  }
  // The file must also not be longer than the index claims.
  char extra;
  const ssize_t tail = ::read(fd, &extra, 1);
  ::close(fd);
  if (tail != 0) {
    return Corrupt(path, "data file longer than its index claims");
  }
  if (crc != expected_crc) {
    return Corrupt(path,
                   StringPrintf("data CRC mismatch (stored %08x, computed "
                                "%08x)",
                                expected_crc, crc));
  }
  return Status::OK();
}

}  // namespace

void SeqDbReader::Reset() {
  alphabet_ = Alphabet();
  data_.Reset();
  index_.Reset();
  path_.clear();
  payload_ = nullptr;
  record_table_ = nullptr;
  id_blob_ = nullptr;
  num_records_ = 0;
  data_crc_ = 0;
  load_seconds_ = 0.0;
  aligned_payload_.clear();
  aligned_payload_.shrink_to_fit();
}

SeqDbReader::RecordEntry SeqDbReader::Entry(size_t i) const {
  static_assert(sizeof(RecordEntry) == kSeqDbRecordEntryBytes,
                "RecordEntry must match the on-disk entry layout");
  RecordEntry entry;
  std::memcpy(&entry, record_table_ + i * kSeqDbRecordEntryBytes,
              sizeof(entry));
  return entry;
}

std::span<const SymbolId> SeqDbReader::Symbols(size_t i) const {
  const RecordEntry entry = Entry(i);
  const size_t first =
      (entry.data_offset - kSeqDbDataHeaderBytes) / sizeof(SymbolId);
  return std::span<const SymbolId>(payload_ + first, entry.num_symbols);
}

std::string_view SeqDbReader::Id(size_t i) const {
  const RecordEntry entry = Entry(i);
  return std::string_view(id_blob_ + entry.id_offset, entry.id_bytes);
}

Label SeqDbReader::LabelOf(size_t i) const { return Entry(i).label; }

size_t SeqDbReader::Length(size_t i) const { return Entry(i).num_symbols; }

uint64_t SeqDbReader::ContentFingerprint() const {
  // Fold the data CRC (verified against the payload on open when
  // verify_data is set) into the structural base fingerprint.
  uint64_t h = SequenceStore::ContentFingerprint();
  h ^= 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(data_crc_) +
       (h << 6) + (h >> 2);
  return h;
}

Status SeqDbReader::Open(const std::string& path, SeqDbReader* out,
                         const SeqDbReaderOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  SeqDbReader reader;
  reader.path_ = path;

  const std::string index_path = SeqDbIndexPath(path);
  Status status = [&]() -> Status {
    // ---- Index file: map, then validate everything before trusting it.
    CLUSEQ_RETURN_NOT_OK(
        MappedFile::Open(index_path, &reader.index_, options.prefer_mmap));
    const char* ix = reader.index_.data();
    const uint64_t ix_size = reader.index_.size();
    if (ix_size < kSeqDbIndexHeaderBytes + sizeof(uint32_t)) {
      return Corrupt(index_path, "index file shorter than its header");
    }
    if (std::memcmp(ix, kSeqDbIndexMagic, sizeof(kSeqDbIndexMagic)) != 0) {
      return Corrupt(index_path, "bad index magic");
    }
    const uint32_t version = ReadPod<uint32_t>(ix + 8);
    if (version != kSeqDbVersion) {
      return Corrupt(index_path,
                     StringPrintf("unsupported version %u", version));
    }
    const uint32_t alphabet_count = ReadPod<uint32_t>(ix + 12);
    const uint64_t num_records = ReadPod<uint64_t>(ix + 16);
    const uint64_t data_file_bytes = ReadPod<uint64_t>(ix + 24);
    const uint32_t data_crc = ReadPod<uint32_t>(ix + 32);
    reader.data_crc_ = data_crc;
    const uint64_t alphabet_blob_bytes = ReadPod<uint64_t>(ix + 40);
    const uint64_t id_blob_bytes = ReadPod<uint64_t>(ix + 48);

    // Exact size equation. Cap each term by the actual file size first so
    // the sum cannot overflow, then require equality — no trailing junk,
    // no truncation.
    if (alphabet_blob_bytes > ix_size || id_blob_bytes > ix_size ||
        num_records > ix_size / kSeqDbRecordEntryBytes) {
      return Corrupt(index_path, "section sizes exceed the index file");
    }
    const uint64_t expected_size = kSeqDbIndexHeaderBytes +
                                   alphabet_blob_bytes +
                                   num_records * kSeqDbRecordEntryBytes +
                                   id_blob_bytes + sizeof(uint32_t);
    if (expected_size != ix_size) {
      return Corrupt(
          index_path,
          StringPrintf("index size %llu does not match layout (%llu expected)",
                       static_cast<unsigned long long>(ix_size),
                       static_cast<unsigned long long>(expected_size)));
    }
    const uint32_t stored_crc =
        ReadPod<uint32_t>(ix + ix_size - sizeof(uint32_t));
    const uint32_t computed_crc = Crc32c(ix, ix_size - sizeof(uint32_t));
    if (stored_crc != computed_crc) {
      return Corrupt(index_path,
                     StringPrintf("index CRC mismatch (stored %08x, "
                                  "computed %08x)",
                                  stored_crc, computed_crc));
    }

    // ---- Alphabet blob: must tile its section exactly, names distinct.
    const char* cursor = ix + kSeqDbIndexHeaderBytes;
    const char* const alphabet_end = cursor + alphabet_blob_bytes;
    for (uint32_t s = 0; s < alphabet_count; ++s) {
      if (alphabet_end - cursor < static_cast<ptrdiff_t>(sizeof(uint32_t))) {
        return Corrupt(index_path, "alphabet blob truncated");
      }
      const uint32_t name_bytes = ReadPod<uint32_t>(cursor);
      cursor += sizeof(uint32_t);
      if (alphabet_end - cursor < static_cast<ptrdiff_t>(name_bytes)) {
        return Corrupt(index_path, "alphabet name overruns its blob");
      }
      reader.alphabet_.Intern(std::string_view(cursor, name_bytes));
      cursor += name_bytes;
    }
    if (cursor != alphabet_end) {
      return Corrupt(index_path, "alphabet blob has trailing bytes");
    }
    if (reader.alphabet_.size() != alphabet_count) {
      return Corrupt(index_path, "alphabet contains duplicate symbol names");
    }

    // ---- Record table: enforce the canonical contiguous layout.
    reader.record_table_ = alphabet_end;
    reader.id_blob_ =
        reader.record_table_ + num_records * kSeqDbRecordEntryBytes;
    reader.num_records_ = num_records;
    uint64_t expected_data_offset = kSeqDbDataHeaderBytes;
    uint64_t expected_id_offset = 0;
    for (uint64_t i = 0; i < num_records; ++i) {
      const RecordEntry entry = reader.Entry(i);
      if (entry.data_offset != expected_data_offset) {
        return Corrupt(index_path,
                       StringPrintf("record %llu data offset not contiguous",
                                    static_cast<unsigned long long>(i)));
      }
      if (entry.id_offset != expected_id_offset) {
        return Corrupt(index_path,
                       StringPrintf("record %llu id offset not contiguous",
                                    static_cast<unsigned long long>(i)));
      }
      if (entry.label < kNoLabel) {
        return Corrupt(index_path,
                       StringPrintf("record %llu has invalid label %d",
                                    static_cast<unsigned long long>(i),
                                    entry.label));
      }
      expected_data_offset +=
          static_cast<uint64_t>(entry.num_symbols) * sizeof(SymbolId);
      expected_id_offset += entry.id_bytes;
    }
    if (expected_data_offset != data_file_bytes) {
      return Corrupt(index_path,
                     "record lengths do not tile the data file exactly");
    }
    if (expected_id_offset != id_blob_bytes) {
      return Corrupt(index_path,
                     "record id lengths do not tile the id blob exactly");
    }

    // ---- Data file: verify the stream first (CRC + symbol range, RSS-
    // bounded), then map it for zero-copy serving.
    if (options.verify_data) {
      CLUSEQ_RETURN_NOT_OK(VerifyDataStreaming(path, data_file_bytes, data_crc,
                                               alphabet_count));
    }
    CLUSEQ_RETURN_NOT_OK(
        MappedFile::Open(path, &reader.data_, options.prefer_mmap));
    if (reader.data_.size() != data_file_bytes) {
      return Corrupt(path,
                     StringPrintf("data file is %llu bytes, index expects "
                                  "%llu",
                                  static_cast<unsigned long long>(
                                      reader.data_.size()),
                                  static_cast<unsigned long long>(
                                      data_file_bytes)));
    }
    const char* dx = reader.data_.data();
    if (std::memcmp(dx, kSeqDbDataMagic, sizeof(kSeqDbDataMagic)) != 0) {
      return Corrupt(path, "bad data magic");
    }
    if (ReadPod<uint32_t>(dx + 8) != kSeqDbVersion) {
      return Corrupt(path, "data file version mismatch");
    }
    const uint64_t payload_bytes = ReadPod<uint64_t>(dx + 16);
    if (payload_bytes != data_file_bytes - kSeqDbDataHeaderBytes) {
      return Corrupt(path, "data header payload size mismatch");
    }

    // Zero-copy span base. mmap is page-aligned; the buffered path hands
    // out std::string storage, which is also suitably aligned for u32 in
    // practice — but if it ever is not, fall back to an owned aligned copy
    // rather than serving misaligned spans.
    const char* payload_start = dx + kSeqDbDataHeaderBytes;
    if (reinterpret_cast<uintptr_t>(payload_start) % alignof(SymbolId) == 0) {
      reader.payload_ = reinterpret_cast<const SymbolId*>(payload_start);
    } else {
      reader.aligned_payload_.resize(payload_bytes / sizeof(SymbolId));
      std::memcpy(reader.aligned_payload_.data(), payload_start,
                  payload_bytes);
      reader.payload_ = reader.aligned_payload_.data();
    }
    return Status::OK();
  }();

  static obs::Counter& corruption_detected =
      obs::MetricsRegistry::Get().GetCounter("seqdb.corruption_detected");
  if (!status.ok()) {
    if (status.IsCorruption()) {
      corruption_detected.Increment();
    }
    return status;
  }

  reader.load_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  static obs::Counter& bytes_mapped =
      obs::MetricsRegistry::Get().GetCounter("seqdb.bytes_mapped");
  static obs::Counter& records_loaded =
      obs::MetricsRegistry::Get().GetCounter("seqdb.records_loaded");
  static obs::Counter& loads_mmap =
      obs::MetricsRegistry::Get().GetCounter("seqdb.loads_mmap");
  static obs::Counter& loads_buffered =
      obs::MetricsRegistry::Get().GetCounter("seqdb.loads_buffered");
  static obs::Gauge& load_seconds =
      obs::MetricsRegistry::Get().GetGauge("seqdb.load_seconds");
  bytes_mapped.Add(reader.data_.size() + reader.index_.size());
  records_loaded.Add(reader.num_records_);
  (reader.data_.is_mmap() ? loads_mmap : loads_buffered).Increment();
  load_seconds.Set(reader.load_seconds_);

  *out = std::move(reader);
  return Status::OK();
}

}  // namespace cluseq
