// BackgroundModel: the memoryless random generator P^r of the paper.
//
// P^r(σ) = Π p(s_i), where p(s) is the empirical probability of observing
// symbol s at any position of any sequence in the database. The similarity
// measure sim_S(σ) = P_S(σ) / P^r(σ) divides by these probabilities, so the
// model also exposes log probabilities directly.

#ifndef CLUSEQ_SEQ_BACKGROUND_MODEL_H_
#define CLUSEQ_SEQ_BACKGROUND_MODEL_H_

#include <vector>

#include "seq/sequence_store.h"

namespace cluseq {

class BackgroundModel {
 public:
  BackgroundModel() = default;

  /// Estimates symbol frequencies over the whole store with add-one
  /// (Laplace) smoothing so that no symbol has probability zero. Works for
  /// any SequenceStore (in-RAM database or mmap-backed .sqdb reader).
  static BackgroundModel FromDatabase(const SequenceStore& db);

  /// Builds directly from raw counts (must cover the whole alphabet).
  static BackgroundModel FromCounts(const std::vector<uint64_t>& counts);

  size_t alphabet_size() const { return probs_.size(); }

  /// p(s). Requires s < alphabet_size().
  double Probability(SymbolId s) const { return probs_[s]; }

  /// log p(s).
  double LogProbability(SymbolId s) const { return log_probs_[s]; }

  /// log P^r(σ) of a whole symbol string.
  double LogSequenceProbability(const std::vector<SymbolId>& symbols) const;

 private:
  std::vector<double> probs_;
  std::vector<double> log_probs_;
};

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_BACKGROUND_MODEL_H_
