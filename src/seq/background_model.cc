#include "seq/background_model.h"

#include <cmath>

namespace cluseq {

BackgroundModel BackgroundModel::FromDatabase(const SequenceStore& db) {
  std::vector<uint64_t> counts(db.alphabet().size(), 0);
  for (size_t i = 0; i < db.size(); ++i) {
    for (SymbolId s : db.Symbols(i)) {
      if (s < counts.size()) ++counts[s];
    }
  }
  return FromCounts(counts);
}

BackgroundModel BackgroundModel::FromCounts(
    const std::vector<uint64_t>& counts) {
  BackgroundModel m;
  size_t n = counts.size();
  m.probs_.resize(n);
  m.log_probs_.resize(n);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  // Add-one smoothing keeps log p(s) finite for unseen symbols.
  double denom = static_cast<double>(total) + static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    m.probs_[i] = (static_cast<double>(counts[i]) + 1.0) / denom;
    m.log_probs_[i] = std::log(m.probs_[i]);
  }
  return m;
}

double BackgroundModel::LogSequenceProbability(
    const std::vector<SymbolId>& symbols) const {
  double sum = 0.0;
  for (SymbolId s : symbols) sum += log_probs_[s];
  return sum;
}

}  // namespace cluseq
