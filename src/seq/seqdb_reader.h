// SeqDbReader: zero-copy, mmap-backed SequenceStore over a .sqdb corpus
// (layout in seqdb_writer.h).
//
// Open() maps both files read-only (MappedFile; buffered fallback when mmap
// is unavailable) and validates strictly — magics, version, the exact
// file-size equations, the canonical contiguous offset layout, the index
// CRC and, by default, the data-file CRC plus a symbol-range check. Any
// mismatch fails with Status::Corruption before a single record is served.
//
// The data-file verification pass deliberately does NOT read through the
// mapping: it streams the file through a small reusable buffer with
// read(2), so a cold open of a multi-gigabyte corpus verifies end-to-end
// while the process RSS stays flat (the pages land in the kernel page
// cache, not in the process). After Open(), Symbols(i) is a span straight
// into the data mapping — no per-record allocation, no copy — and
// Length(i)/Id(i)/LabelOf(i) are answered from the index mapping alone, so
// cost-weighted scheduling (ParallelForWeighted over the length column) and
// LengthSortedOrder() never fault data pages in.
//
// Sharing: mappings are MAP_SHARED of read-only files, so concurrent
// workers (or processes) clustering against one corpus share page-cache
// pages instead of each holding a private copy.

#ifndef CLUSEQ_SEQ_SEQDB_READER_H_
#define CLUSEQ_SEQ_SEQDB_READER_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "seq/sequence_store.h"
#include "util/file_io.h"
#include "util/status.h"

namespace cluseq {

struct SeqDbReaderOptions {
  /// Serve the data and index bytes from shared read-only mappings when the
  /// platform allows; false forces the buffered-read path everywhere.
  bool prefer_mmap = true;

  /// Verify the data file end-to-end on open: CRC32C against the value the
  /// index recorded, plus every symbol id < alphabet size (a symbol outside
  /// the alphabet would index out of bounds in the scoring tables). Runs as
  /// a streamed read, so it does not fault the mapping in. Disable only for
  /// trusted corpora where the open-time scan is unwanted; the index is
  /// always verified in full.
  bool verify_data = true;
};

class SeqDbReader : public SequenceStore {
 public:
  SeqDbReader() = default;

  // Move-only: the spans the store hands out point into the mappings.
  SeqDbReader(SeqDbReader&&) = default;
  SeqDbReader& operator=(SeqDbReader&&) = default;
  SeqDbReader(const SeqDbReader&) = delete;
  SeqDbReader& operator=(const SeqDbReader&) = delete;

  /// Opens `path` (+ `path`.index) and validates. On failure `*out` is left
  /// empty and usable for a retry.
  static Status Open(const std::string& path, SeqDbReader* out,
                     const SeqDbReaderOptions& options = {});

  // SequenceStore interface — all zero-copy.
  const Alphabet& alphabet() const override { return alphabet_; }
  size_t size() const override { return static_cast<size_t>(num_records_); }
  std::span<const SymbolId> Symbols(size_t i) const override;
  std::string_view Id(size_t i) const override;
  Label LabelOf(size_t i) const override;
  size_t Length(size_t i) const override;

  /// Base structural fingerprint strengthened with the .sqdb data CRC32C
  /// the index records, so a resumed checkpoint is bound to the file's
  /// actual symbol content, not just its shape.
  uint64_t ContentFingerprint() const override;

  /// Load diagnostics (the CLI's --verbose corpus line and RunReport).
  const std::string& path() const { return path_; }
  uint64_t data_bytes() const { return data_.size(); }
  uint64_t index_bytes() const { return index_.size(); }
  /// True when the data payload is served from an mmap (not a buffer).
  bool is_mmap() const { return data_.is_mmap(); }
  double load_seconds() const { return load_seconds_; }

  void Reset();

 private:
  struct RecordEntry {
    uint64_t data_offset;
    uint32_t num_symbols;
    Label label;
    uint32_t id_offset;
    uint32_t id_bytes;
  };
  RecordEntry Entry(size_t i) const;

  Alphabet alphabet_;
  MappedFile data_;
  MappedFile index_;
  std::string path_;
  /// First symbol of the data payload. Points into data_, except on the
  /// (theoretical) misaligned buffered path where it points into
  /// aligned_payload_.
  const SymbolId* payload_ = nullptr;
  const char* record_table_ = nullptr;  ///< Into index_.
  const char* id_blob_ = nullptr;       ///< Into index_.
  uint64_t num_records_ = 0;
  uint32_t data_crc_ = 0;  ///< CRC32C of the data file, from the index.
  double load_seconds_ = 0.0;
  std::vector<SymbolId> aligned_payload_;
};

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_SEQDB_READER_H_
