// Alphabet: a bidirectional mapping between symbol names and dense ids.
//
// CLUSEQ operates over an arbitrary finite alphabet (amino acids, letters,
// log-event codes, ...). Internally every symbol is a dense SymbolId so the
// PST and the similarity DP work on small integers; the Alphabet owns the
// mapping back to human-readable names.

#ifndef CLUSEQ_SEQ_ALPHABET_H_
#define CLUSEQ_SEQ_ALPHABET_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace cluseq {

/// Dense symbol identifier; ids are assigned contiguously from 0.
using SymbolId = uint32_t;

/// Sentinel returned by lookups of unknown symbols.
inline constexpr SymbolId kInvalidSymbol = static_cast<SymbolId>(-1);

class Alphabet {
 public:
  Alphabet() = default;

  /// Builds an alphabet from single characters, e.g. "abcdefg" or the
  /// 20-letter amino-acid code.
  static Alphabet FromChars(std::string_view chars);

  /// Builds an alphabet of `n` synthetic symbols named "s0".."s{n-1}".
  static Alphabet Synthetic(size_t n);

  /// Interns `name`, returning its id (existing or freshly assigned).
  SymbolId Intern(std::string_view name);

  /// Looks up `name`; returns kInvalidSymbol when absent.
  SymbolId Find(std::string_view name) const;

  /// Name for an id. Requires id < size().
  const std::string& Name(SymbolId id) const { return names_[id]; }

  /// Number of distinct symbols.
  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// Encodes a character string symbol-per-character. Fails with
  /// InvalidArgument on characters not present (unless intern_missing).
  Status EncodeChars(std::string_view text, bool intern_missing,
                     std::vector<SymbolId>* out);

  /// Removes every symbol with id >= `n` (ids are dense and append-only,
  /// so this exactly undoes the interning done after the alphabet had `n`
  /// symbols). No-op when n >= size().
  void Truncate(size_t n);

  /// Decodes ids back to a character string (only meaningful for alphabets
  /// of single-character names; multi-char names are concatenated).
  std::string Decode(std::span<const SymbolId> ids) const;
  std::string Decode(const std::vector<SymbolId>& ids) const {
    return Decode(std::span<const SymbolId>(ids));
  }

 private:
  std::unordered_map<std::string, SymbolId> index_;
  std::vector<std::string> names_;
};

}  // namespace cluseq

#endif  // CLUSEQ_SEQ_ALPHABET_H_
