#include "seq/io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace cluseq {

namespace {

// Parses ">id label=3" header lines. The label annotation is optional.
void ParseFastaHeader(std::string_view header, std::string* id,
                      Label* label) {
  *label = kNoLabel;
  header = StripAsciiWhitespace(header);
  size_t space = header.find(' ');
  *id = std::string(header.substr(0, space));
  while (space != std::string_view::npos) {
    header = StripAsciiWhitespace(header.substr(space + 1));
    space = header.find(' ');
    std::string_view token = header.substr(0, space);
    if (StartsWith(token, "label=")) {
      *label = static_cast<Label>(
          std::strtol(std::string(token.substr(6)).c_str(), nullptr, 10));
    }
  }
}

Status FlushFastaRecord(const std::string& id, Label label,
                        const std::string& body, SequenceDatabase* db) {
  return db->AddText(body, id, label);
}

Status OversizedRecord(std::string_view format, std::string_view id,
                       size_t line_no, size_t limit) {
  return Status::InvalidArgument(StringPrintf(
      "%.*s record '%.*s' (line %zu) exceeds max_record_bytes (%zu); raise "
      "IoOptions::max_record_bytes if this input is legitimate",
      static_cast<int>(format.size()), format.data(),
      static_cast<int>(id.size()), id.data(), line_no, limit));
}

}  // namespace

Status ReadFasta(std::istream& in, SequenceDatabase* db,
                 const IoOptions& options) {
  std::string line;
  std::string id;
  std::string body;
  Label label = kNoLabel;
  bool in_record = false;
  size_t line_no = 0;
  size_t record_line = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // StripAsciiWhitespace also drops a CRLF's trailing '\r'.
    std::string_view sv = StripAsciiWhitespace(line);
    if (sv.empty()) continue;
    if (sv[0] == '>') {
      if (in_record) {
        CLUSEQ_RETURN_NOT_OK(FlushFastaRecord(id, label, body, db));
      }
      ParseFastaHeader(sv.substr(1), &id, &label);
      body.clear();
      in_record = true;
      record_line = line_no;
    } else {
      if (!in_record) {
        return Status::Corruption(StringPrintf(
            "FASTA line %zu: sequence data before any '>' header", line_no));
      }
      if (body.size() + sv.size() > options.max_record_bytes) {
        return OversizedRecord("FASTA", id, record_line,
                               options.max_record_bytes);
      }
      body.append(sv);
    }
  }
  // getline() delivers a final record even without a trailing newline.
  if (in_record) {
    CLUSEQ_RETURN_NOT_OK(FlushFastaRecord(id, label, body, db));
  }
  return Status::OK();
}

Status ReadFastaFile(const std::string& path, SequenceDatabase* db,
                     const IoOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadFasta(in, db, options);
}

Status WriteFasta(const SequenceStore& db, std::ostream& out) {
  for (size_t i = 0; i < db.size(); ++i) {
    const std::string_view id = db.Id(i);
    out << '>';
    if (id.empty()) {
      out << "seq" << i;
    } else {
      out << id;
    }
    if (db.LabelOf(i) != kNoLabel) out << " label=" << db.LabelOf(i);
    out << '\n';
    std::string text = db.alphabet().Decode(db.Symbols(i));
    // Wrap at 70 columns like classic FASTA writers.
    for (size_t pos = 0; pos < text.size(); pos += 70) {
      out << text.substr(pos, 70) << '\n';
    }
    if (text.empty()) out << '\n';
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteFastaFile(const SequenceStore& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteFasta(db, out);
}

Status ReadTsv(std::istream& in, SequenceDatabase* db,
               const IoOptions& options) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Accept CRLF input: the '\r' would otherwise survive inside the last
    // (text) field and be interned as a symbol.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (StripAsciiWhitespace(line).empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::Corruption(StringPrintf(
          "TSV line %zu: expected 3 tab-separated fields, got %zu", line_no,
          fields.size()));
    }
    if (fields[2].size() > options.max_record_bytes) {
      return OversizedRecord("TSV", fields[0], line_no,
                             options.max_record_bytes);
    }
    Label label =
        static_cast<Label>(std::strtol(fields[1].c_str(), nullptr, 10));
    CLUSEQ_RETURN_NOT_OK(db->AddText(fields[2], fields[0], label));
  }
  return Status::OK();
}

Status ReadTsvFile(const std::string& path, SequenceDatabase* db,
                   const IoOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadTsv(in, db, options);
}

Status WriteTsv(const SequenceStore& db, std::ostream& out) {
  for (size_t i = 0; i < db.size(); ++i) {
    const std::string_view id = db.Id(i);
    if (id.empty()) {
      out << "seq" << i;
    } else {
      out << id;
    }
    out << '\t' << db.LabelOf(i) << '\t'
        << db.alphabet().Decode(db.Symbols(i)) << '\n';
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteTsvFile(const SequenceStore& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteTsv(db, out);
}

}  // namespace cluseq
