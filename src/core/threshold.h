// Automatic adjustment of the similarity threshold t (paper §4.6).
//
// During each iteration the similarities of all sequence-cluster pairs are
// histogrammed; the "valley" — the bucket where the curve turns sharpest,
// measured by the maximal difference between left- and right-portion
// regression slopes — yields an estimate t̂, and t moves conservatively
// halfway toward it each iteration. Adjustment freezes once |t − t̂| < 1%.
//
// All similarities here are in log space (see core/similarity.h), so the
// histogram domain, t and t̂ are log values, and the halfway step is taken
// in log space (geometric mean in natural units): see the implementation
// note on why the paper's arithmetic (t + t̂)/2 degenerates at log-ratio
// scale.

#ifndef CLUSEQ_CORE_THRESHOLD_H_
#define CLUSEQ_CORE_THRESHOLD_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace cluseq {

struct ThresholdUpdate {
  bool adjusted = false;      ///< False when no valley was found or frozen.
  double new_log_t = 0.0;     ///< t after the conservative step.
  double valley_log_t = 0.0;  ///< The raw valley estimate t̂.
};

class ThresholdAdjuster {
 public:
  /// `buckets` is the histogram granularity (paper: 1/n of the domain).
  /// `min_log_t` floors the threshold (the paper requires t >= 1, i.e.
  /// log t >= 0). `max_up_step` bounds how far log t may rise in a single
  /// adjustment: newly seeded clusters are built from one sequence and can
  /// only attract members while t stays moderate, so a sudden jump of t
  /// into the mature-cluster similarity range starves cluster growth before
  /// it begins (downward moves are never bounded).
  explicit ThresholdAdjuster(size_t buckets = 100, double min_log_t = 0.0,
                             double max_up_step = 1.5);

  /// Computes the valley of the given similarity observations and moves
  /// `current_log_t` toward it. Non-finite observations and observations
  /// below `censor_floor` are ignored — the floor is what lets the
  /// prefilter stay on while the adjuster is live: both prefiltered and
  /// exhaustive runs censor at the same floor, and the prefilter
  /// guarantees every score at or above it is exact, so the adjuster sees
  /// an identical multiset either way. Scores far below the current
  /// threshold carry no information about the valley near it. Once frozen
  /// (|t - t̂| < 1% relative), returns adjusted=false forever.
  ThresholdUpdate Adjust(
      const std::vector<double>& log_sims, double current_log_t,
      double censor_floor = -std::numeric_limits<double>::infinity());

  bool frozen() const { return frozen_; }

  /// Reinstates the frozen flag when resuming from a checkpoint — the flag
  /// is the adjuster's only cross-iteration state (the histogram is rebuilt
  /// from scratch every Adjust call).
  void RestoreFrozen(bool frozen) { frozen_ = frozen; }

 private:
  size_t buckets_;
  double min_log_t_;
  double max_up_step_;
  bool frozen_ = false;
};

}  // namespace cluseq

#endif  // CLUSEQ_CORE_THRESHOLD_H_
