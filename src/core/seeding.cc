#include "core/seeding.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/prefilter.h"
#include "core/similarity.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pst/frozen_bank.h"
#include "pst/frozen_pst.h"
#include "util/thread_pool.h"

namespace cluseq {

std::vector<size_t> SelectSeeds(
    const SequenceStore& db, const std::vector<size_t>& unclustered,
    size_t num_seeds, size_t sample_size,
    const std::vector<std::shared_ptr<const FrozenPst>>& existing_models,
    const BackgroundModel& background, const PstOptions& pst_options,
    size_t num_threads, Rng* rng, bool batched_scan, bool prefilter) {
  std::vector<size_t> chosen;
  if (num_seeds == 0 || unclustered.empty()) return chosen;
  CLUSEQ_TRACE_SPAN("seeding.select_seeds");
  num_seeds = std::min(num_seeds, unclustered.size());
  sample_size = std::min(std::max(sample_size, num_seeds),
                         unclustered.size());

  // Draw the sample and build one PST per sample sequence.
  std::vector<size_t> sample_positions =
      rng->SampleWithoutReplacement(unclustered.size(), sample_size);
  std::vector<size_t> sample_seq(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    sample_seq[i] = unclustered[sample_positions[i]];
  }
  // Compiled once here, each snapshot is scored against up to
  // sample_size - 1 peers plus every farthest-first round below.
  std::vector<std::shared_ptr<const FrozenPst>> sample_psts(sample_size);
  ParallelFor(sample_size, num_threads, [&](size_t i) {
    Pst pst(db.alphabet().size(), pst_options);
    pst.InsertSequence(db.Symbols(sample_seq[i]));
    sample_psts[i] = std::make_shared<const FrozenPst>(pst, background);
  });

  // Outlier screen: how well is each sample explained by its best peer?
  // Outliers have no similar peers and would otherwise win every
  // farthest-first round.
  std::vector<double> peer_best(sample_size,
                                -std::numeric_limits<double>::infinity());
  // Each sample's scan cost is linear in its own length; weight the sample
  // loops by it so length-skewed databases stay balanced.
  const auto sample_cost = [&](size_t i) -> uint64_t {
    return db.Length(sample_seq[i]);
  };
  if (sample_size > 2) {
    if (batched_scan) {
      // The full peer matrix needs each sample scored against every other
      // sample's model: one banked scan per sample replaces sample_size - 1
      // serial automaton scans of the same symbols. Only the per-sample
      // maximum is consumed, so the prefilter's pruned argmax scan
      // (excluding the sample's own model) gives the same values.
      const FrozenBank peer_bank(sample_psts);
      if (prefilter) {
        const ScanPrefilter peer_prefilter(&peer_bank);
        ParallelForWeighted(sample_size, num_threads, sample_cost,
                            [&](size_t i) {
          peer_prefilter.BestModel(db.Symbols(sample_seq[i]), &peer_best[i],
                                   /*stats=*/nullptr, /*exclude_model=*/i);
        });
      } else {
        ParallelForWeighted(sample_size, num_threads, sample_cost,
                            [&](size_t i) {
          std::vector<SimilarityResult> row = peer_bank.ScanAll(
              db.Symbols(sample_seq[i]));
          for (size_t j = 0; j < sample_size; ++j) {
            if (j == i) continue;
            peer_best[i] = std::max(peer_best[i], row[j].log_sim);
          }
        });
      }
    } else {
      ParallelForWeighted(sample_size, num_threads, sample_cost,
                          [&](size_t i) {
        for (size_t j = 0; j < sample_size; ++j) {
          if (j == i) continue;
          double s =
              ComputeSimilarity(*sample_psts[j], db.Symbols(sample_seq[i])).log_sim;
          peer_best[i] = std::max(peer_best[i], s);
        }
      });
    }
  }
  std::vector<double> sorted_peer = peer_best;
  std::sort(sorted_peer.begin(), sorted_peer.end());
  const double eligibility_bar =
      sample_size > 2 ? sorted_peer[sample_size / 4]
                      : -std::numeric_limits<double>::infinity();

  // Highest similarity of each sample to anything already in T.
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> best_sim(sample_size, kNegInf);
  if (!existing_models.empty()) {
    if (batched_scan) {
      const FrozenBank existing_bank(existing_models);
      if (prefilter) {
        const ScanPrefilter existing_prefilter(&existing_bank);
        ParallelForWeighted(sample_size, num_threads, sample_cost,
                            [&](size_t i) {
          existing_prefilter.BestModel(db.Symbols(sample_seq[i]),
                                       &best_sim[i]);
        });
      } else {
        ParallelForWeighted(sample_size, num_threads, sample_cost,
                            [&](size_t i) {
          std::vector<SimilarityResult> row = existing_bank.ScanAll(
              db.Symbols(sample_seq[i]));
          for (const SimilarityResult& sim : row) {
            best_sim[i] = std::max(best_sim[i], sim.log_sim);
          }
        });
      }
    } else {
      ParallelForWeighted(sample_size, num_threads, sample_cost,
                          [&](size_t i) {
        for (const auto& cluster : existing_models) {
          double s = ComputeSimilarity(*cluster, db.Symbols(sample_seq[i])).log_sim;
          best_sim[i] = std::max(best_sim[i], s);
        }
      });
    }
  }

  std::vector<bool> taken(sample_size, false);
  for (size_t round = 0; round < num_seeds; ++round) {
    // Pick the remaining eligible sample least similar to everything in T;
    // fall back to screened-out samples only when nothing else remains.
    size_t pick = sample_size;
    for (int pass = 0; pass < 2 && pick == sample_size; ++pass) {
      for (size_t i = 0; i < sample_size; ++i) {
        if (taken[i]) continue;
        if (pass == 0 && peer_best[i] < eligibility_bar) continue;
        if (pick == sample_size || best_sim[i] < best_sim[pick]) pick = i;
      }
    }
    if (pick == sample_size) break;
    taken[pick] = true;
    chosen.push_back(sample_seq[pick]);

    // The chosen seed joins T: refresh the remaining samples' best
    // similarity against its PST. One model only, so the per-sample
    // automaton scan is already the right shape.
    const FrozenPst& pst = *sample_psts[pick];
    ParallelForWeighted(sample_size, num_threads, sample_cost, [&](size_t i) {
      if (taken[i]) return;
      double s = ComputeSimilarity(pst, db.Symbols(sample_seq[i])).log_sim;
      best_sim[i] = std::max(best_sim[i], s);
    });
  }
  static obs::Counter& seeds_selected =
      obs::MetricsRegistry::Get().GetCounter("seeding.seeds_selected");
  static obs::Counter& samples_scored =
      obs::MetricsRegistry::Get().GetCounter("seeding.samples_scored");
  seeds_selected.Add(chosen.size());
  samples_scored.Add(sample_size);
  return chosen;
}

}  // namespace cluseq
