// ScanPrefilter: admissible candidate pruning in front of FrozenBank.
//
// Every CLUSEQ iteration scores every sequence against every cluster — an
// O(n·k·L) all-vs-all scan even though most sequences can only plausibly
// join a handful of clusters. The prefilter cuts that cost the way
// MMseqs2's k-mer prefilter does, but with a hard guarantee: every skip is
// justified by an *admissible upper bound* on the §4.3 log-similarity, so
// prefiltered runs produce bit-for-bit the outputs of exhaustive ones.
//
// Level 1 — signature bound, no row touched. The §4.3 score is the maximum
// window sum of per-position terms X_i = log[P(s_i | prefix)/p(s_i)], and
// any window sum is at most Σ_i max(ub_i, 0) for per-position caps
// ub_i ≥ X_i. The bank's signatures supply the caps:
//   * position 0 starts from the root, so X_0 is capped by the per-symbol
//     maximum maxsym[s_0] (the root row's ratio is ≤ the max over states);
//   * position i ≥ 1 is capped by the bigram signature
//     cap2[s_{i-1}·A + s_i] — admissible because the automaton state before
//     consuming s_i always lies in the image of Step(·, s_{i-1}), and cap2
//     maximizes the ratio over exactly that image;
//   * alphabets too large for cap2 fall back to the per-symbol maxima
//     maxsym[s_i] (looser: ignores the preceding symbol).
// The bound needs only the sequence's bigram (or symbol) counts — O(L)
// counting per sequence, then one streaming multiply-add over the bank's
// transposed positive-clamped cap columns: O(distinct bigrams · k) total,
// sequential and vectorizable, instead of k · O(L) DP steps. A model whose
// bound cannot reach the threshold (or beat the best score seen so far, in
// argmax mode) is skipped outright.
//
// Level 2 — in-DP early abandon. Survivors run the real interleaved DP
// (FrozenBank::ScanCandidatesBounded), which drops a model mid-stream once
// max(Z_i, max(Y_i, 0) + remaining·max-ratio) falls below the target.
//
// Exactness is restored where consumers need it:
//   * join decisions: a skipped/abandoned model's recorded value is its
//     upper bound, which is < log t, so it never joins — same as exact;
//   * the per-sequence best score: after the bounded pass, models whose
//     bound still exceeds the best exactly-known score are re-scanned
//     exactly, in descending bound order, until no bound beats it;
//   * argmax (Classify): models are processed in descending bound order
//     with the running best as the abandon target; the true argmax can
//     never be skipped or abandoned (its bound is ≥ its score ≥ the
//     running best), and ties resolve to the smallest model index exactly
//     as the exhaustive first-strict-max loop does.
//
// Thread-safe: all mutable state lives in a per-thread workspace, so one
// ScanPrefilter may be shared by every pool worker.

#ifndef CLUSEQ_CORE_PREFILTER_H_
#define CLUSEQ_CORE_PREFILTER_H_

#include <cstdint>
#include <span>

#include "core/similarity.h"
#include "pst/frozen_bank.h"
#include "seq/alphabet.h"

namespace cluseq {

/// Per-call pruning diagnostics (aggregated by the clusterer into
/// IterationStats and the run report).
struct PrefilterScanStats {
  size_t models_total = 0;       ///< Models the call covered.
  size_t candidates_skipped = 0; ///< Level-1 skips (no arena row touched).
  size_t dp_early_exits = 0;     ///< Level-2 mid-DP abandons.
  size_t residual_rescans = 0;   ///< Exact re-scans restoring the max.
};

class ScanPrefilter {
 public:
  ScanPrefilter() = default;
  explicit ScanPrefilter(const FrozenBank* bank) { Bind(bank); }

  /// Points the prefilter at `bank` (not owned; must outlive this object
  /// and stay un-reassembled while scans run). Binding is free — the
  /// signatures live in the bank.
  void Bind(const FrozenBank* bank) { bank_ = bank; }
  bool bound() const { return bank_ != nullptr && !bank_->empty(); }

  /// Threshold-mode scan over all models. Postconditions versus the exact
  /// bank_->ScanAll(symbols, results):
  ///   * results[m].log_sim >= log_t holds for exactly the same models,
  ///     and for those models results[m] is bit-for-bit exact;
  ///   * max_m results[m].log_sim is the exact maximum;
  ///   * other slots hold an admissible upper bound (< log_t) instead of
  ///     the exact score, with zeroed segment bounds.
  /// `log_t` must be finite.
  void ScanAllWithThreshold(std::span<const SymbolId> symbols, double log_t,
                            SimilarityResult* results,
                            PrefilterScanStats* stats = nullptr) const;

  /// Argmax-mode scan: returns the smallest model index attaining the exact
  /// maximum log-similarity (the exhaustive first-strict-max loop's answer)
  /// and writes the exact maximum to *best_log_sim. Returns -1 — with
  /// *best_log_sim = -inf — when there are no models or no model scores
  /// above -inf. `exclude_model` removes one model from consideration
  /// entirely (the seeding peer matrix excludes self); pass kNoExclude for
  /// none.
  static constexpr size_t kNoExclude = static_cast<size_t>(-1);
  int32_t BestModel(std::span<const SymbolId> symbols, double* best_log_sim,
                    PrefilterScanStats* stats = nullptr,
                    size_t exclude_model = kNoExclude) const;

 private:
  const FrozenBank* bank_ = nullptr;
};

}  // namespace cluseq

#endif  // CLUSEQ_CORE_PREFILTER_H_
