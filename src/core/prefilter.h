// ScanPrefilter: admissible candidate pruning in front of FrozenBank.
//
// Every CLUSEQ iteration scores every sequence against every cluster — an
// O(n·k·L) all-vs-all scan even though most sequences can only plausibly
// join a handful of clusters. The prefilter cuts that cost the way
// MMseqs2's k-mer prefilter does, but with a hard guarantee: every skip is
// justified by an *admissible upper bound* on the §4.3 log-similarity, so
// prefiltered runs produce bit-for-bit the outputs of exhaustive ones.
//
// The bound hierarchy (DESIGN.md §14), cheapest first:
//
// Level 1 — signature Kadane bound, no arena row touched. The §4.3 score
// is the maximum window sum of per-position terms X_i =
// log[P(s_i | prefix)/p(s_i)], so any per-position caps ub_i ≥ X_i give
// an admissible bound via the same max-window (Kadane) recurrence run
// over the caps. The bank's tiered signatures supply the caps (order
// chosen per bank by a byte budget, see FrozenBank::SignatureTier):
//   * lead positions (fewer than order−1 preceding symbols, but at least
//     position 0) are capped by the per-symbol maxima maxsym[s_i];
//   * position i with full context is capped by the order-o table
//     cap[s_{i-o+1}··s_i] — admissible because the automaton state before
//     consuming s_i always lies in the (o−1)-step image of the preceding
//     symbols, and the cap maximizes the ratio over exactly that image.
// The dense pass runs one exact integer Kadane per model over the bank's
// code-major signed offset-u8 cap columns (value = (entry − zero point) ·
// shared scale, entries round the true caps up; NaN occupies the top
// code) — all k models advance one position per table byte in a SIMD
// sweep. Because the encoding keeps negative caps, the bound sees windows
// *break*: a model whose good caps never chain into one window is pruned
// here, which a positional sum of positive parts can never do. The
// per-model refinement bounds read the model-major int16 caps instead — a
// grid ~50× finer, used where one model's bound must be as tight as the
// tier allows.
//
// Level 1.5 — truncated-prefix DP. Level-1 survivors run a cap-table
// Kadane over just the first B symbols (B = l15_prefix, default 96):
// the best window either closes inside the prefix (≤ the prefix DP's Ẑ)
// or crosses it (≤ max(Ŷ, 0) + the level-1 mass beyond the prefix). This
// sees cap *ordering*, which the positional sum cannot — a model whose
// good caps are scattered never chains them into one window. A tiny
// deterministic pad absorbs FP summation-order differences against the
// level-1 sum, keeping the bound admissible.
//
// Level 2 — in-DP early abandon. Remaining survivors run the real
// interleaved DP (FrozenBank::ScanCandidatesBounded) with per-(sequence,
// model) margins — the max cap over codes the sequence actually contains,
// far tighter than the bank's static per-model max ratio — on an adaptive
// checkpoint schedule (dense while lanes are near the target, geometric
// back-off once they separate; see frozen_bank.h).
//
// Exactness is restored where consumers need it:
//   * join decisions: a skipped/abandoned model's recorded value is its
//     upper bound, which is < the target, so it never joins — same as
//     exact;
//   * the per-sequence best score: after the bounded pass, the highest-
//     bound model is scanned exactly, then an ascending-index sweep
//     visits every model whose bound still exceeds the best exactly-known
//     score, each first *refined* (a full-length Kadane on the fine int16
//     caps) and only re-scanned exactly if the refined bound still beats
//     the best — the Kadane bound is tight enough that the sweep almost
//     never fires, so no priority order is needed;
//   * argmax (Classify): the highest-bound model is scanned first (it is
//     usually the winner), then the same ascending sweep runs with the
//     running best as the abandon target; the true argmax can never be
//     skipped or abandoned (its bound is ≥ its score ≥ the running best),
//     and ties resolve to the smallest model index exactly as the
//     exhaustive first-strict-max loop does.
//
// Thread-safe: all mutable state lives in a per-thread workspace (reused
// across calls — no per-sequence allocation on the steady-state path), so
// one ScanPrefilter may be shared by every pool worker.

#ifndef CLUSEQ_CORE_PREFILTER_H_
#define CLUSEQ_CORE_PREFILTER_H_

#include <cstdint>
#include <span>

#include "core/similarity.h"
#include "pst/frozen_bank.h"
#include "seq/alphabet.h"

namespace cluseq {

/// Per-call pruning diagnostics (aggregated by the clusterer into
/// IterationStats and the run report). candidates_skipped is the total
/// count of models never handed to the sparse DP; l15_pruned is the
/// level-1.5 subset of it.
struct PrefilterScanStats {
  size_t models_total = 0;       ///< Models the call covered.
  size_t candidates_skipped = 0; ///< Models pruned before the DP (all levels).
  size_t l15_pruned = 0;         ///< Subset: level-1.5 truncated-DP drops.
  size_t dp_early_exits = 0;     ///< Level-2 mid-DP abandons.
  size_t checkpoints = 0;        ///< Level-2 bound checks actually executed.
  size_t residual_rescans = 0;   ///< Exact re-scans restoring the max.
};

/// Snapshot of the calling thread's workspace buffer addresses, for the
/// regression test pinning "no per-sequence reallocation" (the buffers
/// must keep their storage across repeated scans of same-shape input).
struct PrefilterWorkspaceProbe {
  const void* stamp = nullptr;
  const void* count = nullptr;
  const void* cols = nullptr;
  const void* acc = nullptr;
  const void* tmp = nullptr;
};

class ScanPrefilter {
 public:
  /// Default truncated-prefix length for the level-1.5 bound. Chosen from
  /// the prefilter.bound_slack histogram: windows that decide membership
  /// close within the first ~100 symbols on every corpus measured.
  static constexpr size_t kDefaultL15Prefix = 96;

  ScanPrefilter() = default;
  explicit ScanPrefilter(const FrozenBank* bank,
                         size_t l15_prefix = kDefaultL15Prefix)
      : l15_prefix_(l15_prefix) {
    Bind(bank);
  }

  /// Points the prefilter at `bank` (not owned; must outlive this object
  /// and stay un-reassembled while scans run). Binding is free — the
  /// signatures live in the bank.
  void Bind(const FrozenBank* bank) { bank_ = bank; }
  bool bound() const { return bank_ != nullptr && !bank_->empty(); }

  /// Number of leading symbols the level-1.5 truncated DP covers; 0
  /// disables the level entirely.
  void set_l15_prefix(size_t prefix) { l15_prefix_ = prefix; }
  size_t l15_prefix() const { return l15_prefix_; }

  /// Threshold-mode scan over all models. Postconditions versus the exact
  /// bank_->ScanAll(symbols, results):
  ///   * results[m].log_sim >= log_t holds for exactly the same models,
  ///     and for those models results[m] is bit-for-bit exact;
  ///   * max_m results[m].log_sim is the exact maximum;
  ///   * other slots hold an admissible upper bound (< log_t) instead of
  ///     the exact score, with zeroed segment bounds.
  /// Any log_t is accepted; a nonpositive one can never prune (every
  /// bound is ≥ 0 by construction), so those calls delegate to the
  /// exhaustive scan and return fully exact results.
  void ScanAllWithThreshold(std::span<const SymbolId> symbols, double log_t,
                            SimilarityResult* results,
                            PrefilterScanStats* stats = nullptr) const;

  /// Argmax-mode scan: returns the smallest model index attaining the exact
  /// maximum log-similarity (the exhaustive first-strict-max loop's answer)
  /// and writes the exact maximum to *best_log_sim. Returns -1 — with
  /// *best_log_sim = -inf — when there are no models or no model scores
  /// above -inf. `exclude_model` removes one model from consideration
  /// entirely (the seeding peer matrix excludes self); pass kNoExclude for
  /// none.
  static constexpr size_t kNoExclude = static_cast<size_t>(-1);
  int32_t BestModel(std::span<const SymbolId> symbols, double* best_log_sim,
                    PrefilterScanStats* stats = nullptr,
                    size_t exclude_model = kNoExclude) const;

  /// Testing hook: addresses of the calling thread's workspace buffers.
  static PrefilterWorkspaceProbe ProbeThreadWorkspaceForTesting();

 private:
  const FrozenBank* bank_ = nullptr;
  size_t l15_prefix_ = kDefaultL15Prefix;
};

}  // namespace cluseq

#endif  // CLUSEQ_CORE_PREFILTER_H_
