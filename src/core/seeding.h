// Seed selection for new cluster generation (paper §4.1).
//
// To generate k_n new clusters, m >= k_n unclustered sequences are sampled
// at random; a PST is built for each sample; then a greedy farthest-first
// procedure runs k_n steps, each time choosing the remaining sample whose
// *highest* similarity to any cluster already in T (existing clusters plus
// seeds chosen so far) is lowest, so new seeds are as dissimilar as possible
// from everything already represented.
//
// Robustness addition (documented in DESIGN.md): plain farthest-first is
// outlier-seeking — a random outlier is by construction the sample least
// similar to everything, so with even a few percent outliers the seeds are
// dominated by them, the seeded clusters die in consolidation, and the
// growth factor collapses. Before the greedy phase, samples whose best
// *peer* similarity (how well any other sample's model explains them) falls
// in the bottom quartile are marked ineligible; they are used only if the
// eligible pool runs out. Genuine cluster members always have similar peers
// in the sample, outliers do not.

#ifndef CLUSEQ_CORE_SEEDING_H_
#define CLUSEQ_CORE_SEEDING_H_

#include <memory>
#include <vector>

#include "pst/frozen_pst.h"
#include "pst/pst.h"
#include "seq/background_model.h"
#include "seq/sequence_store.h"
#include "util/rng.h"

namespace cluseq {

/// Selects up to `num_seeds` sequence indices (drawn from `unclustered`) to
/// seed new clusters. `sample_size` is the paper's m; it is clamped to the
/// number of unclustered sequences. `existing_models` are the compiled
/// snapshots of the clusters already in T. `num_threads` parallelizes the
/// similarity evaluations; `batched_scan` scores the sample-vs-sample and
/// sample-vs-existing matrices with one interleaved FrozenBank pass per
/// sequence (identical values either way). `prefilter` (only with
/// batched_scan) prunes those matrix scans with ScanPrefilter's admissible
/// bounds — the seed selection only consumes per-sample maxima, which the
/// prefilter reports exactly, so the chosen seeds are identical. Returns
/// fewer than `num_seeds` indices only when there are not enough
/// unclustered sequences.
std::vector<size_t> SelectSeeds(
    const SequenceStore& db, const std::vector<size_t>& unclustered,
    size_t num_seeds, size_t sample_size,
    const std::vector<std::shared_ptr<const FrozenPst>>& existing_models,
    const BackgroundModel& background, const PstOptions& pst_options,
    size_t num_threads, Rng* rng, bool batched_scan = true,
    bool prefilter = true);

}  // namespace cluseq

#endif  // CLUSEQ_CORE_SEEDING_H_
