// Cluster: one CLUSEQ cluster — a PST summary plus its current members.

#ifndef CLUSEQ_CORE_CLUSTER_H_
#define CLUSEQ_CORE_CLUSTER_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "pst/pst.h"
#include "seq/sequence.h"

namespace cluseq {

class Cluster {
 public:
  /// Creates an empty cluster with a fresh PST.
  Cluster(uint32_t id, size_t alphabet_size, const PstOptions& pst_options)
      : id_(id), pst_(alphabet_size, pst_options) {}

  /// Initializes the cluster from a single seed sequence: the PST is built
  /// from the entire sequence (paper §4.4).
  void Seed(const Sequence& seq, size_t seq_index) {
    pst_.InsertSequence(seq);
    seed_index_ = static_cast<int64_t>(seq_index);
    absorbed_.insert(seq_index);
  }

  /// Inserts the similarity-maximizing segment of a sequence that *becomes*
  /// a member (paper §4.2 / §4.4: "only the segment that produces the
  /// highest similarity score is used"). Each sequence contributes its
  /// segment at most once per cluster: re-inserting on every iteration
  /// would multiply private context counts by the iteration number, pushing
  /// memorized single-sequence contexts past the significance threshold c
  /// and freezing early (possibly wrong) memberships in place.
  void AbsorbSegment(size_t seq_index, std::span<const SymbolId> segment) {
    if (absorbed_.insert(seq_index).second) {
      pst_.InsertSequence(segment);
    }
  }

  /// Whether the sequence has already contributed to this cluster's PST.
  bool HasAbsorbed(size_t seq_index) const {
    return absorbed_.contains(seq_index);
  }

  /// Drops all statistics so the PST can be rebuilt from the current
  /// membership (the per-iteration purification step; see
  /// CluseqClusterer::RebuildClusterPsts).
  void ResetPst() {
    pst_.Clear();
    absorbed_.clear();
  }

  uint32_t id() const { return id_; }
  const Pst& pst() const { return pst_; }
  Pst& mutable_pst() { return pst_; }

  /// Index of the seed sequence, or -1 when constructed empty.
  int64_t seed_index() const { return seed_index_; }

  const std::vector<size_t>& members() const { return members_; }
  size_t size() const { return members_.size(); }

  void ClearMembers() { members_.clear(); }
  void AddMember(size_t seq_index) { members_.push_back(seq_index); }
  void SetMembers(std::vector<size_t> members) {
    members_ = std::move(members);
  }

 private:
  uint32_t id_;
  Pst pst_;
  std::unordered_set<size_t> absorbed_;
  int64_t seed_index_ = -1;
  std::vector<size_t> members_;
};

}  // namespace cluseq

#endif  // CLUSEQ_CORE_CLUSTER_H_
