// Cluster: one CLUSEQ cluster — a PST summary plus its current members.

#ifndef CLUSEQ_CORE_CLUSTER_H_
#define CLUSEQ_CORE_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pst/frozen_pst.h"
#include "pst/pst.h"
#include "seq/sequence.h"

namespace cluseq {

class Cluster {
 public:
  /// Half-open segment [begin, end) of a member sequence.
  struct Segment {
    size_t begin = 0;
    size_t end = 0;
    friend bool operator==(const Segment&, const Segment&) = default;
  };

  /// Creates an empty cluster with a fresh PST.
  Cluster(uint32_t id, size_t alphabet_size, const PstOptions& pst_options)
      : id_(id), pst_(alphabet_size, pst_options) {}

  /// Initializes the cluster from a single seed sequence: the PST is built
  /// from the entire sequence (paper §4.4).
  void Seed(std::span<const SymbolId> symbols, size_t seq_index) {
    pst_.InsertSequence(symbols);
    seed_index_ = static_cast<int64_t>(seq_index);
    contributions_.emplace(seq_index, Segment{0, symbols.size()});
    pst_dirty_ = true;
  }
  void Seed(const Sequence& seq, size_t seq_index) {
    Seed(std::span<const SymbolId>(seq.symbols()), seq_index);
  }

  /// Inserts the similarity-maximizing segment [begin, end) of `full` (the
  /// whole sequence) for a sequence that *becomes* a member (paper §4.2 /
  /// §4.4: "only the segment that produces the highest similarity score is
  /// used"). Each sequence contributes its segment at most once per
  /// cluster: re-inserting on every iteration would multiply private
  /// context counts by the iteration number, pushing memorized
  /// single-sequence contexts past the significance threshold c and
  /// freezing early (possibly wrong) memberships in place.
  void AbsorbSegment(size_t seq_index, std::span<const SymbolId> full,
                     size_t begin, size_t end) {
    if (contributions_.emplace(seq_index, Segment{begin, end}).second) {
      pst_.InsertSequence(full.subspan(begin, end - begin));
      pst_dirty_ = true;
    }
  }

  /// Convenience overload: the span *is* the contributed segment.
  void AbsorbSegment(size_t seq_index, std::span<const SymbolId> segment) {
    AbsorbSegment(seq_index, segment, 0, segment.size());
  }

  /// Whether the sequence has already contributed to this cluster's PST.
  bool HasAbsorbed(size_t seq_index) const {
    return contributions_.contains(seq_index);
  }

  /// Which segment of each contributing sequence the tree currently counts
  /// (checkpointing serializes this alongside the tree).
  const std::unordered_map<size_t, Segment>& contributions() const {
    return contributions_;
  }

  /// True iff the PST currently counts exactly the segments `segments[i]`
  /// of sequences `members[i]` (parallel arrays) and nothing else — i.e.
  /// rebuilding the tree from them would re-count the identical multiset of
  /// insertions. The incremental re-freeze skip hinges on this.
  bool ContributionsMatch(const std::vector<size_t>& members,
                          std::span<const Segment> segments) const {
    if (contributions_.size() != members.size()) return false;
    for (size_t i = 0; i < members.size(); ++i) {
      auto it = contributions_.find(members[i]);
      if (it == contributions_.end() || !(it->second == segments[i])) {
        return false;
      }
    }
    return true;
  }

  /// Drops all statistics so the PST can be rebuilt from the current
  /// membership (the per-iteration purification step; see
  /// CluseqClusterer::RebuildClusterPsts).
  void ResetPst() {
    pst_.Clear();
    contributions_.clear();
    pst_dirty_ = true;
  }

  uint32_t id() const { return id_; }
  const Pst& pst() const { return pst_; }
  /// Mutable tree access conservatively invalidates the frozen snapshot.
  Pst& mutable_pst() {
    pst_dirty_ = true;
    return pst_;
  }

  /// Dirty bit: set whenever the live tree may have diverged from the last
  /// compiled snapshot; cleared by SetFrozen().
  bool pst_dirty() const { return pst_dirty_; }

  /// The cached compiled snapshot is usable iff it exists and the tree has
  /// not been touched since it was compiled.
  bool frozen_fresh() const { return frozen_ != nullptr && !pst_dirty_; }
  const std::shared_ptr<const FrozenPst>& frozen() const { return frozen_; }
  void SetFrozen(std::shared_ptr<const FrozenPst> snapshot) {
    frozen_ = std::move(snapshot);
    pst_dirty_ = false;
  }

  /// Index of the seed sequence, or -1 when constructed empty.
  int64_t seed_index() const { return seed_index_; }

  const std::vector<size_t>& members() const { return members_; }
  size_t size() const { return members_.size(); }

  void ClearMembers() { members_.clear(); }
  void AddMember(size_t seq_index) { members_.push_back(seq_index); }
  void SetMembers(std::vector<size_t> members) {
    members_ = std::move(members);
  }

  /// Reinstates the full cross-iteration state of a cluster when resuming
  /// from a checkpoint: the counted tree, which segments it counts, the
  /// seed, and the membership in its stored order. The frozen snapshot is
  /// deliberately NOT restored — it is a pure function of the tree and the
  /// background model, and recompiling it on demand is both cheaper to
  /// store and immune to snapshot/tree skew.
  void RestoreForResume(Pst pst, int64_t seed_index,
                        std::vector<size_t> members,
                        std::vector<std::pair<size_t, Segment>> contributions) {
    pst_ = std::move(pst);
    seed_index_ = seed_index;
    members_ = std::move(members);
    contributions_.clear();
    contributions_.insert(contributions.begin(), contributions.end());
    frozen_ = nullptr;
    pst_dirty_ = true;
  }

 private:
  uint32_t id_;
  Pst pst_;
  /// Which segment of each contributing sequence the tree currently counts.
  std::unordered_map<size_t, Segment> contributions_;
  /// Compiled snapshot of pst_, valid while !pst_dirty_ (see SetFrozen).
  std::shared_ptr<const FrozenPst> frozen_;
  bool pst_dirty_ = true;
  int64_t seed_index_ = -1;
  std::vector<size_t> members_;
};

}  // namespace cluseq

#endif  // CLUSEQ_CORE_CLUSTER_H_
